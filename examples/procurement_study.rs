//! Procurement study: "how many A64FX nodes buy me the performance of my
//! current Intel partition — and what would a better compiler change?"
//!
//! This is the question the paper's conclusions pose: applications run
//! 2–4× slower on the A64FX *because the toolchain leaves SVE idle*, so a
//! centre sizing a Fugaku-like procurement must either overprovision nodes
//! or wait for compilers to mature. This example quantifies both paths
//! with the workspace's models:
//!
//! 1. For each application, find the CTE-Arm node count matching a fixed
//!    MareNostrum 4 reference allocation (the paper's crossover numbers).
//! 2. Re-run the same study with a hypothetical mature toolchain (SVE
//!    uptake raised to Intel levels) — the paper's "further effort is
//!    needed on tools" conclusion, in numbers.
//!
//! ```bash
//! cargo run --release --example procurement_study
//! ```

use apps::alya::{cte_nodes_matching, Alya};
use apps::common::Cluster;
use apps::nemo::Nemo;
use apps::wrf::Wrf;

fn main() {
    println!("== Procurement study: matching a MareNostrum 4 allocation ==\n");

    // Alya: reference = 12 MN4 nodes (the paper's own crossover study).
    let alya = Alya::test_case_b();
    let reference = alya.simulate(Cluster::MareNostrum4, 12).elapsed;
    println!(
        "Alya TestCaseB: 12 MN4 nodes run a time step in {:.2} s",
        reference.value()
    );
    match cte_nodes_matching(&alya, reference, None) {
        Some(n) => println!("  -> CTE-Arm needs {n} nodes for the same step time (paper: 44)"),
        None => println!("  -> CTE-Arm cannot match it within 192 nodes"),
    }
    for (phase, paper) in [("assembly", 62), ("solver", 22)] {
        let ref_phase = alya
            .simulate(Cluster::MareNostrum4, 12)
            .phase(phase)
            .expect("phase exists");
        match cte_nodes_matching(&alya, ref_phase, Some(phase)) {
            Some(n) => println!("  -> {phase}: {n} CTE-Arm nodes (paper: {paper})"),
            None => println!("  -> {phase}: no match within 192 nodes"),
        }
    }

    // NEMO: reference = 24 MN4 nodes.
    let nemo = Nemo::bench_orca1();
    let ref_nemo = nemo.simulate(Cluster::MareNostrum4, 24).elapsed;
    let mut match_nemo = None;
    for n in 8..=192 {
        if nemo.simulate(Cluster::CteArm, n).elapsed <= ref_nemo {
            match_nemo = Some(n);
            break;
        }
    }
    println!(
        "\nNEMO BENCH: 24 MN4 nodes finish in {:.1} s; CTE-Arm needs {} nodes",
        ref_nemo.value(),
        match_nemo.map_or("more than 192".into(), |n| n.to_string()),
    );

    // WRF: reference = 16 MN4 nodes.
    let wrf = Wrf::iberia_4km();
    let ref_wrf = wrf.simulate(Cluster::MareNostrum4, 16, true).elapsed;
    let mut match_wrf = None;
    for n in 1..=192 {
        if wrf.simulate(Cluster::CteArm, n, true).elapsed <= ref_wrf {
            match_wrf = Some(n);
            break;
        }
    }
    println!(
        "WRF Iberia-4km: 16 MN4 nodes finish in {:.0} s; CTE-Arm needs {} nodes",
        ref_wrf.value(),
        match_wrf.map_or("more than 192".into(), |n| n.to_string()),
    );

    // Part 2: what a mature SVE toolchain would change. We model it by
    // running the same Alya study with the per-rank profiles costed as if
    // GNU reached Intel's application uptake (see `arch::compiler`).
    println!("\n== The compiler-maturity scenario ==");
    println!("(raising GNU-on-A64FX SVE uptake from 12 % to Intel's 65 %)\n");
    let mature = mature_toolchain_ratio();
    println!(
        "Alya 16-node CTE/MN4 slowdown: {:.2}× today -> {mature:.2}× with a mature toolchain",
        alya.simulate(Cluster::CteArm, 16).elapsed
            / alya.simulate(Cluster::MareNostrum4, 16).elapsed,
    );
    println!("The paper's conclusion, quantified: the gap is a software problem.");
}

/// Alya's 16-node slowdown if GNU vectorized like Intel: cost the assembly
/// profile directly under a patched compiler model.
fn mature_toolchain_ratio() -> f64 {
    use arch::compiler::Compiler;
    use arch::cost::{CostModel, KernelProfile};
    let cte = arch::machines::cte_arm();
    let mn4 = arch::machines::marenostrum4();
    let mut gnu_mature = Compiler::gnu_sve();
    gnu_mature.uptake_app = Compiler::intel().uptake_app;
    let intel = Compiler::intel();

    // The dominant Alya profiles at 16 nodes (see apps::alya).
    let elements_per_rank = 132e6 / (16.0 * 48.0);
    let assembly = KernelProfile::dp(
        "assembly",
        elements_per_rank * 25_000.0,
        elements_per_rank * 500.0,
    )
    .with_vectorizable(0.97);
    let solver =
        KernelProfile::dp("solver", elements_per_rank * 151.0 * 50.0, 0.0).with_vectorizable(0.30);
    let stream = KernelProfile::dp("stream", 0.0, elements_per_rank * 64.0 * 50.0);

    let time = |machine: &arch::machines::Machine, compiler: &Compiler| {
        let cm = CostModel::new(&machine.core, &machine.memory, compiler);
        cm.chunk_time(&assembly, 48).value()
            + cm.chunk_time(&solver, 48).value()
            + cm.chunk_time(&stream, 48).value()
    };
    time(&cte, &gnu_mature) / time(&mn4, &intel)
}
