//! Quickstart: the evaluation pipeline in one page.
//!
//! Builds the two machine models, runs the headline micro-benchmark and
//! benchmark experiments, simulates one application study, and prints the
//! Table-IV speedup summary.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use apps::alya::Alya;
use apps::common::Cluster;
use arch::machines::{cte_arm, marenostrum4};
use cluster_eval::experiments;

fn main() {
    // 1. The machines, straight from the paper's Table I.
    let cte = cte_arm();
    let mn4 = marenostrum4();
    println!(
        "{}: {} × {} ({} cores, {:.1} GFlop/s DP peak/node, {:.0} GB/s HBM)",
        cte.name,
        cte.nodes,
        cte.core.name,
        cte.cores_per_node(),
        cte.peak_dp_node().as_gflops(),
        cte.memory.peak_bandwidth().as_gb_per_sec(),
    );
    println!(
        "{}: {} × 2·{} ({} cores, {:.1} GFlop/s DP peak/node, {:.0} GB/s DDR4)\n",
        mn4.name,
        mn4.nodes,
        mn4.core.name,
        mn4.cores_per_node(),
        mn4.peak_dp_node().as_gflops(),
        mn4.memory.peak_bandwidth().as_gb_per_sec(),
    );

    // 2. Micro-benchmarks: the FPU µKernel (Fig. 1) and STREAM (Fig. 2).
    for id in ["fig1", "fig2"] {
        let artifact = experiments::run(id).expect("registered experiment");
        println!("{}", artifact.to_text());
    }

    // 3. One application study: Alya on 16 nodes of each machine.
    let alya = Alya::test_case_b();
    for cluster in Cluster::BOTH {
        let run = alya.simulate(cluster, 16);
        println!(
            "Alya TestCaseB on 16 × {:<14}: {:.2} s/step (assembly {:.2} s, solver {:.2} s)",
            cluster.label(),
            run.elapsed.value(),
            run.phase("assembly").unwrap().value(),
            run.phase("solver").unwrap().value(),
        );
    }
    println!();

    // 4. The bottom line: Table IV.
    let table4 = experiments::run("table4").expect("registered experiment");
    println!("{}", table4.to_text());
}
