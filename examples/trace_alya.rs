//! Trace an Alya-like time step and print a POP-style efficiency report.
//!
//! BSC analyses applications through Paraver timelines and the POP
//! efficiency metrics; this example records the same kind of data from a
//! simulated Alya step on 16 nodes of each machine: a per-rank Gantt strip
//! and the compute/communication breakdown, showing where the time goes on
//! each system.
//!
//! ```bash
//! cargo run --release --example trace_alya
//! ```

use arch::cost::KernelProfile;
use interconnect::link::LinkModel;
use interconnect::network::Network;
use interconnect::tofu::TofuD;
use interconnect::topology::NodeId;
use mpisim::job::Job;
use mpisim::layout::JobLayout;
use mpisim::trace::Activity;
use simkit::units::Bytes;

fn main() {
    let machine = arch::machines::cte_arm();
    let compiler = arch::compiler::Compiler::gnu_sve();
    let net = Network::new(TofuD::cte_arm(), LinkModel::tofud());
    let nodes = 16;
    let layout = JobLayout::new(
        (0..nodes).map(NodeId).collect(),
        48,
        1,
        machine.memory.n_domains,
        machine.cores_per_node(),
    );
    let mut job = Job::new(&machine, &compiler, &net, layout, 99)
        .with_tracing()
        .with_imbalance(0.06);

    // One Alya-like time step (profiles as in apps::alya, 16 nodes).
    let per_rank_elems = 132e6 / (nodes * 48) as f64;
    let assembly = KernelProfile::dp(
        "assembly",
        per_rank_elems * 25_000.0,
        per_rank_elems * 500.0,
    )
    .with_vectorizable(0.97);
    let solver_idx =
        KernelProfile::dp("solver-indexed", per_rank_elems * 151.0, 0.0).with_vectorizable(0.30);
    let solver_stream = KernelProfile::dp("solver-stream", 0.0, per_rank_elems * 64.0);

    job.compute(&assembly);
    job.neighbor_exchange(|r| vec![((r + 1) % (nodes * 48), Bytes::kib(200.0))]);
    for _ in 0..50 {
        job.compute(&solver_idx);
        job.compute(&solver_stream);
        job.allreduce(Bytes::new(16.0));
        job.allreduce(Bytes::new(16.0));
    }

    let trace = job.trace().expect("tracing enabled");
    println!(
        "Alya-like time step on 16 × CTE-Arm — {} traced events\n",
        trace.events.len()
    );
    println!("{}", trace.gantt(12, 100));

    println!("time breakdown (all ranks):");
    let total: f64 = trace.breakdown().iter().map(|(_, t)| t.value()).sum();
    for (activity, t) in trace.breakdown() {
        println!(
            "  {:13} {:8.3} rank-seconds  ({:4.1} %)",
            format!("{activity:?}"),
            t.value(),
            100.0 * t.value() / total
        );
    }

    // POP-style metrics.
    let compute = trace.fraction(Activity::Compute);
    println!(
        "\nparallel efficiency (compute / total): {:.1} %",
        compute * 100.0
    );
    println!(
        "communication share: {:.1} %  (collectives {:.1} %, p2p {:.1} %)",
        100.0 * (1.0 - compute),
        100.0 * trace.fraction(Activity::Collective),
        100.0 * trace.fraction(Activity::PointToPoint),
    );
    println!("\nstep time (slowest rank): {:.3} s", job.elapsed().value());
}
