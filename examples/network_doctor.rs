//! Network doctor: find sick nodes from an all-pairs bandwidth sweep.
//!
//! Reproduces the diagnostic workflow behind the paper's Fig. 4: run an
//! OSU-style sendrecv loop over every node pair, build the 192×192
//! bandwidth map, and flag nodes whose receive or send column deviates
//! from the population — exactly how the authors spotted `arms0b1-11c`,
//! a node that receives slowly but sends at full speed.
//!
//! ```bash
//! cargo run --release --example network_doctor
//! ```

use microbench::network::{figure4, summarize_map, DEGRADED_NODE};

fn main() {
    println!("sweeping all 192×192 node pairs at 256 B...\n");
    let map = figure4(7);
    let summary = summarize_map(&map);

    // Robust z-score per column: flag nodes 5 median-absolute-deviations
    // below the median.
    let flag = |means: &[f64], direction: &str| {
        let mut sorted = means.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        let mut deviations: Vec<f64> = means.iter().map(|m| (m - median).abs()).collect();
        deviations.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mad = deviations[deviations.len() / 2].max(1e-12);
        let mut sick = Vec::new();
        for (node, &m) in means.iter().enumerate() {
            let z = (m - median) / mad;
            if z < -5.0 {
                sick.push((node, m, z));
            }
        }
        println!("{direction} side:");
        if sick.is_empty() {
            println!("  all nodes within tolerance (median {median:.3} GB/s)");
        }
        for (node, bw, z) in &sick {
            println!(
                "  node n{node}: {bw:.3} GB/s (median {median:.3}, robust z = {z:.1}) <- SICK"
            );
        }
        sick
    };

    let rx_sick = flag(&summary.rx_means, "receive");
    let tx_sick = flag(&summary.tx_means, "send");

    println!();
    match (rx_sick.as_slice(), tx_sick.as_slice()) {
        ([(node, ..)], []) => {
            println!(
                "diagnosis: node n{node} has a receive-side fault (bad DMA engine or \
                 mis-trained link lane) — it sends fine, so only incoming traffic suffers."
            );
            assert_eq!(
                *node,
                DEGRADED_NODE.index(),
                "the doctor found the node the paper found"
            );
        }
        ([], []) => println!("diagnosis: fabric healthy."),
        _ => println!("diagnosis: multiple anomalies — check the fabric manager logs."),
    }

    // Locality structure: mean bandwidth by hop distance.
    println!("\nbandwidth vs topology distance (Fig. 4's diagonal bands):");
    use interconnect::tofu::TofuD;
    use interconnect::topology::{NodeId, Topology};
    let topo = TofuD::cte_arm();
    let mut by_hops: Vec<(usize, f64, u32)> = Vec::new();
    for (s, row) in map.iter().enumerate() {
        for (r, &bw) in row.iter().enumerate() {
            if s == r || s == DEGRADED_NODE.index() || r == DEGRADED_NODE.index() {
                continue;
            }
            let h = topo.hops(NodeId(s), NodeId(r));
            match by_hops.iter_mut().find(|(hops, ..)| *hops == h) {
                Some((_, sum, count)) => {
                    *sum += bw;
                    *count += 1;
                }
                None => by_hops.push((h, bw, 1)),
            }
        }
    }
    by_hops.sort_by_key(|&(h, ..)| h);
    for (h, sum, count) in by_hops {
        println!(
            "  {h} hops: {:.3} GB/s over {count} pairs",
            sum / count as f64
        );
    }
}
