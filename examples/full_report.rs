//! Regenerate every table and figure of the paper into `./report/`.
//!
//! Each artifact is written as `<id>.txt` (human-readable) and `<id>.csv`
//! (plot-ready), plus an `index.txt` mapping ids to paper sections.
//!
//! ```bash
//! cargo run --release --example full_report [output-dir]
//! ```

use std::path::PathBuf;

fn main() {
    let out: PathBuf = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "report".to_string())
        .into();
    let artifacts = cluster_eval::report::generate_report(&out).expect("report generation");
    println!("wrote {} artifacts to {}", artifacts.len(), out.display());
    for a in &artifacts {
        println!("  {}", a.id());
    }
}
