//! Scheduler study: what topology-awareness and backfill buy on CTE-Arm.
//!
//! Section II of the paper notes the Fujitsu scheduler is topology-aware;
//! Section VI complains it forbids pinning specific nodes. This example
//! drives a month-in-a-day synthetic workload through the `sched` crate
//! under different policies and prints the utilization, waiting time and
//! allocation-compactness consequences — plus the refusal the paper hit
//! when asking for specific nodes.
//!
//! ```bash
//! cargo run --release --example scheduler_study
//! ```

use interconnect::tofu::TofuD;
use interconnect::topology::NodeId;
use sched::{AllocationPolicy, Allocator, JobRequest, Scheduler};
use simkit::rng::Pcg32;
use simkit::units::Time;

fn workload(seed: u64) -> Vec<JobRequest> {
    // A production-like mix: many small jobs, a few machine-scale ones.
    let mut rng = Pcg32::seeded(seed);
    (0..120)
        .map(|id| {
            let nodes = match rng.next_below(10) {
                0 => 96 + rng.next_below(96) as usize,     // hero runs
                1..=3 => 24 + rng.next_below(40) as usize, // mid-size
                _ => 1 + rng.next_below(12) as usize,      // small
            };
            JobRequest {
                id,
                nodes,
                duration: Time::seconds(rng.uniform(60.0, 7200.0)),
                submit: Time::seconds(rng.uniform(0.0, 43_200.0)),
            }
        })
        .collect()
}

fn main() {
    println!("== CTE-Arm scheduler study: 120 jobs over 12 hours of submissions ==\n");
    println!(
        "{:32} {:>12} {:>12} {:>12} {:>12}",
        "policy", "makespan[h]", "wait[min]", "hops", "utilization"
    );
    for (name, policy, backfill) in [
        (
            "topology-aware + backfill",
            AllocationPolicy::BestFitContiguous,
            true,
        ),
        (
            "topology-aware, strict FCFS",
            AllocationPolicy::BestFitContiguous,
            false,
        ),
        ("first-fit + backfill", AllocationPolicy::FirstFit, true),
        ("random + backfill", AllocationPolicy::Random, true),
    ] {
        let allocator = Allocator::new(TofuD::cte_arm(), policy, 7);
        let (_, stats) = Scheduler::new(allocator, backfill).run(workload(1));
        println!(
            "{:32} {:>12.2} {:>12.1} {:>12.2} {:>11.1}%",
            name,
            stats.makespan.value() / 3600.0,
            stats.mean_wait.value() / 60.0,
            stats.mean_compactness,
            stats.utilization * 100.0
        );
    }

    // The usability restriction the paper reports.
    println!("\nasking for specific nodes, as the authors tried:");
    let mut allocator = Allocator::new(TofuD::cte_arm(), AllocationPolicy::BestFitContiguous, 7);
    match allocator.allocate_specific(&[NodeId(0), NodeId(23), NodeId(42)]) {
        Err(msg) => println!("  scheduler says: \"{msg}\""),
        Ok(_) => unreachable!("CTE-Arm's production policy refuses"),
    }
}
