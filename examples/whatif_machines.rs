//! What-if machine studies with the [`arch::builder::MachineBuilder`].
//!
//! The paper diagnoses *why* CTE-Arm loses on applications: weak scalar
//! core, idle SVE, small memory. This example turns each diagnosis into a
//! counterfactual machine and re-runs the benchmarks:
//!
//! 1. an A64FX with Skylake-class out-of-order strength,
//! 2. an A64FX node with 96 GB of memory (the capacity tax),
//! 3. a Skylake node with HBM (what the memory subsystem alone buys),
//! 4. a double-clocked A64FX (the brute-force alternative).
//!
//! ```bash
//! cargo run --release --example whatif_machines
//! ```

use arch::builder::{a64fx_with_big_memory, MachineBuilder};
use arch::compiler::Compiler;
use arch::cost::{CostModel, KernelProfile};
use arch::machines::{cte_arm, marenostrum4};
use arch::memory::MemoryModel;

fn app_chunk_time(machine: &arch::machines::Machine, compiler: &Compiler) -> f64 {
    // The Alya-assembly-like untuned chunk used throughout the ablations.
    let profile = KernelProfile::dp("app", 1e12, 2e10).with_vectorizable(0.97);
    CostModel::new(&machine.core, &machine.memory, compiler)
        .parallel_time(&profile, 48)
        .value()
}

fn main() {
    let cte = cte_arm();
    let mn4 = marenostrum4();
    let gnu = Compiler::gnu_sve();
    let intel = Compiler::intel();

    let baseline_cte = app_chunk_time(&cte, &gnu);
    let baseline_mn4 = app_chunk_time(&mn4, &intel);
    println!("untuned application chunk (1 node, 48 cores):");
    println!(
        "  CTE-Arm (GNU):        {baseline_cte:.2} s   [{:.2}× MN4]",
        baseline_cte / baseline_mn4
    );
    println!("  MareNostrum 4 (Intel): {baseline_mn4:.2} s\n");

    // 1. Skylake-class out-of-order strength on the A64FX.
    let strong_ooo = MachineBuilder::from(cte.clone())
        .named("A64FX + strong OoO")
        .with_scalar_ilp(0.85)
        .build();
    let t = app_chunk_time(&strong_ooo, &gnu);
    println!(
        "what if the A64FX had Skylake's OoO engine?   {t:.2} s  [{:.2}× MN4]",
        t / baseline_mn4
    );

    // 2. The capacity counterfactual: performance is unchanged, but the
    //    NP cells disappear (Alya fits in 4 nodes instead of 12).
    let big_mem = a64fx_with_big_memory();
    println!(
        "what if the node had 96 GB? same speed, but Alya's minimum drops \
         {} -> {} nodes",
        (316.8e9 / (0.85 * cte.memory.capacity().value())).ceil(),
        (316.8e9 / (0.85 * big_mem.memory.capacity().value())).ceil(),
    );

    // 3. Skylake with HBM.
    let skylake_hbm = MachineBuilder::from(mn4.clone())
        .named("Skylake + HBM")
        .with_memory(MemoryModel::a64fx())
        .build();
    let cfg = hpcg::HpcgConfig::paper(hpcg::HpcgVersion::Optimized);
    let ddr = hpcg::simulate(&mn4, 1, &cfg).gflops;
    let hbm = hpcg::simulate(&skylake_hbm, 1, &cfg).gflops;
    println!(
        "what if Skylake had HBM? HPCG {ddr:.0} -> {hbm:.0} GFlop/s ({:.1}×)",
        hbm / ddr
    );

    // 4. Brute force: a 4.4 GHz A64FX.
    let fast = MachineBuilder::from(cte)
        .named("A64FX @ 4.4 GHz")
        .with_frequency(4.4)
        .build();
    let t = app_chunk_time(&fast, &gnu);
    println!(
        "what if the A64FX clocked 4.4 GHz?            {t:.2} s  [{:.2}× MN4]",
        t / baseline_mn4
    );

    println!(
        "\nconclusion: only fixing the toolchain (see the SVE-uptake ablation) or the \
         scalar core closes the gap — clock and memory alone do not."
    );
}
