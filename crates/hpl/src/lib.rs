//! # hpl — the LINPACK benchmark (Fig. 6)
//!
//! Two halves:
//!
//! * A **real** LU solver lives in [`kernels::lu`]; [`verify_small_system`]
//!   runs it end to end with HPL's own residual check, proving the
//!   simulated benchmark's numerics are the real algorithm's.
//! * A **cluster-scale simulation** ([`simulate`]) walks the blocked
//!   right-looking factorization panel by panel over a P×Q 2-D
//!   block-cyclic grid, costing each stage — panel factorization, panel
//!   broadcast along the row, row swaps along the column, trailing DGEMM
//!   update — against the machine and network models. The paper's
//!   configuration is reproduced: the vendor binary (fully vectorized), N
//!   sized to 80 % of aggregate memory, 4 ranks/node on CTE-Arm (one per
//!   CMG) vs 1 rank/node on MareNostrum 4, and `P×Q = n_ranks`.

#![warn(missing_docs)]

pub mod distributed;
pub mod hpldat;

use arch::machines::Machine;
use interconnect::link::LinkModel;
use kernels::lu::{hpl_residual, lu_factor};
use kernels::matrix::DenseMatrix;
use simkit::rng::Pcg32;
use simkit::units::Time;

/// Sustained fraction of node DP peak a vendor-tuned DGEMM achieves.
///
/// CTE-Arm: Fujitsu's HPL sustains ~88 % (HBM feeds the SVE pipes; the
/// A64FX holds nominal clock under full-node SVE). MareNostrum 4: MKL's
/// DGEMM under package-wide AVX-512 runs at the licence frequency, netting
/// ~72 % of the Table-I nominal peak. These two constants plus the
/// communication model produce the paper's 85 % vs 63 % end-to-end HPL
/// efficiencies.
pub fn vendor_dgemm_efficiency(machine: &Machine) -> f64 {
    // Keyed on the absence of a full-load derate rather than the name, so
    // hypothetical machines behave sensibly.
    if machine.core.full_load_vector_derate >= 0.999 {
        0.88
    } else {
        0.72 * machine.core.full_load_vector_derate / 0.70
    }
}

/// An HPL run configuration.
#[derive(Debug, Clone)]
pub struct HplConfig {
    /// Problem dimension N.
    pub n: usize,
    /// Panel width NB.
    pub nb: usize,
    /// Process-grid rows P.
    pub p: usize,
    /// Process-grid columns Q.
    pub q: usize,
    /// MPI ranks per node (4 on CTE-Arm = one per CMG, 1 on MN4).
    pub ranks_per_node: usize,
    /// Fraction of the panel broadcast/swap traffic hidden behind the
    /// trailing update by HPL's lookahead. Fujitsu's HPL drives TofuD's
    /// RDMA engines asynchronously and hides ~95 % of it; the MareNostrum 4
    /// runs showed the classic non-overlapped scaling behaviour (0.0).
    pub lookahead_overlap: f64,
}

/// The paper's rank mapping for each machine.
pub fn ranks_per_node(machine: &Machine) -> usize {
    if machine.sockets == 1 {
        machine.memory.n_domains // one rank per CMG
    } else {
        1 // Intel's recommended single threaded-MKL rank
    }
}

/// Problem size filling ≥ 80 % of aggregate memory
/// (`N = √(0.80 · mem_bytes / 8)`, rounded down to a multiple of NB).
pub fn problem_size(machine: &Machine, nodes: usize, nb: usize) -> usize {
    let mem = machine.memory.capacity().value() * nodes as f64;
    let n = (0.80 * mem / 8.0).sqrt() as usize;
    (n / nb).max(1) * nb
}

/// Near-square factorization `P×Q = n_ranks` with `P ≤ Q` (HPL's
/// recommended aspect).
pub fn grid_dims(n_ranks: usize) -> (usize, usize) {
    assert!(n_ranks >= 1, "need at least one rank");
    let mut best = (1, n_ranks);
    let mut p = 1;
    while p * p <= n_ranks {
        if n_ranks.is_multiple_of(p) {
            best = (p, n_ranks / p);
        }
        p += 1;
    }
    best
}

/// Build the configuration the paper used for `nodes` nodes of a machine.
pub fn paper_config(machine: &Machine, nodes: usize) -> HplConfig {
    let rpn = ranks_per_node(machine);
    let nb = 240;
    let (p, q) = grid_dims(nodes * rpn);
    HplConfig {
        n: problem_size(machine, nodes, nb),
        nb,
        p,
        q,
        ranks_per_node: rpn,
        lookahead_overlap: if machine.core.full_load_vector_derate >= 0.999 {
            0.95
        } else {
            0.0
        },
    }
}

/// Outcome of a simulated HPL run.
#[derive(Debug, Clone)]
pub struct HplResult {
    /// Wall-clock of the factorization + solve.
    pub time: Time,
    /// Achieved GFlop/s (HPL flop convention).
    pub gflops: f64,
    /// Fraction of the cluster's theoretical peak.
    pub efficiency: f64,
    /// Breakdown: fraction of time in the trailing DGEMM update.
    pub update_fraction: f64,
}

/// Simulate one HPL run of `cfg` on `nodes` nodes of `machine`.
///
/// ```
/// use interconnect::link::LinkModel;
/// let cte = arch::machines::cte_arm();
/// let cfg = hpl::paper_config(&cte, 192);
/// let run = hpl::simulate(&cte, &LinkModel::tofud(), 192, &cfg);
/// // The paper's 85 % HPL efficiency at full scale.
/// assert!((run.efficiency - 0.85).abs() < 0.02);
/// ```
///
/// The network enters through `link`, whose
/// network is described by `link` (the topology enters through the
/// effective hop count of grid-row/column neighbours, which block-cyclic
/// layouts keep small; we charge 3 hops).
pub fn simulate(machine: &Machine, link: &LinkModel, nodes: usize, cfg: &HplConfig) -> HplResult {
    assert!(
        nodes >= 1 && nodes <= machine.nodes,
        "node count out of range"
    );
    assert_eq!(
        cfg.p * cfg.q,
        nodes * cfg.ranks_per_node,
        "grid must cover exactly the allocated ranks"
    );
    let node_peak = machine.peak_dp_node().value();
    let dgemm_rate_node = node_peak * vendor_dgemm_efficiency(machine);
    let cluster_dgemm = dgemm_rate_node * nodes as f64;
    // Panel factorization runs on one grid column (P ranks): its rate is
    // the column's share of the cluster, at half DGEMM efficiency (skinny
    // matrix, pivot search serializes).
    let ranks = (cfg.p * cfg.q) as f64;
    let col_rate = cluster_dgemm * (cfg.p as f64 / ranks) * 0.5;

    let hops = 3;
    let msg = |bytes: f64| link.message_time(simkit::units::Bytes::new(bytes), hops, 1.0);

    let n = cfg.n as f64;
    let nb = cfg.nb as f64;
    let n_panels = cfg.n / cfg.nb;
    let mut t_total = 0.0;
    let mut t_update = 0.0;
    for k in 0..n_panels {
        let m = n - k as f64 * nb; // trailing dimension
                                   // Panel factorization: m·nb² flops on the owning column.
        t_total += (m * nb * nb) / col_rate;
        // Panel broadcast along the grid row: log₂(Q) stages of m×nb
        // doubles; row swaps + U broadcast along the column: log₂(P)
        // stages. Lookahead hides `lookahead_overlap` of it.
        let panel_bytes = m * nb * 8.0;
        let mut t_comm = 0.0;
        if cfg.q > 1 {
            let stages_q = (cfg.q as f64).log2().ceil();
            t_comm += msg(panel_bytes / cfg.p as f64).value() * stages_q;
        }
        if cfg.p > 1 {
            let stages_p = (cfg.p as f64).log2().ceil();
            t_comm += msg(panel_bytes / cfg.q as f64).value() * stages_p;
        }
        t_total += t_comm * (1.0 - cfg.lookahead_overlap.clamp(0.0, 1.0));
        // Trailing update: 2·m²·nb flops spread over the whole grid.
        let upd = 2.0 * m * m * nb / cluster_dgemm;
        t_update += upd;
        t_total += upd;
    }
    let flops = kernels::lu::hpl_flops(cfg.n as u64);
    let gflops = flops / t_total / 1e9;
    HplResult {
        time: Time::seconds(t_total),
        gflops,
        efficiency: gflops * 1e9 / machine.peak_dp_cluster(nodes).value(),
        update_fraction: t_update / t_total,
    }
}

/// [`simulate`] through a [`simkit::cache::Cache`]: Fig. 6 and Table IV
/// sweep overlapping node counts, so whoever runs first pays and the rest
/// reuse. The key captures everything `simulate` reads.
pub fn simulate_cached(
    cache: &simkit::cache::Cache,
    machine: &Machine,
    link: &LinkModel,
    nodes: usize,
    cfg: &HplConfig,
) -> HplResult {
    let key = simkit::cache::CacheKey::new(
        machine.name.clone(),
        "hpl",
        format!("nodes={nodes}|cfg={cfg:?}|link={link:?}"),
    );
    cache.get_or_persistent(key, || simulate(machine, link, nodes, cfg))
}

impl serde::bin::Encode for HplResult {
    fn encode(&self, out: &mut Vec<u8>) {
        self.time.encode(out);
        self.gflops.encode(out);
        self.efficiency.encode(out);
        self.update_fraction.encode(out);
    }
}

impl serde::bin::Decode for HplResult {
    fn decode(r: &mut serde::bin::Reader<'_>) -> Result<Self, serde::bin::DecodeError> {
        Ok(HplResult {
            time: Time::decode(r)?,
            gflops: f64::decode(r)?,
            efficiency: f64::decode(r)?,
            update_fraction: f64::decode(r)?,
        })
    }
}

impl simkit::store::StoreValue for HplResult {
    const TYPE_NAME: &'static str = "hpl::HplResult";
}

/// Run the real LU kernel on a small random system and apply HPL's
/// correctness criterion (scaled residual < 16). Returns the residual.
pub fn verify_small_system(n: usize, nb: usize, seed: u64) -> f64 {
    let mut rng = Pcg32::seeded(seed);
    let a = DenseMatrix::from_fn(n, n, |_, _| rng.uniform(-0.5, 0.5));
    let b: Vec<f64> = (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect();
    let f = lu_factor(a.clone(), nb).expect("random dense matrices are a.s. non-singular");
    let x = f.solve(&b);
    hpl_residual(&a, &x, &b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use arch::machines::{cte_arm, marenostrum4};

    #[test]
    fn real_lu_passes_hpl_check() {
        assert!(verify_small_system(120, 32, 1) < 16.0);
    }

    #[test]
    fn grid_dims_near_square() {
        assert_eq!(grid_dims(1), (1, 1));
        assert_eq!(grid_dims(4), (2, 2));
        assert_eq!(grid_dims(192), (12, 16));
        assert_eq!(grid_dims(768), (24, 32));
        let (p, q) = grid_dims(48);
        assert_eq!(p * q, 48);
        assert!(p <= q);
    }

    #[test]
    fn problem_size_tracks_memory() {
        let cte = cte_arm();
        let n1 = problem_size(&cte, 1, 240);
        // √(0.8·32e9/8) ≈ 56 568 → 56 400 after NB rounding.
        assert!((n1 as f64 - 56_568.0).abs() < 240.0, "N = {n1}");
        let n192 = problem_size(&cte, 192, 240);
        assert!(n192 > 13 * n1, "√192 ≈ 13.9 × single-node N");
        assert_eq!(n192 % 240, 0);
    }

    #[test]
    fn ranks_per_node_matches_paper() {
        assert_eq!(ranks_per_node(&cte_arm()), 4);
        assert_eq!(ranks_per_node(&marenostrum4()), 1);
    }

    #[test]
    fn cte_full_cluster_hits_85_percent() {
        let cte = cte_arm();
        let link = LinkModel::tofud();
        let cfg = paper_config(&cte, 192);
        let r = simulate(&cte, &link, 192, &cfg);
        assert!(
            (r.efficiency - 0.85).abs() < 0.02,
            "CTE-Arm efficiency {}",
            r.efficiency
        );
    }

    #[test]
    fn mn4_192_nodes_hits_63_percent() {
        let mn4 = marenostrum4();
        let link = LinkModel::omnipath();
        let cfg = paper_config(&mn4, 192);
        let r = simulate(&mn4, &link, 192, &cfg);
        assert!(
            (r.efficiency - 0.63).abs() < 0.06,
            "MN4 efficiency {}",
            r.efficiency
        );
    }

    #[test]
    fn linpack_speedup_at_one_node_matches_table4() {
        // Table IV: 1.25× at one node.
        let cte = cte_arm();
        let mn4 = marenostrum4();
        let rc = simulate(&cte, &LinkModel::tofud(), 1, &paper_config(&cte, 1));
        let rm = simulate(&mn4, &LinkModel::omnipath(), 1, &paper_config(&mn4, 1));
        let speedup = rc.gflops / rm.gflops;
        assert!((speedup - 1.25).abs() < 0.12, "speedup {speedup}");
    }

    #[test]
    fn efficiency_decreases_with_scale() {
        let mn4 = marenostrum4();
        let link = LinkModel::omnipath();
        let e1 = simulate(&mn4, &link, 1, &paper_config(&mn4, 1)).efficiency;
        let e192 = simulate(&mn4, &link, 192, &paper_config(&mn4, 192)).efficiency;
        assert!(e192 < e1, "comm overhead must grow: {e1} -> {e192}");
    }

    #[test]
    fn update_dominates_time() {
        let cte = cte_arm();
        let r = simulate(&cte, &LinkModel::tofud(), 16, &paper_config(&cte, 16));
        assert!(
            r.update_fraction > 0.7,
            "DGEMM fraction {}",
            r.update_fraction
        );
    }

    #[test]
    fn gflops_scale_superlinearly_in_name_only() {
        // Strong machine count scaling: 192 nodes ≳ 150× one node.
        let cte = cte_arm();
        let link = LinkModel::tofud();
        let g1 = simulate(&cte, &link, 1, &paper_config(&cte, 1)).gflops;
        let g192 = simulate(&cte, &link, 192, &paper_config(&cte, 192)).gflops;
        assert!(g192 > 150.0 * g1, "{g1} -> {g192}");
    }

    #[test]
    #[should_panic(expected = "grid must cover")]
    fn mismatched_grid_rejected() {
        let cte = cte_arm();
        let mut cfg = paper_config(&cte, 4);
        cfg.p = 3;
        simulate(&cte, &LinkModel::tofud(), 4, &cfg);
    }
}
