//! A functional distributed-memory LU: the real HPL algorithm executed
//! over a P×Q block-cyclic process grid.
//!
//! Where [`crate::simulate`] *costs* the algorithm against machine models,
//! this module *executes* it: the matrix is distributed in `nb × nb` blocks
//! over a P×Q grid (block `(I, J)` lives on process `(I mod P, J mod Q)`),
//! every remote access is an explicit, byte-counted transfer, and the
//! final factors are verified against the shared-memory
//! [`kernels::lu::lu_factor`]. This pins the cluster-scale cost model to a
//! genuinely distributed execution of the same numerics — panel
//! factorization, pivot row swaps, row/column broadcasts, trailing GEMM
//! updates.

use kernels::gemm::gemm_blocked;
use kernels::lu::LuFactors;
use kernels::matrix::DenseMatrix;
use std::collections::HashMap;

/// Communication statistics of a distributed run.
#[derive(Debug, Clone, Copy, Default)]
pub struct CommStats {
    /// Bytes moved for panel gathers/scatters.
    pub panel_bytes: u64,
    /// Bytes moved broadcasting panels along process rows/columns.
    pub broadcast_bytes: u64,
    /// Bytes moved by pivot row swaps.
    pub swap_bytes: u64,
    /// Point-to-point messages sent.
    pub messages: u64,
}

impl CommStats {
    /// Total bytes over the network.
    pub fn total_bytes(&self) -> u64 {
        self.panel_bytes + self.broadcast_bytes + self.swap_bytes
    }
}

/// A matrix distributed block-cyclically over a P×Q grid.
pub struct BlockCyclicLu {
    n: usize,
    nb: usize,
    p: usize,
    q: usize,
    /// Block storage keyed by block coordinates; ownership is implied by
    /// the cyclic map. Every cross-owner read is counted as communication.
    blocks: HashMap<(usize, usize), DenseMatrix>,
    /// Pivot rows in elimination order.
    pivots: Vec<usize>,
    /// Communication counters.
    pub comm: CommStats,
}

impl BlockCyclicLu {
    /// Distribute `a` over a `p × q` grid with `nb × nb` blocks.
    ///
    /// # Panics
    /// Panics unless `a` is square with `n` a multiple of `nb`, and the
    /// grid is non-degenerate.
    pub fn distribute(a: &DenseMatrix, nb: usize, p: usize, q: usize) -> Self {
        assert_eq!(a.rows, a.cols, "LU needs a square matrix");
        assert!(nb >= 1 && p >= 1 && q >= 1, "degenerate configuration");
        assert_eq!(a.rows % nb, 0, "n must be a multiple of nb");
        let n = a.rows;
        let nblocks = n / nb;
        let mut blocks = HashMap::new();
        for bi in 0..nblocks {
            for bj in 0..nblocks {
                let mut blk = DenseMatrix::zeros(nb, nb);
                for j in 0..nb {
                    for i in 0..nb {
                        blk[(i, j)] = a[(bi * nb + i, bj * nb + j)];
                    }
                }
                blocks.insert((bi, bj), blk);
            }
        }
        Self {
            n,
            nb,
            p,
            q,
            blocks,
            pivots: Vec::new(),
            comm: CommStats::default(),
        }
    }

    /// Owner process of block `(bi, bj)`.
    pub fn owner(&self, bi: usize, bj: usize) -> (usize, usize) {
        (bi % self.p, bj % self.q)
    }

    fn nblocks(&self) -> usize {
        self.n / self.nb
    }

    /// Element accessor across the distribution (test/verify helper).
    fn get(&self, i: usize, j: usize) -> f64 {
        self.blocks[&(i / self.nb, j / self.nb)][(i % self.nb, j % self.nb)]
    }

    fn set(&mut self, i: usize, j: usize, v: f64) {
        let nb = self.nb;
        let blk = self
            .blocks
            .get_mut(&(i / nb, j / nb))
            .expect("block exists");
        blk[(i % nb, j % nb)] = v;
    }

    /// Execute the distributed factorization in place. Returns `false` on
    /// a singular panel.
    pub fn factor(&mut self) -> bool {
        let nb = self.nb;
        let nblocks = self.nblocks();
        self.pivots = vec![0; self.n];

        for kb in 0..nblocks {
            let k0 = kb * nb;
            let m = self.n - k0;
            // --- Panel gather: the column of ranks owning block-column kb
            // assembles the m×nb panel at the panel root (kb%p, kb%q).
            let root = self.owner(kb, kb);
            let mut panel = DenseMatrix::zeros(m, nb);
            for bi in kb..nblocks {
                if self.owner(bi, kb) != root {
                    self.comm.panel_bytes += (nb * nb * 8) as u64;
                    self.comm.messages += 1;
                }
                let blk = &self.blocks[&(bi, kb)];
                for j in 0..nb {
                    for i in 0..nb {
                        panel[(bi * nb - k0 + i, j)] = blk[(i, j)];
                    }
                }
            }
            // --- Factor the panel with partial pivoting (local rows are
            // offsets into the trailing rows k0..n).
            let mut local_piv = vec![0usize; nb];
            for k in 0..nb {
                let mut piv = k;
                let mut best = panel[(k, k)].abs();
                for i in k + 1..m {
                    let v = panel[(i, k)].abs();
                    if v > best {
                        best = v;
                        piv = i;
                    }
                }
                if best == 0.0 {
                    return false;
                }
                local_piv[k] = piv;
                if piv != k {
                    for j in 0..nb {
                        let t = panel[(k, j)];
                        panel[(k, j)] = panel[(piv, j)];
                        panel[(piv, j)] = t;
                    }
                }
                let akk = panel[(k, k)];
                for i in k + 1..m {
                    panel[(i, k)] /= akk;
                }
                for j in k + 1..nb {
                    let akj = panel[(k, j)];
                    if akj == 0.0 {
                        continue;
                    }
                    for i in k + 1..m {
                        let lik = panel[(i, k)];
                        panel[(i, j)] -= lik * akj;
                    }
                }
            }
            // --- Scatter the factored panel back to its owners.
            for bi in kb..nblocks {
                if self.owner(bi, kb) != root {
                    self.comm.panel_bytes += (nb * nb * 8) as u64;
                    self.comm.messages += 1;
                }
                let blk = self.blocks.get_mut(&(bi, kb)).expect("block exists");
                for j in 0..nb {
                    for i in 0..nb {
                        blk[(i, j)] = panel[(bi * nb - k0 + i, j)];
                    }
                }
            }
            // --- Apply the pivot swaps to the rest of the matrix (columns
            // outside the panel) and record global pivots.
            for (k, &piv) in local_piv.iter().enumerate() {
                let g1 = k0 + k;
                let g2 = k0 + piv;
                self.pivots[g1] = g2;
                if g1 != g2 {
                    // The panel column is already swapped; swap the others.
                    self.swap_rows_outside_panel(g1, g2, kb);
                }
            }
            // --- Broadcast the L-panel along process rows ((q−1) copies of
            // each owned block leave the owner) and the U-strip along
            // process columns after the triangular solve.
            let l_panel_blocks = (nblocks - kb) as u64;
            self.comm.broadcast_bytes +=
                l_panel_blocks * (nb * nb * 8) as u64 * (self.q as u64 - 1);
            self.comm.messages += l_panel_blocks * (self.q as u64 - 1);

            // --- Triangular solve on the U strip: U(kb, j) ← L₁₁⁻¹·A(kb, j).
            for bj in kb + 1..nblocks {
                let ublk = self.blocks.get_mut(&(kb, bj)).expect("block exists");
                for j in 0..nb {
                    for k in 0..nb {
                        let akj = ublk[(k, j)];
                        if akj == 0.0 {
                            continue;
                        }
                        for i in k + 1..nb {
                            let lik = panel[(i, k)];
                            ublk[(i, j)] -= lik * akj;
                        }
                    }
                }
            }
            let u_strip_blocks = (nblocks - kb - 1) as u64;
            self.comm.broadcast_bytes +=
                u_strip_blocks * (nb * nb * 8) as u64 * (self.p as u64 - 1);
            self.comm.messages += u_strip_blocks * (self.p as u64 - 1);

            // --- Trailing update: A(i, j) ← A(i, j) − L(i, kb)·U(kb, j).
            for bi in kb + 1..nblocks {
                // L(i, kb) arrives via the row broadcast (counted above).
                let mut lblk = self.blocks[&(bi, kb)].clone();
                // Negate so gemm's accumulate computes the subtraction.
                for v in lblk.data_mut() {
                    *v = -*v;
                }
                for bj in kb + 1..nblocks {
                    let ublk = self.blocks[&(kb, bj)].clone();
                    let ablk = self.blocks.get_mut(&(bi, bj)).expect("block exists");
                    gemm_blocked(&lblk, &ublk, ablk);
                }
            }
        }
        true
    }

    /// Row swap restricted to columns outside block-column `kb` (the panel
    /// handled its own swaps during factorization).
    fn swap_rows_outside_panel(&mut self, r1: usize, r2: usize, kb: usize) {
        let nb = self.nb;
        let (b1, b2) = (r1 / nb, r2 / nb);
        for bj in (0..self.nblocks()).filter(|&bj| bj != kb) {
            if self.owner(b1, bj) != self.owner(b2, bj) {
                self.comm.swap_bytes += 2 * (nb as u64) * 8;
                self.comm.messages += 2;
            }
            for j in bj * nb..(bj + 1) * nb {
                let t1 = self.get(r1, j);
                let t2 = self.get(r2, j);
                self.set(r1, j, t2);
                self.set(r2, j, t1);
            }
        }
    }

    /// Gather the distributed factors into shared-memory [`LuFactors`]
    /// (counting the gather traffic) for the solve/verify step.
    pub fn gather_factors(&mut self) -> LuFactors {
        let n = self.n;
        let mut lu = DenseMatrix::zeros(n, n);
        let root = (0, 0);
        for (&(bi, bj), blk) in &self.blocks {
            if self.owner(bi, bj) != root {
                self.comm.panel_bytes += (self.nb * self.nb * 8) as u64;
                self.comm.messages += 1;
            }
            for j in 0..self.nb {
                for i in 0..self.nb {
                    lu[(bi * self.nb + i, bj * self.nb + j)] = blk[(i, j)];
                }
            }
        }
        LuFactors {
            lu,
            pivots: self.pivots.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernels::lu::{hpl_residual, lu_factor};
    use simkit::rng::Pcg32;

    fn random_system(n: usize, seed: u64) -> (DenseMatrix, Vec<f64>) {
        let mut rng = Pcg32::seeded(seed);
        let a = DenseMatrix::from_fn(n, n, |_, _| rng.uniform(-0.5, 0.5));
        let b: Vec<f64> = (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect();
        (a, b)
    }

    #[test]
    fn distributed_solution_passes_hpl_check() {
        let (a, b) = random_system(96, 3);
        let mut dist = BlockCyclicLu::distribute(&a, 16, 2, 3);
        assert!(dist.factor(), "non-singular");
        let x = dist.gather_factors().solve(&b);
        assert!(hpl_residual(&a, &x, &b) < 16.0);
    }

    #[test]
    fn distributed_matches_shared_memory_lu() {
        let (a, b) = random_system(64, 4);
        let serial = lu_factor(a.clone(), 16).unwrap().solve(&b);
        for (p, q) in [(1, 1), (2, 2), (1, 4), (4, 2)] {
            let mut dist = BlockCyclicLu::distribute(&a, 16, p, q);
            assert!(dist.factor());
            let x = dist.gather_factors().solve(&b);
            for (d, s) in x.iter().zip(&serial) {
                assert!((d - s).abs() < 1e-9, "grid {p}×{q}: {d} vs {s}");
            }
        }
    }

    #[test]
    fn single_process_grid_has_no_panel_or_swap_traffic() {
        let (a, _) = random_system(64, 5);
        let mut dist = BlockCyclicLu::distribute(&a, 16, 1, 1);
        assert!(dist.factor());
        assert_eq!(dist.comm.panel_bytes, 0);
        assert_eq!(dist.comm.swap_bytes, 0);
        assert_eq!(dist.comm.broadcast_bytes, 0, "q−1 = p−1 = 0 copies");
    }

    #[test]
    fn communication_grows_with_the_grid() {
        let (a, _) = random_system(96, 6);
        let comm_of = |p: usize, q: usize| {
            let mut dist = BlockCyclicLu::distribute(&a, 16, p, q);
            assert!(dist.factor());
            dist.comm.total_bytes()
        };
        let small = comm_of(2, 2);
        let large = comm_of(3, 4);
        assert!(small > 0);
        assert!(large > small, "{small} -> {large}");
    }

    #[test]
    fn broadcast_traffic_matches_the_cost_models_shape() {
        // The analytic model charges ~(q−1)+(p−1) block copies per trailing
        // block per panel; the executed algorithm must count the same
        // asymptotic volume: Σ_k (nblocks−k)·(q−1) + (nblocks−k−1)·(p−1)
        // blocks.
        let (a, _) = random_system(96, 7);
        let (p, q, nb) = (2usize, 3usize, 16usize);
        let nblocks = 96 / nb;
        let mut dist = BlockCyclicLu::distribute(&a, nb, p, q);
        assert!(dist.factor());
        let mut expected_blocks = 0u64;
        for kb in 0..nblocks {
            expected_blocks += (nblocks - kb) as u64 * (q as u64 - 1);
            expected_blocks += (nblocks - kb - 1) as u64 * (p as u64 - 1);
        }
        assert_eq!(
            dist.comm.broadcast_bytes,
            expected_blocks * (nb * nb * 8) as u64
        );
    }

    #[test]
    fn owner_map_is_cyclic() {
        let (a, _) = random_system(64, 8);
        let dist = BlockCyclicLu::distribute(&a, 16, 2, 3);
        assert_eq!(dist.owner(0, 0), (0, 0));
        assert_eq!(dist.owner(1, 0), (1, 0));
        assert_eq!(dist.owner(2, 0), (0, 0));
        assert_eq!(dist.owner(0, 3), (0, 0));
        assert_eq!(dist.owner(3, 4), (1, 1));
    }

    #[test]
    fn singular_matrix_detected() {
        let z = DenseMatrix::zeros(32, 32);
        let mut dist = BlockCyclicLu::distribute(&z, 16, 2, 2);
        assert!(!dist.factor());
    }

    #[test]
    #[should_panic(expected = "multiple of nb")]
    fn misaligned_block_size_rejected() {
        let (a, _) = random_system(64, 9);
        BlockCyclicLu::distribute(&a, 24, 2, 2);
    }
}
