//! A functional distributed-memory HPCG: the real domain-decomposed CG
//! executed over a P×Q×R process grid with explicit, byte-counted halo
//! exchanges — the executable counterpart of [`crate::simulate`]'s cost
//! model, verified against the global solver in [`kernels::cg`].
//!
//! The global `nx × ny × nz` grid is split into equal boxes. Each rank
//! stores its box plus a one-deep ghost shell; every CG iteration refreshes
//! the shell from up to 26 neighbours (faces, edges, corners — the full
//! 27-point stencil needs them all) before the local SpMV, and the dot
//! products are "allreduced" (summed across ranks, counted as collective
//! traffic).

use kernels::stencil_matrix::StencilMatrix;

/// Communication counters of a distributed solve.
#[derive(Debug, Clone, Copy, Default)]
pub struct HaloStats {
    /// Bytes moved by halo exchanges.
    pub halo_bytes: u64,
    /// Halo messages sent.
    pub halo_messages: u64,
    /// Allreduce operations performed.
    pub allreduces: u64,
}

/// The distributed grid and solver state.
pub struct DistributedCg {
    /// Global dimensions.
    pub global: (usize, usize, usize),
    /// Process grid.
    pub pgrid: (usize, usize, usize),
    /// Local box dimensions (uniform).
    pub local: (usize, usize, usize),
    /// Per-rank local operator on the ghosted box (ghost cells are
    /// Dirichlet-masked to reproduce the global stencil exactly), held in
    /// stencil-packed form — assembled directly from the padded box
    /// dimensions, no triplet buffer.
    local_matrix: StencilMatrix,
    /// Communication counters.
    pub comm: HaloStats,
}

impl DistributedCg {
    /// Decompose a global grid over a `px × py × pz` process grid.
    ///
    /// # Panics
    /// Panics unless each global dimension divides evenly.
    pub fn new(global: (usize, usize, usize), pgrid: (usize, usize, usize)) -> Self {
        let (nx, ny, nz) = global;
        let (px, py, pz) = pgrid;
        assert!(px >= 1 && py >= 1 && pz >= 1, "degenerate process grid");
        assert!(
            nx % px == 0 && ny % py == 0 && nz % pz == 0,
            "grid {global:?} does not divide over {pgrid:?}"
        );
        let local = (nx / px, ny / py, nz / pz);
        assert!(
            local.0 >= 1 && local.1 >= 1 && local.2 >= 1,
            "empty local box"
        );
        // The ghosted local operator: build the stencil over the padded box
        // once; interior rows match the global operator exactly.
        let padded = StencilMatrix::hpcg(local.0 + 2, local.1 + 2, local.2 + 2);
        Self {
            global,
            pgrid,
            local,
            local_matrix: padded,
            comm: HaloStats::default(),
        }
    }

    /// Number of ranks.
    pub fn n_ranks(&self) -> usize {
        self.pgrid.0 * self.pgrid.1 * self.pgrid.2
    }

    fn gid(&self, x: usize, y: usize, z: usize) -> usize {
        (z * self.global.1 + y) * self.global.0 + x
    }

    /// The rank owning global point `(x, y, z)` and its local coordinates.
    fn owner_of(&self, x: usize, y: usize, z: usize) -> (usize, (usize, usize, usize)) {
        let (lx, ly, lz) = self.local;
        let (px, py, _pz) = self.pgrid;
        let (cx, cy, cz) = (x / lx, y / ly, z / lz);
        let rank = (cz * py + cy) * px + cx;
        (rank, (x % lx, y % ly, z % lz))
    }

    /// Distribute a global vector into per-rank ghosted boxes (ghosts 0).
    fn scatter(&self, global_v: &[f64]) -> Vec<Vec<f64>> {
        let (lx, ly, lz) = self.local;
        let (gx, gy, gz) = (lx + 2, ly + 2, lz + 2);
        let mut locals = vec![vec![0.0; gx * gy * gz]; self.n_ranks()];
        for z in 0..self.global.2 {
            for y in 0..self.global.1 {
                for x in 0..self.global.0 {
                    let (rank, (i, j, k)) = self.owner_of(x, y, z);
                    let lidx = ((k + 1) * gy + (j + 1)) * gx + (i + 1);
                    locals[rank][lidx] = global_v[self.gid(x, y, z)];
                }
            }
        }
        locals
    }

    /// Gather per-rank interiors into a global vector.
    fn gather(&self, locals: &[Vec<f64>]) -> Vec<f64> {
        let (lx, ly, _lz) = self.local;
        let (gx, gy) = (lx + 2, ly + 2);
        let mut global_v = vec![0.0; self.global.0 * self.global.1 * self.global.2];
        for z in 0..self.global.2 {
            for y in 0..self.global.1 {
                for x in 0..self.global.0 {
                    let (rank, (i, j, k)) = self.owner_of(x, y, z);
                    let lidx = ((k + 1) * gy + (j + 1)) * gx + (i + 1);
                    global_v[self.gid(x, y, z)] = locals[rank][lidx];
                }
            }
        }
        global_v
    }

    /// Refresh every rank's ghost shell from the owners of the adjacent
    /// global points, counting the traffic. Out-of-domain ghosts stay 0
    /// (the global operator's Dirichlet boundary).
    fn halo_exchange(&mut self, locals: &mut [Vec<f64>]) {
        let (lx, ly, lz) = self.local;
        let (gx, gy) = (lx + 2, ly + 2);
        let (nx, ny, nz) = self.global;
        let mut bytes = 0u64;
        // Walk each rank's ghost cells; pull the value from the owner.
        for cz in 0..self.pgrid.2 {
            for cy in 0..self.pgrid.1 {
                for cx in 0..self.pgrid.0 {
                    let rank = (cz * self.pgrid.1 + cy) * self.pgrid.0 + cx;
                    let (ox, oy, oz) = (cx * lx, cy * ly, cz * lz); // box origin
                    for k in 0..lz + 2 {
                        for j in 0..ly + 2 {
                            for i in 0..lx + 2 {
                                let interior = (1..=lx).contains(&i)
                                    && (1..=ly).contains(&j)
                                    && (1..=lz).contains(&k);
                                if interior {
                                    continue;
                                }
                                let (gxp, gyp, gzp) = (
                                    ox as i64 + i as i64 - 1,
                                    oy as i64 + j as i64 - 1,
                                    oz as i64 + k as i64 - 1,
                                );
                                let lidx = (k * gy + j) * gx + i;
                                if gxp < 0
                                    || gyp < 0
                                    || gzp < 0
                                    || gxp >= nx as i64
                                    || gyp >= ny as i64
                                    || gzp >= nz as i64
                                {
                                    locals[rank][lidx] = 0.0; // domain boundary
                                    continue;
                                }
                                let (src, (si, sj, sk)) =
                                    self.owner_of(gxp as usize, gyp as usize, gzp as usize);
                                let sidx = ((sk + 1) * gy + (sj + 1)) * gx + (si + 1);
                                let v = locals[src][sidx];
                                locals[rank][lidx] = v;
                                if src != rank {
                                    bytes += 8;
                                }
                            }
                        }
                    }
                    // Up to 26 neighbour messages per rank per exchange.
                    let neighbours = 26u64.min((self.n_ranks() - 1) as u64);
                    self.comm.halo_messages += neighbours;
                }
            }
        }
        self.comm.halo_bytes += bytes;
    }

    /// Local SpMV on the ghosted box, writing interior results only.
    fn local_spmv(&self, x: &[f64], y: &mut [f64]) {
        self.local_matrix.spmv(x, y);
    }

    fn interior_dot(&self, a: &[f64], b: &[f64]) -> f64 {
        let (lx, ly, lz) = self.local;
        let (gx, gy) = (lx + 2, ly + 2);
        let mut sum = 0.0;
        for k in 1..=lz {
            for j in 1..=ly {
                for i in 1..=lx {
                    let idx = (k * gy + j) * gx + i;
                    sum += a[idx] * b[idx];
                }
            }
        }
        sum
    }

    /// Run distributed (unpreconditioned) CG on `A·x = b` with the global
    /// HPCG operator. Returns `(x_global, iterations, relative_residual)`.
    pub fn solve(
        &mut self,
        b_global: &[f64],
        max_iters: usize,
        tol: f64,
    ) -> (Vec<f64>, usize, f64) {
        let n = self.global.0 * self.global.1 * self.global.2;
        assert_eq!(b_global.len(), n, "rhs dimension mismatch");
        let ranks = self.n_ranks();

        let mut x = self.scatter(&vec![0.0; n]);
        let mut r = self.scatter(b_global);
        let mut p = r.clone();
        let box_len = x[0].len();

        let global_dot = |dcg: &mut Self, a: &[Vec<f64>], b: &[Vec<f64>]| -> f64 {
            dcg.comm.allreduces += 1;
            (0..ranks).map(|rk| dcg.interior_dot(&a[rk], &b[rk])).sum()
        };

        let b_norm = global_dot(self, &r, &r).sqrt();
        if b_norm == 0.0 {
            return (vec![0.0; n], 0, 0.0);
        }
        let mut rr = b_norm * b_norm;
        let mut ap = vec![vec![0.0; box_len]; ranks];
        let mut iters = 0;
        let mut rel = 1.0;
        for _ in 0..max_iters {
            // Refresh ghosts of p, then local SpMV everywhere.
            self.halo_exchange(&mut p);
            for rk in 0..ranks {
                self.local_spmv(&p[rk], &mut ap[rk]);
            }
            let pap = global_dot(self, &p, &ap);
            let alpha = rr / pap;
            for rk in 0..ranks {
                for (xi, pi) in x[rk].iter_mut().zip(&p[rk]) {
                    *xi += alpha * pi;
                }
                for (ri, api) in r[rk].iter_mut().zip(&ap[rk]) {
                    *ri -= alpha * api;
                }
            }
            iters += 1;
            let rr_new = global_dot(self, &r, &r);
            rel = rr_new.sqrt() / b_norm;
            if rel < tol {
                break;
            }
            let beta = rr_new / rr;
            rr = rr_new;
            for rk in 0..ranks {
                for (pi, ri) in p[rk].iter_mut().zip(&r[rk]) {
                    *pi = ri + beta * *pi;
                }
            }
        }
        (self.gather(&x), iters, rel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernels::cg::{build_hpcg_matrix, cg_solve};

    #[test]
    fn distributed_matches_global_cg() {
        let global = (8, 8, 8);
        let a = build_hpcg_matrix(global.0, global.1, global.2);
        let b: Vec<f64> = (0..a.n).map(|i| ((i % 13) as f64) - 6.0).collect();
        let reference = cg_solve(&a, &b, 300, 1e-10, false);
        for pgrid in [(1, 1, 1), (2, 1, 1), (2, 2, 1), (2, 2, 2)] {
            let mut dcg = DistributedCg::new(global, pgrid);
            let (x, _iters, rel) = dcg.solve(&b, 300, 1e-10);
            assert!(rel < 1e-10, "{pgrid:?}: residual {rel}");
            for (d, g) in x.iter().zip(&reference.x) {
                assert!((d - g).abs() < 1e-7, "{pgrid:?}: {d} vs {g}");
            }
        }
    }

    #[test]
    fn single_rank_has_no_halo_traffic() {
        let mut dcg = DistributedCg::new((6, 6, 6), (1, 1, 1));
        let b = vec![1.0; 216];
        let (_, iters, rel) = dcg.solve(&b, 200, 1e-9);
        assert!(rel < 1e-9);
        assert!(iters > 0);
        assert_eq!(dcg.comm.halo_bytes, 0, "everything is rank-local");
    }

    #[test]
    fn halo_traffic_scales_with_surface_area() {
        // Surface/volume: a 2×2×2 decomposition of 8³ exchanges more bytes
        // per iteration than 2×1×1 (more cut planes).
        let b = vec![1.0; 512];
        let bytes_per_iter = |pgrid| {
            let mut dcg = DistributedCg::new((8, 8, 8), pgrid);
            let (_, iters, _) = dcg.solve(&b, 10, 0.0);
            dcg.comm.halo_bytes as f64 / iters as f64
        };
        let two_cuts = bytes_per_iter((2, 1, 1));
        let many_cuts = bytes_per_iter((2, 2, 2));
        assert!(many_cuts > 2.0 * two_cuts, "{two_cuts} -> {many_cuts}");
    }

    #[test]
    fn allreduce_count_matches_cg_structure() {
        // Plain CG: 1 initial + 2 per iteration.
        let mut dcg = DistributedCg::new((6, 6, 6), (2, 1, 1));
        let b = vec![1.0; 216];
        let (_, iters, _) = dcg.solve(&b, 7, 0.0);
        assert_eq!(iters, 7);
        assert_eq!(dcg.comm.allreduces, 1 + 2 * 7);
    }

    #[test]
    fn convergence_is_independent_of_decomposition() {
        let global = (8, 8, 8);
        let a = build_hpcg_matrix(global.0, global.1, global.2);
        let b: Vec<f64> = (0..a.n).map(|i| (i as f64 * 0.37).sin()).collect();
        let iters_of = |pgrid| {
            let mut dcg = DistributedCg::new(global, pgrid);
            dcg.solve(&b, 300, 1e-9).1
        };
        let i1 = iters_of((1, 1, 1));
        let i8 = iters_of((2, 2, 2));
        assert_eq!(i1, i8, "same math, same iteration count");
    }

    #[test]
    #[should_panic(expected = "does not divide")]
    fn mismatched_decomposition_rejected() {
        DistributedCg::new((7, 8, 8), (2, 2, 2));
    }
}
