//! # hpcg — the HPCG benchmark (Fig. 7)
//!
//! Like [`hpl`], two halves:
//!
//! * The **real algorithm** — 27-point operator, symmetric Gauss–Seidel,
//!   preconditioned CG — lives in [`kernels::cg`] and is exercised end to
//!   end by [`verify_small_grid`].
//! * The **cluster-scale simulation** ([`simulate`]) reproduces the paper's
//!   runs: local grid `48 × 88 × 88` per rank, MPI-only with 48 ranks per
//!   node, Vanilla (compiled as-is) vs Optimized (vendor binary) versions.
//!
//! HPCG is bandwidth-bound, so a node's throughput is its sustained memory
//! bandwidth divided by the implementation's **bytes-per-flop** — how much
//! memory traffic each useful flop drags along. The vendor binaries have
//! lower bytes/flop (blocked SpMV, SVE gathers, zfill stores); the Vanilla
//! build on the A64FX additionally runs on the write-allocate store path
//! that caps the C-compiled STREAM at 421 GB/s (Section III-B).
//!
//! | build | bandwidth source | bytes/flop |
//! |---|---|---|
//! | CTE-Arm Optimized | 862.6 GB/s (Fortran-path HBM) | 8.8 |
//! | CTE-Arm Vanilla | 421.1 GB/s (C-path HBM) | 12.0 |
//! | MN4 Optimized | 201.2 GB/s | 5.1 |
//! | MN4 Vanilla | 201.2 GB/s | 7.0 |
//!
//! At scale the fat tree loses ground (tapered uplinks congest the
//! 26-neighbour halo traffic of 9216 ranks) while TofuD's torus carries
//! halos on dedicated neighbour links; the calibrated scale terms below
//! reproduce the paper's 2.91 → 2.96 % (CTE-Arm) and 1.22 → 0.96 % (MN4)
//! fractions of peak.

#![warn(missing_docs)]

pub mod distributed;
pub mod output;

use arch::compiler::Language;
use arch::machines::Machine;
use kernels::cg::cg_solve;
use kernels::stencil_matrix::StencilMatrix;
use simkit::units::Time;

/// Which HPCG build is running.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HpcgVersion {
    /// Compiled as-is from the reference sources.
    Vanilla,
    /// Vendor-optimized binary.
    Optimized,
}

/// An HPCG run configuration.
#[derive(Debug, Clone)]
pub struct HpcgConfig {
    /// Local (per-rank) grid dimensions.
    pub nx: usize,
    /// Local y-dimension.
    pub ny: usize,
    /// Local z-dimension.
    pub nz: usize,
    /// Ranks per node (48: MPI-only, one per core).
    pub ranks_per_node: usize,
    /// Build variant.
    pub version: HpcgVersion,
}

impl HpcgConfig {
    /// The paper's configuration: `--nx=48 --ny=88 --nz=88`, 48 ranks/node.
    pub fn paper(version: HpcgVersion) -> Self {
        Self {
            nx: 48,
            ny: 88,
            nz: 88,
            ranks_per_node: 48,
            version,
        }
    }

    /// Grid points owned by one rank.
    pub fn local_points(&self) -> usize {
        self.nx * self.ny * self.nz
    }
}

/// Effective streaming bandwidth (bytes/s) of one node for a build.
pub fn effective_bandwidth(machine: &Machine, version: HpcgVersion) -> f64 {
    match version {
        // The vendor binary streams like the best (Fortran-path) STREAM.
        HpcgVersion::Optimized => machine.memory.app_sustained_bandwidth().value(),
        // The as-is C++ build rides the write-allocate store path: on the
        // A64FX that is the 421 GB/s C-STREAM result; on MN4 both paths
        // sustain the same bandwidth.
        HpcgVersion::Vanilla => {
            machine.memory.domain.peak_bandwidth.value()
                * machine.memory.mpi_efficiency.get(Language::C)
                * machine.memory.n_domains as f64
        }
    }
}

/// Implementation bytes-per-flop (see module docs for the table).
pub fn bytes_per_flop(machine: &Machine, version: HpcgVersion) -> f64 {
    let hbm = machine.core.full_load_vector_derate >= 0.999;
    match (hbm, version) {
        // 256-byte lines waste bandwidth on CSR gathers; zfill + SVE
        // gathers claw some back in the vendor build.
        (true, HpcgVersion::Optimized) => 8.8,
        (true, HpcgVersion::Vanilla) => 12.0,
        // MKL's blocked SpMV reuses cache lines well.
        (false, HpcgVersion::Optimized) => 5.1,
        (false, HpcgVersion::Vanilla) => 7.0,
    }
}

/// Multi-node scale efficiency of the halo/allreduce traffic (calibrated
/// against the paper's two published points per machine; see module docs).
pub fn scale_efficiency(machine: &Machine, nodes: usize) -> f64 {
    let l = (nodes as f64).log2();
    if machine.interconnect.contains("Tofu") {
        // Torus neighbour links carry the halos without contention; the
        // measured fraction even rises slightly (2.91 → 2.96 %).
        1.0 + 0.0022 * l
    } else {
        // Tapered fat-tree uplinks congest under 26-neighbour halo traffic.
        1.0 / (1.0 + 0.035 * l)
    }
}

/// Outcome of a simulated HPCG run.
#[derive(Debug, Clone)]
pub struct HpcgResult {
    /// Achieved GFlop/s across the allocation.
    pub gflops: f64,
    /// Fraction of theoretical peak.
    pub fraction_of_peak: f64,
    /// Simulated wall-clock for the rated residual reduction.
    pub time: Time,
}

/// Flops HPCG executes per grid point per CG iteration: SpMV (2·27) +
/// SymGS forward+backward (4·27) + BLAS-1 (~10).
pub const FLOPS_PER_POINT_ITER: f64 = 2.0 * 27.0 + 4.0 * 27.0 + 10.0;

/// Simulate an HPCG run on `nodes` nodes.
///
/// ```
/// use hpcg::{simulate, HpcgConfig, HpcgVersion};
/// let cte = arch::machines::cte_arm();
/// let run = simulate(&cte, 1, &HpcgConfig::paper(HpcgVersion::Optimized));
/// // The paper's 2.91 % of peak on one node.
/// assert!((run.fraction_of_peak - 0.0291).abs() < 0.002);
/// ```
pub fn simulate(machine: &Machine, nodes: usize, cfg: &HpcgConfig) -> HpcgResult {
    assert!(
        nodes >= 1 && nodes <= machine.nodes,
        "node count out of range"
    );
    assert!(
        cfg.ranks_per_node <= machine.cores_per_node(),
        "rank oversubscription"
    );
    let node_gflops =
        effective_bandwidth(machine, cfg.version) / bytes_per_flop(machine, cfg.version) / 1e9;
    let gflops = node_gflops * nodes as f64 * scale_efficiency(machine, nodes);
    let peak = machine.peak_dp_cluster(nodes).as_gflops();
    // Rated run: 50 CG iterations over the global problem.
    let iters = 50.0;
    let total_flops = iters
        * FLOPS_PER_POINT_ITER
        * cfg.local_points() as f64
        * (cfg.ranks_per_node * nodes) as f64;
    HpcgResult {
        gflops,
        fraction_of_peak: gflops / peak,
        time: Time::seconds(total_flops / (gflops * 1e9)),
    }
}

/// Symbolic access trace of one rank's SpMV over the local grid — the
/// dominant memory pattern of the CG iteration (SymGS touches the same
/// arrays with the same indirection).
pub fn traffic_trace(cfg: &HpcgConfig) -> arch::Trace {
    kernels::cg::spmv_csr_traffic_trace(cfg.nx as u64, cfg.ny as u64, cfg.nz as u64)
}

/// Fraction-of-peak predicted by the cache-hierarchy model rather than
/// the calibrated [`bytes_per_flop`] table: simulates the local-grid
/// SpMV trace through the machine's cache hierarchy and port model.
/// Returns `None` for machines the trace predictor has no hierarchy
/// config for. [`simulate`] is untouched — this is the differential
/// check that the calibrated path and the mechanistic path agree.
pub fn cache_model_fraction_of_peak(machine: &Machine, cfg: &HpcgConfig) -> Option<f64> {
    let predictor = arch::cachesim::Predictor::for_machine(machine)?;
    let trace = traffic_trace(cfg);
    let n = cfg.local_points() as f64;
    let spec = arch::KernelSpec {
        name: "hpcg_spmv".into(),
        // SpMV flops of the full 27-lane unroll, matching the trace.
        flops: 2.0 * 27.0 * n,
        counted_bytes: trace.nominal_bytes() as f64,
        vectorizable: 1.0,
        tuned: cfg.version == HpcgVersion::Optimized,
    };
    Some(predictor.predict(&spec, &trace).pct_peak_flops)
}

/// [`simulate`] through a [`simkit::cache::Cache`]: Fig. 7 and Table IV
/// run the same `(machine, nodes, config)` points, so whoever runs first
/// pays and the rest reuse.
pub fn simulate_cached(
    cache: &simkit::cache::Cache,
    machine: &Machine,
    nodes: usize,
    cfg: &HpcgConfig,
) -> HpcgResult {
    let key = simkit::cache::CacheKey::new(
        machine.name.clone(),
        "hpcg",
        format!("nodes={nodes}|cfg={cfg:?}"),
    );
    cache.get_or_persistent(key, || simulate(machine, nodes, cfg))
}

impl serde::bin::Encode for HpcgResult {
    fn encode(&self, out: &mut Vec<u8>) {
        self.gflops.encode(out);
        self.fraction_of_peak.encode(out);
        self.time.encode(out);
    }
}

impl serde::bin::Decode for HpcgResult {
    fn decode(r: &mut serde::bin::Reader<'_>) -> Result<Self, serde::bin::DecodeError> {
        Ok(HpcgResult {
            gflops: f64::decode(r)?,
            fraction_of_peak: f64::decode(r)?,
            time: Time::decode(r)?,
        })
    }
}

impl simkit::store::StoreValue for HpcgResult {
    const TYPE_NAME: &'static str = "hpcg::HpcgResult";
}

/// Run the real preconditioned CG on a small grid and return
/// `(iterations, relative_residual, achieved_host_gflops)`. Used by tests
/// and benches to pin the simulated benchmark to the genuine algorithm.
/// Runs on the structure-aware [`StencilMatrix`] engine — stencil-packed
/// SpMV and the parallel multicolor SymGS preconditioner.
pub fn verify_small_grid(nx: usize, ny: usize, nz: usize) -> (usize, f64, f64) {
    let a = StencilMatrix::hpcg(nx, ny, nz);
    let b = vec![1.0; a.n];
    let t0 = std::time::Instant::now();
    let res = cg_solve(&a, &b, 200, 1e-8, true);
    let dt = t0.elapsed().as_secs_f64();
    (res.iterations, res.relative_residual, res.flops / dt / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use arch::machines::{cte_arm, marenostrum4};

    #[test]
    fn real_cg_converges_on_small_grid() {
        let (iters, rel, gflops) = verify_small_grid(8, 8, 8);
        assert!(rel < 1e-8, "residual {rel}");
        assert!(
            iters < 50,
            "SymGS-preconditioned CG converges fast: {iters}"
        );
        assert!(gflops > 0.0);
    }

    #[test]
    fn cte_optimized_single_node_fraction() {
        // Paper: 2.91 % of peak on one node.
        let cte = cte_arm();
        let r = simulate(&cte, 1, &HpcgConfig::paper(HpcgVersion::Optimized));
        assert!(
            (r.fraction_of_peak - 0.0291).abs() < 0.002,
            "fraction {}",
            r.fraction_of_peak
        );
    }

    #[test]
    fn cte_optimized_192_nodes_fraction() {
        // Paper: 2.96 % of peak on 192 nodes.
        let cte = cte_arm();
        let r = simulate(&cte, 192, &HpcgConfig::paper(HpcgVersion::Optimized));
        assert!(
            (r.fraction_of_peak - 0.0296).abs() < 0.002,
            "fraction {}",
            r.fraction_of_peak
        );
    }

    #[test]
    fn speedup_matches_table4() {
        // Table IV: HPCG speedup CTE/MN4 = 2.50 at 1 node, 3.24 at 192.
        let cte = cte_arm();
        let mn4 = marenostrum4();
        let cfg = HpcgConfig::paper(HpcgVersion::Optimized);
        let s1 = simulate(&cte, 1, &cfg).gflops / simulate(&mn4, 1, &cfg).gflops;
        assert!((s1 - 2.50).abs() < 0.25, "1-node speedup {s1}");
        let s192 = simulate(&cte, 192, &cfg).gflops / simulate(&mn4, 192, &cfg).gflops;
        assert!((s192 - 3.24).abs() < 0.33, "192-node speedup {s192}");
    }

    #[test]
    fn vanilla_is_slower_than_optimized_everywhere() {
        for m in [cte_arm(), marenostrum4()] {
            let v = simulate(&m, 1, &HpcgConfig::paper(HpcgVersion::Vanilla));
            let o = simulate(&m, 1, &HpcgConfig::paper(HpcgVersion::Optimized));
            assert!(v.gflops < o.gflops, "{}: vanilla must lose", m.name);
        }
    }

    #[test]
    fn vanilla_gap_is_larger_on_a64fx() {
        // The A64FX vanilla build loses both bandwidth (C store path) and
        // bytes/flop, so its vanilla/optimized ratio is worse than MN4's.
        let cte = cte_arm();
        let mn4 = marenostrum4();
        let ratio = |m: &Machine| {
            simulate(m, 1, &HpcgConfig::paper(HpcgVersion::Vanilla)).gflops
                / simulate(m, 1, &HpcgConfig::paper(HpcgVersion::Optimized)).gflops
        };
        assert!(ratio(&cte) < ratio(&mn4));
    }

    #[test]
    fn hpcg_is_far_below_hpl_fractions() {
        // The paper's closing remark: HPCG sits at a few % of peak while
        // LINPACK reaches 63–85 %.
        let cte = cte_arm();
        let r = simulate(&cte, 192, &HpcgConfig::paper(HpcgVersion::Optimized));
        assert!(r.fraction_of_peak < 0.05);
    }

    #[test]
    fn local_problem_size_matches_paper() {
        let cfg = HpcgConfig::paper(HpcgVersion::Optimized);
        assert_eq!(cfg.local_points(), 48 * 88 * 88);
        assert_eq!(cfg.ranks_per_node, 48);
    }

    #[test]
    fn simulated_time_is_positive_and_scales() {
        let cte = cte_arm();
        let cfg = HpcgConfig::paper(HpcgVersion::Optimized);
        let t1 = simulate(&cte, 1, &cfg).time;
        let t192 = simulate(&cte, 192, &cfg).time;
        // Weak-scaled problem: time per node is ~constant.
        let ratio = t192.value() / t1.value();
        assert!((ratio - 1.0).abs() < 0.05, "weak-scaling ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "rank oversubscription")]
    fn oversubscription_rejected() {
        let cte = cte_arm();
        let mut cfg = HpcgConfig::paper(HpcgVersion::Optimized);
        cfg.ranks_per_node = 49;
        simulate(&cte, 1, &cfg);
    }

    #[test]
    fn cache_model_agrees_with_calibrated_path() {
        // The mechanistic cache-model prediction and the calibrated
        // bytes-per-flop table must land in the same regime — both say
        // "a few percent of peak" for the vendor build on the A64FX.
        let cte = cte_arm();
        let cfg = HpcgConfig::paper(HpcgVersion::Optimized);
        let calibrated = simulate(&cte, 1, &cfg).fraction_of_peak;
        let modeled = cache_model_fraction_of_peak(&cte, &cfg).unwrap();
        assert!(
            modeled > 0.5 * calibrated && modeled < 2.0 * calibrated,
            "cache model {modeled} vs calibrated {calibrated}"
        );
    }

    #[test]
    fn cache_model_skips_unknown_machines() {
        let mut m = cte_arm();
        m.name = "unknown".into();
        let cfg = HpcgConfig::paper(HpcgVersion::Optimized);
        assert!(cache_model_fraction_of_peak(&m, &cfg).is_none());
    }
}
