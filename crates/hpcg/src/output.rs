//! The official-style HPCG result file.
//!
//! Real HPCG writes a `HPCG-Benchmark_3.1_...txt` YAML-ish report whose
//! final `GFLOP/s rating` line is what submitters quote. This module
//! renders (and parses back) that format for simulated runs, so results
//! can be compared side by side with files from real machines.

use crate::{HpcgConfig, HpcgResult};

/// Render a result in the official benchmark-report layout (the fields
/// the rating pipeline reads).
pub fn render_report(
    machine_name: &str,
    nodes: usize,
    cfg: &HpcgConfig,
    result: &HpcgResult,
) -> String {
    let ranks = nodes * cfg.ranks_per_node;
    format!(
        "HPCG-Benchmark version=3.1\n\
         Release date=March 28, 2019\n\
         Machine Summary=\n\
         Machine Summary::Distributed Processes={ranks}\n\
         Machine Summary::Threads per processes=1\n\
         Global Problem Dimensions=\n\
         Global Problem Dimensions::Global nx={gnx}\n\
         Global Problem Dimensions::Global ny={gny}\n\
         Global Problem Dimensions::Global nz={gnz}\n\
         Local Domain Dimensions=\n\
         Local Domain Dimensions::nx={nx}\n\
         Local Domain Dimensions::ny={ny}\n\
         Local Domain Dimensions::nz={nz}\n\
         ########## Performance Summary (times in sec) ##########=\n\
         Benchmark Time Summary::Total={total:.4}\n\
         GFLOP/s Summary::Raw Total={gflops:.4}\n\
         Final Summary=\n\
         Final Summary::HPCG result is VALID with a GFLOP/s rating of={gflops:.4}\n\
         Final Summary::Results are valid but execution time (sec) is={total:.4}\n\
         # machine={name}\n",
        ranks = ranks,
        gnx = cfg.nx * ranks_x(ranks),
        gny = cfg.ny * ranks_y(ranks),
        gnz = cfg.nz * ranks_z(ranks),
        nx = cfg.nx,
        ny = cfg.ny,
        nz = cfg.nz,
        total = result.time.value(),
        gflops = result.gflops,
        name = machine_name,
    )
}

// HPCG factors the rank count into a near-cubic 3-D grid; we reproduce its
// simple factorization for the global-dimension lines.
fn ranks_x(ranks: usize) -> usize {
    let mut best = 1;
    let mut f = 1;
    while f * f * f <= ranks {
        if ranks.is_multiple_of(f) {
            best = f;
        }
        f += 1;
    }
    best
}

fn ranks_y(ranks: usize) -> usize {
    let rx = ranks_x(ranks);
    let rest = ranks / rx;
    let mut best = 1;
    let mut f = 1;
    while f * f <= rest {
        if rest.is_multiple_of(f) {
            best = f;
        }
        f += 1;
    }
    best
}

fn ranks_z(ranks: usize) -> usize {
    ranks / ranks_x(ranks) / ranks_y(ranks)
}

/// Extract the `GFLOP/s rating` from a report (ours or a real one).
pub fn parse_rating(report: &str) -> Option<f64> {
    for line in report.lines() {
        if let Some(idx) = line.find("GFLOP/s rating of=") {
            return line[idx + "GFLOP/s rating of=".len()..].trim().parse().ok();
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, HpcgVersion};
    use arch::machines::cte_arm;

    #[test]
    fn report_roundtrips_the_rating() {
        let cte = cte_arm();
        let cfg = HpcgConfig::paper(HpcgVersion::Optimized);
        let result = simulate(&cte, 1, &cfg);
        let report = render_report(&cte.name, 1, &cfg, &result);
        let rating = parse_rating(&report).expect("rating present");
        assert!((rating - result.gflops).abs() < 1e-3);
        assert!(report.contains("Distributed Processes=48"));
        assert!(report.contains("Local Domain Dimensions::nx=48"));
    }

    #[test]
    fn rank_grid_factorization_covers_the_ranks() {
        for ranks in [1usize, 48, 96, 192, 9216] {
            let (x, y, z) = (ranks_x(ranks), ranks_y(ranks), ranks_z(ranks));
            assert_eq!(x * y * z, ranks, "ranks {ranks} -> {x}×{y}×{z}");
            assert!(x <= y || x <= z, "near-cubic ordering");
        }
    }

    #[test]
    fn parses_a_real_style_snippet() {
        let snippet = "\
Final Summary=
Final Summary::HPCG result is VALID with a GFLOP/s rating of=16004.50
";
        assert_eq!(parse_rating(snippet), Some(16004.50));
        assert_eq!(parse_rating("no rating here"), None);
    }
}
