//! Labelled data series, figures and tables.
//!
//! Every experiment in the workspace produces a [`Figure`] (a set of named
//! [`Series`]) or a [`Table`]. Rendering is plain text and CSV — the shapes
//! the paper reports are checked numerically in tests, and the harness
//! prints the same rows/series the paper plots.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One named line on a figure: `(x, y)` points in plot order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Series {
    /// Legend label, e.g. `"CTE-Arm"` or `"MareNostrum 4 (C)"`.
    pub label: String,
    /// Data points in plot order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// An empty series with the given label.
    pub fn new(label: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Append a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// The `y` value at the given `x`, if present (exact match).
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(px, _)| (*px - x).abs() < 1e-9)
            .map(|&(_, y)| y)
    }

    /// Maximum `y` over the series (NaN-free input assumed); None if empty.
    pub fn y_max(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, y)| y)
            .fold(None, |acc, y| Some(acc.map_or(y, |m: f64| m.max(y))))
    }

    /// Minimum `y` over the series; None if empty.
    pub fn y_min(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, y)| y)
            .fold(None, |acc, y| Some(acc.map_or(y, |m: f64| m.min(y))))
    }

    /// The `x` of the maximum `y`; None if empty.
    pub fn argmax(&self) -> Option<f64> {
        self.points
            .iter()
            .fold(None, |acc: Option<(f64, f64)>, &(x, y)| match acc {
                Some((_, best)) if best >= y => acc,
                _ => Some((x, y)),
            })
            .map(|(x, _)| x)
    }

    /// True if `y` is non-increasing in plot order (within `tol` slack),
    /// i.e. the series scales (time drops as resources grow).
    pub fn is_non_increasing(&self, tol: f64) -> bool {
        self.points
            .windows(2)
            .all(|w| w[1].1 <= w[0].1 * (1.0 + tol))
    }
}

/// A figure: an identifier, axis labels, and a set of series.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure {
    /// Identifier matching the paper, e.g. `"fig2"`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// All series on the figure.
    pub series: Vec<Series>,
}

impl Figure {
    /// An empty figure.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Add a series and return `self` for chaining.
    pub fn with_series(mut self, s: Series) -> Self {
        self.series.push(s);
        self
    }

    /// Find a series by label.
    pub fn series_named(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }

    /// Render as CSV: header `x,<label1>,<label2>,...` with one row per
    /// distinct x (union over series; missing values empty).
    pub fn to_csv(&self) -> String {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|&(x, _)| x))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);

        let mut out = String::new();
        out.push('x');
        for s in &self.series {
            let _ = write!(out, ",{}", csv_escape(&s.label));
        }
        out.push('\n');
        for &x in &xs {
            let _ = write!(out, "{x}");
            for s in &self.series {
                match s.y_at(x) {
                    Some(y) => {
                        let _ = write!(out, ",{y}");
                    }
                    None => out.push(','),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Render a human-readable text block (title, axes, per-series points).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        let _ = writeln!(out, "   x: {} | y: {}", self.x_label, self.y_label);
        for s in &self.series {
            let _ = writeln!(out, "   [{}]", s.label);
            for &(x, y) in &s.points {
                let _ = writeln!(out, "     {x:>12.3}  {y:>14.4}");
            }
        }
        out
    }
}

/// A rectangular table with named columns.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    /// Identifier matching the paper, e.g. `"table4"`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Row-major cells (strings; numeric cells pre-formatted by the caller).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// An empty table with the given columns.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        columns: Vec<impl Into<String>>,
    ) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            columns: columns.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, row: Vec<impl Into<String>>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row width {} != column count {}",
            row.len(),
            self.columns.len()
        );
        self.rows.push(row);
    }

    /// Cell lookup by row index and column name.
    pub fn cell(&self, row: usize, column: &str) -> Option<&str> {
        let ci = self.columns.iter().position(|c| c == column)?;
        self.rows.get(row).map(|r| r[ci].as_str())
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(
            &self
                .columns
                .iter()
                .map(|c| csv_escape(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(
                &row.iter()
                    .map(|c| csv_escape(c))
                    .collect::<Vec<_>>()
                    .join(","),
            );
            out.push('\n');
        }
        out
    }

    /// Render as an aligned text table.
    pub fn to_text(&self) -> String {
        let ncol = self.columns.len();
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        let hr: String = widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("+");
        let fmt_row = |cells: &[String]| -> String {
            (0..ncol)
                .map(|i| format!(" {:<w$} ", cells[i], w = widths[i]))
                .collect::<Vec<_>>()
                .join("|")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.columns));
        let _ = writeln!(out, "{hr}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row));
        }
        out
    }
}

fn csv_escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_series() -> Series {
        let mut s = Series::new("CTE-Arm");
        s.push(1.0, 10.0);
        s.push(2.0, 6.0);
        s.push(4.0, 3.5);
        s
    }

    #[test]
    fn series_lookup_and_extrema() {
        let s = sample_series();
        assert_eq!(s.y_at(2.0), Some(6.0));
        assert_eq!(s.y_at(3.0), None);
        assert_eq!(s.y_max(), Some(10.0));
        assert_eq!(s.y_min(), Some(3.5));
        assert_eq!(s.argmax(), Some(1.0));
    }

    #[test]
    fn series_monotonicity() {
        let s = sample_series();
        assert!(s.is_non_increasing(0.0));
        let mut bad = sample_series();
        bad.push(8.0, 9.0);
        assert!(!bad.is_non_increasing(0.05));
        // With enough slack even the bump passes.
        assert!(bad.is_non_increasing(2.0));
    }

    #[test]
    fn empty_series_extrema_are_none() {
        let s = Series::new("empty");
        assert_eq!(s.y_max(), None);
        assert_eq!(s.y_min(), None);
        assert_eq!(s.argmax(), None);
    }

    #[test]
    fn figure_csv_merges_x_values() {
        let mut a = Series::new("a");
        a.push(1.0, 1.0);
        a.push(2.0, 2.0);
        let mut b = Series::new("b");
        b.push(2.0, 20.0);
        b.push(3.0, 30.0);
        let fig = Figure::new("f", "t", "x", "y")
            .with_series(a)
            .with_series(b);
        let csv = fig.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "x,a,b");
        assert_eq!(lines[1], "1,1,");
        assert_eq!(lines[2], "2,2,20");
        assert_eq!(lines[3], "3,,30");
    }

    #[test]
    fn figure_series_named() {
        let fig = Figure::new("f", "t", "x", "y").with_series(sample_series());
        assert!(fig.series_named("CTE-Arm").is_some());
        assert!(fig.series_named("nope").is_none());
    }

    #[test]
    fn table_roundtrip() {
        let mut t = Table::new("t1", "demo", vec!["name", "value"]);
        t.push_row(vec!["alpha", "1"]);
        t.push_row(vec!["beta, the second", "2"]);
        assert_eq!(t.cell(0, "value"), Some("1"));
        assert_eq!(t.cell(1, "name"), Some("beta, the second"));
        assert_eq!(t.cell(2, "name"), None);
        assert_eq!(t.cell(0, "missing"), None);
        let csv = t.to_csv();
        assert!(csv.contains("\"beta, the second\""));
        let text = t.to_text();
        assert!(text.contains("alpha"));
        assert!(text.contains('|'));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_row_panics() {
        let mut t = Table::new("t", "demo", vec!["a", "b"]);
        t.push_row(vec!["only-one"]);
    }

    #[test]
    fn csv_escaping() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    }
}
