//! # simkit — deterministic simulation substrate
//!
//! Foundation crate for the `a64fx-cluster-eval` workspace. Provides the
//! machinery every other crate builds on:
//!
//! * [`units`] — strongly-typed physical quantities (time, bytes, flops,
//!   bandwidth) so that cost models cannot accidentally mix units.
//! * [`time`] — a virtual clock for simulated execution.
//! * [`event`] — a deterministic discrete-event scheduler.
//! * [`rng`] — a small, seedable, reproducible PCG32 generator (identical
//!   streams on every platform, unlike hash-seeded generators).
//! * [`stats`] — online statistics (Welford), histograms, percentiles.
//! * [`series`] — labelled data series and text/CSV table rendering used to
//!   regenerate the paper's figures and tables.
//! * [`cache`] — concurrency-safe, two-tier memoization of expensive
//!   simulation sub-results, keyed by `(machine, workload, params)`.
//! * [`store`] — the disk-backed content-addressed tier under the cache:
//!   an append-only segment + index pair, versioned by a model-code hash,
//!   with checksum-verified torn-tail recovery.
//!
//! Everything in this crate is pure and deterministic: simulating the same
//! experiment twice yields bit-identical results.

#![warn(missing_docs)]

pub mod cache;
pub mod event;
pub mod rng;
pub mod series;
pub mod stats;
pub mod store;
pub mod time;
pub mod units;

pub use cache::{Cache, CacheKey, TierCounters};
pub use event::{EventQueue, Scheduler};
pub use rng::Pcg32;
pub use series::{Figure, Series, Table};
pub use stats::{Histogram, OnlineStats};
pub use store::{Store, StoreValue};
pub use time::VirtualClock;
pub use units::{Bandwidth, Bytes, Flops, Time};
