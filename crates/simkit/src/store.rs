//! Disk-backed, content-addressed persistence for cached simulation
//! results.
//!
//! The in-memory [`Cache`](crate::cache::Cache) dies with the process, so
//! every CLI invocation used to re-simulate everything. A [`Store`] makes
//! the `(machine, workload, params)` → result mapping durable:
//!
//! * **Segment file** (`seg-<model>.bin`): an append-only log of records.
//!   Each record is `[u32 payload_len][u64 fnv-1a checksum][payload]`,
//!   where the payload carries the full cache key (three length-prefixed
//!   strings), a type tag ([`StoreValue::type_tag`]) and the
//!   [`serde::bin`]-encoded value bytes. Records are never rewritten in
//!   place.
//! * **Index file** (`idx-<model>.bin`): an acceleration structure
//!   mapping the 64-bit key hash to segment offsets, rewritten atomically
//!   (temp file + rename) on flush and on drop. The index is *never
//!   trusted blindly*: it records how many segment bytes it covers, and a
//!   missing, corrupt or stale index merely costs a full segment scan.
//! * **Model-code versioning**: both file names and headers embed a
//!   64-bit hash of the simulation source tree (see
//!   `cluster_eval::serve::model_code_hash`). Results computed by a
//!   different model revision live in differently-named files and are
//!   simply ignored — a stale store can never leak old numbers into new
//!   goldens.
//!
//! # Crash-safety contract
//!
//! Appends are buffered by the OS and not fsynced; a crash may therefore
//! leave a *torn tail*: a partially-written final record. On open, the
//! store validates every record past the index's committed watermark
//! (length bounds + checksum) and truncates the segment back to the last
//! valid record. A torn tail thus costs exactly the recomputation of the
//! results it contained — never a wrong answer, because a record is only
//! served after its checksum and its full key match. Index writes go to a
//! temp file first and are renamed into place, so a crash mid-flush
//! leaves the previous (older but valid) index behind.
//!
//! Hash collisions are handled, not assumed away: the index maps a key
//! *hash* to candidate offsets, and `get` decodes each candidate's stored
//! key and compares it to the queried key before serving the value.

use crate::cache::CacheKey;
use serde::bin::{self, Decode, Encode, Reader};
use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Magic bytes opening a segment file.
pub const SEGMENT_MAGIC: [u8; 8] = *b"CESSEG01";
/// Magic bytes opening an index file.
pub const INDEX_MAGIC: [u8; 8] = *b"CESIDX01";
/// Segment header: magic + model hash.
const SEGMENT_HEADER_LEN: u64 = 16;
/// Per-record header: u32 payload length + u64 payload checksum.
const RECORD_HEADER_LEN: u64 = 12;
/// Rewrite the index after this many appends (a crash between flushes
/// only costs a tail scan, so this is a latency/durability knob, not a
/// correctness one).
const INDEX_FLUSH_EVERY: u64 = 64;
/// Upper bound on a single record payload; anything larger is treated as
/// corruption during recovery scans.
const MAX_PAYLOAD: u32 = 1 << 30;

/// 64-bit FNV-1a over `bytes` — the checksum and key-hash function of the
/// store format (stable across platforms and compilations).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Stable content hash of a cache key. Fields are length-prefixed before
/// hashing so `("ab","c")` and `("a","bc")` cannot collide structurally.
pub fn key_hash(key: &CacheKey) -> u64 {
    let mut buf =
        Vec::with_capacity(key.machine.len() + key.workload.len() + key.params.len() + 24);
    key.machine.encode(&mut buf);
    key.workload.encode(&mut buf);
    key.params.encode(&mut buf);
    fnv1a64(&buf)
}

/// A value type the store can persist. [`StoreValue::type_tag`] is written
/// into each record; reading a key back as a different type is detected
/// and panics, mirroring the in-memory cache's type-confusion contract.
pub trait StoreValue: Encode + Decode {
    /// Stable, globally-unique name of this value type.
    const TYPE_NAME: &'static str;

    /// 64-bit tag stored in each record. The default hashes `TYPE_NAME`;
    /// container impls compose it structurally so `Vec<T>` and `T` can
    /// never share a tag.
    fn type_tag() -> u64 {
        fnv1a64(Self::TYPE_NAME.as_bytes())
    }
}

impl StoreValue for f64 {
    const TYPE_NAME: &'static str = "f64";
}

impl StoreValue for u64 {
    const TYPE_NAME: &'static str = "u64";
}

/// Vectors of any storable value are storable; the orphan rule keeps
/// downstream crates from writing this impl for their own element types,
/// so it lives here as a blanket.
impl<T: StoreValue> StoreValue for Vec<T> {
    const TYPE_NAME: &'static str = T::TYPE_NAME;

    fn type_tag() -> u64 {
        let mut buf = [0u8; 13];
        buf[..4].copy_from_slice(b"Vec<");
        buf[4..12].copy_from_slice(&T::type_tag().to_le_bytes());
        buf[12] = b'>';
        fnv1a64(&buf)
    }
}

impl Encode for crate::units::Time {
    fn encode(&self, out: &mut Vec<u8>) {
        self.value().encode(out);
    }
}

impl Decode for crate::units::Time {
    fn decode(r: &mut Reader<'_>) -> Result<Self, bin::DecodeError> {
        Ok(crate::units::Time::seconds(f64::decode(r)?))
    }
}

struct Inner {
    file: File,
    /// Bytes of the segment known to hold valid records (header included).
    len: u64,
    /// key hash → offsets of candidate records, in append order.
    index: HashMap<u64, Vec<u64>>,
    /// Number of records appended since the index file was last rewritten.
    appends_since_flush: u64,
    /// True when the on-disk index lags the in-memory one.
    dirty: bool,
}

/// A disk-backed content-addressed result store. Concurrency-safe; one
/// instance is typically shared behind an `Arc` by every
/// [`Cache`](crate::cache::Cache) tier of a process.
pub struct Store {
    inner: Mutex<Inner>,
    model_hash: u64,
    seg_path: PathBuf,
    idx_path: PathBuf,
}

/// What `open` had to do to bring the store up — exposed so tests (and
/// curious operators) can verify the recovery path that actually ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenReport {
    /// Records now served by the store.
    pub records: usize,
    /// Bytes dropped from a torn tail (0 on a clean open).
    pub truncated_bytes: u64,
    /// True when the index file was missing/corrupt/stale and the segment
    /// had to be scanned from the start.
    pub full_scan: bool,
}

impl Store {
    /// Open (or create) the store for `model_hash` under `dir`.
    pub fn open(dir: impl AsRef<Path>, model_hash: u64) -> io::Result<Self> {
        Self::open_with_report(dir, model_hash).map(|(s, _)| s)
    }

    /// [`Store::open`], also reporting what recovery work was needed.
    pub fn open_with_report(
        dir: impl AsRef<Path>,
        model_hash: u64,
    ) -> io::Result<(Self, OpenReport)> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        let seg_path = dir.join(format!("seg-{model_hash:016x}.bin"));
        let idx_path = dir.join(format!("idx-{model_hash:016x}.bin"));
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&seg_path)?;

        let seg_len = file.metadata()?.len();
        let mut header_ok = false;
        if seg_len >= SEGMENT_HEADER_LEN {
            let mut header = [0u8; SEGMENT_HEADER_LEN as usize];
            file.seek(SeekFrom::Start(0))?;
            file.read_exact(&mut header)?;
            header_ok = header[..8] == SEGMENT_MAGIC
                && u64::from_le_bytes(header[8..16].try_into().unwrap()) == model_hash;
        }
        if !header_ok {
            // Fresh store (or unrecognizable file): start over. A segment
            // written by a different model revision has a different file
            // name, so this only discards garbage, never valid results.
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(&SEGMENT_MAGIC)?;
            file.write_all(&model_hash.to_le_bytes())?;
            file.flush()?;
        }
        let seg_len = file.metadata()?.len();

        // Try the index; fall back to a full scan when it is unusable.
        let (mut index, mut committed, full_scan) =
            match Self::load_index(&idx_path, model_hash, seg_len) {
                Some((index, committed)) => (index, committed, false),
                None => (HashMap::new(), SEGMENT_HEADER_LEN, true),
            };

        // Scan (and validate) everything past the committed watermark.
        let mut tail = Vec::new();
        file.seek(SeekFrom::Start(committed))?;
        file.read_to_end(&mut tail)?;
        let mut scanned = 0usize;
        let mut recovered = 0u64;
        loop {
            let rest = &tail[scanned..];
            if rest.len() < RECORD_HEADER_LEN as usize {
                break;
            }
            let plen = u32::from_le_bytes(rest[0..4].try_into().unwrap());
            if plen > MAX_PAYLOAD {
                break;
            }
            let plen = plen as usize;
            let checksum = u64::from_le_bytes(rest[4..12].try_into().unwrap());
            let Some(payload) = rest.get(12..12 + plen) else {
                break;
            };
            if fnv1a64(payload) != checksum {
                break;
            }
            let Ok(khash) = decode_record_key_hash(payload) else {
                break;
            };
            index
                .entry(khash)
                .or_default()
                .push(committed + scanned as u64);
            scanned += RECORD_HEADER_LEN as usize + plen;
            recovered += 1;
        }
        committed += scanned as u64;
        let truncated = seg_len - committed;
        if truncated > 0 {
            // Torn tail: drop the partial record so future appends start
            // on a clean boundary.
            file.set_len(committed)?;
        }

        let records = index.values().map(Vec::len).sum();
        let store = Self {
            inner: Mutex::new(Inner {
                file,
                len: committed,
                index,
                appends_since_flush: 0,
                // A recovered tail or rescanned segment means the on-disk
                // index lags reality; rewrite it eagerly.
                dirty: truncated > 0 || recovered > 0 || full_scan,
            }),
            model_hash,
            seg_path,
            idx_path,
        };
        {
            let mut inner = store.inner.lock().expect("store lock");
            if inner.dirty {
                store.flush_index_locked(&mut inner)?;
            }
        }
        Ok((
            store,
            OpenReport {
                records,
                truncated_bytes: truncated,
                full_scan,
            },
        ))
    }

    /// Parse the index file. Returns `None` (forcing a full segment scan)
    /// on any inconsistency: wrong magic/model, bad checksum, or a
    /// committed watermark the segment cannot actually back.
    fn load_index(
        idx_path: &Path,
        model_hash: u64,
        seg_len: u64,
    ) -> Option<(HashMap<u64, Vec<u64>>, u64)> {
        let bytes = fs::read(idx_path).ok()?;
        if bytes.len() < 8 || bytes[..8] != INDEX_MAGIC {
            return None;
        }
        let body = &bytes[8..bytes.len().checked_sub(8)?];
        let stored_sum = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().ok()?);
        if fnv1a64(body) != stored_sum {
            return None;
        }
        let mut r = Reader::new(body);
        let hash = u64::decode(&mut r).ok()?;
        let committed = u64::decode(&mut r).ok()?;
        let count = usize::decode(&mut r).ok()?;
        if hash != model_hash || committed < SEGMENT_HEADER_LEN || committed > seg_len {
            return None;
        }
        let mut index: HashMap<u64, Vec<u64>> = HashMap::with_capacity(count);
        for _ in 0..count {
            let khash = u64::decode(&mut r).ok()?;
            let offset = u64::decode(&mut r).ok()?;
            if offset < SEGMENT_HEADER_LEN || offset >= committed {
                return None;
            }
            index.entry(khash).or_default().push(offset);
        }
        if r.remaining() != 0 {
            return None;
        }
        Some((index, committed))
    }

    /// The model-code hash this store is bound to.
    pub fn model_hash(&self) -> u64 {
        self.model_hash
    }

    /// Path of the append-only segment file.
    pub fn segment_path(&self) -> &Path {
        &self.seg_path
    }

    /// Path of the index file.
    pub fn index_path(&self) -> &Path {
        &self.idx_path
    }

    /// Number of records currently indexed.
    pub fn records(&self) -> usize {
        let inner = self.inner.lock().expect("store lock");
        inner.index.values().map(Vec::len).sum()
    }

    /// Committed segment size in bytes (header included).
    pub fn segment_bytes(&self) -> u64 {
        self.inner.lock().expect("store lock").len
    }

    /// Look up `key`, decoding the stored value.
    ///
    /// # Panics
    /// Panics if the stored record for this exact key carries a different
    /// value type — two workloads sharing a key is a key-construction bug,
    /// the same contract as the in-memory cache.
    pub fn get<T: StoreValue>(&self, key: &CacheKey) -> Option<T> {
        let mut inner = self.inner.lock().expect("store lock");
        let offsets = inner.index.get(&key_hash(key))?.clone();
        for offset in offsets {
            let Ok(payload) = read_record(&mut inner.file, offset) else {
                continue;
            };
            match decode_record::<T>(&payload, key) {
                RecordMatch::Value(v) => return Some(v),
                RecordMatch::WrongKey => continue,
                RecordMatch::WrongType(tag) => panic!(
                    "store key {key:?} holds type tag {tag:#018x}, \
                     requested {} — cache key reused with a different type",
                    T::TYPE_NAME
                ),
                RecordMatch::Corrupt => continue,
            }
        }
        None
    }

    /// Persist `value` under `key`. Idempotent: a key that already
    /// resolves on disk is left untouched (first write wins, matching the
    /// compute-once cache semantics).
    pub fn put<T: StoreValue>(&self, key: &CacheKey, value: &T) -> io::Result<()> {
        let khash = key_hash(key);
        let mut inner = self.inner.lock().expect("store lock");
        if let Some(offsets) = inner.index.get(&khash).cloned() {
            for offset in offsets {
                if let Ok(payload) = read_record(&mut inner.file, offset) {
                    if record_key_matches(&payload, key) {
                        return Ok(());
                    }
                }
            }
        }

        let mut payload = Vec::new();
        key.machine.encode(&mut payload);
        key.workload.encode(&mut payload);
        key.params.encode(&mut payload);
        T::type_tag().encode(&mut payload);
        bin::encode_to_vec(value).encode(&mut payload);

        let offset = inner.len;
        inner.file.seek(SeekFrom::Start(offset))?;
        inner
            .file
            .write_all(&(payload.len() as u32).to_le_bytes())?;
        inner.file.write_all(&fnv1a64(&payload).to_le_bytes())?;
        inner.file.write_all(&payload)?;
        inner.file.flush()?;
        inner.len += RECORD_HEADER_LEN + payload.len() as u64;
        inner.index.entry(khash).or_default().push(offset);
        inner.appends_since_flush += 1;
        inner.dirty = true;
        if inner.appends_since_flush >= INDEX_FLUSH_EVERY {
            self.flush_index_locked(&mut inner)?;
        }
        Ok(())
    }

    /// Rewrite the index file to cover everything appended so far.
    pub fn flush_index(&self) -> io::Result<()> {
        let mut inner = self.inner.lock().expect("store lock");
        self.flush_index_locked(&mut inner)
    }

    fn flush_index_locked(&self, inner: &mut Inner) -> io::Result<()> {
        if !inner.dirty {
            return Ok(());
        }
        let mut body = Vec::new();
        self.model_hash.encode(&mut body);
        inner.len.encode(&mut body);
        let count: usize = inner.index.values().map(Vec::len).sum();
        count.encode(&mut body);
        // Deterministic entry order: sorted by (hash, offset).
        let mut entries: Vec<(u64, u64)> = inner
            .index
            .iter()
            .flat_map(|(&h, offs)| offs.iter().map(move |&o| (h, o)))
            .collect();
        entries.sort_unstable();
        for (h, o) in entries {
            h.encode(&mut body);
            o.encode(&mut body);
        }
        let mut bytes = Vec::with_capacity(body.len() + 16);
        bytes.extend_from_slice(&INDEX_MAGIC);
        bytes.extend_from_slice(&body);
        bytes.extend_from_slice(&fnv1a64(&body).to_le_bytes());
        // Atomic replace: a crash mid-write leaves the old index intact.
        let tmp = self.idx_path.with_extension("tmp");
        fs::write(&tmp, &bytes)?;
        fs::rename(&tmp, &self.idx_path)?;
        inner.appends_since_flush = 0;
        inner.dirty = false;
        Ok(())
    }
}

impl Drop for Store {
    fn drop(&mut self) {
        if let Ok(mut inner) = self.inner.lock() {
            let _ = self.flush_index_locked(&mut inner);
        }
    }
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store")
            .field("segment", &self.seg_path)
            .field("model_hash", &format_args!("{:016x}", self.model_hash))
            .field("records", &self.records())
            .finish()
    }
}

/// Read one record's payload (checksum-verified) at `offset`.
fn read_record(file: &mut File, offset: u64) -> io::Result<Vec<u8>> {
    file.seek(SeekFrom::Start(offset))?;
    let mut header = [0u8; RECORD_HEADER_LEN as usize];
    file.read_exact(&mut header)?;
    let plen = u32::from_le_bytes(header[0..4].try_into().unwrap());
    if plen > MAX_PAYLOAD {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "record length"));
    }
    let checksum = u64::from_le_bytes(header[4..12].try_into().unwrap());
    let mut payload = vec![0u8; plen as usize];
    file.read_exact(&mut payload)?;
    if fnv1a64(&payload) != checksum {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "record checksum",
        ));
    }
    Ok(payload)
}

/// Decode just enough of a record payload to hash its key.
fn decode_record_key_hash(payload: &[u8]) -> Result<u64, bin::DecodeError> {
    let mut r = Reader::new(payload);
    let machine = String::decode(&mut r)?;
    let workload = String::decode(&mut r)?;
    let params = String::decode(&mut r)?;
    Ok(key_hash(&CacheKey::new(machine, workload, params)))
}

/// Does this record payload belong to exactly `key`?
fn record_key_matches(payload: &[u8], key: &CacheKey) -> bool {
    let mut r = Reader::new(payload);
    matches!(
        (
            String::decode(&mut r),
            String::decode(&mut r),
            String::decode(&mut r),
        ),
        (Ok(m), Ok(w), Ok(p)) if m == key.machine && w == key.workload && p == key.params
    )
}

enum RecordMatch<T> {
    Value(T),
    WrongKey,
    WrongType(u64),
    Corrupt,
}

fn decode_record<T: StoreValue>(payload: &[u8], key: &CacheKey) -> RecordMatch<T> {
    let mut r = Reader::new(payload);
    let (Ok(machine), Ok(workload), Ok(params)) = (
        String::decode(&mut r),
        String::decode(&mut r),
        String::decode(&mut r),
    ) else {
        return RecordMatch::Corrupt;
    };
    if machine != key.machine || workload != key.workload || params != key.params {
        return RecordMatch::WrongKey;
    }
    let Ok(tag) = u64::decode(&mut r) else {
        return RecordMatch::Corrupt;
    };
    if tag != T::type_tag() {
        return RecordMatch::WrongType(tag);
    }
    let Ok(value_bytes) = Vec::<u8>::decode(&mut r) else {
        return RecordMatch::Corrupt;
    };
    match bin::decode_from_slice::<T>(&value_bytes) {
        Ok(v) => RecordMatch::Value(v),
        Err(_) => RecordMatch::Corrupt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "simkit-store-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_get_reopen() {
        let dir = temp_dir("basic");
        let key = CacheKey::new("CTE-Arm", "alya", "nodes=16");
        {
            let store = Store::open(&dir, 7).unwrap();
            assert_eq!(store.get::<f64>(&key), None);
            store.put(&key, &1.5f64).unwrap();
            assert_eq!(store.get::<f64>(&key), Some(1.5));
        }
        let (store, report) = Store::open_with_report(&dir, 7).unwrap();
        assert_eq!(report.records, 1);
        assert_eq!(report.truncated_bytes, 0);
        assert!(!report.full_scan, "a clean close leaves a usable index");
        assert_eq!(store.get::<f64>(&key), Some(1.5));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn puts_are_idempotent() {
        let dir = temp_dir("idem");
        let store = Store::open(&dir, 1).unwrap();
        let key = CacheKey::new("m", "w", "p");
        store.put(&key, &vec![1.0f64, 2.0]).unwrap();
        let len = store.segment_bytes();
        store.put(&key, &vec![9.0f64]).unwrap();
        assert_eq!(store.segment_bytes(), len, "duplicate put must not append");
        assert_eq!(store.get::<Vec<f64>>(&key), Some(vec![1.0, 2.0]));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn model_hash_partitions_the_store() {
        let dir = temp_dir("model");
        let key = CacheKey::new("m", "w", "p");
        Store::open(&dir, 1).unwrap().put(&key, &1.0f64).unwrap();
        let bumped = Store::open(&dir, 2).unwrap();
        assert_eq!(
            bumped.get::<f64>(&key),
            None,
            "new model ignores old results"
        );
        bumped.put(&key, &2.0f64).unwrap();
        drop(bumped);
        assert_eq!(Store::open(&dir, 1).unwrap().get::<f64>(&key), Some(1.0));
        assert_eq!(Store::open(&dir, 2).unwrap().get::<f64>(&key), Some(2.0));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_confusion_panics() {
        let dir = temp_dir("type");
        let store = Store::open(&dir, 1).unwrap();
        let key = CacheKey::new("m", "w", "p");
        store.put(&key, &1.0f64).unwrap();
        let _ = store.get::<Vec<f64>>(&key);
    }

    #[test]
    fn torn_tail_is_dropped_on_reopen() {
        let dir = temp_dir("torn");
        let (k1, k2) = (CacheKey::new("m", "w", "1"), CacheKey::new("m", "w", "2"));
        let seg = {
            let store = Store::open(&dir, 3).unwrap();
            store.put(&k1, &10.0f64).unwrap();
            store.flush_index().unwrap();
            store.put(&k2, &20.0f64).unwrap();
            store.segment_path().to_path_buf()
        };
        // Tear the last record: chop 5 bytes off the segment.
        let len = fs::metadata(&seg).unwrap().len();
        let f = OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(len - 5).unwrap();
        drop(f);
        let (store, report) = Store::open_with_report(&dir, 3).unwrap();
        assert_eq!(report.records, 1);
        assert!(report.truncated_bytes > 0);
        assert_eq!(store.get::<f64>(&k1), Some(10.0));
        assert_eq!(store.get::<f64>(&k2), None, "torn record must vanish");
        // The store keeps working after recovery.
        store.put(&k2, &21.0f64).unwrap();
        drop(store);
        assert_eq!(Store::open(&dir, 3).unwrap().get::<f64>(&k2), Some(21.0));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_index_falls_back_to_full_scan() {
        let dir = temp_dir("idx");
        let key = CacheKey::new("m", "w", "p");
        let idx = {
            let store = Store::open(&dir, 4).unwrap();
            store.put(&key, &5.0f64).unwrap();
            store.index_path().to_path_buf()
        };
        fs::write(&idx, b"garbage").unwrap();
        let (store, report) = Store::open_with_report(&dir, 4).unwrap();
        assert!(report.full_scan);
        assert_eq!(store.get::<f64>(&key), Some(5.0));
        let _ = fs::remove_dir_all(&dir);
    }
}
