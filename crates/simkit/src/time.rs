//! Virtual clocks for simulated execution.

use crate::units::Time;

/// A monotonically advancing virtual clock.
///
/// Each simulated entity (a rank in `mpisim`, a node running a kernel) owns a
/// clock; synchronisation points align clocks to the maximum across the
/// participants, mirroring how barriers and blocking collectives behave on a
/// real machine.
#[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd)]
pub struct VirtualClock {
    now: Time,
}

impl VirtualClock {
    /// A clock starting at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Advance the clock by a non-negative duration.
    ///
    /// # Panics
    /// Panics if `dt` is negative or non-finite — a cost model returning a
    /// negative or NaN duration is always a bug.
    #[inline]
    pub fn advance(&mut self, dt: Time) {
        assert!(
            dt.value() >= 0.0 && dt.is_finite(),
            "cannot advance clock by {dt}"
        );
        self.now += dt;
    }

    /// Move the clock forward to `t` if `t` is later; no-op otherwise.
    /// This is the primitive behind synchronisation: a rank that reaches a
    /// barrier early waits until the last participant arrives.
    #[inline]
    pub fn advance_to(&mut self, t: Time) {
        if t > self.now {
            self.now = t;
        }
    }
}

/// Align a set of clocks at a synchronisation point: every clock jumps to the
/// latest time among them. Returns that time.
pub fn synchronize(clocks: &mut [VirtualClock]) -> Time {
    let latest = clocks.iter().map(|c| c.now()).fold(Time::ZERO, Time::max);
    for c in clocks.iter_mut() {
        c.advance_to(latest);
    }
    latest
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let mut c = VirtualClock::new();
        assert_eq!(c.now(), Time::ZERO);
        c.advance(Time::seconds(1.5));
        c.advance(Time::seconds(0.5));
        assert_eq!(c.now(), Time::seconds(2.0));
    }

    #[test]
    #[should_panic(expected = "cannot advance")]
    fn negative_advance_panics() {
        let mut c = VirtualClock::new();
        c.advance(Time::seconds(-1.0));
    }

    #[test]
    fn advance_to_never_goes_backwards() {
        let mut c = VirtualClock::new();
        c.advance(Time::seconds(5.0));
        c.advance_to(Time::seconds(3.0));
        assert_eq!(c.now(), Time::seconds(5.0));
        c.advance_to(Time::seconds(7.0));
        assert_eq!(c.now(), Time::seconds(7.0));
    }

    #[test]
    fn synchronize_aligns_to_latest() {
        let mut clocks = vec![VirtualClock::new(); 3];
        clocks[0].advance(Time::seconds(1.0));
        clocks[1].advance(Time::seconds(4.0));
        clocks[2].advance(Time::seconds(2.0));
        let t = synchronize(&mut clocks);
        assert_eq!(t, Time::seconds(4.0));
        assert!(clocks.iter().all(|c| c.now() == Time::seconds(4.0)));
    }

    #[test]
    fn synchronize_empty_is_zero() {
        assert_eq!(synchronize(&mut []), Time::ZERO);
    }
}
