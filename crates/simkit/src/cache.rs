//! Memoization of expensive simulation sub-results.
//!
//! Several paper artifacts re-run the same underlying simulation: Figs. 8,
//! 9 and 10 each sweep the identical Alya strong-scaling study, and
//! Table IV re-runs HPL, HPCG and every application at node counts the
//! figures already visited. A [`Cache`] keyed by `(machine, workload,
//! params)` lets those callers reuse the first computation instead of
//! recomputing it.
//!
//! Since the evaluation-as-a-service work the cache is **two-tier**: the
//! in-memory table below, optionally backed by a disk
//! [`Store`](crate::store::Store) shared across processes. Lookups go
//! memory → disk → compute, and the accounting distinguishes the three
//! outcomes ([`TierCounters`]: `mem_hits` / `disk_hits` / `misses`).
//!
//! The cache is concurrency-safe and *compute-once*: each key owns a slot
//! protected by its own mutex, so when two callers race for the same key,
//! the second blocks until the first finishes and then reuses the value —
//! a single-flight map. Because the disk probe and the compute both happen
//! under the slot lock, two concurrent identical queries cost exactly one
//! disk read or one engine miss, never two. Values are stored type-erased;
//! a lookup with the wrong type for an existing key panics, which would
//! indicate two workloads sharing a key — a bug in key construction.
//!
//! Determinism contract: a cached value must be a pure function of its key.
//! All simulations in this workspace derive their PCG seeds from their own
//! parameters (never from shared mutable state), so replaying a computation
//! bit-identically reproduces the cached value — which is what makes
//! mem-hit, disk-hit and miss runs, and 1-thread and N-thread engine runs,
//! produce identical artifacts. The disk tier preserves this because the
//! `serde::bin` codec round-trips every `f64` bit-for-bit.

use crate::store::{Store, StoreValue};
use std::any::Any;
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Identity of one memoized sub-result.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey {
    /// Machine (or cluster) the simulation targets, e.g. `"CTE-Arm"`.
    pub machine: String,
    /// Workload family, e.g. `"alya"`, `"hpl"`, `"osu-map"`.
    pub workload: String,
    /// Remaining parameters, rendered canonically (node count, config
    /// Debug dump, seed, ...).
    pub params: String,
}

impl CacheKey {
    /// Build a key from its three components.
    pub fn new(
        machine: impl Into<String>,
        workload: impl Into<String>,
        params: impl Into<String>,
    ) -> Self {
        Self {
            machine: machine.into(),
            workload: workload.into(),
            params: params.into(),
        }
    }
}

/// Hit/miss accounting split by tier.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierCounters {
    /// Lookups answered by the in-memory table.
    pub mem_hits: u64,
    /// Lookups answered by the persistent store.
    pub disk_hits: u64,
    /// Lookups that had to compute (equivalently, engine misses).
    pub misses: u64,
}

impl TierCounters {
    /// Total lookups.
    pub fn total(&self) -> u64 {
        self.mem_hits + self.disk_hits + self.misses
    }

    /// Hits across both tiers.
    pub fn hits(&self) -> u64 {
        self.mem_hits + self.disk_hits
    }

    /// Component-wise `self - earlier` (for before/after snapshots).
    pub fn since(&self, earlier: &TierCounters) -> TierCounters {
        TierCounters {
            mem_hits: self.mem_hits - earlier.mem_hits,
            disk_hits: self.disk_hits - earlier.disk_hits,
            misses: self.misses - earlier.misses,
        }
    }
}

type Slot = Arc<Mutex<Option<Arc<dyn Any + Send + Sync>>>>;

thread_local! {
    static THREAD_MEM_HITS: Cell<u64> = const { Cell::new(0) };
    static THREAD_DISK_HITS: Cell<u64> = const { Cell::new(0) };
    static THREAD_MISSES: Cell<u64> = const { Cell::new(0) };
}

/// Concurrency-safe memo table for simulation sub-results, optionally
/// backed by a persistent [`Store`] tier.
#[derive(Default)]
pub struct Cache {
    slots: Mutex<HashMap<CacheKey, Slot>>,
    mem_hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    store: Option<Arc<Store>>,
}

impl Cache {
    /// An empty, memory-only cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache whose [`Self::get_or_persistent`] lookups are backed
    /// by `store`.
    pub fn with_store(store: Arc<Store>) -> Self {
        Self {
            store: Some(store),
            ..Self::default()
        }
    }

    /// The persistent tier, when one is attached.
    pub fn store(&self) -> Option<&Arc<Store>> {
        self.store.as_ref()
    }

    fn charge_mem_hit(&self) {
        self.mem_hits.fetch_add(1, Ordering::Relaxed);
        THREAD_MEM_HITS.with(|c| c.set(c.get() + 1));
    }

    fn charge_disk_hit(&self) {
        self.disk_hits.fetch_add(1, Ordering::Relaxed);
        THREAD_DISK_HITS.with(|c| c.set(c.get() + 1));
    }

    fn charge_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        THREAD_MISSES.with(|c| c.set(c.get() + 1));
    }

    fn slot(&self, key: &CacheKey) -> Slot {
        let mut slots = self.slots.lock().expect("cache map lock");
        slots.entry(key.clone()).or_default().clone()
    }

    /// Look `key` up in the memory tier, computing (and storing) the value
    /// on first use. The persistent store is **not** consulted — use
    /// [`Self::get_or_persistent`] for values that should survive the
    /// process.
    ///
    /// Concurrent callers of the same key block until the first computation
    /// finishes; exactly one miss is ever charged per key.
    pub fn get_or<T, F>(&self, key: CacheKey, compute: F) -> T
    where
        T: Clone + Send + Sync + 'static,
        F: FnOnce() -> T,
    {
        let slot = self.slot(&key);
        let mut value = slot.lock().expect("cache slot lock");
        match value.as_ref() {
            Some(stored) => {
                self.charge_mem_hit();
                stored
                    .downcast_ref::<T>()
                    .unwrap_or_else(|| panic!("cache key {key:?} reused with a different type"))
                    .clone()
            }
            None => {
                let computed = compute();
                *value = Some(Arc::new(computed.clone()));
                self.charge_miss();
                computed
            }
        }
    }

    /// Two-tier lookup: memory, then the persistent store, then `compute`
    /// (whose result is written through to both tiers).
    ///
    /// Falls back to [`Self::get_or`] semantics when no store is attached.
    /// The disk probe and the compute run under the per-key slot lock, so
    /// concurrent identical lookups stay single-flight across both tiers.
    /// Store write failures are not fatal: the computed value is still
    /// returned and the process continues memory-only for that key.
    pub fn get_or_persistent<T, F>(&self, key: CacheKey, compute: F) -> T
    where
        T: StoreValue + Clone + Send + Sync + 'static,
        F: FnOnce() -> T,
    {
        let slot = self.slot(&key);
        let mut value = slot.lock().expect("cache slot lock");
        if let Some(stored) = value.as_ref() {
            self.charge_mem_hit();
            return stored
                .downcast_ref::<T>()
                .unwrap_or_else(|| panic!("cache key {key:?} reused with a different type"))
                .clone();
        }
        if let Some(store) = &self.store {
            if let Some(found) = store.get::<T>(&key) {
                self.charge_disk_hit();
                *value = Some(Arc::new(found.clone()));
                return found;
            }
        }
        let computed = compute();
        if let Some(store) = &self.store {
            let _ = store.put(&key, &computed);
        }
        *value = Some(Arc::new(computed.clone()));
        self.charge_miss();
        computed
    }

    /// Total memory-tier hits across all threads.
    pub fn mem_hits(&self) -> u64 {
        self.mem_hits.load(Ordering::Relaxed)
    }

    /// Total persistent-tier hits across all threads.
    pub fn disk_hits(&self) -> u64 {
        self.disk_hits.load(Ordering::Relaxed)
    }

    /// Total misses (equivalently, distinct keys computed).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Snapshot of the process-wide counters.
    pub fn counters(&self) -> TierCounters {
        TierCounters {
            mem_hits: self.mem_hits(),
            disk_hits: self.disk_hits(),
            misses: self.misses(),
        }
    }

    /// Number of stored entries (memory tier).
    pub fn len(&self) -> usize {
        self.slots.lock().expect("cache map lock").len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reset the *current thread's* counters (the per-experiment
    /// attribution the engine uses: one experiment runs entirely on one
    /// worker thread).
    pub fn reset_thread_counters() {
        THREAD_MEM_HITS.with(|c| c.set(0));
        THREAD_DISK_HITS.with(|c| c.set(0));
        THREAD_MISSES.with(|c| c.set(0));
    }

    /// Current thread's counters since the last reset.
    pub fn thread_counters() -> TierCounters {
        TierCounters {
            mem_hits: THREAD_MEM_HITS.with(|c| c.get()),
            disk_hits: THREAD_DISK_HITS.with(|c| c.get()),
            misses: THREAD_MISSES.with(|c| c.get()),
        }
    }
}

impl std::fmt::Debug for Cache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cache")
            .field("entries", &self.len())
            .field("mem_hits", &self.mem_hits())
            .field("disk_hits", &self.disk_hits())
            .field("misses", &self.misses())
            .field("persistent", &self.store.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn computes_once_then_hits() {
        let cache = Cache::new();
        let key = CacheKey::new("CTE-Arm", "alya", "nodes=16");
        let mut calls = 0;
        let a: f64 = cache.get_or(key.clone(), || {
            calls += 1;
            42.0
        });
        let b: f64 = cache.get_or(key, || {
            calls += 1;
            panic!("must not recompute")
        });
        assert_eq!(a, b);
        assert_eq!(calls, 1);
        assert_eq!(cache.mem_hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.disk_hits(), 0);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_are_distinct_entries() {
        let cache = Cache::new();
        for n in [1usize, 16, 32] {
            let v: usize = cache.get_or(CacheKey::new("m", "w", format!("nodes={n}")), || n * 2);
            assert_eq!(v, n * 2);
        }
        assert_eq!(cache.misses(), 3);
        assert_eq!(cache.mem_hits(), 0);
    }

    #[test]
    fn concurrent_racers_compute_once() {
        let cache = Arc::new(Cache::new());
        let computed = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                let computed = Arc::clone(&computed);
                s.spawn(move || {
                    let v: u64 = cache.get_or(CacheKey::new("m", "w", "p"), || {
                        computed.fetch_add(1, Ordering::SeqCst);
                        7
                    });
                    assert_eq!(v, 7);
                });
            }
        });
        assert_eq!(computed.load(Ordering::SeqCst), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.mem_hits(), 7);
    }

    #[test]
    fn thread_counters_attribute_to_the_calling_thread() {
        let cache = Cache::new();
        Cache::reset_thread_counters();
        let _: u8 = cache.get_or(CacheKey::new("m", "w", "1"), || 1);
        let _: u8 = cache.get_or(CacheKey::new("m", "w", "1"), || 1);
        let c = Cache::thread_counters();
        assert_eq!((c.mem_hits, c.disk_hits, c.misses), (1, 0, 1));
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_confusion_panics() {
        let cache = Cache::new();
        let _: u64 = cache.get_or(CacheKey::new("m", "w", "p"), || 1u64);
        let _: f64 = cache.get_or(CacheKey::new("m", "w", "p"), || 1.0f64);
    }

    fn temp_store(tag: &str) -> (Arc<Store>, std::path::PathBuf) {
        use std::sync::atomic::AtomicU64;
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "simkit-cache-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        (Arc::new(Store::open(&dir, 1).expect("store")), dir)
    }

    #[test]
    fn persistent_lookup_walks_the_tiers() {
        let (store, dir) = temp_store("tiers");
        let key = CacheKey::new("m", "w", "p");

        // Cold process: miss, written through to disk.
        let warm = Cache::with_store(Arc::clone(&store));
        let v: f64 = warm.get_or_persistent(key.clone(), || 4.25);
        assert_eq!(v, 4.25);
        assert_eq!(
            (warm.mem_hits(), warm.disk_hits(), warm.misses()),
            (0, 0, 1)
        );

        // Same process again: memory tier.
        let v: f64 = warm.get_or_persistent(key.clone(), || panic!("mem hit expected"));
        assert_eq!(v, 4.25);
        assert_eq!((warm.mem_hits(), warm.disk_hits()), (1, 0));

        // "New process" (fresh cache, same store): disk tier.
        let fresh = Cache::with_store(Arc::clone(&store));
        let v: f64 = fresh.get_or_persistent(key.clone(), || panic!("disk hit expected"));
        assert_eq!(v, 4.25);
        assert_eq!(
            (fresh.mem_hits(), fresh.disk_hits(), fresh.misses()),
            (0, 1, 0)
        );
        // And the disk hit primed the memory tier.
        let _: f64 = fresh.get_or_persistent(key, || panic!("mem hit expected"));
        assert_eq!(fresh.mem_hits(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn persistent_without_store_degrades_to_memory() {
        let cache = Cache::new();
        let key = CacheKey::new("m", "w", "p");
        let a: f64 = cache.get_or_persistent(key.clone(), || 1.0);
        let b: f64 = cache.get_or_persistent(key, || panic!("cached"));
        assert_eq!(a, b);
        assert_eq!(
            (cache.mem_hits(), cache.disk_hits(), cache.misses()),
            (1, 0, 1)
        );
    }

    #[test]
    fn concurrent_identical_persistent_lookups_are_single_flight() {
        let (store, dir) = temp_store("single-flight");
        let cache = Arc::new(Cache::with_store(store));
        let computed = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let cache = Arc::clone(&cache);
                let computed = Arc::clone(&computed);
                s.spawn(move || {
                    let v: f64 = cache.get_or_persistent(CacheKey::new("m", "w", "p"), || {
                        computed.fetch_add(1, Ordering::SeqCst);
                        9.0
                    });
                    assert_eq!(v, 9.0);
                });
            }
        });
        assert_eq!(computed.load(Ordering::SeqCst), 1, "one engine miss");
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.mem_hits(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
