//! Memoization of expensive simulation sub-results.
//!
//! Several paper artifacts re-run the same underlying simulation: Figs. 8,
//! 9 and 10 each sweep the identical Alya strong-scaling study, and
//! Table IV re-runs HPL, HPCG and every application at node counts the
//! figures already visited. A [`Cache`] keyed by `(machine, workload,
//! params)` lets those callers reuse the first computation instead of
//! recomputing it.
//!
//! The cache is concurrency-safe and *compute-once*: each key owns a slot
//! protected by its own mutex, so when two experiments race for the same
//! key, the second blocks until the first finishes and then reuses the
//! value (counted as a hit). Values are stored type-erased; a lookup with
//! the wrong type for an existing key panics, which would indicate two
//! workloads sharing a key — a bug in key construction.
//!
//! Determinism contract: a cached value must be a pure function of its key.
//! All simulations in this workspace derive their PCG seeds from their own
//! parameters (never from shared mutable state), so replaying a computation
//! bit-identically reproduces the cached value — which is what makes
//! cache-hit and cache-miss runs, and 1-thread and N-thread engine runs,
//! produce identical artifacts.

use std::any::Any;
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Identity of one memoized sub-result.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey {
    /// Machine (or cluster) the simulation targets, e.g. `"CTE-Arm"`.
    pub machine: String,
    /// Workload family, e.g. `"alya"`, `"hpl"`, `"osu-map"`.
    pub workload: String,
    /// Remaining parameters, rendered canonically (node count, config
    /// Debug dump, seed, ...).
    pub params: String,
}

impl CacheKey {
    /// Build a key from its three components.
    pub fn new(
        machine: impl Into<String>,
        workload: impl Into<String>,
        params: impl Into<String>,
    ) -> Self {
        Self {
            machine: machine.into(),
            workload: workload.into(),
            params: params.into(),
        }
    }
}

type Slot = Arc<Mutex<Option<Arc<dyn Any + Send + Sync>>>>;

thread_local! {
    static THREAD_HITS: Cell<u64> = const { Cell::new(0) };
    static THREAD_MISSES: Cell<u64> = const { Cell::new(0) };
}

/// Concurrency-safe memo table for simulation sub-results.
#[derive(Default)]
pub struct Cache {
    slots: Mutex<HashMap<CacheKey, Slot>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Cache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look `key` up, computing (and storing) the value on first use.
    ///
    /// Concurrent callers of the same key block until the first computation
    /// finishes; exactly one miss is ever charged per key.
    pub fn get_or<T, F>(&self, key: CacheKey, compute: F) -> T
    where
        T: Clone + Send + Sync + 'static,
        F: FnOnce() -> T,
    {
        let slot = {
            let mut slots = self.slots.lock().expect("cache map lock");
            slots.entry(key.clone()).or_default().clone()
        };
        let mut value = slot.lock().expect("cache slot lock");
        match value.as_ref() {
            Some(stored) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                THREAD_HITS.with(|c| c.set(c.get() + 1));
                stored
                    .downcast_ref::<T>()
                    .unwrap_or_else(|| panic!("cache key {key:?} reused with a different type"))
                    .clone()
            }
            None => {
                let computed = compute();
                *value = Some(Arc::new(computed.clone()));
                self.misses.fetch_add(1, Ordering::Relaxed);
                THREAD_MISSES.with(|c| c.set(c.get() + 1));
                computed
            }
        }
    }

    /// Total hits across all threads.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Total misses (equivalently, distinct keys computed).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.slots.lock().expect("cache map lock").len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reset the *current thread's* hit/miss counters (the per-experiment
    /// attribution the engine uses: one experiment runs entirely on one
    /// worker thread).
    pub fn reset_thread_counters() {
        THREAD_HITS.with(|c| c.set(0));
        THREAD_MISSES.with(|c| c.set(0));
    }

    /// Current thread's `(hits, misses)` since the last reset.
    pub fn thread_counters() -> (u64, u64) {
        (
            THREAD_HITS.with(|c| c.get()),
            THREAD_MISSES.with(|c| c.get()),
        )
    }
}

impl std::fmt::Debug for Cache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cache")
            .field("entries", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn computes_once_then_hits() {
        let cache = Cache::new();
        let key = CacheKey::new("CTE-Arm", "alya", "nodes=16");
        let mut calls = 0;
        let a: f64 = cache.get_or(key.clone(), || {
            calls += 1;
            42.0
        });
        let b: f64 = cache.get_or(key, || {
            calls += 1;
            panic!("must not recompute")
        });
        assert_eq!(a, b);
        assert_eq!(calls, 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_are_distinct_entries() {
        let cache = Cache::new();
        for n in [1usize, 16, 32] {
            let v: usize = cache.get_or(CacheKey::new("m", "w", format!("nodes={n}")), || n * 2);
            assert_eq!(v, n * 2);
        }
        assert_eq!(cache.misses(), 3);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn concurrent_racers_compute_once() {
        let cache = Arc::new(Cache::new());
        let computed = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                let computed = Arc::clone(&computed);
                s.spawn(move || {
                    let v: u64 = cache.get_or(CacheKey::new("m", "w", "p"), || {
                        computed.fetch_add(1, Ordering::SeqCst);
                        7
                    });
                    assert_eq!(v, 7);
                });
            }
        });
        assert_eq!(computed.load(Ordering::SeqCst), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 7);
    }

    #[test]
    fn thread_counters_attribute_to_the_calling_thread() {
        let cache = Cache::new();
        Cache::reset_thread_counters();
        let _: u8 = cache.get_or(CacheKey::new("m", "w", "1"), || 1);
        let _: u8 = cache.get_or(CacheKey::new("m", "w", "1"), || 1);
        assert_eq!(Cache::thread_counters(), (1, 1));
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_confusion_panics() {
        let cache = Cache::new();
        let _: u64 = cache.get_or(CacheKey::new("m", "w", "p"), || 1u64);
        let _: f64 = cache.get_or(CacheKey::new("m", "w", "p"), || 1.0f64);
    }
}
