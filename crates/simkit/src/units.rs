//! Strongly-typed physical quantities used throughout the cost models.
//!
//! Each quantity is a thin newtype over `f64` with only the physically
//! meaningful arithmetic defined: dividing [`Bytes`] by [`Time`] yields
//! [`Bandwidth`], dividing [`Flops`] by [`Time`] yields [`FlopRate`], and so
//! on. This catches unit-mixing bugs at compile time, which matters in a
//! code base whose whole job is arithmetic over rates and sizes.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

macro_rules! quantity {
    ($(#[$doc:meta])* $name:ident, $unit:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        pub struct $name(pub f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Raw `f64` value in base units.
            #[inline]
            pub fn value(self) -> f64 {
                self.0
            }

            /// True if the value is finite (not NaN / infinite).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Larger of two quantities.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Smaller of two quantities.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            /// Ratio of two like quantities is dimensionless.
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:.6e} {}", self.0, $unit)
            }
        }
    };
}

quantity!(
    /// A span of simulated time, in seconds.
    Time,
    "s"
);

quantity!(
    /// A data volume, in bytes.
    Bytes,
    "B"
);

quantity!(
    /// A count of double-precision floating-point operations.
    Flops,
    "flop"
);

quantity!(
    /// A data rate, in bytes per second.
    Bandwidth,
    "B/s"
);

quantity!(
    /// A floating-point throughput, in flop per second.
    FlopRate,
    "flop/s"
);

impl Time {
    /// Construct from seconds.
    #[inline]
    pub fn seconds(s: f64) -> Self {
        Self(s)
    }

    /// Construct from milliseconds.
    #[inline]
    pub fn millis(ms: f64) -> Self {
        Self(ms * 1e-3)
    }

    /// Construct from microseconds.
    #[inline]
    pub fn micros(us: f64) -> Self {
        Self(us * 1e-6)
    }

    /// Construct from nanoseconds.
    #[inline]
    pub fn nanos(ns: f64) -> Self {
        Self(ns * 1e-9)
    }

    /// Value in microseconds.
    #[inline]
    pub fn as_micros(self) -> f64 {
        self.0 * 1e6
    }
}

impl Bytes {
    /// Construct from a byte count.
    #[inline]
    pub fn new(b: f64) -> Self {
        Self(b)
    }

    /// Construct from kibibytes (1024 B).
    #[inline]
    pub fn kib(k: f64) -> Self {
        Self(k * 1024.0)
    }

    /// Construct from mebibytes.
    #[inline]
    pub fn mib(m: f64) -> Self {
        Self(m * 1024.0 * 1024.0)
    }

    /// Construct from gibibytes.
    #[inline]
    pub fn gib(g: f64) -> Self {
        Self(g * 1024.0 * 1024.0 * 1024.0)
    }

    /// Construct from decimal gigabytes (1e9 B), the unit used by the paper's
    /// Table I for memory capacities and bandwidths.
    #[inline]
    pub fn gb(g: f64) -> Self {
        Self(g * 1e9)
    }
}

impl Flops {
    /// Construct from a flop count.
    #[inline]
    pub fn new(f: f64) -> Self {
        Self(f)
    }

    /// Construct from gigaflops (1e9 flop).
    #[inline]
    pub fn giga(g: f64) -> Self {
        Self(g * 1e9)
    }
}

impl Bandwidth {
    /// Construct from bytes per second.
    #[inline]
    pub fn bytes_per_sec(b: f64) -> Self {
        Self(b)
    }

    /// Construct from decimal gigabytes per second (the paper's unit).
    #[inline]
    pub fn gb_per_sec(g: f64) -> Self {
        Self(g * 1e9)
    }

    /// Value in decimal GB/s.
    #[inline]
    pub fn as_gb_per_sec(self) -> f64 {
        self.0 / 1e9
    }
}

impl FlopRate {
    /// Construct from flop per second.
    #[inline]
    pub fn per_sec(f: f64) -> Self {
        Self(f)
    }

    /// Construct from GFlop/s (the paper's unit for per-core and per-node peak).
    #[inline]
    pub fn gflops(g: f64) -> Self {
        Self(g * 1e9)
    }

    /// Value in GFlop/s.
    #[inline]
    pub fn as_gflops(self) -> f64 {
        self.0 / 1e9
    }

    /// Value in TFlop/s.
    #[inline]
    pub fn as_tflops(self) -> f64 {
        self.0 / 1e12
    }
}

impl Div<Time> for Bytes {
    type Output = Bandwidth;
    #[inline]
    fn div(self, rhs: Time) -> Bandwidth {
        Bandwidth(self.0 / rhs.0)
    }
}

impl Div<Bandwidth> for Bytes {
    type Output = Time;
    #[inline]
    fn div(self, rhs: Bandwidth) -> Time {
        Time(self.0 / rhs.0)
    }
}

impl Div<Time> for Flops {
    type Output = FlopRate;
    #[inline]
    fn div(self, rhs: Time) -> FlopRate {
        FlopRate(self.0 / rhs.0)
    }
}

impl Div<FlopRate> for Flops {
    type Output = Time;
    #[inline]
    fn div(self, rhs: FlopRate) -> Time {
        Time(self.0 / rhs.0)
    }
}

impl Mul<Time> for Bandwidth {
    type Output = Bytes;
    #[inline]
    fn mul(self, rhs: Time) -> Bytes {
        Bytes(self.0 * rhs.0)
    }
}

impl Mul<Time> for FlopRate {
    type Output = Flops;
    #[inline]
    fn mul(self, rhs: Time) -> Flops {
        Flops(self.0 * rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_from_bytes_over_time() {
        let bw = Bytes::gb(10.0) / Time::seconds(2.0);
        assert!((bw.as_gb_per_sec() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn time_from_bytes_over_bandwidth() {
        let t = Bytes::gb(1.0) / Bandwidth::gb_per_sec(4.0);
        assert!((t.value() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn floprate_roundtrip() {
        let r = FlopRate::gflops(70.4);
        assert!((r.as_gflops() - 70.4).abs() < 1e-12);
        let work = r * Time::seconds(2.0);
        assert!((work.value() - 140.8e9).abs() < 1.0);
    }

    #[test]
    fn ratio_is_dimensionless() {
        let a = Time::seconds(3.0);
        let b = Time::seconds(1.5);
        assert!((a / b - 2.0).abs() < 1e-12);
    }

    #[test]
    fn byte_constructors() {
        assert_eq!(Bytes::kib(1.0).value(), 1024.0);
        assert_eq!(Bytes::mib(1.0).value(), 1024.0 * 1024.0);
        assert_eq!(Bytes::gb(1.0).value(), 1e9);
    }

    #[test]
    fn time_constructors() {
        assert!((Time::micros(1.0).value() - 1e-6).abs() < 1e-18);
        assert!((Time::nanos(1.0).value() - 1e-9).abs() < 1e-21);
        assert!((Time::millis(2.0).as_micros() - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn sum_and_ordering() {
        let total: Time = [Time::seconds(1.0), Time::seconds(2.0)].into_iter().sum();
        assert_eq!(total, Time::seconds(3.0));
        assert!(Time::seconds(1.0) < Time::seconds(2.0));
        assert_eq!(
            Time::seconds(1.0).max(Time::seconds(2.0)),
            Time::seconds(2.0)
        );
        assert_eq!(
            Time::seconds(1.0).min(Time::seconds(2.0)),
            Time::seconds(1.0)
        );
    }

    #[test]
    fn arithmetic_ops() {
        let mut t = Time::seconds(1.0);
        t += Time::seconds(0.5);
        t -= Time::seconds(0.25);
        assert!((t.value() - 1.25).abs() < 1e-12);
        assert_eq!((-t).value(), -1.25);
        assert_eq!((t * 2.0).value(), 2.5);
        assert_eq!((2.0 * t).value(), 2.5);
        assert_eq!((t / 2.0).value(), 0.625);
    }
}
