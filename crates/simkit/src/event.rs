//! A deterministic discrete-event scheduler.
//!
//! Events are ordered by `(time, sequence)`: two events scheduled for the
//! same instant fire in insertion order, which keeps runs bit-reproducible
//! regardless of heap internals.

use crate::units::Time;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event queue holding payloads of type `E`, keyed by simulated time.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: Time,
}

#[derive(Debug)]
struct Entry<E> {
    at: Time,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other
            .at
            .partial_cmp(&self.at)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at t = 0.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            now: Time::ZERO,
        }
    }

    /// Current simulated time (time of the last popped event).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `payload` to fire at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` precedes the current time — scheduling into the past
    /// is always a simulation bug.
    pub fn schedule_at(&mut self, at: Time, payload: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past ({at} < {})",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Schedule `payload` to fire `delay` after the current time.
    pub fn schedule_in(&mut self, delay: Time, payload: E) {
        self.schedule_at(self.now + delay, payload);
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|e| {
            self.now = e.at;
            (e.at, e.payload)
        })
    }
}

/// A driver that runs an event queue to completion through a handler.
///
/// The handler receives `(time, event, &mut Scheduler)` and may schedule
/// follow-up events; the run ends when the queue drains or after
/// `max_events` (a runaway-loop backstop).
pub struct Scheduler<E> {
    queue: EventQueue<E>,
    max_events: u64,
}

impl<E> Scheduler<E> {
    /// A scheduler with a generous default event budget.
    pub fn new() -> Self {
        Self {
            queue: EventQueue::new(),
            max_events: 100_000_000,
        }
    }

    /// Override the event budget.
    pub fn with_max_events(mut self, max: u64) -> Self {
        self.max_events = max;
        self
    }

    /// Access the underlying queue (e.g. to seed initial events).
    pub fn queue(&mut self) -> &mut EventQueue<E> {
        &mut self.queue
    }

    /// Run until the queue drains. Returns the final simulated time and the
    /// number of events processed.
    ///
    /// # Panics
    /// Panics if the event budget is exhausted, which indicates a live-lock
    /// in the simulated protocol.
    pub fn run(&mut self, mut handler: impl FnMut(Time, E, &mut EventQueue<E>)) -> (Time, u64) {
        let mut processed = 0;
        while let Some((t, ev)) = self.queue.pop() {
            handler(t, ev, &mut self.queue);
            processed += 1;
            assert!(
                processed <= self.max_events,
                "event budget exhausted after {processed} events — livelock?"
            );
        }
        (self.queue.now(), processed)
    }
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(Time::seconds(3.0), "c");
        q.schedule_at(Time::seconds(1.0), "a");
        q.schedule_at(Time::seconds(2.0), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule_at(Time::seconds(1.0), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_at(Time::seconds(5.0), ());
        assert_eq!(q.now(), Time::ZERO);
        q.pop();
        assert_eq!(q.now(), Time::seconds(5.0));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(Time::seconds(2.0), ());
        q.pop();
        q.schedule_at(Time::seconds(1.0), ());
    }

    #[test]
    fn scheduler_runs_cascading_events() {
        // A chain: each event schedules the next until a countdown hits zero.
        let mut s = Scheduler::new();
        s.queue().schedule_at(Time::seconds(1.0), 5u32);
        let mut fired = Vec::new();
        let (end, n) = s.run(|t, countdown, q| {
            fired.push((t, countdown));
            if countdown > 0 {
                q.schedule_in(Time::seconds(1.0), countdown - 1);
            }
        });
        assert_eq!(n, 6);
        assert_eq!(end, Time::seconds(6.0));
        assert_eq!(fired.len(), 6);
        assert_eq!(fired[5], (Time::seconds(6.0), 0));
    }

    #[test]
    #[should_panic(expected = "event budget exhausted")]
    fn runaway_loop_is_caught() {
        let mut s = Scheduler::new().with_max_events(100);
        s.queue().schedule_at(Time::ZERO, ());
        s.run(|_, (), q| q.schedule_in(Time::seconds(1.0), ()));
    }

    #[test]
    fn len_and_is_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule_at(Time::seconds(1.0), ());
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
