//! Online statistics and histograms for measurement aggregation.

use serde::{Deserialize, Serialize};

/// Single-pass mean/variance accumulator (Welford's algorithm).
///
/// Numerically stable for long measurement streams; used to aggregate
/// repeated benchmark runs and per-pair network measurements.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator into this one (parallel reduction; Chan et
    /// al.'s pairwise update).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation (std dev / mean); 0 for empty or zero-mean.
    pub fn cv(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.std_dev() / m.abs()
        }
    }

    /// Minimum observation (NaN if empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Maximum observation (NaN if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }
}

/// A fixed-range linear histogram over `f64` observations.
///
/// Used to regenerate the paper's Figure 5 (bandwidth distribution over all
/// node pairs): the colour scale there is exactly an occurrence count per
/// bandwidth bin.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl serde::bin::Encode for Histogram {
    fn encode(&self, out: &mut Vec<u8>) {
        self.lo.encode(out);
        self.hi.encode(out);
        self.bins.encode(out);
        self.underflow.encode(out);
        self.overflow.encode(out);
    }
}

impl serde::bin::Decode for Histogram {
    fn decode(r: &mut serde::bin::Reader<'_>) -> Result<Self, serde::bin::DecodeError> {
        Ok(Histogram {
            lo: f64::decode(r)?,
            hi: f64::decode(r)?,
            bins: Vec::<u64>::decode(r)?,
            underflow: u64::decode(r)?,
            overflow: u64::decode(r)?,
        })
    }
}

impl Histogram {
    /// A histogram over `[lo, hi)` with `nbins` equal-width bins.
    ///
    /// # Panics
    /// Panics if `hi <= lo` or `nbins == 0`.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Self {
        assert!(hi > lo, "histogram range must be non-empty");
        assert!(nbins > 0, "histogram needs at least one bin");
        Self {
            lo,
            hi,
            bins: vec![0; nbins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let frac = (x - self.lo) / (self.hi - self.lo);
            let idx = ((frac * self.bins.len() as f64) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Count of observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count of observations at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations including out-of-range ones.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Centre of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    /// A copy with bins smoothed by a centred moving average of the given
    /// odd window (edge bins average over the in-range part). Smoothing
    /// before mode detection suppresses single-bin sampling noise.
    pub fn smoothed(&self, window: usize) -> Histogram {
        assert!(window % 2 == 1, "window must be odd");
        let half = window / 2;
        let n = self.bins.len();
        let mut out = self.clone();
        for i in 0..n {
            let lo = i.saturating_sub(half);
            let hi = (i + half).min(n - 1);
            let sum: u64 = self.bins[lo..=hi].iter().sum();
            out.bins[i] = sum / (hi - lo + 1) as u64;
        }
        out
    }

    /// Indices of local maxima ("modes") with counts at least `min_count`,
    /// requiring a strict rise before and fall after (plateau-tolerant).
    /// Used to assert the bimodality the paper observes in Figure 5.
    pub fn modes(&self, min_count: u64) -> Vec<usize> {
        let b = &self.bins;
        let mut modes = Vec::new();
        let mut i = 0;
        while i < b.len() {
            if b[i] < min_count {
                i += 1;
                continue;
            }
            // Extent of the plateau at this height.
            let start = i;
            let mut end = i;
            while end + 1 < b.len() && b[end + 1] == b[start] {
                end += 1;
            }
            let rising = start == 0 || b[start - 1] < b[start];
            let falling = end + 1 == b.len() || b[end + 1] < b[start];
            if rising && falling {
                modes.push((start + end) / 2);
            }
            i = end + 1;
        }
        modes
    }
}

/// Ordinary least-squares fit `y = slope·x + intercept`.
///
/// Returns `(slope, intercept, r²)`. Fitting log(time) against log(nodes)
/// gives the scaling exponent of a strong-scaling curve: −1 is perfect,
/// 0 is flat — the integration tests use it to characterize the paper's
/// scalability figures quantitatively.
///
/// # Panics
/// Panics with fewer than two points or a degenerate (constant-x) input.
pub fn linear_fit(points: &[(f64, f64)]) -> (f64, f64, f64) {
    assert!(points.len() >= 2, "need at least two points");
    let n = points.len() as f64;
    let mx = points.iter().map(|p| p.0).sum::<f64>() / n;
    let my = points.iter().map(|p| p.1).sum::<f64>() / n;
    let sxx: f64 = points.iter().map(|p| (p.0 - mx).powi(2)).sum();
    let sxy: f64 = points.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
    let syy: f64 = points.iter().map(|p| (p.1 - my).powi(2)).sum();
    assert!(sxx > 0.0, "x values are constant");
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r2 = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    (slope, intercept, r2)
}

/// Scaling exponent of a `(resources, time)` curve: the slope of the
/// log–log fit. −1 means perfect strong scaling, 0 means no scaling.
///
/// # Panics
/// Panics on non-positive coordinates (log-space is undefined there).
pub fn scaling_exponent(points: &[(f64, f64)]) -> f64 {
    let logged: Vec<(f64, f64)> = points
        .iter()
        .map(|&(x, y)| {
            assert!(x > 0.0 && y > 0.0, "log–log fit needs positive data");
            (x.ln(), y.ln())
        })
        .collect();
    linear_fit(&logged).0
}

/// Compute the `q`-quantile (0 ≤ q ≤ 1) of a slice by sorting a copy.
/// Linear interpolation between closest ranks. Returns NaN for empty input.
pub fn quantile(data: &[f64], q: f64) -> f64 {
    if data.is_empty() {
        return f64::NAN;
    }
    let mut v: Vec<f64> = data.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q.clamp(0.0, 1.0) * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = pos - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &data {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &data[..37] {
            a.push(x);
        }
        for &x in &data[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-10);
        assert!((a.variance() - whole.variance()).abs() < 1e-10);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = a.mean();
        a.merge(&OnlineStats::new());
        assert_eq!(a.mean(), before);
        let mut empty = OnlineStats::new();
        empty.merge(&a);
        assert_eq!(empty.count(), 2);
        assert_eq!(empty.mean(), before);
    }

    #[test]
    fn empty_stats_are_sane() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.cv(), 0.0);
        assert!(s.min().is_nan());
    }

    #[test]
    fn histogram_bins_correctly() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(-1.0);
        h.record(0.0);
        h.record(0.5);
        h.record(9.99);
        h.record(10.0);
        h.record(15.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.bins()[0], 2);
        assert_eq!(h.bins()[9], 1);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn histogram_bin_center() {
        let h = Histogram::new(0.0, 10.0, 10);
        assert!((h.bin_center(0) - 0.5).abs() < 1e-12);
        assert!((h.bin_center(9) - 9.5).abs() < 1e-12);
    }

    #[test]
    fn bimodal_histogram_has_two_modes() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        // Mass at x≈2 and x≈7.
        for _ in 0..50 {
            h.record(2.1);
        }
        for _ in 0..30 {
            h.record(7.3);
        }
        for _ in 0..5 {
            h.record(4.5);
        }
        let modes = h.modes(10);
        assert_eq!(modes.len(), 2);
    }

    #[test]
    fn unimodal_histogram_has_one_mode() {
        // Triangular hump centred at 5: sum of two uniforms.
        let mut rng = crate::rng::Pcg32::seeded(11);
        let mut h = Histogram::new(0.0, 10.0, 20);
        for _ in 0..10_000 {
            let x = rng.uniform(0.0, 5.0) + rng.uniform(0.0, 5.0);
            h.record(x);
        }
        assert_eq!(h.modes(800).len(), 1);
    }

    #[test]
    fn linear_fit_recovers_a_line() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 * i as f64 - 2.0)).collect();
        let (slope, intercept, r2) = linear_fit(&pts);
        assert!((slope - 3.0).abs() < 1e-12);
        assert!((intercept + 2.0).abs() < 1e-12);
        assert!((r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_r2_detects_noise() {
        let pts = [(0.0, 0.0), (1.0, 5.0), (2.0, -1.0), (3.0, 4.0), (4.0, 1.0)];
        let (_, _, r2) = linear_fit(&pts);
        assert!(r2 < 0.5, "scatter has low r²: {r2}");
    }

    #[test]
    fn scaling_exponent_of_ideal_curve_is_minus_one() {
        let pts: Vec<(f64, f64)> = [1.0, 2.0, 4.0, 8.0, 16.0]
            .iter()
            .map(|&n| (n, 100.0 / n))
            .collect();
        let e = scaling_exponent(&pts);
        assert!((e + 1.0).abs() < 1e-9, "exponent {e}");
        // A flat (non-scaling) curve has exponent 0.
        let flat: Vec<(f64, f64)> = [1.0, 2.0, 4.0].iter().map(|&n| (n, 7.0)).collect();
        assert!(scaling_exponent(&flat).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn linear_fit_needs_points() {
        linear_fit(&[(1.0, 1.0)]);
    }

    #[test]
    fn quantiles() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&data, 0.0), 1.0);
        assert_eq!(quantile(&data, 0.5), 3.0);
        assert_eq!(quantile(&data, 1.0), 5.0);
        assert!((quantile(&data, 0.25) - 2.0).abs() < 1e-12);
        assert!(quantile(&[], 0.5).is_nan());
    }
}
