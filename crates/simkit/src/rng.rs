//! Reproducible pseudo-random number generation.
//!
//! All stochastic behaviour in the simulator (workload generation, noise
//! injection, node-failure placement) flows through [`Pcg32`], a
//! self-contained implementation of the PCG-XSH-RR 64/32 generator. Results
//! are identical on every platform and every run with the same seed, which
//! the integration tests rely on.

/// PCG-XSH-RR 64/32: 64-bit state, 32-bit output, period 2^64 per stream.
#[derive(Debug, Clone)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6364136223846793005;

impl Pcg32 {
    /// Create a generator from a seed and a stream selector. Different
    /// streams with the same seed are statistically independent.
    pub fn new(seed: u64, stream: u64) -> Self {
        let mut rng = Self {
            state: 0,
            inc: (stream << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        rng.next_u32();
        rng
    }

    /// Create a generator from a seed on the default stream.
    pub fn seeded(seed: u64) -> Self {
        Self::new(seed, 0xda3e39cb94b95bdb)
    }

    /// Next 32 uniformly distributed bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64 uniformly distributed bits (two draws).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` without modulo bias (Lemire's method
    /// via rejection on the widening multiply).
    #[inline]
    pub fn next_below(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "bound must be positive");
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u32();
            let m = u64::from(r) * u64::from(bound);
            if (m as u32) >= threshold {
                return (m >> 32) as u32;
            }
        }
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Standard normal deviate via the Box–Muller transform.
    pub fn normal(&mut self) -> f64 {
        // Draw until u is strictly positive so ln(u) is finite.
        let mut u = self.next_f64();
        while u <= f64::MIN_POSITIVE {
            u = self.next_f64();
        }
        let v = self.next_f64();
        (-2.0 * u.ln()).sqrt() * (std::f64::consts::TAU * v).cos()
    }

    /// Normal deviate with the given mean and standard deviation.
    #[inline]
    pub fn normal_with(&mut self, mean: f64, sd: f64) -> f64 {
        mean + sd * self.normal()
    }

    /// Lognormal multiplicative noise factor with median 1 and the given
    /// sigma of the underlying normal. Used to model run-to-run variability
    /// of benchmark measurements.
    #[inline]
    pub fn lognormal_noise(&mut self, sigma: f64) -> f64 {
        (sigma * self.normal()).exp()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below(i as u32 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "cannot choose from an empty slice");
        &slice[self.next_below(slice.len() as u32) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Pcg32::seeded(42);
        let mut b = Pcg32::seeded(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Pcg32::seeded(1);
        let mut b = Pcg32::seeded(2);
        let same = (0..100).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 5);
    }

    #[test]
    fn different_streams_diverge() {
        let mut a = Pcg32::new(7, 1);
        let mut b = Pcg32::new(7, 2);
        let same = (0..100).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 5);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Pcg32::seeded(3);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = Pcg32::seeded(4);
        for bound in [1u32, 2, 3, 7, 48, 192] {
            for _ in 0..1000 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_covers_range() {
        let mut rng = Pcg32::seeded(5);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.next_below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = Pcg32::seeded(6);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn lognormal_noise_has_median_one() {
        let mut rng = Pcg32::seeded(7);
        let mut samples: Vec<f64> = (0..10_001).map(|_| rng.lognormal_noise(0.3)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[5000];
        assert!((median - 1.0).abs() < 0.05, "median {median}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Pcg32::seeded(8);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = Pcg32::seeded(9);
        for _ in 0..1000 {
            let x = rng.uniform(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&x));
        }
    }
}
