//! Gromacs — molecular dynamics (Figs. 12, 13).
//!
//! The lignocellulose-rf UEABS case: 3.3 M atoms, reaction-field
//! electrostatics (no PME), 10 000 MD steps, hybrid MPI×OpenMP with the
//! developer-recommended 6 threads per rank. Gromacs' own SIMD layer plus
//! GNU 11's partial SVE support put about 45 % of the force-loop work in
//! vectorizable form on CTE-Arm (`-DGMX_SIMD=ARM_SVE`); Intel lands most of
//! it. Domain-decomposition halo volume grows super-linearly once cells
//! shrink towards the cutoff radius — the cutoff shell spills into
//! neighbouring cells — which is what erodes the gap at high node counts.
//!
//! The paper's unexplained anomaly — the 16-MPI-process run is slow on
//! *both* machines — is modelled as a domain-decomposition imbalance
//! penalty at that rank count (a 4×2×2 DD grid mismatched to the triclinic
//! cell), avoided by the alternative 12-rank × 8-thread configuration the
//! paper tested (dotted lines in Fig. 13).

use crate::common::{with_job, AppRun, Cluster};
use arch::cost::KernelProfile;
use simkit::cache::{Cache, CacheKey};
use simkit::series::{Figure, Series};
use simkit::units::{Bytes, Time};

/// The lignocellulose-rf workload model.
#[derive(Debug, Clone)]
pub struct Gromacs {
    /// Atoms (3.3 M).
    pub atoms: f64,
    /// Flops per atom per step: ~40 neighbours × 25 flops of LJ/RF pair
    /// work plus bonded terms, constraints (LINCS/SETTLE) and neighbour
    /// search amortization.
    pub flops_per_atom: f64,
    /// MD integration time step in femtoseconds.
    pub dt_fs: f64,
    /// MD steps the benchmark runs.
    pub total_steps: usize,
    /// Steps actually simulated (scaled up afterwards).
    pub steps: usize,
    /// Non-bonded cutoff radius in nm.
    pub cutoff_nm: f64,
    /// Box edge in nm (3.3 M atoms at water-ish density).
    pub box_nm: f64,
    /// DD imbalance factor applied at the anomalous 16-rank count.
    pub dd_anomaly_factor: f64,
}

impl Gromacs {
    /// The UEABS lignocellulose-rf test case B.
    pub fn lignocellulose_rf() -> Self {
        Self {
            atoms: 3.3e6,
            flops_per_atom: 5000.0,
            dt_fs: 2.0,
            total_steps: 10_000,
            steps: 3,
            cutoff_nm: 1.2,
            box_nm: 33.0,
            dd_anomaly_factor: 1.6,
        }
    }

    /// Halo-to-local atom ratio for a DD cell of edge `l` nm:
    /// `((l + 2r)³ − l³) / l³`, capped at the whole system.
    pub fn halo_ratio(&self, ranks: usize) -> f64 {
        let l = self.box_nm / (ranks as f64).cbrt();
        let r = self.cutoff_nm;
        (((l + 2.0 * r) / l).powi(3) - 1.0).min(26.0)
    }

    /// Simulate with an explicit rank × thread configuration (the paper's
    /// default is 6 OpenMP threads per rank; the alternative Fig.-13
    /// config is 12 ranks × 8 threads per node... of the total).
    pub fn simulate_config(
        &self,
        cluster: Cluster,
        nodes: usize,
        ranks_per_node: usize,
        threads_per_rank: usize,
    ) -> AppRun {
        let ranks = nodes * ranks_per_node;
        let per_rank_atoms = self.atoms / ranks as f64;
        // Halo atoms are communicated and their pair interactions partly
        // recomputed locally; both scale with the halo ratio.
        let halo_ratio = self.halo_ratio(ranks);
        let compute_atoms = per_rank_atoms * (1.0 + 0.5 * halo_ratio.min(4.0));
        let force = KernelProfile::dp(
            "gromacs-forces",
            compute_atoms * self.flops_per_atom,
            // Neighbour lists stream from memory: ~56 B per atom per step.
            compute_atoms * 56.0,
        )
        .with_vectorizable(0.45);
        let halo_bytes = Bytes::new(per_rank_atoms * halo_ratio.min(4.0) * 24.0);
        let anomaly = if ranks == 16 {
            self.dd_anomaly_factor
        } else {
            1.0
        };

        let elapsed = with_job(
            cluster,
            nodes,
            ranks_per_node,
            threads_per_rank,
            /* gromacs needs GNU 11 */ true,
            29,
            |job| {
                for _ in 0..self.steps {
                    job.compute(&force);
                    job.halo(6, halo_bytes);
                    job.allreduce(Bytes::new(16.0));
                }
                job.elapsed()
            },
        );
        let per_step = elapsed.value() / self.steps as f64 * anomaly;
        AppRun {
            elapsed: Time::seconds(per_step * self.total_steps as f64),
            phases: vec![("per-step".into(), Time::seconds(per_step))],
        }
    }

    /// [`Self::simulate_config`] through a [`Cache`]: Fig. 13's multi-node
    /// sweep and Table IV share most node counts, and Fig. 12's
    /// single-node 8×6 point is Fig. 13's 1-node point.
    pub fn simulate_config_cached(
        &self,
        cache: &Cache,
        cluster: Cluster,
        nodes: usize,
        ranks_per_node: usize,
        threads_per_rank: usize,
    ) -> AppRun {
        let key = CacheKey::new(
            cluster.label(),
            "gromacs",
            format!("{self:?}|nodes={nodes}|rpn={ranks_per_node}|tpr={threads_per_rank}"),
        );
        cache.get_or_persistent(key, || {
            self.simulate_config(cluster, nodes, ranks_per_node, threads_per_rank)
        })
    }

    /// Default configuration: 6 OpenMP threads per rank, node-filling.
    pub fn simulate(&self, cluster: Cluster, nodes: usize) -> AppRun {
        self.simulate_config(cluster, nodes, 8, 6)
    }

    /// Default configuration through a [`Cache`].
    pub fn simulate_cached(&self, cache: &Cache, cluster: Cluster, nodes: usize) -> AppRun {
        self.simulate_config_cached(cache, cluster, nodes, 8, 6)
    }

    /// Days of wall-clock per simulated nanosecond (the y-axis of
    /// Figs. 12–13). One ns needs `1e6 / dt_fs` steps.
    pub fn days_per_ns(&self, run: &AppRun) -> f64 {
        let per_step = run.phase("per-step").expect("per-step recorded").value();
        let steps_per_ns = 1.0e6 / self.dt_fs;
        per_step * steps_per_ns / 86_400.0
    }

    /// Fig. 12 — single-node scalability: x = cores (ranks × 6 threads).
    pub fn figure12(&self) -> Figure {
        self.figure12_cached(&Cache::new())
    }

    /// Fig. 12 with a shared sub-result cache.
    pub fn figure12_cached(&self, cache: &Cache) -> Figure {
        let mut fig = Figure::new(
            "fig12",
            "Gromacs: single-node scalability (6 threads/rank)",
            "cores",
            "days per ns",
        );
        for cluster in Cluster::BOTH {
            let mut s = Series::new(cluster.label());
            for ranks in 1..=8usize {
                let run = self.simulate_config_cached(cache, cluster, 1, ranks, 6);
                s.push((ranks * 6) as f64, self.days_per_ns(&run));
            }
            fig.series.push(s);
        }
        fig
    }

    /// Fig. 13 — multi-node scalability, plus the alternative 12×8
    /// configuration as dotted series.
    pub fn figure13(&self) -> Figure {
        self.figure13_cached(&Cache::new())
    }

    /// Fig. 13 with a shared sub-result cache.
    pub fn figure13_cached(&self, cache: &Cache) -> Figure {
        let mut fig = Figure::new(
            "fig13",
            "Gromacs: multi-node scalability",
            "nodes",
            "days per ns",
        );
        let counts = [1usize, 2, 4, 8, 16, 32, 64, 96, 144, 192];
        for cluster in Cluster::BOTH {
            let mut s = Series::new(cluster.label());
            for &n in &counts {
                let run = self.simulate_cached(cache, cluster, n);
                s.push(n as f64, self.days_per_ns(&run));
            }
            fig.series.push(s);
            // The alternative config at the anomalous point (2 nodes).
            let mut alt = Series::new(format!("{} (12×8 alt)", cluster.label()));
            for &n in &[1usize, 2, 4] {
                let run = self.simulate_config_cached(cache, cluster, n, 6, 8);
                alt.push(n as f64, self.days_per_ns(&run));
            }
            fig.series.push(alt);
        }
        fig
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ratio(g: &Gromacs, nodes: usize) -> f64 {
        g.simulate(Cluster::CteArm, nodes).elapsed
            / g.simulate(Cluster::MareNostrum4, nodes).elapsed
    }

    #[test]
    fn single_node_full_ratio_near_3_1() {
        // Paper: whole node 3.10× slower on CTE-Arm.
        let g = Gromacs::lignocellulose_rf();
        let c = g.simulate_config(Cluster::CteArm, 1, 8, 6);
        let m = g.simulate_config(Cluster::MareNostrum4, 1, 8, 6);
        let r = c.elapsed / m.elapsed;
        assert!((r - 3.10).abs() < 0.4, "full-node ratio {r}");
    }

    #[test]
    fn six_core_ratio_is_higher_than_full_node() {
        // Paper: 3.48× at 6 cores vs 3.10× at 48 — the gap shrinks as
        // MN4's package-wide AVX-512 derate kicks in.
        let g = Gromacs::lignocellulose_rf();
        let r6 = g.simulate_config(Cluster::CteArm, 1, 1, 6).elapsed
            / g.simulate_config(Cluster::MareNostrum4, 1, 1, 6).elapsed;
        let r48 = g.simulate_config(Cluster::CteArm, 1, 8, 6).elapsed
            / g.simulate_config(Cluster::MareNostrum4, 1, 8, 6).elapsed;
        assert!(r6 > r48, "{r6} vs {r48}");
        assert!((r6 - 3.48).abs() < 0.5, "6-core ratio {r6}");
    }

    #[test]
    fn gap_does_not_widen_with_scale() {
        // Paper: the gap narrows to 1.5× at 144 nodes. Our model keeps it
        // near ~3× (flat): the DD halo and reductions grow too slowly to
        // close it — a known deviation recorded in EXPERIMENTS.md. The
        // shape invariant we hold is that CTE-Arm never falls further
        // behind with scale.
        let g = Gromacs::lignocellulose_rf();
        let r1 = ratio(&g, 1);
        let r64 = ratio(&g, 64);
        let r144 = ratio(&g, 144);
        assert!(r64 <= r1 * 1.05, "gap must not widen: {r1} -> {r64}");
        assert!(r144 <= r64 * 1.05, "gap must not widen: {r64} -> {r144}");
        assert!((2.4..=3.3).contains(&r144), "144-node ratio {r144}");
    }

    #[test]
    fn sixteen_rank_anomaly_on_both_machines() {
        let g = Gromacs::lignocellulose_rf();
        for cluster in Cluster::BOTH {
            // 2 nodes × 8 ranks = 16 ranks: the anomalous configuration.
            let bad = g.simulate(cluster, 2);
            let alt = g.simulate_config(cluster, 2, 6, 8); // 12 ranks × 8 thr
            let bad_rate = g.days_per_ns(&bad);
            let alt_rate = g.days_per_ns(&alt);
            assert!(
                bad_rate > 1.25 * alt_rate,
                "{cluster:?}: 16-rank run must be anomalous ({bad_rate} vs {alt_rate})"
            );
        }
    }

    #[test]
    fn alternative_config_follows_the_trend() {
        // The 12×8 point at 2 nodes sits between the 1- and 4-node default
        // points (it "follows the scalability trend").
        let g = Gromacs::lignocellulose_rf();
        let d1 = g.days_per_ns(&g.simulate(Cluster::CteArm, 1));
        let d4 = g.days_per_ns(&g.simulate(Cluster::CteArm, 4));
        let alt2 = g.days_per_ns(&g.simulate_config(Cluster::CteArm, 2, 6, 8));
        assert!(alt2 < d1 && alt2 > d4, "{d1} > {alt2} > {d4}");
    }

    #[test]
    fn halo_ratio_grows_as_cells_shrink() {
        let g = Gromacs::lignocellulose_rf();
        let few = g.halo_ratio(48);
        let many = g.halo_ratio(9216);
        assert!(many > 2.0 * few, "{few} -> {many}");
    }

    #[test]
    fn days_per_ns_is_physical() {
        let g = Gromacs::lignocellulose_rf();
        let run = g.simulate(Cluster::MareNostrum4, 16);
        let d = g.days_per_ns(&run);
        // A 3.3 M-atom RF system on 16 nodes: between an hour and a few
        // days per ns.
        assert!(d > 0.01 && d < 10.0, "days/ns {d}");
    }

    #[test]
    fn figures_are_well_formed() {
        let g = Gromacs::lignocellulose_rf();
        let f12 = g.figure12();
        assert_eq!(f12.series.len(), 2);
        assert_eq!(f12.series[0].points.len(), 8);
        let f13 = g.figure13();
        assert_eq!(f13.series.len(), 4, "default + alt per machine");
    }
}
