//! WRF — mesoscale weather (Fig. 16).
//!
//! The paper's input: the Iberian peninsula at 4 km resolution, 56 h of
//! simulation producing one history frame per simulated hour (54 frames),
//! run with output enabled and disabled. WRF's step mixes compute-heavy
//! physics (microphysics, radiation — partially vectorized by Intel, left
//! scalar by GNU-on-A64FX) with genuinely streaming dynamics sweeps; the
//! calibrated mix (67.5 : 32.5 on MareNostrum 4) produces the paper's
//! ~2.2× gap, the smallest among the five applications precisely because
//! the streaming share is the largest — HBM absorbs it.

use crate::common::{with_job, AppRun, Cluster};
use arch::cost::KernelProfile;
use simkit::cache::{Cache, CacheKey};
use simkit::series::{Figure, Series};
use simkit::units::{Bytes, Time};

/// The Iberia-4km workload model.
#[derive(Debug, Clone)]
pub struct Wrf {
    /// Horizontal grid points (≈ 1000 × 750 at 4 km over Iberia+margins).
    pub horiz_points: f64,
    /// Vertical levels.
    pub levels: usize,
    /// Compute flops per grid point per step (physics + dynamics).
    pub flops_per_point: f64,
    /// Streaming bytes per grid point per step.
    pub bytes_per_point: f64,
    /// Simulated hours (56 in the paper).
    pub hours: usize,
    /// Model steps per simulated hour (dt = 24 s at 4 km).
    pub steps_per_hour: usize,
    /// History frames written (54 — spin-up hours produce none).
    pub frames: usize,
    /// Bytes per history frame.
    pub frame_bytes: f64,
    /// Representative steps actually simulated per run.
    pub steps: usize,
}

impl Wrf {
    /// The Iberian-peninsula 4 km, 56 h case.
    pub fn iberia_4km() -> Self {
        let horiz = 1000.0 * 750.0;
        let levels = 50;
        Self {
            horiz_points: horiz,
            levels,
            flops_per_point: 7000.0,
            bytes_per_point: 1660.0,
            hours: 56,
            steps_per_hour: 150,
            frames: 54,
            // History frame: ~6 single-precision 3-D fields.
            frame_bytes: horiz * levels as f64 * 6.0 * 4.0,
            steps: 3,
        }
    }

    /// Simulate a run. `io` toggles history output, as in the paper.
    pub fn simulate(&self, cluster: Cluster, nodes: usize, io: bool) -> AppRun {
        let ranks = nodes * 48;
        let points = self.horiz_points * self.levels as f64;
        let per_rank = points / ranks as f64;
        let physics = KernelProfile::dp("wrf-physics", per_rank * self.flops_per_point, 0.0)
            .with_vectorizable(0.30);
        let stream = KernelProfile::dp("wrf-stream", 0.0, per_rank * self.bytes_per_point);
        // 2-D decomposition halo: 4 edges × √(horiz/ranks) × levels × 8 B
        // × 3 prognostic field groups.
        let halo_bytes =
            Bytes::new((self.horiz_points / ranks as f64).sqrt() * self.levels as f64 * 8.0 * 3.0);

        let (step_time, io_time) = with_job(cluster, nodes, 48, 1, false, 37, |job| {
            for _ in 0..self.steps {
                job.compute(&physics);
                job.compute(&stream);
                job.halo(4, halo_bytes);
            }
            let t_steps = job.elapsed();
            // One representative frame write.
            job.write_output(Bytes::new(self.frame_bytes));
            (
                Time::seconds(t_steps.value() / self.steps as f64),
                job.elapsed() - t_steps,
            )
        });
        let total_steps = (self.hours * self.steps_per_hour) as f64;
        let compute_total = step_time.value() * total_steps;
        let io_total = if io {
            io_time.value() * self.frames as f64
        } else {
            0.0
        };
        AppRun {
            elapsed: Time::seconds(compute_total + io_total),
            phases: vec![
                ("compute".into(), Time::seconds(compute_total)),
                ("io".into(), Time::seconds(io_total)),
            ],
        }
    }

    /// [`Self::simulate`] through a [`Cache`]: Table IV revisits Fig. 16's
    /// IO-enabled runs at 1–64 nodes.
    pub fn simulate_cached(
        &self,
        cache: &Cache,
        cluster: Cluster,
        nodes: usize,
        io: bool,
    ) -> AppRun {
        let key = CacheKey::new(
            cluster.label(),
            "wrf",
            format!("{self:?}|nodes={nodes}|io={io}"),
        );
        cache.get_or_persistent(key, || self.simulate(cluster, nodes, io))
    }

    /// Fig. 16 — scalability with IO enabled and disabled.
    pub fn figure16(&self) -> Figure {
        self.figure16_cached(&Cache::new())
    }

    /// Fig. 16 with a shared sub-result cache.
    pub fn figure16_cached(&self, cache: &Cache) -> Figure {
        let mut fig = Figure::new(
            "fig16",
            "WRF: scalability (Iberia 4 km, 56 h)",
            "nodes",
            "elapsed time [s]",
        );
        let counts = [1usize, 2, 4, 8, 16, 32, 64];
        for cluster in Cluster::BOTH {
            for io in [true, false] {
                let label = format!("{} ({})", cluster.label(), if io { "IO" } else { "no IO" });
                let mut s = Series::new(label);
                for &n in &counts {
                    s.push(
                        n as f64,
                        self.simulate_cached(cache, cluster, n, io).elapsed.value(),
                    );
                }
                fig.series.push(s);
            }
        }
        fig
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ratio(w: &Wrf, nodes: usize) -> f64 {
        w.simulate(Cluster::CteArm, nodes, true).elapsed
            / w.simulate(Cluster::MareNostrum4, nodes, true).elapsed
    }

    #[test]
    fn single_node_ratio_near_2_16() {
        let w = Wrf::iberia_4km();
        let r = ratio(&w, 1);
        assert!((r - 2.16).abs() < 0.3, "1-node ratio {r}");
    }

    #[test]
    fn sixty_four_node_ratio_near_2_23() {
        let w = Wrf::iberia_4km();
        let r = ratio(&w, 64);
        assert!((r - 2.23).abs() < 0.4, "64-node ratio {r}");
    }

    #[test]
    fn mn4_wins_at_every_scale() {
        let w = Wrf::iberia_4km();
        for nodes in [1, 4, 16, 64] {
            assert!(ratio(&w, nodes) > 1.5, "MN4 consistently outperforms");
        }
    }

    #[test]
    fn io_makes_little_difference() {
        // Paper: "little difference... giving the runs with IO disabled a
        // slight advantage".
        let w = Wrf::iberia_4km();
        for cluster in Cluster::BOTH {
            let with_io = w.simulate(cluster, 8, true).elapsed.value();
            let without = w.simulate(cluster, 8, false).elapsed.value();
            assert!(without < with_io, "no-IO run is faster");
            assert!(
                (with_io - without) / with_io < 0.10,
                "IO overhead below 10 %: {with_io} vs {without}"
            );
        }
    }

    #[test]
    fn io_phase_accounts_for_the_difference() {
        let w = Wrf::iberia_4km();
        let run = w.simulate(Cluster::CteArm, 4, true);
        let io = run.phase("io").unwrap().value();
        let compute = run.phase("compute").unwrap().value();
        assert!(io > 0.0);
        assert!((io + compute - run.elapsed.value()).abs() < 1e-9);
        let no_io = w.simulate(Cluster::CteArm, 4, false);
        assert_eq!(no_io.phase("io").unwrap().value(), 0.0);
    }

    #[test]
    fn wrf_has_the_smallest_gap_of_the_apps() {
        // The paper's discussion: WRF's large streaming share keeps the
        // A64FX penalty at ~2.2×, below Alya/OpenIFS/Gromacs levels.
        let w = Wrf::iberia_4km();
        let r = ratio(&w, 16);
        assert!(r < 2.6, "WRF gap {r} stays the smallest");
    }

    #[test]
    fn scales_with_nodes() {
        let w = Wrf::iberia_4km();
        let f = w.figure16();
        assert_eq!(f.series.len(), 4);
        for s in &f.series {
            assert!(s.is_non_increasing(0.05), "{} must scale", s.label);
        }
    }

    #[test]
    fn elapsed_time_is_plausible() {
        // 56 h at 4 km on one Skylake node: hours of wall-clock.
        let w = Wrf::iberia_4km();
        let t = w.simulate(Cluster::MareNostrum4, 1, true).elapsed.value();
        assert!(t > 1800.0 && t < 100_000.0, "elapsed {t}");
    }
}
