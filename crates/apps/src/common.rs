//! Shared infrastructure for the application studies.

use arch::compiler::Compiler;
use arch::machines::{cte_arm, marenostrum4, Machine};
use interconnect::fattree::FatTree;
use interconnect::link::LinkModel;
use interconnect::network::Network;
use interconnect::tofu::TofuD;
use interconnect::topology::NodeId;
use mpisim::job::Job;
use mpisim::layout::JobLayout;
use simkit::units::Time;

/// Which cluster an application run targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cluster {
    /// CTE-Arm (A64FX, TofuD, GNU toolchain).
    CteArm,
    /// MareNostrum 4 (Skylake, OmniPath, Intel toolchain).
    MareNostrum4,
}

impl Cluster {
    /// Both clusters, CTE-Arm first (plot order).
    pub const BOTH: [Cluster; 2] = [Cluster::CteArm, Cluster::MareNostrum4];

    /// The machine description.
    pub fn machine(self) -> Machine {
        match self {
            Cluster::CteArm => cte_arm(),
            Cluster::MareNostrum4 => marenostrum4(),
        }
    }

    /// Display name as used in the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            Cluster::CteArm => "CTE-Arm",
            Cluster::MareNostrum4 => "MareNostrum 4",
        }
    }

    /// The toolchain the paper ended up using on this cluster (Section V:
    /// the Fujitsu compiler failed on the applications; GNU was used on
    /// CTE-Arm and Intel on MareNostrum 4). Gromacs needs GNU 11.
    pub fn app_compiler(self, needs_gnu11: bool) -> Compiler {
        match self {
            Cluster::CteArm => {
                if needs_gnu11 {
                    Compiler::gnu11()
                } else {
                    Compiler::gnu_sve()
                }
            }
            Cluster::MareNostrum4 => Compiler::intel(),
        }
    }
}

/// Outcome of one application run.
#[derive(Debug, Clone)]
pub struct AppRun {
    /// Total elapsed time of the measured region.
    pub elapsed: Time,
    /// Named phase times (e.g. Alya's Assembly and Solver), slowest-rank.
    pub phases: Vec<(String, Time)>,
}

impl AppRun {
    /// Time of a named phase.
    pub fn phase(&self, name: &str) -> Option<Time> {
        self.phases.iter().find(|(n, _)| n == name).map(|&(_, t)| t)
    }
}

impl serde::bin::Encode for AppRun {
    fn encode(&self, out: &mut Vec<u8>) {
        self.elapsed.encode(out);
        self.phases.encode(out);
    }
}

impl serde::bin::Decode for AppRun {
    fn decode(r: &mut serde::bin::Reader<'_>) -> Result<Self, serde::bin::DecodeError> {
        Ok(AppRun {
            elapsed: Time::decode(r)?,
            phases: Vec::<(String, Time)>::decode(r)?,
        })
    }
}

impl simkit::store::StoreValue for AppRun {
    const TYPE_NAME: &'static str = "apps::AppRun";
}

/// One point of a strong-scaling study.
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// Node count.
    pub nodes: usize,
    /// Run outcome.
    pub run: AppRun,
}

/// Execute `body` with a freshly-built job on the requested cluster. The
/// closure receives the job with the standard layout (ranks/threads as
/// given) and must drive it to completion; its return value is passed
/// through.
pub fn with_job<R>(
    cluster: Cluster,
    nodes: usize,
    ranks_per_node: usize,
    threads_per_rank: usize,
    needs_gnu11: bool,
    seed: u64,
    body: impl FnOnce(&mut dyn JobHandle) -> R,
) -> R {
    let machine = cluster.machine();
    let compiler = cluster.app_compiler(needs_gnu11);
    let layout = |m: &Machine| {
        JobLayout::new(
            (0..nodes).map(NodeId).collect(),
            ranks_per_node,
            threads_per_rank,
            m.memory.n_domains,
            m.cores_per_node(),
        )
    };
    match cluster {
        Cluster::CteArm => {
            let net = Network::new(TofuD::cte_arm(), LinkModel::tofud());
            let mut job = Job::new(&machine, &compiler, &net, layout(&machine), seed);
            body(&mut job)
        }
        Cluster::MareNostrum4 => {
            let net = Network::new(FatTree::marenostrum4(), LinkModel::omnipath());
            let mut job = Job::new(&machine, &compiler, &net, layout(&machine), seed);
            body(&mut job)
        }
    }
}

/// Object-safe subset of [`Job`] operations the app models need, so one
/// model body can drive either cluster's topology.
pub trait JobHandle {
    /// All ranks execute the same per-rank chunk.
    fn compute(&mut self, profile: &arch::cost::KernelProfile);
    /// Blocking allreduce of `bytes` per rank.
    fn allreduce(&mut self, bytes: simkit::units::Bytes);
    /// Alltoall of `bytes` per rank pair.
    fn alltoall(&mut self, bytes: simkit::units::Bytes);
    /// Halo exchange: every rank swaps `bytes` with `n_neighbors` peers
    /// (ring-like neighbourhood over rank space).
    fn halo(&mut self, n_neighbors: usize, bytes: simkit::units::Bytes);
    /// Collective file write through the parallel filesystem.
    fn write_output(&mut self, total_bytes: simkit::units::Bytes);
    /// Latest rank clock.
    fn elapsed(&self) -> Time;
    /// Number of ranks.
    fn n_ranks(&self) -> usize;
}

/// Sustained bandwidth of the shared parallel filesystem (GPFS on both
/// clusters; a single job rarely sees more than ~10 GB/s).
const FS_BANDWIDTH_GBPS: f64 = 10.0;

impl<T: interconnect::topology::Topology> JobHandle for Job<'_, T> {
    fn compute(&mut self, profile: &arch::cost::KernelProfile) {
        Job::compute(self, profile);
    }
    fn allreduce(&mut self, bytes: simkit::units::Bytes) {
        Job::allreduce(self, bytes);
    }
    fn alltoall(&mut self, bytes: simkit::units::Bytes) {
        Job::alltoall(self, bytes);
    }
    fn halo(&mut self, n_neighbors: usize, bytes: simkit::units::Bytes) {
        let n = self.n_ranks();
        Job::neighbor_exchange(self, |r| {
            (1..=n_neighbors.div_ceil(2))
                .flat_map(|d| [(r + d) % n, (r + n - d % n) % n])
                .take(n_neighbors.min(n.saturating_sub(1)))
                .map(|peer| (peer, bytes))
                .collect()
        });
    }
    fn write_output(&mut self, total_bytes: simkit::units::Bytes) {
        Job::parallel_write(
            self,
            total_bytes,
            simkit::units::Bandwidth::gb_per_sec(FS_BANDWIDTH_GBPS),
        );
    }
    fn elapsed(&self) -> Time {
        Job::elapsed(self)
    }
    fn n_ranks(&self) -> usize {
        self.layout().n_ranks()
    }
}

/// Minimum nodes needed to hold `footprint_bytes` of application state on a
/// cluster (the paper's "NP" entries come from this: 32 GB/node on CTE-Arm
/// vs 96 GB on MareNostrum 4).
pub fn min_nodes(cluster: Cluster, footprint_bytes: f64) -> usize {
    let cap = cluster.machine().memory.capacity().value();
    // Applications cannot use every byte: runtime + MPI buffers take ~15 %.
    (footprint_bytes / (0.85 * cap)).ceil().max(1.0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use arch::cost::KernelProfile;
    use simkit::units::Bytes;

    #[test]
    fn compiler_selection_matches_paper() {
        use arch::compiler::CompilerId;
        assert_eq!(Cluster::CteArm.app_compiler(false).id, CompilerId::GnuSve);
        assert_eq!(Cluster::CteArm.app_compiler(true).id, CompilerId::Gnu11);
        assert_eq!(
            Cluster::MareNostrum4.app_compiler(false).id,
            CompilerId::Intel
        );
    }

    #[test]
    fn with_job_runs_on_both_clusters() {
        for cluster in Cluster::BOTH {
            let t = with_job(cluster, 2, 48, 1, false, 1, |job| {
                job.compute(&KernelProfile::dp("w", 1e9, 1e7));
                job.allreduce(Bytes::kib(8.0));
                job.elapsed()
            });
            assert!(t.value() > 0.0, "{cluster:?}");
        }
    }

    #[test]
    fn min_nodes_reflects_memory_sizes() {
        // A 300 GB footprint: 12 nodes on CTE-Arm, 4 on MareNostrum 4.
        let f = 300e9;
        assert_eq!(min_nodes(Cluster::CteArm, f), 12);
        assert_eq!(min_nodes(Cluster::MareNostrum4, f), 4);
        assert_eq!(min_nodes(Cluster::CteArm, 1.0), 1);
    }

    #[test]
    fn halo_reaches_neighbors() {
        let t2 = with_job(Cluster::CteArm, 2, 48, 1, false, 1, |job| {
            job.halo(2, Bytes::kib(64.0));
            job.elapsed()
        });
        let t6 = with_job(Cluster::CteArm, 2, 48, 1, false, 1, |job| {
            job.halo(6, Bytes::kib(64.0));
            job.elapsed()
        });
        assert!(t6 > t2, "more neighbours cost more");
    }

    #[test]
    fn app_run_phase_lookup() {
        let run = AppRun {
            elapsed: Time::seconds(3.0),
            phases: vec![
                ("assembly".into(), Time::seconds(2.0)),
                ("solver".into(), Time::seconds(1.0)),
            ],
        };
        assert_eq!(run.phase("solver"), Some(Time::seconds(1.0)));
        assert_eq!(run.phase("io"), None);
    }
}
