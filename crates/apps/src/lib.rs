//! # apps — the five scientific applications (Figs. 8–16)
//!
//! Proxy models of the applications the paper runs "as is": each app
//! declares its workload (from the published input set), its per-phase
//! resource profile (arithmetic intensity, intrinsic vectorizability,
//! communication pattern) and its memory footprint, and is executed on the
//! simulated clusters through [`mpisim::Job`]. The *inputs* of each model
//! are documented per app; the *outputs* — who wins, by what factor, where
//! the crossovers sit — are checked against the paper in each module's
//! tests and in the integration suite.
//!
//! | app | module | input set | figures |
//! |---|---|---|---|
//! | Alya | [`alya`] | TestCaseB, 132 M-element sphere mesh | 8, 9, 10 |
//! | NEMO | [`nemo`] | BENCH ORCA1-like | 11 |
//! | Gromacs | [`gromacs`] | lignocellulose-rf, 3.3 M atoms | 12, 13 |
//! | OpenIFS | [`openifs`] | TL255L91 / TC0511L91 | 14, 15 |
//! | WRF | [`wrf`] | Iberia 4 km, 56 h, 54 frames | 16 |
//!
//! The real computational kernels behind these proxies (FEM assembly,
//! C-grid stencils, LJ force loops, FFT/Legendre transforms) live in
//! [`kernels`] and are exercised directly by this crate's tests.
//! [`capacity`] derives the memory minimums behind Table IV's "NP" cells.

#![warn(missing_docs)]

pub mod alya;
pub mod capacity;
pub mod common;
pub mod gromacs;
pub mod nemo;
pub mod openifs;
pub mod wrf;

pub use common::{AppRun, Cluster, ScalingPoint};
