//! NEMO — ocean modelling (Fig. 11).
//!
//! The BENCH configuration at ORCA1-like resolution: a structured C-grid
//! ocean time step. NEMO's step is a long sequence of ~100 3-D loops —
//! advection, diffusion, pressure, thermodynamics — that mix indexed,
//! poorly-vectorized arithmetic (GNU on A64FX leaves it scalar) with
//! genuinely streaming traffic, plus dozens of small `MPI_Allreduce` calls
//! for stability diagnostics. The compute:stream mix below (calibrated
//! 53:47 on MareNostrum 4) yields the paper's 1.70–1.79× gap; the
//! per-step reductions produce the strong-scaling flattening the paper
//! sees around 128 CTE-Arm nodes.

use crate::common::{with_job, AppRun, Cluster};
use arch::cost::KernelProfile;
use simkit::cache::{Cache, CacheKey};
use simkit::series::{Figure, Series};
use simkit::units::Bytes;

/// The NEMO BENCH (ORCA1-like) workload model.
#[derive(Debug, Clone)]
pub struct Nemo {
    /// Grid points including vertical levels (600 × 500 × 75).
    pub grid_points: f64,
    /// Vertical levels.
    pub levels: usize,
    /// Indexed compute flops per grid point per step.
    pub flops_per_point: f64,
    /// Streaming bytes per grid point per step.
    pub bytes_per_point: f64,
    /// Diagnostic reductions per step.
    pub allreduces_per_step: usize,
    /// Simulated steps per run (scaled to the benchmark's 1000).
    pub steps: usize,
    /// Benchmark steps the run represents.
    pub total_steps: usize,
}

impl Nemo {
    /// The BENCH ORCA1 configuration.
    pub fn bench_orca1() -> Self {
        Self {
            grid_points: 600.0 * 500.0 * 75.0,
            levels: 75,
            flops_per_point: 2750.0,
            bytes_per_point: 1200.0,
            allreduces_per_step: 80,
            steps: 3,
            total_steps: 1000,
        }
    }

    /// Minimum nodes. The paper: at least 8 CTE-Arm nodes "because of
    /// memory constraints", while MareNostrum 4 runs from a single node —
    /// NEMO's per-rank working buffers (halo copies, I/O servers) scale
    /// with rank count and push the A64FX's 32 GB over the edge earlier.
    pub fn min_nodes(&self, cluster: Cluster) -> usize {
        match cluster {
            Cluster::CteArm => 8,
            Cluster::MareNostrum4 => 1,
        }
    }

    /// Simulate a run, reporting total execution time for the benchmark.
    pub fn simulate(&self, cluster: Cluster, nodes: usize) -> AppRun {
        assert!(
            nodes >= self.min_nodes(cluster),
            "BENCH does not fit on {nodes} nodes of {}",
            cluster.label()
        );
        let ranks = nodes * 48;
        let per_rank = self.grid_points / ranks as f64;
        let compute = KernelProfile::dp("nemo-step-indexed", per_rank * self.flops_per_point, 0.0)
            .with_vectorizable(0.30);
        let stream = KernelProfile::dp("nemo-step-stream", 0.0, per_rank * self.bytes_per_point);
        // 2-D horizontal decomposition: halo = 4 edges of
        // √(horizontal points) × levels × 3 fields × 8 B.
        let horiz = per_rank / self.levels as f64;
        let halo_bytes = Bytes::new(horiz.sqrt() * self.levels as f64 * 3.0 * 8.0);

        let elapsed = with_job(cluster, nodes, 48, 1, false, 23, |job| {
            for _ in 0..self.steps {
                job.compute(&compute);
                job.compute(&stream);
                job.halo(4, halo_bytes);
                for _ in 0..self.allreduces_per_step {
                    job.allreduce(Bytes::new(8.0));
                }
            }
            job.elapsed()
        });
        AppRun {
            elapsed: elapsed * (self.total_steps as f64 / self.steps as f64),
            phases: Vec::new(),
        }
    }

    /// [`Self::simulate`] through a [`Cache`]: Table IV revisits the
    /// 16-node point that Fig. 11 already sweeps.
    pub fn simulate_cached(&self, cache: &Cache, cluster: Cluster, nodes: usize) -> AppRun {
        let key = CacheKey::new(cluster.label(), "nemo", format!("{self:?}|nodes={nodes}"));
        cache.get_or_persistent(key, || self.simulate(cluster, nodes))
    }

    /// Node counts plotted (paper: CTE-Arm 8–192, MareNostrum 4 1–24).
    pub fn paper_node_counts(&self, cluster: Cluster) -> Vec<usize> {
        match cluster {
            Cluster::CteArm => vec![8, 12, 16, 24, 32, 48, 64, 96, 128, 160, 192],
            Cluster::MareNostrum4 => vec![1, 2, 4, 8, 12, 16, 24],
        }
    }

    /// Fig. 11 — execution time vs nodes (log–log in the paper).
    pub fn figure11(&self) -> Figure {
        self.figure11_cached(&Cache::new())
    }

    /// Fig. 11 with a shared sub-result cache.
    pub fn figure11_cached(&self, cache: &Cache) -> Figure {
        let mut fig = Figure::new("fig11", "NEMO: scalability", "nodes", "execution time [s]");
        for cluster in Cluster::BOTH {
            let mut s = Series::new(cluster.label());
            for n in self.paper_node_counts(cluster) {
                s.push(
                    n as f64,
                    self.simulate_cached(cache, cluster, n).elapsed.value(),
                );
            }
            fig.series.push(s);
        }
        fig
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_minimums_match_paper() {
        let n = Nemo::bench_orca1();
        assert_eq!(n.min_nodes(Cluster::CteArm), 8);
        assert_eq!(n.min_nodes(Cluster::MareNostrum4), 1);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn seven_cte_nodes_rejected() {
        Nemo::bench_orca1().simulate(Cluster::CteArm, 7);
    }

    #[test]
    fn mn4_is_1_7_to_1_8_faster() {
        let n = Nemo::bench_orca1();
        for nodes in [8, 16, 24] {
            let r = n.simulate(Cluster::CteArm, nodes).elapsed
                / n.simulate(Cluster::MareNostrum4, nodes).elapsed;
            assert!(
                r > 1.60 && r < 1.95,
                "ratio at {nodes} nodes: {r} (paper: 1.70–1.79)"
            );
        }
    }

    #[test]
    fn crossover_48_cte_matches_27_mn4() {
        // Paper: 48 A64FX nodes ≈ 27 MareNostrum 4 nodes. 27 exceeds the
        // measured MN4 range, so compare against the interpolated value.
        let n = Nemo::bench_orca1();
        let cte48 = n.simulate(Cluster::CteArm, 48).elapsed.value();
        let mn24 = n.simulate(Cluster::MareNostrum4, 24).elapsed.value();
        // Interpolate MN4(27) assuming the measured near-linear scaling.
        let mn27 = mn24 * 24.0 / 27.0;
        let ratio = cte48 / mn27;
        assert!((ratio - 1.0).abs() < 0.18, "CTE(48)/MN4(27) = {ratio}");
    }

    #[test]
    fn cte_scaling_flattens_at_high_node_counts() {
        // Paper: scalability flattens around 128 nodes (problem too small).
        let n = Nemo::bench_orca1();
        let t64 = n.simulate(Cluster::CteArm, 64).elapsed.value();
        let t128 = n.simulate(Cluster::CteArm, 128).elapsed.value();
        let t192 = n.simulate(Cluster::CteArm, 192).elapsed.value();
        // Doubling 64 -> 128 already buys well under 2×.
        assert!(t64 / t128 < 1.7, "64->128 speedup {}", t64 / t128);
        // 128 -> 192 buys almost nothing (the paper's flattening).
        assert!(t128 / t192 < 1.22, "128->192 speedup {}", t128 / t192);
        // But it never goes backwards.
        assert!(t192 <= t128 * 1.02);
    }

    #[test]
    fn early_scaling_is_near_linear() {
        let n = Nemo::bench_orca1();
        let t8 = n.simulate(Cluster::CteArm, 8).elapsed.value();
        let t16 = n.simulate(Cluster::CteArm, 16).elapsed.value();
        let eff = t8 / t16 / 2.0;
        assert!(eff > 0.9, "early strong scaling near-linear: {eff}");
    }

    #[test]
    fn figure_is_well_formed() {
        let f = Nemo::bench_orca1().figure11();
        assert_eq!(f.series.len(), 2);
        assert_eq!(f.series[0].points.len(), 11);
        assert_eq!(f.series[1].points.len(), 7);
        for s in &f.series {
            assert!(s.points.iter().all(|&(_, y)| y > 0.0));
        }
    }
}
