//! The memory-capacity planner behind Table IV's "NP" cells.
//!
//! Section VI lists single-node memory limits as the first obstacle to
//! adopting CTE-Arm: Alya, OpenIFS's TC0511L91 and NEMO cannot run on few
//! nodes because 32 GB of HBM2 per node is a third of MareNostrum 4's
//! 96 GB of DDR4. This module answers the planning question directly:
//! which inputs fit where, and how many extra nodes the smaller memory
//! costs before a single flop is computed.

use crate::alya::Alya;
use crate::common::Cluster;
use crate::nemo::Nemo;
use crate::openifs::OpenIfs;
use simkit::series::Table;

/// One input set's memory requirements.
#[derive(Debug, Clone)]
pub struct InputFootprint {
    /// Application + input name.
    pub name: String,
    /// Resident bytes.
    pub bytes: f64,
    /// Minimum CTE-Arm nodes.
    pub min_cte: usize,
    /// Minimum MareNostrum 4 nodes.
    pub min_mn4: usize,
}

impl InputFootprint {
    /// Extra nodes CTE-Arm needs before any performance effect: the
    /// capacity tax of 32 GB vs 96 GB per node.
    pub fn capacity_tax(&self) -> usize {
        self.min_cte.saturating_sub(self.min_mn4)
    }
}

/// All the paper's inputs with their footprints.
pub fn paper_inputs() -> Vec<InputFootprint> {
    let alya = Alya::test_case_b();
    let nemo = Nemo::bench_orca1();
    let tl255 = OpenIfs::tl255l91();
    let tc0511 = OpenIfs::tc0511l91();
    vec![
        InputFootprint {
            name: "Alya TestCaseB".into(),
            bytes: alya.footprint_bytes(),
            min_cte: alya.min_nodes(Cluster::CteArm),
            min_mn4: alya.min_nodes(Cluster::MareNostrum4),
        },
        InputFootprint {
            name: "NEMO BENCH (ORCA1)".into(),
            // NEMO's limit is rank-buffer driven (see apps::nemo); report
            // the equivalent resident footprint of 8 CTE-Arm nodes.
            bytes: 8.0 * 0.85 * 32e9,
            min_cte: nemo.min_nodes(Cluster::CteArm),
            min_mn4: nemo.min_nodes(Cluster::MareNostrum4),
        },
        InputFootprint {
            name: "OpenIFS TL255L91".into(),
            bytes: tl255.footprint,
            min_cte: tl255.min_nodes(Cluster::CteArm),
            min_mn4: tl255.min_nodes(Cluster::MareNostrum4),
        },
        InputFootprint {
            name: "OpenIFS TC0511L91".into(),
            bytes: tc0511.footprint,
            min_cte: tc0511.min_nodes(Cluster::CteArm),
            min_mn4: tc0511.min_nodes(Cluster::MareNostrum4),
        },
    ]
}

/// Render the capacity-planning table.
pub fn capacity_table() -> Table {
    let mut t = Table::new(
        "capacity",
        "Memory-capacity minimums (the source of Table IV's NP cells)",
        vec![
            "Input",
            "Footprint [GB]",
            "min CTE-Arm nodes",
            "min MN4 nodes",
            "capacity tax [nodes]",
        ],
    );
    for f in paper_inputs() {
        t.push_row(vec![
            f.name.clone(),
            format!("{:.0}", f.bytes / 1e9),
            f.min_cte.to_string(),
            f.min_mn4.to_string(),
            f.capacity_tax().to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_np_cells_are_reproduced() {
        let inputs = paper_inputs();
        let find = |name: &str| {
            inputs
                .iter()
                .find(|f| f.name.contains(name))
                .unwrap_or_else(|| panic!("{name} present"))
        };
        // Alya: NP at 1 node on CTE-Arm (needs 12), fine on few MN4 nodes.
        assert_eq!(find("Alya").min_cte, 12);
        assert!(find("Alya").min_mn4 <= 4);
        // NEMO: NP below 8 CTE-Arm nodes, runs on 1 MN4 node.
        assert_eq!(find("NEMO").min_cte, 8);
        assert_eq!(find("NEMO").min_mn4, 1);
        // TC0511L91: NP below ~32 CTE-Arm nodes.
        assert!((30..=32).contains(&find("TC0511").min_cte));
        // TL255L91 runs everywhere.
        assert_eq!(find("TL255").min_cte, 1);
    }

    #[test]
    fn capacity_tax_is_positive_for_big_inputs() {
        for f in paper_inputs() {
            if f.min_cte > 1 {
                assert!(
                    f.capacity_tax() > 0,
                    "{}: the 3× memory gap must cost nodes",
                    f.name
                );
            }
        }
    }

    #[test]
    fn table_is_well_formed() {
        let t = capacity_table();
        assert_eq!(t.rows.len(), 4);
        assert_eq!(t.columns.len(), 5);
        assert!(t.to_text().contains("Alya"));
    }
}
