//! OpenIFS — numerical weather prediction (Figs. 14, 15).
//!
//! ECMWF's spectral model (oifs43r3v1). Each time step performs grid-point
//! physics and dynamics (long Fortran loops; the Intel compiler vectorizes
//! roughly two thirds of the vectorizable work, GNU-on-A64FX almost none),
//! Legendre and Fourier transforms (dense matrix work), and two
//! transpositions (`MPI_Alltoall`) between grid-point and spectral space.
//!
//! Two input sets, as in the paper: **TL255L91** fits in one node
//! (single-node study, Fig. 14) and **TC0511L91** needs 32 CTE-Arm nodes
//! (multi-node study, Fig. 15). The y-axis is seconds per forecast day.

use crate::common::{min_nodes, with_job, AppRun, Cluster};
use arch::cost::KernelProfile;
use simkit::cache::{Cache, CacheKey};
use simkit::series::{Figure, Series};
use simkit::units::{Bytes, Time};

/// An OpenIFS input set.
#[derive(Debug, Clone)]
pub struct OpenIfs {
    /// Input-set name.
    pub name: &'static str,
    /// Grid columns (horizontal points).
    pub columns: f64,
    /// Vertical levels (91 for both input sets).
    pub levels: usize,
    /// Flops per column per level per step (physics + dynamics + transform
    /// share).
    pub flops_per_point: f64,
    /// Streaming bytes per column per level per step.
    pub bytes_per_point: f64,
    /// Model time steps per forecast day.
    pub steps_per_day: usize,
    /// Bytes per rank moved by one transposition alltoall, per peer rank,
    /// at the reference rank count — scaled with decomposition.
    pub state_bytes: f64,
    /// Resident footprint in bytes.
    pub footprint: f64,
}

impl OpenIfs {
    /// TL255L91: the single-node study input (~0.7° global).
    pub fn tl255l91() -> Self {
        Self {
            name: "TL255L91",
            columns: 348_528.0,
            levels: 91,
            flops_per_point: 35_000.0,
            bytes_per_point: 1400.0,
            steps_per_day: 32, // 2700 s time step
            state_bytes: 348_528.0 * 91.0 * 8.0 * 4.0,
            footprint: 20e9,
        }
    }

    /// TC0511L91: the multi-node study input (~0.35° cubic-octahedral).
    pub fn tc0511l91() -> Self {
        Self {
            name: "TC0511L91",
            columns: 1_394_112.0,
            levels: 91,
            flops_per_point: 35_000.0,
            bytes_per_point: 1400.0,
            steps_per_day: 96, // 900 s time step
            state_bytes: 1_394_112.0 * 91.0 * 8.0 * 4.0,
            footprint: 800e9,
        }
    }

    /// Minimum nodes for the input's memory footprint (TC0511L91: 32 on
    /// CTE-Arm, matching the paper).
    pub fn min_nodes(&self, cluster: Cluster) -> usize {
        min_nodes(cluster, self.footprint)
    }

    /// Simulate with an explicit rank count on `nodes` nodes (the
    /// single-node study varies ranks within one node). Returns seconds
    /// per forecast day.
    pub fn simulate_ranks(&self, cluster: Cluster, nodes: usize, ranks_per_node: usize) -> AppRun {
        assert!(
            nodes >= self.min_nodes(cluster),
            "{} does not fit on {nodes} nodes of {}",
            self.name,
            cluster.label()
        );
        let ranks = nodes * ranks_per_node;
        let points = self.columns * self.levels as f64;
        let per_rank = points / ranks as f64;
        let gridpoint =
            KernelProfile::dp("openifs-gridpoint", per_rank * self.flops_per_point, 0.0)
                .with_vectorizable(0.55);
        let stream = KernelProfile::dp("openifs-stream", 0.0, per_rank * self.bytes_per_point);
        // Each transposition moves the rank's state slice to every peer:
        // per-pair payload = state / ranks².
        let alltoall_bytes = Bytes::new(self.state_bytes / (ranks as f64 * ranks as f64));

        let steps = 2; // representative steps, scaled to a forecast day
        let elapsed = with_job(cluster, nodes, ranks_per_node, 1, false, 31, |job| {
            for _ in 0..steps {
                job.compute(&gridpoint);
                job.compute(&stream);
                // Grid ↔ spectral: two transpositions per step.
                job.alltoall(alltoall_bytes);
                job.alltoall(alltoall_bytes);
                // Semi-implicit solver norm.
                job.allreduce(Bytes::new(8.0));
            }
            job.elapsed()
        });
        AppRun {
            elapsed: Time::seconds(elapsed.value() / steps as f64 * self.steps_per_day as f64),
            phases: Vec::new(),
        }
    }

    /// Node-filling run (48 ranks per node, MPI-only as in the paper).
    pub fn simulate(&self, cluster: Cluster, nodes: usize) -> AppRun {
        self.simulate_ranks(cluster, nodes, 48)
    }

    /// [`Self::simulate_ranks`] through a [`Cache`]: Table IV's node
    /// counts overlap Fig. 15's sweep, and its single-node point is
    /// Fig. 14's 48-rank point.
    pub fn simulate_ranks_cached(
        &self,
        cache: &Cache,
        cluster: Cluster,
        nodes: usize,
        ranks_per_node: usize,
    ) -> AppRun {
        let key = CacheKey::new(
            cluster.label(),
            "openifs",
            format!("{self:?}|nodes={nodes}|rpn={ranks_per_node}"),
        );
        cache.get_or_persistent(key, || self.simulate_ranks(cluster, nodes, ranks_per_node))
    }

    /// Node-filling run through a [`Cache`].
    pub fn simulate_cached(&self, cache: &Cache, cluster: Cluster, nodes: usize) -> AppRun {
        self.simulate_ranks_cached(cache, cluster, nodes, 48)
    }

    /// Fig. 14 — single-node study with TL255L91: x = MPI ranks.
    pub fn figure14() -> Figure {
        Self::figure14_cached(&Cache::new())
    }

    /// Fig. 14 with a shared sub-result cache.
    pub fn figure14_cached(cache: &Cache) -> Figure {
        let input = Self::tl255l91();
        let mut fig = Figure::new(
            "fig14",
            "OpenIFS: single-node scalability (TL255L91)",
            "MPI ranks",
            "seconds per forecast day",
        );
        for cluster in Cluster::BOTH {
            let mut s = Series::new(cluster.label());
            for ranks in [8usize, 16, 24, 32, 40, 48] {
                let run = input.simulate_ranks_cached(cache, cluster, 1, ranks);
                s.push(ranks as f64, run.elapsed.value());
            }
            fig.series.push(s);
        }
        fig
    }

    /// Fig. 15 — multi-node study with TC0511L91: x = nodes.
    pub fn figure15() -> Figure {
        Self::figure15_cached(&Cache::new())
    }

    /// Fig. 15 with a shared sub-result cache.
    pub fn figure15_cached(cache: &Cache) -> Figure {
        let input = Self::tc0511l91();
        let mut fig = Figure::new(
            "fig15",
            "OpenIFS: multi-node scalability (TC0511L91)",
            "nodes",
            "seconds per forecast day",
        );
        for cluster in Cluster::BOTH {
            let counts: Vec<usize> = match cluster {
                Cluster::CteArm => vec![32, 48, 64, 96, 128],
                Cluster::MareNostrum4 => vec![10, 16, 32, 48, 64, 96, 128],
            };
            let mut s = Series::new(cluster.label());
            for n in counts {
                s.push(
                    n as f64,
                    input.simulate_cached(cache, cluster, n).elapsed.value(),
                );
            }
            fig.series.push(s);
        }
        fig
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_minimums_match_paper() {
        let multi = OpenIfs::tc0511l91();
        assert_eq!(
            multi.min_nodes(Cluster::CteArm),
            30.max(multi.min_nodes(Cluster::CteArm))
        );
        assert!((30..=32).contains(&multi.min_nodes(Cluster::CteArm)));
        assert!(multi.min_nodes(Cluster::MareNostrum4) <= 10);
        let single = OpenIfs::tl255l91();
        assert_eq!(single.min_nodes(Cluster::CteArm), 1);
    }

    #[test]
    fn eight_rank_ratio_near_3_72() {
        let input = OpenIfs::tl255l91();
        let r = input.simulate_ranks(Cluster::CteArm, 1, 8).elapsed
            / input.simulate_ranks(Cluster::MareNostrum4, 1, 8).elapsed;
        assert!((r - 3.72).abs() < 0.45, "8-rank ratio {r}");
    }

    #[test]
    fn full_node_ratio_near_3_28() {
        let input = OpenIfs::tl255l91();
        let r = input.simulate_ranks(Cluster::CteArm, 1, 48).elapsed
            / input.simulate_ranks(Cluster::MareNostrum4, 1, 48).elapsed;
        assert!((r - 3.28).abs() < 0.5, "full-node ratio {r}");
    }

    #[test]
    fn ratio_shrinks_from_8_to_48_ranks() {
        // Paper: 3.72× at 8 ranks vs 3.28× at the full node.
        let input = OpenIfs::tl255l91();
        let r8 = input.simulate_ranks(Cluster::CteArm, 1, 8).elapsed
            / input.simulate_ranks(Cluster::MareNostrum4, 1, 8).elapsed;
        let r48 = input.simulate_ranks(Cluster::CteArm, 1, 48).elapsed
            / input.simulate_ranks(Cluster::MareNostrum4, 1, 48).elapsed;
        assert!(r48 < r8, "{r8} -> {r48}");
    }

    #[test]
    fn multi_node_ratios() {
        // Paper: 3.55× at 32 nodes, 2.56× at 128 nodes.
        let input = OpenIfs::tc0511l91();
        let r32 = input.simulate(Cluster::CteArm, 32).elapsed
            / input.simulate(Cluster::MareNostrum4, 32).elapsed;
        let r128 = input.simulate(Cluster::CteArm, 128).elapsed
            / input.simulate(Cluster::MareNostrum4, 128).elapsed;
        assert!((r32 - 3.55).abs() < 0.6, "32-node ratio {r32}");
        assert!(r128 < r32, "gap must narrow with scale: {r32} -> {r128}");
        assert!(
            (2.3..=3.4).contains(&r128),
            "128-node ratio {r128} (paper 2.56)"
        );
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn tc0511_needs_32_cte_nodes() {
        OpenIfs::tc0511l91().simulate(Cluster::CteArm, 16);
    }

    #[test]
    fn both_machines_scale_single_node() {
        let f = OpenIfs::figure14();
        for s in &f.series {
            assert!(s.is_non_increasing(0.05), "{} must scale", s.label);
        }
    }

    #[test]
    fn figures_are_well_formed() {
        let f14 = OpenIfs::figure14();
        assert_eq!(f14.series.len(), 2);
        assert_eq!(f14.series[0].points.len(), 6);
        let f15 = OpenIfs::figure15();
        assert_eq!(f15.series.len(), 2);
        assert_eq!(f15.series[0].points.len(), 5);
        assert_eq!(f15.series[1].points.len(), 7);
    }

    #[test]
    fn forecast_day_cost_is_plausible() {
        // TL255 on a full Skylake node: minutes per forecast day.
        let input = OpenIfs::tl255l91();
        let t = input.simulate(Cluster::MareNostrum4, 1).elapsed.value();
        assert!(t > 10.0 && t < 3600.0, "seconds per forecast day: {t}");
    }
}
