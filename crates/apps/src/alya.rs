//! Alya — high-performance computational mechanics (Figs. 8, 9, 10).
//!
//! TestCaseB: incompressible turbulent flow around a sphere, 132 M-element
//! mesh, 20 time steps (the first is discarded; 19 are averaged). MPI-only,
//! 48 ranks per node. Each time step has two dominant phases the paper
//! analyses separately:
//!
//! * **Assembly** — the element loop: long, stabilized Navier–Stokes
//!   element computations. Intrinsically highly vectorizable (k ≈ 0.97,
//!   Alya ships a VECTOR_SIZE blocking layer — see the `-DVECTOR_SIZE=16`
//!   build flag in Table III), but on CTE-Arm GNU 8.3.1-sve leaves almost
//!   all of it on the scalar pipes.
//! * **Solver** — a Krylov iteration: indexed SpMV-like sweeps (low
//!   intrinsic vectorizability, k ≈ 0.3) plus a streaming component that is
//!   genuinely memory-bound, plus two global reductions per iteration.
//!   The streaming part is where the A64FX's HBM pays off, which is why
//!   the paper sees only a 1.79× gap here against 4.96× in assembly.

use crate::common::{min_nodes, with_job, AppRun, Cluster};
use arch::cost::KernelProfile;
use simkit::cache::{Cache, CacheKey};
use simkit::series::{Figure, Series};
use simkit::units::{Bytes, Time};

/// The Alya TestCaseB workload model.
#[derive(Debug, Clone)]
pub struct Alya {
    /// Mesh elements (132 M in TestCaseB).
    pub elements: f64,
    /// Assembly flops per element (stabilized NS element matrices).
    pub assembly_flops_per_element: f64,
    /// Assembly main-memory bytes per element (mostly cache-resident).
    pub assembly_bytes_per_element: f64,
    /// Krylov iterations per time step.
    pub solver_iters: usize,
    /// Solver compute flops per mesh-owned element per iteration
    /// (indexed, poorly vectorizable part).
    pub solver_flops_per_element: f64,
    /// Solver streaming bytes per element per iteration (vectors + matrix
    /// coefficients actually fetched from memory).
    pub solver_bytes_per_element: f64,
    /// Time steps simulated and averaged (the paper averages 19).
    pub steps: usize,
}

impl Alya {
    /// The UEABS TestCaseB input set.
    pub fn test_case_b() -> Self {
        Self {
            elements: 132e6,
            assembly_flops_per_element: 25_000.0,
            assembly_bytes_per_element: 500.0,
            solver_iters: 50,
            // Calibrated so the Solver:Assembly time split on MareNostrum 4
            // is ≈ 49:51, the split implied by the paper's 4.96× / 1.79× /
            // 3.4× phase and total ratios.
            solver_flops_per_element: 151.0,
            solver_bytes_per_element: 64.0,
            steps: 2,
        }
    }

    /// Resident footprint: ~2.4 kB per element (meshes, matrices, fields).
    pub fn footprint_bytes(&self) -> f64 {
        self.elements * 2400.0
    }

    /// Minimum nodes (memory-bound): 12 on CTE-Arm, matching the paper's
    /// "NP" entries at lower counts.
    pub fn min_nodes(&self, cluster: Cluster) -> usize {
        min_nodes(cluster, self.footprint_bytes())
    }

    /// Simulate a run and report the average time step plus phase times.
    pub fn simulate(&self, cluster: Cluster, nodes: usize) -> AppRun {
        assert!(
            nodes >= self.min_nodes(cluster),
            "TestCaseB does not fit on {nodes} nodes of {}",
            cluster.label()
        );
        let ranks = nodes * 48;
        let per_rank_elems = self.elements / ranks as f64;
        let assembly = KernelProfile::dp(
            "alya-assembly",
            per_rank_elems * self.assembly_flops_per_element,
            per_rank_elems * self.assembly_bytes_per_element,
        )
        .with_vectorizable(0.97);
        // The solver iteration has two back-to-back parts: the indexed
        // SpMV-like sweep (compute-limited on both machines) and the
        // streaming vector updates (memory-limited — HBM's advantage).
        // They are separate kernels in Alya, so they are costed additively
        // rather than under one roofline max.
        let solver_indexed = KernelProfile::dp(
            "alya-solver-indexed",
            per_rank_elems * self.solver_flops_per_element,
            0.0,
        )
        .with_vectorizable(0.30);
        let solver_stream = KernelProfile::dp(
            "alya-solver-stream",
            0.0,
            per_rank_elems * self.solver_bytes_per_element,
        );
        // Halo surface per rank: (E/ranks)^(2/3) interface elements × ~0.5 kB.
        let halo_bytes = Bytes::new(per_rank_elems.powf(2.0 / 3.0) * 500.0);

        let (t_assembly, t_solver, elapsed) = with_job(cluster, nodes, 48, 1, false, 17, |job| {
            let mut t_assembly = Time::ZERO;
            let mut t_solver = Time::ZERO;
            for _ in 0..self.steps {
                let t0 = job.elapsed();
                job.compute(&assembly);
                job.halo(10, halo_bytes);
                let t1 = job.elapsed();
                t_assembly += t1 - t0;
                for _ in 0..self.solver_iters {
                    job.compute(&solver_indexed);
                    job.compute(&solver_stream);
                    job.allreduce(Bytes::new(16.0));
                    job.allreduce(Bytes::new(16.0));
                }
                let t2 = job.elapsed();
                t_solver += t2 - t1;
            }
            (t_assembly, t_solver, job.elapsed())
        });
        let n = self.steps as f64;
        AppRun {
            elapsed: elapsed / n,
            phases: vec![
                ("assembly".into(), t_assembly / n),
                ("solver".into(), t_solver / n),
            ],
        }
    }

    /// [`Self::simulate`] through a [`Cache`]: Figs. 8, 9 and 10 sweep the
    /// identical study (they differ only in which phase they plot), and
    /// Table IV revisits the 16-node point, so the first caller pays and
    /// the rest reuse.
    pub fn simulate_cached(&self, cache: &Cache, cluster: Cluster, nodes: usize) -> AppRun {
        let key = CacheKey::new(cluster.label(), "alya", format!("{self:?}|nodes={nodes}"));
        cache.get_or_persistent(key, || self.simulate(cluster, nodes))
    }

    /// Node counts plotted for each machine (paper: CTE-Arm 12–78,
    /// MareNostrum 4 12–16).
    pub fn paper_node_counts(&self, cluster: Cluster) -> Vec<usize> {
        match cluster {
            Cluster::CteArm => vec![12, 16, 22, 30, 38, 44, 52, 62, 70, 78],
            Cluster::MareNostrum4 => vec![12, 14, 16],
        }
    }

    fn scaling_figure(&self, cache: &Cache, id: &str, title: &str, phase: Option<&str>) -> Figure {
        let mut fig = Figure::new(id, title, "nodes", "time per step [s]");
        for cluster in Cluster::BOTH {
            let mut s = Series::new(cluster.label());
            for n in self.paper_node_counts(cluster) {
                let run = self.simulate_cached(cache, cluster, n);
                let t = match phase {
                    Some(p) => run.phase(p).expect("phase exists"),
                    None => run.elapsed,
                };
                s.push(n as f64, t.value());
            }
            fig.series.push(s);
        }
        fig
    }

    /// Fig. 8 — average time step.
    pub fn figure8(&self) -> Figure {
        self.figure8_cached(&Cache::new())
    }

    /// Fig. 8 with a shared sub-result cache.
    pub fn figure8_cached(&self, cache: &Cache) -> Figure {
        self.scaling_figure(cache, "fig8", "Alya: scalability (average time step)", None)
    }

    /// Fig. 9 — assembly phase.
    pub fn figure9(&self) -> Figure {
        self.figure9_cached(&Cache::new())
    }

    /// Fig. 9 with a shared sub-result cache.
    pub fn figure9_cached(&self, cache: &Cache) -> Figure {
        self.scaling_figure(cache, "fig9", "Alya: Assembly phase", Some("assembly"))
    }

    /// Fig. 10 — solver phase.
    pub fn figure10(&self) -> Figure {
        self.figure10_cached(&Cache::new())
    }

    /// Fig. 10 with a shared sub-result cache.
    pub fn figure10_cached(&self, cache: &Cache) -> Figure {
        self.scaling_figure(cache, "fig10", "Alya: Solver phase", Some("solver"))
    }
}

/// Find the smallest CTE-Arm node count whose time beats the given
/// MareNostrum 4 reference time, scanning up to 192 nodes.
pub fn cte_nodes_matching(alya: &Alya, reference: Time, phase: Option<&str>) -> Option<usize> {
    for nodes in alya.min_nodes(Cluster::CteArm)..=192 {
        let run = alya.simulate(Cluster::CteArm, nodes);
        let t = match phase {
            Some(p) => run.phase(p).expect("phase exists"),
            None => run.elapsed,
        };
        if t <= reference {
            return Some(nodes);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ratio_at(alya: &Alya, nodes: usize, phase: Option<&str>) -> f64 {
        let c = alya.simulate(Cluster::CteArm, nodes);
        let m = alya.simulate(Cluster::MareNostrum4, nodes);
        match phase {
            Some(p) => c.phase(p).unwrap() / m.phase(p).unwrap(),
            None => c.elapsed / m.elapsed,
        }
    }

    #[test]
    fn needs_twelve_cte_nodes() {
        let a = Alya::test_case_b();
        assert_eq!(a.min_nodes(Cluster::CteArm), 12);
        assert!(a.min_nodes(Cluster::MareNostrum4) <= 4);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn too_few_nodes_rejected() {
        Alya::test_case_b().simulate(Cluster::CteArm, 8);
    }

    #[test]
    fn total_ratio_is_about_3_4() {
        // Paper: CTE-Arm consistently 3.4× slower for 12–16 nodes.
        let a = Alya::test_case_b();
        for nodes in [12, 16] {
            let r = ratio_at(&a, nodes, None);
            assert!((r - 3.4).abs() < 0.45, "total ratio at {nodes} nodes: {r}");
        }
    }

    #[test]
    fn assembly_ratio_is_about_4_96() {
        let a = Alya::test_case_b();
        let r = ratio_at(&a, 12, Some("assembly"));
        assert!((r - 4.96).abs() < 0.6, "assembly ratio {r}");
    }

    #[test]
    fn solver_ratio_is_about_1_79() {
        let a = Alya::test_case_b();
        let r = ratio_at(&a, 12, Some("solver"));
        assert!((r - 1.79).abs() < 0.35, "solver ratio {r}");
    }

    #[test]
    fn crossover_total_near_44_nodes() {
        // Paper: 44 CTE-Arm nodes match 12 MareNostrum 4 nodes.
        let a = Alya::test_case_b();
        let reference = a.simulate(Cluster::MareNostrum4, 12).elapsed;
        let x = cte_nodes_matching(&a, reference, None).expect("crossover exists");
        assert!((38..=50).contains(&x), "total crossover at {x} nodes");
    }

    #[test]
    fn crossover_assembly_near_62_nodes() {
        let a = Alya::test_case_b();
        let reference = a
            .simulate(Cluster::MareNostrum4, 12)
            .phase("assembly")
            .unwrap();
        let x = cte_nodes_matching(&a, reference, Some("assembly")).expect("crossover exists");
        assert!((54..=70).contains(&x), "assembly crossover at {x} nodes");
    }

    #[test]
    fn crossover_solver_near_22_nodes() {
        let a = Alya::test_case_b();
        let reference = a
            .simulate(Cluster::MareNostrum4, 12)
            .phase("solver")
            .unwrap();
        let x = cte_nodes_matching(&a, reference, Some("solver")).expect("crossover exists");
        assert!((19..=26).contains(&x), "solver crossover at {x} nodes");
    }

    #[test]
    fn both_machines_scale() {
        let a = Alya::test_case_b();
        let f = a.figure8();
        for s in &f.series {
            assert!(s.is_non_increasing(0.08), "{} must scale", s.label);
        }
    }

    #[test]
    fn phase_times_compose_total() {
        let a = Alya::test_case_b();
        let run = a.simulate(Cluster::CteArm, 16);
        let sum = run.phase("assembly").unwrap() + run.phase("solver").unwrap();
        // Assembly + solver dominate the step (> 95 %).
        assert!(sum.value() > 0.95 * run.elapsed.value());
        assert!(sum.value() <= run.elapsed.value() + 1e-12);
    }
}
