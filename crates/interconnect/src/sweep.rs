//! Closed-form uniform-traffic sweeps on the TofuD torus.
//!
//! The streamed all-pairs sweep ([`crate::routing::all_pairs_loads`])
//! walks every ordered pair's route — `O(n² · diameter)` work that is fine
//! at 192 nodes and hopeless at Fugaku's 158,976. Dimension-ordered
//! routing makes the uniform-traffic pattern separable: when a route walks
//! dimension `d`, dimensions before `d` already sit at the destination's
//! coordinates and dimensions after `d` still sit at the source's. The
//! dim-`d` walk therefore depends only on the pair's dim-`d` coordinates
//! `(p, q)`, and for any fixed other-dimension context there are exactly
//! `n / ext_d` (source-tail × destination-head) completions. Writing
//! `W_d(x, s)` for the number of ordered `(p, q) ∈ [0, ext_d)²` whose
//! minimal dim-`d` walk crosses the port at coordinate `x` in direction
//! `s`:
//!
//! ```text
//! load(u, d, s)  = (n / ext_d) · W_d(u_d, s)          (per directed link)
//! crossings(cut) = (n / ext_d)² · Σ_{cut ports} W_d(x, s)
//! mean hops      = Σ_d (n / ext_d)² · S_d / (n² − n),  S_d = Σ_{p,q} dist_d(p, q)
//! ```
//!
//! `W_d` replays the router's own direction tie-break (forward when the
//! forward distance does not exceed the backward one), so these forms are
//! **exact** — integer-identical to enumerating every route, which the
//! tests and `tests/folded_table.rs` verify differentially. Total cost:
//! `O(Σ ext³)` for the `W_d` tables plus `O(n)` for a dense fill — a
//! full-Fugaku sweep in milliseconds instead of CPU-centuries.

use crate::routing::LinkLoad;
use crate::tofu::{TofuD, DIMS};
use crate::topology::{NodeId, Topology};

/// Per-dimension port-crossing counts under uniform traffic:
/// `counts[x * 2 + (dir > 0)]` is `W_d(x, s)`, and `pair_dist_sum` is
/// `Σ_{p,q} dist_d(p, q)` over all ordered coordinate pairs.
#[derive(Debug, Clone)]
struct DimPortLoads {
    counts: Vec<u64>,
    pair_dist_sum: u64,
}

/// Walk the minimal dim walk from `p` to `q` with the router's direction
/// rule, invoking `f(x, dir)` for the port each hop leaves from.
fn walk_offsets(extent: usize, periodic: bool, p: usize, q: usize, mut f: impl FnMut(usize, i8)) {
    if p == q {
        return;
    }
    let dist = p.abs_diff(q);
    let (fwd, bwd) = if q > p {
        (dist, extent - dist)
    } else {
        (extent - dist, dist)
    };
    let step_fwd = if periodic { fwd <= bwd } else { q > p };
    let (dir, count) = if step_fwd { (1i8, fwd) } else { (-1i8, bwd) };
    let mut cur = p;
    for _ in 0..count {
        f(cur, dir);
        cur = if dir > 0 {
            if cur + 1 == extent {
                0
            } else {
                cur + 1
            }
        } else if cur == 0 {
            extent - 1
        } else {
            cur - 1
        };
    }
}

fn dim_port_loads(extent: usize, periodic: bool) -> DimPortLoads {
    let mut counts = vec![0u64; extent * 2];
    let mut pair_dist_sum = 0u64;
    for p in 0..extent {
        for q in 0..extent {
            let mut hops = 0u64;
            walk_offsets(extent, periodic, p, q, |x, dir| {
                counts[x * 2 + usize::from(dir > 0)] += 1;
                hops += 1;
            });
            pair_dist_sum += hops;
        }
    }
    DimPortLoads {
        counts,
        pair_dist_sum,
    }
}

/// Per-link traversal counts under uniform all-pairs traffic, by symmetry
/// expansion: integer-identical to
/// [`crate::routing::all_pairs_loads`] at `O(n)` instead of
/// `O(n² · diameter)`.
pub fn uniform_all_pairs_loads(topo: &TofuD) -> LinkLoad {
    let n = topo.nodes();
    let per_dim: Vec<DimPortLoads> = (0..DIMS)
        .map(|d| dim_port_loads(topo.dims[d], topo.periodic[d]))
        .collect();
    let mut load = LinkLoad::new(n);
    let mut c = [0usize; DIMS];
    for u in 0..n {
        for d in 0..DIMS {
            let completions = (n / topo.dims[d]) as u64;
            let w = &per_dim[d].counts;
            let back = w[c[d] * 2] * completions;
            let fwd = w[c[d] * 2 + 1] * completions;
            if back > 0 {
                load.add(NodeId(u), d, -1, back);
            }
            if fwd > 0 {
                load.add(NodeId(u), d, 1, fwd);
            }
        }
        topo.advance_coords(&mut c);
    }
    load
}

/// `(max, mean)` link load under uniform all-pairs traffic — the
/// closed-form replacement for
/// [`crate::routing::all_pairs_link_load`], usable at full-Fugaku scale.
pub fn uniform_link_load(topo: &TofuD) -> (f64, f64) {
    uniform_all_pairs_loads(topo).max_mean()
}

/// Mean pairwise hop distance over every ordered non-self node pair, in
/// closed form. Bit-identical to
/// [`crate::placement::mean_pairwise_hops`] over the full machine
/// whenever the integer totals are exactly representable (they are for
/// every deployed shape).
pub fn uniform_mean_hops(topo: &TofuD) -> f64 {
    let n = topo.nodes() as u128;
    if n < 2 {
        return 0.0;
    }
    let total: u128 = (0..DIMS)
        .map(|d| {
            let completions = n / topo.dims[d] as u128;
            completions
                * completions
                * dim_port_loads(topo.dims[d], topo.periodic[d]).pair_dist_sum as u128
        })
        .sum();
    total as f64 / (n * n - n) as f64
}

/// Total traversals of the ports crossing a half/half cut of dimension
/// `dim` under uniform traffic — the closed-form core of
/// [`crate::bisection::tofu_cut_traffic`].
///
/// # Panics
/// Panics when `dim`'s extent is odd (the halves would be unequal).
pub fn uniform_cut_crossings(topo: &TofuD, dim: usize) -> u64 {
    let extent = topo.dims[dim];
    assert!(
        extent.is_multiple_of(2),
        "cut dimension {dim} has odd extent {extent}"
    );
    let half = extent / 2;
    let w = dim_port_loads(extent, topo.periodic[dim]);
    // A port crosses the cut when it spans the half boundary (coordinate
    // half-1 ↔ half) or, on a torus, the wrap boundary (ext-1 ↔ 0) — the
    // same predicate the streamed path applies per link.
    let mut port_sum = 0u64;
    for x in 0..extent {
        for (s, dir_is_fwd) in [(0usize, false), (1usize, true)] {
            let crosses = if dir_is_fwd {
                x == half - 1 || x == extent - 1
            } else {
                x == half || x == 0
            };
            if crosses {
                port_sum += w.counts[x * 2 + s];
            }
        }
    }
    let completions = (topo.nodes() / extent) as u64;
    completions * completions * port_sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement;
    use crate::routing::all_pairs_loads;

    fn shapes() -> Vec<TofuD> {
        vec![
            TofuD::cte_arm(),
            TofuD::with_dims([3, 2, 2, 2, 3, 2], [true, true, true, false, true, false]),
            TofuD::with_dims([2, 2, 2, 1, 1, 1], [true, true, true, false, false, false]),
            TofuD::with_dims([5, 1, 3, 2, 1, 2], [true, false, true, false, true, false]),
            TofuD::with_dims([1, 1, 1, 2, 3, 2], [true, true, true, false, true, false]),
        ]
    }

    #[test]
    fn closed_form_loads_match_streamed_enumeration() {
        for t in shapes() {
            assert_eq!(
                uniform_all_pairs_loads(&t),
                all_pairs_loads(&t),
                "loads diverge on dims {:?}",
                t.dims
            );
        }
    }

    #[test]
    fn closed_form_mean_hops_is_bit_identical_to_pair_scan() {
        for t in shapes() {
            let all: Vec<NodeId> = (0..t.nodes()).map(NodeId).collect();
            let scanned = placement::mean_pairwise_hops(&t, &all);
            let closed = uniform_mean_hops(&t);
            assert_eq!(
                closed.to_bits(),
                scanned.to_bits(),
                "mean hops diverge on dims {:?}: {closed} vs {scanned}",
                t.dims
            );
        }
    }

    #[test]
    fn singleton_machine_has_zero_mean_hops() {
        let t = TofuD::with_dims([1; 6], [false; 6]);
        assert_eq!(uniform_mean_hops(&t), 0.0);
    }

    #[test]
    fn fugaku_class_sweep_runs_in_closed_form() {
        // The full-Fugaku shape: 158 976 nodes, 2.5 × 10¹⁰ ordered pairs.
        // The streamed sweep is unrunnable; the closed form prices it
        // instantly and its hotspot structure matches CTE-Arm's.
        let t = TofuD::with_dims(
            [24, 23, 24, 2, 3, 2],
            [true, true, true, false, true, false],
        );
        let (max, mean) = uniform_link_load(&t);
        assert!(max > mean && mean > 0.0);
        let hops = uniform_mean_hops(&t);
        assert!(hops > 1.0 && hops < t.diameter() as f64);
    }
}
