//! Deterministic, seed-driven fault plans for the interconnect layer.
//!
//! A [`FaultPlan`] is a labelled list of [`Fault`]s that can be applied to a
//! [`Network`] (bandwidth degradation, link latency, transient retransmits,
//! hard failure) or consumed by higher layers (`mpisim` applies
//! [`Fault::Slowdown`] to per-rank compute, `sched` drains
//! [`Fault::Failure`] nodes). Plans are either hand-written — the paper's
//! degraded node `arms0b1-11c` is `Fault::Degrade` on node 18 with
//! `rx_factor` 0.08 — or generated from a [`FaultSpec`] through
//! `simkit::rng`, so a campaign seed fully determines every injected node
//! and severity regardless of thread count or job parallelism.

use crate::network::{Degradation, Network};
use crate::topology::{NodeId, Topology};
use simkit::rng::Pcg32;
use simkit::units::Time;

/// One injected fault. Severity conventions follow the underlying model:
/// degradation factors are `(0, 1]` bandwidth multipliers, slowdown factors
/// are `(0, 1]` *remaining compute speed* (0.5 = node runs at half speed).
#[derive(Debug, Clone, Copy)]
pub enum Fault {
    /// Asymmetric per-node bandwidth degradation (the paper's Fig. 4 node).
    Degrade {
        /// The degraded node.
        node: NodeId,
        /// Receive/send bandwidth multipliers.
        degradation: Degradation,
    },
    /// A mis-trained link lane: fixed extra latency on every transfer
    /// touching the node.
    LinkLatency {
        /// The faulty node.
        node: NodeId,
        /// Extra latency per transfer attempt.
        extra: Time,
    },
    /// Transient packet loss with timeout/backoff, folded analytically into
    /// expected cost (see `Network::with_retransmit_fault`).
    Retransmit {
        /// The lossy node.
        node: NodeId,
        /// Per-attempt drop probability, `[0, 1)`.
        drop_prob: f64,
        /// Retry timeout charged per expected drop.
        timeout: Time,
    },
    /// CMG throttling: the node's compute runs at `factor` of full speed.
    /// Invisible to the network; `mpisim::Job` stretches compute chunks.
    Slowdown {
        /// The throttled node.
        node: NodeId,
        /// Remaining compute speed, `(0, 1]`.
        factor: f64,
    },
    /// Hard node failure: transfers never complete, the scheduler drains
    /// the node, `mpisim` refuses to place ranks on it.
    Failure {
        /// The dead node.
        node: NodeId,
    },
}

impl Fault {
    /// The node this fault is attached to.
    pub fn node(&self) -> NodeId {
        match *self {
            Fault::Degrade { node, .. }
            | Fault::LinkLatency { node, .. }
            | Fault::Retransmit { node, .. }
            | Fault::Slowdown { node, .. }
            | Fault::Failure { node } => node,
        }
    }

    /// Whether a network-side probe (ping-pong map, all-to-all drain) can
    /// observe this fault. Pure compute slowdowns cannot be seen on the
    /// wire.
    pub fn network_visible(&self) -> bool {
        !matches!(self, Fault::Slowdown { .. })
    }

    /// Validate severity parameters, panicking on construction bugs. The
    /// `Network` builders repeat these checks; validating here too means a
    /// bad plan fails at definition time, not at injection time.
    fn validate(&self) {
        match *self {
            Fault::Degrade { degradation, .. } => {
                // Round-trips through the validated constructor.
                let _ = Degradation::new(degradation.rx_factor, degradation.tx_factor);
            }
            Fault::LinkLatency { extra, .. } => {
                assert!(extra.value() >= 0.0, "link-fault latency must be ≥ 0");
            }
            Fault::Retransmit {
                drop_prob, timeout, ..
            } => {
                assert!(
                    (0.0..1.0).contains(&drop_prob),
                    "drop probability must be in [0, 1), got {drop_prob}"
                );
                assert!(timeout.value() >= 0.0, "retransmit timeout must be ≥ 0");
            }
            Fault::Slowdown { factor, .. } => {
                assert!(
                    factor > 0.0 && factor <= 1.0,
                    "slowdown factor must be in (0, 1], got {factor}"
                );
            }
            Fault::Failure { .. } => {}
        }
    }

    /// A short human-readable description, used in campaign reports.
    pub fn describe(&self) -> String {
        match *self {
            Fault::Degrade { node, degradation } => format!(
                "degrade n{} rx={:.3} tx={:.3}",
                node.index(),
                degradation.rx_factor,
                degradation.tx_factor
            ),
            Fault::LinkLatency { node, extra } => {
                format!("link-lat n{} +{:.1}us", node.index(), extra.as_micros())
            }
            Fault::Retransmit {
                node,
                drop_prob,
                timeout,
            } => format!(
                "retransmit n{} q={:.3} to={:.1}us",
                node.index(),
                drop_prob,
                timeout.as_micros()
            ),
            Fault::Slowdown { node, factor } => {
                format!("slowdown n{} x{:.3}", node.index(), factor)
            }
            Fault::Failure { node } => format!("failure n{}", node.index()),
        }
    }
}

/// How many faults of each kind a generated plan should contain.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultSpec {
    /// Bandwidth-degraded nodes.
    pub degraded: usize,
    /// Nodes with fixed extra link latency.
    pub link_latency: usize,
    /// Nodes with transient packet loss.
    pub retransmit: usize,
    /// Compute-throttled nodes.
    pub slowdown: usize,
    /// Hard-failed nodes.
    pub failures: usize,
}

impl FaultSpec {
    /// Total number of faults (= distinct nodes) the spec requests.
    pub fn total(&self) -> usize {
        self.degraded + self.link_latency + self.retransmit + self.slowdown + self.failures
    }
}

/// A labelled, ordered list of faults — the unit a campaign trial injects.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Human-readable plan label (shows up in campaign tables).
    pub label: String,
    /// The faults, in injection order.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty (healthy-baseline) plan.
    pub fn new(label: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            faults: Vec::new(),
        }
    }

    /// Append a fault, validating its parameters immediately.
    pub fn with(mut self, fault: Fault) -> Self {
        fault.validate();
        self.faults.push(fault);
        self
    }

    /// Generate a plan from a spec: faulty nodes are drawn without
    /// replacement via a seeded shuffle and severities are drawn from fixed
    /// uniform ranges, all through one `Pcg32` stream — the (nodes, spec,
    /// seed) triple fully determines the plan.
    ///
    /// # Panics
    /// Panics if the spec requests more faults than there are nodes.
    pub fn generate(label: impl Into<String>, nodes: usize, spec: &FaultSpec, seed: u64) -> Self {
        assert!(
            spec.total() <= nodes,
            "spec wants {} faulty nodes but the machine has {nodes}",
            spec.total()
        );
        let mut rng = Pcg32::new(seed, 0xFA17);
        let mut ids: Vec<usize> = (0..nodes).collect();
        rng.shuffle(&mut ids);
        let mut next = ids.into_iter().map(NodeId);
        let mut plan = Self::new(label);
        for _ in 0..spec.degraded {
            plan = plan.with(Fault::Degrade {
                node: next.next().unwrap(),
                degradation: Degradation::receive_fault(rng.uniform(0.05, 0.3)),
            });
        }
        for _ in 0..spec.link_latency {
            plan = plan.with(Fault::LinkLatency {
                node: next.next().unwrap(),
                extra: Time::micros(rng.uniform(2.0, 20.0)),
            });
        }
        for _ in 0..spec.retransmit {
            plan = plan.with(Fault::Retransmit {
                node: next.next().unwrap(),
                drop_prob: rng.uniform(0.05, 0.3),
                timeout: Time::micros(rng.uniform(10.0, 100.0)),
            });
        }
        for _ in 0..spec.slowdown {
            plan = plan.with(Fault::Slowdown {
                node: next.next().unwrap(),
                factor: rng.uniform(0.3, 0.8),
            });
        }
        for _ in 0..spec.failures {
            plan = plan.with(Fault::Failure {
                node: next.next().unwrap(),
            });
        }
        plan
    }

    /// Inject every network-side fault into `net`. Compute slowdowns are
    /// skipped here — they belong to the `mpisim` layer.
    pub fn apply<T: Topology>(&self, net: Network<T>) -> Network<T> {
        self.faults.iter().fold(net, |net, fault| {
            fault.validate();
            match *fault {
                Fault::Degrade { node, degradation } => net.with_degraded_node(node, degradation),
                Fault::LinkLatency { node, extra } => net.with_link_fault(node, extra),
                Fault::Retransmit {
                    node,
                    drop_prob,
                    timeout,
                } => net.with_retransmit_fault(node, drop_prob, timeout),
                Fault::Slowdown { .. } => net,
                Fault::Failure { node } => net.with_failed_node(node),
            }
        })
    }

    /// Hard-failed nodes, in plan order.
    pub fn failed_nodes(&self) -> Vec<NodeId> {
        self.faults
            .iter()
            .filter_map(|f| match f {
                Fault::Failure { node } => Some(*node),
                _ => None,
            })
            .collect()
    }

    /// `(node, remaining-speed)` pairs for compute slowdowns, in plan order.
    pub fn slowdowns(&self) -> Vec<(NodeId, f64)> {
        self.faults
            .iter()
            .filter_map(|f| match *f {
                Fault::Slowdown { node, factor } => Some((node, factor)),
                _ => None,
            })
            .collect()
    }

    /// The nodes a network-side detector could legitimately fingerprint
    /// (everything except pure compute slowdowns), deduplicated, id order.
    pub fn injected_network_nodes(&self) -> Vec<NodeId> {
        let mut ids: Vec<usize> = self
            .faults
            .iter()
            .filter(|f| f.network_visible())
            .map(|f| f.node().index())
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids.into_iter().map(NodeId).collect()
    }

    /// One-line description of the plan: label plus each fault.
    pub fn describe(&self) -> String {
        if self.faults.is_empty() {
            return format!("{}: healthy", self.label);
        }
        let parts: Vec<String> = self.faults.iter().map(Fault::describe).collect();
        format!("{}: {}", self.label, parts.join("; "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkModel;
    use crate::tofu::TofuD;
    use simkit::units::Bytes;

    fn cte_net() -> Network<TofuD> {
        Network::new(TofuD::cte_arm(), LinkModel::tofud())
    }

    #[test]
    fn generate_is_deterministic_and_nodes_are_distinct() {
        let spec = FaultSpec {
            degraded: 2,
            link_latency: 2,
            retransmit: 2,
            slowdown: 2,
            failures: 2,
        };
        let a = FaultPlan::generate("p", 192, &spec, 42);
        let b = FaultPlan::generate("p", 192, &spec, 42);
        assert_eq!(a.describe(), b.describe(), "same seed, same plan");
        let c = FaultPlan::generate("p", 192, &spec, 43);
        assert_ne!(a.describe(), c.describe(), "different seed, different plan");
        let mut nodes: Vec<usize> = a.faults.iter().map(|f| f.node().index()).collect();
        let before = nodes.len();
        nodes.sort_unstable();
        nodes.dedup();
        assert_eq!(
            nodes.len(),
            before,
            "faulty nodes drawn without replacement"
        );
        assert_eq!(a.faults.len(), spec.total());
    }

    #[test]
    fn apply_injects_network_faults_and_skips_slowdowns() {
        let plan = FaultPlan::new("mix")
            .with(Fault::Degrade {
                node: NodeId(18),
                degradation: Degradation::receive_fault(0.08),
            })
            .with(Fault::Slowdown {
                node: NodeId(4),
                factor: 0.5,
            })
            .with(Fault::Failure { node: NodeId(100) });
        let net = plan.apply(cte_net());
        assert!(net.is_failed(NodeId(100)));
        let clean = cte_net();
        let degraded = net.message_time(NodeId(0), NodeId(18), Bytes::kib(64.0));
        let healthy = clean.message_time(NodeId(0), NodeId(18), Bytes::kib(64.0));
        assert!(degraded > healthy, "degrade must slow receives down");
        // Slowdown on node 4 is invisible to the network.
        let a = net.message_time(NodeId(0), NodeId(4), Bytes::kib(64.0));
        let b = clean.message_time(NodeId(0), NodeId(4), Bytes::kib(64.0));
        assert_eq!(a.value().to_bits(), b.value().to_bits());
    }

    #[test]
    fn plan_views_partition_the_faults() {
        let plan = FaultPlan::new("views")
            .with(Fault::Slowdown {
                node: NodeId(7),
                factor: 0.4,
            })
            .with(Fault::Failure { node: NodeId(3) })
            .with(Fault::LinkLatency {
                node: NodeId(9),
                extra: Time::micros(5.0),
            });
        assert_eq!(plan.failed_nodes(), vec![NodeId(3)]);
        assert_eq!(plan.slowdowns(), vec![(NodeId(7), 0.4)]);
        assert_eq!(
            plan.injected_network_nodes(),
            vec![NodeId(3), NodeId(9)],
            "slowdown-only nodes are not network-visible"
        );
    }

    #[test]
    #[should_panic(expected = "must be in (0, 1]")]
    fn plans_validate_at_definition_time() {
        let _ = FaultPlan::new("bad").with(Fault::Slowdown {
            node: NodeId(0),
            factor: 1.5,
        });
    }

    #[test]
    #[should_panic(expected = "faulty nodes but the machine has")]
    fn generate_rejects_oversized_specs() {
        let spec = FaultSpec {
            failures: 5,
            ..FaultSpec::default()
        };
        let _ = FaultPlan::generate("p", 4, &spec, 1);
    }
}
