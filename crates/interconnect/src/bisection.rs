//! Bisection-bandwidth analysis of the modelled topologies.
//!
//! The classic capacity metric behind the paper's Table-I network row: how
//! much traffic can cross the worst-case half/half cut. TofuD's torus
//! bisection grows with the cross-section of its largest dimension; the
//! tapered fat tree's is its spine capacity. The tests pin the well-known
//! results (a 2:1-tapered tree has half the full-bisection capacity; a
//! torus beats it per node at CTE-Arm's scale).

use crate::fattree::FatTree;
use crate::link::LinkModel;
use crate::tofu::TofuD;

/// Bisection capacity of a TofuD torus in links, cutting across its
/// largest dimension: `2 · (nodes / extent)` links for a torus dimension
/// (the wrap doubles the cut), `nodes / extent` for a mesh dimension —
/// taking the best (largest) cut the topology offers... the *bisection*
/// is the worst cut, so the minimum over dimensions that split the
/// machine in half.
pub fn tofu_bisection_links(topo: &TofuD) -> usize {
    let total: usize = topo.dims.iter().product();
    let mut worst = usize::MAX;
    for (i, &extent) in topo.dims.iter().enumerate() {
        if extent < 2 {
            continue; // cannot bisect along a singleton dimension
        }
        let cross_section = total / extent;
        let links = if topo.periodic[i] && extent > 2 {
            2 * cross_section
        } else {
            cross_section
        };
        worst = worst.min(links);
    }
    assert!(worst != usize::MAX, "topology has no bisectable dimension");
    worst
}

/// Bisection capacity of the fat tree in equivalent node-links:
/// `nodes / (2 · taper)` (full bisection would be `nodes / 2`).
pub fn fattree_bisection_links(topo: &FatTree) -> f64 {
    topo.n_nodes as f64 / (2.0 * topo.taper)
}

/// Bisection bandwidth in bytes/s given the link model.
pub fn tofu_bisection_bandwidth(topo: &TofuD, link: &LinkModel) -> f64 {
    tofu_bisection_links(topo) as f64 * link.bandwidth.value()
}

/// Fat-tree bisection bandwidth in bytes/s.
pub fn fattree_bisection_bandwidth(topo: &FatTree, link: &LinkModel) -> f64 {
    fattree_bisection_links(topo) * link.bandwidth.value()
}

/// Per-node bisection bandwidth (bytes/s/node) — the scale-independent
/// comparison number.
pub fn per_node(bisection_bw: f64, nodes: usize) -> f64 {
    bisection_bw / nodes as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cte_arm_bisection_cut() {
        // Dims [4,2,2,2,3,2]: worst bisectable cut. X (torus, 4): 2·48=96;
        // Y (torus, 2): 96; Z: 96; A (mesh, 2): 96; B (torus, 3): 2·64=128;
        // C (mesh, 2): 96. Worst = 96 links.
        let t = TofuD::cte_arm();
        assert_eq!(tofu_bisection_links(&t), 96);
    }

    #[test]
    fn torus_wrap_doubles_the_cut() {
        let mesh = TofuD::with_dims([4, 1, 1, 1, 1, 1], [false; 6]);
        let torus = TofuD::with_dims(
            [4, 1, 1, 1, 1, 1],
            [true, false, false, false, false, false],
        );
        assert_eq!(tofu_bisection_links(&mesh), 1);
        assert_eq!(tofu_bisection_links(&torus), 2);
    }

    #[test]
    fn tapered_tree_halves_full_bisection() {
        let full = FatTree::with_geometry(1024, 32, 1.0);
        let tapered = FatTree::with_geometry(1024, 32, 2.0);
        assert_eq!(fattree_bisection_links(&full), 512.0);
        assert_eq!(fattree_bisection_links(&tapered), 256.0);
    }

    #[test]
    fn cte_arm_beats_mn4_per_node() {
        // CTE-Arm: 96 links × 6.8 GB/s over 192 nodes = 3.4 GB/s/node;
        // MN4: link rate / (2 · taper) = 12/4 = 3.0 GB/s/node. The torus
        // edges it out per node despite the slower links.
        let tofu = TofuD::cte_arm();
        let tree = FatTree::marenostrum4();
        let cte = per_node(tofu_bisection_bandwidth(&tofu, &LinkModel::tofud()), 192);
        let mn4 = per_node(
            fattree_bisection_bandwidth(&tree, &LinkModel::omnipath()),
            3456,
        );
        assert!((cte / 1e9 - 3.4).abs() < 0.01, "CTE {cte}");
        assert!((mn4 / 1e9 - 3.0).abs() < 0.01, "MN4 {mn4}");
        assert!(cte > mn4, "the torus wins per node at this scale");
    }

    #[test]
    #[should_panic(expected = "no bisectable dimension")]
    fn singleton_topology_rejected() {
        tofu_bisection_links(&TofuD::with_dims([1; 6], [true; 6]));
    }
}
