//! Bisection-bandwidth analysis of the modelled topologies.
//!
//! The classic capacity metric behind the paper's Table-I network row: how
//! much traffic can cross the worst-case half/half cut. TofuD's torus
//! bisection grows with the cross-section of its largest dimension; the
//! tapered fat tree's is its spine capacity. The tests pin the well-known
//! results (a 2:1-tapered tree has half the full-bisection capacity; a
//! torus beats it per node at CTE-Arm's scale).

use crate::fattree::FatTree;
use crate::link::LinkModel;
use crate::routing::all_pairs_loads;
use crate::tofu::TofuD;

/// The dimension realizing the worst (minimum-capacity) bisecting cut and
/// its link count. Torus dimensions with extent > 2 contribute
/// `2 · (nodes / extent)` links (the wrap doubles the cut); meshes and
/// 2-extent tori contribute `nodes / extent`.
///
/// # Panics
/// Panics when no dimension has extent ≥ 2.
pub fn tofu_worst_cut(topo: &TofuD) -> (usize, usize) {
    let total: usize = topo.dims.iter().product();
    let mut worst: Option<(usize, usize)> = None;
    for (i, &extent) in topo.dims.iter().enumerate() {
        if extent < 2 {
            continue; // cannot bisect along a singleton dimension
        }
        let cross_section = total / extent;
        let links = if topo.periodic[i] && extent > 2 {
            2 * cross_section
        } else {
            cross_section
        };
        if worst.is_none_or(|(_, w)| links < w) {
            worst = Some((i, links));
        }
    }
    worst.expect("topology has no bisectable dimension")
}

/// Bisection capacity of a TofuD torus in links — the minimum cut over
/// dimensions that split the machine in half (see [`tofu_worst_cut`]).
pub fn tofu_bisection_links(topo: &TofuD) -> usize {
    tofu_worst_cut(topo).1
}

/// Traffic across the worst bisecting cut under uniform all-pairs
/// routing, measured by the parallel link-load sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CutTraffic {
    /// The dimension the cut slices.
    pub dim: usize,
    /// Physical links crossing the cut (the bisection capacity).
    pub links: usize,
    /// Total route traversals of those links under one unit per ordered
    /// pair.
    pub crossings: u64,
    /// `crossings / links` — the mean load a cut link carries.
    pub mean_load: f64,
}

/// Traffic across the worst bisecting cut under uniform all-pairs
/// routing, in closed form: per-dimension port-crossing counts expanded
/// by torus translation symmetry ([`crate::sweep::uniform_cut_crossings`])
/// instead of enumerating `O(n²)` routes, so the result is available at
/// full-Fugaku scale in microseconds. With an even extent, minimal routes
/// cross the cut exactly once per half-to-half pair, so `crossings`
/// equals the number of ordered pairs straddling the cut. Integer-
/// identical to [`tofu_cut_traffic_enumerated`], which remains as the
/// route-level differential oracle.
///
/// # Panics
/// Panics when the worst-cut dimension has an odd extent (the halves
/// would be unequal and "bisection" ill-defined).
pub fn tofu_cut_traffic(topo: &TofuD) -> CutTraffic {
    let (dim, links) = tofu_worst_cut(topo);
    let crossings = crate::sweep::uniform_cut_crossings(topo, dim);
    CutTraffic {
        dim,
        links,
        crossings,
        mean_load: crossings as f64 / links as f64,
    }
}

/// Route-level oracle for [`tofu_cut_traffic`]: sweep every ordered
/// pair's dimension-ordered route (in parallel, deterministic
/// chunk-ordered accumulation) and count traversals of the links that
/// cross the worst cut.
///
/// # Panics
/// Panics when the worst-cut dimension has an odd extent.
pub fn tofu_cut_traffic_enumerated(topo: &TofuD) -> CutTraffic {
    let (dim, links) = tofu_worst_cut(topo);
    let extent = topo.dims[dim];
    assert!(
        extent.is_multiple_of(2),
        "cut dimension {dim} has odd extent {extent}"
    );
    let half = extent / 2;
    let load = all_pairs_loads(topo);
    // A link crosses the cut when it spans the half boundary (coordinate
    // half-1 ↔ half) or, on a torus, the wrap boundary (ext-1 ↔ 0).
    let mut crossings = 0u64;
    for (node, d, dir, count) in load.iter_used() {
        if d != dim {
            continue;
        }
        let x = topo.coords(node)[dim];
        let crosses = if dir > 0 {
            x == half - 1 || x == extent - 1
        } else {
            x == half || x == 0
        };
        if crosses {
            crossings += count;
        }
    }
    CutTraffic {
        dim,
        links,
        crossings,
        mean_load: crossings as f64 / links as f64,
    }
}

/// Bisection capacity of the fat tree in equivalent node-links:
/// `nodes / (2 · taper)` (full bisection would be `nodes / 2`).
pub fn fattree_bisection_links(topo: &FatTree) -> f64 {
    topo.n_nodes as f64 / (2.0 * topo.taper)
}

/// Bisection bandwidth in bytes/s given the link model.
pub fn tofu_bisection_bandwidth(topo: &TofuD, link: &LinkModel) -> f64 {
    tofu_bisection_links(topo) as f64 * link.bandwidth.value()
}

/// Fat-tree bisection bandwidth in bytes/s.
pub fn fattree_bisection_bandwidth(topo: &FatTree, link: &LinkModel) -> f64 {
    fattree_bisection_links(topo) * link.bandwidth.value()
}

/// Per-node bisection bandwidth (bytes/s/node) — the scale-independent
/// comparison number.
pub fn per_node(bisection_bw: f64, nodes: usize) -> f64 {
    bisection_bw / nodes as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cte_arm_bisection_cut() {
        // Dims [4,2,2,2,3,2]: worst bisectable cut. X (torus, 4): 2·48=96;
        // Y (torus, 2): 96; Z: 96; A (mesh, 2): 96; B (torus, 3): 2·64=128;
        // C (mesh, 2): 96. Worst = 96 links.
        let t = TofuD::cte_arm();
        assert_eq!(tofu_bisection_links(&t), 96);
    }

    #[test]
    fn torus_wrap_doubles_the_cut() {
        let mesh = TofuD::with_dims([4, 1, 1, 1, 1, 1], [false; 6]);
        let torus = TofuD::with_dims(
            [4, 1, 1, 1, 1, 1],
            [true, false, false, false, false, false],
        );
        assert_eq!(tofu_bisection_links(&mesh), 1);
        assert_eq!(tofu_bisection_links(&torus), 2);
    }

    #[test]
    fn tapered_tree_halves_full_bisection() {
        let full = FatTree::with_geometry(1024, 32, 1.0);
        let tapered = FatTree::with_geometry(1024, 32, 2.0);
        assert_eq!(fattree_bisection_links(&full), 512.0);
        assert_eq!(fattree_bisection_links(&tapered), 256.0);
    }

    #[test]
    fn cte_arm_beats_mn4_per_node() {
        // CTE-Arm: 96 links × 6.8 GB/s over 192 nodes = 3.4 GB/s/node;
        // MN4: link rate / (2 · taper) = 12/4 = 3.0 GB/s/node. The torus
        // edges it out per node despite the slower links.
        let tofu = TofuD::cte_arm();
        let tree = FatTree::marenostrum4();
        let cte = per_node(tofu_bisection_bandwidth(&tofu, &LinkModel::tofud()), 192);
        let mn4 = per_node(
            fattree_bisection_bandwidth(&tree, &LinkModel::omnipath()),
            3456,
        );
        assert!((cte / 1e9 - 3.4).abs() < 0.01, "CTE {cte}");
        assert!((mn4 / 1e9 - 3.0).abs() < 0.01, "MN4 {mn4}");
        assert!(cte > mn4, "the torus wins per node at this scale");
    }

    #[test]
    #[should_panic(expected = "no bisectable dimension")]
    fn singleton_topology_rejected() {
        tofu_bisection_links(&TofuD::with_dims([1; 6], [true; 6]));
    }

    #[test]
    fn cut_traffic_counts_straddling_pairs_exactly_once() {
        // CTE-Arm's worst cut is X (torus of 4, 2·48 = 96 links): the 96
        // nodes with x < 2 vs the 96 with x ≥ 2. Minimal dimension-ordered
        // routes cross the cut exactly once per straddling ordered pair.
        let t = TofuD::cte_arm();
        let cut = tofu_cut_traffic(&t);
        assert_eq!(cut.dim, 0);
        assert_eq!(cut.links, 96);
        assert_eq!(cut.crossings, 2 * 96 * 96, "once per straddling pair");
        assert!((cut.mean_load - 192.0).abs() < 1e-12);
    }

    #[test]
    fn closed_form_cut_matches_route_enumeration() {
        for t in [
            TofuD::cte_arm(),
            TofuD::with_dims([3, 2, 2, 2, 3, 2], [true, true, true, false, true, false]),
            TofuD::with_dims([4, 2, 1, 1, 1, 2], [true, true, false, false, false, false]),
        ] {
            assert_eq!(
                tofu_cut_traffic(&t),
                tofu_cut_traffic_enumerated(&t),
                "cut traffic diverges on dims {:?}",
                t.dims
            );
        }
    }

    #[test]
    fn cut_links_carry_more_than_the_average_link() {
        // The bisection trunk is the hotspot: its mean load exceeds the
        // all-link mean from the same sweep.
        let t = TofuD::cte_arm();
        let cut = tofu_cut_traffic(&t);
        let (_, mean_all) = crate::routing::all_pairs_link_load(&t);
        assert!(
            cut.mean_load > mean_all,
            "cut mean {} vs global mean {}",
            cut.mean_load,
            mean_all
        );
    }
}
