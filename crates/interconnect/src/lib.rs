//! # interconnect — cluster network models
//!
//! Models of the two interconnects in the paper:
//!
//! * **TofuD** ([`tofu`]) — Fujitsu's six-dimensional torus/mesh. CTE-Arm's
//!   192 nodes are arranged as an `(X,Y,Z) = (4,2,2)` torus of
//!   `(A,B,C) = (2,3,2)` groups (the TofuD unit of 12 nodes), 6.8 GB/s peak
//!   injection per node.
//! * **OmniPath** ([`fattree`]) — Intel's 100 Gbit/s fat-tree as deployed in
//!   MareNostrum 4 (32-node leaf switches, 2:1 taper to the spine).
//!
//! A [`network::Network`] combines a topology with a [`link::LinkModel`]
//! (software overhead + per-hop latency + serialization + rendezvous
//! handshake) and optional per-node degradation — the paper found one CTE-Arm
//! node, `arms0b1-11c`, with crippled *receive* bandwidth but normal send
//! bandwidth (Fig. 4); [`network::Degradation`] reproduces exactly that
//! asymmetry.
//!
//! [`placement`] implements the topology-aware block allocation the CTE-Arm
//! scheduler performs, plus a random allocator for the ablation study.
//!
//! All-pairs analyses (route enumeration, link loads, placement scoring)
//! run on a fast path: [`table::RoutingTable`] memoizes hop counts and
//! sharing factors per topology, [`routing::RouteSteps`] enumerates routes
//! without allocating, and the sweeps fan out over the rayon pool with
//! chunk-ordered (bit-deterministic) reductions. At Fugaku scale the dense
//! table gives way to [`folded::FoldedTable`] — one entry per coordinate
//! *offset class* by torus translation symmetry (under 10 MB at 158,976
//! nodes, ~100 GB dense) — and [`sweep`] prices uniform-traffic link
//! loads, bisection crossings and mean pairwise hops in exact per-
//! dimension closed forms, no all-pairs enumeration at all.

#![warn(missing_docs)]

pub mod bisection;
pub mod fattree;
pub mod faults;
pub mod folded;
pub mod hostname;
pub mod link;
pub mod network;
pub mod placement;
pub mod routing;
pub mod sweep;
pub mod table;
pub mod tofu;
pub mod topology;

pub use fattree::FatTree;
pub use faults::{Fault, FaultPlan, FaultSpec};
pub use folded::FoldedTable;
pub use link::LinkModel;
pub use network::{Degradation, Network, PathCost};
pub use table::{PairTable, RoutingTable};
pub use tofu::TofuD;
pub use topology::{NodeId, Topology};
