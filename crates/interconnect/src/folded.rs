//! Symmetry-folded routing metadata for the TofuD torus.
//!
//! The dense [`RoutingTable`](crate::table::RoutingTable) stores 4 bytes
//! per *ordered node pair* — fast at CTE-Arm's 192 nodes, but ~100 GB at
//! Fugaku's 158,976. On a TofuD torus the table is massively redundant:
//! dimension-ordered minimal routing makes both `hops(a, b)` and
//! `sharing(a, b)` functions of the per-dimension **coordinate offset**
//! `b_i − a_i` alone, never of the absolute position. A [`FoldedTable`]
//! therefore stores one entry per *offset class* — `Π (2·ext_i − 1)`
//! entries, the product of the extents' signed-offset ranges — instead of
//! one per pair. Fugaku's `[24, 23, 24, 2, 3, 2]` shape folds from
//! 2.5 × 10¹⁰ pairs to 4,473,225 classes: under 10 MB.
//!
//! ## Carry-free decode
//!
//! Resolving a pair must not cost a coordinate decode (twelve integer
//! divisions), or the fold would lose to the dense table it replaces. The
//! trick is a mixed-radix *offset encoding* with radix `k_i = 2·ext_i − 1`
//! per dimension: each node gets a precomputed `u32`
//! `enc[x] = Σ x_i · stride_i` over those radices, and the class index of
//! `(a, b)` is
//!
//! ```text
//! class(a, b) = enc[b] − enc[a] + S,     S = Σ (ext_i − 1) · stride_i
//! ```
//!
//! Per dimension the digit of that sum is `b_i − a_i + (ext_i − 1)`, which
//! lies in `[0, 2·ext_i − 2]` — strictly below the radix — so **no digit
//! ever carries** and the flat integer arithmetic is exact: one add, one
//! subtract and two array loads resolve any pair. Torus wraps are folded
//! into the table *contents* at build time (each class stores the minimal
//! modular distance), not into the index.
//!
//! Each entry packs the hop count (13 bits) and the sharing-class palette
//! index (3 bits) into one `u16`, preserving the dense table's values
//! bit-for-bit: hop counts are the same integers and sharing factors come
//! from the same exact-`f64` palette. The dense builder remains as the
//! differential oracle (see `tests/folded_table.rs`).

use crate::tofu::{TofuD, DIMS};
use crate::topology::{check_node, NodeId, Topology};
use rayon::prelude::*;

/// Bits of each packed entry holding the hop count.
pub const HOPS_BITS: u32 = 13;
/// Mask extracting the hop count from a packed entry.
pub const HOPS_MASK: u16 = (1 << HOPS_BITS) - 1;

/// O(#offset-classes) fold of the all-pairs routing table on a TofuD
/// torus/mesh: `Π (2·ext − 1)` packed entries plus one `u32` encoding per
/// node, instead of 4 bytes per ordered pair.
#[derive(Debug, Clone, PartialEq)]
pub struct FoldedTable {
    n: usize,
    name: String,
    /// Per-node mixed-radix offset encodings (radix `2·ext − 1` per dim).
    enc: Vec<u32>,
    /// `S = Σ (ext_i − 1) · stride_i`: the all-zero-offset class index,
    /// also the largest value `enc` takes.
    shift: u32,
    /// One packed `hops | class << HOPS_BITS` entry per offset class.
    entries: Vec<u16>,
    palette: Vec<f64>,
    diameter: usize,
}

impl FoldedTable {
    /// Fold the routing metadata of a TofuD shape. `O(Π (2·ext − 1))`
    /// work, filled in parallel; independent of the node-pair count.
    ///
    /// # Panics
    /// Panics if the class space overflows 31-bit indexing (a shape far
    /// beyond any deployed torus) or a hop count exceeds the 13-bit entry
    /// field.
    pub fn build(topo: &TofuD) -> Self {
        let n = topo.nodes();
        let dims = topo.dims;
        let mut radix = [0usize; DIMS];
        for i in 0..DIMS {
            radix[i] = 2 * dims[i] - 1;
        }
        let mut cstride = [1usize; DIMS];
        for d in (0..DIMS - 1).rev() {
            cstride[d] = cstride[d + 1] * radix[d + 1];
        }
        let classes = cstride[0] * radix[0];
        // `enc[b] + S` must stay below 2³²; S < classes, enc ≤ S.
        assert!(
            classes < (1usize << 31),
            "folded class space ({classes}) overflows u32 offset arithmetic"
        );
        let shift: u32 = (0..DIMS).map(|i| ((dims[i] - 1) * cstride[i]) as u32).sum();

        // Per-node encodings, walked odometer-style in id order so the
        // fill never pays a mixed-radix decode.
        let mut enc = vec![0u32; n];
        let mut c = [0usize; DIMS];
        for e in enc.iter_mut() {
            *e = (0..DIMS).map(|i| (c[i] * cstride[i]) as u32).sum();
            topo.advance_coords(&mut c);
        }

        // Sharing palette: TofuD has exactly two classes — same-unit
        // (all X/Y/Z offsets zero) and cross-unit. Both factors are taken
        // from the topology itself so they stay exact f64s; a machine that
        // is a single unit wide (X = Y = Z = 1) only ever sees the first.
        let same = topo.sharing(NodeId(0), NodeId(0));
        let cross_rep = (0..3).find(|&d| dims[d] > 1).map(|d| {
            let node_stride: usize = dims[d + 1..].iter().product();
            topo.sharing(NodeId(0), NodeId(node_stride))
        });
        let palette: Vec<f64> = std::iter::once(same).chain(cross_rep).collect();

        // Fill the class entries in parallel. Blocks of the three inner
        // dimensions decode their leading digits once, then tick an
        // odometer — entries are position-independent, so the result does
        // not depend on the chunking.
        let mut entries = vec![0u16; classes];
        let block = radix[3] * radix[4] * radix[5];
        let periodic = topo.periodic;
        entries
            .par_chunks_mut(block)
            .enumerate()
            .for_each(|(bi, chunk)| {
                let mut g = [0usize; DIMS];
                let mut rem = bi * block;
                for i in (0..DIMS).rev() {
                    g[i] = rem % radix[i];
                    rem /= radix[i];
                }
                for e in chunk.iter_mut() {
                    let mut hops = 0usize;
                    let mut same_unit = true;
                    for i in 0..DIMS {
                        // Signed per-dimension offset of this class; the
                        // torus wrap is folded into the stored distance.
                        let off = g[i].abs_diff(dims[i] - 1);
                        let dist = if periodic[i] {
                            off.min(dims[i] - off)
                        } else {
                            off
                        };
                        hops += dist;
                        if i < 3 && off != 0 {
                            same_unit = false;
                        }
                    }
                    assert!(
                        hops <= HOPS_MASK as usize,
                        "hop count {hops} overflows the {HOPS_BITS}-bit folded entry"
                    );
                    debug_assert_eq!(hops, class_rep_hops(topo, &g), "folded hops diverge");
                    let class: u16 = u16::from(!same_unit);
                    *e = ((class) << HOPS_BITS) | hops as u16;
                    // Advance the class odometer.
                    for i in (0..DIMS).rev() {
                        g[i] += 1;
                        if g[i] < radix[i] {
                            break;
                        }
                        g[i] = 0;
                    }
                }
            });

        Self {
            n,
            name: format!("{} (folded)", topo.name()),
            enc,
            shift,
            entries,
            palette,
            diameter: topo.diameter(),
        }
    }

    /// Offset-class index of the ordered pair — carry-free mixed-radix
    /// arithmetic, no coordinate decode.
    #[inline]
    fn class_index(&self, a: NodeId, b: NodeId) -> usize {
        ((self.enc[b.index()] + self.shift) - self.enc[a.index()]) as usize
    }

    /// Hop count of the ordered pair: two array loads and an add.
    #[inline]
    pub fn hops(&self, a: NodeId, b: NodeId) -> usize {
        (self.entries[self.class_index(a, b)] & HOPS_MASK) as usize
    }

    /// Sharing factor of the ordered pair, from the exact-`f64` palette.
    #[inline]
    pub fn sharing(&self, a: NodeId, b: NodeId) -> f64 {
        self.palette[(self.entries[self.class_index(a, b)] >> HOPS_BITS) as usize]
    }

    /// Number of nodes the fold covers.
    pub fn nodes(&self) -> usize {
        self.n
    }

    /// Number of distinct offset classes stored (`Π (2·ext − 1)`).
    pub fn offset_classes(&self) -> usize {
        self.entries.len()
    }

    /// The distinct sharing factors, same-unit first.
    pub fn sharing_classes(&self) -> &[f64] {
        &self.palette
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.entries.len() * 2 + self.enc.len() * 4 + self.palette.len() * 8
    }

    /// Resolve every ordered pair (self-pairs included) through the folded
    /// fast path and return a checksum of hops and sharing classes — the
    /// benchmark kernel behind the `folded_routes_per_sec` row, kept here
    /// so the timed loop is exactly the production lookup arithmetic.
    pub fn checksum_all_pairs(&self) -> u64 {
        let mut sink = 0u64;
        for a in 0..self.n {
            // Hoist the source term: `class = enc[b] + (S − enc[a])`.
            let base = self.shift - self.enc[a];
            for &eb in &self.enc {
                let e = self.entries[(eb + base) as usize];
                sink += (e & HOPS_MASK) as u64 + (((e >> HOPS_BITS) as u64) << 1);
            }
        }
        sink
    }
}

/// Debug-assert oracle: hop count of a representative pair realizing the
/// offset class `g`, priced through the topology's own `hops`. Only
/// invoked from `debug_assert_eq!`, so release builds optimize it away.
fn class_rep_hops(topo: &TofuD, g: &[usize; DIMS]) -> usize {
    let mut ca = [0usize; DIMS];
    let mut cb = [0usize; DIMS];
    for i in 0..DIMS {
        let o = g[i] as isize - (topo.dims[i] as isize - 1);
        if o < 0 {
            ca[i] = o.unsigned_abs();
        } else {
            cb[i] = o as usize;
        }
    }
    topo.hops(topo.node_at(ca), topo.node_at(cb))
}

impl Topology for FoldedTable {
    fn nodes(&self) -> usize {
        self.n
    }

    fn hops(&self, a: NodeId, b: NodeId) -> usize {
        check_node(self, a);
        check_node(self, b);
        FoldedTable::hops(self, a, b)
    }

    fn sharing(&self, a: NodeId, b: NodeId) -> f64 {
        check_node(self, a);
        check_node(self, b);
        FoldedTable::sharing(self, a, b)
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn diameter(&self) -> usize {
        self.diameter
    }
}

/// Closed-form mean pairwise hop distance of a node set on a TofuD torus —
/// the per-dimension companion to the offset-class fold above.
///
/// Dimension-ordered routing makes `hops(a, b) = Σ_d dist_d(a_d, b_d)`, so
/// the total over all unordered pairs separates per dimension:
///
/// ```text
/// Σ_{i<j} hops(nᵢ, nⱼ) = Σ_d Σ_{x<y} h_d[x] · h_d[y] · dist_d(x, y)
/// ```
///
/// where `h_d` is the histogram of the set's coordinates along dimension
/// `d` (same-coordinate pairs contribute zero and drop out). The histogram
/// of a *consecutive-id run* `[s, s+k)` has a closed form per dimension —
/// `#{ i < m : (i / stride_d) mod ext_d = x }` is piecewise linear in `m` —
/// so a set of `r` maximal runs costs `O(r · Σ ext_d)` to histogram and
/// `O(Σ ext_d²)` to combine, independent of the pair count. Hop totals
/// accumulate exactly in `u64` (the dense walk's own accumulator width,
/// with the same headroom: the total is bounded by `pairs · max hops`) and
/// the final `total / pairs` division performs the same integer→`f64`
/// conversions, so the result is bit-identical to
/// [`mean_pairwise_hops_dense`](crate::placement::mean_pairwise_hops_dense).
///
/// Returns `None` when the ids are not strictly ascending or fall outside
/// the topology — callers fall back to the dense walk (which preserves the
/// historical duplicate handling and out-of-range panics).
pub fn set_mean_hops(topo: &TofuD, nodes: &[NodeId]) -> Option<f64> {
    let k = nodes.len();
    if k < 2 {
        return Some(0.0);
    }
    let n = topo.nodes();
    let mut stride = [0usize; DIMS];
    let mut s = 1usize;
    for d in (0..DIMS).rev() {
        stride[d] = s;
        s *= topo.dims[d];
    }
    // One flat histogram buffer for all six dimensions: a single
    // allocation per call, scored a million+ times per replay.
    let mut offsets = [0usize; DIMS + 1];
    for d in 0..DIMS {
        offsets[d + 1] = offsets[d] + topo.dims[d];
    }
    let mut hist = vec![0u64; offsets[DIMS]];
    let mut i = 0;
    while i < k {
        let start = nodes[i].index();
        let mut j = i + 1;
        while j < k && nodes[j].index() == nodes[j - 1].index() + 1 {
            j += 1;
        }
        if j < k && nodes[j].index() <= nodes[j - 1].index() {
            return None; // unsorted or duplicate ids: dense walk territory
        }
        let end = nodes[j - 1].index() + 1;
        if end > n {
            return None; // out of range: let the dense walk panic with context
        }
        for d in 0..DIMS {
            run_coord_counts(
                topo.dims[d],
                stride[d],
                start,
                end,
                &mut hist[offsets[d]..offsets[d + 1]],
            );
        }
        i = j;
    }
    let mut total: u64 = 0;
    for d in 0..DIMS {
        let e = topo.dims[d];
        let h = &hist[offsets[d]..offsets[d + 1]];
        for x in 0..e {
            if h[x] == 0 {
                continue;
            }
            for y in (x + 1)..e {
                if h[y] == 0 {
                    continue;
                }
                let span = y - x;
                let dist = if topo.periodic[d] {
                    span.min(e - span)
                } else {
                    span
                };
                total += h[x] * h[y] * dist as u64;
            }
        }
    }
    let pairs = k as u64 * (k as u64 - 1) / 2;
    Some(total as f64 / pairs as f64)
}

/// Add to `hist[x]` the number of ids `m ∈ [lo, hi)` whose coordinate in a
/// dimension of extent `e` and stride `stride` equals `x`. The prefix count
/// `f(m, x) = #{ i < m : (i / stride) mod e = x }` decomposes into whole
/// `e·stride` cycles plus a partial cycle, giving an O(1) expression per
/// coordinate value.
fn run_coord_counts(e: usize, stride: usize, lo: usize, hi: usize, hist: &mut [u64]) {
    // Whole `e·stride` cycles hit every coordinate `stride` times; the
    // remainder is walked one coordinate segment at a time. A run shorter
    // than the cycle touches only `len/stride + 2` coordinates, so short
    // runs in outer (large-stride) dimensions cost O(1) instead of O(e) —
    // the common case when scoring fragmented allocations.
    let cycle = e * stride;
    let cycles = (hi - lo) / cycle;
    if cycles > 0 {
        let per = (cycles * stride) as u64;
        for slot in hist.iter_mut() {
            *slot += per;
        }
    }
    let mut m = lo + cycles * cycle;
    while m < hi {
        let q = m / stride;
        let seg_end = ((q + 1) * stride).min(hi);
        hist[q % e] += (seg_end - m) as u64;
        m = seg_end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folded_agrees_with_direct_on_cte_arm() {
        let t = TofuD::cte_arm();
        let f = FoldedTable::build(&t);
        assert_eq!(f.nodes(), 192);
        for a in 0..192 {
            for b in 0..192 {
                let (a, b) = (NodeId(a), NodeId(b));
                assert_eq!(f.hops(a, b), t.hops(a, b), "hops ({a}, {b})");
                assert_eq!(
                    f.sharing(a, b).to_bits(),
                    t.sharing(a, b).to_bits(),
                    "sharing ({a}, {b})"
                );
            }
        }
        assert_eq!(Topology::diameter(&f), t.diameter());
        assert_eq!(f.sharing_classes(), &[1.0, 2.0]);
    }

    #[test]
    fn class_space_is_product_of_offset_ranges() {
        let t = TofuD::cte_arm();
        let f = FoldedTable::build(&t);
        // [4,2,2,2,3,2] → 7·3·3·3·5·3 = 2835 classes for 36 864 pairs.
        assert_eq!(f.offset_classes(), 2835);
        assert!(f.memory_bytes() < crate::table::RoutingTable::build(&t).memory_bytes());
    }

    #[test]
    fn single_unit_machine_has_one_sharing_class() {
        let t = TofuD::with_dims([1, 1, 1, 2, 3, 2], [true, true, true, false, true, false]);
        let f = FoldedTable::build(&t);
        assert_eq!(f.sharing_classes(), &[1.0]);
        for a in 0..t.nodes() {
            for b in 0..t.nodes() {
                assert_eq!(f.sharing(NodeId(a), NodeId(b)), 1.0);
            }
        }
    }

    #[test]
    fn checksum_matches_direct_enumeration() {
        let t = TofuD::with_dims([3, 2, 2, 2, 3, 2], [true, true, true, false, true, false]);
        let f = FoldedTable::build(&t);
        let mut want = 0u64;
        for a in 0..t.nodes() {
            for b in 0..t.nodes() {
                let (a, b) = (NodeId(a), NodeId(b));
                let class = u64::from(t.sharing(a, b) != 1.0);
                want += t.hops(a, b) as u64 + (class << 1);
            }
        }
        assert_eq!(f.checksum_all_pairs(), want);
    }

    #[test]
    fn is_a_topology_for_generic_sweeps() {
        let t = TofuD::cte_arm();
        let f = FoldedTable::build(&t);
        let nodes: Vec<NodeId> = (0..24).map(NodeId).collect();
        let direct = crate::placement::mean_pairwise_hops(&t, &nodes);
        let folded = crate::placement::mean_pairwise_hops(&f, &nodes);
        assert_eq!(direct.to_bits(), folded.to_bits());
        assert!(f.name().contains("folded"));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn topology_impl_checks_bounds() {
        let f = FoldedTable::build(&TofuD::cte_arm());
        Topology::hops(&f, NodeId(0), NodeId(192));
    }

    #[test]
    fn set_mean_hops_matches_dense_on_assorted_sets() {
        use crate::placement::mean_pairwise_hops_dense;
        let shapes = [
            TofuD::cte_arm(),
            TofuD::with_dims([3, 2, 2, 2, 3, 2], [true, false, true, false, true, false]),
            TofuD::with_dims([5, 1, 3, 2, 3, 2], [true, true, true, false, true, false]),
        ];
        for t in &shapes {
            let n = t.nodes();
            let sets: Vec<Vec<NodeId>> = vec![
                (0..n.min(24)).map(NodeId).collect(),    // one prefix run
                (0..n).step_by(3).map(NodeId).collect(), // singleton runs
                (0..n - 6).step_by(7).chain(n - 5..n).map(NodeId).collect(),
                vec![NodeId(0), NodeId(n - 1)], // extremes
                (n / 3..n / 3 + n.min(30) / 2).map(NodeId).collect(),
            ];
            for nodes in &sets {
                let closed = set_mean_hops(t, nodes).expect("sorted set folds");
                let dense = mean_pairwise_hops_dense(t, nodes);
                assert_eq!(
                    closed.to_bits(),
                    dense.to_bits(),
                    "shape {:?} set {:?}",
                    t.dims,
                    &nodes[..nodes.len().min(8)]
                );
            }
        }
    }

    #[test]
    fn set_mean_hops_rejects_unfoldable_inputs() {
        let t = TofuD::cte_arm();
        assert!(
            set_mean_hops(&t, &[NodeId(5), NodeId(2)]).is_none(),
            "unsorted"
        );
        assert!(
            set_mean_hops(&t, &[NodeId(2), NodeId(2)]).is_none(),
            "duplicate"
        );
        assert!(
            set_mean_hops(&t, &[NodeId(0), NodeId(500)]).is_none(),
            "out of range"
        );
        assert_eq!(set_mean_hops(&t, &[NodeId(7)]), Some(0.0), "singleton");
        assert_eq!(set_mean_hops(&t, &[]), Some(0.0), "empty");
    }

    #[test]
    fn set_mean_hops_handles_fugaku_scale_sets() {
        // A 64k-node prefix plus a scattered tail at the full-Fugaku shape:
        // closed form answers in microseconds where the dense walk would
        // route 2×10⁹ pairs.
        let t = TofuD::with_dims(
            [24, 23, 24, 2, 3, 2],
            [true, true, true, false, true, false],
        );
        let nodes: Vec<NodeId> = (0..65_536)
            .chain((100_000..t.nodes()).step_by(97))
            .map(NodeId)
            .collect();
        let mean = set_mean_hops(&t, &nodes).expect("folds");
        let diam = t.diameter() as f64;
        assert!(mean > 0.0 && mean < diam, "mean {mean} within (0, {diam})");
    }
}
