//! A network: topology + link model + per-node health + measurement noise.

use crate::link::LinkModel;
use crate::table::PairTable;
use crate::topology::{check_node, NodeId, Topology};
use simkit::rng::Pcg32;
use simkit::units::{Bandwidth, Bytes, Time};
use std::sync::OnceLock;

/// Asymmetric per-node bandwidth degradation.
///
/// The paper's Fig. 4 shows node `arms0b1-11c` achieving very low bandwidth
/// *as a receiver* while performing normally *as a sender* — consistent with
/// a faulty receive-side DMA engine or a mis-trained link lane. The factors
/// scale the effective bandwidth of messages arriving at / departing from
/// the node.
#[derive(Debug, Clone, Copy)]
pub struct Degradation {
    /// Multiplier on receive-side bandwidth, `(0, 1]`.
    pub rx_factor: f64,
    /// Multiplier on send-side bandwidth, `(0, 1]`.
    pub tx_factor: f64,
}

impl Degradation {
    /// A degradation with both factors validated to `(0, 1]`.
    ///
    /// # Panics
    /// Panics if either factor is outside `(0, 1]` (a factor above 1 would
    /// model a *faster*-than-healthy endpoint; a factor of 0 or below would
    /// produce a non-positive effective bandwidth — both are construction
    /// bugs, not fault models).
    pub fn new(rx_factor: f64, tx_factor: f64) -> Self {
        for (name, f) in [("rx_factor", rx_factor), ("tx_factor", tx_factor)] {
            assert!(
                f > 0.0 && f <= 1.0,
                "Degradation {name} must be in (0, 1], got {f}"
            );
        }
        Self {
            rx_factor,
            tx_factor,
        }
    }

    /// A receive-only fault like the one in the paper.
    pub fn receive_fault(rx_factor: f64) -> Self {
        Self::new(rx_factor, 1.0)
    }

    /// A send-only fault (the mirror image of [`Degradation::receive_fault`]).
    pub fn send_fault(tx_factor: f64) -> Self {
        Self::new(1.0, tx_factor)
    }
}

/// Resolved cost parameters of one (sender, receiver) path — everything
/// [`Network::message_time`] derives from the pair before touching the
/// message size. Callers that price many messages over the same pair (the
/// collective stages in `mpisim`) resolve this once and reuse it via
/// [`Network::message_time_with`] instead of re-routing per stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathCost {
    /// Router hops on the minimal route; 0 for a node talking to itself.
    pub hops: usize,
    /// Oversubscription factor of the route.
    pub sharing: f64,
    /// Bandwidth derate from endpoint health (`tx · rx`); 0 when either
    /// endpoint has hard-failed (transfers never complete).
    pub health: f64,
    /// Fixed extra latency from link faults on either endpoint, seconds.
    pub extra_s: f64,
    /// Multiplicative expected-retransmit stretch of the whole transfer,
    /// ≥ 1 (1 on healthy paths).
    pub stretch: f64,
    /// True when sender and receiver are the same node (shared-memory
    /// copy, not a network transfer).
    pub local: bool,
}

/// A complete network model.
pub struct Network<T: Topology> {
    topo: T,
    link: LinkModel,
    /// Per-node send/receive health factors, flat-indexed by node id
    /// (1.0 = healthy). Dense so the per-message lookup is two loads
    /// instead of two hash probes.
    deg_tx: Vec<f64>,
    deg_rx: Vec<f64>,
    /// Additive per-endpoint latency from link faults (mis-trained lanes),
    /// seconds; 0 = healthy.
    extra_lat: Vec<f64>,
    /// Multiplicative expected-retransmit stretch per endpoint, ≥ 1
    /// (transient packet loss with timeout/backoff, folded analytically so
    /// sweeps stay deterministic); 1 = healthy.
    retry_stretch: Vec<f64>,
    /// Hard-failed nodes: transfers touching them never complete.
    failed: Vec<bool>,
    /// Lognormal sigma of dynamic-contention noise for messages ≥ 1 MiB.
    /// The paper observes high run-to-run variability only above 2^20 B.
    large_msg_noise: f64,
    /// Memoized hop/sharing pair table, built on first request. The
    /// variant is topology-selected: folded on tori, dense elsewhere.
    table: OnceLock<PairTable>,
}

impl<T: Topology> Network<T> {
    /// Build a healthy network.
    pub fn new(topo: T, link: LinkModel) -> Self {
        let n = topo.nodes();
        Self {
            topo,
            link,
            deg_tx: vec![1.0; n],
            deg_rx: vec![1.0; n],
            extra_lat: vec![0.0; n],
            retry_stretch: vec![1.0; n],
            failed: vec![false; n],
            large_msg_noise: 0.25,
            table: OnceLock::new(),
        }
    }

    /// Mark a node as degraded.
    ///
    /// # Panics
    /// Panics if either factor is outside `(0, 1]` — the same guard as
    /// [`Degradation::new`], repeated here because the struct's fields are
    /// public and could have been set directly.
    pub fn with_degraded_node(mut self, node: NodeId, d: Degradation) -> Self {
        check_node(&self.topo, node);
        for (name, f) in [("rx_factor", d.rx_factor), ("tx_factor", d.tx_factor)] {
            assert!(
                f > 0.0 && f <= 1.0,
                "Degradation {name} must be in (0, 1], got {f}"
            );
        }
        self.deg_tx[node.index()] = d.tx_factor;
        self.deg_rx[node.index()] = d.rx_factor;
        self
    }

    /// Add fixed extra latency to every transfer touching `node` (a
    /// mis-trained link lane). Additive with any previous link fault.
    ///
    /// # Panics
    /// Panics on negative latency.
    pub fn with_link_fault(mut self, node: NodeId, extra: Time) -> Self {
        check_node(&self.topo, node);
        assert!(extra.value() >= 0.0, "link-fault latency must be ≥ 0");
        self.extra_lat[node.index()] += extra.value();
        self
    }

    /// Model transient packet loss at `node`: each transfer attempt is
    /// dropped with probability `drop_prob` and retried after `timeout`.
    /// Folded analytically into an expected-cost stretch (`1/(1−q)` on the
    /// transfer) plus an expected timeout charge (`q/(1−q) · timeout`), so
    /// campaigns stay bit-deterministic instead of sampling per message.
    ///
    /// # Panics
    /// Panics unless `0 ≤ drop_prob < 1` and `timeout ≥ 0`.
    pub fn with_retransmit_fault(mut self, node: NodeId, drop_prob: f64, timeout: Time) -> Self {
        check_node(&self.topo, node);
        assert!(
            (0.0..1.0).contains(&drop_prob),
            "drop probability must be in [0, 1), got {drop_prob}"
        );
        assert!(timeout.value() >= 0.0, "retransmit timeout must be ≥ 0");
        let expected_attempts = 1.0 / (1.0 - drop_prob);
        self.retry_stretch[node.index()] *= expected_attempts;
        self.extra_lat[node.index()] += drop_prob / (1.0 - drop_prob) * timeout.value();
        self
    }

    /// Mark a node as hard-failed: every transfer touching it takes
    /// infinite time (zero measured bandwidth). The scheduler layer drains
    /// failed nodes; `mpisim` refuses to place ranks on them.
    pub fn with_failed_node(mut self, node: NodeId) -> Self {
        check_node(&self.topo, node);
        self.failed[node.index()] = true;
        self
    }

    /// Whether a node has hard-failed.
    pub fn is_failed(&self, node: NodeId) -> bool {
        check_node(&self.topo, node);
        self.failed[node.index()]
    }

    /// All hard-failed nodes, in id order.
    pub fn failed_nodes(&self) -> Vec<NodeId> {
        self.failed
            .iter()
            .enumerate()
            .filter(|(_, &f)| f)
            .map(|(i, _)| NodeId(i))
            .collect()
    }

    /// Override the large-message noise sigma (0 disables it).
    pub fn with_large_msg_noise(mut self, sigma: f64) -> Self {
        assert!(sigma >= 0.0, "noise sigma must be non-negative");
        self.large_msg_noise = sigma;
        self
    }

    /// The topology.
    pub fn topology(&self) -> &T {
        &self.topo
    }

    /// The link model.
    pub fn link(&self) -> &LinkModel {
        &self.link
    }

    /// Bandwidth derate for the (sender, receiver) pair from node health.
    fn health_factor(&self, from: NodeId, to: NodeId) -> f64 {
        self.deg_tx[from.index()] * self.deg_rx[to.index()]
    }

    /// The memoized hop/sharing table, built on first request. Sweeps that
    /// price every pair (the Fig. 4 map, link-load analysis) use it to
    /// avoid re-deriving the route per message; one-off messages never pay
    /// the build. The topology picks the representation
    /// ([`Topology::pair_table`]): TofuD folds by translation symmetry, so
    /// even a full-Fugaku network stays under 10 MB here.
    pub fn routing_table(&self) -> &PairTable
    where
        T: Sync,
    {
        self.table.get_or_init(|| self.topo.pair_table())
    }

    /// The memoized table if some caller has already built it, without
    /// triggering the build.
    pub fn table_if_built(&self) -> Option<&PairTable> {
        self.table.get()
    }

    /// Resolve the size-independent cost parameters of one path. Uses the
    /// memoized table when it has been built, the topology directly
    /// otherwise — the values are identical either way.
    pub fn path_cost(&self, from: NodeId, to: NodeId) -> PathCost {
        check_node(&self.topo, from);
        check_node(&self.topo, to);
        if from == to {
            return PathCost {
                hops: 0,
                sharing: 1.0,
                health: 1.0,
                extra_s: 0.0,
                stretch: 1.0,
                local: true,
            };
        }
        let (hops, sharing) = match self.table.get() {
            Some(t) => (t.hops(from, to), t.sharing(from, to)),
            None => (self.topo.hops(from, to), self.topo.sharing(from, to)),
        };
        let health = if self.failed[from.index()] || self.failed[to.index()] {
            0.0
        } else {
            self.health_factor(from, to)
        };
        PathCost {
            hops,
            sharing,
            health,
            extra_s: self.extra_lat[from.index()] + self.extra_lat[to.index()],
            stretch: self.retry_stretch[from.index()] * self.retry_stretch[to.index()],
            local: false,
        }
    }

    /// Transfer time for one message over an already-resolved path.
    pub fn message_time_with(&self, cost: &PathCost, bytes: Bytes) -> Time {
        if cost.local {
            // Intra-node copy through shared memory: model as half the
            // software overhead, no hops.
            return self.link.sw_overhead * 0.5 + bytes / Bandwidth::gb_per_sec(20.0);
        }
        // A degraded endpoint (mis-trained lane, faulty DMA engine) forces
        // per-packet retransmits, stretching the whole transfer — latency
        // and serialization alike — by 1/health. Link faults add fixed
        // latency per attempt and transient loss stretches the expected
        // total; on healthy paths (`extra_s` 0, `stretch` 1) both terms
        // are bit-neutral. A failed endpoint (health 0) yields +∞: the
        // transfer never completes, i.e. zero measured bandwidth.
        let healthy = self.link.message_time(bytes, cost.hops, cost.sharing);
        Time::seconds((healthy.value() / cost.health + cost.extra_s) * cost.stretch)
    }

    /// Deterministic (noise-free) transfer time for one message.
    pub fn message_time(&self, from: NodeId, to: NodeId, bytes: Bytes) -> Time {
        self.message_time_with(&self.path_cost(from, to), bytes)
    }

    /// Measured transfer time: deterministic cost plus dynamic-contention
    /// noise for large messages (the paper's >1 MiB variability).
    pub fn measured_time(&self, from: NodeId, to: NodeId, bytes: Bytes, rng: &mut Pcg32) -> Time {
        let base = self.message_time(from, to, bytes);
        if bytes.value() >= 1024.0 * 1024.0 && self.large_msg_noise > 0.0 {
            // Contention only ever slows a transfer down: fold the lognormal
            // factor to ≥ 1.
            let factor = rng.lognormal_noise(self.large_msg_noise).max(1.0);
            Time::seconds(base.value() * factor)
        } else {
            base
        }
    }

    /// Bandwidth an OSU-style sendrecv loop reports for the pair.
    pub fn measured_bandwidth(
        &self,
        from: NodeId,
        to: NodeId,
        bytes: Bytes,
        rng: &mut Pcg32,
    ) -> Bandwidth {
        bytes / self.measured_time(from, to, bytes, rng)
    }

    /// The full node-pair bandwidth map at one message size (Fig. 4):
    /// `map[sender][receiver]` in GB/s. The diagonal (self-pairs) is 0.
    ///
    /// Prices every ordered pair, so the memoized routing table is built
    /// first; the RNG consumption stays strictly sequential, keeping the
    /// map bit-identical to the pre-table implementation.
    pub fn pairwise_bandwidth_map(&self, bytes: Bytes, rng: &mut Pcg32) -> Vec<Vec<f64>>
    where
        T: Sync,
    {
        self.routing_table();
        let n = self.topo.nodes();
        let mut map = vec![vec![0.0; n]; n];
        for (s, row) in map.iter_mut().enumerate() {
            for (r, cell) in row.iter_mut().enumerate() {
                if s != r {
                    *cell = self
                        .measured_bandwidth(NodeId(s), NodeId(r), bytes, rng)
                        .as_gb_per_sec();
                }
            }
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fattree::FatTree;
    use crate::tofu::TofuD;

    fn cte_net() -> Network<TofuD> {
        Network::new(TofuD::cte_arm(), LinkModel::tofud())
    }

    #[test]
    fn nearby_pairs_are_faster() {
        let net = cte_net();
        let near = net.message_time(NodeId(0), NodeId(1), Bytes::new(256.0));
        let far = net.message_time(NodeId(0), NodeId(100), Bytes::new(256.0));
        assert!(near < far);
    }

    #[test]
    fn receive_fault_is_asymmetric() {
        let bad = NodeId(23);
        let net = cte_net().with_degraded_node(bad, Degradation::receive_fault(0.1));
        let mut rng = Pcg32::seeded(1);
        let sz = Bytes::kib(256.0);
        let other = NodeId(100);
        let to_bad = net.measured_bandwidth(other, bad, sz, &mut rng).value();
        let from_bad = net.measured_bandwidth(bad, other, sz, &mut rng).value();
        assert!(
            from_bad > 3.0 * to_bad,
            "send {from_bad} should dwarf receive {to_bad}"
        );
    }

    #[test]
    fn large_messages_are_noisy_small_are_not() {
        let net = cte_net();
        let mut rng = Pcg32::seeded(2);
        let small: Vec<f64> = (0..50)
            .map(|_| {
                net.measured_time(NodeId(0), NodeId(50), Bytes::kib(4.0), &mut rng)
                    .value()
            })
            .collect();
        let large: Vec<f64> = (0..50)
            .map(|_| {
                net.measured_time(NodeId(0), NodeId(50), Bytes::mib(4.0), &mut rng)
                    .value()
            })
            .collect();
        let cv = |v: &[f64]| {
            let m = v.iter().sum::<f64>() / v.len() as f64;
            (v.iter().map(|x| (x - m).powi(2)).sum::<f64>() / v.len() as f64).sqrt() / m
        };
        assert!(cv(&small) < 1e-12, "small messages deterministic");
        assert!(cv(&large) > 0.05, "large messages vary");
    }

    #[test]
    fn pairwise_map_shape() {
        let net = cte_net();
        let mut rng = Pcg32::seeded(3);
        let map = net.pairwise_bandwidth_map(Bytes::new(256.0), &mut rng);
        assert_eq!(map.len(), 192);
        assert_eq!(map[0].len(), 192);
        assert_eq!(map[7][7], 0.0);
        assert!(map[0][1] > 0.0);
        // In-unit pair beats cross-machine pair.
        assert!(map[0][1] > map[0][180]);
    }

    #[test]
    fn self_message_is_cheap() {
        let net = cte_net();
        let t_self = net.message_time(NodeId(5), NodeId(5), Bytes::kib(1.0));
        let t_remote = net.message_time(NodeId(5), NodeId(6), Bytes::kib(1.0));
        assert!(t_self < t_remote);
    }

    #[test]
    fn fattree_network_works_too() {
        let net = Network::new(FatTree::marenostrum4(), LinkModel::omnipath());
        let same_leaf = net.message_time(NodeId(0), NodeId(3), Bytes::kib(1.0));
        let cross = net.message_time(NodeId(0), NodeId(40), Bytes::kib(1.0));
        assert!(same_leaf < cross);
    }

    #[test]
    fn path_cost_reuse_matches_direct_calls() {
        let bad = NodeId(23);
        let net = cte_net().with_degraded_node(bad, Degradation::receive_fault(0.1));
        for (a, b) in [(0usize, 0usize), (0, 1), (5, 23), (23, 5), (0, 180)] {
            let (a, b) = (NodeId(a), NodeId(b));
            let cost = net.path_cost(a, b);
            for bytes in [0.0, 256.0, 65536.0, 4.0e6] {
                let direct = net.message_time(a, b, Bytes::new(bytes));
                let cached = net.message_time_with(&cost, Bytes::new(bytes));
                assert_eq!(direct, cached, "pair ({a}, {b}) at {bytes} B");
            }
        }
    }

    #[test]
    fn table_path_is_bit_identical_to_direct_path() {
        let direct = cte_net();
        let cached = cte_net();
        cached.routing_table();
        for (a, b) in [(0usize, 1usize), (0, 100), (37, 154), (191, 0)] {
            let (a, b) = (NodeId(a), NodeId(b));
            for bytes in [256.0, 65536.0, 8.0e6] {
                let td = direct.message_time(a, b, Bytes::new(bytes));
                let tc = cached.message_time(a, b, Bytes::new(bytes));
                assert_eq!(
                    td.value().to_bits(),
                    tc.value().to_bits(),
                    "table lookup must not perturb the time model"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "rx_factor must be in (0, 1]")]
    fn degradation_rejects_factor_above_one() {
        // The original bug: receive_fault(1.5) silently produced a
        // faster-than-healthy endpoint (negative effective degradation).
        let _ = Degradation::receive_fault(1.5);
    }

    #[test]
    #[should_panic(expected = "rx_factor must be in (0, 1]")]
    fn degradation_rejects_zero_factor() {
        let _ = Degradation::new(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "tx_factor must be in (0, 1]")]
    fn degradation_rejects_negative_tx() {
        let _ = Degradation::new(0.5, -0.1);
    }

    #[test]
    #[should_panic(expected = "rx_factor must be in (0, 1]")]
    fn degradation_rejects_nan() {
        let _ = Degradation::receive_fault(f64::NAN);
    }

    #[test]
    fn degradation_accepts_boundary_values() {
        let d = Degradation::new(1.0, 1.0);
        assert_eq!((d.rx_factor, d.tx_factor), (1.0, 1.0));
        let d = Degradation::send_fault(0.001);
        assert_eq!(d.rx_factor, 1.0);
        assert_eq!(d.tx_factor, 0.001);
    }

    #[test]
    #[should_panic(expected = "must be in (0, 1]")]
    fn with_degraded_node_validates_direct_struct_literals() {
        // Fields are public; the builder re-checks them.
        let _ = cte_net().with_degraded_node(
            NodeId(0),
            Degradation {
                rx_factor: 2.0,
                tx_factor: 1.0,
            },
        );
    }

    #[test]
    fn link_fault_adds_latency_to_both_directions() {
        let bad = NodeId(7);
        let extra = Time::micros(15.0);
        let net = cte_net().with_link_fault(bad, extra);
        let clean = cte_net();
        for (a, b) in [(NodeId(7), NodeId(50)), (NodeId(50), NodeId(7))] {
            let t_fault = net.message_time(a, b, Bytes::new(256.0));
            let t_clean = clean.message_time(a, b, Bytes::new(256.0));
            assert!(
                (t_fault.value() - t_clean.value() - extra.value()).abs() < 1e-15,
                "extra latency must appear verbatim"
            );
        }
        // Unrelated pairs are untouched, bit for bit.
        let t_fault = net.message_time(NodeId(0), NodeId(50), Bytes::kib(4.0));
        let t_clean = clean.message_time(NodeId(0), NodeId(50), Bytes::kib(4.0));
        assert_eq!(t_fault.value().to_bits(), t_clean.value().to_bits());
    }

    #[test]
    fn retransmit_fault_stretches_expected_time() {
        let bad = NodeId(3);
        // q = 0.5 → expected attempts 2, expected timeout charge 1·timeout.
        let net = cte_net().with_retransmit_fault(bad, 0.5, Time::micros(10.0));
        let clean = cte_net();
        let t_fault = net.message_time(NodeId(0), bad, Bytes::kib(64.0)).value();
        let t_clean = clean.message_time(NodeId(0), bad, Bytes::kib(64.0)).value();
        let expected = (t_clean + 10.0e-6) * 2.0;
        assert!(
            (t_fault - expected).abs() < 1e-15,
            "expected {expected}, got {t_fault}"
        );
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn retransmit_fault_rejects_certain_loss() {
        let _ = cte_net().with_retransmit_fault(NodeId(0), 1.0, Time::micros(1.0));
    }

    #[test]
    fn failed_node_never_completes_a_transfer() {
        let dead = NodeId(42);
        let net = cte_net().with_failed_node(dead);
        assert!(net.is_failed(dead));
        assert!(!net.is_failed(NodeId(41)));
        assert_eq!(net.failed_nodes(), vec![dead]);
        let t = net.message_time(NodeId(0), dead, Bytes::kib(1.0));
        assert!(t.value().is_infinite(), "transfer to a failed node hangs");
        let mut rng = Pcg32::seeded(9);
        let bw = net.measured_bandwidth(dead, NodeId(0), Bytes::kib(1.0), &mut rng);
        assert_eq!(bw.value(), 0.0, "zero measured bandwidth");
        // Healthy pairs still price bit-identically to a clean network.
        let clean = cte_net();
        let a = net.message_time(NodeId(0), NodeId(1), Bytes::kib(1.0));
        let b = clean.message_time(NodeId(0), NodeId(1), Bytes::kib(1.0));
        assert_eq!(a.value().to_bits(), b.value().to_bits());
    }

    #[test]
    fn neutral_fault_fields_are_bit_transparent() {
        // The fault terms ride in the hot per-message formula; with no
        // faults installed they must not perturb a single bit.
        let net = cte_net();
        for (a, b) in [(0usize, 1usize), (0, 100), (37, 154), (191, 0)] {
            let cost = net.path_cost(NodeId(a), NodeId(b));
            assert_eq!(cost.extra_s, 0.0);
            assert_eq!(cost.stretch, 1.0);
            for bytes in [0.0, 256.0, 65536.0, 8.0e6] {
                let t = net.message_time_with(&cost, Bytes::new(bytes));
                let healthy = net
                    .link
                    .message_time(Bytes::new(bytes), cost.hops, cost.sharing);
                assert_eq!(
                    t.value().to_bits(),
                    (healthy.value() / cost.health).to_bits()
                );
            }
        }
    }

    #[test]
    fn noise_can_be_disabled() {
        let net = cte_net().with_large_msg_noise(0.0);
        let mut rng = Pcg32::seeded(4);
        let a = net.measured_time(NodeId(0), NodeId(9), Bytes::mib(8.0), &mut rng);
        let b = net.measured_time(NodeId(0), NodeId(9), Bytes::mib(8.0), &mut rng);
        assert_eq!(a, b);
    }
}
