//! A network: topology + link model + per-node health + measurement noise.

use crate::link::LinkModel;
use crate::topology::{check_node, NodeId, Topology};
use simkit::rng::Pcg32;
use simkit::units::{Bandwidth, Bytes, Time};
use std::collections::HashMap;

/// Asymmetric per-node bandwidth degradation.
///
/// The paper's Fig. 4 shows node `arms0b1-11c` achieving very low bandwidth
/// *as a receiver* while performing normally *as a sender* — consistent with
/// a faulty receive-side DMA engine or a mis-trained link lane. The factors
/// scale the effective bandwidth of messages arriving at / departing from
/// the node.
#[derive(Debug, Clone, Copy)]
pub struct Degradation {
    /// Multiplier on receive-side bandwidth, `(0, 1]`.
    pub rx_factor: f64,
    /// Multiplier on send-side bandwidth, `(0, 1]`.
    pub tx_factor: f64,
}

impl Degradation {
    /// A receive-only fault like the one in the paper.
    pub fn receive_fault(rx_factor: f64) -> Self {
        Self {
            rx_factor,
            tx_factor: 1.0,
        }
    }
}

/// A complete network model.
pub struct Network<T: Topology> {
    topo: T,
    link: LinkModel,
    degraded: HashMap<usize, Degradation>,
    /// Lognormal sigma of dynamic-contention noise for messages ≥ 1 MiB.
    /// The paper observes high run-to-run variability only above 2^20 B.
    large_msg_noise: f64,
}

impl<T: Topology> Network<T> {
    /// Build a healthy network.
    pub fn new(topo: T, link: LinkModel) -> Self {
        Self {
            topo,
            link,
            degraded: HashMap::new(),
            large_msg_noise: 0.25,
        }
    }

    /// Mark a node as degraded.
    pub fn with_degraded_node(mut self, node: NodeId, d: Degradation) -> Self {
        check_node(&self.topo, node);
        self.degraded.insert(node.index(), d);
        self
    }

    /// Override the large-message noise sigma (0 disables it).
    pub fn with_large_msg_noise(mut self, sigma: f64) -> Self {
        assert!(sigma >= 0.0, "noise sigma must be non-negative");
        self.large_msg_noise = sigma;
        self
    }

    /// The topology.
    pub fn topology(&self) -> &T {
        &self.topo
    }

    /// The link model.
    pub fn link(&self) -> &LinkModel {
        &self.link
    }

    /// Bandwidth derate for the (sender, receiver) pair from node health.
    fn health_factor(&self, from: NodeId, to: NodeId) -> f64 {
        let tx = self
            .degraded
            .get(&from.index())
            .map_or(1.0, |d| d.tx_factor);
        let rx = self.degraded.get(&to.index()).map_or(1.0, |d| d.rx_factor);
        tx * rx
    }

    /// Deterministic (noise-free) transfer time for one message.
    pub fn message_time(&self, from: NodeId, to: NodeId, bytes: Bytes) -> Time {
        check_node(&self.topo, from);
        check_node(&self.topo, to);
        if from == to {
            // Intra-node copy through shared memory: model as half the
            // software overhead, no hops.
            return self.link.sw_overhead * 0.5 + bytes / Bandwidth::gb_per_sec(20.0);
        }
        let hops = self.topo.hops(from, to);
        let sharing = self.topo.sharing(from, to);
        let health = self.health_factor(from, to);
        // A degraded endpoint (mis-trained lane, faulty DMA engine) forces
        // per-packet retransmits, stretching the whole transfer — latency
        // and serialization alike — by 1/health.
        let healthy = self.link.message_time(bytes, hops, sharing);
        Time::seconds(healthy.value() / health)
    }

    /// Measured transfer time: deterministic cost plus dynamic-contention
    /// noise for large messages (the paper's >1 MiB variability).
    pub fn measured_time(&self, from: NodeId, to: NodeId, bytes: Bytes, rng: &mut Pcg32) -> Time {
        let base = self.message_time(from, to, bytes);
        if bytes.value() >= 1024.0 * 1024.0 && self.large_msg_noise > 0.0 {
            // Contention only ever slows a transfer down: fold the lognormal
            // factor to ≥ 1.
            let factor = rng.lognormal_noise(self.large_msg_noise).max(1.0);
            Time::seconds(base.value() * factor)
        } else {
            base
        }
    }

    /// Bandwidth an OSU-style sendrecv loop reports for the pair.
    pub fn measured_bandwidth(
        &self,
        from: NodeId,
        to: NodeId,
        bytes: Bytes,
        rng: &mut Pcg32,
    ) -> Bandwidth {
        bytes / self.measured_time(from, to, bytes, rng)
    }

    /// The full node-pair bandwidth map at one message size (Fig. 4):
    /// `map[sender][receiver]` in GB/s. The diagonal (self-pairs) is 0.
    pub fn pairwise_bandwidth_map(&self, bytes: Bytes, rng: &mut Pcg32) -> Vec<Vec<f64>> {
        let n = self.topo.nodes();
        let mut map = vec![vec![0.0; n]; n];
        for (s, row) in map.iter_mut().enumerate() {
            for (r, cell) in row.iter_mut().enumerate() {
                if s != r {
                    *cell = self
                        .measured_bandwidth(NodeId(s), NodeId(r), bytes, rng)
                        .as_gb_per_sec();
                }
            }
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fattree::FatTree;
    use crate::tofu::TofuD;

    fn cte_net() -> Network<TofuD> {
        Network::new(TofuD::cte_arm(), LinkModel::tofud())
    }

    #[test]
    fn nearby_pairs_are_faster() {
        let net = cte_net();
        let near = net.message_time(NodeId(0), NodeId(1), Bytes::new(256.0));
        let far = net.message_time(NodeId(0), NodeId(100), Bytes::new(256.0));
        assert!(near < far);
    }

    #[test]
    fn receive_fault_is_asymmetric() {
        let bad = NodeId(23);
        let net = cte_net().with_degraded_node(bad, Degradation::receive_fault(0.1));
        let mut rng = Pcg32::seeded(1);
        let sz = Bytes::kib(256.0);
        let other = NodeId(100);
        let to_bad = net.measured_bandwidth(other, bad, sz, &mut rng).value();
        let from_bad = net.measured_bandwidth(bad, other, sz, &mut rng).value();
        assert!(
            from_bad > 3.0 * to_bad,
            "send {from_bad} should dwarf receive {to_bad}"
        );
    }

    #[test]
    fn large_messages_are_noisy_small_are_not() {
        let net = cte_net();
        let mut rng = Pcg32::seeded(2);
        let small: Vec<f64> = (0..50)
            .map(|_| {
                net.measured_time(NodeId(0), NodeId(50), Bytes::kib(4.0), &mut rng)
                    .value()
            })
            .collect();
        let large: Vec<f64> = (0..50)
            .map(|_| {
                net.measured_time(NodeId(0), NodeId(50), Bytes::mib(4.0), &mut rng)
                    .value()
            })
            .collect();
        let cv = |v: &[f64]| {
            let m = v.iter().sum::<f64>() / v.len() as f64;
            (v.iter().map(|x| (x - m).powi(2)).sum::<f64>() / v.len() as f64).sqrt() / m
        };
        assert!(cv(&small) < 1e-12, "small messages deterministic");
        assert!(cv(&large) > 0.05, "large messages vary");
    }

    #[test]
    fn pairwise_map_shape() {
        let net = cte_net();
        let mut rng = Pcg32::seeded(3);
        let map = net.pairwise_bandwidth_map(Bytes::new(256.0), &mut rng);
        assert_eq!(map.len(), 192);
        assert_eq!(map[0].len(), 192);
        assert_eq!(map[7][7], 0.0);
        assert!(map[0][1] > 0.0);
        // In-unit pair beats cross-machine pair.
        assert!(map[0][1] > map[0][180]);
    }

    #[test]
    fn self_message_is_cheap() {
        let net = cte_net();
        let t_self = net.message_time(NodeId(5), NodeId(5), Bytes::kib(1.0));
        let t_remote = net.message_time(NodeId(5), NodeId(6), Bytes::kib(1.0));
        assert!(t_self < t_remote);
    }

    #[test]
    fn fattree_network_works_too() {
        let net = Network::new(FatTree::marenostrum4(), LinkModel::omnipath());
        let same_leaf = net.message_time(NodeId(0), NodeId(3), Bytes::kib(1.0));
        let cross = net.message_time(NodeId(0), NodeId(40), Bytes::kib(1.0));
        assert!(same_leaf < cross);
    }

    #[test]
    fn noise_can_be_disabled() {
        let net = cte_net().with_large_msg_noise(0.0);
        let mut rng = Pcg32::seeded(4);
        let a = net.measured_time(NodeId(0), NodeId(9), Bytes::mib(8.0), &mut rng);
        let b = net.measured_time(NodeId(0), NodeId(9), Bytes::mib(8.0), &mut rng);
        assert_eq!(a, b);
    }
}
