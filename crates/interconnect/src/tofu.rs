//! The TofuD six-dimensional torus/mesh.
//!
//! TofuD organizes nodes in six dimensions `(X, Y, Z, A, B, C)`. The inner
//! `(A, B, C) = (2, 3, 2)` block of 12 nodes is the *Tofu unit* (one rack
//! shelf); `A` and `C` are size-2 meshes, `B` is a size-3 torus. The outer
//! `X, Y, Z` dimensions are tori connecting the units. Dimension-ordered
//! minimal routing gives the hop count as the sum of per-dimension
//! distances.
//!
//! CTE-Arm's 192 nodes map onto `(X, Y, Z) = (4, 2, 2)` units of 12.

use crate::topology::{check_node, NodeId, Topology};
use serde::{Deserialize, Serialize};

/// Number of dimensions in a Tofu coordinate.
pub const DIMS: usize = 6;

/// A TofuD torus/mesh description.
///
/// ```
/// use interconnect::{tofu::TofuD, topology::{NodeId, Topology}};
/// let t = TofuD::cte_arm();
/// assert_eq!(t.nodes(), 192);
/// // Consecutive ids share a 12-node Tofu unit.
/// assert!(t.same_unit(NodeId(0), NodeId(11)));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TofuD {
    /// Extent of each dimension, order `[X, Y, Z, A, B, C]`.
    pub dims: [usize; DIMS],
    /// Whether each dimension wraps (torus) or not (mesh).
    pub periodic: [bool; DIMS],
}

impl TofuD {
    /// The CTE-Arm configuration: 192 nodes = (4 × 2 × 2) units × (2 × 3 × 2).
    pub fn cte_arm() -> Self {
        Self {
            dims: [4, 2, 2, 2, 3, 2],
            // X, Y, Z and B are tori; A and C are meshes, per the TofuD
            // architecture (Ajima et al., CLUSTER 2018).
            periodic: [true, true, true, false, true, false],
        }
    }

    /// A custom geometry (e.g. Fugaku-scale studies).
    ///
    /// # Panics
    /// Panics if any dimension is zero.
    pub fn with_dims(dims: [usize; DIMS], periodic: [bool; DIMS]) -> Self {
        assert!(dims.iter().all(|&d| d > 0), "zero-extent dimension");
        Self { dims, periodic }
    }

    /// Mixed-radix decode of a node id into coordinates. The *innermost*
    /// (fastest-varying) dimension is `C`, so consecutive node ids sit in
    /// the same Tofu unit — which is what produces the diagonal bands in
    /// the paper's Fig. 4 node-pair map.
    pub fn coords(&self, n: NodeId) -> [usize; DIMS] {
        check_node(self, n);
        let mut rem = n.index();
        let mut c = [0; DIMS];
        for i in (0..DIMS).rev() {
            c[i] = rem % self.dims[i];
            rem /= self.dims[i];
        }
        c
    }

    /// Advance coordinates to the next node id in odometer order (the
    /// inverse-decode of `id + 1`), wrapping to all-zeros after the last
    /// id. O(1) amortized — the incremental companion to
    /// [`coords`](Self::coords) for id-ordered sweeps, which would
    /// otherwise pay six integer divisions per node.
    #[inline]
    pub fn advance_coords(&self, c: &mut [usize; DIMS]) {
        for d in (0..DIMS).rev() {
            c[d] += 1;
            if c[d] < self.dims[d] {
                return;
            }
            c[d] = 0;
        }
    }

    /// Inverse of [`coords`](Self::coords).
    pub fn node_at(&self, coords: [usize; DIMS]) -> NodeId {
        let mut id = 0;
        for (&c, &d) in coords.iter().zip(&self.dims) {
            assert!(c < d, "coordinate out of range");
            id = id * d + c;
        }
        NodeId(id)
    }

    /// Distance along one dimension under its wrap rule.
    fn dim_distance(&self, i: usize, a: usize, b: usize) -> usize {
        let d = a.abs_diff(b);
        if self.periodic[i] {
            d.min(self.dims[i] - d)
        } else {
            d
        }
    }

    /// True when both nodes lie in the same Tofu unit (equal X, Y, Z).
    pub fn same_unit(&self, a: NodeId, b: NodeId) -> bool {
        let ca = self.coords(a);
        let cb = self.coords(b);
        ca[..3] == cb[..3]
    }
}

impl Topology for TofuD {
    fn nodes(&self) -> usize {
        self.dims.iter().product()
    }

    fn hops(&self, a: NodeId, b: NodeId) -> usize {
        let ca = self.coords(a);
        let cb = self.coords(b);
        (0..DIMS).map(|i| self.dim_distance(i, ca[i], cb[i])).sum()
    }

    fn sharing(&self, a: NodeId, b: NodeId) -> f64 {
        // Routes that leave the Tofu unit ride the shared X/Y/Z trunk links;
        // static dimension-ordered routing makes distinct pairs collide on
        // them, halving the effective per-pair capacity. This two-class
        // structure is the source of the bimodal bandwidth distribution the
        // paper observes for mid-sized messages (Fig. 5).
        if self.same_unit(a, b) {
            1.0
        } else {
            2.0
        }
    }

    fn name(&self) -> &str {
        "TofuD"
    }

    fn diameter(&self) -> usize {
        (0..DIMS)
            .map(|i| {
                let max_d = self.dims[i] - 1;
                if self.periodic[i] {
                    self.dims[i] / 2
                } else {
                    max_d
                }
            })
            .sum()
    }

    /// Per-dimension histogram fold: mean pairwise hops of a sorted node
    /// set without enumerating pairs (see [`crate::folded::set_mean_hops`]).
    fn set_mean_hops(&self, nodes: &[NodeId]) -> Option<f64> {
        crate::folded::set_mean_hops(self, nodes)
    }

    /// Torus translation symmetry folds the pair table to one entry per
    /// coordinate-offset class — memory independent of the pair count, so
    /// full-Fugaku networks stay under 10 MB instead of ~100 GB dense.
    fn pair_table(&self) -> crate::table::PairTable {
        crate::table::PairTable::Folded(crate::folded::FoldedTable::build(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cte_arm_has_192_nodes() {
        assert_eq!(TofuD::cte_arm().nodes(), 192);
    }

    #[test]
    fn coords_roundtrip() {
        let t = TofuD::cte_arm();
        for i in 0..t.nodes() {
            let n = NodeId(i);
            assert_eq!(t.node_at(t.coords(n)), n);
        }
    }

    #[test]
    fn advance_coords_matches_decode_in_id_order() {
        let t = TofuD::cte_arm();
        let mut c = [0; DIMS];
        for i in 0..t.nodes() {
            assert_eq!(c, t.coords(NodeId(i)), "odometer diverged at id {i}");
            t.advance_coords(&mut c);
        }
        assert_eq!(c, [0; DIMS], "odometer wraps to the origin");
    }

    #[test]
    fn self_distance_is_zero() {
        let t = TofuD::cte_arm();
        assert_eq!(t.hops(NodeId(17), NodeId(17)), 0);
    }

    #[test]
    fn hops_symmetric() {
        let t = TofuD::cte_arm();
        for a in (0..192).step_by(7) {
            for b in (0..192).step_by(11) {
                assert_eq!(t.hops(NodeId(a), NodeId(b)), t.hops(NodeId(b), NodeId(a)));
            }
        }
    }

    #[test]
    fn triangle_inequality_holds() {
        let t = TofuD::cte_arm();
        for a in (0..192).step_by(13) {
            for b in (0..192).step_by(17) {
                for c in (0..192).step_by(19) {
                    let (a, b, c) = (NodeId(a), NodeId(b), NodeId(c));
                    assert!(t.hops(a, c) <= t.hops(a, b) + t.hops(b, c));
                }
            }
        }
    }

    #[test]
    fn torus_wraps_and_mesh_does_not() {
        // X is a size-4 torus: distance between x=0 and x=3 is 1.
        let t = TofuD::cte_arm();
        let a = t.node_at([0, 0, 0, 0, 0, 0]);
        let b = t.node_at([3, 0, 0, 0, 0, 0]);
        assert_eq!(t.hops(a, b), 1);
        // A is a size-2 mesh: distance between a=0 and a=1 is 1 either way,
        // but B as size-3 torus wraps: b=0 to b=2 is 1.
        let c = t.node_at([0, 0, 0, 0, 2, 0]);
        assert_eq!(t.hops(a, c), 1);
    }

    #[test]
    fn consecutive_ids_share_a_unit() {
        let t = TofuD::cte_arm();
        assert!(t.same_unit(NodeId(0), NodeId(11)));
        assert!(!t.same_unit(NodeId(0), NodeId(12)));
        assert_eq!(t.sharing(NodeId(0), NodeId(5)), 1.0);
        assert_eq!(t.sharing(NodeId(0), NodeId(100)), 2.0);
    }

    #[test]
    fn diameter_closed_form_matches_scan() {
        let small = TofuD::with_dims([2, 2, 1, 2, 3, 2], [true, true, true, false, true, false]);
        let scan = {
            let n = small.nodes();
            let mut d = 0;
            for a in 0..n {
                for b in 0..n {
                    d = d.max(small.hops(NodeId(a), NodeId(b)));
                }
            }
            d
        };
        assert_eq!(small.diameter(), scan);
    }

    #[test]
    #[should_panic(expected = "zero-extent")]
    fn zero_dim_rejected() {
        TofuD::with_dims([0, 1, 1, 1, 1, 1], [true; 6]);
    }

    #[test]
    #[should_panic(expected = "coordinate out of range")]
    fn bad_coordinate_rejected() {
        TofuD::cte_arm().node_at([4, 0, 0, 0, 0, 0]);
    }
}
