//! A two-level fat-tree, modelling MareNostrum 4's OmniPath fabric.
//!
//! Nodes hang off leaf (edge) switches; leaves connect to a spine layer.
//! Pairs under the same leaf take 2 hops (node→leaf→node); pairs under
//! different leaves take 4 (node→leaf→spine→leaf→node). The uplink layer is
//! tapered (MareNostrum 4 runs close to 2:1), so cross-leaf routes share
//! capacity.

use crate::topology::{check_node, NodeId, Topology};
use serde::{Deserialize, Serialize};

/// Fat-tree description.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FatTree {
    /// Total nodes.
    pub n_nodes: usize,
    /// Nodes per leaf switch.
    pub leaf_size: usize,
    /// Uplink taper: 1.0 = full bisection, 2.0 = half bisection (2:1).
    pub taper: f64,
}

impl FatTree {
    /// MareNostrum 4: 3456 nodes, 32-port leaves, ~2:1 taper to the spine.
    pub fn marenostrum4() -> Self {
        Self {
            n_nodes: 3456,
            leaf_size: 32,
            taper: 2.0,
        }
    }

    /// Custom geometry.
    ///
    /// # Panics
    /// Panics on a zero node count, zero leaf size or taper < 1.
    pub fn with_geometry(n_nodes: usize, leaf_size: usize, taper: f64) -> Self {
        assert!(n_nodes > 0 && leaf_size > 0, "degenerate fat-tree");
        assert!(taper >= 1.0, "taper must be ≥ 1");
        Self {
            n_nodes,
            leaf_size,
            taper,
        }
    }

    /// Which leaf switch a node hangs off.
    pub fn leaf_of(&self, n: NodeId) -> usize {
        check_node(self, n);
        n.index() / self.leaf_size
    }
}

impl Topology for FatTree {
    fn nodes(&self) -> usize {
        self.n_nodes
    }

    fn hops(&self, a: NodeId, b: NodeId) -> usize {
        if a == b {
            0
        } else if self.leaf_of(a) == self.leaf_of(b) {
            2
        } else {
            4
        }
    }

    fn sharing(&self, a: NodeId, b: NodeId) -> f64 {
        if a == b || self.leaf_of(a) == self.leaf_of(b) {
            1.0
        } else {
            self.taper
        }
    }

    fn name(&self) -> &str {
        "OmniPath fat-tree"
    }

    fn diameter(&self) -> usize {
        if self.n_nodes <= self.leaf_size {
            2
        } else {
            4
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mn4_geometry() {
        let t = FatTree::marenostrum4();
        assert_eq!(t.nodes(), 3456);
        assert_eq!(t.diameter(), 4);
    }

    #[test]
    fn hop_classes() {
        let t = FatTree::marenostrum4();
        assert_eq!(t.hops(NodeId(0), NodeId(0)), 0);
        assert_eq!(t.hops(NodeId(0), NodeId(31)), 2);
        assert_eq!(t.hops(NodeId(0), NodeId(32)), 4);
        assert_eq!(t.hops(NodeId(100), NodeId(3455)), 4);
    }

    #[test]
    fn sharing_reflects_taper() {
        let t = FatTree::marenostrum4();
        assert_eq!(t.sharing(NodeId(0), NodeId(5)), 1.0);
        assert_eq!(t.sharing(NodeId(0), NodeId(64)), 2.0);
    }

    #[test]
    fn single_leaf_tree_diameter() {
        let t = FatTree::with_geometry(16, 32, 1.0);
        assert_eq!(t.diameter(), 2);
    }

    #[test]
    #[should_panic(expected = "taper")]
    fn bad_taper_rejected() {
        FatTree::with_geometry(8, 4, 0.5);
    }
}
