//! Memoized all-pairs routing metadata: the interconnect fast path.
//!
//! Every sweep in the evaluation — mean-pairwise-hops placement scoring,
//! uniform-traffic link loads, the Fig. 4 node-pair bandwidth map — asks a
//! topology for `hops(a, b)` and `sharing(a, b)` over millions of pairs.
//! On [`TofuD`](crate::tofu::TofuD) each of those calls performs two
//! mixed-radix coordinate decodes (twelve integer divisions); a
//! [`RoutingTable`] pays that cost once per topology and turns both
//! queries into flat-array lookups.
//!
//! Layout: one `u16` hop count per ordered pair plus one `u16` *sharing
//! class* per ordered pair indexing a small palette of exact `f64` sharing
//! factors (real topologies have 2–3 distinct values, so interning them
//! keeps the table at 4 bytes/pair without rounding the factors — the
//! time model stays bit-identical). Hop rows are filled in parallel over
//! the rayon pool; rows are independent, so the result does not depend on
//! the thread count.
//!
//! A `RoutingTable` implements [`Topology`] itself, so any sweep that is
//! generic over topologies can run against the cached table unchanged.

use crate::folded::FoldedTable;
use crate::topology::{NodeId, Topology};
use rayon::prelude::*;

/// The memoized pair table a [`crate::network::Network`] consults on its
/// fast path, selected per topology: tori fold by translation symmetry
/// ([`FoldedTable`], `O(#offset-classes)` memory), everything else keeps
/// the dense all-pairs [`RoutingTable`]. Both variants answer `hops` and
/// `sharing` bit-for-bit identically to the topology's own methods.
#[derive(Debug, Clone, PartialEq)]
pub enum PairTable {
    /// Dense 4-bytes-per-ordered-pair memo (fat trees, small machines).
    Dense(RoutingTable),
    /// Symmetry-folded per-offset-class memo (TofuD at any scale).
    Folded(FoldedTable),
}

impl PairTable {
    /// Hop count of the ordered pair.
    #[inline]
    pub fn hops(&self, a: NodeId, b: NodeId) -> usize {
        match self {
            PairTable::Dense(t) => t.hops(a, b),
            PairTable::Folded(t) => t.hops(a, b),
        }
    }

    /// Sharing factor of the ordered pair.
    #[inline]
    pub fn sharing(&self, a: NodeId, b: NodeId) -> f64 {
        match self {
            PairTable::Dense(t) => t.sharing(a, b),
            PairTable::Folded(t) => t.sharing(a, b),
        }
    }

    /// Number of nodes the table covers.
    pub fn nodes(&self) -> usize {
        match self {
            PairTable::Dense(t) => t.nodes(),
            PairTable::Folded(t) => t.nodes(),
        }
    }

    /// The distinct sharing factors of the table.
    pub fn sharing_classes(&self) -> &[f64] {
        match self {
            PairTable::Dense(t) => t.sharing_classes(),
            PairTable::Folded(t) => t.sharing_classes(),
        }
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        match self {
            PairTable::Dense(t) => t.memory_bytes(),
            PairTable::Folded(t) => t.memory_bytes(),
        }
    }
}

impl Topology for PairTable {
    fn nodes(&self) -> usize {
        PairTable::nodes(self)
    }

    fn hops(&self, a: NodeId, b: NodeId) -> usize {
        PairTable::hops(self, a, b)
    }

    fn sharing(&self, a: NodeId, b: NodeId) -> f64 {
        PairTable::sharing(self, a, b)
    }

    fn name(&self) -> &str {
        match self {
            PairTable::Dense(t) => Topology::name(t),
            PairTable::Folded(t) => Topology::name(t),
        }
    }

    fn diameter(&self) -> usize {
        match self {
            PairTable::Dense(t) => Topology::diameter(t),
            PairTable::Folded(t) => Topology::diameter(t),
        }
    }
}

/// Flat-array memo of `hops` and `sharing` for every ordered node pair.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutingTable {
    n: usize,
    name: String,
    hops: Vec<u16>,
    class: Vec<u16>,
    palette: Vec<f64>,
    diameter: usize,
}

impl RoutingTable {
    /// Build the table from any topology. `O(n²)` trait queries, done
    /// once; hop rows are computed in parallel.
    ///
    /// # Panics
    /// Panics if a hop count exceeds `u16::MAX` or the topology has more
    /// than `u16::MAX + 1` distinct sharing factors.
    pub fn build<T: Topology + Sync>(topo: &T) -> Self {
        let n = topo.nodes();
        let mut hops = vec![0u16; n * n];
        hops.par_chunks_mut(n).enumerate().for_each(|(a, row)| {
            for (b, h) in row.iter_mut().enumerate() {
                let d = topo.hops(NodeId(a), NodeId(b));
                assert!(d <= u16::MAX as usize, "hop count {d} overflows u16");
                *h = d as u16;
            }
        });
        // Sharing factors are interned into a palette so they stay exact
        // f64s. Discovery is order-dependent, so this pass is sequential;
        // the palette scan is O(#classes) ≈ 2 per pair.
        let mut class = vec![0u16; n * n];
        let mut palette: Vec<f64> = Vec::new();
        for a in 0..n {
            for b in 0..n {
                let s = topo.sharing(NodeId(a), NodeId(b));
                let idx = match palette.iter().position(|&p| p == s) {
                    Some(i) => i,
                    None => {
                        palette.push(s);
                        assert!(
                            palette.len() <= u16::MAX as usize + 1,
                            "more than 65536 distinct sharing factors"
                        );
                        palette.len() - 1
                    }
                };
                class[a * n + b] = idx as u16;
            }
        }
        let diameter = hops.iter().copied().max().unwrap_or(0) as usize;
        Self {
            n,
            name: format!("{} (cached)", topo.name()),
            hops,
            class,
            palette,
            diameter,
        }
    }

    /// Hop count of the ordered pair, as a flat lookup.
    #[inline]
    pub fn hops(&self, a: NodeId, b: NodeId) -> usize {
        self.hops[a.index() * self.n + b.index()] as usize
    }

    /// Sharing factor of the ordered pair, as a flat lookup.
    #[inline]
    pub fn sharing(&self, a: NodeId, b: NodeId) -> f64 {
        self.palette[self.class[a.index() * self.n + b.index()] as usize]
    }

    /// Number of nodes the table covers.
    pub fn nodes(&self) -> usize {
        self.n
    }

    /// The distinct sharing factors seen while building.
    pub fn sharing_classes(&self) -> &[f64] {
        &self.palette
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.hops.len() * 2 + self.class.len() * 2 + self.palette.len() * 8
    }
}

impl Topology for RoutingTable {
    fn nodes(&self) -> usize {
        self.n
    }

    fn hops(&self, a: NodeId, b: NodeId) -> usize {
        RoutingTable::hops(self, a, b)
    }

    fn sharing(&self, a: NodeId, b: NodeId) -> f64 {
        RoutingTable::sharing(self, a, b)
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn diameter(&self) -> usize {
        self.diameter
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fattree::FatTree;
    use crate::tofu::TofuD;

    #[test]
    fn table_agrees_with_tofu_direct() {
        let t = TofuD::cte_arm();
        let table = RoutingTable::build(&t);
        assert_eq!(table.nodes(), 192);
        for a in (0..192).step_by(5) {
            for b in (0..192).step_by(7) {
                let (a, b) = (NodeId(a), NodeId(b));
                assert_eq!(table.hops(a, b), t.hops(a, b));
                assert_eq!(table.sharing(a, b), t.sharing(a, b));
            }
        }
        assert_eq!(Topology::diameter(&table), t.diameter());
        assert_eq!(table.sharing_classes(), &[1.0, 2.0]);
    }

    #[test]
    fn table_agrees_with_fattree_direct() {
        let t = FatTree::with_geometry(96, 32, 2.0);
        let table = RoutingTable::build(&t);
        for a in 0..96 {
            for b in 0..96 {
                let (a, b) = (NodeId(a), NodeId(b));
                assert_eq!(table.hops(a, b), t.hops(a, b));
                assert_eq!(table.sharing(a, b), t.sharing(a, b));
            }
        }
    }

    #[test]
    fn table_is_a_topology() {
        let t = TofuD::cte_arm();
        let table = RoutingTable::build(&t);
        // Generic sweeps run against the cached table unchanged.
        let nodes: Vec<NodeId> = (0..24).map(NodeId).collect();
        let direct = crate::placement::mean_pairwise_hops(&t, &nodes);
        let cached = crate::placement::mean_pairwise_hops(&table, &nodes);
        assert_eq!(direct.to_bits(), cached.to_bits());
        assert!(table.name().contains("TofuD"));
    }

    #[test]
    fn memory_footprint_is_four_bytes_per_pair() {
        let t = TofuD::cte_arm();
        let table = RoutingTable::build(&t);
        let pairs = 192 * 192;
        assert!(table.memory_bytes() >= 4 * pairs);
        assert!(table.memory_bytes() < 4 * pairs + 64);
    }
}
