//! CTE-Arm hostname ↔ node-id mapping.
//!
//! The paper identifies its degraded node by hostname, `arms0b1-11c`.
//! CTE-Arm names follow Fujitsu's rack/board/shelf convention:
//! `arms<rack>b<board>-<shelf><slot>` with rack 0–3, board 0–3 within the
//! rack, shelf 10–12 on the board and slot letter `a`–`d` — 4 × 4 boards
//! of 12 nodes (one Tofu unit per board) = 192 nodes. This module is the
//! bidirectional codec, so diagnostics like `network_doctor` can speak the
//! operators' language.

use crate::topology::NodeId;

/// Nodes per board (one Tofu unit).
pub const NODES_PER_BOARD: usize = 12;
/// Boards per rack.
pub const BOARDS_PER_RACK: usize = 4;
/// Racks in CTE-Arm.
pub const RACKS: usize = 4;
/// Shelf numbering starts here on each board.
const SHELF_BASE: usize = 10;

/// Render the hostname of a node id.
///
/// # Panics
/// Panics for ids outside the 192-node machine.
pub fn hostname(node: NodeId) -> String {
    assert!(
        node.index() < RACKS * BOARDS_PER_RACK * NODES_PER_BOARD,
        "node {node} outside CTE-Arm"
    );
    let idx = node.index();
    let rack = idx / (BOARDS_PER_RACK * NODES_PER_BOARD);
    let board = (idx / NODES_PER_BOARD) % BOARDS_PER_RACK;
    let within = idx % NODES_PER_BOARD;
    let shelf = SHELF_BASE + within / 4;
    let slot = (b'a' + (within % 4) as u8) as char;
    format!("arms{rack}b{board}-{shelf}{slot}")
}

/// Parse a hostname back to its node id. Returns `None` for malformed
/// names or out-of-range fields.
pub fn parse_hostname(name: &str) -> Option<NodeId> {
    let rest = name.strip_prefix("arms")?;
    let (rack_board, shelf_slot) = rest.split_once('-')?;
    let (rack_s, board_s) = rack_board.split_once('b')?;
    let rack: usize = rack_s.parse().ok()?;
    let board: usize = board_s.parse().ok()?;
    if rack >= RACKS || board >= BOARDS_PER_RACK || shelf_slot.len() < 2 {
        return None;
    }
    let slot = shelf_slot.chars().last()?;
    let shelf: usize = shelf_slot[..shelf_slot.len() - 1].parse().ok()?;
    let shelf = shelf.checked_sub(SHELF_BASE)?;
    if shelf >= NODES_PER_BOARD / 4 {
        return None;
    }
    let slot_idx = (slot as u8).checked_sub(b'a')? as usize;
    if slot_idx >= 4 {
        return None;
    }
    let within = shelf * 4 + slot_idx;
    Some(NodeId(
        (rack * BOARDS_PER_RACK + board) * NODES_PER_BOARD + within,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_192_nodes() {
        for i in 0..192 {
            let name = hostname(NodeId(i));
            assert_eq!(
                parse_hostname(&name),
                Some(NodeId(i)),
                "roundtrip for {name}"
            );
        }
    }

    #[test]
    fn the_papers_degraded_node() {
        // `arms0b1-11c`: rack 0, board 1, shelf 11, slot c
        // -> within = (11−10)·4 + 2 = 6 -> id = 1·12 + 6 = 18.
        let node = parse_hostname("arms0b1-11c").expect("valid name");
        assert_eq!(node, NodeId(18));
        assert_eq!(hostname(node), "arms0b1-11c");
    }

    #[test]
    fn malformed_names_rejected() {
        for bad in [
            "",
            "arms",
            "armsXb1-11c",
            "arms0b9-11c",
            "arms9b0-10a",
            "arms0b1-09a",
            "arms0b1-13a",
            "arms0b1-11z",
            "node042",
        ] {
            assert_eq!(parse_hostname(bad), None, "{bad} must not parse");
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<String> = (0..192).map(|i| hostname(NodeId(i))).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 192);
    }

    #[test]
    fn same_board_means_same_tofu_unit() {
        use crate::tofu::TofuD;
        let t = TofuD::cte_arm();
        let a = parse_hostname("arms0b0-10a").unwrap();
        let b = parse_hostname("arms0b0-12d").unwrap();
        assert!(t.same_unit(a, b), "one board = one Tofu unit");
        let c = parse_hostname("arms0b1-10a").unwrap();
        assert!(!t.same_unit(a, c), "different boards differ");
    }

    #[test]
    #[should_panic(expected = "outside CTE-Arm")]
    fn out_of_range_panics() {
        hostname(NodeId(192));
    }
}
