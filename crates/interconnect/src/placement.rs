//! Job placement policies.
//!
//! CTE-Arm's scheduler is topology-aware: it allocates jobs on contiguous
//! Tofu coordinates to minimize hop counts (Section II). It does *not* let
//! users pick specific nodes (one of the paper's usability complaints). The
//! random allocator exists for the ablation study quantifying what
//! topology-awareness buys.

use crate::topology::{NodeId, Topology};
use rayon::prelude::*;
use simkit::rng::Pcg32;

/// A placement policy: choose `n` nodes for a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Contiguous block of node ids — on TofuD consecutive ids share Tofu
    /// units, so this is the topology-aware allocation.
    ContiguousBlock,
    /// Uniformly random nodes (fragmented-cluster worst case).
    Random,
}

/// Allocate `n` nodes from a topology under a policy. The RNG is only used
/// by [`Placement::Random`].
///
/// # Panics
/// Panics if `n` is zero or exceeds the cluster size.
pub fn allocate<T: Topology>(
    topo: &T,
    n: usize,
    policy: Placement,
    rng: &mut Pcg32,
) -> Vec<NodeId> {
    assert!(n >= 1, "cannot allocate zero nodes");
    assert!(
        n <= topo.nodes(),
        "requested {n} nodes from a {}-node cluster",
        topo.nodes()
    );
    match policy {
        Placement::ContiguousBlock => (0..n).map(NodeId).collect(),
        Placement::Random => {
            let mut all: Vec<usize> = (0..topo.nodes()).collect();
            rng.shuffle(&mut all);
            let mut picked: Vec<usize> = all.into_iter().take(n).collect();
            picked.sort_unstable();
            picked.into_iter().map(NodeId).collect()
        }
    }
}

/// Mean pairwise hop distance of an allocation — the quantity the
/// topology-aware scheduler minimizes.
///
/// Topologies with a closed form (TofuD's per-dimension histogram fold,
/// see [`Topology::set_mean_hops`]) answer without touching the k² pairs;
/// everything else takes the dense walk in
/// [`mean_pairwise_hops_dense`]. Both paths produce bit-identical results
/// at every thread count, so callers never observe which one ran.
pub fn mean_pairwise_hops<T: Topology + Sync>(topo: &T, nodes: &[NodeId]) -> f64 {
    if let Some(mean) = topo.set_mean_hops(nodes) {
        return mean;
    }
    mean_pairwise_hops_dense(topo, nodes)
}

/// The dense all-pairs walk behind [`mean_pairwise_hops`] — the
/// differential oracle for the closed forms.
///
/// The O(n²) pair scan fans out over the rayon pool, one outer node per
/// task; hop counts accumulate in integers and the per-chunk partials are
/// combined in chunk order, so the result is bit-identical to the
/// sequential scan at every thread count. Score large sweeps against a
/// [`crate::table::RoutingTable`] (itself a [`Topology`]) to make each
/// `hops` query a flat lookup.
pub fn mean_pairwise_hops_dense<T: Topology + Sync>(topo: &T, nodes: &[NodeId]) -> f64 {
    if nodes.len() < 2 {
        return 0.0;
    }
    // Each element routes against every later node, so elements are far
    // heavier than the scalar folds the default reduction grid assumes; an
    // explicit grain (a pure function of the length, keeping determinism)
    // lets even a few-hundred-node allocation use the pool. Integer sums
    // are order-independent, so the result is unchanged.
    let grain = nodes.len().div_ceil(64).max(16);
    let (total, pairs) = (0..nodes.len())
        .into_par_iter()
        .fold(
            || (0u64, 0u64),
            |(mut total, mut pairs), i| {
                let a = nodes[i];
                for &b in &nodes[i + 1..] {
                    total += topo.hops(a, b) as u64;
                    pairs += 1;
                }
                (total, pairs)
            },
        )
        .with_grain(grain)
        .reduce(|| (0, 0), |x, y| (x.0 + y.0, x.1 + y.1));
    total as f64 / pairs as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tofu::TofuD;

    #[test]
    fn contiguous_allocation_is_prefix() {
        let t = TofuD::cte_arm();
        let mut rng = Pcg32::seeded(1);
        let nodes = allocate(&t, 12, Placement::ContiguousBlock, &mut rng);
        assert_eq!(nodes, (0..12).map(NodeId).collect::<Vec<_>>());
    }

    #[test]
    fn random_allocation_is_distinct_and_in_range() {
        let t = TofuD::cte_arm();
        let mut rng = Pcg32::seeded(2);
        let nodes = allocate(&t, 48, Placement::Random, &mut rng);
        assert_eq!(nodes.len(), 48);
        let mut dedup = nodes.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), 48, "no duplicates");
        assert!(nodes.iter().all(|n| n.index() < 192));
    }

    #[test]
    fn topology_aware_beats_random_on_hops() {
        let t = TofuD::cte_arm();
        let mut rng = Pcg32::seeded(3);
        let block = allocate(&t, 24, Placement::ContiguousBlock, &mut rng);
        let random = allocate(&t, 24, Placement::Random, &mut rng);
        let hb = mean_pairwise_hops(&t, &block);
        let hr = mean_pairwise_hops(&t, &random);
        assert!(
            hb < hr,
            "contiguous {hb} should beat random {hr} on mean hops"
        );
    }

    #[test]
    fn mean_hops_of_singleton_is_zero() {
        let t = TofuD::cte_arm();
        assert_eq!(mean_pairwise_hops(&t, &[NodeId(3)]), 0.0);
    }

    #[test]
    #[should_panic(expected = "requested")]
    fn over_allocation_rejected() {
        let t = TofuD::cte_arm();
        let mut rng = Pcg32::seeded(4);
        allocate(&t, 193, Placement::ContiguousBlock, &mut rng);
    }
}
