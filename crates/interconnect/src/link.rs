//! The per-message link cost model.
//!
//! A point-to-point message of `s` bytes over `h` hops costs
//!
//! ```text
//! t = t_sw + h · t_hop + s / (B_link / sharing)      (eager)
//! t = above + t_rdv                                  (rendezvous, s ≥ threshold)
//! ```
//!
//! `t_sw` is the software/injection overhead per message, `t_hop` the
//! per-router latency, `B_link` the peak link bandwidth, and `sharing` the
//! route's oversubscription factor from the topology. Messages at or above
//! the rendezvous threshold pay an extra handshake round-trip, which is why
//! measured bandwidth curves dip at the eager/rendezvous boundary.

use serde::{Deserialize, Serialize};
use simkit::units::{Bandwidth, Bytes, Time};

/// Link and protocol parameters of one interconnect.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinkModel {
    /// Per-message software/injection overhead.
    pub sw_overhead: Time,
    /// Per-hop router latency.
    pub hop_latency: Time,
    /// Peak per-direction link bandwidth.
    pub bandwidth: Bandwidth,
    /// Eager/rendezvous protocol switch point.
    pub rendezvous_threshold: Bytes,
    /// Extra handshake cost for rendezvous messages (one round trip).
    pub rendezvous_overhead: Time,
}

impl LinkModel {
    /// TofuD as measured on CTE-Arm with Fujitsu MPI: ~1.2 µs software
    /// latency, ~100 ns per router, 6.8 GB/s links, 64 KiB rendezvous
    /// switch.
    pub fn tofud() -> Self {
        Self {
            sw_overhead: Time::micros(1.2),
            hop_latency: Time::nanos(100.0),
            bandwidth: Bandwidth::gb_per_sec(6.8),
            rendezvous_threshold: Bytes::kib(64.0),
            rendezvous_overhead: Time::micros(1.8),
        }
    }

    /// OmniPath with Intel MPI on MareNostrum 4: ~0.9 µs software latency,
    /// ~110 ns per switch, 12 GB/s links (after Table I), 64 KiB rendezvous.
    pub fn omnipath() -> Self {
        Self {
            sw_overhead: Time::micros(0.9),
            hop_latency: Time::nanos(110.0),
            bandwidth: Bandwidth::gb_per_sec(12.0),
            rendezvous_threshold: Bytes::kib(64.0),
            rendezvous_overhead: Time::micros(1.5),
        }
    }

    /// Transfer time for one message of `bytes` over `hops` routers on a
    /// route with the given `sharing` factor.
    pub fn message_time(&self, bytes: Bytes, hops: usize, sharing: f64) -> Time {
        assert!(sharing >= 1.0, "sharing factor below 1");
        assert!(bytes.value() >= 0.0, "negative message size");
        let effective_bw = Bandwidth::bytes_per_sec(self.bandwidth.value() / sharing);
        let mut t = self.sw_overhead + self.hop_latency * hops as f64 + bytes / effective_bw;
        if bytes.value() >= self.rendezvous_threshold.value() {
            t += self.rendezvous_overhead + self.hop_latency * (2 * hops) as f64;
        }
        t
    }

    /// The bandwidth an OSU-style loop reports for this message size/route:
    /// `s / t`.
    pub fn message_bandwidth(&self, bytes: Bytes, hops: usize, sharing: f64) -> Bandwidth {
        bytes / self.message_time(bytes, hops, sharing)
    }

    /// Latency of a zero-byte message (half round trip).
    pub fn zero_byte_latency(&self, hops: usize) -> Time {
        self.message_time(Bytes::ZERO, hops, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_messages_are_latency_bound() {
        let l = LinkModel::tofud();
        let t = l.message_time(Bytes::new(256.0), 5, 1.0);
        // 1.2 µs + 0.5 µs + 256/6.8e9 ≈ 1.74 µs.
        assert!((t.as_micros() - 1.7376).abs() < 0.01, "{t}");
        // Reported bandwidth far below link peak.
        let bw = l
            .message_bandwidth(Bytes::new(256.0), 5, 1.0)
            .as_gb_per_sec();
        assert!(bw < 0.2, "bw {bw}");
    }

    #[test]
    fn large_messages_approach_link_peak() {
        let l = LinkModel::tofud();
        let bw = l
            .message_bandwidth(Bytes::mib(64.0), 2, 1.0)
            .as_gb_per_sec();
        assert!(bw > 6.0 && bw <= 6.8, "bw {bw}");
    }

    #[test]
    fn sharing_halves_effective_bandwidth() {
        let l = LinkModel::tofud();
        let full = l.message_bandwidth(Bytes::mib(16.0), 4, 1.0).value();
        let shared = l.message_bandwidth(Bytes::mib(16.0), 4, 2.0).value();
        let ratio = full / shared;
        assert!(ratio > 1.8 && ratio < 2.05, "ratio {ratio}");
    }

    #[test]
    fn rendezvous_penalty_kicks_in_at_threshold() {
        let l = LinkModel::tofud();
        let below = l.message_time(Bytes::kib(63.0), 3, 1.0);
        let above = l.message_time(Bytes::kib(64.0), 3, 1.0);
        // The jump exceeds the 1 KiB serialization delta alone.
        let serialization_delta = Bytes::kib(1.0) / l.bandwidth;
        assert!(above - below > serialization_delta + l.rendezvous_overhead * 0.9);
    }

    #[test]
    fn more_hops_cost_more() {
        let l = LinkModel::omnipath();
        let near = l.message_time(Bytes::new(8.0), 2, 1.0);
        let far = l.message_time(Bytes::new(8.0), 4, 1.0);
        assert!(far > near);
        assert!((far - near).value() - 2.0 * l.hop_latency.value() < 1e-12);
    }

    #[test]
    fn zero_byte_latency_is_overheads_only() {
        let l = LinkModel::tofud();
        let t = l.zero_byte_latency(3);
        assert!((t.as_micros() - 1.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "sharing factor")]
    fn bad_sharing_rejected() {
        LinkModel::tofud().message_time(Bytes::new(1.0), 1, 0.9);
    }
}
