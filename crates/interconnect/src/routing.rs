//! Dimension-ordered routing and link-load analysis on the TofuD torus.
//!
//! TofuD routes minimally, dimension by dimension. Enumerating the actual
//! links a route crosses lets us compute per-link load under a traffic
//! pattern — the mechanistic justification for the two-class sharing model
//! in [`crate::tofu`]: under uniform all-to-all traffic the busiest trunk
//! links carry about twice the mean load, which is exactly the sharing
//! factor the bandwidth model charges to cross-unit pairs.

use crate::tofu::{TofuD, DIMS};
use crate::topology::{check_node, NodeId, Topology};
use std::collections::HashMap;

/// One directed physical link: `(from_coords, dimension, direction)`.
/// Direction +1 is the increasing-coordinate port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Link {
    /// Source node of the link.
    pub from: NodeId,
    /// The dimension the link travels along.
    pub dim: usize,
    /// `+1` or `-1`.
    pub dir: i8,
}

/// The full node sequence of the dimension-ordered minimal route from `a`
/// to `b` (inclusive of both endpoints).
pub fn route(topo: &TofuD, a: NodeId, b: NodeId) -> Vec<NodeId> {
    check_node(topo, a);
    check_node(topo, b);
    let mut path = vec![a];
    let mut cur = topo.coords(a);
    let dst = topo.coords(b);
    for d in 0..DIMS {
        while cur[d] != dst[d] {
            let extent = topo.dims[d];
            let fwd = (dst[d] + extent - cur[d]) % extent;
            let bwd = (cur[d] + extent - dst[d]) % extent;
            // Minimal direction; mesh dimensions only ever step the
            // direct way (their distance function is |Δ|).
            let step_fwd = if topo.periodic[d] {
                fwd <= bwd
            } else {
                dst[d] > cur[d]
            };
            if step_fwd {
                cur[d] = (cur[d] + 1) % extent;
            } else {
                cur[d] = (cur[d] + extent - 1) % extent;
            }
            path.push(topo.node_at(cur));
        }
    }
    path
}

/// The directed links of a route.
pub fn route_links(topo: &TofuD, a: NodeId, b: NodeId) -> Vec<Link> {
    let path = route(topo, a, b);
    path.windows(2)
        .map(|w| {
            let ca = topo.coords(w[0]);
            let cb = topo.coords(w[1]);
            let dim = (0..DIMS).find(|&d| ca[d] != cb[d]).expect("one hop");
            let extent = topo.dims[dim];
            let dir = if (ca[dim] + 1) % extent == cb[dim] {
                1
            } else {
                -1
            };
            Link {
                from: w[0],
                dim,
                dir,
            }
        })
        .collect()
}

/// Per-link message load under uniform all-pairs traffic (one unit per
/// ordered pair). Returns `(max_load, mean_load)` over used links.
pub fn all_pairs_link_load(topo: &TofuD) -> (f64, f64) {
    let n = topo.nodes();
    let mut load: HashMap<Link, u64> = HashMap::new();
    for s in 0..n {
        for r in 0..n {
            if s == r {
                continue;
            }
            for link in route_links(topo, NodeId(s), NodeId(r)) {
                *load.entry(link).or_insert(0) += 1;
            }
        }
    }
    let max = load.values().copied().max().unwrap_or(0) as f64;
    let mean = if load.is_empty() {
        0.0
    } else {
        load.values().copied().sum::<u64>() as f64 / load.len() as f64
    };
    (max, mean)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_endpoints_and_length() {
        let t = TofuD::cte_arm();
        for (a, b) in [(0usize, 0usize), (0, 1), (0, 100), (37, 154)] {
            let (a, b) = (NodeId(a), NodeId(b));
            let path = route(&t, a, b);
            assert_eq!(*path.first().unwrap(), a);
            assert_eq!(*path.last().unwrap(), b);
            assert_eq!(path.len(), t.hops(a, b) + 1, "minimal route");
        }
    }

    #[test]
    fn consecutive_route_nodes_are_neighbours() {
        let t = TofuD::cte_arm();
        let path = route(&t, NodeId(5), NodeId(180));
        for w in path.windows(2) {
            assert_eq!(t.hops(w[0], w[1]), 1);
        }
    }

    #[test]
    fn torus_routes_take_the_wrap_when_shorter() {
        let t = TofuD::cte_arm();
        // X from 0 to 3 on a size-4 torus: one wrap hop, not three.
        let a = t.node_at([0, 0, 0, 0, 0, 0]);
        let b = t.node_at([3, 0, 0, 0, 0, 0]);
        let path = route(&t, a, b);
        assert_eq!(path.len(), 2);
    }

    #[test]
    fn links_match_hops() {
        let t = TofuD::cte_arm();
        let links = route_links(&t, NodeId(2), NodeId(77));
        assert_eq!(links.len(), t.hops(NodeId(2), NodeId(77)));
        // Dimension-ordered: dims along the route never decrease.
        for w in links.windows(2) {
            assert!(w[1].dim >= w[0].dim);
        }
    }

    #[test]
    fn uniform_traffic_hotspots_justify_the_sharing_factor() {
        // The busiest link under all-pairs traffic carries roughly 2× the
        // mean — the sharing = 2.0 charged to cross-unit routes in the
        // bandwidth model.
        let t = TofuD::cte_arm();
        let (max, mean) = all_pairs_link_load(&t);
        let ratio = max / mean;
        assert!(
            (1.6..=3.0).contains(&ratio),
            "hotspot ratio {ratio} (max {max}, mean {mean})"
        );
    }

    #[test]
    fn small_torus_loads_are_symmetric() {
        let t = TofuD::with_dims([2, 2, 2, 1, 1, 1], [true, true, true, false, false, false]);
        let (max, mean) = all_pairs_link_load(&t);
        // Perfectly symmetric machine: every used link equally loaded.
        assert!((max - mean).abs() < 1e-9, "max {max} vs mean {mean}");
    }
}
