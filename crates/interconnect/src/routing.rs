//! Dimension-ordered routing and link-load analysis on the TofuD torus.
//!
//! TofuD routes minimally, dimension by dimension. Enumerating the actual
//! links a route crosses lets us compute per-link load under a traffic
//! pattern — the mechanistic justification for the two-class sharing model
//! in [`crate::tofu`]: under uniform all-to-all traffic the busiest trunk
//! links carry about twice the mean load, which is exactly the sharing
//! factor the bandwidth model charges to cross-unit pairs.
//!
//! ## Fast path
//!
//! Route enumeration is the inner loop of every all-pairs sweep, so it is
//! built to run without touching the allocator:
//!
//! * [`RouteSteps`] walks a route as a plain iterator of [`RouteStep`]s.
//!   The direction of travel along each dimension is decided **once** when
//!   the iterator enters that dimension (minimal routes never reverse
//!   mid-dimension), and node ids are updated incrementally from
//!   precomputed mixed-radix strides — no per-step coordinate encode.
//! * [`LinkLoad`] is a dense `(node, dim, dir)`-indexed accumulator that
//!   replaces the old `HashMap<Link, u64>`: recording a traversal is one
//!   add into a flat `Vec<u64>`, and merging two accumulators (one per
//!   parallel chunk) is element-wise.
//! * [`all_pairs_link_load`] fans the source nodes out over the rayon pool
//!   and combines per-chunk [`LinkLoad`]s in deterministic chunk order;
//!   the counts are integers, so the result is bit-identical to the
//!   sequential sweep at every `RAYON_NUM_THREADS`.

use crate::tofu::{TofuD, DIMS};
use crate::topology::{check_node, NodeId, Topology};
use rayon::prelude::*;

/// One directed physical link: `(from_coords, dimension, direction)`.
/// Direction +1 is the increasing-coordinate port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Link {
    /// Source node of the link.
    pub from: NodeId,
    /// The dimension the link travels along.
    pub dim: usize,
    /// `+1` or `-1`.
    pub dir: i8,
}

/// One hop of a dimension-ordered route: the directed link crossed and the
/// node it lands on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteStep {
    /// Node the hop leaves from.
    pub from: NodeId,
    /// Node the hop arrives at.
    pub to: NodeId,
    /// Dimension the hop travels along.
    pub dim: usize,
    /// `+1` or `-1`.
    pub dir: i8,
}

impl RouteStep {
    /// The directed link this step crosses.
    #[inline]
    pub fn link(&self) -> Link {
        Link {
            from: self.from,
            dim: self.dim,
            dir: self.dir,
        }
    }
}

/// Non-allocating iterator over the hops of the dimension-ordered minimal
/// route from `a` to `b` (see [`route_steps`]).
///
/// Yields exactly `topo.hops(a, b)` [`RouteStep`]s; the node sequence of
/// the route is `a` followed by each step's `to`.
#[derive(Debug, Clone)]
pub struct RouteSteps<'a> {
    topo: &'a TofuD,
    /// Mixed-radix stride of each dimension (id delta of a +1 step).
    strides: [usize; DIMS],
    cur: [usize; DIMS],
    dst: [usize; DIMS],
    cur_id: usize,
    /// Dimension currently being walked.
    dim: usize,
    /// Hops left in `dim`; when 0 the iterator advances to the next
    /// unfinished dimension and decides its direction once.
    left_in_dim: usize,
    /// Direction for `dim`, +1 or -1 (hoisted out of the step loop).
    dir: i8,
}

impl<'a> RouteSteps<'a> {
    fn new(topo: &'a TofuD, a: NodeId, b: NodeId) -> Self {
        check_node(topo, a);
        check_node(topo, b);
        Self::from_coords(topo, a, topo.coords(a), topo.coords(b))
    }

    /// Construct from pre-decoded endpoint coordinates. This is the hot
    /// constructor for all-pairs sweeps, which maintain coordinates
    /// incrementally ([`TofuD::advance_coords`]) instead of paying a
    /// mixed-radix decode (six integer divisions) per endpoint per pair.
    ///
    /// `ac` must equal `topo.coords(a)` and `dst` must be in range; debug
    /// builds check both.
    #[inline]
    pub fn from_coords(topo: &'a TofuD, a: NodeId, ac: [usize; DIMS], dst: [usize; DIMS]) -> Self {
        debug_assert_eq!(ac, topo.coords(a), "source coords out of sync");
        debug_assert!(dst.iter().zip(&topo.dims).all(|(&c, &d)| c < d));
        let mut strides = [1usize; DIMS];
        for d in (0..DIMS - 1).rev() {
            strides[d] = strides[d + 1] * topo.dims[d + 1];
        }
        // Dimension entry is lazy (`next`/`fold` perform it), keeping
        // this constructor to a handful of register moves.
        Self {
            topo,
            strides,
            cur: ac,
            dst,
            cur_id: a.index(),
            dim: 0,
            left_in_dim: 0,
            dir: 1,
        }
    }

    /// Find the next dimension with distance to cover and decide its
    /// direction — once, not per step. On a torus the minimal side never
    /// flips while walking (the forward distance only shrinks), and mesh
    /// dimensions only ever step the direct way.
    #[inline]
    fn enter_next_dim(&mut self) {
        while self.left_in_dim == 0 && self.dim < DIMS {
            let d = self.dim;
            if self.cur[d] == self.dst[d] {
                self.dim += 1;
                continue;
            }
            let extent = self.topo.dims[d];
            let dist = self.cur[d].abs_diff(self.dst[d]);
            // Modular distances without the division: cur ≠ dst here, so
            // the forward distance is dist when dst is ahead, else the
            // wrap-around complement (and symmetrically for backward).
            let (fwd, bwd) = if self.dst[d] > self.cur[d] {
                (dist, extent - dist)
            } else {
                (extent - dist, dist)
            };
            let step_fwd = if self.topo.periodic[d] {
                fwd <= bwd
            } else {
                self.dst[d] > self.cur[d]
            };
            // The modular distances reduce to |Δ| on mesh dimensions,
            // so fwd/bwd give the hop count either way.
            if step_fwd {
                self.dir = 1;
                self.left_in_dim = fwd;
            } else {
                self.dir = -1;
                self.left_in_dim = bwd;
            }
        }
    }
}

impl Iterator for RouteSteps<'_> {
    type Item = RouteStep;

    #[inline]
    fn next(&mut self) -> Option<RouteStep> {
        if self.left_in_dim == 0 {
            self.enter_next_dim();
            if self.left_in_dim == 0 {
                return None;
            }
        }
        let d = self.dim;
        let extent = self.topo.dims[d];
        let stride = self.strides[d];
        let from = NodeId(self.cur_id);
        if self.dir > 0 {
            if self.cur[d] + 1 == extent {
                // Wrap +: coordinate ext-1 → 0, id drops by (ext-1)·stride.
                self.cur[d] = 0;
                self.cur_id -= (extent - 1) * stride;
            } else {
                self.cur[d] += 1;
                self.cur_id += stride;
            }
        } else if self.cur[d] == 0 {
            // Wrap −: coordinate 0 → ext-1.
            self.cur[d] = extent - 1;
            self.cur_id += (extent - 1) * stride;
        } else {
            self.cur[d] -= 1;
            self.cur_id -= stride;
        }
        let step = RouteStep {
            from,
            to: NodeId(self.cur_id),
            dim: d,
            dir: self.dir,
        };
        self.left_in_dim -= 1;
        Some(step)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        // Hops still to walk. Mid-dimension the minimal side never flips
        // (the chosen distance only shrinks), so the per-dimension modular
        // distance from the current position *is* the remaining count.
        let mut rem = 0;
        for d in self.dim..DIMS {
            let dist = self.cur[d].abs_diff(self.dst[d]);
            rem += if self.topo.periodic[d] {
                dist.min(self.topo.dims[d] - dist)
            } else {
                dist
            };
        }
        (rem, Some(rem))
    }

    /// Single-pass traversal: one direction decision per dimension, then a
    /// straight run of hops with the extent, stride and direction held in
    /// locals — no iterator state machine. `for_each`, `count` and friends
    /// delegate here, which is what the all-pairs sweeps consume.
    #[inline]
    fn fold<B, F>(self, init: B, mut f: F) -> B
    where
        F: FnMut(B, RouteStep) -> B,
    {
        let mut acc = init;
        let topo = self.topo;
        let mut id = self.cur_id;
        let mut start = self.dim;
        if self.left_in_dim > 0 {
            // Rare: a dimension partially walked via `next` before folding.
            let d = start;
            acc = walk_dim(
                topo.dims[d],
                self.strides[d],
                self.dir,
                self.left_in_dim,
                self.cur[d],
                d,
                &mut id,
                acc,
                &mut f,
            );
            start = d + 1;
        }
        for d in start..DIMS {
            let extent = topo.dims[d];
            // Branch-free direction decision: every select below lowers to
            // a conditional move, so per-destination direction entropy
            // (extents 2–4 flip it almost randomly) costs no mispredicts.
            // A finished dimension falls out as count == 0.
            let (cur, dst) = (self.cur[d], self.dst[d]);
            let dist = cur.abs_diff(dst);
            let ahead = dst > cur;
            let (fwd, bwd) = if ahead {
                (dist, extent - dist)
            } else {
                (extent - dist, dist)
            };
            let step_fwd = if topo.periodic[d] { fwd <= bwd } else { ahead };
            let (dir, count) = if step_fwd { (1i8, fwd) } else { (-1i8, bwd) };
            if count == 0 {
                continue;
            }
            acc = walk_dim(
                extent,
                self.strides[d],
                dir,
                count,
                cur,
                d,
                &mut id,
                acc,
                &mut f,
            );
        }
        acc
    }
}

/// Walk `count` hops along one dimension, invoking `f` per hop. A minimal
/// route wraps at most once per dimension, so the walk is two straight
/// arithmetic runs around one known wrap hop — no per-step wrap test to
/// mispredict.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn walk_dim<B, F>(
    extent: usize,
    stride: usize,
    dir: i8,
    count: usize,
    c: usize,
    d: usize,
    id: &mut usize,
    acc: B,
    f: &mut F,
) -> B
where
    F: FnMut(B, RouteStep) -> B,
{
    let mut acc = acc;
    let mut at = *id;
    let sdelta = if dir > 0 {
        stride as isize
    } else {
        -(stride as isize)
    };
    let to_wrap = if dir > 0 { extent - 1 - c } else { c };
    let k1 = count.min(to_wrap);
    for _ in 0..k1 {
        let from = NodeId(at);
        at = (at as isize + sdelta) as usize;
        acc = f(
            acc,
            RouteStep {
                from,
                to: NodeId(at),
                dim: d,
                dir,
            },
        );
    }
    if count > to_wrap {
        let from = NodeId(at);
        at = (at as isize - sdelta * (extent as isize - 1)) as usize;
        acc = f(
            acc,
            RouteStep {
                from,
                to: NodeId(at),
                dim: d,
                dir,
            },
        );
        for _ in 0..count - to_wrap - 1 {
            let from = NodeId(at);
            at = (at as isize + sdelta) as usize;
            acc = f(
                acc,
                RouteStep {
                    from,
                    to: NodeId(at),
                    dim: d,
                    dir,
                },
            );
        }
    }
    *id = at;
    acc
}

impl ExactSizeIterator for RouteSteps<'_> {}

/// The hops of the dimension-ordered minimal route from `a` to `b`, as a
/// non-allocating iterator.
pub fn route_steps<'a>(topo: &'a TofuD, a: NodeId, b: NodeId) -> RouteSteps<'a> {
    RouteSteps::new(topo, a, b)
}

/// The full node sequence of the dimension-ordered minimal route from `a`
/// to `b` (inclusive of both endpoints).
pub fn route(topo: &TofuD, a: NodeId, b: NodeId) -> Vec<NodeId> {
    let steps = route_steps(topo, a, b);
    let mut path = Vec::with_capacity(steps.len() + 1);
    path.push(a);
    path.extend(steps.map(|s| s.to));
    path
}

/// The directed links of a route.
pub fn route_links(topo: &TofuD, a: NodeId, b: NodeId) -> Vec<Link> {
    route_steps(topo, a, b).map(|s| s.link()).collect()
}

/// Dense per-link traversal counter: one `u64` slot per
/// `(node, dimension, direction)` port, indexed arithmetically.
///
/// Replaces the `HashMap<Link, u64>` accumulator: recording a hop is a
/// single indexed add, and two accumulators merge element-wise, which is
/// what makes the chunk-ordered parallel reduction in
/// [`all_pairs_link_load`] deterministic (integer adds, fixed layout).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkLoad {
    n_nodes: usize,
    counts: Vec<u64>,
}

impl LinkLoad {
    /// An all-zero accumulator for a `n_nodes`-node topology.
    pub fn new(n_nodes: usize) -> Self {
        Self {
            n_nodes,
            counts: vec![0; n_nodes * DIMS * 2],
        }
    }

    #[inline]
    fn slot(from: NodeId, dim: usize, dir: i8) -> usize {
        (from.index() * DIMS + dim) * 2 + usize::from(dir > 0)
    }

    /// Count one traversal of the directed link.
    #[inline]
    pub fn record(&mut self, from: NodeId, dim: usize, dir: i8) {
        self.counts[Self::slot(from, dim, dir)] += 1;
    }

    /// Count `n` traversals of the directed link at once — the bulk entry
    /// point for closed-form fills ([`crate::sweep`]) that expand
    /// per-offset counts by symmetry instead of walking routes.
    #[inline]
    pub fn add(&mut self, from: NodeId, dim: usize, dir: i8, n: u64) {
        self.counts[Self::slot(from, dim, dir)] += n;
    }

    /// Traversals recorded for one directed link.
    #[inline]
    pub fn get(&self, from: NodeId, dim: usize, dir: i8) -> u64 {
        self.counts[Self::slot(from, dim, dir)]
    }

    /// Element-wise merge of another accumulator over the same topology.
    pub fn merge(&mut self, other: &LinkLoad) {
        assert_eq!(
            self.n_nodes, other.n_nodes,
            "merging link loads of different topologies"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// Loads of the links that carried any traffic.
    pub fn used(&self) -> impl Iterator<Item = u64> + '_ {
        self.counts.iter().copied().filter(|&c| c > 0)
    }

    /// Iterate `(from, dim, dir, load)` over used links.
    pub fn iter_used(&self) -> impl Iterator<Item = (NodeId, usize, i8, u64)> + '_ {
        self.counts.iter().enumerate().filter_map(|(i, &c)| {
            if c == 0 {
                return None;
            }
            let dir = if i % 2 == 1 { 1 } else { -1 };
            let dim = (i / 2) % DIMS;
            let node = i / (2 * DIMS);
            Some((NodeId(node), dim, dir, c))
        })
    }

    /// `(max, mean)` load over used links; `(0, 0)` when nothing was
    /// recorded.
    pub fn max_mean(&self) -> (f64, f64) {
        let mut max = 0u64;
        let mut sum = 0u64;
        let mut used = 0u64;
        for &c in &self.counts {
            if c > 0 {
                max = max.max(c);
                sum += c;
                used += 1;
            }
        }
        if used == 0 {
            (0.0, 0.0)
        } else {
            (max as f64, sum as f64 / used as f64)
        }
    }
}

/// Per-link traversal counts under uniform all-pairs traffic (one unit per
/// ordered pair), swept in parallel over source nodes. Per-chunk
/// accumulators are combined in chunk order, so the result is bit-identical
/// to a sequential sweep at every thread count.
///
/// Each fold element is one *source* — `O(n · diameter)` route steps, not
/// a cheap scalar — so the default reduction grid (sequential below 4096
/// elements) would leave the pool idle at every realistic node count. An
/// explicit grain keeps ≤ 64 chunks of ≥ 16 sources; it is a pure
/// function of `n`, so determinism is unaffected, and the counts are
/// integers, so re-chunking cannot change the result. For the closed-form
/// route that skips enumeration entirely see
/// [`crate::sweep::uniform_all_pairs_loads`].
pub fn all_pairs_loads(topo: &TofuD) -> LinkLoad {
    let n = topo.nodes();
    let grain = n.div_ceil(64).max(16);
    (0..n)
        .into_par_iter()
        .fold(
            || LinkLoad::new(n),
            |mut acc, s| {
                let src = NodeId(s);
                let sc = topo.coords(src);
                // Destination coordinates tick odometer-style in id
                // order, so the inner loop never pays a decode.
                let mut dc = [0usize; DIMS];
                for r in 0..n {
                    if r != s {
                        RouteSteps::from_coords(topo, src, sc, dc)
                            .for_each(|step| acc.record(step.from, step.dim, step.dir));
                    }
                    topo.advance_coords(&mut dc);
                }
                acc
            },
        )
        .with_grain(grain)
        .reduce(
            || LinkLoad::new(n),
            |mut a, b| {
                a.merge(&b);
                a
            },
        )
}

/// Per-link message load under uniform all-pairs traffic (one unit per
/// ordered pair). Returns `(max_load, mean_load)` over used links.
pub fn all_pairs_link_load(topo: &TofuD) -> (f64, f64) {
    all_pairs_loads(topo).max_mean()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_endpoints_and_length() {
        let t = TofuD::cte_arm();
        for (a, b) in [(0usize, 0usize), (0, 1), (0, 100), (37, 154)] {
            let (a, b) = (NodeId(a), NodeId(b));
            let path = route(&t, a, b);
            assert_eq!(*path.first().unwrap(), a);
            assert_eq!(*path.last().unwrap(), b);
            assert_eq!(path.len(), t.hops(a, b) + 1, "minimal route");
        }
    }

    #[test]
    fn consecutive_route_nodes_are_neighbours() {
        let t = TofuD::cte_arm();
        let path = route(&t, NodeId(5), NodeId(180));
        for w in path.windows(2) {
            assert_eq!(t.hops(w[0], w[1]), 1);
        }
    }

    #[test]
    fn torus_routes_take_the_wrap_when_shorter() {
        let t = TofuD::cte_arm();
        // X from 0 to 3 on a size-4 torus: one wrap hop, not three.
        let a = t.node_at([0, 0, 0, 0, 0, 0]);
        let b = t.node_at([3, 0, 0, 0, 0, 0]);
        let path = route(&t, a, b);
        assert_eq!(path.len(), 2);
    }

    #[test]
    fn links_match_hops() {
        let t = TofuD::cte_arm();
        let links = route_links(&t, NodeId(2), NodeId(77));
        assert_eq!(links.len(), t.hops(NodeId(2), NodeId(77)));
        // Dimension-ordered: dims along the route never decrease.
        for w in links.windows(2) {
            assert!(w[1].dim >= w[0].dim);
        }
    }

    #[test]
    fn route_steps_is_exact_size_and_consistent() {
        let t = TofuD::cte_arm();
        for (a, b) in [(0usize, 0usize), (0, 191), (13, 13), (42, 137)] {
            let (a, b) = (NodeId(a), NodeId(b));
            let steps = route_steps(&t, a, b);
            assert_eq!(steps.len(), t.hops(a, b));
            let mut prev = a;
            for s in route_steps(&t, a, b) {
                assert_eq!(s.from, prev);
                assert_eq!(t.hops(s.from, s.to), 1, "each step is one hop");
                // The step's (dim, dir) matches the coordinate delta.
                let cf = t.coords(s.from);
                let ct = t.coords(s.to);
                let d = (0..DIMS).find(|&d| cf[d] != ct[d]).expect("one hop");
                assert_eq!(d, s.dim);
                // On extent-2 dimensions the coordinate delta alone is
                // ambiguous; meshes must step the direct way, tori pick +1.
                let extent = t.dims[d];
                let fwd = if t.periodic[d] {
                    (cf[d] + 1) % extent == ct[d]
                } else {
                    ct[d] > cf[d]
                };
                assert_eq!(s.dir > 0, fwd);
                prev = s.to;
            }
            assert_eq!(prev, b, "route ends at the destination");
        }
    }

    #[test]
    fn link_load_slots_roundtrip() {
        let t = TofuD::cte_arm();
        let mut load = LinkLoad::new(t.nodes());
        load.record(NodeId(7), 3, 1);
        load.record(NodeId(7), 3, 1);
        load.record(NodeId(7), 3, -1);
        assert_eq!(load.get(NodeId(7), 3, 1), 2);
        assert_eq!(load.get(NodeId(7), 3, -1), 1);
        assert_eq!(load.get(NodeId(7), 2, 1), 0);
        let used: Vec<_> = load.iter_used().collect();
        assert_eq!(
            used,
            vec![(NodeId(7), 3, -1, 1), (NodeId(7), 3, 1, 2)],
            "iter_used decodes slots back to (node, dim, dir)"
        );
    }

    #[test]
    fn parallel_load_matches_sequential_reference() {
        let t = TofuD::with_dims([3, 2, 2, 2, 3, 2], [true, true, true, false, true, false]);
        let n = t.nodes();
        let mut seq = LinkLoad::new(n);
        for s in 0..n {
            for r in 0..n {
                if s == r {
                    continue;
                }
                for step in route_steps(&t, NodeId(s), NodeId(r)) {
                    seq.record(step.from, step.dim, step.dir);
                }
            }
        }
        assert_eq!(all_pairs_loads(&t), seq);
    }

    #[test]
    fn uniform_traffic_hotspots_justify_the_sharing_factor() {
        // The busiest link under all-pairs traffic carries roughly 2× the
        // mean — the sharing = 2.0 charged to cross-unit routes in the
        // bandwidth model.
        let t = TofuD::cte_arm();
        let (max, mean) = all_pairs_link_load(&t);
        let ratio = max / mean;
        assert!(
            (1.6..=3.0).contains(&ratio),
            "hotspot ratio {ratio} (max {max}, mean {mean})"
        );
    }

    #[test]
    fn small_torus_loads_are_symmetric() {
        let t = TofuD::with_dims([2, 2, 2, 1, 1, 1], [true, true, true, false, false, false]);
        let (max, mean) = all_pairs_link_load(&t);
        // Perfectly symmetric machine: every used link equally loaded.
        assert!((max - mean).abs() < 1e-9, "max {max} vs mean {mean}");
    }
}
