//! The topology abstraction shared by all interconnect models.

use serde::{Deserialize, Serialize};

/// Identifier of a compute node within a cluster (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A network topology: node count, point-to-point hop distance, and link
/// sharing class.
pub trait Topology {
    /// Number of nodes attached to the network.
    fn nodes(&self) -> usize;

    /// Number of switch/router hops on the minimal route between two nodes.
    /// Zero for a node talking to itself.
    fn hops(&self, a: NodeId, b: NodeId) -> usize;

    /// Oversubscription factor of the route: 1.0 when the pair enjoys
    /// dedicated link capacity (same leaf switch / same Tofu group), larger
    /// when the route crosses tapered or shared trunk links.
    fn sharing(&self, a: NodeId, b: NodeId) -> f64;

    /// Human-readable topology name.
    fn name(&self) -> &str;

    /// Largest hop distance over all pairs (diameter). Default implementation
    /// scans all pairs; concrete topologies may override with a closed form.
    fn diameter(&self) -> usize {
        let n = self.nodes();
        let mut d = 0;
        for a in 0..n {
            for b in 0..n {
                d = d.max(self.hops(NodeId(a), NodeId(b)));
            }
        }
        d
    }

    /// Mean pairwise hop distance of a node set in closed form, when the
    /// topology can produce it without enumerating the k² pairs. `None`
    /// (the default) sends callers down the dense pair scan in
    /// [`mean_pairwise_hops`](crate::placement::mean_pairwise_hops);
    /// topologies with per-dimension separable distances (TofuD) override
    /// this with an exact histogram fold that is bit-identical to the
    /// scan. Implementations may also return `None` for inputs they
    /// cannot fold (unsorted or duplicated ids).
    fn set_mean_hops(&self, _nodes: &[NodeId]) -> Option<f64> {
        None
    }

    /// Build the memoized pair table a `Network` consults on its fast
    /// path. Defaults to the dense all-pairs
    /// [`RoutingTable`](crate::table::RoutingTable); topologies with
    /// translation symmetry override this to return a folded table whose
    /// memory is independent of the pair count (TofuD folds 158,976-node
    /// Fugaku from ~100 GB dense to under 10 MB). Either way the table
    /// answers `hops`/`sharing` bit-for-bit like the topology itself.
    fn pair_table(&self) -> crate::table::PairTable
    where
        Self: Sized + Sync,
    {
        crate::table::PairTable::Dense(crate::table::RoutingTable::build(self))
    }
}

/// Validate a node id against a topology, panicking with context otherwise.
pub fn check_node<T: Topology + ?Sized>(topo: &T, n: NodeId) {
    assert!(
        n.index() < topo.nodes(),
        "node {n} out of range for {} ({} nodes)",
        topo.name(),
        topo.nodes()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Line(usize);
    impl Topology for Line {
        fn nodes(&self) -> usize {
            self.0
        }
        fn hops(&self, a: NodeId, b: NodeId) -> usize {
            a.index().abs_diff(b.index())
        }
        fn sharing(&self, _: NodeId, _: NodeId) -> f64 {
            1.0
        }
        fn name(&self) -> &str {
            "line"
        }
    }

    #[test]
    fn default_diameter_scans_pairs() {
        assert_eq!(Line(5).diameter(), 4);
        assert_eq!(Line(1).diameter(), 0);
    }

    #[test]
    fn node_display() {
        assert_eq!(NodeId(7).to_string(), "n7");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn check_node_panics() {
        check_node(&Line(3), NodeId(3));
    }
}
