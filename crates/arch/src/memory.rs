//! Memory-subsystem model: NUMA domains, sustained bandwidth, and the
//! STREAM behaviours measured in the paper's Section III-B.
//!
//! Two mechanisms drive the measured curves:
//!
//! 1. **Page placement.** On MareNostrum 4 the usual Linux first-touch
//!    policy places each thread's pages on its own socket, so OpenMP STREAM
//!    traffic stays ~local. On CTE-Arm the Fujitsu XOS large-page policy
//!    (`XOS_MMM_L_PAGING_POLICY`) effectively spreads shared OpenMP arrays
//!    across CMGs, so a thread's accesses land on a remote CMG with
//!    probability `(n-1)/n` and must cross the ring bus. This is why the
//!    OpenMP-only STREAM reaches just 29 % of peak on the A64FX while the
//!    MPI-per-CMG variant, whose per-rank arrays are CMG-local, reaches
//!    84 %.
//! 2. **Store policy / code generation per language.** The Fujitsu
//!    `-Kzfill` path (allocate-without-fetch on streaming stores) landed in
//!    the Fortran build but evidently not the C MPI build — the paper
//!    measures C at 421.1 GB/s vs Fortran at 862.6 GB/s "without an
//!    explanation"; we encode it as a per-language sustained-efficiency
//!    factor.

use crate::compiler::Language;
use serde::{Deserialize, Serialize};
use simkit::units::{Bandwidth, Bytes};

/// One NUMA domain: a CMG on the A64FX, a socket on Skylake.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NumaDomain {
    /// Cores in the domain (12 per CMG, 24 per socket).
    pub cores: usize,
    /// Peak local memory bandwidth of the domain (256 GB/s per CMG HBM2
    /// stack, 128 GB/s per six-channel DDR4-2666 socket).
    pub peak_bandwidth: Bandwidth,
    /// Local memory capacity (8 GB per CMG, 48 GB per socket).
    pub capacity: Bytes,
}

/// How the OS places the pages of a shared (OpenMP) allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PagePlacement {
    /// Pages striped across the domains touched by the team — a thread's
    /// access is local with probability `1/n` (CTE-Arm XOS behaviour).
    Interleaved,
    /// Pages land on the toucher's domain — accesses ~local
    /// (MareNostrum 4 / standard Linux behaviour).
    FirstTouch,
}

/// Per-language sustained-bandwidth efficiency, relative to domain peak.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LanguageEfficiency {
    /// Efficiency of the C build.
    pub c: f64,
    /// Efficiency of the Fortran build.
    pub fortran: f64,
}

impl LanguageEfficiency {
    /// Look up by language.
    pub fn get(&self, lang: Language) -> f64 {
        match lang {
            Language::C => self.c,
            Language::Fortran => self.fortran,
        }
    }
}

/// The full memory model of one node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemoryModel {
    /// Identical NUMA domains (4 CMGs / 2 sockets).
    pub domain: NumaDomain,
    /// Number of domains per node.
    pub n_domains: usize,
    /// Aggregate bandwidth of the inter-domain fabric (A64FX ring bus /
    /// Skylake UPI links).
    pub cross_domain_bandwidth: Bandwidth,
    /// Page placement for shared OpenMP allocations.
    pub omp_placement: PagePlacement,
    /// Single-thread streaming bandwidth (limited by per-core outstanding
    /// line fills, not by the memory system).
    pub per_thread_bandwidth: Bandwidth,
    /// Sustained efficiency of one domain under an MPI-per-domain STREAM
    /// (arrays local, all cores of the domain driving).
    pub mpi_efficiency: LanguageEfficiency,
    /// Additional language factor applied to the OpenMP-shared mode.
    pub omp_efficiency: LanguageEfficiency,
    /// Contention derate slope once the thread count exceeds the sweet spot
    /// (dimensionless; see [`MemoryModel::stream_openmp`]).
    pub omp_contention_slope: f64,
    /// Thread count where OpenMP contention starts to bite.
    pub omp_contention_knee: usize,
}

impl MemoryModel {
    /// The A64FX memory system: 4 CMGs × 256 GB/s HBM2, 8 GB each;
    /// inter-CMG ring bus; XOS interleaved shared pages.
    pub fn a64fx() -> Self {
        Self {
            domain: NumaDomain {
                cores: 12,
                peak_bandwidth: Bandwidth::gb_per_sec(256.0),
                capacity: Bytes::gb(8.0),
            },
            n_domains: 4,
            // Ring-bus aggregate calibrated against the paper's 292 GB/s
            // OpenMP ceiling: T = B_ring · n/(n-1) with n = 4.
            cross_domain_bandwidth: Bandwidth::gb_per_sec(219.0),
            omp_placement: PagePlacement::Interleaved,
            // A single core sustains ~12 GB/s of interleaved STREAM traffic
            // (line-fill-buffer limited); 24 such threads meet the ring-bus
            // ceiling exactly where the paper's curve peaks.
            per_thread_bandwidth: Bandwidth::gb_per_sec(12.2),
            // Fortran + zfill sustains 84 % of HBM peak per CMG; the C MPI
            // build reached 41 % (write-allocate path, paper has no root
            // cause).
            mpi_efficiency: LanguageEfficiency {
                c: 0.411,
                fortran: 0.842,
            },
            // OpenMP mode: C measured ~10 % faster than Fortran.
            omp_efficiency: LanguageEfficiency {
                c: 1.0,
                fortran: 0.9,
            },
            omp_contention_slope: 0.15,
            omp_contention_knee: 24,
        }
    }

    /// The MareNostrum 4 memory system: 2 sockets × 6 DDR4-2666 channels
    /// (128 GB/s each), 48 GB per socket, UPI cross-socket, first-touch.
    pub fn skylake_8160() -> Self {
        Self {
            domain: NumaDomain {
                cores: 24,
                peak_bandwidth: Bandwidth::gb_per_sec(128.0),
                capacity: Bytes::gb(48.0),
            },
            n_domains: 2,
            // 3 UPI links ≈ 62 GB/s aggregate between the sockets.
            cross_domain_bandwidth: Bandwidth::gb_per_sec(62.0),
            omp_placement: PagePlacement::FirstTouch,
            // One Skylake core sustains ~13 GB/s of STREAM traffic.
            per_thread_bandwidth: Bandwidth::gb_per_sec(13.0),
            // DDR4 controller efficiency on STREAM: ~79 % either language.
            mpi_efficiency: LanguageEfficiency {
                c: 0.786,
                fortran: 0.786,
            },
            omp_efficiency: LanguageEfficiency {
                c: 1.0,
                fortran: 1.0,
            },
            omp_contention_slope: 0.0,
            omp_contention_knee: 48,
        }
    }

    /// Cores per node.
    pub fn cores(&self) -> usize {
        self.domain.cores * self.n_domains
    }

    /// Table-I peak node bandwidth.
    pub fn peak_bandwidth(&self) -> Bandwidth {
        Bandwidth::bytes_per_sec(self.domain.peak_bandwidth.value() * self.n_domains as f64)
    }

    /// Table-I node memory capacity.
    pub fn capacity(&self) -> Bytes {
        Bytes::new(self.domain.capacity.value() * self.n_domains as f64)
    }

    /// Sustained bandwidth of the OpenMP-only STREAM Triad at a given
    /// thread count with spread binding (the paper's Fig. 2).
    pub fn stream_openmp(&self, threads: usize, lang: Language) -> Bandwidth {
        assert!(
            threads >= 1 && threads <= self.cores(),
            "thread count out of range"
        );
        // Spread binding: threads round-robin over domains.
        let n_dom = threads.min(self.n_domains);
        let per_dom_threads = threads.div_ceil(n_dom);

        // Demand side: each thread sustains at most `per_thread_bandwidth`.
        let demand = self.per_thread_bandwidth.value() * threads as f64;

        // Memory service side: the domains actually used.
        let sustained_dom =
            self.domain.peak_bandwidth.value() * self.mpi_efficiency.get(Language::C).max(0.6);
        let mem_cap = sustained_dom * n_dom as f64;
        let _ = per_dom_threads; // per-domain split is uniform under spread binding

        // Fabric side: remote fraction crosses the inter-domain bus.
        let remote_frac = match self.omp_placement {
            PagePlacement::Interleaved if n_dom > 1 => (n_dom - 1) as f64 / n_dom as f64,
            PagePlacement::Interleaved => 0.0,
            // First-touch still leaks a little cross-socket traffic.
            PagePlacement::FirstTouch => 0.05,
        };
        let bus_cap = if remote_frac > 0.0 {
            self.cross_domain_bandwidth.value() / remote_frac
        } else {
            f64::INFINITY
        };

        let mut t = demand.min(mem_cap).min(bus_cap);

        // Oversubscription contention beyond the knee.
        if threads > self.omp_contention_knee {
            let over =
                (threads - self.omp_contention_knee) as f64 / self.omp_contention_knee as f64;
            t /= 1.0 + self.omp_contention_slope * over;
        }

        Bandwidth::bytes_per_sec(t * self.omp_efficiency.get(lang))
    }

    /// Sustained bandwidth of the MPI+OpenMP STREAM Triad with at most one
    /// rank per NUMA domain (the paper's Fig. 3). Each rank's arrays are
    /// local to its domain, so ranks scale the usable memory system.
    pub fn stream_mpi_omp(
        &self,
        ranks: usize,
        threads_per_rank: usize,
        lang: Language,
    ) -> Bandwidth {
        assert!(
            ranks >= 1 && ranks <= self.n_domains,
            "at most one rank per NUMA domain"
        );
        assert!(
            ranks * threads_per_rank <= self.cores(),
            "rank × thread oversubscription"
        );
        let sustained_dom = self.domain.peak_bandwidth.value() * self.mpi_efficiency.get(lang);
        // A rank cannot pull more than its threads sustain; per-rank arrays
        // are domain-local, so the domain's sustained bandwidth caps it.
        let per_rank_demand = self.per_thread_bandwidth.value() * 1.8 * threads_per_rank as f64;
        let per_rank = sustained_dom.min(per_rank_demand);
        Bandwidth::bytes_per_sec(per_rank * ranks as f64)
    }

    /// Effective node bandwidth available to an MPI-rank-per-core
    /// application (ranks' pages are local to their CMG/socket). Apps in
    /// the paper are Fortran-dominated; the Fortran MPI efficiency applies.
    pub fn app_sustained_bandwidth(&self) -> Bandwidth {
        Bandwidth::bytes_per_sec(
            self.domain.peak_bandwidth.value()
                * self.mpi_efficiency.get(Language::Fortran)
                * self.n_domains as f64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: f64 = 1e9;

    #[test]
    fn a64fx_peak_is_1tb() {
        let m = MemoryModel::a64fx();
        assert_eq!(m.peak_bandwidth().as_gb_per_sec(), 1024.0);
        assert_eq!(m.capacity().value(), 32.0 * GB);
        assert_eq!(m.cores(), 48);
    }

    #[test]
    fn skylake_peak_is_256gb() {
        let m = MemoryModel::skylake_8160();
        assert_eq!(m.peak_bandwidth().as_gb_per_sec(), 256.0);
        assert_eq!(m.capacity().value(), 96.0 * GB);
        assert_eq!(m.cores(), 48);
    }

    #[test]
    fn a64fx_openmp_peaks_near_292_at_24_threads() {
        // Paper: best OpenMP Triad = 292.0 GB/s at 24 threads ≈ 29 % of peak.
        let m = MemoryModel::a64fx();
        let bw = m.stream_openmp(24, Language::C).as_gb_per_sec();
        assert!((bw - 292.0).abs() < 8.0, "got {bw}");
        let frac = bw / 1024.0;
        assert!((frac - 0.29).abs() < 0.02, "fraction {frac}");
    }

    #[test]
    fn a64fx_openmp_max_is_at_24_threads() {
        let m = MemoryModel::a64fx();
        let best = (1..=48)
            .max_by(|&a, &b| {
                m.stream_openmp(a, Language::C)
                    .value()
                    .partial_cmp(&m.stream_openmp(b, Language::C).value())
                    .unwrap()
            })
            .unwrap();
        assert_eq!(best, 24);
    }

    #[test]
    fn a64fx_openmp_c_faster_than_fortran_by_10pct() {
        let m = MemoryModel::a64fx();
        let c = m.stream_openmp(24, Language::C).value();
        let f = m.stream_openmp(24, Language::Fortran).value();
        let ratio = c / f;
        assert!((ratio - 1.0 / 0.9).abs() < 0.02, "C/Fortran {ratio}");
    }

    #[test]
    fn skylake_openmp_reaches_201_at_48_threads() {
        // Paper: 201.2 GB/s at 48 threads.
        let m = MemoryModel::skylake_8160();
        let bw = m.stream_openmp(48, Language::C).as_gb_per_sec();
        assert!((bw - 201.2).abs() < 6.0, "got {bw}");
    }

    #[test]
    fn skylake_openmp_monotone_then_flat() {
        let m = MemoryModel::skylake_8160();
        let mut prev = 0.0;
        for t in 1..=48 {
            let bw = m.stream_openmp(t, Language::C).value();
            assert!(bw >= prev * 0.999, "dip at {t} threads");
            prev = bw;
        }
    }

    #[test]
    fn a64fx_mpi_fortran_hits_862() {
        // Paper: 862.6 GB/s = 84 % of peak with 4 ranks × 12 threads.
        let m = MemoryModel::a64fx();
        let bw = m.stream_mpi_omp(4, 12, Language::Fortran).as_gb_per_sec();
        assert!((bw - 862.6).abs() < 2.0, "got {bw}");
    }

    #[test]
    fn a64fx_mpi_c_hits_421() {
        // Paper: 421.1 GB/s for the C MPI build.
        let m = MemoryModel::a64fx();
        let bw = m.stream_mpi_omp(4, 12, Language::C).as_gb_per_sec();
        assert!((bw - 421.1).abs() < 2.0, "got {bw}");
    }

    #[test]
    fn mpi_bandwidth_scales_with_ranks() {
        let m = MemoryModel::a64fx();
        let one = m.stream_mpi_omp(1, 12, Language::Fortran).value();
        let four = m.stream_mpi_omp(4, 12, Language::Fortran).value();
        assert!((four / one - 4.0).abs() < 0.01);
    }

    #[test]
    fn skylake_mpi_matches_openmp_ceiling() {
        let m = MemoryModel::skylake_8160();
        let bw = m.stream_mpi_omp(2, 24, Language::Fortran).as_gb_per_sec();
        assert!((bw - 201.2).abs() < 3.0, "got {bw}");
    }

    #[test]
    fn app_bandwidth_ratio_hbm_vs_ddr() {
        // HBM advantage for rank-per-core applications ≈ 4.3×.
        let a = MemoryModel::a64fx().app_sustained_bandwidth().value();
        let s = MemoryModel::skylake_8160()
            .app_sustained_bandwidth()
            .value();
        let ratio = a / s;
        assert!(ratio > 3.5 && ratio < 5.0, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "thread count")]
    fn openmp_thread_bounds_checked() {
        MemoryModel::a64fx().stream_openmp(49, Language::C);
    }

    #[test]
    #[should_panic(expected = "one rank per NUMA domain")]
    fn mpi_rank_bounds_checked() {
        MemoryModel::a64fx().stream_mpi_omp(5, 1, Language::C);
    }

    #[test]
    #[should_panic(expected = "oversubscription")]
    fn mpi_oversubscription_checked() {
        MemoryModel::a64fx().stream_mpi_omp(4, 13, Language::C);
    }
}
