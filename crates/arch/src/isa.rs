//! Vector instruction-set descriptions and floating-point precisions.

use serde::{Deserialize, Serialize};

/// Floating-point datatype precision, as used by the FPU µKernel (Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Precision {
    /// IEEE 754 binary16 (half).
    Half,
    /// IEEE 754 binary32 (single).
    Single,
    /// IEEE 754 binary64 (double).
    Double,
}

impl Precision {
    /// Width of one element in bytes.
    pub fn bytes(self) -> usize {
        match self {
            Precision::Half => 2,
            Precision::Single => 4,
            Precision::Double => 8,
        }
    }

    /// All precisions in the order the paper's Figure 1 plots them.
    pub const ALL: [Precision; 3] = [Precision::Half, Precision::Single, Precision::Double];

    /// Short label used on figure axes.
    pub fn label(self) -> &'static str {
        match self {
            Precision::Half => "half",
            Precision::Single => "single",
            Precision::Double => "double",
        }
    }
}

/// A SIMD extension as implemented by a particular core.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VectorIsa {
    /// Name, e.g. `"SVE"` or `"AVX512"`.
    pub name: String,
    /// Vector register width in bits (512 for SVE on A64FX and for AVX-512).
    pub width_bits: usize,
    /// Whether the ISA supports half-precision *arithmetic* (not just
    /// storage). True for SVE/NEON on Armv8.2 (FP16 extension); false for
    /// AVX-512 on Skylake (no AVX512-FP16).
    pub fp16_arithmetic: bool,
}

impl VectorIsa {
    /// 512-bit Scalable Vector Extension as configured on the A64FX.
    pub fn sve_512() -> Self {
        Self {
            name: "SVE".into(),
            width_bits: 512,
            fp16_arithmetic: true,
        }
    }

    /// 128-bit NEON (Advanced SIMD) on Armv8.2 with the FP16 extension.
    pub fn neon() -> Self {
        Self {
            name: "NEON".into(),
            width_bits: 128,
            fp16_arithmetic: true,
        }
    }

    /// AVX-512 as implemented on Skylake-SP (no FP16 arithmetic).
    pub fn avx512() -> Self {
        Self {
            name: "AVX512".into(),
            width_bits: 512,
            fp16_arithmetic: false,
        }
    }

    /// Number of elements of the given precision processed per vector
    /// instruction (the paper's `s` term in `P_v = s · i · f · o`).
    /// Returns `None` when the ISA cannot do arithmetic at that precision.
    pub fn lanes(&self, p: Precision) -> Option<usize> {
        if p == Precision::Half && !self.fp16_arithmetic {
            return None;
        }
        Some(self.width_bits / (p.bytes() * 8))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_bytes() {
        assert_eq!(Precision::Half.bytes(), 2);
        assert_eq!(Precision::Single.bytes(), 4);
        assert_eq!(Precision::Double.bytes(), 8);
    }

    #[test]
    fn sve_lane_counts() {
        let sve = VectorIsa::sve_512();
        assert_eq!(sve.lanes(Precision::Double), Some(8));
        assert_eq!(sve.lanes(Precision::Single), Some(16));
        assert_eq!(sve.lanes(Precision::Half), Some(32));
    }

    #[test]
    fn neon_lane_counts() {
        let neon = VectorIsa::neon();
        assert_eq!(neon.lanes(Precision::Double), Some(2));
        assert_eq!(neon.lanes(Precision::Single), Some(4));
        assert_eq!(neon.lanes(Precision::Half), Some(8));
    }

    #[test]
    fn avx512_has_no_fp16_arithmetic() {
        let avx = VectorIsa::avx512();
        assert_eq!(avx.lanes(Precision::Half), None);
        assert_eq!(avx.lanes(Precision::Double), Some(8));
        assert_eq!(avx.lanes(Precision::Single), Some(16));
    }
}
