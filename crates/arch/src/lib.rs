//! # arch — micro-architectural performance models
//!
//! Analytic models of the two machines evaluated in the paper:
//!
//! * **CTE-Arm** — Fujitsu A64FX node: 48 Armv8.2 cores in four Core Memory
//!   Groups (CMGs), 512-bit SVE, 32 GB HBM2 at 1024 GB/s, cores joined by a
//!   ring bus.
//! * **MareNostrum 4** — dual-socket Intel Xeon Platinum 8160 node: 2 × 24
//!   Skylake cores, AVX-512, 96 GB DDR4-2666 over 12 channels at 256 GB/s.
//!
//! The constants come from the paper's Table I and the Fujitsu A64FX
//! micro-architecture manual. On top of the raw descriptions this crate
//! provides:
//!
//! * [`isa`] — vector ISA descriptions (NEON, SVE, AVX-512) and precisions.
//! * [`cpu`] — per-core execution model (FMA pipes, scalar ILP strength).
//! * [`cache`] — cache hierarchies.
//! * [`cachesim`] — parametric set-associative cache simulation over
//!   symbolic access traces, and the %-of-peak predictor built on it.
//! * [`memory`] — NUMA domains and sustained-bandwidth models, including
//!   the OpenMP cross-CMG ring-bus penalty and the MPI-per-CMG locality
//!   model that reproduce the paper's STREAM results.
//! * [`compiler`] — the compiler/vectorization model: how much of a kernel's
//!   vectorizable work each toolchain actually lands on the SIMD unit.
//!   This encodes the paper's central finding (GNU on A64FX leaves SVE
//!   mostly idle) as a model *input*; application slowdowns are outputs.
//! * [`cost`] — the roofline-with-scalar-ILP kernel cost model.
//! * [`machines`] — the two fully-populated machine descriptions.

#![warn(missing_docs)]

pub mod builder;
pub mod cache;
pub mod cachesim;
pub mod compiler;
pub mod cost;
pub mod cpu;
pub mod fugaku;
pub mod isa;
pub mod machines;
pub mod memory;
pub mod power;
pub mod roofline;

pub use cache::{CacheHierarchy, CacheLevel};
pub use cachesim::{
    CacheSim, HierarchyConfig, KernelSpec, Prediction, Predictor, Trace, TraceBuilder,
};
pub use compiler::{Compiler, CompilerId, Language};
pub use cost::{CostModel, KernelProfile};
pub use cpu::CoreModel;
pub use isa::{Precision, VectorIsa};
pub use machines::{cte_arm, marenostrum4, Machine};
pub use memory::{MemoryModel, NumaDomain};
