//! Roofline analysis: the classic visual model for the machine balance
//! discussion in the paper's conclusions (weak scalar core vs fast memory).
//!
//! For a machine and toolchain, the attainable performance at arithmetic
//! intensity `I` (flop/byte) is
//!
//! ```text
//! P(I) = min(P_compute, I · B_sustained)
//! ```
//!
//! with several compute ceilings: the vector peak, the compiler-achieved
//! ceiling (uptake-limited), and the scalar ceiling. The machine-balance
//! ridge point `I* = P / B` tells which kernels are memory-bound: the
//! A64FX's enormous bandwidth pushes its ridge to ~3.8 flop/byte while
//! MareNostrum 4 sits at ~16 — which is exactly why the Alya Solver phase
//! (low intensity) nearly closes the gap while Assembly (high intensity)
//! does not.

use crate::compiler::Compiler;
use crate::machines::Machine;
use serde::{Deserialize, Serialize};

/// One roofline ceiling.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ceiling {
    /// Name, e.g. `"SVE peak"` or `"scalar (untuned)"`.
    pub name: String,
    /// Node-level compute ceiling in flop/s.
    pub flops: f64,
}

/// A machine's roofline under a given toolchain.
///
/// ```
/// use arch::{compiler::Compiler, roofline::Roofline};
/// let r = Roofline::build(&arch::machines::cte_arm(), &Compiler::gnu_sve());
/// // HBM pushes the ridge point below 4 flop/byte.
/// assert!(r.ridge(0) < 4.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Roofline {
    /// Machine name.
    pub machine: String,
    /// Sustained node memory bandwidth (bytes/s).
    pub bandwidth: f64,
    /// Compute ceilings, highest first.
    pub ceilings: Vec<Ceiling>,
}

impl Roofline {
    /// Build the roofline of a machine/toolchain pair. The "compiler"
    /// ceiling assumes a fully-vectorizable untuned kernel; the scalar
    /// ceiling assumes none of it vectorizes.
    pub fn build(machine: &Machine, compiler: &Compiler) -> Self {
        let cores = machine.cores_per_node() as f64;
        let vector_peak = machine.peak_dp_node().value();
        let scalar_sustained =
            machine.core.sustained_scalar().value() * compiler.scalar_quality * cores;
        let uptake = compiler.uptake_app;
        // Amdahl blend of vector and scalar paths at full vectorizability.
        let compiler_ceiling = 1.0
            / (uptake / (vector_peak * machine.core.full_load_vector_derate)
                + (1.0 - uptake) / scalar_sustained);
        Self {
            machine: machine.name.clone(),
            bandwidth: machine.memory.app_sustained_bandwidth().value(),
            ceilings: vec![
                Ceiling {
                    name: format!("{} peak", machine.core.vector_isa.name),
                    flops: vector_peak,
                },
                Ceiling {
                    name: format!("compiler-achieved ({:?})", compiler.id),
                    flops: compiler_ceiling,
                },
                Ceiling {
                    name: "scalar (untuned)".into(),
                    flops: scalar_sustained,
                },
            ],
        }
    }

    /// Attainable flop/s at intensity `I` under a given ceiling index.
    pub fn attainable(&self, ceiling: usize, intensity: f64) -> f64 {
        assert!(intensity >= 0.0, "negative intensity");
        (intensity * self.bandwidth).min(self.ceilings[ceiling].flops)
    }

    /// The ridge point `I* = P/B` of a ceiling: kernels below it are
    /// memory-bound, above it compute-bound.
    pub fn ridge(&self, ceiling: usize) -> f64 {
        self.ceilings[ceiling].flops / self.bandwidth
    }

    /// Sample the roofline over a log-spaced intensity range for plotting:
    /// `(intensity, attainable-per-ceiling…)` rows.
    pub fn sample(&self, lo: f64, hi: f64, points: usize) -> Vec<(f64, Vec<f64>)> {
        assert!(lo > 0.0 && hi > lo && points >= 2, "bad sampling range");
        let step = (hi / lo).powf(1.0 / (points - 1) as f64);
        (0..points)
            .map(|i| {
                let x = lo * step.powi(i as i32);
                let ys = (0..self.ceilings.len())
                    .map(|c| self.attainable(c, x))
                    .collect();
                (x, ys)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines::{cte_arm, marenostrum4};

    #[test]
    fn a64fx_ridge_is_low_thanks_to_hbm() {
        let r = Roofline::build(&cte_arm(), &Compiler::fujitsu());
        let ridge = r.ridge(0);
        // 3379 GFlop/s / 862.6 GB/s ≈ 3.9 flop/byte.
        assert!((ridge - 3.9).abs() < 0.2, "ridge {ridge}");
    }

    #[test]
    fn skylake_ridge_is_4x_higher() {
        let a = Roofline::build(&cte_arm(), &Compiler::fujitsu()).ridge(0);
        let s = Roofline::build(&marenostrum4(), &Compiler::intel()).ridge(0);
        assert!(s > 3.5 * a, "Skylake ridge {s} vs A64FX {a}");
    }

    #[test]
    fn ceilings_are_ordered() {
        for (m, c) in [
            (cte_arm(), Compiler::gnu_sve()),
            (marenostrum4(), Compiler::intel()),
        ] {
            let r = Roofline::build(&m, &c);
            assert!(r.ceilings[0].flops >= r.ceilings[1].flops);
            assert!(r.ceilings[1].flops >= r.ceilings[2].flops);
        }
    }

    #[test]
    fn gnu_compiler_ceiling_collapses_toward_scalar() {
        // With 12 % uptake the achieved ceiling sits much closer to the
        // scalar roof than to the SVE peak — the paper's core finding.
        let r = Roofline::build(&cte_arm(), &Compiler::gnu_sve());
        let peak = r.ceilings[0].flops;
        let achieved = r.ceilings[1].flops;
        let scalar = r.ceilings[2].flops;
        assert!(achieved < 0.1 * peak, "achieved {achieved} vs peak {peak}");
        assert!(
            achieved < 1.35 * scalar,
            "achieved sits near the scalar roof"
        );
    }

    #[test]
    fn attainable_is_min_of_bandwidth_and_ceiling() {
        let r = Roofline::build(&cte_arm(), &Compiler::fujitsu());
        // Deep in memory-bound territory.
        let low = r.attainable(0, 0.1);
        assert!((low - 0.1 * r.bandwidth).abs() < 1.0);
        // Deep in compute-bound territory.
        let high = r.attainable(0, 1000.0);
        assert_eq!(high, r.ceilings[0].flops);
    }

    #[test]
    fn sampling_is_log_spaced_and_monotone() {
        let r = Roofline::build(&marenostrum4(), &Compiler::intel());
        let samples = r.sample(0.01, 100.0, 41);
        assert_eq!(samples.len(), 41);
        assert!((samples[0].0 - 0.01).abs() < 1e-12);
        assert!((samples[40].0 - 100.0).abs() < 1e-9);
        for w in samples.windows(2) {
            assert!(w[1].0 > w[0].0);
            for (a, b) in w[0].1.iter().zip(&w[1].1) {
                assert!(b >= a, "attainable never decreases with intensity");
            }
        }
    }

    #[test]
    fn solver_vs_assembly_explained_by_rooflines() {
        // Alya solver streaming sits at ~0.05 flop/byte (memory-bound on
        // MN4, not on the A64FX side thanks to HBM); assembly at ~50
        // flop/byte (compute-bound on both, so the compiler ceiling rules).
        let cte = Roofline::build(&cte_arm(), &Compiler::gnu_sve());
        let mn4 = Roofline::build(&marenostrum4(), &Compiler::intel());
        // Memory-bound point: A64FX attains more.
        assert!(cte.attainable(1, 0.05) > mn4.attainable(1, 0.05));
        // Compute-bound point: MN4 attains much more (compiler ceiling).
        assert!(mn4.attainable(1, 50.0) > 3.0 * cte.attainable(1, 50.0));
    }
}
