//! Roofline analysis: the classic visual model for the machine balance
//! discussion in the paper's conclusions (weak scalar core vs fast memory).
//!
//! For a machine and toolchain, the attainable performance at arithmetic
//! intensity `I` (flop/byte) is
//!
//! ```text
//! P(I) = min(P_compute, I · B_sustained)
//! ```
//!
//! with several compute ceilings: the vector peak, the compiler-achieved
//! ceiling (uptake-limited), and the scalar ceiling. The machine-balance
//! ridge point `I* = P / B` tells which kernels are memory-bound: the
//! A64FX's enormous bandwidth pushes its ridge to ~3.8 flop/byte while
//! MareNostrum 4 sits at ~16 — which is exactly why the Alya Solver phase
//! (low intensity) nearly closes the gap while Assembly (high intensity)
//! does not.

use crate::cachesim::{CacheSim, HierarchyConfig, Trace};
use crate::compiler::Compiler;
use crate::machines::Machine;
use serde::{Deserialize, Serialize};

/// One roofline ceiling.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ceiling {
    /// Name, e.g. `"SVE peak"` or `"scalar (untuned)"`.
    pub name: String,
    /// Node-level compute ceiling in flop/s.
    pub flops: f64,
}

/// A machine's roofline under a given toolchain.
///
/// ```
/// use arch::{compiler::Compiler, roofline::Roofline};
/// let r = Roofline::build(&arch::machines::cte_arm(), &Compiler::gnu_sve());
/// // HBM pushes the ridge point below 4 flop/byte.
/// assert!(r.ridge(0) < 4.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Roofline {
    /// Machine name.
    pub machine: String,
    /// Sustained node memory bandwidth (bytes/s).
    pub bandwidth: f64,
    /// Compute ceilings, highest first.
    pub ceilings: Vec<Ceiling>,
}

impl Roofline {
    /// Build the roofline of a machine/toolchain pair. The "compiler"
    /// ceiling assumes a fully-vectorizable untuned kernel; the scalar
    /// ceiling assumes none of it vectorizes.
    pub fn build(machine: &Machine, compiler: &Compiler) -> Self {
        let cores = machine.cores_per_node() as f64;
        let vector_peak = machine.peak_dp_node().value();
        let scalar_sustained =
            machine.core.sustained_scalar().value() * compiler.scalar_quality * cores;
        let uptake = compiler.uptake_app;
        // Amdahl blend of vector and scalar paths at full vectorizability.
        let compiler_ceiling = 1.0
            / (uptake / (vector_peak * machine.core.full_load_vector_derate)
                + (1.0 - uptake) / scalar_sustained);
        Self {
            machine: machine.name.clone(),
            bandwidth: machine.memory.app_sustained_bandwidth().value(),
            ceilings: vec![
                Ceiling {
                    name: format!("{} peak", machine.core.vector_isa.name),
                    flops: vector_peak,
                },
                Ceiling {
                    name: format!("compiler-achieved ({:?})", compiler.id),
                    flops: compiler_ceiling,
                },
                Ceiling {
                    name: "scalar (untuned)".into(),
                    flops: scalar_sustained,
                },
            ],
        }
    }

    /// Attainable flop/s at intensity `I` under a given ceiling index.
    pub fn attainable(&self, ceiling: usize, intensity: f64) -> f64 {
        assert!(intensity >= 0.0, "negative intensity");
        (intensity * self.bandwidth).min(self.ceilings[ceiling].flops)
    }

    /// The ridge point `I* = P/B` of a ceiling: kernels below it are
    /// memory-bound, above it compute-bound.
    pub fn ridge(&self, ceiling: usize) -> f64 {
        self.ceilings[ceiling].flops / self.bandwidth
    }

    /// Sample the roofline over a log-spaced intensity range for plotting:
    /// `(intensity, attainable-per-ceiling…)` rows.
    pub fn sample(&self, lo: f64, hi: f64, points: usize) -> Vec<(f64, Vec<f64>)> {
        assert!(lo > 0.0 && hi > lo && points >= 2, "bad sampling range");
        let step = (hi / lo).powf(1.0 / (points - 1) as f64);
        (0..points)
            .map(|i| {
                let x = lo * step.powi(i as i32);
                let ys = (0..self.ceilings.len())
                    .map(|c| self.attainable(c, x))
                    .collect();
                (x, ys)
            })
            .collect()
    }
}

/// A cache-aware roofline point for one kernel: the classic roofline
/// places a kernel at its *nominal* intensity (flops ÷ bytes the code
/// touches); the cache-aware point uses the *simulated DRAM traffic*
/// instead, which moves kernels with reuse (GEMM, stencils) to the
/// right and leaves pure streams exactly where the flat model put them.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CacheRooflinePoint {
    /// Kernel name (from the trace).
    pub kernel: String,
    /// Flops in the traced region.
    pub flops: f64,
    /// Nominal (flat-counted) bytes of the trace.
    pub nominal_bytes: f64,
    /// Simulated DRAM bytes of the trace.
    pub dram_bytes: f64,
    /// Nominal arithmetic intensity, flop/byte.
    pub nominal_intensity: f64,
    /// Cache-aware arithmetic intensity, flop/byte.
    pub effective_intensity: f64,
}

/// Cache-aware roofline: the flat [`Roofline`] plus a hierarchy config
/// used to place kernels at their simulated-traffic intensity.
///
/// This is additive — the serialized [`Roofline`] stays untouched so
/// existing golden files remain byte-identical.
#[derive(Debug, Clone)]
pub struct CacheRoofline {
    /// The flat roofline (ceilings and sustained bandwidth).
    pub roofline: Roofline,
    /// The cache hierarchy traces are simulated against.
    pub hierarchy: HierarchyConfig,
}

impl CacheRoofline {
    /// Build from a machine/toolchain pair and a hierarchy config.
    pub fn build(machine: &Machine, compiler: &Compiler, hierarchy: HierarchyConfig) -> Self {
        Self {
            roofline: Roofline::build(machine, compiler),
            hierarchy,
        }
    }

    /// Place a kernel on the roofline: simulate its trace and report both
    /// the nominal and the cache-aware intensity.
    pub fn place(&self, flops: f64, trace: &Trace) -> CacheRooflinePoint {
        assert!(flops >= 0.0, "negative flop count");
        let sim = CacheSim::new(self.hierarchy.clone()).run(trace);
        let nominal_bytes = sim.nominal_bytes as f64;
        let dram_bytes = sim.dram_bytes() as f64;
        CacheRooflinePoint {
            kernel: trace.name.clone(),
            flops,
            nominal_bytes,
            dram_bytes,
            nominal_intensity: flops / nominal_bytes.max(1.0),
            effective_intensity: flops / dram_bytes.max(1.0),
        }
    }

    /// Attainable flop/s for a placed kernel under a ceiling, using the
    /// cache-aware intensity.
    pub fn attainable(&self, ceiling: usize, point: &CacheRooflinePoint) -> f64 {
        self.roofline.attainable(ceiling, point.effective_intensity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cachesim::TraceBuilder;
    use crate::machines::{cte_arm, marenostrum4};

    #[test]
    fn a64fx_ridge_is_low_thanks_to_hbm() {
        let r = Roofline::build(&cte_arm(), &Compiler::fujitsu());
        let ridge = r.ridge(0);
        // 3379 GFlop/s / 862.6 GB/s ≈ 3.9 flop/byte.
        assert!((ridge - 3.9).abs() < 0.2, "ridge {ridge}");
    }

    #[test]
    fn skylake_ridge_is_4x_higher() {
        let a = Roofline::build(&cte_arm(), &Compiler::fujitsu()).ridge(0);
        let s = Roofline::build(&marenostrum4(), &Compiler::intel()).ridge(0);
        assert!(s > 3.5 * a, "Skylake ridge {s} vs A64FX {a}");
    }

    #[test]
    fn ceilings_are_ordered() {
        for (m, c) in [
            (cte_arm(), Compiler::gnu_sve()),
            (marenostrum4(), Compiler::intel()),
        ] {
            let r = Roofline::build(&m, &c);
            assert!(r.ceilings[0].flops >= r.ceilings[1].flops);
            assert!(r.ceilings[1].flops >= r.ceilings[2].flops);
        }
    }

    #[test]
    fn gnu_compiler_ceiling_collapses_toward_scalar() {
        // With 12 % uptake the achieved ceiling sits much closer to the
        // scalar roof than to the SVE peak — the paper's core finding.
        let r = Roofline::build(&cte_arm(), &Compiler::gnu_sve());
        let peak = r.ceilings[0].flops;
        let achieved = r.ceilings[1].flops;
        let scalar = r.ceilings[2].flops;
        assert!(achieved < 0.1 * peak, "achieved {achieved} vs peak {peak}");
        assert!(
            achieved < 1.35 * scalar,
            "achieved sits near the scalar roof"
        );
    }

    #[test]
    fn attainable_is_min_of_bandwidth_and_ceiling() {
        let r = Roofline::build(&cte_arm(), &Compiler::fujitsu());
        // Deep in memory-bound territory.
        let low = r.attainable(0, 0.1);
        assert!((low - 0.1 * r.bandwidth).abs() < 1.0);
        // Deep in compute-bound territory.
        let high = r.attainable(0, 1000.0);
        assert_eq!(high, r.ceilings[0].flops);
    }

    #[test]
    fn sampling_is_log_spaced_and_monotone() {
        let r = Roofline::build(&marenostrum4(), &Compiler::intel());
        let samples = r.sample(0.01, 100.0, 41);
        assert_eq!(samples.len(), 41);
        assert!((samples[0].0 - 0.01).abs() < 1e-12);
        assert!((samples[40].0 - 100.0).abs() < 1e-9);
        for w in samples.windows(2) {
            assert!(w[1].0 > w[0].0);
            for (a, b) in w[0].1.iter().zip(&w[1].1) {
                assert!(b >= a, "attainable never decreases with intensity");
            }
        }
    }

    #[test]
    fn cache_roofline_moves_reuse_kernels_right() {
        let cr = CacheRoofline::build(
            &cte_arm(),
            &Compiler::fujitsu(),
            HierarchyConfig::a64fx_core(),
        );
        // Streaming triad: effective == nominal intensity exactly.
        let n = 1u64 << 16;
        let mut t = TraceBuilder::new("triad");
        let a = t.array("a", 8 * n);
        let b = t.array("b", 8 * n);
        let c = t.array("c", 8 * n);
        t.open(n);
        t.read(b, 0, &[8]);
        t.read(c, 0, &[8]);
        t.write(a, 0, &[8]);
        t.close();
        let triad = cr.place(2.0 * n as f64, &t.build());
        assert_eq!(triad.nominal_bytes, triad.dram_bytes);

        // A cache-resident re-read loop: effective intensity far higher.
        let m = 2048u64;
        let mut t = TraceBuilder::new("reread");
        let x = t.array("x", 8 * m);
        t.open(16);
        t.open(m);
        t.read(x, 0, &[0, 8]);
        t.close();
        t.close();
        let hot = cr.place(2.0 * (16 * m) as f64, &t.build());
        assert!(
            hot.effective_intensity > 5.0 * hot.nominal_intensity,
            "reuse: nominal {} vs effective {}",
            hot.nominal_intensity,
            hot.effective_intensity
        );
        // And the cache-aware attainable reflects that.
        assert!(cr.attainable(0, &hot) > cr.attainable(0, &triad));
    }

    #[test]
    fn solver_vs_assembly_explained_by_rooflines() {
        // Alya solver streaming sits at ~0.05 flop/byte (memory-bound on
        // MN4, not on the A64FX side thanks to HBM); assembly at ~50
        // flop/byte (compute-bound on both, so the compiler ceiling rules).
        let cte = Roofline::build(&cte_arm(), &Compiler::gnu_sve());
        let mn4 = Roofline::build(&marenostrum4(), &Compiler::intel());
        // Memory-bound point: A64FX attains more.
        assert!(cte.attainable(1, 0.05) > mn4.attainable(1, 0.05));
        // Compute-bound point: MN4 attains much more (compiler ceiling).
        assert!(mn4.attainable(1, 50.0) > 3.0 * cte.attainable(1, 50.0));
    }
}
