//! Cache hierarchy descriptions.

use serde::{Deserialize, Serialize};
use simkit::units::{Bandwidth, Bytes};

/// One level of cache.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CacheLevel {
    /// Level name, e.g. `"L1d"`, `"L2"`.
    pub name: String,
    /// Capacity of one instance of this cache.
    pub size: Bytes,
    /// Cores sharing one instance (1 = private; 12 = per-CMG L2 on A64FX).
    pub shared_by: usize,
    /// Cache line size in bytes (64 on Skylake, 256 on A64FX).
    pub line_bytes: usize,
    /// Aggregate load bandwidth of one instance.
    pub bandwidth: Bandwidth,
}

/// An ordered cache hierarchy, innermost first.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CacheHierarchy {
    /// Levels from L1 outward.
    pub levels: Vec<CacheLevel>,
}

impl CacheHierarchy {
    /// The A64FX hierarchy: 64 KiB private L1d, 8 MiB L2 shared by the 12
    /// cores of a CMG (4 × 8 MiB = 32 MB per node as Table I lists it),
    /// no L3. 256-byte cache lines.
    pub fn a64fx() -> Self {
        Self {
            levels: vec![
                CacheLevel {
                    name: "L1d".into(),
                    size: Bytes::kib(64.0),
                    shared_by: 1,
                    line_bytes: 256,
                    // ~230 GB/s per core L1 load bandwidth (2×512-bit loads/cycle).
                    bandwidth: Bandwidth::gb_per_sec(230.0),
                },
                CacheLevel {
                    name: "L2".into(),
                    size: Bytes::mib(8.0),
                    shared_by: 12,
                    line_bytes: 256,
                    // Per-CMG L2 bandwidth (manual: ~900 GB/s read per CMG).
                    bandwidth: Bandwidth::gb_per_sec(900.0),
                },
            ],
        }
    }

    /// The Skylake-SP 8160 hierarchy: 32 KiB L1d + 1 MiB L2 private,
    /// 33 MB L3 shared per socket (non-inclusive). 64-byte lines.
    pub fn skylake_8160() -> Self {
        Self {
            levels: vec![
                CacheLevel {
                    name: "L1d".into(),
                    size: Bytes::kib(32.0),
                    shared_by: 1,
                    line_bytes: 64,
                    bandwidth: Bandwidth::gb_per_sec(270.0),
                },
                CacheLevel {
                    name: "L2".into(),
                    size: Bytes::kib(1024.0),
                    shared_by: 1,
                    line_bytes: 64,
                    bandwidth: Bandwidth::gb_per_sec(130.0),
                },
                CacheLevel {
                    name: "L3".into(),
                    size: Bytes::mib(33.0),
                    shared_by: 24,
                    line_bytes: 64,
                    bandwidth: Bandwidth::gb_per_sec(400.0),
                },
            ],
        }
    }

    /// Total last-level-cache capacity across `n_instances_on_node`
    /// instances; used for the STREAM sizing rule
    /// `E ≥ max(1e7, 4·S/8)` from the paper.
    pub fn llc_total(&self, cores_per_node: usize) -> Bytes {
        match self.levels.last() {
            None => Bytes::ZERO,
            Some(llc) => {
                let instances = cores_per_node.div_ceil(llc.shared_by);
                Bytes::new(llc.size.value() * instances as f64)
            }
        }
    }

    /// Smallest level that fits a working set of `bytes`, or `None` if it
    /// only fits in main memory.
    pub fn level_fitting(&self, bytes: Bytes) -> Option<&CacheLevel> {
        self.levels.iter().find(|l| bytes.value() <= l.size.value())
    }
}

/// Minimum STREAM array length (in 8-byte elements) mandated by the
/// benchmark's rules: `E ≥ max(1e7, 4·S/8)` with `S` the total last-level
/// cache size in bytes.
pub fn stream_min_elements(llc_total: Bytes) -> usize {
    let by_cache = (4.0 * llc_total.value() / 8.0).ceil() as usize;
    by_cache.max(10_000_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a64fx_llc_total_is_32mb() {
        let h = CacheHierarchy::a64fx();
        // 4 CMGs × 8 MiB.
        let total = h.llc_total(48);
        assert_eq!(total.value(), 4.0 * 8.0 * 1024.0 * 1024.0);
    }

    #[test]
    fn skylake_llc_total_is_33mb_per_socket() {
        let h = CacheHierarchy::skylake_8160();
        // One socket's worth of cores -> one L3 instance.
        let total = h.llc_total(24);
        assert_eq!(total.value(), 33.0 * 1024.0 * 1024.0);
        // Full node (48 cores) -> two instances.
        assert_eq!(h.llc_total(48).value(), 66.0 * 1024.0 * 1024.0);
    }

    #[test]
    fn stream_sizing_rule() {
        // Small cache: the 1e7 floor dominates.
        assert_eq!(stream_min_elements(Bytes::mib(8.0)), 10_000_000);
        // Big cache: 4·S/8 dominates (S = 66 MiB -> 34.6M elements).
        let s = Bytes::mib(66.0);
        let e = stream_min_elements(s);
        assert_eq!(e, (4.0 * s.value() / 8.0) as usize);
        assert!(e > 10_000_000);
    }

    #[test]
    fn level_fitting_walks_outward() {
        let h = CacheHierarchy::skylake_8160();
        assert_eq!(h.level_fitting(Bytes::kib(16.0)).unwrap().name, "L1d");
        assert_eq!(h.level_fitting(Bytes::kib(512.0)).unwrap().name, "L2");
        assert_eq!(h.level_fitting(Bytes::mib(20.0)).unwrap().name, "L3");
        assert!(h.level_fitting(Bytes::gib(1.0)).is_none());
    }

    #[test]
    fn a64fx_lines_are_256_bytes() {
        let h = CacheHierarchy::a64fx();
        assert!(h.levels.iter().all(|l| l.line_bytes == 256));
    }
}
