//! The kernel cost model: roofline with an explicit scalar/vector split.
//!
//! A kernel is described by *what it does* ([`KernelProfile`]: flops, memory
//! traffic, intrinsic vectorizability, precision) and costed against *where
//! it runs* (a [`crate::machines::Machine`] plus a
//! [`crate::compiler::Compiler`]). The execution time of a chunk of work on
//! `cores` cores is
//!
//! ```text
//! t_compute = flops · [ v / R_vec  +  (1 − v) / R_scalar ]
//! t_memory  = bytes / B_share
//! t         = max(t_compute, t_memory)          (perfect overlap roofline)
//! ```
//!
//! where `v` is the *achieved* vectorized fraction (kernel vectorizability ×
//! compiler uptake), `R_vec` the derated vector rate, `R_scalar` the
//! sustained scalar rate (peak × out-of-order strength × compiler scalar
//! quality), and `B_share` the cores' share of the node's sustained memory
//! bandwidth.

use crate::cachesim::{CacheSim, HierarchyConfig, Trace};
use crate::compiler::Compiler;
use crate::cpu::CoreModel;
use crate::isa::Precision;
use crate::memory::MemoryModel;
use serde::{Deserialize, Serialize};
use simkit::units::{Bandwidth, Bytes, Flops, Time};

/// Strategy for turning a symbolic access trace into main-memory traffic.
///
/// Two implementations ship: [`FlatRoofline`] (the element-granular
/// analytic count this crate always used — kept as the fallback and as the
/// differential-testing oracle) and [`CacheSimModel`] (line-accurate
/// traffic from [`crate::cachesim`]). On pure streaming traces both agree
/// exactly; they diverge precisely where reuse or write-allocate effects
/// exist, which is what the differential tests pin.
pub trait TrafficModel {
    /// Model name for reports.
    fn model_name(&self) -> &'static str;
    /// Predicted DRAM bytes for one execution of `trace`.
    fn dram_bytes(&self, trace: &Trace) -> f64;
}

/// The flat analytic byte count: every access costs its element size.
#[derive(Debug, Clone, Copy, Default)]
pub struct FlatRoofline;

impl TrafficModel for FlatRoofline {
    fn model_name(&self) -> &'static str {
        "flat-roofline"
    }

    fn dram_bytes(&self, trace: &Trace) -> f64 {
        trace.nominal_bytes() as f64
    }
}

/// Line-accurate traffic from the parametric cache simulator.
#[derive(Debug, Clone)]
pub struct CacheSimModel {
    /// Hierarchy to simulate.
    pub cfg: HierarchyConfig,
}

impl CacheSimModel {
    /// Simulator over the A64FX per-core hierarchy slice.
    pub fn a64fx() -> Self {
        Self {
            cfg: HierarchyConfig::a64fx_core(),
        }
    }

    /// Simulator over the Skylake per-core hierarchy slice.
    pub fn skylake() -> Self {
        Self {
            cfg: HierarchyConfig::skylake_core(),
        }
    }
}

impl TrafficModel for CacheSimModel {
    fn model_name(&self) -> &'static str {
        "cachesim"
    }

    fn dram_bytes(&self, trace: &Trace) -> f64 {
        CacheSim::new(self.cfg.clone()).run(trace).dram_bytes() as f64
    }
}

/// Engaged-vector efficiency implied by a kernel's gather mix: unit-stride
/// lanes run at full width while gathered elements serialize to roughly
/// one per cycle, so a fraction `g` of gathered loads costs `g·lanes`
/// issue slots. This replaces the old per-kernel hard-coded efficiencies.
pub fn gather_vector_efficiency(gather_fraction: f64, lanes: f64) -> f64 {
    let g = gather_fraction.clamp(0.0, 1.0);
    1.0 / ((1.0 - g) + g * lanes)
}

/// A static description of a computational kernel's resource appetite.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KernelProfile {
    /// Human name for reports, e.g. `"alya-assembly"`.
    pub name: String,
    /// Floating-point operations in the chunk being costed.
    pub flops: Flops,
    /// Main-memory traffic of the chunk (beyond-LLC bytes).
    pub bytes: Bytes,
    /// Fraction of the flops that live in vectorizable loops `[0, 1]`.
    pub vectorizable: f64,
    /// Whether the loops are tuned/benchmark-style (pragmas, unit stride)
    /// or un-tuned application code — selects the compiler uptake tier.
    pub tuned: bool,
    /// Dominant floating-point precision.
    pub precision: Precision,
    /// Efficiency of the vector unit once engaged (gather/scatter overhead,
    /// short loop bodies): derates `R_vec`, in `(0, 1]`.
    pub vector_efficiency: f64,
}

impl KernelProfile {
    /// Convenience constructor for a double-precision profile.
    pub fn dp(name: impl Into<String>, flops: f64, bytes: f64) -> Self {
        Self {
            name: name.into(),
            flops: Flops::new(flops),
            bytes: Bytes::new(bytes),
            vectorizable: 0.8,
            tuned: false,
            precision: Precision::Double,
            vector_efficiency: 0.8,
        }
    }

    /// Set the vectorizable fraction (builder style).
    pub fn with_vectorizable(mut self, v: f64) -> Self {
        self.vectorizable = v;
        self
    }

    /// Mark as tuned benchmark code (builder style).
    pub fn with_tuned(mut self, tuned: bool) -> Self {
        self.tuned = tuned;
        self
    }

    /// Set the engaged-vector efficiency (builder style).
    pub fn with_vector_efficiency(mut self, e: f64) -> Self {
        self.vector_efficiency = e;
        self
    }

    /// Arithmetic intensity in flop/byte (∞ if no memory traffic).
    pub fn intensity(&self) -> f64 {
        if self.bytes.value() == 0.0 {
            f64::INFINITY
        } else {
            self.flops.value() / self.bytes.value()
        }
    }

    /// Profile of one CSR SpMV over an `n`-row matrix with `nnz` stored
    /// entries: [`spmv_csr_bytes`] of traffic, `2·nnz` flops. The
    /// engaged-vector efficiency is *derived* from the format's gather mix
    /// (one indexed `x` load per three loaded streams) via
    /// [`gather_vector_efficiency`], not hard-coded.
    pub fn spmv_csr(n: usize, nnz: usize) -> Self {
        Self::dp("spmv-csr", 2.0 * nnz as f64, spmv_csr_bytes(n, nnz))
            .with_vectorizable(0.9)
            .with_vector_efficiency(gather_vector_efficiency(1.0 / 3.0, 8.0))
    }

    /// Profile of one stencil-packed SpMV over an `n`-row 27-point operator:
    /// [`spmv_stencil_bytes`] of traffic (no index streams at all), `2·27·n`
    /// flops, unit-stride lanes (zero gathers — the structure is known at
    /// compile time) so the derived efficiency is full width.
    pub fn spmv_stencil(n: usize) -> Self {
        Self::dp("spmv-stencil", 2.0 * 27.0 * n as f64, spmv_stencil_bytes(n))
            .with_vectorizable(0.95)
            .with_tuned(true)
            .with_vector_efficiency(gather_vector_efficiency(0.0, 8.0))
    }

    /// Build a profile whose memory traffic comes from a [`TrafficModel`]
    /// applied to the kernel's symbolic trace and whose engaged-vector
    /// efficiency comes from the trace's gather mix — nothing hand-tuned.
    pub fn from_trace(
        name: impl Into<String>,
        flops: f64,
        trace: &Trace,
        model: &dyn TrafficModel,
    ) -> Self {
        let mix = trace.op_mix();
        Self::dp(name, flops, model.dram_bytes(trace))
            .with_vector_efficiency(gather_vector_efficiency(mix.gather_fraction(), 8.0))
    }
}

/// Main-memory bytes of one CSR SpMV (`y = A·x`, `n` rows, `nnz` stored
/// entries): every stored entry streams a value (8 B) and a column index
/// (8 B), the row pointers add `8·(n+1)`, and each row reads and writes `y`
/// (16 B per row). `x` reuse is assumed perfect (it fits in cache for the
/// grids benched here), matching the counting used by the host benches.
pub fn spmv_csr_bytes(n: usize, nnz: usize) -> f64 {
    16.0 * nnz as f64 + 8.0 * (n as f64 + 1.0) + 16.0 * n as f64
}

/// Main-memory bytes of one stencil-packed SpMV over `n` rows: the matrix
/// is 27 lane offsets + 27 lane coefficients — constants that live in
/// registers — so the only streams are `x` in and `y` out (8 B each per
/// row). This is the format's whole point: the ~17× traffic drop versus
/// [`spmv_csr_bytes`] on the same operator.
pub fn spmv_stencil_bytes(n: usize) -> f64 {
    16.0 * n as f64
}

/// Core-side *moved* bytes of one CSR SpMV: what the loop actually
/// touches, element by element — values, column indices, one gathered `x`
/// read per entry, row pointers, and the `y` store. Use this (not the
/// model-DRAM count above) when converting measured wall time into an
/// effective GB/s that is comparable across matrix formats.
pub fn spmv_csr_moved_bytes(n: usize, nnz: usize) -> f64 {
    24.0 * nnz as f64 + 8.0 * (n as f64 + 1.0) + 8.0 * n as f64
}

/// Core-side *moved* bytes of one stencil-packed SpMV: 27 `x` reads plus
/// one `y` store per row. The format still sheds the entire index/value
/// stream of CSR, but its loop touches far more than the 16 B/row the
/// DRAM-side model count says — dividing measured time by the model count
/// is what produced the nonsensical 1.1 GB/s readings in `BENCH_host.json`.
pub fn spmv_stencil_moved_bytes(n: usize) -> f64 {
    8.0 * 28.0 * n as f64
}

/// A costing context: one node's core and memory models plus the toolchain.
#[derive(Debug, Clone)]
pub struct CostModel<'a> {
    /// Core execution model.
    pub core: &'a CoreModel,
    /// Node memory model.
    pub memory: &'a MemoryModel,
    /// Toolchain that compiled the kernel.
    pub compiler: &'a Compiler,
}

impl<'a> CostModel<'a> {
    /// Build a costing context.
    pub fn new(core: &'a CoreModel, memory: &'a MemoryModel, compiler: &'a Compiler) -> Self {
        Self {
            core,
            memory,
            compiler,
        }
    }

    /// Sustained per-core vector rate for a profile: ISA peak at the
    /// profile's precision, derated by engaged-vector efficiency. Falls
    /// back to the scalar pipeline when the ISA lacks the precision.
    pub fn vector_rate(&self, profile: &KernelProfile) -> f64 {
        match self.core.peak_vector(profile.precision) {
            Some(peak) => peak.value() * profile.vector_efficiency,
            None => self.scalar_rate(),
        }
    }

    /// Sustained per-core scalar rate: peak scalar issue × out-of-order
    /// strength × compiler scalar quality.
    pub fn scalar_rate(&self) -> f64 {
        self.core.peak_scalar().value() * self.core.scalar_ilp * self.compiler.scalar_quality
    }

    /// Per-core share of the node's sustained memory bandwidth when
    /// `active_cores` cores are driving memory simultaneously. A single
    /// core is limited by its own line-fill concurrency.
    pub fn bandwidth_share(&self, active_cores: usize) -> Bandwidth {
        assert!(active_cores >= 1, "need at least one active core");
        let node = self.memory.app_sustained_bandwidth().value();
        let fair = node / active_cores as f64;
        let single = self.memory.per_thread_bandwidth.value() * 1.8;
        Bandwidth::bytes_per_sec(fair.min(single))
    }

    /// Execution time of the profile's chunk on one core, with
    /// `active_cores` cores sharing the memory system. When most of the
    /// node's cores drive their SIMD units simultaneously, the vector rate
    /// is derated by the core's full-load factor (AVX-512 licence
    /// frequency on Skylake; no-op on the A64FX).
    pub fn chunk_time(&self, profile: &KernelProfile, active_cores: usize) -> Time {
        let v = self
            .compiler
            .vectorized_fraction(profile.vectorizable, profile.tuned);
        let mut r_vec = self.vector_rate(profile);
        if active_cores * 4 >= self.memory.cores() * 3 {
            r_vec *= self.core.full_load_vector_derate;
        }
        let r_scalar = self.scalar_rate();
        let flops = profile.flops.value();
        let t_compute = flops * (v / r_vec + (1.0 - v) / r_scalar);
        let t_memory = profile.bytes.value() / self.bandwidth_share(active_cores).value();
        Time::seconds(t_compute.max(t_memory))
    }

    /// Time for a chunk evenly split across `cores` cores of the node
    /// (perfect load balance within the node).
    pub fn parallel_time(&self, profile: &KernelProfile, cores: usize) -> Time {
        assert!(
            cores >= 1 && cores <= self.memory.cores(),
            "core count out of range"
        );
        let per_core = KernelProfile {
            flops: profile.flops / cores as f64,
            bytes: profile.bytes / cores as f64,
            ..profile.clone()
        };
        self.chunk_time(&per_core, cores)
    }

    /// Achieved node-level flop rate for the profile on `cores` cores.
    pub fn achieved_rate(&self, profile: &KernelProfile, cores: usize) -> f64 {
        profile.flops.value() / self.parallel_time(profile, cores).value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines;

    fn cte() -> machines::Machine {
        machines::cte_arm()
    }

    fn mn4() -> machines::Machine {
        machines::marenostrum4()
    }

    #[test]
    fn compute_bound_tuned_kernel_approaches_vector_peak() {
        let m = cte();
        let compiler = Compiler::fujitsu();
        let cm = CostModel::new(&m.core, &m.memory, &compiler);
        // Pure-FMA kernel: no memory traffic, fully vectorizable, no
        // gather/scatter losses.
        let k = KernelProfile::dp("fma", 1e12, 0.0)
            .with_vectorizable(1.0)
            .with_tuned(true)
            .with_vector_efficiency(1.0);
        let rate = cm.achieved_rate(&k, 1) / 1e9;
        // Fujitsu uptake 0.95 ⇒ ≥ 85 % of the 70.4 GFlop/s peak.
        assert!(rate > 0.85 * 70.4, "rate {rate}");
    }

    #[test]
    fn memory_bound_kernel_is_bandwidth_limited() {
        let m = cte();
        let compiler = Compiler::gnu_sve();
        let cm = CostModel::new(&m.core, &m.memory, &compiler);
        // STREAM-like: 1 flop per 12 bytes.
        let k = KernelProfile::dp("triad", 1e9, 12e9).with_tuned(true);
        let t = cm.parallel_time(&k, 48);
        let implied_bw = 12e9 / t.value();
        let node_bw = m.memory.app_sustained_bandwidth().value();
        assert!((implied_bw - node_bw).abs() / node_bw < 1e-6);
    }

    #[test]
    fn untuned_app_code_is_much_slower_on_a64fx() {
        // The paper's headline: un-tuned compute-bound application loops run
        // 2–5× slower on the A64FX node because SVE stays idle and the
        // scalar core is weak.
        let a = cte();
        let s = mn4();
        let gnu = Compiler::gnu_sve();
        let intel = Compiler::intel();
        let k = KernelProfile::dp("assembly", 1e12, 1e10).with_vectorizable(0.7);
        let ta = CostModel::new(&a.core, &a.memory, &gnu)
            .parallel_time(&k, 48)
            .value();
        let ts = CostModel::new(&s.core, &s.memory, &intel)
            .parallel_time(&k, 48)
            .value();
        let slowdown = ta / ts;
        assert!(slowdown > 2.0 && slowdown < 7.0, "slowdown {slowdown}");
    }

    #[test]
    fn memory_bound_app_gap_is_small() {
        // Memory-bound phases benefit from HBM: the gap shrinks (paper's
        // Alya Solver observation).
        let a = cte();
        let s = mn4();
        let gnu = Compiler::gnu_sve();
        let intel = Compiler::intel();
        // 1 flop per 8 bytes: firmly memory-bound on both machines.
        let k = KernelProfile::dp("solver", 1e11, 8e11).with_vectorizable(0.6);
        let ta = CostModel::new(&a.core, &a.memory, &gnu)
            .parallel_time(&k, 48)
            .value();
        let ts = CostModel::new(&s.core, &s.memory, &intel)
            .parallel_time(&k, 48)
            .value();
        // HBM node should actually win on pure streaming.
        assert!(ta < ts, "A64FX should win memory-bound: {ta} vs {ts}");
    }

    #[test]
    fn single_core_bandwidth_is_concurrency_limited() {
        let m = cte();
        let compiler = Compiler::gnu_sve();
        let cm = CostModel::new(&m.core, &m.memory, &compiler);
        let one = cm.bandwidth_share(1).value();
        let all = cm.bandwidth_share(48).value() * 48.0;
        assert!(one < all, "one core cannot saturate the node");
        assert!(one <= m.memory.per_thread_bandwidth.value() * 1.8 + 1.0);
    }

    #[test]
    fn parallel_time_scales_with_cores_for_compute_bound() {
        let m = mn4();
        let compiler = Compiler::intel();
        let cm = CostModel::new(&m.core, &m.memory, &compiler);
        let k = KernelProfile::dp("flops", 1e12, 1e6).with_vectorizable(0.9);
        // Below the full-load threshold: ideal scaling.
        let t1 = cm.parallel_time(&k, 1).value();
        let t24 = cm.parallel_time(&k, 24).value();
        let speedup = t1 / t24;
        assert!((speedup - 24.0).abs() < 0.3, "speedup {speedup}");
        // Full node: AVX-512 licence derate makes scaling sub-ideal.
        let t48 = cm.parallel_time(&k, 48).value();
        let full = t1 / t48;
        assert!(full < 48.0 && full > 30.0, "full-node speedup {full}");
    }

    #[test]
    fn a64fx_has_no_full_load_derate() {
        let m = cte();
        let compiler = Compiler::fujitsu();
        let cm = CostModel::new(&m.core, &m.memory, &compiler);
        let k = KernelProfile::dp("flops", 1e12, 1e6)
            .with_vectorizable(1.0)
            .with_tuned(true)
            .with_vector_efficiency(1.0);
        let t1 = cm.parallel_time(&k, 1).value();
        let t48 = cm.parallel_time(&k, 48).value();
        let speedup = t1 / t48;
        assert!((speedup - 48.0).abs() < 0.5, "speedup {speedup}");
    }

    #[test]
    fn intensity() {
        let k = KernelProfile::dp("k", 100.0, 50.0);
        assert!((k.intensity() - 2.0).abs() < 1e-12);
        let inf = KernelProfile::dp("k", 100.0, 0.0);
        assert!(inf.intensity().is_infinite());
    }

    #[test]
    fn stencil_spmv_sheds_the_index_traffic() {
        // A 64³ interior-dominated HPCG grid: nnz ≈ 27·n, so CSR moves
        // ≈ 16·27·n bytes of matrix alone while the stencil form moves 16·n
        // total. The traffic ratio must therefore approach 27×… in the
        // model, bounded below by the non-matrix streams.
        let n = 64 * 64 * 64;
        let nnz = 27 * n; // interior approximation
        let csr = spmv_csr_bytes(n, nnz);
        let st = spmv_stencil_bytes(n);
        let ratio = csr / st;
        assert!(ratio > 25.0 && ratio < 30.0, "traffic ratio {ratio}");
        // Identical flops: format changes traffic, not arithmetic.
        let pc = KernelProfile::spmv_csr(n, nnz);
        let ps = KernelProfile::spmv_stencil(n);
        assert_eq!(pc.flops.value(), ps.flops.value());
        // So the stencil profile has the (much) higher intensity.
        assert!(ps.intensity() > 20.0 * pc.intensity());
    }

    #[test]
    fn stencil_spmv_is_faster_on_the_a64fx_roofline() {
        // Both SpMV forms are memory-bound on the A64FX; the stencil form's
        // traffic reduction must show up as a near-proportional time win.
        let m = cte();
        let compiler = Compiler::fujitsu();
        let cm = CostModel::new(&m.core, &m.memory, &compiler);
        let n = 104 * 104 * 104; // the paper's per-node HPCG box
        let nnz = 27 * n;
        let t_csr = cm.parallel_time(&KernelProfile::spmv_csr(n, nnz), 48);
        let t_st = cm.parallel_time(&KernelProfile::spmv_stencil(n), 48);
        let win = t_csr.value() / t_st.value();
        assert!(win > 5.0, "stencil win {win}");
    }

    #[test]
    #[should_panic(expected = "core count out of range")]
    fn parallel_time_checks_core_count() {
        let m = cte();
        let compiler = Compiler::gnu_sve();
        let cm = CostModel::new(&m.core, &m.memory, &compiler);
        cm.parallel_time(&KernelProfile::dp("k", 1.0, 1.0), 49);
    }

    #[test]
    fn moved_bytes_are_format_comparable() {
        let n = 64 * 64 * 64;
        let nnz = 27 * n;
        // Moved-byte ratio CSR/stencil ≈ (24·27 + 16) / (8·28) ≈ 2.96:
        // same order of magnitude, unlike the ~28× model-byte ratio.
        let ratio = spmv_csr_moved_bytes(n, nnz) / spmv_stencil_moved_bytes(n);
        assert!(ratio > 2.0 && ratio < 4.0, "moved ratio {ratio}");
    }

    #[test]
    fn traffic_models_agree_on_streams_only() {
        use crate::cachesim::TraceBuilder;
        let n = 1u64 << 16;
        let mut t = TraceBuilder::new("copy");
        let src = t.array("src", 8 * n);
        let dst = t.array("dst", 8 * n);
        t.open(n);
        t.read(src, 0, &[8]);
        t.write(dst, 0, &[8]);
        t.close();
        let copy = t.build();
        let flat = FlatRoofline.dram_bytes(&copy);
        let simmed = CacheSimModel::a64fx().dram_bytes(&copy);
        assert_eq!(flat, simmed, "pure streams must agree exactly");

        // A reuse loop breaks the agreement: flat double-counts the
        // second pass, the simulator sees cache hits.
        let m = 2048u64; // 16 KiB, L1-resident
        let mut t = TraceBuilder::new("reread");
        let x = t.array("x", 8 * m);
        t.open(4);
        t.open(m);
        t.read(x, 0, &[0, 8]);
        t.close();
        t.close();
        let reread = t.build();
        let flat = FlatRoofline.dram_bytes(&reread);
        let simmed = CacheSimModel::a64fx().dram_bytes(&reread);
        assert!(simmed < flat / 3.0, "reuse must show: {simmed} vs {flat}");
    }

    #[test]
    fn gather_efficiency_is_derived_not_pinned() {
        // Full-gather kernels collapse to ~1/lanes; pure unit stride is 1.
        assert!((gather_vector_efficiency(0.0, 8.0) - 1.0).abs() < 1e-12);
        assert!((gather_vector_efficiency(1.0, 8.0) - 0.125).abs() < 1e-12);
        // CSR's one-gather-in-three lands well under the stencil form.
        let csr = KernelProfile::spmv_csr(1000, 27_000);
        let st = KernelProfile::spmv_stencil(1000);
        assert!(csr.vector_efficiency < 0.5 * st.vector_efficiency);
    }
}
