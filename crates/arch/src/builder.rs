//! A builder for hypothetical machines — the "what if" API.
//!
//! The paper's conclusions invite counterfactuals: what if the A64FX had
//! MareNostrum 4's memory capacity? What if a Skylake node had HBM? What
//! would a bigger CTE-Arm look like? The builder starts from a real
//! machine and swaps components while keeping everything else consistent,
//! so the whole experiment stack (HPL, HPCG, apps, energy, rooflines) runs
//! unchanged on the variant.

use crate::machines::Machine;
use crate::memory::MemoryModel;
use simkit::units::{Bandwidth, Bytes};

/// Fluent construction of machine variants.
#[derive(Debug, Clone)]
pub struct MachineBuilder {
    machine: Machine,
}

impl MachineBuilder {
    /// Start from an existing machine.
    pub fn from(machine: Machine) -> Self {
        Self { machine }
    }

    /// Rename the variant.
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.machine.name = name.into();
        self
    }

    /// Change the cluster size.
    ///
    /// # Panics
    /// Panics on zero nodes.
    pub fn with_nodes(mut self, nodes: usize) -> Self {
        assert!(nodes >= 1, "a cluster needs nodes");
        self.machine.nodes = nodes;
        self
    }

    /// Swap the whole memory subsystem (e.g. HBM ↔ DDR4).
    pub fn with_memory(mut self, memory: MemoryModel) -> Self {
        assert_eq!(
            memory.cores(),
            self.machine.cores_per_node(),
            "memory model must cover the same cores"
        );
        self.machine.memory = memory;
        self
    }

    /// Scale per-domain memory capacity (e.g. 3× for a 96 GB A64FX node).
    pub fn with_memory_capacity_factor(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "capacity factor must be positive");
        self.machine.memory.domain.capacity =
            Bytes::new(self.machine.memory.domain.capacity.value() * factor);
        self
    }

    /// Change the core clock (GHz); peaks follow automatically.
    pub fn with_frequency(mut self, ghz: f64) -> Self {
        assert!(ghz > 0.0, "frequency must be positive");
        self.machine.core.freq_ghz = ghz;
        self
    }

    /// Change the out-of-order strength parameter.
    pub fn with_scalar_ilp(mut self, ilp: f64) -> Self {
        assert!(ilp > 0.0 && ilp <= 1.0, "scalar ILP in (0, 1]");
        self.machine.core.scalar_ilp = ilp;
        self
    }

    /// Change the network injection peak.
    pub fn with_network_peak(mut self, bw: Bandwidth) -> Self {
        self.machine.network_peak = bw;
        self
    }

    /// Finish.
    pub fn build(self) -> Machine {
        self.machine
    }
}

/// The counterfactual the paper's NP discussion implies: an A64FX node
/// with MareNostrum 4's 96 GB of memory capacity (bandwidth unchanged).
pub fn a64fx_with_big_memory() -> Machine {
    MachineBuilder::from(crate::machines::cte_arm())
        .named("CTE-Arm (96 GB variant)")
        .with_memory_capacity_factor(3.0)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines::cte_arm;

    #[test]
    fn builder_preserves_unmodified_fields() {
        let base = cte_arm();
        let variant = MachineBuilder::from(base.clone())
            .named("variant")
            .with_nodes(384)
            .build();
        assert_eq!(variant.name, "variant");
        assert_eq!(variant.nodes, 384);
        assert_eq!(variant.core.peak_dp().value(), base.core.peak_dp().value());
        assert_eq!(
            variant.memory.peak_bandwidth().value(),
            base.memory.peak_bandwidth().value()
        );
    }

    #[test]
    fn frequency_scales_the_peaks() {
        let faster = MachineBuilder::from(cte_arm()).with_frequency(4.4).build();
        // Double the clock, double the peak.
        assert!((faster.peak_dp_node().as_gflops() - 2.0 * 3379.2).abs() < 1e-9);
    }

    #[test]
    fn big_memory_variant_fixes_the_np_cells() {
        use crate::machines::Machine;
        let variant = a64fx_with_big_memory();
        assert_eq!(variant.memory.capacity().value(), 96e9);
        // Alya's 317 GB footprint now fits in 4 nodes instead of 12
        // (same arithmetic as apps::common::min_nodes).
        let min_nodes = |m: &Machine, footprint: f64| {
            (footprint / (0.85 * m.memory.capacity().value())).ceil() as usize
        };
        assert_eq!(min_nodes(&cte_arm(), 316.8e9), 12);
        assert_eq!(min_nodes(&variant, 316.8e9), 4);
    }

    #[test]
    #[should_panic(expected = "must cover the same cores")]
    fn mismatched_memory_rejected() {
        // A 24-core memory model cannot drop into a 48-core node.
        let mut small = MemoryModel::a64fx();
        small.n_domains = 2;
        MachineBuilder::from(cte_arm()).with_memory(small);
    }

    #[test]
    #[should_panic(expected = "scalar ILP")]
    fn bad_ilp_rejected() {
        MachineBuilder::from(cte_arm()).with_scalar_ilp(1.5);
    }
}
