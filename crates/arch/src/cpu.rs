//! Per-core execution model.

use crate::isa::{Precision, VectorIsa};
use serde::{Deserialize, Serialize};
use simkit::units::FlopRate;

/// Analytic model of one CPU core.
///
/// The peak throughput follows the paper's formula `P_v = s · i · f · o`:
/// `s` lanes per instruction (from the ISA and precision), `i` FMA
/// instructions issued per cycle ([`fma_pipes`](Self::fma_pipes)), `f` the
/// clock frequency, and `o = 2` flops per fused multiply-add.
///
/// Beyond the peak, the model carries one scalar-pipeline parameter,
/// [`scalar_ilp`](Self::scalar_ilp): the *sustained* fraction of scalar FMA
/// issue slots a typical un-tuned, dependency-laden application loop keeps
/// busy. This is where the A64FX's weak out-of-order core (shallow window,
/// fewer rename registers — see the micro-architecture manual) differs from
/// Skylake's aggressive OoO engine, and it is the dominant term behind the
/// paper's 2–4× application slowdowns.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoreModel {
    /// Marketing name, e.g. `"A64FX"`.
    pub name: String,
    /// Clock frequency in GHz (turbo disabled on both machines).
    pub freq_ghz: f64,
    /// Primary SIMD extension used for peak computation.
    pub vector_isa: VectorIsa,
    /// FMA-capable vector pipelines (`i` in the peak formula). Both A64FX
    /// (2 × 512-bit FLA/FLB) and Skylake-SP 8160 (ports 0+5) have 2.
    pub fma_pipes: usize,
    /// Scalar FMA instructions issued per cycle at peak (both cores can
    /// dual-issue scalar FP).
    pub scalar_fma_per_cycle: usize,
    /// Sustained fraction of scalar FP issue achieved by un-tuned
    /// application code (out-of-order strength proxy, in `(0, 1]`).
    pub scalar_ilp: f64,
    /// SIMD throughput derate when (nearly) every core of the node drives
    /// its vector unit at once, in `(0, 1]`. Skylake-SP reduces frequency
    /// under package-wide AVX-512 load (the licence/thermal limit), so a
    /// full-node DGEMM sustains ~70 % of the single-core Fig.-1 rate; the
    /// A64FX is designed for full-node SVE at nominal clock (1.0).
    pub full_load_vector_derate: f64,
}

impl CoreModel {
    /// Theoretical peak vector throughput at a precision
    /// (`P_v = s · i · f · o`). `None` if the ISA lacks arithmetic at that
    /// precision (e.g. FP16 on Skylake).
    pub fn peak_vector(&self, p: Precision) -> Option<FlopRate> {
        let lanes = self.vector_isa.lanes(p)?;
        Some(FlopRate::gflops(
            lanes as f64 * self.fma_pipes as f64 * self.freq_ghz * 2.0,
        ))
    }

    /// Theoretical peak scalar throughput (independent of precision: one
    /// element per instruction).
    pub fn peak_scalar(&self) -> FlopRate {
        FlopRate::gflops(self.scalar_fma_per_cycle as f64 * self.freq_ghz * 2.0)
    }

    /// Sustained scalar throughput for un-tuned application code: the peak
    /// derated by the out-of-order strength.
    pub fn sustained_scalar(&self) -> FlopRate {
        FlopRate::per_sec(self.peak_scalar().value() * self.scalar_ilp)
    }

    /// Double-precision peak used in Table I (`DP Peak / core`).
    pub fn peak_dp(&self) -> FlopRate {
        self.peak_vector(Precision::Double)
            .expect("every modelled ISA supports double precision")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a64fx_core() -> CoreModel {
        CoreModel {
            name: "A64FX".into(),
            freq_ghz: 2.2,
            vector_isa: VectorIsa::sve_512(),
            fma_pipes: 2,
            scalar_fma_per_cycle: 2,
            scalar_ilp: 0.32,
            full_load_vector_derate: 1.0,
        }
    }

    fn skylake_core() -> CoreModel {
        CoreModel {
            name: "Xeon Platinum 8160".into(),
            freq_ghz: 2.1,
            vector_isa: VectorIsa::avx512(),
            fma_pipes: 2,
            scalar_fma_per_cycle: 2,
            scalar_ilp: 0.85,
            full_load_vector_derate: 0.70,
        }
    }

    #[test]
    fn a64fx_dp_peak_matches_table1() {
        // Table I: 70.40 GFlop/s per core.
        let c = a64fx_core();
        assert!((c.peak_dp().as_gflops() - 70.4).abs() < 1e-9);
    }

    #[test]
    fn skylake_dp_peak_matches_table1() {
        // Table I: 67.20 GFlop/s per core.
        let c = skylake_core();
        assert!((c.peak_dp().as_gflops() - 67.2).abs() < 1e-9);
    }

    #[test]
    fn vector_peak_scales_with_precision() {
        let c = a64fx_core();
        let dp = c.peak_vector(Precision::Double).unwrap().as_gflops();
        let sp = c.peak_vector(Precision::Single).unwrap().as_gflops();
        let hp = c.peak_vector(Precision::Half).unwrap().as_gflops();
        assert!((sp - 2.0 * dp).abs() < 1e-9);
        assert!((hp - 4.0 * dp).abs() < 1e-9);
    }

    #[test]
    fn skylake_has_no_half_precision_vector() {
        assert!(skylake_core().peak_vector(Precision::Half).is_none());
    }

    #[test]
    fn scalar_peak() {
        // 2 scalar FMA/cycle × 2 flops × 2.2 GHz = 8.8 GFlop/s.
        let c = a64fx_core();
        assert!((c.peak_scalar().as_gflops() - 8.8).abs() < 1e-9);
        assert!(c.sustained_scalar().value() < c.peak_scalar().value());
    }
}
