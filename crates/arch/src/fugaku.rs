//! The full-scale Fugaku machine model — the system CTE-Arm is a small
//! sibling of.
//!
//! The paper repeatedly situates CTE-Arm against Fugaku: same A64FX CPU,
//! same TofuD interconnect, 828× the node count. Fugaku's published
//! Top500/HPCG results (November 2020 lists, which the paper cites) are
//! the external validation points for this workspace's models:
//!
//! * HPL: 442 PFlop/s = **82 %** of the 537 PFlop/s peak ("3 % below our
//!   results in CTE-Arm", the paper notes).
//! * HPCG: 16.0 PFlop/s = **3.62 %** of peak (the paper's CTE-Arm 2.91 %
//!   is "slightly below").

use crate::cache::CacheHierarchy;
use crate::cpu::CoreModel;
use crate::isa::VectorIsa;
use crate::machines::Machine;
use crate::memory::MemoryModel;
use simkit::units::Bandwidth;

/// Fugaku's node count (158,976 = 24 × 23 × 24 Tofu units of 12).
pub const FUGAKU_NODES: usize = 158_976;

/// The Fugaku machine: identical node architecture to CTE-Arm (the
/// production partition runs the A64FX at 2.2 GHz in normal mode),
/// scaled to 158,976 nodes.
pub fn fugaku() -> Machine {
    Machine {
        name: "Fugaku".into(),
        integrator: "Fujitsu".into(),
        core: CoreModel {
            name: "A64FX".into(),
            freq_ghz: 2.2,
            vector_isa: VectorIsa::sve_512(),
            fma_pipes: 2,
            scalar_fma_per_cycle: 2,
            scalar_ilp: 0.35,
            full_load_vector_derate: 1.0,
        },
        caches: CacheHierarchy::a64fx(),
        memory: MemoryModel::a64fx(),
        sockets: 1,
        nodes: FUGAKU_NODES,
        network_peak: Bandwidth::gb_per_sec(6.8),
        interconnect: "TofuD".into(),
    }
}

/// Fugaku's Tofu geometry for topology studies:
/// `(X, Y, Z) = (24, 23, 24)` units of `(2, 3, 2)`.
pub fn fugaku_tofu_dims() -> [usize; 6] {
    [24, 23, 24, 2, 3, 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_count_and_geometry_agree() {
        let dims = fugaku_tofu_dims();
        let product: usize = dims.iter().product();
        assert_eq!(product, FUGAKU_NODES);
        assert_eq!(fugaku().nodes, FUGAKU_NODES);
    }

    #[test]
    fn peak_matches_top500_listing() {
        // 158,976 × 3.3792 TFlop/s = 537.2 PFlop/s.
        let m = fugaku();
        let peak_pf = m.peak_dp_cluster(FUGAKU_NODES).value() / 1e15;
        assert!((peak_pf - 537.2).abs() < 0.5, "peak {peak_pf} PF");
    }

    #[test]
    fn same_node_architecture_as_cte_arm() {
        let f = fugaku();
        let c = crate::machines::cte_arm();
        assert_eq!(f.core.peak_dp().value(), c.core.peak_dp().value());
        assert_eq!(
            f.memory.peak_bandwidth().value(),
            c.memory.peak_bandwidth().value()
        );
        assert_eq!(f.cores_per_node(), c.cores_per_node());
    }
}
