//! Node power and energy-to-solution models.
//!
//! A natural extension of the paper's evaluation (its own prior work,
//! Mantovani et al. FGCS 2020, is exactly this study for ThunderX2): the
//! A64FX was co-designed for power efficiency, so even where CTE-Arm is
//! slower, it can win on energy. The model is a standard component-level
//! decomposition:
//!
//! ```text
//! P_node = P_idle + u_scalar·P_scalar + u_vector·P_vector + u_mem·P_mem
//! ```
//!
//! with utilizations in `[0, 1]` derived from a kernel's achieved rates.
//! Constants come from published measurements: an A64FX node draws ~120 W
//! idle and ~350 W under HPL; a dual-8160 node ~180 W idle and ~450 W under
//! HPL (plus DDR4), which reproduce Fugaku's ~15 GFlop/s/W Green500 figure
//! and typical Skylake cluster efficiencies of ~5 GFlop/s/W.

use crate::cost::{CostModel, KernelProfile};
use crate::machines::Machine;
use serde::{Deserialize, Serialize};
use simkit::units::Time;

/// Component-level node power model (Watts).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PowerModel {
    /// Idle node power (fans, HBM refresh, NIC, uncore).
    pub idle_w: f64,
    /// Added power with all scalar pipes busy.
    pub scalar_w: f64,
    /// Added power with all vector units busy.
    pub vector_w: f64,
    /// Added power at full memory bandwidth.
    pub memory_w: f64,
}

impl PowerModel {
    /// A64FX node: 120 W idle, +60 W scalar, +130 W SVE, +40 W HBM.
    pub fn a64fx() -> Self {
        Self {
            idle_w: 120.0,
            scalar_w: 60.0,
            vector_w: 130.0,
            memory_w: 40.0,
        }
    }

    /// Dual Xeon 8160 node: 180 W idle, +90 W scalar, +150 W AVX-512,
    /// +30 W DDR4.
    pub fn skylake_8160() -> Self {
        Self {
            idle_w: 180.0,
            scalar_w: 90.0,
            vector_w: 150.0,
            memory_w: 30.0,
        }
    }

    /// The factory power model for a machine (keyed on socket count, like
    /// the memory model).
    pub fn for_machine(machine: &Machine) -> Self {
        if machine.sockets == 1 {
            Self::a64fx()
        } else {
            Self::skylake_8160()
        }
    }

    /// Node power while running a kernel with the given component
    /// utilizations (each clamped to `[0, 1]`).
    pub fn node_power(&self, u_scalar: f64, u_vector: f64, u_mem: f64) -> f64 {
        self.idle_w
            + u_scalar.clamp(0.0, 1.0) * self.scalar_w
            + u_vector.clamp(0.0, 1.0) * self.vector_w
            + u_mem.clamp(0.0, 1.0) * self.memory_w
    }

    /// Peak node power (everything saturated).
    pub fn peak_power(&self) -> f64 {
        self.idle_w + self.scalar_w + self.vector_w + self.memory_w
    }
}

/// Energy outcome of a run.
#[derive(Debug, Clone)]
pub struct EnergyReport {
    /// Mean node power during the run (W).
    pub node_power_w: f64,
    /// Energy to solution across `nodes` nodes (J).
    pub energy_j: f64,
    /// Useful flops per joule (flop/J = Flop/s per W).
    pub flops_per_joule: f64,
}

/// Estimate the energy of executing `profile` on `cores` cores of every
/// one of `nodes` nodes (each node runs one chunk; `elapsed` is the chunk
/// time from the cost model).
pub fn energy_of_run(
    machine: &Machine,
    cost: &CostModel<'_>,
    profile: &KernelProfile,
    cores: usize,
    nodes: usize,
) -> EnergyReport {
    let power = PowerModel::for_machine(machine);
    let elapsed: Time = cost.parallel_time(profile, cores);

    // Component utilizations from achieved vs peak rates.
    let v = cost
        .compiler
        .vectorized_fraction(profile.vectorizable, profile.tuned);
    let achieved = profile.flops.value() / elapsed.value(); // flop/s on this node
    let vec_peak = machine.peak_dp_node().value();
    let scalar_peak = machine.core.peak_scalar().value() * cores as f64;
    let u_vector = (achieved * v / vec_peak).clamp(0.0, 1.0);
    let u_scalar = (achieved * (1.0 - v) / scalar_peak).clamp(0.0, 1.0);
    let bw = profile.bytes.value() / elapsed.value();
    let u_mem = (bw / machine.memory.app_sustained_bandwidth().value()).clamp(0.0, 1.0);
    // Core-count scaling of the active components.
    let frac = cores as f64 / machine.cores_per_node() as f64;
    let node_power_w = power.node_power(u_scalar * frac, u_vector * frac, u_mem);
    let energy_j = node_power_w * elapsed.value() * nodes as f64;
    EnergyReport {
        node_power_w,
        energy_j,
        flops_per_joule: profile.flops.value() * nodes as f64 / energy_j,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::Compiler;
    use crate::machines::{cte_arm, marenostrum4};

    fn hpl_like() -> KernelProfile {
        KernelProfile::dp("hpl", 1e13, 1e10)
            .with_vectorizable(1.0)
            .with_tuned(true)
            .with_vector_efficiency(0.88)
    }

    #[test]
    fn peak_power_is_component_sum() {
        let p = PowerModel::a64fx();
        assert_eq!(p.peak_power(), 350.0);
        assert_eq!(PowerModel::skylake_8160().peak_power(), 450.0);
    }

    #[test]
    fn idle_kernel_draws_idle_power() {
        let p = PowerModel::a64fx();
        assert_eq!(p.node_power(0.0, 0.0, 0.0), p.idle_w);
        // Utilizations are clamped.
        assert_eq!(p.node_power(2.0, 2.0, 2.0), p.peak_power());
    }

    #[test]
    fn a64fx_hpl_efficiency_is_green500_class() {
        // Fugaku's Green500 figure: ~15 GFlop/s/W under HPL.
        let m = cte_arm();
        let compiler = Compiler::fujitsu();
        let cost = CostModel::new(&m.core, &m.memory, &compiler);
        let report = energy_of_run(&m, &cost, &hpl_like(), 48, 1);
        let gflops_per_w = report.flops_per_joule / 1e9;
        assert!(
            (10.0..=18.0).contains(&gflops_per_w),
            "A64FX HPL efficiency {gflops_per_w} GFlop/s/W"
        );
    }

    #[test]
    fn skylake_hpl_efficiency_is_typical() {
        // Skylake-generation clusters: ~5 GFlop/s/W under HPL.
        let m = marenostrum4();
        let compiler = Compiler::intel();
        let cost = CostModel::new(&m.core, &m.memory, &compiler);
        let report = energy_of_run(&m, &cost, &hpl_like(), 48, 1);
        let gflops_per_w = report.flops_per_joule / 1e9;
        assert!(
            (3.5..=7.5).contains(&gflops_per_w),
            "Skylake HPL efficiency {gflops_per_w} GFlop/s/W"
        );
    }

    #[test]
    fn a64fx_wins_energy_even_when_losing_time() {
        // An un-tuned application chunk: CTE-Arm is ~3× slower but its node
        // draws far less when SVE sits idle, so energy-to-solution is
        // closer than time-to-solution — and for memory-bound work the
        // A64FX wins outright.
        let profile = KernelProfile::dp("stream-ish", 1e11, 8e11).with_vectorizable(0.5);
        let cte = cte_arm();
        let mn4 = marenostrum4();
        let gnu = Compiler::gnu_sve();
        let intel = Compiler::intel();
        let e_cte = energy_of_run(
            &cte,
            &CostModel::new(&cte.core, &cte.memory, &gnu),
            &profile,
            48,
            1,
        );
        let e_mn4 = energy_of_run(
            &mn4,
            &CostModel::new(&mn4.core, &mn4.memory, &intel),
            &profile,
            48,
            1,
        );
        assert!(
            e_cte.energy_j < e_mn4.energy_j,
            "memory-bound: A64FX energy {} J < Xeon {} J",
            e_cte.energy_j,
            e_mn4.energy_j
        );
    }

    #[test]
    fn energy_scales_linearly_with_nodes() {
        let m = cte_arm();
        let compiler = Compiler::fujitsu();
        let cost = CostModel::new(&m.core, &m.memory, &compiler);
        let e1 = energy_of_run(&m, &cost, &hpl_like(), 48, 1);
        let e4 = energy_of_run(&m, &cost, &hpl_like(), 48, 4);
        assert!((e4.energy_j / e1.energy_j - 4.0).abs() < 1e-9);
        assert_eq!(e1.node_power_w, e4.node_power_w);
    }

    #[test]
    fn power_is_within_physical_bounds() {
        let m = cte_arm();
        for compiler in [Compiler::fujitsu(), Compiler::gnu_sve()] {
            let cost = CostModel::new(&m.core, &m.memory, &compiler);
            for profile in [
                hpl_like(),
                KernelProfile::dp("scalarish", 1e10, 1e8).with_vectorizable(0.1),
                KernelProfile::dp("stream", 1e9, 1e11),
            ] {
                let r = energy_of_run(&m, &cost, &profile, 48, 1);
                let pm = PowerModel::a64fx();
                assert!(r.node_power_w >= pm.idle_w);
                assert!(r.node_power_w <= pm.peak_power());
            }
        }
    }
}
