//! Compiler and toolchain model.
//!
//! The paper's central qualitative finding is that on CTE-Arm the available
//! toolchains could not put application code onto the SVE unit: the Fujitsu
//! compiler failed to build most applications (Alya, NEMO, Gromacs hang or
//! error out), and the GNU toolchain that did build them auto-vectorized
//! very little, leaving performance to the weak scalar core. On
//! MareNostrum 4 the Intel compiler vectorizes the same codes well.
//!
//! This module encodes that as a per-toolchain **vectorization uptake**: the
//! fraction of a kernel's *vectorizable* work that the compiler actually
//! lands on SIMD. Uptake multiplies the kernel's intrinsic vectorizable
//! fraction in [`crate::cost::KernelProfile`]; everything else runs on the
//! scalar pipeline.

use serde::{Deserialize, Serialize};

/// Source language of a build (STREAM has C and Fortran variants with
/// measurably different behaviour on CTE-Arm).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Language {
    /// C sources.
    C,
    /// Fortran sources.
    Fortran,
}

/// The toolchains used in the paper's Table II / Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CompilerId {
    /// Fujitsu compiler (fcc/frt) 1.2.26b — A64FX native, aggressive SVE,
    /// but unable to build most of the applications.
    Fujitsu,
    /// GNU 8.3.1 with SVE support backported — builds everything, but SVE
    /// auto-vectorization uptake is low on real application loops.
    GnuSve,
    /// GNU 11.0.0 — required by Gromacs; slightly better SVE uptake.
    Gnu11,
    /// Intel 2017–2019 — MareNostrum 4 reference, strong AVX-512 uptake.
    Intel,
}

/// A toolchain with its empirical optimization quality parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Compiler {
    /// Which toolchain this is.
    pub id: CompilerId,
    /// Version string as reported in the paper.
    pub version: &'static str,
    /// Fraction of a kernel's vectorizable work the auto-vectorizer actually
    /// lands on SIMD for *hand-tuned benchmark* loops (STREAM, HPL-style):
    /// simple, unit-stride, pragma-annotated.
    pub uptake_tuned: f64,
    /// The same fraction for *un-tuned application* loops: deep call chains,
    /// mixed strides, Fortran modules. This is where GNU-on-A64FX collapses.
    pub uptake_app: f64,
    /// Scalar code-generation quality factor (scheduling, unrolling)
    /// relative to an ideal compiler, in `(0, 1]`.
    pub scalar_quality: f64,
    /// Whether the toolchain can successfully build each paper application.
    /// Order: [Alya, NEMO, Gromacs, OpenIFS, WRF]. Encodes the paper's
    /// compilation-failure experience (Section V).
    pub builds_apps: [bool; 5],
}

impl Compiler {
    /// Fujitsu 1.2.26b on A64FX: excellent SVE on simple loops, hangs or
    /// errors on Alya/NEMO/Gromacs; OpenIFS compiled but failed at run time
    /// (counted as unusable here).
    pub fn fujitsu() -> Self {
        Self {
            id: CompilerId::Fujitsu,
            version: "1.2.26b",
            // Trivial pragma-annotated loops (FPU µKernel, STREAM, HPL
            // panel kernels) vectorize completely.
            uptake_tuned: 1.0,
            uptake_app: 0.60,
            scalar_quality: 0.90,
            builds_apps: [false, false, false, false, true],
        }
    }

    /// GNU 8.3.1-sve: builds everything, low SVE uptake on applications.
    pub fn gnu_sve() -> Self {
        Self {
            id: CompilerId::GnuSve,
            version: "8.3.1-sve",
            uptake_tuned: 0.70,
            // The paper: "we verified that the compiler could not leverage
            // the SVE unit in several cases" — most app flops stay scalar.
            uptake_app: 0.12,
            scalar_quality: 0.85,
            builds_apps: [true, true, false, true, true],
        }
    }

    /// GNU 11.0.0: needed by Gromacs; slightly better SVE codegen and it
    /// understands Gromacs' ARM_SVE SIMD layer.
    pub fn gnu11() -> Self {
        Self {
            id: CompilerId::Gnu11,
            version: "11.0.0",
            uptake_tuned: 0.80,
            uptake_app: 0.25,
            scalar_quality: 0.87,
            builds_apps: [true, true, true, true, true],
        }
    }

    /// Intel 2017–2019 on Skylake: strong AVX-512 uptake on both benchmark
    /// and application loops.
    pub fn intel() -> Self {
        Self {
            id: CompilerId::Intel,
            version: "2018.4",
            uptake_tuned: 1.0,
            // Two decades of tuning against production Fortran codes: the
            // Intel compiler lands about two thirds of the vectorizable
            // application work on AVX-512.
            uptake_app: 0.65,
            scalar_quality: 1.0,
            builds_apps: [true, true, true, true, true],
        }
    }

    /// Effective fraction of a kernel's work that runs vectorized, given the
    /// kernel's intrinsically vectorizable fraction and whether the code is
    /// a tuned benchmark or an un-tuned application.
    pub fn vectorized_fraction(&self, kernel_vectorizable: f64, tuned: bool) -> f64 {
        let uptake = if tuned {
            self.uptake_tuned
        } else {
            self.uptake_app
        };
        (kernel_vectorizable.clamp(0.0, 1.0)) * uptake
    }

    /// Whether this toolchain can build the `i`-th application
    /// (0 = Alya … 4 = WRF).
    pub fn can_build(&self, app_index: usize) -> bool {
        self.builds_apps[app_index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fujitsu_cannot_build_most_apps() {
        let f = Compiler::fujitsu();
        // Alya, NEMO, Gromacs, OpenIFS all failed in the paper.
        assert!(!f.can_build(0));
        assert!(!f.can_build(1));
        assert!(!f.can_build(2));
        assert!(!f.can_build(3));
    }

    #[test]
    fn gnu_builds_everything_needed() {
        let g = Compiler::gnu_sve();
        assert!(g.can_build(0) && g.can_build(1) && g.can_build(3) && g.can_build(4));
        // Gromacs needs GNU 11.
        assert!(!g.can_build(2));
        assert!(Compiler::gnu11().can_build(2));
    }

    #[test]
    fn intel_beats_gnu_on_app_uptake() {
        assert!(Compiler::intel().uptake_app > 3.0 * Compiler::gnu_sve().uptake_app);
    }

    #[test]
    fn vectorized_fraction_composes() {
        let g = Compiler::gnu_sve();
        let f = g.vectorized_fraction(0.8, false);
        assert!((f - 0.8 * 0.12).abs() < 1e-12);
        let t = g.vectorized_fraction(0.8, true);
        assert!((t - 0.8 * 0.70).abs() < 1e-12);
    }

    #[test]
    fn vectorized_fraction_clamps_input() {
        let g = Compiler::intel();
        assert!(g.vectorized_fraction(1.5, true) <= g.uptake_tuned + 1e-12);
        assert_eq!(g.vectorized_fraction(-0.5, true), 0.0);
    }
}
