//! The deterministic set-associative cache simulator.
//!
//! Determinism contract: the simulator is a pure sequential function of
//! `(HierarchyConfig, Trace)`. It allocates arrays at fixed line-aligned
//! base addresses, uses true-LRU replacement driven by a monotonic access
//! tick, and touches no global state — so results are bit-identical across
//! runs, thread counts, and platforms.
//!
//! Modelling notes:
//!
//! * Accesses are line-granular: a per-site "last line" memo collapses the
//!   spatial locality inside one cache line, so only line transitions
//!   probe the hierarchy (the classic spatial-locality register of
//!   sampling simulators).
//! * Fills are mostly-inclusive: a demand miss installs the line at every
//!   level it traversed. Dirty victims write back one level outward,
//!   allocating there without a fetch (a full line is being supplied).
//! * Store sites whose innermost stride equals the element size are
//!   *streaming stores* (`-Kzfill` / `DC ZVA` full-line allocates): a miss
//!   allocates the line dirty without fetching it, which is what removes
//!   the read-for-ownership traffic from STREAM-style kernels.
//! * A next-line prefetcher (innermost level) watches each site for
//!   ascending line streams and pulls `degree` lines ahead, clamped to
//!   the array's address range.
//! * At the end of a run all dirty lines are flushed outward so DRAM
//!   write counts equal steady-state traffic for streaming kernels.

use super::config::HierarchyConfig;
use super::trace::{Node, Trace};
use serde::{Deserialize, Serialize};

/// Hit/miss/traffic counters of one cache level.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LevelStats {
    /// Level name copied from the configuration.
    pub name: String,
    /// Line-granular lookups (demand only; writebacks and prefetches are
    /// counted separately so `hits + misses == accesses` always holds).
    pub accesses: u64,
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Lines installed on demand misses.
    pub demand_fills: u64,
    /// Lines installed by the prefetcher.
    pub prefetch_fills: u64,
    /// Lines allocated by streaming stores without a fetch.
    pub zfill_allocs: u64,
    /// Dirty lines evicted (or flushed) to the next level.
    pub writebacks: u64,
    /// Fills broken down by sector tag.
    pub sector_fills: [u64; 2],
}

impl LevelStats {
    /// Demand hit rate in `[0, 1]` (1 when the level was never probed).
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            1.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

/// Outcome of simulating one trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimResult {
    /// Trace name.
    pub trace: String,
    /// Hierarchy configuration name.
    pub config: String,
    /// Shared line size in bytes.
    pub line_bytes: u64,
    /// Per-level counters, innermost first.
    pub levels: Vec<LevelStats>,
    /// Lines read from DRAM.
    pub dram_read_lines: u64,
    /// Lines written to DRAM (includes the end-of-run dirty flush).
    pub dram_write_lines: u64,
    /// Element-granular analytic byte count of the trace.
    pub nominal_bytes: u64,
    /// Line-transition probes issued by the core side.
    pub probes: u64,
}

impl SimResult {
    /// Bytes read from DRAM.
    pub fn dram_read_bytes(&self) -> u64 {
        self.dram_read_lines * self.line_bytes
    }

    /// Bytes written to DRAM.
    pub fn dram_write_bytes(&self) -> u64 {
        self.dram_write_lines * self.line_bytes
    }

    /// Total DRAM traffic in bytes.
    pub fn dram_bytes(&self) -> u64 {
        self.dram_read_bytes() + self.dram_write_bytes()
    }

    /// Counters of the level called `name`, if present.
    pub fn level(&self, name: &str) -> Option<&LevelStats> {
        self.levels.iter().find(|l| l.name == name)
    }

    /// Bytes a level pulled from the level below it (fills of every kind
    /// except zfill allocates, which synthesize the line core-side).
    pub fn fill_bytes(&self, level: usize) -> u64 {
        let l = &self.levels[level];
        (l.demand_fills + l.prefetch_fills) * self.line_bytes
    }

    /// Bytes a level pushed outward as writebacks.
    pub fn writeback_bytes(&self, level: usize) -> u64 {
        self.levels[level].writebacks * self.line_bytes
    }
}

/// One cache line slot.
#[derive(Clone, Copy, Default)]
struct Slot {
    tag: u64,
    valid: bool,
    dirty: bool,
    sector: u8,
    stamp: u64,
}

/// Compiled access site (flattened from the trace for site-id stability).
struct Site {
    array: usize,
    write: bool,
    base: i64,
    coefs: Vec<i64>,
    /// Streaming store: unit innermost stride ⇒ full-line allocate on miss.
    zfill: bool,
}

enum PNode {
    Loop {
        trips: u64,
        warmup_sample: Option<(u64, u64)>,
        body: Vec<PNode>,
    },
    Site(usize),
}

/// The simulator. Construct once per configuration, run many traces.
pub struct CacheSim {
    cfg: HierarchyConfig,
}

impl CacheSim {
    /// Build a simulator for `cfg` (panics if the configuration is
    /// structurally invalid).
    pub fn new(cfg: HierarchyConfig) -> Self {
        cfg.validate();
        Self { cfg }
    }

    /// Simulate `trace` (panics if the trace fails validation).
    pub fn run(&self, trace: &Trace) -> SimResult {
        if let Err(e) = trace.validate() {
            panic!("invalid trace: {e}");
        }
        let line_bytes = self.cfg.line_bytes();
        let line_shift = line_bytes.trailing_zeros();

        // Fixed line-aligned array bases with a skewed pad between arrays
        // so distinct arrays never share a line and do not start in
        // lock-step sets.
        let mut bases = Vec::with_capacity(trace.arrays.len());
        let mut next = line_bytes; // keep address 0 unused
        for (i, a) in trace.arrays.iter().enumerate() {
            bases.push(next);
            let padded = a.bytes.div_ceil(line_bytes) * line_bytes;
            next += padded + line_bytes * (7 * i as u64 + 3);
        }
        let array_last_line: Vec<u64> = trace
            .arrays
            .iter()
            .zip(&bases)
            .map(|(a, &b)| (b + a.bytes - 1) >> line_shift)
            .collect();
        let array_sector: Vec<u8> = trace.arrays.iter().map(|a| a.sector).collect();

        // Compile the body into site-id form.
        let mut sites = Vec::new();
        let program = compile(&trace.body, &mut sites);

        let mut r = Runner {
            cfg: &self.cfg,
            line_shift,
            slots: self
                .cfg
                .levels
                .iter()
                .map(|l| vec![Slot::default(); (l.sets * l.ways as u64) as usize])
                .collect(),
            stats: self
                .cfg
                .levels
                .iter()
                .map(|l| LevelStats {
                    name: l.name.clone(),
                    ..LevelStats::default()
                })
                .collect(),
            dram_read_lines: 0,
            dram_write_lines: 0,
            probes: 0,
            tick: 0,
            site_prev_line: vec![u64::MAX; sites.len()],
            sites,
            bases,
            array_last_line,
            array_sector,
            idx: Vec::new(),
        };
        r.exec(&program);
        r.flush();

        SimResult {
            trace: trace.name.clone(),
            config: self.cfg.name.clone(),
            line_bytes,
            levels: r.stats,
            dram_read_lines: r.dram_read_lines,
            dram_write_lines: r.dram_write_lines,
            nominal_bytes: trace.nominal_bytes(),
            probes: r.probes,
        }
    }
}

fn compile(nodes: &[Node], sites: &mut Vec<Site>) -> Vec<PNode> {
    nodes
        .iter()
        .map(|n| match n {
            Node::Loop(lp) => PNode::Loop {
                trips: lp.trips,
                warmup_sample: lp.window.map(|w| (w.warmup, w.sample)),
                body: compile(&lp.body, sites),
            },
            Node::Access(a) => {
                let zfill = a.write
                    && a.coefs
                        .last()
                        .is_some_and(|&c| c.unsigned_abs() == a.elem_bytes as u64);
                sites.push(Site {
                    array: a.array,
                    write: a.write,
                    base: a.base,
                    coefs: a.coefs.clone(),
                    zfill,
                });
                PNode::Site(sites.len() - 1)
            }
        })
        .collect()
}

struct Runner<'a> {
    cfg: &'a HierarchyConfig,
    line_shift: u32,
    slots: Vec<Vec<Slot>>,
    stats: Vec<LevelStats>,
    dram_read_lines: u64,
    dram_write_lines: u64,
    probes: u64,
    tick: u64,
    site_prev_line: Vec<u64>,
    sites: Vec<Site>,
    bases: Vec<u64>,
    array_last_line: Vec<u64>,
    array_sector: Vec<u8>,
    idx: Vec<u64>,
}

impl Runner<'_> {
    fn exec(&mut self, nodes: &[PNode]) {
        for n in nodes {
            match n {
                PNode::Site(s) => self.touch(*s),
                PNode::Loop {
                    trips,
                    warmup_sample,
                    body,
                } => {
                    self.idx.push(0);
                    match *warmup_sample {
                        None => {
                            for i in 0..*trips {
                                *self.idx.last_mut().unwrap() = i;
                                self.exec(body);
                            }
                        }
                        Some((warmup, sample)) => {
                            for i in 0..warmup {
                                *self.idx.last_mut().unwrap() = i;
                                self.exec(body);
                            }
                            let before = self.counters();
                            for i in warmup..warmup + sample {
                                *self.idx.last_mut().unwrap() = i;
                                self.exec(body);
                            }
                            // Scale the sampled steady-state deltas over
                            // the skipped trips; validation guarantees the
                            // factor is an exact integer.
                            let factor = (*trips - warmup - sample) / sample;
                            let after = self.counters();
                            self.add_scaled(&before, &after, factor);
                        }
                    }
                    self.idx.pop();
                }
            }
        }
    }

    /// All extrapolatable counters, in a fixed order.
    fn counters(&self) -> Vec<u64> {
        let mut v = Vec::with_capacity(self.stats.len() * 9 + 3);
        for s in &self.stats {
            v.extend_from_slice(&[
                s.accesses,
                s.hits,
                s.misses,
                s.demand_fills,
                s.prefetch_fills,
                s.zfill_allocs,
                s.writebacks,
                s.sector_fills[0],
                s.sector_fills[1],
            ]);
        }
        v.extend_from_slice(&[self.dram_read_lines, self.dram_write_lines, self.probes]);
        v
    }

    fn add_scaled(&mut self, before: &[u64], after: &[u64], factor: u64) {
        let mut it = before.iter().zip(after).map(|(b, a)| (a - b) * factor);
        for s in &mut self.stats {
            s.accesses += it.next().unwrap();
            s.hits += it.next().unwrap();
            s.misses += it.next().unwrap();
            s.demand_fills += it.next().unwrap();
            s.prefetch_fills += it.next().unwrap();
            s.zfill_allocs += it.next().unwrap();
            s.writebacks += it.next().unwrap();
            s.sector_fills[0] += it.next().unwrap();
            s.sector_fills[1] += it.next().unwrap();
        }
        self.dram_read_lines += it.next().unwrap();
        self.dram_write_lines += it.next().unwrap();
        self.probes += it.next().unwrap();
    }

    fn touch(&mut self, site: usize) {
        let s = &self.sites[site];
        let mut addr = self.bases[s.array] as i64 + s.base;
        for (d, &c) in s.coefs.iter().enumerate() {
            addr += c * self.idx[d] as i64;
        }
        let line = (addr as u64) >> self.line_shift;
        let prev = self.site_prev_line[site];
        if line == prev {
            return; // same line as this site's previous touch
        }
        self.site_prev_line[site] = line;
        self.probes += 1;
        let sector = self.array_sector[s.array];
        let (write, zfill, array) = (s.write, s.zfill, s.array);

        self.stats[0].accesses += 1;
        if self.lookup(0, line) {
            self.stats[0].hits += 1;
            if write {
                self.mark_dirty(0, line);
            }
            return;
        }
        self.stats[0].misses += 1;
        if write && zfill && self.cfg.levels[0].write_allocate {
            self.stats[0].zfill_allocs += 1;
            self.insert(0, line, sector, true);
            return;
        }
        if write && !self.cfg.levels[0].write_allocate {
            // Write-through/no-allocate: the store goes straight outward.
            self.write_outward(1, line, sector);
            return;
        }
        self.fetch(1, line, sector);
        self.stats[0].demand_fills += 1;
        self.insert(0, line, sector, write);

        // Next-line prefetch on a detected ascending stream.
        if let Some(pf) = self.cfg.levels[0].prefetch {
            if prev != u64::MAX && line == prev + 1 {
                let last = self.array_last_line[array];
                for d in 1..=pf.degree as u64 {
                    let pline = line + d;
                    if pline > last {
                        break;
                    }
                    if !self.lookup(0, pline) {
                        self.fetch(1, pline, sector);
                        self.stats[0].prefetch_fills += 1;
                        self.insert(0, pline, sector, false);
                    }
                }
            }
        }
    }

    /// Demand-fetch `line` into every level from `lvl` outward.
    fn fetch(&mut self, lvl: usize, line: u64, sector: u8) {
        if lvl == self.cfg.levels.len() {
            self.dram_read_lines += 1;
            return;
        }
        self.stats[lvl].accesses += 1;
        if self.lookup(lvl, line) {
            self.stats[lvl].hits += 1;
            return;
        }
        self.stats[lvl].misses += 1;
        self.fetch(lvl + 1, line, sector);
        self.stats[lvl].demand_fills += 1;
        self.insert(lvl, line, sector, false);
    }

    /// Deliver a full dirty line at `lvl` (writeback from the level
    /// below); allocates without fetching when absent.
    fn write_outward(&mut self, lvl: usize, line: u64, sector: u8) {
        if lvl == self.cfg.levels.len() {
            self.dram_write_lines += 1;
            return;
        }
        if self.lookup(lvl, line) {
            self.mark_dirty(lvl, line);
            return;
        }
        self.insert(lvl, line, sector, true);
    }

    fn set_range(&self, lvl: usize, line: u64) -> (usize, usize) {
        let l = &self.cfg.levels[lvl];
        let set = l
            .hash
            .set_of(line << self.line_shift, self.line_shift, l.sets);
        let start = (set * l.ways as u64) as usize;
        (start, start + l.ways as usize)
    }

    /// Probe for `line`; on hit, refresh its LRU stamp.
    fn lookup(&mut self, lvl: usize, line: u64) -> bool {
        let (start, end) = self.set_range(lvl, line);
        self.tick += 1;
        for slot in &mut self.slots[lvl][start..end] {
            if slot.valid && slot.tag == line {
                slot.stamp = self.tick;
                return true;
            }
        }
        false
    }

    fn mark_dirty(&mut self, lvl: usize, line: u64) {
        let (start, end) = self.set_range(lvl, line);
        for slot in &mut self.slots[lvl][start..end] {
            if slot.valid && slot.tag == line {
                slot.dirty = true;
                return;
            }
        }
    }

    /// Install `line`, evicting the LRU slot of its sector partition.
    fn insert(&mut self, lvl: usize, line: u64, sector: u8, dirty: bool) {
        let (start, end) = self.set_range(lvl, line);
        let l = &self.cfg.levels[lvl];
        // Sector partitioning restricts the victim choice to the sector's
        // ways; unpartitioned caches use the whole set.
        let (w0, w1) = match l.sector {
            Some(s) if sector == 0 => (0, s.ways[0] as usize),
            Some(s) => (s.ways[0] as usize, (s.ways[0] + s.ways[1]) as usize),
            None => (0, l.ways as usize),
        };
        let slots = &mut self.slots[lvl][start..end];
        let mut victim = w0;
        let mut best = u64::MAX;
        for (i, slot) in slots.iter().enumerate().take(w1).skip(w0) {
            if !slot.valid {
                victim = i;
                break;
            }
            if slot.stamp < best {
                best = slot.stamp;
                victim = i;
            }
        }
        let evicted = slots[victim];
        self.tick += 1;
        slots[victim] = Slot {
            tag: line,
            valid: true,
            dirty,
            sector,
            stamp: self.tick,
        };
        self.stats[lvl].sector_fills[sector.min(1) as usize] += 1;
        if evicted.valid && evicted.dirty {
            self.stats[lvl].writebacks += 1;
            self.write_outward(lvl + 1, evicted.tag, evicted.sector);
        }
    }

    /// Flush every dirty line outward so DRAM writes reflect steady-state
    /// traffic. Levels are drained innermost-first in slot order, which is
    /// deterministic by construction.
    fn flush(&mut self) {
        for lvl in 0..self.cfg.levels.len() {
            for i in 0..self.slots[lvl].len() {
                let slot = self.slots[lvl][i];
                if !slot.valid || !slot.dirty {
                    continue;
                }
                self.slots[lvl][i].dirty = false;
                self.stats[lvl].writebacks += 1;
                // Mark dirty in the nearest outer level holding the line,
                // else count a DRAM write directly.
                let mut placed = false;
                for outer in lvl + 1..self.cfg.levels.len() {
                    if self.lookup(outer, slot.tag) {
                        self.mark_dirty(outer, slot.tag);
                        placed = true;
                        break;
                    }
                }
                if !placed {
                    self.dram_write_lines += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::config::HierarchyConfig;
    use super::super::trace::TraceBuilder;
    use super::*;

    fn triad(n: u64) -> crate::cachesim::Trace {
        let mut t = TraceBuilder::new("triad");
        let a = t.array("a", 8 * n);
        let b = t.array("b", 8 * n);
        let c = t.array("c", 8 * n);
        t.open(n);
        t.read(b, 0, &[8]);
        t.read(c, 0, &[8]);
        t.write(a, 0, &[8]);
        t.close();
        t.build()
    }

    #[test]
    fn streaming_triad_matches_stream_counting_exactly() {
        // 2^18 elements/array = 2 MiB streams ≫ the 64 KiB L1 but the
        // point is exactness: reads 16n, writes 8n, total 24n.
        let n = 1u64 << 18;
        let r = CacheSim::new(HierarchyConfig::a64fx_core()).run(&triad(n));
        assert_eq!(r.dram_read_bytes(), 16 * n);
        assert_eq!(r.dram_write_bytes(), 8 * n);
        assert_eq!(r.dram_bytes(), r.nominal_bytes);
    }

    #[test]
    fn window_extrapolation_is_exact_for_streams() {
        // Prefetcher off: its look-ahead phase at the window edges is the
        // one source of (bounded, few-line) extrapolation noise.
        let mut cfg = HierarchyConfig::a64fx_core();
        cfg.levels[0].prefetch = None;
        let n = 1u64 << 18;
        let full = CacheSim::new(cfg.clone()).run(&triad(n));
        let mut t = TraceBuilder::new("triad");
        let a = t.array("a", 8 * n);
        let b = t.array("b", 8 * n);
        let c = t.array("c", 8 * n);
        // Warmup must stream more than the whole hierarchy's capacity so
        // the sampled window sees eviction steady state: 2^16 elements ×
        // 3 arrays = 6144 lines > the 3584-line L2 slice.
        t.open_windowed(n, 1 << 16, 1 << 14);
        t.read(b, 0, &[8]);
        t.read(c, 0, &[8]);
        t.write(a, 0, &[8]);
        t.close();
        let windowed = CacheSim::new(cfg).run(&t.build());
        assert_eq!(windowed.dram_read_lines, full.dram_read_lines);
        assert_eq!(windowed.dram_write_lines, full.dram_write_lines);
        for (w, f) in windowed.levels.iter().zip(&full.levels) {
            assert_eq!(w.accesses, f.accesses);
            assert_eq!(w.hits + w.misses, w.accesses);
        }
    }

    #[test]
    fn resident_working_set_stops_missing() {
        // 16 KiB array re-read 8 times fits L1: misses only on pass 1.
        let n = 2048u64;
        let mut t = TraceBuilder::new("resident");
        let x = t.array("x", 8 * n);
        t.open(8);
        t.open(n);
        t.read(x, 0, &[0, 8]);
        t.close();
        t.close();
        let r = CacheSim::new(HierarchyConfig::a64fx_core()).run(&t.build());
        assert_eq!(r.dram_read_bytes(), 8 * n);
        assert_eq!(r.dram_write_bytes(), 0);
        let l1 = r.level("L1d").unwrap();
        // Every line enters L1 exactly once (demand or prefetch) on the
        // first pass; the other 7 passes hit.
        assert_eq!(l1.demand_fills + l1.prefetch_fills, n * 8 / 256);
        assert!(l1.hits >= 7 * (n * 8 / 256));
    }

    #[test]
    fn rmw_costs_a_read_and_a_write() {
        // y[i] += 1 style: read site then write site on the same line ⇒
        // one DRAM read + one DRAM write per line.
        let n = 1u64 << 16;
        let mut t = TraceBuilder::new("rmw");
        let y = t.array("y", 8 * n);
        t.open(n);
        t.read(y, 0, &[8]);
        t.write(y, 0, &[8]);
        t.close();
        let r = CacheSim::new(HierarchyConfig::a64fx_core()).run(&t.build());
        assert_eq!(r.dram_read_bytes(), 8 * n);
        assert_eq!(r.dram_write_bytes(), 8 * n);
    }

    #[test]
    fn non_streaming_store_pays_rfo() {
        // A strided store (every 2nd line skipped? stride 2 elements) is
        // not a zfill site: each missed line is fetched before dirtying.
        let n = 1u64 << 14;
        let mut t = TraceBuilder::new("strided-store");
        let y = t.array("y", 16 * n);
        t.open(n);
        t.access(y, true, false, 0, &[16], 8);
        t.close();
        let r = CacheSim::new(HierarchyConfig::a64fx_core()).run(&t.build());
        // Every line is read (RFO) and written back.
        assert_eq!(r.dram_read_bytes(), 16 * n);
        assert_eq!(r.dram_write_bytes(), 16 * n);
    }

    #[test]
    fn prefetch_never_reads_past_the_array() {
        let n = 96u64; // 3 lines of f64
        let mut t = TraceBuilder::new("tiny");
        let x = t.array("x", 8 * n);
        t.open(n);
        t.read(x, 0, &[8]);
        t.close();
        let r = CacheSim::new(HierarchyConfig::a64fx_core()).run(&t.build());
        assert_eq!(r.dram_read_bytes(), 8 * n);
    }

    #[test]
    fn determinism_bit_identical_across_runs() {
        let t = triad(1 << 16);
        let sim = CacheSim::new(HierarchyConfig::a64fx_core());
        assert_eq!(sim.run(&t), sim.run(&t));
    }

    #[test]
    fn sector_partition_conserves_traffic_on_streams() {
        let n = 1u64 << 16;
        let plain = CacheSim::new(HierarchyConfig::a64fx_core()).run(&triad(n));
        let mut t = TraceBuilder::new("triad");
        let a = t.array_in_sector("a", 8 * n, 1);
        let b = t.array("b", 8 * n);
        let c = t.array_in_sector("c", 8 * n, 1);
        t.open(n);
        t.read(b, 0, &[8]);
        t.read(c, 0, &[8]);
        t.write(a, 0, &[8]);
        t.close();
        let sectored = CacheSim::new(HierarchyConfig::a64fx_core_sectored(2)).run(&t.build());
        assert_eq!(sectored.dram_bytes(), plain.dram_bytes());
        let l2 = sectored.level("L2").unwrap();
        assert!(l2.sector_fills[0] > 0 && l2.sector_fills[1] > 0);
    }
}
