//! From simulated traffic to predicted %-of-peak.
//!
//! The predictor composes three machine-grounded terms, all derived from
//! the trace rather than from per-kernel efficiency knobs:
//!
//! 1. **Compute time** from a port/issue model: vector FMA pipes versus
//!    load/store issue slots, with indexed gathers serialized to
//!    element-per-cycle (the SVE gather cost that makes CSR SpMV scalar-ish)
//!    and the compiler's vectorization uptake from [`crate::compiler`].
//! 2. **Cache-supply time** per level: lines filled into level *i* must be
//!    delivered by level *i+1*'s per-core bandwidth share.
//! 3. **DRAM time** from the simulator's line-accurate traffic at the
//!    machine's *measured* sustained bandwidth (the STREAM-calibrated
//!    hardware constant — machine property, not kernel property).
//!
//! Traces describe one core's shard of a full-node run; every rate here is
//! a per-core share under full-node load, so node-level %-of-peak equals
//! the per-core figure.

use super::config::HierarchyConfig;
use super::sim::{CacheSim, SimResult};
use super::trace::Trace;
use crate::compiler::Compiler;
use crate::machines::Machine;
use serde::{Deserialize, Serialize};

/// Vector memory/FP issue widths of one core.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PortModel {
    /// DP elements per vector register (8 for 512-bit SVE/AVX-512).
    pub lanes: f64,
    /// Vector loads issued per cycle.
    pub loads_per_cycle: f64,
    /// Vector stores issued per cycle.
    pub stores_per_cycle: f64,
    /// Combined load+store issue slots per cycle.
    pub mem_issue_per_cycle: f64,
    /// Gathered elements retired per cycle (indexed loads serialize).
    pub gather_elems_per_cycle: f64,
}

impl PortModel {
    /// A64FX: 2 × 512-bit loads or 1 store per cycle, 2 combined EAG
    /// slots, gathers at one element per cycle.
    pub fn a64fx() -> Self {
        Self {
            lanes: 8.0,
            loads_per_cycle: 2.0,
            stores_per_cycle: 1.0,
            mem_issue_per_cycle: 2.0,
            gather_elems_per_cycle: 1.0,
        }
    }

    /// Skylake-SP: 2 loads + 1 store per cycle, faster gathers (2 elems
    /// per cycle through the AVX-512 gather unit).
    pub fn skylake() -> Self {
        Self {
            lanes: 8.0,
            loads_per_cycle: 2.0,
            stores_per_cycle: 1.0,
            mem_issue_per_cycle: 3.0,
            gather_elems_per_cycle: 2.0,
        }
    }
}

/// What the kernel computes, per core shard (matching its trace).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KernelSpec {
    /// Kernel name.
    pub name: String,
    /// Double-precision flops executed by the shard.
    pub flops: f64,
    /// Bytes under the kernel's own flat accounting convention (what its
    /// effective-GB/s number divides by).
    pub counted_bytes: f64,
    /// Fraction of the work that is vectorizable (structural property).
    pub vectorizable: f64,
    /// `true` when the kernel is hand-tuned/vendor-library code.
    pub tuned: bool,
}

/// Per-level utilization entry of a [`Prediction`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LevelLoad {
    /// Level name.
    pub name: String,
    /// Bytes supplied to this level from below (fills) plus pushed back
    /// (writebacks), per core shard.
    pub bytes: f64,
    /// Per-core bandwidth share feeding this level, GB/s.
    pub supply_gbs: f64,
    /// Fraction of the kernel's time this level's supply path is busy.
    pub utilization: f64,
}

/// Predicted performance of one kernel on one machine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Prediction {
    /// Kernel name.
    pub kernel: String,
    /// Predicted shard execution time in seconds.
    pub time_s: f64,
    /// Predicted fraction of DP peak flops, in `[0, 1]`.
    pub pct_peak_flops: f64,
    /// Predicted effective bandwidth (counted bytes / time) as a fraction
    /// of peak DRAM bandwidth.
    pub pct_peak_bw: f64,
    /// Effective GB/s at node scale under the kernel's byte convention.
    pub effective_node_gbs: f64,
    /// Predicted GF/s at node scale.
    pub node_gflops: f64,
    /// Compute-side time share (port model), `t_compute / time`.
    pub compute_utilization: f64,
    /// Per-cache-level supply utilizations, innermost first.
    pub levels: Vec<LevelLoad>,
    /// DRAM utilization, `t_dram / time`.
    pub dram_utilization: f64,
    /// Which term bound the kernel: `"compute"`, a level name, or `"dram"`.
    pub bound: String,
    /// The underlying traffic simulation.
    pub sim: SimResult,
}

/// A machine + compiler + hierarchy bundle that predicts kernel
/// performance from traces.
#[derive(Debug, Clone)]
pub struct Predictor {
    /// Machine description (bandwidths, clocks, core counts).
    pub machine: Machine,
    /// Compiler model (vectorization uptake).
    pub compiler: Compiler,
    /// Cache hierarchy to simulate.
    pub cfg: HierarchyConfig,
    /// Core issue widths.
    pub ports: PortModel,
    /// Relative DRAM cost of a written byte versus a read byte. The
    /// A64FX spec sheet lists an asymmetric 256/128 GB/s HBM2 interface
    /// per CMG, but Fortran STREAM (zfill full-line stores) measures
    /// write parity on the shared bus, so the calibrated default is 1.0;
    /// raise it to model store-limited scenarios.
    pub dram_write_cost: f64,
}

impl Predictor {
    /// CTE-Arm with the Fujitsu toolchain — the paper's tuned baseline.
    pub fn cte_arm_fujitsu() -> Self {
        Self {
            machine: crate::machines::cte_arm(),
            compiler: Compiler::fujitsu(),
            cfg: HierarchyConfig::a64fx_core(),
            ports: PortModel::a64fx(),
            dram_write_cost: 1.0,
        }
    }

    /// MareNostrum 4 with the Intel toolchain.
    pub fn marenostrum4_intel() -> Self {
        Self {
            machine: crate::machines::marenostrum4(),
            compiler: Compiler::intel(),
            cfg: HierarchyConfig::skylake_core(),
            ports: PortModel::skylake(),
            dram_write_cost: 1.0,
        }
    }

    /// Predictor for a machine by name (`"CTE-Arm"` or `"MareNostrum 4"`)
    /// with its native toolchain, or `None` for unknown machines.
    pub fn for_machine(machine: &Machine) -> Option<Self> {
        match machine.name.as_str() {
            "CTE-Arm" => Some(Self::cte_arm_fujitsu()),
            "MareNostrum 4" => Some(Self::marenostrum4_intel()),
            _ => None,
        }
    }

    /// Per-core share of the measured sustained DRAM bandwidth, GB/s.
    fn dram_share_gbs(&self) -> f64 {
        self.machine
            .memory
            .app_sustained_bandwidth()
            .as_gb_per_sec()
            / self.machine.cores_per_node() as f64
    }

    /// Per-core supply bandwidth feeding cache level `i` (the bandwidth
    /// of level `i+1`, divided by its sharing cores), GB/s; `None` when
    /// the next level is DRAM (handled by the DRAM term).
    fn supply_share_gbs(&self, i: usize) -> Option<f64> {
        let next = self.machine.caches.levels.get(i + 1)?;
        Some(next.bandwidth.as_gb_per_sec() / next.shared_by as f64)
    }

    /// Compute-side time of the shard in seconds (port/issue model).
    fn compute_time_s(&self, spec: &KernelSpec, trace: &Trace) -> f64 {
        let mix = trace.op_mix();
        let core = &self.machine.core;
        let v = self
            .compiler
            .vectorized_fraction(spec.vectorizable, spec.tuned);
        let freq_hz = core.freq_ghz * 1e9;
        let derate = core.full_load_vector_derate;

        // Vectorized share: FMA pipes vs load/store issue slots.
        let lanes = self.ports.lanes;
        let fma_insts = v * spec.flops / (2.0 * lanes);
        let cycles_fp = fma_insts / core.fma_pipes as f64;
        // Memory ops: vector instructions for the vectorized share,
        // element-granular for the scalar share; gathers always serialize.
        let unit_load_insts = mix.unit_loads * (v / lanes + (1.0 - v));
        let store_insts = mix.stores * (v / lanes + (1.0 - v));
        let cycles_mem = (unit_load_insts / self.ports.loads_per_cycle)
            .max(store_insts / self.ports.stores_per_cycle)
            .max((unit_load_insts + store_insts) / self.ports.mem_issue_per_cycle)
            + mix.gather_loads / self.ports.gather_elems_per_cycle;
        let t_vec = cycles_fp.max(cycles_mem) / (freq_hz * derate);

        // Scalar share of the flops at the sustained scalar rate.
        let scalar_flops = (1.0 - v) * spec.flops;
        let t_scalar = if scalar_flops > 0.0 {
            scalar_flops / self.machine.core.sustained_scalar().value()
        } else {
            0.0
        };
        t_vec + t_scalar
    }

    /// Simulate `trace` and predict the kernel's performance.
    pub fn predict(&self, spec: &KernelSpec, trace: &Trace) -> Prediction {
        let sim = CacheSim::new(self.cfg.clone()).run(trace);
        let t_compute = self.compute_time_s(spec, trace);

        let mut levels = Vec::new();
        let mut t_supply_max = 0.0f64;
        let mut supply_bound = String::new();
        for (i, l) in sim.levels.iter().enumerate() {
            let bytes = (sim.fill_bytes(i) + sim.writeback_bytes(i)) as f64;
            if let Some(supply_gbs) = self.supply_share_gbs(i) {
                let t = bytes / (supply_gbs * 1e9);
                if t > t_supply_max {
                    t_supply_max = t;
                    supply_bound = l.name.clone();
                }
                levels.push(LevelLoad {
                    name: l.name.clone(),
                    bytes,
                    supply_gbs,
                    utilization: t, // normalized below
                });
            }
        }
        let t_dram = (sim.dram_read_bytes() as f64
            + self.dram_write_cost * sim.dram_write_bytes() as f64)
            / (self.dram_share_gbs() * 1e9);

        let time_s = t_compute.max(t_supply_max).max(t_dram).max(1e-30);
        for l in &mut levels {
            l.utilization /= time_s;
        }
        let bound = if time_s <= t_compute {
            "compute".to_string()
        } else if t_dram >= t_supply_max {
            "dram".to_string()
        } else {
            supply_bound
        };

        let cores = self.machine.cores_per_node() as f64;
        let core_peak_flops = self.machine.core.peak_dp().value();
        let peak_bw_core = self.machine.memory.peak_bandwidth().as_gb_per_sec() / cores;
        let gflops_core = spec.flops / time_s / 1e9;
        let gbs_core = spec.counted_bytes / time_s / 1e9;

        Prediction {
            kernel: spec.name.clone(),
            time_s,
            pct_peak_flops: (spec.flops / time_s) / core_peak_flops,
            pct_peak_bw: gbs_core / peak_bw_core,
            effective_node_gbs: gbs_core * cores,
            node_gflops: gflops_core * cores,
            compute_utilization: t_compute / time_s,
            levels,
            dram_utilization: t_dram / time_s,
            bound,
            sim,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::trace::TraceBuilder;
    use super::*;

    fn triad_spec_trace(n: u64) -> (KernelSpec, Trace) {
        let mut t = TraceBuilder::new("stream_triad");
        let a = t.array("a", 8 * n);
        let b = t.array("b", 8 * n);
        let c = t.array("c", 8 * n);
        t.open(n);
        t.read(b, 0, &[8]);
        t.read(c, 0, &[8]);
        t.write(a, 0, &[8]);
        t.close();
        (
            KernelSpec {
                name: "stream_triad".into(),
                flops: 2.0 * n as f64,
                counted_bytes: 24.0 * n as f64,
                vectorizable: 1.0,
                tuned: true,
            },
            t.build(),
        )
    }

    #[test]
    fn triad_lands_on_the_measured_sustained_fraction() {
        let p = Predictor::cte_arm_fujitsu();
        let (spec, trace) = triad_spec_trace(1 << 18);
        let pred = p.predict(&spec, &trace);
        // Streaming trace ⇒ DRAM bytes == counted bytes ⇒ %-of-peak-BW is
        // exactly the machine's measured sustained fraction (0.842).
        let expect = p.machine.memory.app_sustained_bandwidth().as_gb_per_sec()
            / p.machine.memory.peak_bandwidth().as_gb_per_sec();
        assert!(
            (pred.pct_peak_bw - expect).abs() < 1e-9,
            "triad pct {} vs sustained {expect}",
            pred.pct_peak_bw
        );
        assert_eq!(pred.bound, "dram");
        assert!(pred.pct_peak_flops < 0.03);
    }

    #[test]
    fn cache_resident_kernel_is_compute_bound() {
        // Tiny FMA-rich kernel: one resident line, many flops.
        let mut t = TraceBuilder::new("fma");
        let x = t.array("x", 256);
        t.open(1 << 16);
        t.read(x, 0, &[0]);
        t.close();
        let spec = KernelSpec {
            name: "fma".into(),
            flops: 16.0 * (1 << 16) as f64,
            counted_bytes: 8.0 * (1 << 16) as f64,
            vectorizable: 1.0,
            tuned: true,
        };
        let p = Predictor::cte_arm_fujitsu();
        let pred = p.predict(&spec, &t.build());
        assert_eq!(pred.bound, "compute");
        assert!(pred.pct_peak_flops > 0.5, "pct {}", pred.pct_peak_flops);
    }

    #[test]
    fn gathers_depress_compute_throughput() {
        let n = 1u64 << 14;
        let build = |gather: bool| {
            let mut t = TraceBuilder::new("spmv-ish");
            let x = t.array("x", 8 * n);
            let y = t.array("y", 8 * n);
            t.open(n);
            if gather {
                t.read_gather(x, 0, &[8]);
            } else {
                t.read(x, 0, &[8]);
            }
            t.write(y, 0, &[8]);
            t.close();
            t.build()
        };
        let spec = KernelSpec {
            name: "spmv-ish".into(),
            flops: 2.0 * n as f64,
            counted_bytes: 16.0 * n as f64,
            vectorizable: 1.0,
            tuned: true,
        };
        let p = Predictor::cte_arm_fujitsu();
        let unit = p.compute_time_s(&spec, &build(false));
        let gath = p.compute_time_s(&spec, &build(true));
        assert!(
            gath > 3.0 * unit,
            "gather {gath} should be ≫ unit-stride {unit}"
        );
    }

    #[test]
    fn skylake_predictor_exists_and_runs() {
        let p = Predictor::marenostrum4_intel();
        let (spec, trace) = triad_spec_trace(1 << 16);
        let pred = p.predict(&spec, &trace);
        assert!(pred.pct_peak_bw > 0.3 && pred.pct_peak_bw < 1.0);
    }
}
