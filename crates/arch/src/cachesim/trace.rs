//! Compact symbolic access traces.
//!
//! A [`Trace`] is an affine nested-loop program: a set of named arrays plus
//! a tree of counted loops whose leaves are array accesses with byte
//! offsets of the form `base + Σ coef[d] · idx[d]` over the enclosing loop
//! indices. This is the "streams, strides, reuse loops" descriptor format:
//! it captures exactly the address structure a cache simulator needs while
//! staying a few hundred bytes even for HPCG-scale working sets.
//!
//! Loops may carry a steady-state [`Window`]: the simulator executes
//! `warmup` trips to reach steady state, measures `sample` trips, and
//! extrapolates the remaining `trips - warmup - sample` trips by an exact
//! integer factor. The window invariant `(trips - warmup - sample) %
//! sample == 0` keeps every counter identity (`hits + misses == accesses`)
//! intact under extrapolation.

use serde::{Deserialize, Serialize};

/// Maximum loop nesting depth accepted by [`Trace::validate`].
pub const MAX_DEPTH: usize = 8;

/// One array (address stream) referenced by a trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ArrayDecl {
    /// Display name, e.g. `"x"` or `"apack"`.
    pub name: String,
    /// Extent in bytes. Every access must fall inside `[0, bytes)`.
    pub bytes: u64,
    /// Sector-cache tag (0 or 1) for way-partitioned hierarchies.
    pub sector: u8,
}

/// Opaque handle to an array declared on a [`TraceBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArrayId(pub usize);

/// Steady-state measurement window on a loop (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Window {
    /// Trips executed before sampling starts.
    pub warmup: u64,
    /// Trips actually simulated and then scaled up.
    pub sample: u64,
}

/// A counted loop with a body of nested nodes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Loop {
    /// Trip count (≥ 1).
    pub trips: u64,
    /// Optional steady-state measurement window.
    pub window: Option<Window>,
    /// Loop body, executed once per trip.
    pub body: Vec<Node>,
}

/// One static memory access site.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Access {
    /// Index into [`Trace::arrays`].
    pub array: usize,
    /// `true` for a store, `false` for a load.
    pub write: bool,
    /// `true` when the access is an indexed (gather/scatter) operation:
    /// the affine offsets approximate the address *footprint*, but the
    /// core issues element-granular indexed memory operations.
    pub gather: bool,
    /// Constant byte offset into the array.
    pub base: i64,
    /// Byte stride per enclosing loop, outermost first
    /// (`len() == nesting depth`).
    pub coefs: Vec<i64>,
    /// Element size in bytes (8 for f64).
    pub elem_bytes: u32,
}

/// A trace node: either a loop or a leaf access.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Node {
    /// Nested counted loop.
    Loop(Loop),
    /// Leaf memory access.
    Access(Access),
}

/// Totals of core-issued memory operations, in elements, used by the
/// port/issue model to derive compute-side efficiency from the trace
/// instead of a hard-coded per-kernel constant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OpMix {
    /// Unit-stride (vectorizable) load elements.
    pub unit_loads: f64,
    /// Indexed gather load elements (serialized on most cores).
    pub gather_loads: f64,
    /// Store elements.
    pub stores: f64,
}

impl OpMix {
    /// Fraction of loaded elements that are gathers (0 when nothing loads).
    pub fn gather_fraction(&self) -> f64 {
        let loads = self.unit_loads + self.gather_loads;
        if loads <= 0.0 {
            0.0
        } else {
            self.gather_loads / loads
        }
    }
}

/// A complete symbolic access trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Trace {
    /// Kernel name, e.g. `"stream_triad"`.
    pub name: String,
    /// Arrays referenced by the body.
    pub arrays: Vec<ArrayDecl>,
    /// Top-level nodes.
    pub body: Vec<Node>,
}

impl Trace {
    /// Check structural invariants: nesting depth, coefficient arity,
    /// array bounds at the loop-extreme corners, and window divisibility.
    pub fn validate(&self) -> Result<(), String> {
        fn walk(t: &Trace, nodes: &[Node], trips: &mut Vec<u64>) -> Result<(), String> {
            for n in nodes {
                match n {
                    Node::Loop(lp) => {
                        if lp.trips == 0 {
                            return Err(format!("{}: zero-trip loop", t.name));
                        }
                        if trips.len() >= MAX_DEPTH {
                            return Err(format!(
                                "{}: loops nested deeper than {MAX_DEPTH}",
                                t.name
                            ));
                        }
                        if let Some(w) = lp.window {
                            if w.sample == 0 {
                                return Err(format!("{}: window with zero sample", t.name));
                            }
                            if w.warmup + w.sample > lp.trips {
                                return Err(format!("{}: window longer than loop", t.name));
                            }
                            if (lp.trips - w.warmup - w.sample) % w.sample != 0 {
                                return Err(format!(
                                    "{}: window remainder not a multiple of sample",
                                    t.name
                                ));
                            }
                        }
                        trips.push(lp.trips);
                        walk(t, &lp.body, trips)?;
                        trips.pop();
                    }
                    Node::Access(a) => {
                        let arr = t
                            .arrays
                            .get(a.array)
                            .ok_or_else(|| format!("{}: access to undeclared array", t.name))?;
                        if a.coefs.len() != trips.len() {
                            return Err(format!(
                                "{}: access to {} has {} coefs at depth {}",
                                t.name,
                                arr.name,
                                a.coefs.len(),
                                trips.len()
                            ));
                        }
                        let (mut lo, mut hi) = (a.base, a.base);
                        for (d, &c) in a.coefs.iter().enumerate() {
                            let span = c * (trips[d] as i64 - 1);
                            if span < 0 {
                                lo += span;
                            } else {
                                hi += span;
                            }
                        }
                        if lo < 0 || hi + a.elem_bytes as i64 > arr.bytes as i64 {
                            return Err(format!(
                                "{}: access range [{lo}, {}] escapes array {} of {} bytes",
                                t.name,
                                hi + a.elem_bytes as i64,
                                arr.name,
                                arr.bytes
                            ));
                        }
                    }
                }
            }
            Ok(())
        }
        let mut trips = Vec::new();
        walk(self, &self.body, &mut trips)
    }

    /// Analytic element-granular byte count: every access contributes
    /// `elem_bytes` once per execution. This is the flat-roofline oracle
    /// the differential tests compare the simulator against.
    pub fn nominal_bytes(&self) -> u64 {
        self.fold(|a, execs| execs * a.elem_bytes as u64)
    }

    /// Total number of access executions (element granularity).
    pub fn nominal_accesses(&self) -> u64 {
        self.fold(|_, execs| execs)
    }

    /// Core-issued operation totals for the port/issue model.
    pub fn op_mix(&self) -> OpMix {
        let mut mix = OpMix::default();
        self.fold(|a, execs| {
            let e = execs as f64;
            if a.write {
                mix.stores += e;
            } else if a.gather {
                mix.gather_loads += e;
            } else {
                mix.unit_loads += e;
            }
            0
        });
        mix
    }

    fn fold<F: FnMut(&Access, u64) -> u64>(&self, mut f: F) -> u64 {
        fn walk<F: FnMut(&Access, u64) -> u64>(nodes: &[Node], execs: u64, f: &mut F) -> u64 {
            let mut total = 0u64;
            for n in nodes {
                match n {
                    Node::Loop(lp) => total += walk(&lp.body, execs * lp.trips, f),
                    Node::Access(a) => total += f(a, execs),
                }
            }
            total
        }
        walk(&self.body, 1, &mut f)
    }
}

/// Incremental [`Trace`] constructor; panics on structural misuse (an
/// invalid trace is a programming error in the kernel descriptor).
pub struct TraceBuilder {
    name: String,
    arrays: Vec<ArrayDecl>,
    /// Stack of open bodies; index 0 is the trace top level.
    stack: Vec<Vec<Node>>,
    /// `(trips, window)` of each open loop, innermost last.
    open: Vec<(u64, Option<Window>)>,
}

impl TraceBuilder {
    /// Start a trace called `name`.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            arrays: Vec::new(),
            stack: vec![Vec::new()],
            open: Vec::new(),
        }
    }

    /// Declare an array of `bytes` bytes in sector 0.
    pub fn array(&mut self, name: &str, bytes: u64) -> ArrayId {
        self.array_in_sector(name, bytes, 0)
    }

    /// Declare an array with an explicit sector-cache tag.
    pub fn array_in_sector(&mut self, name: &str, bytes: u64, sector: u8) -> ArrayId {
        assert!(sector < 2, "sector tag must be 0 or 1");
        assert!(bytes > 0, "empty array {name}");
        self.arrays.push(ArrayDecl {
            name: name.to_string(),
            bytes,
            sector,
        });
        ArrayId(self.arrays.len() - 1)
    }

    /// Open a counted loop.
    pub fn open(&mut self, trips: u64) {
        self.open.push((trips, None));
        self.stack.push(Vec::new());
    }

    /// Open a counted loop with a steady-state measurement window.
    pub fn open_windowed(&mut self, trips: u64, warmup: u64, sample: u64) {
        self.open.push((trips, Some(Window { warmup, sample })));
        self.stack.push(Vec::new());
    }

    /// Close the innermost open loop.
    pub fn close(&mut self) {
        let (trips, window) = self.open.pop().expect("close without open loop");
        let body = self.stack.pop().expect("builder stack underflow");
        self.stack
            .last_mut()
            .expect("builder stack underflow")
            .push(Node::Loop(Loop {
                trips,
                window,
                body,
            }));
    }

    /// Record an f64 load at `base + Σ coefs[d]·idx[d]`.
    pub fn read(&mut self, a: ArrayId, base: i64, coefs: &[i64]) {
        self.access(a, false, false, base, coefs, 8);
    }

    /// Record an f64 indexed gather load.
    pub fn read_gather(&mut self, a: ArrayId, base: i64, coefs: &[i64]) {
        self.access(a, false, true, base, coefs, 8);
    }

    /// Record an f64 store.
    pub fn write(&mut self, a: ArrayId, base: i64, coefs: &[i64]) {
        self.access(a, true, false, base, coefs, 8);
    }

    /// Record an access with full control over flags and element size.
    pub fn access(
        &mut self,
        a: ArrayId,
        write: bool,
        gather: bool,
        base: i64,
        coefs: &[i64],
        elem_bytes: u32,
    ) {
        assert_eq!(
            coefs.len(),
            self.open.len(),
            "access needs one coefficient per open loop"
        );
        self.stack
            .last_mut()
            .expect("builder stack underflow")
            .push(Node::Access(Access {
                array: a.0,
                write,
                gather,
                base,
                coefs: coefs.to_vec(),
                elem_bytes,
            }));
    }

    /// Finish and validate the trace.
    pub fn build(mut self) -> Trace {
        assert!(self.open.is_empty(), "unclosed loop in trace builder");
        let trace = Trace {
            name: self.name,
            arrays: self.arrays,
            body: self.stack.pop().expect("builder stack underflow"),
        };
        if let Err(e) = trace.validate() {
            panic!("invalid trace: {e}");
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triad(n: u64) -> Trace {
        let mut t = TraceBuilder::new("triad");
        let a = t.array("a", 8 * n);
        let b = t.array("b", 8 * n);
        let c = t.array("c", 8 * n);
        t.open(n);
        t.read(b, 0, &[8]);
        t.read(c, 0, &[8]);
        t.write(a, 0, &[8]);
        t.close();
        t.build()
    }

    #[test]
    fn nominal_counts_match_stream_convention() {
        let t = triad(1000);
        assert_eq!(t.nominal_bytes(), 24 * 1000);
        assert_eq!(t.nominal_accesses(), 3 * 1000);
    }

    #[test]
    fn op_mix_classifies_sites() {
        let mut b = TraceBuilder::new("mix");
        let x = b.array("x", 8 * 100);
        let y = b.array("y", 8 * 100);
        b.open(100);
        b.read(x, 0, &[8]);
        b.read_gather(x, 0, &[8]);
        b.write(y, 0, &[8]);
        b.close();
        let mix = b.build().op_mix();
        assert_eq!(mix.unit_loads, 100.0);
        assert_eq!(mix.gather_loads, 100.0);
        assert_eq!(mix.stores, 100.0);
        assert!((mix.gather_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn out_of_bounds_access_rejected() {
        let mut b = TraceBuilder::new("oob");
        let x = b.array("x", 80);
        b.open(11);
        b.read(x, 0, &[8]);
        b.close();
        let t = Trace {
            name: b.name.clone(),
            arrays: b.arrays.clone(),
            body: b.stack.pop().unwrap(),
        };
        assert!(t.validate().is_err());
    }

    #[test]
    fn window_divisibility_enforced() {
        let t = Trace {
            name: "w".into(),
            arrays: vec![ArrayDecl {
                name: "x".into(),
                bytes: 8 * 100,
                sector: 0,
            }],
            body: vec![Node::Loop(Loop {
                trips: 100,
                window: Some(Window {
                    warmup: 10,
                    sample: 7,
                }),
                body: vec![Node::Access(Access {
                    array: 0,
                    write: false,
                    gather: false,
                    base: 0,
                    coefs: vec![8],
                    elem_bytes: 8,
                })],
            })],
        };
        assert!(t.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "one coefficient per open loop")]
    fn builder_checks_coef_arity() {
        let mut b = TraceBuilder::new("bad");
        let x = b.array("x", 800);
        b.open(10);
        b.read(x, 0, &[]);
    }
}
