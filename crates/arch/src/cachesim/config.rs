//! Parametric cache-hierarchy configurations.
//!
//! The A64FX numbers follow the Fujitsu micro-architecture manual: 64 KiB
//! 4-way L1d with 256 B lines and modulo indexing, and a 7 MiB usable
//! (8 MiB minus the assistant-core partition) 14-way L2 per CMG whose set
//! index XOR-folds high physical-address bits into `PA<18:8>`:
//!
//! ```text
//! index<10:0> = ((PA<36:34> ^ PA<32:30> ^ PA<31:29> ^ PA<27:25> ^ PA<23:21>) << 8)
//!               ^ PA<18:8>
//! ```
//!
//! Traces model one core's shard of a full-node run, so the shipped
//! configurations are *per-core slices*: the private L1 at full size and
//! the shared L2/L3 scaled to one core's fair share of capacity (sets
//! reduced, ways — and therefore conflict behaviour — preserved).

use serde::{Deserialize, Serialize};

/// Set-index function of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IndexHash {
    /// Plain modulo indexing: `set = line mod sets`.
    Modulo,
    /// Fold `line >> shift` into the low index bits with XOR.
    XorFold {
        /// Right-shift applied before folding.
        shift: u32,
    },
    /// The A64FX L2 hash above (256 B lines assumed), masked to `sets`.
    A64fxL2,
}

impl IndexHash {
    /// Set index of byte address `addr` for a level with `sets` sets
    /// (power of two) and `line_shift = log2(line_bytes)`.
    pub fn set_of(self, addr: u64, line_shift: u32, sets: u64) -> u64 {
        let line = addr >> line_shift;
        match self {
            IndexHash::Modulo => line & (sets - 1),
            IndexHash::XorFold { shift } => (line ^ (line >> shift)) & (sets - 1),
            IndexHash::A64fxL2 => {
                let fold =
                    ((addr >> 34) ^ (addr >> 30) ^ (addr >> 29) ^ (addr >> 25) ^ (addr >> 21))
                        & 0x7;
                (((fold << 8) ^ ((addr >> 8) & 0x7ff)) & 0x7ff) & (sets - 1)
            }
        }
    }
}

/// Sector-cache way partition: Fujitsu's software-controlled split of a
/// cache's ways between two data classes (HPC extension `sector cache`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SectorConfig {
    /// Ways granted to sector 0 and sector 1; must sum to the level's ways.
    pub ways: [u32; 2],
}

/// Hardware next-line prefetcher attached to a level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefetchConfig {
    /// Lines fetched ahead on a detected ascending stream.
    pub degree: u32,
}

/// One cache level.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LevelConfig {
    /// Display name (`"L1d"`, `"L2"`, …).
    pub name: String,
    /// Line size in bytes (power of two; equal across the hierarchy).
    pub line_bytes: u64,
    /// Number of sets (power of two).
    pub sets: u64,
    /// Associativity.
    pub ways: u32,
    /// Set-index function.
    pub hash: IndexHash,
    /// `true` to allocate on store misses (write-back caches).
    pub write_allocate: bool,
    /// Optional sector-cache way partition.
    pub sector: Option<SectorConfig>,
    /// Optional next-line prefetcher (honoured on the innermost level).
    pub prefetch: Option<PrefetchConfig>,
}

impl LevelConfig {
    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.line_bytes * self.sets * self.ways as u64
    }
}

/// An ordered cache hierarchy, innermost level first.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// Configuration name (`"a64fx-core"`, …).
    pub name: String,
    /// Levels from L1 outward.
    pub levels: Vec<LevelConfig>,
}

impl HierarchyConfig {
    /// Check structural invariants; panics describe the offending level.
    pub fn validate(&self) {
        assert!(!self.levels.is_empty(), "{}: empty hierarchy", self.name);
        let line = self.levels[0].line_bytes;
        for l in &self.levels {
            assert!(
                l.line_bytes.is_power_of_two() && l.sets.is_power_of_two(),
                "{}/{}: line and set counts must be powers of two",
                self.name,
                l.name
            );
            assert_eq!(
                l.line_bytes, line,
                "{}/{}: mixed line sizes are not supported",
                self.name, l.name
            );
            assert!(l.ways >= 1, "{}/{}: zero ways", self.name, l.name);
            if let Some(s) = l.sector {
                assert_eq!(
                    s.ways[0] + s.ways[1],
                    l.ways,
                    "{}/{}: sector ways must sum to associativity",
                    self.name,
                    l.name
                );
                assert!(
                    s.ways[0] >= 1 && s.ways[1] >= 1,
                    "{}/{}: each sector needs at least one way",
                    self.name,
                    l.name
                );
            }
        }
    }

    /// Shared line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.levels[0].line_bytes
    }

    /// A64FX per-core slice: full private L1d (64 KiB, 4-way, modulo) plus
    /// a 14-way XOR-hashed slice of the CMG L2 — 256 of the 2048 sets,
    /// i.e. 896 KiB ≈ the 7 MiB usable L2 divided by its 12 sharing cores
    /// (rounded up to a power-of-two set count to keep the hash exact).
    pub fn a64fx_core() -> Self {
        let h = Self {
            name: "a64fx-core".into(),
            levels: vec![
                LevelConfig {
                    name: "L1d".into(),
                    line_bytes: 256,
                    sets: 64,
                    ways: 4,
                    hash: IndexHash::Modulo,
                    write_allocate: true,
                    sector: None,
                    prefetch: Some(PrefetchConfig { degree: 2 }),
                },
                LevelConfig {
                    name: "L2".into(),
                    line_bytes: 256,
                    sets: 256,
                    ways: 14,
                    hash: IndexHash::A64fxL2,
                    write_allocate: true,
                    sector: None,
                    prefetch: None,
                },
            ],
        };
        h.validate();
        h
    }

    /// A64FX per-CMG hierarchy: one core's L1 in front of the full 7 MiB
    /// usable 14-way L2 (2048 sets, XOR hash). Used when a trace models a
    /// whole CMG's interleaved working set.
    pub fn a64fx_cmg() -> Self {
        let mut h = Self::a64fx_core();
        h.name = "a64fx-cmg".into();
        h.levels[1].sets = 2048;
        h.validate();
        h
    }

    /// Like [`Self::a64fx_core`] but with the L2 way-partitioned by the
    /// sector cache: `ways` ways for sector-1 (streaming) data, the rest
    /// for sector 0.
    pub fn a64fx_core_sectored(streaming_ways: u32) -> Self {
        let mut h = Self::a64fx_core();
        h.name = format!("a64fx-core-sector{streaming_ways}");
        h.levels[1].sector = Some(SectorConfig {
            ways: [14 - streaming_ways, streaming_ways],
        });
        h.validate();
        h
    }

    /// Skylake-SP per-core slice: 32 KiB 8-way L1d, 1 MiB 16-way private
    /// L2, and one core's 1.375 MiB 11-way slice of the 33 MiB shared L3.
    /// 64 B lines throughout.
    pub fn skylake_core() -> Self {
        let h = Self {
            name: "skylake-core".into(),
            levels: vec![
                LevelConfig {
                    name: "L1d".into(),
                    line_bytes: 64,
                    sets: 64,
                    ways: 8,
                    hash: IndexHash::Modulo,
                    write_allocate: true,
                    sector: None,
                    prefetch: Some(PrefetchConfig { degree: 2 }),
                },
                LevelConfig {
                    name: "L2".into(),
                    line_bytes: 64,
                    sets: 1024,
                    ways: 16,
                    hash: IndexHash::Modulo,
                    write_allocate: true,
                    sector: None,
                    prefetch: None,
                },
                LevelConfig {
                    name: "L3".into(),
                    line_bytes: 64,
                    sets: 2048,
                    ways: 11,
                    hash: IndexHash::XorFold { shift: 11 },
                    write_allocate: true,
                    sector: None,
                    prefetch: None,
                },
            ],
        };
        h.validate();
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a64fx_core_capacities() {
        let h = HierarchyConfig::a64fx_core();
        assert_eq!(h.levels[0].capacity_bytes(), 64 * 1024);
        assert_eq!(h.levels[1].capacity_bytes(), 896 * 1024);
        assert_eq!(h.line_bytes(), 256);
    }

    #[test]
    fn a64fx_cmg_l2_is_7mib() {
        let h = HierarchyConfig::a64fx_cmg();
        assert_eq!(h.levels[1].capacity_bytes(), 7 * 1024 * 1024);
    }

    #[test]
    fn l2_hash_folds_high_bits() {
        // Two addresses 2^21 apart map to different sets under the XOR
        // hash but the same set under modulo indexing.
        let sets = 2048;
        let a = 0x40000u64;
        let b = a + (1 << 21);
        let xor = IndexHash::A64fxL2;
        assert_eq!(
            IndexHash::Modulo.set_of(a, 8, sets),
            IndexHash::Modulo.set_of(b, 8, sets)
        );
        assert_ne!(xor.set_of(a, 8, sets), xor.set_of(b, 8, sets));
        // Low bits still select consecutive sets for consecutive lines.
        assert_eq!(xor.set_of(a, 8, sets) + 1, xor.set_of(a + 256, 8, sets));
    }

    #[test]
    fn hash_respects_set_mask() {
        for hash in [
            IndexHash::Modulo,
            IndexHash::XorFold { shift: 7 },
            IndexHash::A64fxL2,
        ] {
            for addr in (0..1u64 << 24).step_by(997 * 8) {
                assert!(hash.set_of(addr, 8, 256) < 256);
            }
        }
    }

    #[test]
    #[should_panic(expected = "sector ways must sum")]
    fn bad_sector_split_rejected() {
        let mut h = HierarchyConfig::a64fx_core();
        h.levels[1].sector = Some(SectorConfig { ways: [4, 4] });
        h.validate();
    }
}
