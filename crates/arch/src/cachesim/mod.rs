//! # cachesim — parametric A64FX-grade cache-hierarchy simulation
//!
//! A deterministic set-associative cache simulator driven by compact
//! symbolic access traces, plus a predictor that turns the simulated
//! per-level traffic into %-of-peak figures. This is the machinery that
//! makes the paper's measured kernel efficiencies (STREAM 84 %, DGEMM
//! 88 %, HPCG 2.9 %, stencil ~59 % of sustained) *outputs* of the model
//! rather than hand-calibrated inputs.
//!
//! The module splits into four layers:
//!
//! * [`trace`] — the affine nested-loop trace descriptors kernels emit
//!   from their `traffic_trace()` constructors.
//! * [`config`] — parametric hierarchy descriptions: line size, sets,
//!   ways, index hash (including the A64FX L2 XOR fold), write-allocate
//!   policy, sector-cache way partitioning and next-line prefetch.
//! * [`sim`] — the simulator itself, with full-line streaming-store
//!   (zfill) handling and steady-state window extrapolation.
//! * [`predict`] — the %-of-peak predictor combining port/issue modelling
//!   with per-level supply bandwidth and measured sustained DRAM rates.

pub mod config;
pub mod predict;
pub mod sim;
pub mod trace;

pub use config::{HierarchyConfig, IndexHash, LevelConfig, PrefetchConfig, SectorConfig};
pub use predict::{KernelSpec, LevelLoad, PortModel, Prediction, Predictor};
pub use sim::{CacheSim, LevelStats, SimResult};
pub use trace::{Access, ArrayDecl, ArrayId, Loop, Node, OpMix, Trace, TraceBuilder, Window};
