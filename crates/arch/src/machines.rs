//! The two machines of the paper, fully populated (Table I).

use crate::cache::CacheHierarchy;
use crate::cpu::CoreModel;
use crate::isa::VectorIsa;
use crate::memory::MemoryModel;
use serde::{Deserialize, Serialize};
use simkit::units::{Bandwidth, FlopRate};

/// A complete machine description: node architecture plus cluster scale.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Machine {
    /// Cluster name as used in the paper.
    pub name: String,
    /// System integrator (Table I).
    pub integrator: String,
    /// Core model.
    pub core: CoreModel,
    /// Cache hierarchy.
    pub caches: CacheHierarchy,
    /// Memory model.
    pub memory: MemoryModel,
    /// Sockets per node (1 A64FX, 2 Skylake).
    pub sockets: usize,
    /// Number of compute nodes in the cluster.
    pub nodes: usize,
    /// Peak per-direction network injection bandwidth per node (Table I).
    pub network_peak: Bandwidth,
    /// Interconnect name.
    pub interconnect: String,
}

impl Machine {
    /// Cores per node.
    pub fn cores_per_node(&self) -> usize {
        self.memory.cores()
    }

    /// Table I `DP Peak / node`.
    pub fn peak_dp_node(&self) -> FlopRate {
        FlopRate::per_sec(self.core.peak_dp().value() * self.cores_per_node() as f64)
    }

    /// Theoretical peak of `n` nodes.
    pub fn peak_dp_cluster(&self, n: usize) -> FlopRate {
        assert!(
            n >= 1 && n <= self.nodes,
            "node count out of range for {}",
            self.name
        );
        FlopRate::per_sec(self.peak_dp_node().value() * n as f64)
    }
}

/// CTE-Arm: the Fugaku-like production cluster at BSC. 192 nodes, one
/// Fujitsu A64FX (48 cores, 4 CMGs, SVE-512, 32 GB HBM2) per node, TofuD.
///
/// ```
/// let cte = arch::machines::cte_arm();
/// assert_eq!(cte.cores_per_node(), 48);
/// // Table I: 3379.20 GFlop/s DP peak per node.
/// assert!((cte.peak_dp_node().as_gflops() - 3379.20).abs() < 0.01);
/// ```
pub fn cte_arm() -> Machine {
    Machine {
        name: "CTE-Arm".into(),
        integrator: "Fujitsu".into(),
        core: CoreModel {
            name: "A64FX".into(),
            freq_ghz: 2.2,
            vector_isa: VectorIsa::sve_512(),
            fma_pipes: 2,
            scalar_fma_per_cycle: 2,
            // Weak out-of-order engine: shallow reorder window and few
            // rename registers keep un-tuned scalar code near 1.4 flop/cycle
            // of the 4 flop/cycle scalar peak. This single parameter,
            // together with the GNU SVE uptake in `compiler.rs`, produces
            // the paper's 2–5× application slowdowns.
            scalar_ilp: 0.35,
            // A64FX sustains full-node SVE at nominal frequency by design.
            full_load_vector_derate: 1.0,
        },
        caches: CacheHierarchy::a64fx(),
        memory: MemoryModel::a64fx(),
        sockets: 1,
        nodes: 192,
        network_peak: Bandwidth::gb_per_sec(6.8),
        interconnect: "TofuD".into(),
    }
}

/// MareNostrum 4: the Intel reference system. 3456 nodes, 2× Xeon Platinum
/// 8160 (24 cores each, AVX-512, 6 DDR4-2666 channels per socket), OmniPath.
pub fn marenostrum4() -> Machine {
    Machine {
        name: "MareNostrum 4".into(),
        integrator: "Lenovo".into(),
        core: CoreModel {
            name: "Xeon Platinum 8160".into(),
            freq_ghz: 2.1,
            vector_isa: VectorIsa::avx512(),
            fma_pipes: 2,
            scalar_fma_per_cycle: 2,
            // Skylake's deep out-of-order engine sustains ~3.4 flop/cycle
            // of the 4 flop/cycle scalar peak on un-tuned code.
            scalar_ilp: 0.85,
            // Package-wide AVX-512 load trips the licence/thermal frequency
            // limit: full-node SIMD sustains ~70 % of the nominal rate.
            // (A single core — Fig. 1 — still runs at nominal clock.)
            full_load_vector_derate: 0.70,
        },
        caches: CacheHierarchy::skylake_8160(),
        memory: MemoryModel::skylake_8160(),
        sockets: 2,
        nodes: 3456,
        network_peak: Bandwidth::gb_per_sec(12.0),
        interconnect: "Intel OmniPath".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_dp_peaks() {
        let cte = cte_arm();
        let mn4 = marenostrum4();
        assert!((cte.core.peak_dp().as_gflops() - 70.40).abs() < 0.01);
        assert!((mn4.core.peak_dp().as_gflops() - 67.20).abs() < 0.01);
        assert!((cte.peak_dp_node().as_gflops() - 3379.20).abs() < 0.01);
        assert!((mn4.peak_dp_node().as_gflops() - 3225.60).abs() < 0.01);
    }

    #[test]
    fn table1_node_counts_and_cores() {
        let cte = cte_arm();
        let mn4 = marenostrum4();
        assert_eq!(cte.nodes, 192);
        assert_eq!(mn4.nodes, 3456);
        assert_eq!(cte.cores_per_node(), 48);
        assert_eq!(mn4.cores_per_node(), 48);
        assert_eq!(cte.sockets, 1);
        assert_eq!(mn4.sockets, 2);
    }

    #[test]
    fn table1_memory_and_network() {
        let cte = cte_arm();
        let mn4 = marenostrum4();
        assert_eq!(cte.memory.capacity().value(), 32e9);
        assert_eq!(mn4.memory.capacity().value(), 96e9);
        assert_eq!(cte.memory.peak_bandwidth().as_gb_per_sec(), 1024.0);
        assert_eq!(mn4.memory.peak_bandwidth().as_gb_per_sec(), 256.0);
        assert_eq!(cte.network_peak.as_gb_per_sec(), 6.8);
        assert_eq!(mn4.network_peak.as_gb_per_sec(), 12.0);
    }

    #[test]
    fn cluster_peak_scales_linearly() {
        let cte = cte_arm();
        let p192 = cte.peak_dp_cluster(192).as_tflops();
        // 192 × 3.3792 TFlop/s ≈ 648.8 TFlop/s.
        assert!((p192 - 648.8064).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "node count out of range")]
    fn cluster_peak_bounds_checked() {
        cte_arm().peak_dp_cluster(193);
    }
}
