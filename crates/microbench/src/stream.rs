//! Figs. 2 & 3 — the STREAM Triad studies.

use arch::cache::stream_min_elements;
use arch::compiler::Language;
use arch::machines::Machine;
use simkit::series::{Figure, Series};

/// STREAM array length used on each machine in the paper:
/// 610 M elements (CTE-Arm) and 400 M (MareNostrum 4), both of which
/// satisfy the `E ≥ max(10⁷, 4S/8)` rule.
pub fn paper_elements(machine: &Machine) -> usize {
    if machine.sockets == 1 {
        610_000_000
    } else {
        400_000_000
    }
}

/// Check a proposed element count against STREAM's sizing rule.
pub fn elements_are_valid(machine: &Machine, elements: usize) -> bool {
    elements >= stream_min_elements(machine.caches.llc_total(machine.cores_per_node()))
}

/// Fig. 2 — OpenMP-only Triad bandwidth vs thread count, C and Fortran,
/// both machines, spread binding.
pub fn figure2(cte: &Machine, mn4: &Machine) -> Figure {
    let mut fig = Figure::new(
        "fig2",
        "STREAM Triad bandwidth with OpenMP (spread binding)",
        "OpenMP threads",
        "GB/s",
    );
    for m in [cte, mn4] {
        for (lang, name) in [(Language::C, "C"), (Language::Fortran, "Fortran")] {
            let mut s = Series::new(format!("{} ({name})", m.name));
            for t in 1..=m.cores_per_node() {
                s.push(t as f64, m.memory.stream_openmp(t, lang).as_gb_per_sec());
            }
            fig.series.push(s);
        }
    }
    fig
}

/// One point of Fig. 3: a rank×thread combination.
#[derive(Debug, Clone)]
pub struct HybridPoint {
    /// MPI ranks (≤ one per NUMA domain).
    pub ranks: usize,
    /// OpenMP threads per rank.
    pub threads: usize,
    /// Achieved bandwidth in GB/s.
    pub gb_per_sec: f64,
}

/// The rank×thread sweep of Fig. 3 for one machine and language: 1 rank ×
/// all cores up to one rank per NUMA domain × its cores.
pub fn hybrid_sweep(machine: &Machine, lang: Language) -> Vec<HybridPoint> {
    let domains = machine.memory.n_domains;
    let cores = machine.cores_per_node();
    (0..)
        .map(|i| 1usize << i)
        .take_while(|&r| r <= domains)
        .map(|ranks| {
            // Fill the node: ranks × threads = cores (1×48, 2×24, 4×12 on
            // CTE-Arm; 1×48, 2×24 on MareNostrum 4), as plotted in Fig. 3.
            let threads = cores / ranks;
            HybridPoint {
                ranks,
                threads,
                gb_per_sec: machine
                    .memory
                    .stream_mpi_omp(ranks, threads, lang)
                    .as_gb_per_sec(),
            }
        })
        .collect()
}

/// Fig. 3 — MPI+OpenMP Triad bandwidth; x = MPI ranks.
pub fn figure3(cte: &Machine, mn4: &Machine) -> Figure {
    let mut fig = Figure::new(
        "fig3",
        "STREAM Triad bandwidth with MPI+OpenMP (one rank per NUMA domain)",
        "MPI ranks",
        "GB/s",
    );
    for m in [cte, mn4] {
        for (lang, name) in [(Language::C, "C"), (Language::Fortran, "Fortran")] {
            let mut s = Series::new(format!("{} ({name})", m.name));
            for p in hybrid_sweep(m, lang) {
                s.push(p.ranks as f64, p.gb_per_sec);
            }
            fig.series.push(s);
        }
    }
    fig
}

/// Run the real Triad kernel (sequential + rayon) on the host at a small
/// size, returning `(sequential_gbps, parallel_gbps)`.
pub fn host_triad(elements: usize) -> (f64, f64) {
    use kernels::stream::{measure_bandwidth, StreamArrays, StreamKernel};
    let mut arrays = StreamArrays::new(elements);
    let seq = measure_bandwidth(&mut arrays, StreamKernel::Triad, 3, false);
    let par = measure_bandwidth(&mut arrays, StreamKernel::Triad, 3, true);
    (seq, par)
}

#[cfg(test)]
mod tests {
    use super::*;
    use arch::machines::{cte_arm, marenostrum4};

    #[test]
    fn paper_sizes_satisfy_stream_rule() {
        let cte = cte_arm();
        let mn4 = marenostrum4();
        assert!(elements_are_valid(&cte, paper_elements(&cte)));
        assert!(elements_are_valid(&mn4, paper_elements(&mn4)));
        // And a deliberately small size fails.
        assert!(!elements_are_valid(&cte, 1_000_000));
    }

    #[test]
    fn fig2_peaks_match_paper() {
        let fig = figure2(&cte_arm(), &marenostrum4());
        let cte_c = fig.series_named("CTE-Arm (C)").unwrap();
        assert!((cte_c.y_max().unwrap() - 292.0).abs() < 8.0);
        assert_eq!(cte_c.argmax().unwrap(), 24.0, "peak at 24 threads");
        let mn4_c = fig.series_named("MareNostrum 4 (C)").unwrap();
        assert!((mn4_c.y_max().unwrap() - 201.2).abs() < 6.0);
        assert_eq!(mn4_c.y_max(), mn4_c.y_at(48.0), "MN4 best at 48 threads");
    }

    #[test]
    fn fig2_cte_c_faster_than_fortran() {
        let fig = figure2(&cte_arm(), &marenostrum4());
        let c = fig.series_named("CTE-Arm (C)").unwrap().y_max().unwrap();
        let f = fig
            .series_named("CTE-Arm (Fortran)")
            .unwrap()
            .y_max()
            .unwrap();
        let ratio = c / f;
        assert!(ratio > 1.05 && ratio < 1.18, "C/Fortran {ratio}");
    }

    #[test]
    fn fig3_cte_fortran_hits_862() {
        let sweep = hybrid_sweep(&cte_arm(), Language::Fortran);
        let best = sweep.iter().map(|p| p.gb_per_sec).fold(0.0f64, f64::max);
        assert!((best - 862.6).abs() < 3.0, "best {best}");
        // Best configuration is 4 ranks × 12 threads.
        let best_point = sweep
            .iter()
            .max_by(|a, b| a.gb_per_sec.partial_cmp(&b.gb_per_sec).unwrap())
            .unwrap();
        assert_eq!(best_point.ranks, 4);
        assert_eq!(best_point.threads, 12);
    }

    #[test]
    fn fig3_cte_c_stuck_at_421() {
        let sweep = hybrid_sweep(&cte_arm(), Language::C);
        let best = sweep.iter().map(|p| p.gb_per_sec).fold(0.0f64, f64::max);
        assert!((best - 421.1).abs() < 3.0, "best {best}");
    }

    #[test]
    fn fig3_mn4_reaches_its_openmp_ceiling() {
        let sweep = hybrid_sweep(&marenostrum4(), Language::Fortran);
        let best = sweep.iter().map(|p| p.gb_per_sec).fold(0.0f64, f64::max);
        assert!((best - 201.2).abs() < 5.0, "best {best}");
    }

    #[test]
    fn fig3_bandwidth_grows_with_ranks() {
        for lang in [Language::C, Language::Fortran] {
            let sweep = hybrid_sweep(&cte_arm(), lang);
            for w in sweep.windows(2) {
                assert!(w[1].gb_per_sec > w[0].gb_per_sec);
            }
        }
    }

    #[test]
    fn figure_objects_are_well_formed() {
        let f2 = figure2(&cte_arm(), &marenostrum4());
        assert_eq!(f2.series.len(), 4);
        assert_eq!(f2.series[0].points.len(), 48);
        let f3 = figure3(&cte_arm(), &marenostrum4());
        assert_eq!(f3.series.len(), 4);
        let csv = f3.to_csv();
        assert!(csv.starts_with("x,"));
    }

    #[test]
    fn host_triad_runs() {
        let (seq, par) = host_triad(500_000);
        assert!(seq > 0.0 && par > 0.0);
    }
}
