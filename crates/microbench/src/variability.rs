//! Variability studies — the paper's side claims in Sections III-A/B.
//!
//! The authors report three variability observations:
//!
//! 1. the FPU µKernel shows **no variability** within a node (48 cores)
//!    nor across the 192 nodes;
//! 2. STREAM results are stable across repeated executions ("variability
//!    across different executions is negligible");
//! 3. the network shows **high** variability — but only for messages above
//!    1 MiB (Fig. 5).
//!
//! This module models (1) and (2) — core-to-core clock jitter and run-to-run
//! cache/TLB state are sub-percent effects on both machines — so that the
//! claims become checkable artifacts; (3) lives in [`crate::network`].

use arch::machines::Machine;
use simkit::rng::Pcg32;
use simkit::stats::OnlineStats;

/// Relative sigma of per-core sustained FPU throughput (clock jitter,
/// thermal gradients): ~0.15 % on both machines.
pub const FPU_CORE_SIGMA: f64 = 0.0015;

/// Relative sigma of per-run STREAM bandwidth (page placement luck, TLB
/// state): ~0.4 %.
pub const STREAM_RUN_SIGMA: f64 = 0.004;

/// Sustained double-precision vector throughput of every core of every
/// node of a machine, with manufacturing/thermal jitter. Returns the
/// population statistics (GFlop/s).
pub fn fpu_across_cluster(machine: &Machine, seed: u64) -> OnlineStats {
    let mut rng = Pcg32::seeded(seed);
    let per_core = machine.core.peak_dp().as_gflops() * crate::fpu::SUSTAINED_FRACTION;
    let mut stats = OnlineStats::new();
    for _node in 0..machine.nodes.min(192) {
        for _core in 0..machine.cores_per_node() {
            stats.push(per_core * rng.lognormal_noise(FPU_CORE_SIGMA));
        }
    }
    stats
}

/// Best-of-`trials` STREAM Triad bandwidth over `runs` repeated
/// executions (GB/s population stats).
pub fn stream_across_runs(machine: &Machine, runs: usize, seed: u64) -> OnlineStats {
    let mut rng = Pcg32::seeded(seed);
    let best = machine
        .memory
        .stream_openmp(
            24.min(machine.cores_per_node()),
            arch::compiler::Language::C,
        )
        .as_gb_per_sec();
    let mut stats = OnlineStats::new();
    for _ in 0..runs {
        stats.push(best * rng.lognormal_noise(STREAM_RUN_SIGMA));
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use arch::machines::{cte_arm, marenostrum4};

    #[test]
    fn fpu_variability_is_negligible() {
        // "no variability of the performance within a node ... and across
        // the nodes": CV well under 1 %.
        for m in [cte_arm(), marenostrum4()] {
            let stats = fpu_across_cluster(&m, 1);
            assert_eq!(stats.count(), 192 * 48);
            assert!(stats.cv() < 0.005, "{}: CV {}", m.name, stats.cv());
        }
    }

    #[test]
    fn fpu_mean_matches_the_modelled_sustained_rate() {
        let m = cte_arm();
        let stats = fpu_across_cluster(&m, 2);
        let expect = 70.4 * crate::fpu::SUSTAINED_FRACTION;
        assert!((stats.mean() - expect).abs() < 0.1, "mean {}", stats.mean());
    }

    #[test]
    fn stream_variability_is_negligible() {
        let m = cte_arm();
        let stats = stream_across_runs(&m, 50, 3);
        assert!(stats.cv() < 0.01, "CV {}", stats.cv());
        // Spread stays within ±2 % of the mean.
        assert!(stats.max() / stats.min() < 1.04);
    }

    #[test]
    fn variability_is_far_below_the_network_large_message_cv() {
        // The contrast the paper draws: compute/memory are stable, the
        // network above 1 MiB is not.
        let m = cte_arm();
        let compute_cv = fpu_across_cluster(&m, 4).cv();
        let dists = crate::network::figure5(4, 400);
        let net_cv = dists.iter().find(|d| d.size == 4 * 1024 * 1024).unwrap().cv;
        assert!(net_cv > 20.0 * compute_cv, "{net_cv} vs {compute_cv}");
    }
}
