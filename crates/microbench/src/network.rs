//! Figs. 4 & 5 — OSU-style point-to-point network studies on CTE-Arm.

use interconnect::link::LinkModel;
use interconnect::network::{Degradation, Network};
use interconnect::tofu::TofuD;
use interconnect::topology::{NodeId, Topology};
use simkit::cache::{Cache, CacheKey};
use simkit::rng::Pcg32;
use simkit::stats::Histogram;
use simkit::units::Bytes;

/// The node the paper found with crippled receive bandwidth: hostname
/// `arms0b1-11c`, which the rack/board/shelf codec
/// ([`interconnect::hostname`]) maps to node 18 (rack 0, board 1,
/// shelf 11, slot c).
pub const DEGRADED_NODE: NodeId = NodeId(18);

/// Receive-side bandwidth factor of the degraded node.
pub const DEGRADED_RX_FACTOR: f64 = 0.08;

/// Build the CTE-Arm network as measured: TofuD with the one faulty
/// receiver.
pub fn cte_network() -> Network<TofuD> {
    Network::new(TofuD::cte_arm(), LinkModel::tofud()).with_degraded_node(
        DEGRADED_NODE,
        Degradation::receive_fault(DEGRADED_RX_FACTOR),
    )
}

/// Fig. 4 — the 192×192 node-pair bandwidth map at 256 B messages.
/// `map[sender][receiver]` in GB/s; the diagonal is zero.
pub fn figure4(seed: u64) -> Vec<Vec<f64>> {
    let net = cte_network();
    let mut rng = Pcg32::seeded(seed);
    net.pairwise_bandwidth_map(Bytes::new(256.0), &mut rng)
}

/// [`figure4`] through a [`Cache`]: the 192×192 map is the most expensive
/// microbenchmark sweep, and extension experiments revisit it.
pub fn figure4_cached(cache: &Cache, seed: u64) -> Vec<Vec<f64>> {
    let key = CacheKey::new("CTE-Arm", "osu-map", format!("seed={seed}|msg=256B"));
    cache.get_or_persistent(key, || figure4(seed))
}

/// Summary statistics extracted from a Fig.-4 map.
#[derive(Debug, Clone)]
pub struct PairMapSummary {
    /// Mean bandwidth over off-diagonal pairs (GB/s).
    pub mean: f64,
    /// Per-receiver column means (GB/s).
    pub rx_means: Vec<f64>,
    /// Per-sender row means (GB/s).
    pub tx_means: Vec<f64>,
}

/// Reduce a pair map to its per-node means.
pub fn summarize_map(map: &[Vec<f64>]) -> PairMapSummary {
    let n = map.len();
    let mut rx = vec![0.0; n];
    let mut tx = vec![0.0; n];
    let mut total = 0.0;
    for (s, row) in map.iter().enumerate() {
        for (r, &bw) in row.iter().enumerate() {
            if s == r {
                continue;
            }
            tx[s] += bw;
            rx[r] += bw;
            total += bw;
        }
    }
    let denom = (n - 1) as f64;
    PairMapSummary {
        mean: total / (n as f64 * denom),
        rx_means: rx.into_iter().map(|v| v / denom).collect(),
        tx_means: tx.into_iter().map(|v| v / denom).collect(),
    }
}

/// The message sizes of Fig. 5: powers of two from 1 B to 4 MiB.
pub fn figure5_sizes() -> Vec<usize> {
    (0..=22).map(|i| 1usize << i).collect()
}

/// One row of Fig. 5: the distribution of pair bandwidths at one size.
#[derive(Debug, Clone)]
pub struct BandwidthDistribution {
    /// Message size in bytes.
    pub size: usize,
    /// Histogram of pair bandwidths (GB/s).
    pub histogram: Histogram,
    /// Coefficient of variation across pairs.
    pub cv: f64,
}

/// Fig. 5 — for each message size, the distribution of bandwidth across a
/// deterministic sample of node pairs (`pairs_per_size` of them).
pub fn figure5(seed: u64, pairs_per_size: usize) -> Vec<BandwidthDistribution> {
    let net = cte_network();
    let mut rng = Pcg32::seeded(seed);
    let n = net.topology().nodes();
    figure5_sizes()
        .into_iter()
        .map(|size| {
            let mut values = Vec::with_capacity(pairs_per_size);
            for _ in 0..pairs_per_size {
                let a = rng.next_below(n as u32) as usize;
                let mut b = rng.next_below(n as u32) as usize;
                while b == a {
                    b = rng.next_below(n as u32) as usize;
                }
                let bw = net
                    .measured_bandwidth(NodeId(a), NodeId(b), Bytes::new(size as f64), &mut rng)
                    .as_gb_per_sec();
                values.push(bw);
            }
            let max = values.iter().fold(0.0f64, |m, &v| m.max(v)) * 1.02 + 1e-9;
            let mut histogram = Histogram::new(0.0, max, 40);
            for &v in &values {
                histogram.record(v);
            }
            let mean = values.iter().sum::<f64>() / values.len() as f64;
            let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64;
            BandwidthDistribution {
                size,
                histogram,
                cv: var.sqrt() / mean,
            }
        })
        .collect()
}

/// [`figure5`] through a [`Cache`]. The whole sweep is cached as one value:
/// its sampled pairs come from a single rng stream, so splitting it per
/// size would change the numbers.
pub fn figure5_cached(
    cache: &Cache,
    seed: u64,
    pairs_per_size: usize,
) -> Vec<BandwidthDistribution> {
    let key = CacheKey::new(
        "CTE-Arm",
        "osu-dist",
        format!("seed={seed}|pairs={pairs_per_size}"),
    );
    cache.get_or_persistent(key, || figure5(seed, pairs_per_size))
}

impl serde::bin::Encode for PairMapSummary {
    fn encode(&self, out: &mut Vec<u8>) {
        self.mean.encode(out);
        self.rx_means.encode(out);
        self.tx_means.encode(out);
    }
}

impl serde::bin::Decode for PairMapSummary {
    fn decode(r: &mut serde::bin::Reader<'_>) -> Result<Self, serde::bin::DecodeError> {
        Ok(PairMapSummary {
            mean: f64::decode(r)?,
            rx_means: Vec::<f64>::decode(r)?,
            tx_means: Vec::<f64>::decode(r)?,
        })
    }
}

impl simkit::store::StoreValue for PairMapSummary {
    const TYPE_NAME: &'static str = "microbench::PairMapSummary";
}

impl serde::bin::Encode for BandwidthDistribution {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.size as u64).encode(out);
        self.histogram.encode(out);
        self.cv.encode(out);
    }
}

impl serde::bin::Decode for BandwidthDistribution {
    fn decode(r: &mut serde::bin::Reader<'_>) -> Result<Self, serde::bin::DecodeError> {
        Ok(BandwidthDistribution {
            size: u64::decode(r)? as usize,
            histogram: Histogram::decode(r)?,
            cv: f64::decode(r)?,
        })
    }
}

impl simkit::store::StoreValue for BandwidthDistribution {
    const TYPE_NAME: &'static str = "microbench::BandwidthDistribution";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_dimensions_and_diagonal() {
        let map = figure4(1);
        assert_eq!(map.len(), 192);
        for (i, row) in map.iter().enumerate() {
            assert_eq!(row.len(), 192);
            assert_eq!(row[i], 0.0);
        }
    }

    #[test]
    fn degraded_node_is_bad_receiver_good_sender() {
        let map = figure4(2);
        let s = summarize_map(&map);
        let bad = DEGRADED_NODE.index();
        // Worst receiver column by a wide margin.
        let min_rx = s
            .rx_means
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        assert_eq!(min_rx.0, bad, "degraded node is the worst receiver");
        assert!(*min_rx.1 < 0.5 * s.mean, "receive bandwidth crippled");
        // As a sender it is unremarkable (within 10 % of the mean).
        let tx_ratio = s.tx_means[bad] / s.mean;
        assert!(
            (tx_ratio - 1.0).abs() < 0.1,
            "sender side looks healthy: ratio {tx_ratio}"
        );
    }

    #[test]
    fn diagonal_locality_pattern_exists() {
        // Pairs within a Tofu unit (|i−j| < 12 within the same block)
        // outperform cross-machine pairs, producing Fig. 4's diagonal bands.
        let map = figure4(3);
        let near = map[0][1];
        let far = map[0][100];
        assert!(near > far, "near {near} vs far {far}");
    }

    #[test]
    fn small_message_bandwidth_is_latency_dominated() {
        let map = figure4(4);
        let s = summarize_map(&map);
        // 256 B at ~1.5 µs ⇒ ~0.15 GB/s, far below the 6.8 GB/s link peak.
        assert!(s.mean < 0.3, "mean {}", s.mean);
        assert!(s.mean > 0.05, "mean {}", s.mean);
    }

    #[test]
    fn fig5_covers_all_sizes() {
        let dists = figure5(5, 400);
        assert_eq!(dists.len(), 23);
        assert_eq!(dists[0].size, 1);
        assert_eq!(dists[22].size, 4 * 1024 * 1024);
    }

    #[test]
    fn mid_sizes_are_bimodal() {
        // The paper notes a bimodal distribution between 1 KiB and 256 KiB:
        // in-unit pairs vs trunk-sharing pairs.
        let dists = figure5(6, 2000);
        let mid = dists
            .iter()
            .find(|d| d.size == 64 * 1024)
            .expect("64 KiB row present");
        let modes = mid.histogram.smoothed(3).modes(30);
        assert!(
            modes.len() >= 2,
            "expected ≥ 2 modes at 64 KiB, found {:?}",
            modes
        );
    }

    #[test]
    fn large_messages_show_high_variability() {
        let dists = figure5(7, 800);
        let small_cv = dists.iter().find(|d| d.size == 4096).unwrap().cv;
        let large_cv = dists.iter().find(|d| d.size == 4 * 1024 * 1024).unwrap().cv;
        assert!(
            large_cv > 1.5 * small_cv,
            "variability must grow: {small_cv} -> {large_cv}"
        );
    }

    #[test]
    fn degraded_node_matches_the_papers_hostname() {
        assert_eq!(
            interconnect::hostname::parse_hostname("arms0b1-11c"),
            Some(DEGRADED_NODE)
        );
        assert_eq!(
            interconnect::hostname::hostname(DEGRADED_NODE),
            "arms0b1-11c"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = figure4(42);
        let b = figure4(42);
        assert_eq!(a, b);
    }
}
