//! OSU-style latency and message-rate micro-benchmarks.
//!
//! The companions of the bandwidth study in Section III-C: `osu_latency`
//! (half round-trip time vs message size) and `osu_mbw_mr` (message rate
//! for back-to-back small messages). The paper only shows bandwidth; these
//! round out the suite with the same models, and the tests pin the
//! latency-vs-bandwidth regimes (latency-bound below ~4 KiB, bandwidth-
//! bound beyond the rendezvous threshold).

use interconnect::network::Network;
use interconnect::topology::{NodeId, Topology};
use simkit::series::{Figure, Series};
use simkit::units::Bytes;

/// One latency sample.
#[derive(Debug, Clone, Copy)]
pub struct LatencyPoint {
    /// Message size in bytes.
    pub size: usize,
    /// One-way latency in microseconds.
    pub latency_us: f64,
}

/// Latency vs size between two nodes: `osu_latency`'s sweep
/// (powers of two from 0 to `max_size`).
pub fn latency_sweep<T: Topology>(
    net: &Network<T>,
    from: NodeId,
    to: NodeId,
    max_size: usize,
) -> Vec<LatencyPoint> {
    let mut out = vec![LatencyPoint {
        size: 0,
        latency_us: net.message_time(from, to, Bytes::ZERO).as_micros(),
    }];
    let mut size = 1usize;
    while size <= max_size {
        out.push(LatencyPoint {
            size,
            latency_us: net
                .message_time(from, to, Bytes::new(size as f64))
                .as_micros(),
        });
        size <<= 1;
    }
    out
}

/// Messages per second for back-to-back `size`-byte messages
/// (`osu_mbw_mr` single-pair): the injection pipeline is limited by the
/// per-message software overhead plus serialization.
pub fn message_rate<T: Topology>(net: &Network<T>, from: NodeId, to: NodeId, size: usize) -> f64 {
    let per_msg = net.link().sw_overhead.value()
        + Bytes::new(size as f64).value() / net.link().bandwidth.value();
    let _ = (from, to);
    1.0 / per_msg
}

/// The latency figure for both machines' interconnects (nearest and
/// farthest pairs on CTE-Arm, same-leaf and cross-spine on MN4).
pub fn latency_figure() -> Figure {
    use interconnect::fattree::FatTree;
    use interconnect::link::LinkModel;
    use interconnect::tofu::TofuD;
    let tofu = Network::new(TofuD::cte_arm(), LinkModel::tofud());
    let opa = Network::new(FatTree::marenostrum4(), LinkModel::omnipath());
    let mut fig = Figure::new(
        "ext_latency",
        "Point-to-point latency vs message size",
        "message size [B]",
        "one-way latency [µs]",
    );
    let cases: Vec<(&str, Vec<LatencyPoint>)> = vec![
        (
            "TofuD (1 hop)",
            latency_sweep(&tofu, NodeId(0), NodeId(1), 1 << 20),
        ),
        (
            "TofuD (far pair)",
            latency_sweep(&tofu, NodeId(0), NodeId(100), 1 << 20),
        ),
        (
            "OmniPath (same leaf)",
            latency_sweep(&opa, NodeId(0), NodeId(1), 1 << 20),
        ),
        (
            "OmniPath (cross spine)",
            latency_sweep(&opa, NodeId(0), NodeId(200), 1 << 20),
        ),
    ];
    for (label, points) in cases {
        let mut s = Series::new(label);
        for p in points {
            s.push(p.size as f64, p.latency_us);
        }
        fig.series.push(s);
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;
    use interconnect::fattree::FatTree;
    use interconnect::link::LinkModel;
    use interconnect::tofu::TofuD;

    fn tofu_net() -> Network<TofuD> {
        Network::new(TofuD::cte_arm(), LinkModel::tofud())
    }

    #[test]
    fn zero_byte_latency_is_microsecond_scale() {
        let net = tofu_net();
        let sweep = latency_sweep(&net, NodeId(0), NodeId(1), 8);
        // ~1.2 µs software + 1 hop.
        assert!(
            (sweep[0].latency_us - 1.3).abs() < 0.2,
            "{}",
            sweep[0].latency_us
        );
    }

    #[test]
    fn small_messages_are_latency_flat() {
        // Below ~4 KiB the curve barely moves: serialization of 4 KiB at
        // 6.8 GB/s is 0.6 µs vs 1.3 µs of fixed latency.
        let net = tofu_net();
        let sweep = latency_sweep(&net, NodeId(0), NodeId(1), 4096);
        let l0 = sweep[0].latency_us;
        let l4k = sweep.last().unwrap().latency_us;
        assert!(l4k < 2.0 * l0, "{l0} -> {l4k}");
    }

    #[test]
    fn large_messages_are_bandwidth_dominated() {
        // At 1 MiB, serialization (≈154 µs at 6.8 GB/s) dwarfs latency.
        let net = tofu_net();
        let sweep = latency_sweep(&net, NodeId(0), NodeId(1), 1 << 20);
        let big = sweep.last().unwrap();
        let serialization_us = (1u64 << 20) as f64 / 6.8e9 * 1e6;
        assert!((big.latency_us - serialization_us).abs() / serialization_us < 0.1);
    }

    #[test]
    fn latency_is_monotone_in_size() {
        let net = tofu_net();
        let sweep = latency_sweep(&net, NodeId(3), NodeId(90), 1 << 22);
        for w in sweep.windows(2) {
            assert!(w[1].latency_us >= w[0].latency_us);
        }
    }

    #[test]
    fn omnipath_has_lower_zero_byte_latency_but_tofu_wins_on_hops() {
        let tofu = tofu_net();
        let opa = Network::new(FatTree::marenostrum4(), LinkModel::omnipath());
        let t0 = tofu
            .message_time(NodeId(0), NodeId(1), Bytes::ZERO)
            .as_micros();
        let o0 = opa
            .message_time(NodeId(0), NodeId(1), Bytes::ZERO)
            .as_micros();
        assert!(o0 < t0, "OmniPath software stack is leaner: {o0} vs {t0}");
    }

    #[test]
    fn message_rate_is_sub_megahertz_small_and_drops_large() {
        let net = tofu_net();
        let small = message_rate(&net, NodeId(0), NodeId(1), 8);
        let large = message_rate(&net, NodeId(0), NodeId(1), 1 << 20);
        // ~1/1.2 µs ≈ 0.83 M msg/s for tiny messages.
        assert!((700_000.0..1_000_000.0).contains(&small), "{small}");
        assert!(large < small / 50.0, "large messages choke the rate");
    }

    #[test]
    fn figure_has_four_series() {
        let f = latency_figure();
        assert_eq!(f.series.len(), 4);
        for s in &f.series {
            assert_eq!(s.points.len(), 22, "0 plus 2^0..2^20");
        }
    }
}
