//! # microbench — the paper's micro-benchmark harnesses (Figs. 1–5)
//!
//! * [`fpu`] — the FPU µKernel study (Fig. 1): sustained scalar/vector
//!   throughput at half/single/double precision on one core of each
//!   machine, with the percent-of-peak annotations.
//! * [`stream`] — the STREAM studies: OpenMP-only thread sweep (Fig. 2) and
//!   the MPI+OpenMP rank×thread combinations (Fig. 3).
//! * [`network`] — the OSU-style point-to-point studies: the all-pairs
//!   bandwidth map at 256 B (Fig. 4, including the degraded receiver node)
//!   and the bandwidth distribution across pair and message size (Fig. 5).

#![warn(missing_docs)]

pub mod fpu;
pub mod latency;
pub mod network;
pub mod stream;
pub mod variability;
