//! Fig. 1 — the FPU µKernel: sustained one-core throughput, six variants.

use arch::isa::Precision;
use arch::machines::Machine;
use simkit::series::{Figure, Series};

/// Fraction of theoretical peak the hand-written assembly µKernel sustains.
/// The paper: "the measurements match almost perfectly with the theoretical
/// values of both machines".
pub const SUSTAINED_FRACTION: f64 = 0.995;

/// One bar of Fig. 1.
#[derive(Debug, Clone)]
pub struct FpuBar {
    /// Machine name.
    pub machine: String,
    /// `true` for the vector variant, `false` for scalar.
    pub vector: bool,
    /// Datatype.
    pub precision: Precision,
    /// Sustained GFlop/s.
    pub gflops: f64,
    /// Percentage of the theoretical peak (the number printed on the bar).
    pub pct_of_peak: f64,
}

/// Simulate the µKernel on one core of a machine. Variants the hardware
/// cannot execute (half-precision vector arithmetic on Skylake) are absent.
pub fn run_machine(machine: &Machine) -> Vec<FpuBar> {
    let mut bars = Vec::new();
    for &p in &Precision::ALL {
        // Scalar variant: throughput independent of precision.
        let scalar_peak = machine.core.peak_scalar().as_gflops();
        bars.push(FpuBar {
            machine: machine.name.clone(),
            vector: false,
            precision: p,
            gflops: scalar_peak * SUSTAINED_FRACTION,
            pct_of_peak: SUSTAINED_FRACTION * 100.0,
        });
        // Vector variant, when the ISA supports the precision.
        if let Some(peak) = machine.core.peak_vector(p) {
            bars.push(FpuBar {
                machine: machine.name.clone(),
                vector: true,
                precision: p,
                gflops: peak.as_gflops() * SUSTAINED_FRACTION,
                pct_of_peak: SUSTAINED_FRACTION * 100.0,
            });
        }
    }
    bars
}

/// Build Fig. 1 for the two machines: x = precision (0 = half, 1 = single,
/// 2 = double), one series per machine × {scalar, vector}.
pub fn figure1(cte: &Machine, mn4: &Machine) -> Figure {
    let mut fig = Figure::new(
        "fig1",
        "FPU µKernel sustained performance, one core",
        "precision (0=half, 1=single, 2=double)",
        "GFlop/s",
    );
    for m in [cte, mn4] {
        let bars = run_machine(m);
        for vector in [true, false] {
            let label = format!("{} {}", m.name, if vector { "vector" } else { "scalar" });
            let mut s = Series::new(label);
            for bar in bars.iter().filter(|b| b.vector == vector) {
                let x = match bar.precision {
                    Precision::Half => 0.0,
                    Precision::Single => 1.0,
                    Precision::Double => 2.0,
                };
                s.push(x, bar.gflops);
            }
            fig.series.push(s);
        }
    }
    fig
}

/// Host-side validation: run the real FMA kernels from [`kernels::fma`] and
/// confirm the scalar:vector shape (vector ≥ scalar throughput).
pub fn host_sanity_check() -> bool {
    let iters = 2_000_000;
    let (scalar, _) = kernels::fma::measure_gflops(kernels::fma::scalar_f64, iters);
    let (vector, _) = kernels::fma::measure_gflops(kernels::fma::vector_f64, iters / 8);
    vector > 0.0 && scalar > 0.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use arch::machines::{cte_arm, marenostrum4};

    #[test]
    fn a64fx_bars_match_theory() {
        let bars = run_machine(&cte_arm());
        // 3 scalar + 3 vector = 6 variants, like the paper.
        assert_eq!(bars.len(), 6);
        let vec_double = bars
            .iter()
            .find(|b| b.vector && b.precision == Precision::Double)
            .unwrap();
        assert!((vec_double.gflops - 70.4 * SUSTAINED_FRACTION).abs() < 0.1);
        let vec_half = bars
            .iter()
            .find(|b| b.vector && b.precision == Precision::Half)
            .unwrap();
        assert!((vec_half.gflops - 281.6 * SUSTAINED_FRACTION).abs() < 0.3);
    }

    #[test]
    fn skylake_lacks_vector_half() {
        let bars = run_machine(&marenostrum4());
        // 3 scalar + 2 vector (no FP16 arithmetic).
        assert_eq!(bars.len(), 5);
        assert!(!bars
            .iter()
            .any(|b| b.vector && b.precision == Precision::Half));
    }

    #[test]
    fn percentages_are_near_100() {
        for m in [cte_arm(), marenostrum4()] {
            for bar in run_machine(&m) {
                assert!((bar.pct_of_peak - 99.5).abs() < 0.1);
            }
        }
    }

    #[test]
    fn figure_has_four_series() {
        let fig = figure1(&cte_arm(), &marenostrum4());
        assert_eq!(fig.series.len(), 4);
        let cte_vec = fig.series_named("CTE-Arm vector").unwrap();
        assert_eq!(cte_vec.points.len(), 3);
        let mn4_vec = fig.series_named("MareNostrum 4 vector").unwrap();
        assert_eq!(mn4_vec.points.len(), 2, "no FP16 vector point on MN4");
    }

    #[test]
    fn sve_dp_beats_avx_dp_slightly() {
        // 70.4 vs 67.2 GFlop/s: the CTE-Arm bar is ~5 % taller.
        let fig = figure1(&cte_arm(), &marenostrum4());
        let cte = fig
            .series_named("CTE-Arm vector")
            .unwrap()
            .y_at(2.0)
            .unwrap();
        let mn4 = fig
            .series_named("MareNostrum 4 vector")
            .unwrap()
            .y_at(2.0)
            .unwrap();
        let ratio = cte / mn4;
        assert!((ratio - 70.4 / 67.2).abs() < 1e-9);
    }

    #[test]
    fn host_kernels_run() {
        assert!(host_sanity_check());
    }
}
