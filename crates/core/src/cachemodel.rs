//! The cache-model kernel registry: every kernel the paper measures a
//! %-of-peak for, paired with its symbolic access trace and per-core
//! work spec, so the `cache-model` subcommand, the validation goldens and
//! the property tests all drive the same inputs.
//!
//! Sizes are one core's shard of a full-node run — the hierarchy configs
//! in [`arch::cachesim`] are per-core slices for the same reason. Shards
//! are chosen to exceed the per-core L2 slice (so DRAM steady state is
//! real) while keeping simulated access counts in the few-million range.

use arch::cachesim::{KernelSpec, Prediction, Predictor};
use arch::machines::Machine;
use arch::Trace;
use kernels::cg::spmv_csr_traffic_trace;
use kernels::gemm::gemm_traffic_trace;
use kernels::stencil::ocean_traffic_trace;
use kernels::stencil_matrix::stencil_spmv_traffic_trace;
use kernels::stream::StreamKernel;

/// One registry entry: a kernel spec plus the trace that realises it.
pub struct CacheModelEntry {
    /// Stable kernel key (used in golden CSVs and CLI output).
    pub key: &'static str,
    /// The per-core work description handed to the predictor.
    pub spec: KernelSpec,
    /// The access trace handed to the simulator.
    pub trace: Trace,
}

/// STREAM shard: 2 MiB per array per core, far beyond the L2 slice.
const STREAM_N: u64 = 1 << 18;
/// DGEMM per-core tile: 192³ (the hostbench size) keeps the packed A
/// panel L2-resident.
const GEMM_DIM: u64 = 192;
/// CSR SpMV per-core grid shard.
const CSR_GRID: (u64, u64, u64) = (32, 32, 64);
/// Stencil-packed SpMV per-core grid shard — big enough that `x` (its
/// whole working set, 2 MiB) streams through the per-core L2 slice.
const ST_GRID: (u64, u64, u64) = (64, 64, 64);
/// Ocean shallow-water per-core row shard: 2 MiB per field.
const OCEAN: (u64, u64) = (1024, 256);

fn stream_entry(k: StreamKernel, key: &'static str) -> CacheModelEntry {
    let trace = k.traffic_trace(STREAM_N);
    CacheModelEntry {
        key,
        spec: KernelSpec {
            name: key.into(),
            flops: k.flops_per_element() as f64 * STREAM_N as f64,
            counted_bytes: k.bytes_per_element() as f64 * STREAM_N as f64,
            vectorizable: 1.0,
            tuned: true,
        },
        trace,
    }
}

/// Build the registry: the four paper-anchored kernels plus STREAM copy.
pub fn registry() -> Vec<CacheModelEntry> {
    let mut entries = vec![
        stream_entry(StreamKernel::Triad, "stream_triad"),
        stream_entry(StreamKernel::Copy, "stream_copy"),
    ];
    let (m, n, k) = (GEMM_DIM, GEMM_DIM, GEMM_DIM);
    let gemm_trace = gemm_traffic_trace(m, n, k);
    entries.push(CacheModelEntry {
        key: "dgemm",
        spec: KernelSpec {
            name: "dgemm".into(),
            flops: (2 * m * n * k) as f64,
            counted_bytes: gemm_trace.nominal_bytes() as f64,
            vectorizable: 1.0,
            tuned: true,
        },
        trace: gemm_trace,
    });
    let (cx, cy, cz) = CSR_GRID;
    let csr_trace = spmv_csr_traffic_trace(cx, cy, cz);
    let rows = cx * cy * cz;
    entries.push(CacheModelEntry {
        key: "spmv_csr",
        spec: KernelSpec {
            name: "spmv_csr".into(),
            flops: (2 * 27 * rows) as f64,
            counted_bytes: csr_trace.nominal_bytes() as f64,
            vectorizable: 1.0,
            tuned: true,
        },
        trace: csr_trace,
    });
    let (sx, sy, sz) = ST_GRID;
    let st_trace = stencil_spmv_traffic_trace(sx, sy, sz);
    let st_rows = sx * sy * sz;
    entries.push(CacheModelEntry {
        key: "spmv_stencil",
        spec: KernelSpec {
            name: "spmv_stencil".into(),
            flops: (2 * 27 * st_rows) as f64,
            counted_bytes: st_trace.nominal_bytes() as f64,
            vectorizable: 1.0,
            tuned: true,
        },
        trace: st_trace,
    });
    let (ox, oy) = OCEAN;
    let ocean_trace = ocean_traffic_trace(ox, oy);
    let cells = ox * oy;
    entries.push(CacheModelEntry {
        key: "stencil_ocean",
        spec: KernelSpec {
            name: "stencil_ocean".into(),
            // OceanGrid::step books ~10 flops and 7 f64 touches per cell.
            flops: (10 * cells) as f64,
            counted_bytes: (7 * 8 * cells) as f64,
            vectorizable: 1.0,
            tuned: true,
        },
        trace: ocean_trace,
    });
    entries
}

/// Predict every registry kernel on a machine. Returns `None` when the
/// predictor has no hierarchy config for it.
pub fn predict_all(machine: &Machine) -> Option<Vec<(CacheModelEntry, Prediction)>> {
    let predictor = Predictor::for_machine(machine)?;
    Some(
        registry()
            .into_iter()
            .map(|e| {
                let p = predictor.predict(&e.spec, &e.trace);
                (e, p)
            })
            .collect(),
    )
}

/// Render the per-level hit/miss/traffic table plus the %-of-peak
/// prediction for every registry kernel — the `cache-model` subcommand
/// body, kept here so tests can cover it without a process spawn.
pub fn render_report(machine: &Machine) -> Option<String> {
    let rows = predict_all(machine)?;
    let mut out = String::new();
    out.push_str(&format!("cache model — {}\n", machine.name));
    for (e, p) in &rows {
        let sim = &p.sim;
        out.push_str(&format!(
            "\n{}  ({} flops, counted {:.1} MiB)\n",
            e.key,
            e.spec.flops,
            e.spec.counted_bytes / (1024.0 * 1024.0)
        ));
        for lvl in &sim.levels {
            out.push_str(&format!(
                "  {:<4} accesses {:>12}  hits {:>12}  misses {:>10}  hit-rate {:>6.2}%\n",
                lvl.name,
                lvl.accesses,
                lvl.hits,
                lvl.misses,
                100.0 * lvl.hit_rate()
            ));
        }
        out.push_str(&format!(
            "  DRAM read {:.2} MiB, write {:.2} MiB (nominal {:.2} MiB)\n",
            sim.dram_read_bytes() as f64 / (1024.0 * 1024.0),
            sim.dram_write_bytes() as f64 / (1024.0 * 1024.0),
            sim.nominal_bytes as f64 / (1024.0 * 1024.0)
        ));
        out.push_str(&format!(
            "  predicted: {:.1} GFLOP/s/node  {:.2}% of peak flops  {:.1}% of peak BW  bound: {}\n",
            p.node_gflops,
            100.0 * p.pct_peak_flops,
            100.0 * p.pct_peak_bw,
            p.bound
        ));
    }
    Some(out)
}

/// Compact JSON block for `bench-all --json`: predicted DRAM traffic and
/// %-of-peak per registry kernel on the A64FX model. Deterministic — no
/// host measurement involved.
pub fn cache_json_block(machine: &Machine) -> Option<String> {
    let rows = predict_all(machine)?;
    let mut out = String::from("  \"cache\": [\n");
    let last = rows.len() - 1;
    for (i, (e, p)) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"dram_bytes\": {}, \"nominal_bytes\": {}, \
             \"pct_peak_flops\": {:.4}, \"pct_peak_bw\": {:.4}, \"bound\": \"{}\"}}{}\n",
            e.key,
            p.sim.dram_bytes(),
            p.sim.nominal_bytes,
            p.pct_peak_flops,
            p.pct_peak_bw,
            p.bound,
            if i < last { "," } else { "" }
        ));
    }
    out.push_str("  ]");
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use arch::machines::{cte_arm, marenostrum4};

    #[test]
    fn registry_has_the_paper_kernels() {
        let keys: Vec<&str> = registry().iter().map(|e| e.key).collect();
        for k in [
            "stream_triad",
            "stream_copy",
            "dgemm",
            "spmv_csr",
            "spmv_stencil",
            "stencil_ocean",
        ] {
            assert!(keys.contains(&k), "missing registry kernel {k}");
        }
    }

    #[test]
    fn report_renders_all_kernels_for_both_machines() {
        for m in [cte_arm(), marenostrum4()] {
            let r = render_report(&m).expect("predictor for paper machine");
            for e in registry() {
                assert!(r.contains(e.key), "{} missing {}", m.name, e.key);
            }
            assert!(r.contains("DRAM read"));
        }
    }

    #[test]
    fn unknown_machine_yields_none() {
        let mut m = cte_arm();
        m.name = "mystery-box".into();
        assert!(render_report(&m).is_none());
        assert!(cache_json_block(&m).is_none());
    }

    #[test]
    fn json_block_is_balanced_and_complete() {
        let j = cache_json_block(&cte_arm()).unwrap();
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches("\"kernel\"").count(), registry().len());
    }
}
