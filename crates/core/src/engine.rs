//! The experiment engine: run any subset of the registry across a worker
//! pool, with per-experiment wall time and cache-hit accounting.
//!
//! Experiments share expensive sub-simulations — Figs. 8–10 sweep the same
//! Alya study, Table IV revisits node counts every figure already measured
//! — so each run owns a [`Ctx`] whose [`Cache`] memoizes those
//! sub-results. To keep the hit/miss accounting deterministic under
//! parallelism, each [`Experiment`](crate::experiments::Experiment)
//! declares `deps`: the experiments that *produce* the cache entries it
//! reuses. The scheduler never starts an experiment before its deps
//! finish, so the producer always takes the misses and the consumer always
//! takes the hits — `--jobs 1` and `--jobs 16` report identical numbers
//! and bit-identical artifacts.

use crate::experiments::{Artifact, Experiment};
use simkit::cache::Cache;
use simkit::store::Store;
use std::collections::HashSet;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Shared state threaded through every experiment of one engine run.
#[derive(Debug, Default)]
pub struct Ctx {
    /// Memoized sub-results, keyed `(machine, workload, params)`.
    pub cache: Cache,
}

impl Ctx {
    /// A fresh context with an empty, memory-only cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// A context whose cache is backed by a persistent [`Store`]:
    /// `get_or_persistent` lookups missing in memory fall through to disk
    /// before computing, and computed results are written back.
    pub fn with_store(store: Arc<Store>) -> Self {
        Self {
            cache: Cache::with_store(store),
        }
    }
}

/// The outcome of one experiment inside an engine run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Experiment id (`fig8`, `table4`, …).
    pub id: &'static str,
    /// Experiment title.
    pub title: &'static str,
    /// Paper section.
    pub section: &'static str,
    /// Wall-clock time of this experiment alone.
    pub wall: Duration,
    /// In-memory cache hits charged to this experiment.
    pub mem_hits: u64,
    /// Persistent-store hits (results reloaded from disk) charged to it.
    pub disk_hits: u64,
    /// Cache misses (sub-results it computed first) charged to it.
    pub misses: u64,
    /// The regenerated artifact.
    pub artifact: Artifact,
}

/// Case-sensitive glob match supporting `*` (any run) and `?` (any one
/// character) — enough for `--filter 'fig1*'`.
pub fn glob_match(pattern: &str, text: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    // Classic two-pointer wildcard match with backtracking to the last `*`.
    let (mut pi, mut ti) = (0usize, 0usize);
    let (mut star, mut mark) = (None::<usize>, 0usize);
    while ti < t.len() {
        if pi < p.len() && (p[pi] == '?' || p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == '*' {
            star = Some(pi);
            mark = ti;
            pi += 1;
        } else if let Some(s) = star {
            pi = s + 1;
            mark += 1;
            ti = mark;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '*' {
        pi += 1;
    }
    pi == p.len()
}

/// Rank registry ids by similarity to a mistyped `input`; returns the
/// closest few (edit distance ≤ 2, or sharing a prefix/substring).
pub fn suggestions<'a>(input: &str, ids: impl IntoIterator<Item = &'a str>) -> Vec<&'a str> {
    let mut scored: Vec<(usize, &str)> = ids
        .into_iter()
        .filter_map(|id| {
            let d = edit_distance(input, id);
            if d <= 2 || id.contains(input) || input.contains(id) {
                Some((d, id))
            } else {
                None
            }
        })
        .collect();
    scored.sort();
    scored.into_iter().take(3).map(|(_, id)| id).collect()
}

fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut cur = vec![i + 1];
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur.push(sub.min(prev[j + 1] + 1).min(cur[j] + 1));
        }
        prev = cur;
    }
    prev[b.len()]
}

struct SchedState {
    /// Parallel to the experiment list: claimed by some worker?
    claimed: Vec<bool>,
    /// Ids whose experiments have finished.
    completed: HashSet<&'static str>,
}

/// Run `experiments` on up to `jobs` worker threads, honouring `deps`,
/// sharing `ctx`, and returning reports in the input order regardless of
/// completion order. Deps outside the run set are treated as satisfied —
/// that experiment then computes (and gets charged for) the sub-results
/// itself, which keeps filtered runs deterministic too.
pub fn run_experiments(experiments: Vec<Experiment>, jobs: usize, ctx: &Ctx) -> Vec<RunReport> {
    let jobs = jobs.max(1).min(experiments.len().max(1));
    // Tell the kernel runtime how many driver threads will run kernels
    // concurrently: each rayon region then uses `configured / jobs`
    // workers, so engine jobs × pool threads never oversubscribe the core
    // budget. The guard restores the full pool when this run finishes.
    let _pool_budget = rayon::reserve_drivers(jobs);
    let ids: HashSet<&'static str> = experiments.iter().map(|e| e.id).collect();
    let state = Mutex::new(SchedState {
        claimed: vec![false; experiments.len()],
        completed: HashSet::new(),
    });
    let ready = Condvar::new();
    let slots: Vec<Mutex<Option<RunReport>>> =
        experiments.iter().map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let idx = {
                    let mut st = state.lock().expect("scheduler lock");
                    loop {
                        if st.claimed.iter().all(|&c| c) {
                            return;
                        }
                        let next = experiments.iter().enumerate().position(|(i, e)| {
                            !st.claimed[i]
                                && e.deps
                                    .iter()
                                    .all(|d| !ids.contains(d) || st.completed.contains(d))
                        });
                        match next {
                            Some(i) => {
                                st.claimed[i] = true;
                                break i;
                            }
                            None => st = ready.wait(st).expect("scheduler wait"),
                        }
                    }
                };
                let exp = &experiments[idx];
                Cache::reset_thread_counters();
                let started = Instant::now();
                let artifact = (exp.run)(ctx);
                let wall = started.elapsed();
                let counters = Cache::thread_counters();
                *slots[idx].lock().expect("slot lock") = Some(RunReport {
                    id: exp.id,
                    title: exp.title,
                    section: exp.section,
                    wall,
                    mem_hits: counters.mem_hits,
                    disk_hits: counters.disk_hits,
                    misses: counters.misses,
                    artifact,
                });
                state
                    .lock()
                    .expect("scheduler lock")
                    .completed
                    .insert(exp.id);
                ready.notify_all();
            });
        }
    });

    slots
        .into_iter()
        .map(|s| s.into_inner().expect("slot lock").expect("slot filled"))
        .collect()
}

/// Run `count` independent tasks on up to `jobs` worker threads and return
/// their results in index order. The work-queue order is a simple atomic
/// counter, but because results land in their own slots and every task must
/// be a pure function of its index, the output is byte-identical at any
/// `jobs` — the property the fault-campaign driver pins in its goldens.
/// Like [`run_experiments`], the worker count is registered with the kernel
/// runtime so tasks × pool threads never oversubscribe the core budget.
pub fn run_indexed<R: Send>(count: usize, jobs: usize, task: impl Fn(usize) -> R + Sync) -> Vec<R> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let jobs = jobs.max(1).min(count.max(1));
    let _pool_budget = rayon::reserve_drivers(jobs);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..count).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    return;
                }
                *slots[i].lock().expect("slot lock") = Some(task(i));
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("slot lock").expect("task ran"))
        .collect()
}

/// Filter a registry by a `--filter` glob (or pass everything when `None`).
pub fn filter_experiments(experiments: Vec<Experiment>, filter: Option<&str>) -> Vec<Experiment> {
    match filter {
        None => experiments,
        Some(glob) => experiments
            .into_iter()
            .filter(|e| glob_match(glob, e.id))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::all_experiments;

    #[test]
    fn glob_semantics() {
        assert!(glob_match("fig*", "fig12"));
        assert!(glob_match("*", "anything"));
        assert!(glob_match("fig?", "fig4"));
        assert!(!glob_match("fig?", "fig12"));
        assert!(glob_match("*4", "table4"));
        assert!(!glob_match("table*", "fig4"));
        assert!(glob_match("fig12", "fig12"));
    }

    #[test]
    fn suggestions_rank_near_misses_first() {
        let ids = ["fig1", "fig12", "table4", "ext_energy"];
        assert_eq!(suggestions("fig13", ids)[0], "fig1");
        assert!(suggestions("tabel4", ids).contains(&"table4"));
        assert!(suggestions("energy", ids).contains(&"ext_energy"));
        assert!(suggestions("zzzzzz", ids).is_empty());
    }

    #[test]
    fn deps_reference_registered_experiments() {
        let ids: HashSet<&str> = all_experiments().iter().map(|e| e.id).collect();
        for e in all_experiments() {
            for d in e.deps {
                assert!(ids.contains(d), "{}: unknown dep {d}", e.id);
                assert_ne!(*d, e.id, "{}: self-dep", e.id);
            }
        }
    }

    #[test]
    fn scheduler_respects_deps_and_order() {
        let ctx = Ctx::new();
        let exps = filter_experiments(all_experiments(), Some("fig8"));
        let mut subset = exps;
        subset.extend(filter_experiments(all_experiments(), Some("fig9")));
        let reports = run_experiments(subset, 4, &ctx);
        assert_eq!(reports[0].id, "fig8");
        assert_eq!(reports[1].id, "fig9");
        // fig8 computed the Alya sweep; fig9 reused every point.
        assert!(reports[0].misses > 0);
        assert_eq!(reports[1].misses, 0);
        assert!(reports[1].mem_hits > 0);
        // Memory-only context: the disk tier never fires.
        assert_eq!(reports[1].disk_hits, 0);
    }

    #[test]
    fn filtered_run_without_producer_still_works() {
        // fig9 alone: its dep (fig8) is outside the run set, so it pays
        // for the sweep itself — misses, not hits.
        let ctx = Ctx::new();
        let reports = run_experiments(filter_experiments(all_experiments(), Some("fig9")), 2, &ctx);
        assert_eq!(reports.len(), 1);
        assert!(reports[0].misses > 0);
        assert_eq!(reports[0].mem_hits, 0);
    }
}
