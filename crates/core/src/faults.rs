//! F-series fault-injection campaigns.
//!
//! The paper's network evaluation *detected* a degraded node from healthy
//! measurements (`arms0b1-11c`, Fig. 4). A campaign inverts that
//! methodology: it **injects** a seed-determined [`FaultPlan`] into the
//! CTE-Arm model, re-runs the detection battery — the Fig.-4 ping-pong map
//! plus an all-to-all drain sweep — and checks that the per-node outlier
//! ranking fingerprints exactly the injected nodes. Multi-fault campaigns
//! additionally run an `mpisim` job across the faulty nodes and replay a
//! production day through the scheduler with hard node failures.
//!
//! Everything is deterministic: trial plans derive from `(campaign seed,
//! trial index)` through `simkit::rng`, trials are pure functions of their
//! index, and baselines are precomputed into the shared [`Ctx`] cache
//! before trials fan out — so the campaign table is byte-identical at any
//! `--jobs` / `RAYON_NUM_THREADS`.

use crate::engine::{run_indexed, Ctx};
use crate::experiments::Artifact;
use arch::compiler::Compiler;
use arch::cost::KernelProfile;
use arch::machines::cte_arm;
use interconnect::faults::{Fault, FaultPlan, FaultSpec};
use interconnect::hostname::hostname;
use interconnect::link::LinkModel;
use interconnect::network::{Degradation, Network};
use interconnect::tofu::TofuD;
use interconnect::topology::{NodeId, Topology};
use microbench::network::{summarize_map, PairMapSummary, DEGRADED_NODE, DEGRADED_RX_FACTOR};
use mpisim::faults::{alltoall_drains, JobFaults};
use mpisim::{Job, JobLayout};
use sched::{AllocationPolicy, Allocator, NodeFailure, Scheduler, WorkloadSpec};
use simkit::cache::CacheKey;
use simkit::rng::Pcg32;
use simkit::series::Table;
use simkit::units::{Bytes, Time};

/// Ping-pong probe size (bytes): the paper's Fig.-4 message size, below
/// the 1 MiB noise threshold so the whole battery is noise-free.
const PROBE_BYTES: f64 = 256.0;

/// All-to-all drain probe size (64 KiB).
const DRAIN_BYTES: f64 = 64.0 * 1024.0;

/// A named fault-injection campaign: a family of trial plans plus the
/// studies to run on each.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// CLI name (`smoke`, `degraded`, `multi`).
    pub name: &'static str,
    /// Human-readable description.
    pub title: &'static str,
    /// Master seed: fully determines every trial plan.
    pub seed: u64,
    /// Whether trial 0 replays the paper's measured `arms0b1-11c` fault.
    pub include_paper_plan: bool,
    /// How many seed-generated trials follow.
    pub generated_trials: usize,
    /// Fault mix of each generated trial.
    pub spec: FaultSpec,
    /// Whether to replay a production day through the scheduler with the
    /// plan's hard failures (and report makespan stretch / requeues).
    pub sched_study: bool,
}

/// The paper's measured fault, as a plan: node 18 (`arms0b1-11c`) with
/// receive bandwidth at 8 % of healthy.
pub fn paper_plan() -> FaultPlan {
    FaultPlan::new("arms0b1-11c-rx").with(Fault::Degrade {
        node: DEGRADED_NODE,
        degradation: Degradation::receive_fault(DEGRADED_RX_FACTOR),
    })
}

fn trial_seed(campaign_seed: u64, trial: usize) -> u64 {
    campaign_seed
        .wrapping_mul(1_000_003)
        .wrapping_add(trial as u64 + 1)
}

impl Campaign {
    /// The trial plans, in order. Trial 0 is the paper plan when
    /// `include_paper_plan`; the rest derive from `(seed, index)`.
    pub fn plans(&self) -> Vec<FaultPlan> {
        let nodes = TofuD::cte_arm().nodes();
        let mut plans = Vec::new();
        if self.include_paper_plan {
            plans.push(paper_plan());
        }
        for i in 0..self.generated_trials {
            plans.push(FaultPlan::generate(
                format!("{}-{i}", self.name),
                nodes,
                &self.spec,
                trial_seed(self.seed, i),
            ));
        }
        plans
    }
}

/// The campaign registry.
pub fn campaigns() -> Vec<Campaign> {
    vec![
        Campaign {
            name: "smoke",
            title: "CI smoke: paper fault + one generated multi-fault trial",
            seed: 7,
            include_paper_plan: true,
            generated_trials: 1,
            spec: FaultSpec {
                degraded: 1,
                failures: 1,
                ..FaultSpec::default()
            },
            sched_study: true,
        },
        Campaign {
            name: "degraded",
            title: "Degraded-node study: Fig.-4 signature across injected receivers",
            seed: 41,
            include_paper_plan: true,
            generated_trials: 5,
            spec: FaultSpec {
                degraded: 1,
                ..FaultSpec::default()
            },
            sched_study: false,
        },
        Campaign {
            name: "multi",
            title: "Multi-fault campaign: degrade + link + retransmit + slowdown + failure",
            seed: 97,
            include_paper_plan: false,
            generated_trials: 4,
            spec: FaultSpec {
                degraded: 1,
                link_latency: 1,
                retransmit: 1,
                slowdown: 1,
                failures: 1,
            },
            sched_study: true,
        },
    ]
}

/// Look a campaign up by CLI name.
pub fn campaign(name: &str) -> Option<Campaign> {
    campaigns().into_iter().find(|c| c.name == name)
}

/// Scheduler-replay outcome of one trial.
#[derive(Debug, Clone)]
pub struct SchedOutcome {
    /// Makespan of the faulty day over the healthy day. Can dip below 1
    /// when abandoning an unplaceable hero job sheds work.
    pub makespan_ratio: f64,
    /// Jobs killed and requeued by node failures.
    pub requeued: usize,
    /// Jobs abandoned because the shrunken cluster could never hold them.
    pub abandoned: usize,
}

/// Everything one trial measured.
#[derive(Debug, Clone)]
pub struct TrialOutcome {
    /// The injected plan.
    pub plan: FaultPlan,
    /// Network-visible injected nodes (the detector's ground truth).
    pub injected: Vec<NodeId>,
    /// Top-|injected| nodes of the outlier ranking.
    pub detected: Vec<NodeId>,
    /// Whether detected == injected as sets — the fingerprint criterion.
    pub fingerprint_hit: bool,
    /// Worst per-node ping-pong bandwidth slowdown vs baseline (∞ for a
    /// hard-failed node).
    pub net_max_slowdown: f64,
    /// Mean slowdown over nodes with finite slowdown.
    pub net_mean_slowdown: f64,
    /// Worst per-node all-to-all drain stretch vs baseline.
    pub drain_slowdown: f64,
    /// Makespan stretch of an `mpisim` job laid out across the faulty
    /// nodes (compute + collectives + ptp), vs the same job healthy.
    pub job_slowdown: f64,
    /// Scheduler replay, when the campaign asks for it.
    pub sched: Option<SchedOutcome>,
}

fn healthy_network() -> Network<TofuD> {
    Network::new(TofuD::cte_arm(), LinkModel::tofud())
}

fn baseline_summary(ctx: &Ctx) -> PairMapSummary {
    ctx.cache.get_or_persistent(
        CacheKey::new("CTE-Arm", "faults-baseline-map", "msg=256B"),
        || {
            let net = healthy_network();
            let mut rng = Pcg32::seeded(0);
            summarize_map(&net.pairwise_bandwidth_map(Bytes::new(PROBE_BYTES), &mut rng))
        },
    )
}

fn baseline_drains(ctx: &Ctx) -> Vec<f64> {
    ctx.cache.get_or_persistent(
        CacheKey::new("CTE-Arm", "faults-baseline-drain", "msg=64KiB"),
        || alltoall_drains(&healthy_network(), Bytes::new(DRAIN_BYTES)),
    )
}

fn baseline_sched_makespan(ctx: &Ctx, seed: u64) -> f64 {
    ctx.cache.get_or_persistent(
        CacheKey::new("CTE-Arm", "faults-sched-baseline", format!("seed={seed}")),
        || {
            let alloc = Allocator::new(TofuD::cte_arm(), AllocationPolicy::BestFitContiguous, seed);
            let workload = WorkloadSpec::production_day(192).generate(seed);
            Scheduler::new(alloc, true).run(workload).1.makespan.value()
        },
    )
}

/// Per-node ping-pong slowdowns vs baseline and the top-`k` outlier
/// ranking (ties broken by node id, so the order is total).
fn detect(base: &PairMapSummary, faulty: &PairMapSummary, k: usize) -> (Vec<NodeId>, Vec<f64>) {
    let n = faulty.rx_means.len();
    let slow: Vec<f64> = (0..n)
        .map(|i| {
            let rx = base.rx_means[i] / faulty.rx_means[i];
            let tx = base.tx_means[i] / faulty.tx_means[i];
            rx.max(tx)
        })
        .collect();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| slow[b].total_cmp(&slow[a]).then(a.cmp(&b)));
    (order.into_iter().take(k).map(NodeId).collect(), slow)
}

/// Lay a 4-node, 16-rank job across the faulty region (injected non-failed
/// nodes first, healthy filler after) and compare its makespan against the
/// identical job on a healthy network.
fn job_slowdown(plan: &FaultPlan, faulty_net: &Network<TofuD>) -> f64 {
    let failed = plan.failed_nodes();
    let mut picked: Vec<NodeId> = Vec::new();
    let mut injected: Vec<usize> = plan
        .faults
        .iter()
        .filter(|f| !matches!(f, Fault::Failure { .. }))
        .map(|f| f.node().index())
        .collect();
    injected.sort_unstable();
    injected.dedup();
    for i in injected {
        if picked.len() < 4 && !failed.contains(&NodeId(i)) {
            picked.push(NodeId(i));
        }
    }
    let mut next = 0usize;
    while picked.len() < 4 {
        let n = NodeId(next);
        if !failed.contains(&n) && !picked.contains(&n) {
            picked.push(n);
        }
        next += 1;
    }
    picked.sort_unstable_by_key(|n| n.index());

    let machine = cte_arm();
    let compiler = Compiler::gnu_sve();
    let layout = || {
        JobLayout::new(
            picked.clone(),
            4,
            12,
            machine.memory.n_domains,
            machine.cores_per_node(),
        )
    };
    let script = |net: &Network<TofuD>, jf: &JobFaults| {
        let mut job = Job::new(&machine, &compiler, net, layout(), 5)
            .with_imbalance(0.0)
            .with_faults(jf);
        job.compute(&KernelProfile::dp("phase", 1e9, 1e8));
        job.allreduce(Bytes::kib(64.0));
        job.alltoall(Bytes::kib(8.0));
        job.sendrecv(0, job.n_ranks() - 1, Bytes::kib(32.0));
        job.elapsed().value()
    };
    let clean = healthy_network();
    script(faulty_net, &JobFaults::from_plan(plan)) / script(&clean, &JobFaults::none())
}

fn sched_outcome(ctx: &Ctx, campaign: &Campaign, plan: &FaultPlan) -> SchedOutcome {
    let base = baseline_sched_makespan(ctx, campaign.seed);
    let failures: Vec<NodeFailure> = plan
        .failed_nodes()
        .into_iter()
        .enumerate()
        .map(|(i, node)| NodeFailure {
            node,
            at: Time::seconds(20_000.0 + 7_000.0 * i as f64),
        })
        .collect();
    let alloc = Allocator::new(
        TofuD::cte_arm(),
        AllocationPolicy::BestFitContiguous,
        campaign.seed,
    );
    let workload = WorkloadSpec::production_day(192).generate(campaign.seed);
    let (_, stats) = Scheduler::new(alloc, true).run_with_failures(workload, failures);
    SchedOutcome {
        makespan_ratio: stats.makespan.value() / base,
        requeued: stats.requeued,
        abandoned: stats.abandoned,
    }
}

/// Run one trial: inject, probe, detect, and (optionally) replay the
/// scheduler. A pure function of `(campaign, plan)` plus cached baselines.
fn run_trial(ctx: &Ctx, campaign: &Campaign, trial: usize, plan: &FaultPlan) -> TrialOutcome {
    let net = plan.apply(healthy_network());
    let mut rng = Pcg32::new(campaign.seed, trial as u64);
    let map = net.pairwise_bandwidth_map(Bytes::new(PROBE_BYTES), &mut rng);
    let summary = summarize_map(&map);

    let base = baseline_summary(ctx);
    let injected = plan.injected_network_nodes();
    let (detected, slowdowns) = detect(&base, &summary, injected.len());
    let mut detected_sorted: Vec<usize> = detected.iter().map(|n| n.index()).collect();
    detected_sorted.sort_unstable();
    let injected_sorted: Vec<usize> = injected.iter().map(|n| n.index()).collect();
    let fingerprint_hit = detected_sorted == injected_sorted;

    let finite: Vec<f64> = slowdowns
        .iter()
        .copied()
        .filter(|v| v.is_finite())
        .collect();
    let net_max_slowdown = slowdowns.iter().copied().fold(1.0_f64, f64::max);
    let net_mean_slowdown = finite.iter().sum::<f64>() / finite.len() as f64;

    let drains = alltoall_drains(&net, Bytes::new(DRAIN_BYTES));
    let base_drains = baseline_drains(ctx);
    let drain_slowdown = drains
        .iter()
        .zip(&base_drains)
        .map(|(f, b)| f / b)
        .fold(1.0_f64, f64::max);

    let job_slowdown = job_slowdown(plan, &net);
    let sched = campaign
        .sched_study
        .then(|| sched_outcome(ctx, campaign, plan));

    TrialOutcome {
        plan: plan.clone(),
        injected,
        detected,
        fingerprint_hit,
        net_max_slowdown,
        net_mean_slowdown,
        drain_slowdown,
        job_slowdown,
        sched,
    }
}

/// A finished campaign: the report table plus per-trial detail.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Campaign name.
    pub name: &'static str,
    /// The report table (`fseries_<name>`), golden-snapshotted.
    pub table: Table,
    /// Per-trial outcomes, in trial order.
    pub trials: Vec<TrialOutcome>,
}

impl CampaignReport {
    /// The table as an [`Artifact`] (text/CSV rendering).
    pub fn artifact(&self) -> Artifact {
        Artifact::Table(self.table.clone())
    }
}

fn hostnames(nodes: &[NodeId]) -> String {
    if nodes.is_empty() {
        return "-".into();
    }
    nodes
        .iter()
        .map(|&n| hostname(n))
        .collect::<Vec<_>>()
        .join("+")
}

/// Run a campaign's trials on up to `jobs` workers. Baselines are computed
/// into `ctx` first (so trial workers only ever take cache hits), then the
/// trials fan out through [`run_indexed`]; the resulting table is
/// byte-identical at any `jobs` / thread count.
pub fn run_campaign(ctx: &Ctx, campaign: &Campaign, jobs: usize) -> CampaignReport {
    let _ = baseline_summary(ctx);
    let _ = baseline_drains(ctx);
    if campaign.sched_study {
        let _ = baseline_sched_makespan(ctx, campaign.seed);
    }

    let plans = campaign.plans();
    let trials = run_indexed(plans.len(), jobs, |i| {
        run_trial(ctx, campaign, i, &plans[i])
    });

    let mut table = Table::new(
        format!("fseries_{}", campaign.name),
        format!("F-series fault campaign: {}", campaign.title),
        vec![
            "trial",
            "plan",
            "injected",
            "detected",
            "fingerprint",
            "net max slowdown",
            "net mean slowdown",
            "drain slowdown",
            "job slowdown",
            "sched makespan ratio",
            "requeued",
            "abandoned",
        ],
    );
    for (i, t) in trials.iter().enumerate() {
        let (sched_ratio, requeued, abandoned) = match &t.sched {
            Some(s) => (
                format!("{:.4}", s.makespan_ratio),
                s.requeued.to_string(),
                s.abandoned.to_string(),
            ),
            None => ("-".into(), "-".into(), "-".into()),
        };
        table.push_row(vec![
            i.to_string(),
            t.plan.describe(),
            hostnames(&t.injected),
            hostnames(&t.detected),
            if t.fingerprint_hit { "HIT" } else { "MISS" }.to_string(),
            format!("{:.4}", t.net_max_slowdown),
            format!("{:.4}", t.net_mean_slowdown),
            format!("{:.4}", t.drain_slowdown),
            format!("{:.4}", t.job_slowdown),
            sched_ratio,
            requeued,
            abandoned,
        ]);
    }
    CampaignReport {
        name: campaign.name,
        table,
        trials,
    }
}

// ---------------------------------------------------------------------------
// Machine-scale smoke campaign (full Fugaku, 158 976 nodes).
//
// The F-series campaigns above lean on the O(n²) Fig.-4 pairwise map —
// fine at CTE-Arm's 192 nodes, unrunnable at Fugaku scale, where the map
// alone would be 2.5 × 10¹⁰ probes and the dense routing table ~100 GB.
// The scale campaign replaces both:
//
// * routes resolve through the network's symmetry-folded pair table
//   (< 10 MB for the full machine);
// * machine-wide traffic statistics come from the closed-form sweeps in
//   `interconnect::sweep`;
// * detection runs an O(n) probe battery — every node pings three
//   partners at fixed coordinate offsets — and fingerprints faults by each
//   node's **median** probe slowdown over its six (3 tx + 3 rx) probes.
//   The median is what makes O(n) coverage safe: a healthy partner of a
//   faulty node sees at most one bad probe out of six, so its median stays
//   at 1.0, while a faulty node degrades at least half of its own probes.
// ---------------------------------------------------------------------------

/// Full-Fugaku TofuD shape: 24 × 23 × 24 units of 2 × 3 × 2 nodes.
pub const FUGAKU_DIMS: [usize; 6] = [24, 23, 24, 2, 3, 2];

/// The full-Fugaku torus: 158 976 nodes.
pub fn fugaku_topo() -> TofuD {
    TofuD::with_dims(FUGAKU_DIMS, [true, true, true, false, true, false])
}

/// Probes each node initiates in the scale battery.
const SCALE_PROBES: usize = 3;

/// Fixed partner offsets: near neighbour, antipode, and an off-axis point
/// in between. Identical for baseline and faulty batteries, so per-probe
/// slowdown ratios are well defined.
fn probe_offsets(n: usize) -> [usize; SCALE_PROBES] {
    assert!(n >= 8, "scale battery needs at least 8 nodes, got {n}");
    [1, n / 2, n / 2 + n / 4]
}

/// Per-probe bandwidths, `bw[s * SCALE_PROBES + j]` for the probe node `s`
/// sends to `(s + offsets[j]) % n`. A probe through a failed endpoint
/// reports zero bandwidth (the transfer never completes).
fn probe_battery(net: &Network<TofuD>) -> Vec<f64> {
    let n = net.topology().nodes();
    let offs = probe_offsets(n);
    let mut bw = vec![0.0; n * SCALE_PROBES];
    for s in 0..n {
        for (j, &o) in offs.iter().enumerate() {
            let t = net
                .message_time(NodeId(s), NodeId((s + o) % n), Bytes::new(PROBE_BYTES))
                .value();
            if t.is_finite() {
                bw[s * SCALE_PROBES + j] = PROBE_BYTES / t;
            }
        }
    }
    bw
}

/// Each node's median slowdown over its six probes (3 sent + 3 received),
/// then the top-`k` outliers (ties broken by node id). A node with zero
/// faulty bandwidth on a majority of probes medians to `+∞`.
fn scale_detect(base: &[f64], faulty: &[f64], n: usize, k: usize) -> (Vec<NodeId>, Vec<f64>) {
    let offs = probe_offsets(n);
    let slow: Vec<f64> = (0..n)
        .map(|i| {
            let mut ratios = [0.0f64; 2 * SCALE_PROBES];
            for j in 0..SCALE_PROBES {
                let tx = i * SCALE_PROBES + j;
                let src = ((i + n - offs[j]) % n) * SCALE_PROBES + j;
                ratios[j] = base[tx] / faulty[tx];
                ratios[SCALE_PROBES + j] = base[src] / faulty[src];
            }
            ratios.sort_unstable_by(f64::total_cmp);
            // Upper median: robust to one-sided (rx-only) faults, which
            // leave the three tx ratios at 1.0.
            ratios[SCALE_PROBES]
        })
        .collect();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| slow[b].total_cmp(&slow[a]).then(a.cmp(&b)));
    (order.into_iter().take(k).map(NodeId).collect(), slow)
}

/// One scale trial's outcome.
#[derive(Debug, Clone)]
pub struct ScaleTrial {
    /// The injected plan.
    pub plan: FaultPlan,
    /// Network-visible injected nodes (ground truth), id order.
    pub injected: Vec<NodeId>,
    /// Top-|injected| nodes of the median-slowdown ranking, rank order.
    pub detected: Vec<NodeId>,
    /// Whether detected == injected as sets.
    pub fingerprint_hit: bool,
    /// Worst finite median slowdown across all nodes.
    pub max_finite_slowdown: f64,
    /// Nodes whose median slowdown is infinite (hard failures).
    pub infinite_slowdowns: usize,
}

/// A finished scale campaign: machine-wide closed-form statistics plus the
/// per-trial fingerprint table.
#[derive(Debug, Clone)]
pub struct ScaleReport {
    /// Nodes in the machine.
    pub nodes: usize,
    /// Resident bytes of the network's pair table (folded on TofuD).
    pub table_bytes: usize,
    /// Wall time to build the pair table, milliseconds.
    pub table_build_ms: f64,
    /// Wall time of the closed-form uniform-traffic sweep, milliseconds.
    pub sweep_ms: f64,
    /// `(max, mean)` directed-link load under uniform all-pairs traffic.
    pub link_load: (f64, f64),
    /// Mean pairwise hop distance over the whole machine.
    pub mean_hops: f64,
    /// Per-trial outcomes.
    pub trials: Vec<ScaleTrial>,
    /// The report table (`fseries_scale_<n>`).
    pub table: Table,
}

/// Run the machine-scale fault campaign on `topo`: closed-form sweep,
/// folded-table probe batteries, and `generated_trials` seed-derived fault
/// plans. Everything is deterministic in `(topo, generated_trials, seed)`.
pub fn run_scale_campaign(topo: TofuD, generated_trials: usize, seed: u64) -> ScaleReport {
    use std::time::Instant;
    let n = topo.nodes();

    let t0 = Instant::now();
    let link_load = interconnect::sweep::uniform_link_load(&topo);
    let mean_hops = interconnect::sweep::uniform_mean_hops(&topo);
    let sweep_ms = t0.elapsed().as_secs_f64() * 1e3;

    let base_net = Network::new(topo.clone(), LinkModel::tofud());
    let t1 = Instant::now();
    let table = base_net.routing_table();
    let table_build_ms = t1.elapsed().as_secs_f64() * 1e3;
    let table_bytes = table.memory_bytes();
    let base_bw = probe_battery(&base_net);

    let spec = FaultSpec {
        degraded: 2,
        link_latency: 1,
        retransmit: 1,
        slowdown: 0,
        failures: 2,
    };
    let trials: Vec<ScaleTrial> = (0..generated_trials)
        .map(|i| {
            let plan = FaultPlan::generate(format!("scale-{i}"), n, &spec, trial_seed(seed, i));
            let net = plan.apply(Network::new(topo.clone(), LinkModel::tofud()));
            net.routing_table();
            let bw = probe_battery(&net);
            let injected = plan.injected_network_nodes();
            let (detected, slow) = scale_detect(&base_bw, &bw, n, injected.len());
            let mut detected_sorted: Vec<usize> = detected.iter().map(|d| d.index()).collect();
            detected_sorted.sort_unstable();
            let injected_sorted: Vec<usize> = injected.iter().map(|d| d.index()).collect();
            ScaleTrial {
                fingerprint_hit: detected_sorted == injected_sorted,
                max_finite_slowdown: slow
                    .iter()
                    .copied()
                    .filter(|v| v.is_finite())
                    .fold(1.0_f64, f64::max),
                infinite_slowdowns: slow.iter().filter(|v| v.is_infinite()).count(),
                plan,
                injected,
                detected,
            }
        })
        .collect();

    let ids = |nodes: &[NodeId]| {
        nodes
            .iter()
            .map(|d| d.index().to_string())
            .collect::<Vec<_>>()
            .join("+")
    };
    let mut table = Table::new(
        format!("fseries_scale_{n}"),
        format!("Machine-scale fault campaign: {n} nodes, folded pair table, O(n) probe battery"),
        vec![
            "trial",
            "plan",
            "injected",
            "detected",
            "fingerprint",
            "max finite slowdown",
            "failed medians",
        ],
    );
    for (i, t) in trials.iter().enumerate() {
        table.push_row(vec![
            i.to_string(),
            t.plan.describe(),
            ids(&t.injected),
            ids(&t.detected),
            if t.fingerprint_hit { "HIT" } else { "MISS" }.to_string(),
            format!("{:.4}", t.max_finite_slowdown),
            t.infinite_slowdowns.to_string(),
        ]);
    }
    ScaleReport {
        nodes: n,
        table_bytes,
        table_build_ms,
        sweep_ms,
        link_load,
        mean_hops,
        trials,
        table,
    }
}

/// The full-Fugaku smoke campaign: two generated trials at 158 976 nodes.
pub fn run_fugaku_smoke() -> ScaleReport {
    run_scale_campaign(fugaku_topo(), 2, 11)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_plans_deterministic() {
        let names: Vec<&str> = campaigns().iter().map(|c| c.name).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        for c in campaigns() {
            let a: Vec<String> = c.plans().iter().map(|p| p.describe()).collect();
            let b: Vec<String> = c.plans().iter().map(|p| p.describe()).collect();
            assert_eq!(a, b, "{}: plans must be reproducible", c.name);
            assert!(!a.is_empty());
        }
        assert!(campaign("smoke").is_some());
        assert!(campaign("nope").is_none());
    }

    #[test]
    fn paper_trial_fingerprints_arms0b1_11c() {
        let ctx = Ctx::new();
        let c = campaign("smoke").expect("registered");
        let plan = paper_plan();
        let t = run_trial(&ctx, &c, 0, &plan);
        assert_eq!(t.injected, vec![DEGRADED_NODE]);
        assert_eq!(t.detected, vec![DEGRADED_NODE]);
        assert!(t.fingerprint_hit);
        assert!(t.net_max_slowdown > 2.0, "8% rx is a loud outlier");
        assert!(t.drain_slowdown > 1.5);
        assert!(t.job_slowdown >= 1.0);
    }

    #[test]
    fn smoke_campaign_hits_on_every_trial() {
        let ctx = Ctx::new();
        let report = run_campaign(&ctx, &campaign("smoke").expect("registered"), 1);
        assert_eq!(report.trials.len(), 2);
        for (i, t) in report.trials.iter().enumerate() {
            assert!(t.fingerprint_hit, "trial {i} must fingerprint its nodes");
            assert_eq!(report.table.cell(i, "fingerprint"), Some("HIT"));
        }
        // The generated trial carries a hard failure: the scheduler replay
        // must report it without wedging.
        let t1 = &report.trials[1];
        assert_eq!(t1.plan.failed_nodes().len(), 1);
        assert!(t1.sched.is_some());
        assert!(t1.net_max_slowdown.is_infinite(), "failed node never talks");
    }

    #[test]
    fn scale_campaign_fingerprints_at_thousands_of_nodes() {
        // Mid-scale stand-in for the Fugaku run (debug builds exercise the
        // machinery here; the release CLI runs the full machine).
        let topo = TofuD::with_dims([6, 6, 6, 2, 3, 2], [true, true, true, false, true, false]);
        let report = run_scale_campaign(topo, 2, 11);
        assert_eq!(report.nodes, 2592);
        for (i, t) in report.trials.iter().enumerate() {
            assert!(t.fingerprint_hit, "trial {i} must fingerprint its nodes");
            assert_eq!(t.injected.len(), 6);
            assert_eq!(t.infinite_slowdowns, 2, "two hard failures median to ∞");
            assert!(t.max_finite_slowdown > 1.0);
        }
        // The battery rides the folded table, never the dense one: memory
        // stays linear in offset classes, not quadratic in nodes.
        assert!(
            report.table_bytes < report.nodes * report.nodes,
            "pair table ({} B) must be far below dense O(n²)",
            report.table_bytes
        );
        let (max, mean) = report.link_load;
        assert!(max > mean && mean > 0.0);
        assert!(report.mean_hops > 1.0);
    }

    #[test]
    fn scale_campaign_is_deterministic() {
        let topo = || TofuD::with_dims([4, 4, 4, 2, 3, 2], [true, true, true, false, true, false]);
        let a = run_scale_campaign(topo(), 1, 3).table.to_csv();
        let b = run_scale_campaign(topo(), 1, 3).table.to_csv();
        assert_eq!(a, b);
    }

    #[test]
    fn probe_battery_is_clean_on_a_healthy_machine() {
        let topo = TofuD::cte_arm();
        let n = topo.nodes();
        let net = Network::new(topo, LinkModel::tofud());
        let bw = probe_battery(&net);
        assert!(bw.iter().all(|&b| b > 0.0));
        let (detected, slow) = scale_detect(&bw, &bw, n, 3);
        assert!(slow.iter().all(|&s| s == 1.0));
        // Ties broken by id: the "outliers" of a healthy machine are just
        // the first ids.
        assert_eq!(detected, vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn campaign_is_byte_identical_across_jobs() {
        let c = campaign("smoke").expect("registered");
        let csv = |jobs: usize| {
            let ctx = Ctx::new();
            run_campaign(&ctx, &c, jobs).table.to_csv()
        };
        let one = csv(1);
        assert_eq!(one, csv(2));
        assert_eq!(one, csv(8));
    }
}
