//! The validation ledger: every headline number the paper publishes,
//! recomputed from the models and compared with an explicit tolerance.
//!
//! EXPERIMENTS.md is the narrative form of this data; this module is the
//! machine-readable source of truth. Each [`Check`] names the paper
//! quantity, its published value, the regenerated value and the tolerance
//! under which the reproduction is accepted — so `validation_report()`
//! *is* the reproduction claim, runnable on demand
//! (`cluster-eval run validation`).

use crate::engine::Ctx;
use crate::experiments::{run_in, Artifact};
use crate::speedup::{speedup_cells_cached, Cell, NODE_COUNTS};
use simkit::series::{Figure, Table};

/// One paper-vs-model comparison.
#[derive(Debug, Clone)]
pub struct Check {
    /// Which artifact the quantity comes from.
    pub artifact: &'static str,
    /// What is being compared.
    pub quantity: String,
    /// The paper's published value.
    pub paper: f64,
    /// The regenerated value.
    pub model: f64,
    /// Accepted absolute deviation.
    pub tolerance: f64,
}

impl Check {
    /// Whether the reproduction passes.
    pub fn passes(&self) -> bool {
        (self.model - self.paper).abs() <= self.tolerance
    }

    /// Relative deviation from the paper value.
    pub fn deviation(&self) -> f64 {
        if self.paper == 0.0 {
            0.0
        } else {
            (self.model - self.paper) / self.paper
        }
    }
}

fn figure(ctx: &Ctx, id: &str) -> Figure {
    match run_in(ctx, id).expect("registered experiment") {
        Artifact::Figure(f) => f,
        Artifact::Table(_) => panic!("{id} should be a figure"),
    }
}

fn y(fig: &Figure, series: &str, x: f64) -> f64 {
    fig.series_named(series)
        .unwrap_or_else(|| panic!("series {series}"))
        .y_at(x)
        .unwrap_or_else(|| panic!("{series} has x = {x}"))
}

/// Recompute every ledger entry.
pub fn checks() -> Vec<Check> {
    let ctx = Ctx::new();
    let mut out = Vec::new();
    let mut push = |artifact, quantity: &str, paper: f64, model: f64, tolerance: f64| {
        out.push(Check {
            artifact,
            quantity: quantity.to_string(),
            paper,
            model,
            tolerance,
        });
    };

    // Fig. 1 — sustained one-core rates.
    let f1 = figure(&ctx, "fig1");
    push(
        "fig1",
        "SVE double GFlop/s (1 core)",
        70.4,
        y(&f1, "CTE-Arm vector", 2.0),
        1.0,
    );
    push(
        "fig1",
        "SVE half GFlop/s (1 core)",
        281.6,
        y(&f1, "CTE-Arm vector", 0.0),
        3.0,
    );
    push(
        "fig1",
        "AVX-512 double GFlop/s (1 core)",
        67.2,
        y(&f1, "MareNostrum 4 vector", 2.0),
        1.0,
    );

    // Fig. 2 — STREAM OpenMP.
    let f2 = figure(&ctx, "fig2");
    let cte_c = f2.series_named("CTE-Arm (C)").expect("series");
    push(
        "fig2",
        "CTE-Arm OpenMP Triad peak GB/s",
        292.0,
        cte_c.y_max().unwrap(),
        8.0,
    );
    push(
        "fig2",
        "CTE-Arm OpenMP peak thread count",
        24.0,
        cte_c.argmax().unwrap(),
        0.0,
    );
    push(
        "fig2",
        "MN4 OpenMP Triad @48 threads GB/s",
        201.2,
        y(&f2, "MareNostrum 4 (C)", 48.0),
        6.0,
    );

    // Fig. 3 — STREAM hybrid.
    let f3 = figure(&ctx, "fig3");
    push(
        "fig3",
        "CTE-Arm hybrid Fortran GB/s",
        862.6,
        y(&f3, "CTE-Arm (Fortran)", 4.0),
        4.0,
    );
    push(
        "fig3",
        "CTE-Arm hybrid C GB/s",
        421.1,
        y(&f3, "CTE-Arm (C)", 4.0),
        4.0,
    );

    // Fig. 6 — HPL.
    let f6 = figure(&ctx, "fig6");
    push(
        "fig6",
        "CTE-Arm HPL efficiency @192 nodes",
        0.85,
        y(&f6, "CTE-Arm", 192.0) / (192.0 * 3379.2),
        0.02,
    );
    push(
        "fig6",
        "MN4 HPL efficiency @192 nodes",
        0.63,
        y(&f6, "MareNostrum 4", 192.0) / (192.0 * 3225.6),
        0.05,
    );

    // Fig. 7 — HPCG.
    let f7 = figure(&ctx, "fig7");
    push(
        "fig7",
        "CTE-Arm HPCG fraction @1 node",
        0.0291,
        y(&f7, "CTE-Arm (optimized)", 1.0) / 3379.2,
        0.002,
    );
    push(
        "fig7",
        "CTE-Arm HPCG fraction @192 nodes",
        0.0296,
        y(&f7, "CTE-Arm (optimized)", 192.0) / (192.0 * 3379.2),
        0.002,
    );

    // Figs. 8–10 — Alya ratios at 12 nodes.
    let ratio_at = |fig: &Figure, x: f64| y(fig, "CTE-Arm", x) / y(fig, "MareNostrum 4", x);
    push(
        "fig8",
        "Alya total slowdown @12 nodes",
        3.4,
        ratio_at(&figure(&ctx, "fig8"), 12.0),
        0.45,
    );
    push(
        "fig9",
        "Alya assembly slowdown @12 nodes",
        4.96,
        ratio_at(&figure(&ctx, "fig9"), 12.0),
        0.6,
    );
    push(
        "fig10",
        "Alya solver slowdown @12 nodes",
        1.79,
        ratio_at(&figure(&ctx, "fig10"), 12.0),
        0.35,
    );

    // Fig. 11 — NEMO.
    push(
        "fig11",
        "NEMO slowdown @16 nodes",
        1.75,
        ratio_at(&figure(&ctx, "fig11"), 16.0),
        0.2,
    );

    // Figs. 12–16 — remaining apps.
    let f12 = figure(&ctx, "fig12");
    push(
        "fig12",
        "Gromacs slowdown @48 cores",
        3.10,
        y(&f12, "CTE-Arm", 48.0) / y(&f12, "MareNostrum 4", 48.0),
        0.4,
    );
    let f14 = figure(&ctx, "fig14");
    push(
        "fig14",
        "OpenIFS slowdown @8 ranks",
        3.72,
        y(&f14, "CTE-Arm", 8.0) / y(&f14, "MareNostrum 4", 8.0),
        0.45,
    );
    push(
        "fig15",
        "OpenIFS slowdown @32 nodes",
        3.55,
        ratio_at(&figure(&ctx, "fig15"), 32.0),
        0.6,
    );
    let f16 = figure(&ctx, "fig16");
    push(
        "fig16",
        "WRF slowdown @1 node",
        2.16,
        y(&f16, "CTE-Arm (IO)", 1.0) / y(&f16, "MareNostrum 4 (IO)", 1.0),
        0.3,
    );

    // Table IV — the speedup matrix (paper cells with a published number).
    let paper_cells: &[(&str, usize, f64, f64)] = &[
        ("LINPACK", 1, 1.25, 0.12),
        ("LINPACK", 192, 1.40, 0.15),
        ("HPCG", 1, 2.50, 0.25),
        ("HPCG", 192, 3.24, 0.35),
        ("Alya", 16, 0.30, 0.05),
        ("OpenIFS", 1, 0.31, 0.05),
        ("OpenIFS", 32, 0.28, 0.05),
        ("Gromacs", 1, 0.32, 0.05),
        ("WRF", 1, 0.49, 0.08),
        ("NEMO", 16, 0.56, 0.08),
    ];
    let cells = speedup_cells_cached(&ctx.cache);
    for &(app, nodes, paper, tol) in paper_cells {
        let col = NODE_COUNTS
            .iter()
            .position(|&n| n == nodes)
            .expect("column");
        let cell = cells.iter().find(|(n, _)| n == app).expect("row").1[col];
        let model = match cell {
            Cell::Speedup(s) => s,
            _ => f64::NAN,
        };
        push(
            "table4",
            &format!("{app} speedup @{nodes} nodes"),
            paper,
            model,
            tol,
        );
    }

    // External validation: Fugaku.
    if let Some(Artifact::Table(t)) = crate::extensions::run_extension_in(&ctx, "ext_fugaku") {
        let model_hpl: f64 = t.cell(0, "Model").unwrap().parse().unwrap();
        push(
            "ext_fugaku",
            "Fugaku HPL PFlop/s (Top500 Nov-2020)",
            442.0,
            model_hpl,
            22.0,
        );
        let model_hpcg: f64 = t.cell(2, "Model").unwrap().parse().unwrap();
        push(
            "ext_fugaku",
            "Fugaku HPCG PFlop/s (HPCG Nov-2020)",
            16.0,
            model_hpcg,
            0.8,
        );
    }

    out
}

/// Render the ledger as a table artifact.
pub fn validation_report() -> Table {
    let mut t = Table::new(
        "validation",
        "Reproduction ledger: paper vs model, with acceptance tolerances",
        vec![
            "Artifact",
            "Quantity",
            "Paper",
            "Model",
            "Tolerance",
            "Deviation",
            "Status",
        ],
    );
    for c in checks() {
        t.push_row(vec![
            c.artifact.to_string(),
            c.quantity.clone(),
            format!("{:.4}", c.paper),
            format!("{:.4}", c.model),
            format!("±{:.3}", c.tolerance),
            format!("{:+.1}%", 100.0 * c.deviation()),
            if c.passes() { "PASS" } else { "FAIL" }.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_ledger_entry_passes() {
        let all = checks();
        assert!(
            all.len() >= 30,
            "ledger covers the paper: {} checks",
            all.len()
        );
        let failures: Vec<String> = all
            .iter()
            .filter(|c| !c.passes())
            .map(|c| format!("{}: paper {} vs model {}", c.quantity, c.paper, c.model))
            .collect();
        assert!(failures.is_empty(), "failing checks: {failures:#?}");
    }

    #[test]
    fn deviations_are_mostly_small() {
        // Beyond pass/fail: the median absolute deviation across the
        // ledger stays under 5 %.
        let mut devs: Vec<f64> = checks().iter().map(|c| c.deviation().abs()).collect();
        devs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = devs[devs.len() / 2];
        assert!(median < 0.05, "median |deviation| {median}");
    }

    #[test]
    fn report_renders_with_status_column() {
        let t = validation_report();
        assert!(t.rows.len() >= 30);
        let text = t.to_text();
        assert!(text.contains("PASS"));
        assert!(!text.contains("FAIL"), "ledger is fully green");
    }
}
