//! Extension experiments beyond the paper's figures: external validation
//! and the analyses its conclusions call for.
//!
//! * `ext_fugaku` — scale the CTE-Arm models to Fugaku's 158,976 nodes and
//!   compare against the November-2020 Top500/HPCG listings the paper
//!   cites.
//! * `ext_roofline` — rooflines of both machines under their production
//!   toolchains (the machine-balance argument of Section VI).
//! * `ext_energy` — energy-to-solution for benchmark- and application-like
//!   kernels (the evaluation the authors' own prior work performs for
//!   ThunderX2).
//! * `ext_variability` — the stability claims of Sections III-A/B as
//!   checkable numbers.

use crate::engine::Ctx;
use crate::experiments::{Artifact, Experiment};
use apps::common::{Cluster, JobHandle};
use arch::compiler::Compiler;
use arch::cost::{CostModel, KernelProfile};
use arch::fugaku::{fugaku, FUGAKU_NODES};
use arch::machines::{cte_arm, marenostrum4};
use arch::power::energy_of_run;
use arch::roofline::Roofline;
use interconnect::fattree::FatTree;
use interconnect::link::LinkModel;
use interconnect::network::Network;
use interconnect::tofu::TofuD;
use interconnect::topology::NodeId;
use mpisim::job::Job;
use mpisim::layout::JobLayout;
use mpisim::trace::Activity;
use simkit::series::{Figure, Series, Table};
use simkit::units::Bytes;

/// The extension experiments, report-ordered.
pub fn extension_experiments() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "ext_fugaku",
            title: "Fugaku-scale validation vs Top500/HPCG Nov-2020",
            section: "IV (validation)",
            deps: &[],
            run: ext_fugaku,
        },
        Experiment {
            id: "ext_roofline",
            title: "Rooflines under the production toolchains",
            section: "VI (analysis)",
            deps: &[],
            run: ext_roofline,
        },
        Experiment {
            id: "ext_energy",
            title: "Energy-to-solution comparison",
            section: "VI (analysis)",
            deps: &[],
            run: ext_energy,
        },
        Experiment {
            id: "ext_variability",
            title: "Variability of compute, memory and network",
            section: "III (claims)",
            deps: &[],
            run: ext_variability,
        },
        Experiment {
            id: "ext_latency",
            title: "Point-to-point latency vs message size (OSU companion)",
            section: "III-C (extension)",
            deps: &[],
            run: ext_latency,
        },
        Experiment {
            id: "ext_pop",
            title: "POP-style efficiency metrics from traced runs",
            section: "V (analysis)",
            deps: &[],
            run: ext_pop,
        },
        Experiment {
            id: "ext_weak",
            title: "Weak scaling of a stencil workload",
            section: "V (extension)",
            deps: &[],
            run: ext_weak,
        },
    ]
}

/// Run one extension experiment by id with a fresh context.
pub fn run_extension(id: &str) -> Option<Artifact> {
    run_extension_in(&Ctx::new(), id)
}

/// Run one extension experiment by id, memoizing sub-results in `ctx`.
pub fn run_extension_in(ctx: &Ctx, id: &str) -> Option<Artifact> {
    extension_experiments()
        .into_iter()
        .find(|e| e.id == id)
        .map(|e| (e.run)(ctx))
}

fn ext_fugaku(ctx: &Ctx) -> Artifact {
    let f = fugaku();
    let hpl_run = hpl::simulate_cached(
        &ctx.cache,
        &f,
        &interconnect::link::LinkModel::tofud(),
        FUGAKU_NODES,
        &hpl::paper_config(&f, FUGAKU_NODES),
    );
    let hpcg_run = hpcg::simulate_cached(
        &ctx.cache,
        &f,
        FUGAKU_NODES,
        &hpcg::HpcgConfig::paper(hpcg::HpcgVersion::Optimized),
    );
    let mut t = Table::new(
        "ext_fugaku",
        "Fugaku (158,976 nodes) predicted vs measured (Nov 2020 lists)",
        vec!["Quantity", "Model", "Measured"],
    );
    t.push_row(vec![
        "HPL [PFlop/s]".to_string(),
        format!("{:.0}", hpl_run.gflops / 1e6),
        "442".to_string(),
    ]);
    t.push_row(vec![
        "HPL efficiency [%]".to_string(),
        format!("{:.1}", 100.0 * hpl_run.efficiency),
        "82.3".to_string(),
    ]);
    t.push_row(vec![
        "HPCG [PFlop/s]".to_string(),
        format!("{:.1}", hpcg_run.gflops / 1e6),
        "16.0".to_string(),
    ]);
    t.push_row(vec![
        "HPCG fraction of DP peak [%]".to_string(),
        format!("{:.2}", 100.0 * hpcg_run.fraction_of_peak),
        "2.98 (16.0/537.2; the paper quotes 3.62 vs the HPL Rmax)".to_string(),
    ]);
    Artifact::Table(t)
}

fn ext_roofline(_ctx: &Ctx) -> Artifact {
    let mut fig = Figure::new(
        "ext_roofline",
        "Rooflines under production toolchains (node level)",
        "arithmetic intensity [flop/byte]",
        "attainable GFlop/s",
    );
    for (machine, compiler) in [
        (cte_arm(), Compiler::gnu_sve()),
        (marenostrum4(), Compiler::intel()),
    ] {
        let r = Roofline::build(&machine, &compiler);
        for (c, ceiling) in r.ceilings.iter().enumerate() {
            let mut s = Series::new(format!("{} — {}", machine.name, ceiling.name));
            for (x, ys) in r.sample(0.01, 100.0, 25) {
                s.push(x, ys[c] / 1e9);
            }
            fig.series.push(s);
        }
    }
    Artifact::Figure(fig)
}

fn ext_energy(_ctx: &Ctx) -> Artifact {
    let cte = cte_arm();
    let mn4 = marenostrum4();
    let gnu = Compiler::gnu_sve();
    let fujitsu = Compiler::fujitsu();
    let intel = Compiler::intel();
    let mut t = Table::new(
        "ext_energy",
        "Energy to solution, one node-chunk of work (CTE-Arm vs MareNostrum 4)",
        vec![
            "Workload",
            "CTE time [s]",
            "MN4 time [s]",
            "CTE energy [kJ]",
            "MN4 energy [kJ]",
            "time ratio",
            "energy ratio",
        ],
    );
    let cases: [(&str, KernelProfile, &Compiler); 3] = [
        (
            "HPL-like (vendor, compute-bound)",
            KernelProfile::dp("hpl", 1e13, 1e10)
                .with_vectorizable(1.0)
                .with_tuned(true)
                .with_vector_efficiency(0.88),
            &fujitsu,
        ),
        (
            "untuned app (Alya-assembly-like)",
            KernelProfile::dp("app", 1e12, 2e10).with_vectorizable(0.97),
            &gnu,
        ),
        (
            "streaming (solver-like, memory-bound)",
            KernelProfile::dp("stream", 1e11, 8e11).with_vectorizable(0.5),
            &gnu,
        ),
    ];
    for (name, profile, cte_compiler) in cases {
        let cte_cost = CostModel::new(&cte.core, &cte.memory, cte_compiler);
        let mn4_cost = CostModel::new(&mn4.core, &mn4.memory, &intel);
        let tc = cte_cost.parallel_time(&profile, 48).value();
        let tm = mn4_cost.parallel_time(&profile, 48).value();
        let ec = energy_of_run(&cte, &cte_cost, &profile, 48, 1).energy_j;
        let em = energy_of_run(&mn4, &mn4_cost, &profile, 48, 1).energy_j;
        t.push_row(vec![
            name.to_string(),
            format!("{tc:.2}"),
            format!("{tm:.2}"),
            format!("{:.2}", ec / 1e3),
            format!("{:.2}", em / 1e3),
            format!("{:.2}", tc / tm),
            format!("{:.2}", ec / em),
        ]);
    }
    Artifact::Table(t)
}

fn ext_variability(ctx: &Ctx) -> Artifact {
    let cte = cte_arm();
    let mn4 = marenostrum4();
    let mut t = Table::new(
        "ext_variability",
        "Coefficient of variation of repeated measurements",
        vec!["Measurement", "CTE-Arm CV", "MareNostrum 4 CV"],
    );
    let fpu_c = microbench::variability::fpu_across_cluster(&cte, 11).cv();
    let fpu_m = microbench::variability::fpu_across_cluster(&mn4, 12).cv();
    t.push_row(vec![
        "FPU µKernel across all cores/nodes".to_string(),
        format!("{:.4}", fpu_c),
        format!("{:.4}", fpu_m),
    ]);
    let st_c = microbench::variability::stream_across_runs(&cte, 50, 13).cv();
    let st_m = microbench::variability::stream_across_runs(&mn4, 50, 14).cv();
    t.push_row(vec![
        "STREAM Triad across 50 executions".to_string(),
        format!("{:.4}", st_c),
        format!("{:.4}", st_m),
    ]);
    let dists = microbench::network::figure5_cached(&ctx.cache, 15, 800);
    let net_small = dists.iter().find(|d| d.size == 4096).unwrap().cv;
    let net_large = dists.iter().find(|d| d.size == 4 * 1024 * 1024).unwrap().cv;
    t.push_row(vec![
        "network p2p, 4 KiB messages".to_string(),
        format!("{net_small:.4}"),
        "-".to_string(),
    ]);
    t.push_row(vec![
        "network p2p, 4 MiB messages".to_string(),
        format!("{net_large:.4}"),
        "-".to_string(),
    ]);
    Artifact::Table(t)
}

fn ext_latency(_ctx: &Ctx) -> Artifact {
    Artifact::Figure(microbench::latency::latency_figure())
}

/// Run one traced representative step of an app-like workload on 16 nodes
/// of a cluster and return `(compute_fraction, collective_fraction)`.
fn traced_step(cluster: Cluster, app: &str) -> (f64, f64) {
    let machine = cluster.machine();
    let compiler = cluster.app_compiler(false);
    let nodes = 16usize;
    let layout = JobLayout::new(
        (0..nodes).map(NodeId).collect(),
        48,
        1,
        machine.memory.n_domains,
        machine.cores_per_node(),
    );
    let run = |job: &mut dyn JobHandle| {
        let ranks = (nodes * 48) as f64;
        match app {
            "alya" => {
                let e = 132e6 / ranks;
                job.compute(
                    &KernelProfile::dp("assembly", e * 25_000.0, e * 500.0).with_vectorizable(0.97),
                );
                for _ in 0..50 {
                    job.compute(
                        &KernelProfile::dp("solver", e * 151.0, e * 64.0).with_vectorizable(0.30),
                    );
                    job.allreduce(Bytes::new(16.0));
                    job.allreduce(Bytes::new(16.0));
                }
            }
            "nemo" => {
                let p = 600.0 * 500.0 * 75.0 / ranks;
                job.compute(
                    &KernelProfile::dp("step", p * 2750.0, p * 1200.0).with_vectorizable(0.3),
                );
                job.halo(4, Bytes::kib(60.0));
                for _ in 0..80 {
                    job.allreduce(Bytes::new(8.0));
                }
            }
            _ => {
                // openifs-like: gridpoint + two transpositions.
                let p = 1_394_112.0 * 91.0 / ranks;
                job.compute(
                    &KernelProfile::dp("gridpoint", p * 35_000.0, p * 1400.0)
                        .with_vectorizable(0.55),
                );
                job.alltoall(Bytes::new(1.0e9 / (ranks * ranks)));
                job.alltoall(Bytes::new(1.0e9 / (ranks * ranks)));
                job.allreduce(Bytes::new(8.0));
            }
        }
    };
    match cluster {
        Cluster::CteArm => {
            let net = Network::new(TofuD::cte_arm(), LinkModel::tofud());
            let mut job = Job::new(&machine, &compiler, &net, layout, 5).with_tracing();
            run(&mut job);
            let t = job.trace().expect("traced");
            (
                t.fraction(Activity::Compute),
                t.fraction(Activity::Collective),
            )
        }
        Cluster::MareNostrum4 => {
            let net = Network::new(FatTree::marenostrum4(), LinkModel::omnipath());
            let mut job = Job::new(&machine, &compiler, &net, layout, 5).with_tracing();
            run(&mut job);
            let t = job.trace().expect("traced");
            (
                t.fraction(Activity::Compute),
                t.fraction(Activity::Collective),
            )
        }
    }
}

fn ext_pop(_ctx: &Ctx) -> Artifact {
    let mut t = Table::new(
        "ext_pop",
        "POP-style efficiency from traced 16-node runs (compute fraction / collective share)",
        vec![
            "Workload",
            "CTE-Arm compute %",
            "CTE-Arm collective %",
            "MN4 compute %",
            "MN4 collective %",
        ],
    );
    for app in ["alya", "nemo", "openifs"] {
        let (cc, ca) = traced_step(Cluster::CteArm, app);
        let (mc, ma) = traced_step(Cluster::MareNostrum4, app);
        t.push_row(vec![
            app.to_string(),
            format!("{:.1}", cc * 100.0),
            format!("{:.1}", ca * 100.0),
            format!("{:.1}", mc * 100.0),
            format!("{:.1}", ma * 100.0),
        ]);
    }
    Artifact::Table(t)
}

fn ext_weak(_ctx: &Ctx) -> Artifact {
    // Weak scaling: constant per-rank ocean-stencil work, growing node
    // counts. Efficiency = t(1 node) / t(n nodes); 1.0 is perfect.
    let mut fig = Figure::new(
        "ext_weak",
        "Weak scaling of a NEMO-like stencil (per-rank work fixed)",
        "nodes",
        "weak-scaling efficiency",
    );
    for cluster in Cluster::BOTH {
        let machine = cluster.machine();
        let compiler = cluster.app_compiler(false);
        let per_rank = KernelProfile::dp("stencil", 50_000.0 * 2750.0, 50_000.0 * 1200.0)
            .with_vectorizable(0.3);
        let time_at = |nodes: usize| -> f64 {
            let layout = JobLayout::new(
                (0..nodes).map(NodeId).collect(),
                48,
                1,
                machine.memory.n_domains,
                machine.cores_per_node(),
            );
            let body = |job: &mut dyn JobHandle| {
                for _ in 0..3 {
                    job.compute(&per_rank);
                    job.halo(4, Bytes::kib(100.0));
                    job.allreduce(Bytes::new(8.0));
                }
                job.elapsed().value()
            };
            match cluster {
                Cluster::CteArm => {
                    let net = Network::new(TofuD::cte_arm(), LinkModel::tofud());
                    let mut job = Job::new(&machine, &compiler, &net, layout, 3);
                    body(&mut job)
                }
                Cluster::MareNostrum4 => {
                    let net = Network::new(FatTree::marenostrum4(), LinkModel::omnipath());
                    let mut job = Job::new(&machine, &compiler, &net, layout, 3);
                    body(&mut job)
                }
            }
        };
        let base = time_at(1);
        let mut s = Series::new(cluster.label());
        for nodes in [1usize, 2, 4, 8, 16, 32, 64, 128] {
            s.push(nodes as f64, base / time_at(nodes));
        }
        fig.series.push(s);
    }
    Artifact::Figure(fig)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fugaku_hpl_prediction_matches_top500() {
        let Artifact::Table(t) = ext_fugaku(&Ctx::new()) else {
            panic!("table expected");
        };
        let model_pf: f64 = t.cell(0, "Model").unwrap().parse().unwrap();
        // Measured 442 PFlop/s; we predict within 5 %.
        assert!(
            (model_pf - 442.0).abs() / 442.0 < 0.05,
            "Fugaku HPL {model_pf} PF"
        );
        let eff: f64 = t.cell(1, "Model").unwrap().parse().unwrap();
        assert!((eff - 82.3).abs() < 3.5, "efficiency {eff}%");
    }

    #[test]
    fn fugaku_hpcg_prediction_matches_list() {
        let Artifact::Table(t) = ext_fugaku(&Ctx::new()) else {
            panic!("table expected");
        };
        let model_pf: f64 = t.cell(2, "Model").unwrap().parse().unwrap();
        assert!(
            (model_pf - 16.0).abs() / 16.0 < 0.05,
            "Fugaku HPCG {model_pf} PF (measured 16.0)"
        );
    }

    #[test]
    fn paper_ordering_cte_slightly_above_fugaku_hpl() {
        // "Fugaku recorded 82 % ... which is 3 % below our results in
        // CTE-Arm": the small cluster is a bit more efficient.
        let cte = cte_arm();
        let cte_eff = hpl::simulate(
            &cte,
            &interconnect::link::LinkModel::tofud(),
            192,
            &hpl::paper_config(&cte, 192),
        )
        .efficiency;
        let f = fugaku();
        let f_eff = hpl::simulate(
            &f,
            &interconnect::link::LinkModel::tofud(),
            FUGAKU_NODES,
            &hpl::paper_config(&f, FUGAKU_NODES),
        )
        .efficiency;
        assert!(cte_eff > f_eff, "CTE {cte_eff} > Fugaku {f_eff}");
        assert!(cte_eff - f_eff < 0.06, "by a few percent only");
    }

    #[test]
    fn energy_table_shows_the_efficiency_story() {
        let Artifact::Table(t) = ext_energy(&Ctx::new()) else {
            panic!("table expected");
        };
        // HPL-like: A64FX faster AND far more efficient.
        let hpl_time: f64 = t.cell(0, "time ratio").unwrap().parse().unwrap();
        let hpl_energy: f64 = t.cell(0, "energy ratio").unwrap().parse().unwrap();
        assert!(hpl_time < 1.0);
        assert!(hpl_energy < 0.7, "A64FX HPL energy ratio {hpl_energy}");
        assert!(
            hpl_energy < hpl_time,
            "energy advantage exceeds time advantage"
        );
        // Untuned app: slower in time, but energy gap is much smaller.
        let app_time: f64 = t.cell(1, "time ratio").unwrap().parse().unwrap();
        let app_energy: f64 = t.cell(1, "energy ratio").unwrap().parse().unwrap();
        assert!(app_time > 2.0);
        assert!(
            app_energy < app_time,
            "energy gap {app_energy} < time gap {app_time}"
        );
    }

    #[test]
    fn variability_table_contrasts_compute_and_network() {
        let Artifact::Table(t) = ext_variability(&Ctx::new()) else {
            panic!("table expected");
        };
        let fpu: f64 = t.cell(0, "CTE-Arm CV").unwrap().parse().unwrap();
        let net: f64 = t.cell(3, "CTE-Arm CV").unwrap().parse().unwrap();
        assert!(fpu < 0.01);
        assert!(net > 0.1);
    }

    #[test]
    fn roofline_figure_has_six_series() {
        let Artifact::Figure(f) = ext_roofline(&Ctx::new()) else {
            panic!("figure expected");
        };
        assert_eq!(f.series.len(), 6);
    }

    #[test]
    fn pop_table_shows_mn4_more_communication_bound() {
        // The same communication costs weigh more against MN4's faster
        // compute, so its compute fraction is lower for the solver-heavy
        // workloads.
        let Artifact::Table(t) = ext_pop(&Ctx::new()) else {
            panic!("table expected");
        };
        let alya = &t.rows[0];
        let cte_compute: f64 = alya[1].parse().unwrap();
        let mn4_compute: f64 = alya[3].parse().unwrap();
        assert!(cte_compute > 50.0, "CTE compute-dominated: {cte_compute}");
        assert!(
            mn4_compute <= cte_compute,
            "faster machine waits more: {mn4_compute} vs {cte_compute}"
        );
    }

    #[test]
    fn weak_scaling_stays_high_and_decays_slowly() {
        let Artifact::Figure(f) = ext_weak(&Ctx::new()) else {
            panic!("figure expected");
        };
        for s in &f.series {
            let at1 = s.y_at(1.0).unwrap();
            assert!((at1 - 1.0).abs() < 1e-9, "normalized at 1 node");
            let at128 = s.y_at(128.0).unwrap();
            assert!(at128 > 0.7, "{}: efficiency at 128 nodes {at128}", s.label);
            assert!(at128 < 1.01, "never super-linear");
        }
    }

    #[test]
    fn extension_registry_is_runnable() {
        let ctx = Ctx::new();
        for exp in extension_experiments() {
            let a = (exp.run)(&ctx);
            assert_eq!(a.id(), exp.id);
            assert!(a.to_text().len() > 50);
        }
        assert!(run_extension("ext_energy").is_some());
        assert!(run_extension("nope").is_none());
    }
}
