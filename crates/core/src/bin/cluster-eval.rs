//! `cluster-eval` — command-line front end of the evaluation harness.
//!
//! ```text
//! cluster-eval list                 list every experiment (paper + extensions)
//! cluster-eval run <id> [--csv]     regenerate one artifact (fig1..fig16, table1..table4, ext_*)
//! cluster-eval report [dir]         write all artifacts to <dir> (default ./report)
//! cluster-eval table4               shortcut for the speedup summary
//! ```

use cluster_eval::experiments::{all_experiments, run};
use cluster_eval::extensions::{extension_experiments, run_extension};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  cluster-eval list\n  cluster-eval run <id> [--csv]\n  \
         cluster-eval report [dir]\n  cluster-eval table4\n  cluster-eval validate"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            println!("paper artifacts:");
            for e in all_experiments() {
                println!("  {:8} [Sec. {:5}] {}", e.id, e.section, e.title);
            }
            println!("extensions:");
            for e in extension_experiments() {
                println!("  {:16} [{}] {}", e.id, e.section, e.title);
            }
            ExitCode::SUCCESS
        }
        Some("run") => {
            let Some(id) = args.get(1) else {
                return usage();
            };
            let csv = args.iter().any(|a| a == "--csv");
            let artifact = run(id).or_else(|| run_extension(id));
            match artifact {
                Some(a) => {
                    print!("{}", if csv { a.to_csv() } else { a.to_text() });
                    ExitCode::SUCCESS
                }
                None => {
                    eprintln!("unknown experiment '{id}' — try `cluster-eval list`");
                    ExitCode::FAILURE
                }
            }
        }
        Some("report") => {
            let dir = args.get(1).cloned().unwrap_or_else(|| "report".into());
            match cluster_eval::report::generate_report(std::path::Path::new(&dir)) {
                Ok(artifacts) => {
                    println!("wrote {} artifacts to {dir}", artifacts.len());
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("report generation failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("validate") => {
            let t = cluster_eval::validation::validation_report();
            print!("{}", t.to_text());
            let failing = cluster_eval::validation::checks()
                .iter()
                .filter(|c| !c.passes())
                .count();
            if failing == 0 {
                println!("\nall checks PASS");
                ExitCode::SUCCESS
            } else {
                println!("\n{failing} checks FAIL");
                ExitCode::FAILURE
            }
        }
        Some("table4") => {
            let a = run("table4").expect("table4 is registered");
            print!("{}", a.to_text());
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
