//! `cluster-eval` — command-line front end of the evaluation harness.
//!
//! ```text
//! cluster-eval list                 list every experiment (paper + extensions)
//! cluster-eval run <id> [--csv]     regenerate one artifact (fig1..fig16, table1..table4, ext_*)
//! cluster-eval run --all [--jobs N] [--filter GLOB]
//!                                   run the registry on a worker pool with a shared cache
//! cluster-eval bench-all [--csv]    run everything, report wall time and cache hits/misses
//! cluster-eval bench-all --json     measure host kernel throughput (1 thread vs pool)
//!                                   and print the BENCH_host.json snapshot
//! cluster-eval bench-delta [--max-var PCT]
//!                                   run the kernel benches twice and fail if any
//!                                   kernel's run-to-run variance exceeds PCT% (default 30)
//! cluster-eval report [dir]         write all artifacts to <dir> (default ./report)
//! cluster-eval cache-model [--machine cte-arm|mn4]
//!                                   per-level hit/miss/traffic tables and %-of-peak
//!                                   predictions from the cache-hierarchy simulator
//! cluster-eval table4               shortcut for the speedup summary
//! cluster-eval faults --campaign <name> [--jobs N] [--csv]
//!                                   run an F-series fault-injection campaign
//! cluster-eval faults --list        list registered campaigns
//! cluster-eval serve [--jobs N] [--store DIR]
//!                                   answer line-delimited JSON query batches on
//!                                   stdin; with --store, results persist across
//!                                   restarts in a content-addressed disk store
//! cluster-eval serve --smoke FILE [--jobs N]
//!                                   cold/warm self-test: replay FILE against a
//!                                   fresh store, reopen, replay again; fail
//!                                   unless warm is byte-identical, engine-free
//!                                   and >10x faster
//! ```

use cluster_eval::engine::{filter_experiments, run_experiments, suggestions, Ctx, RunReport};
use cluster_eval::experiments::{all_experiments, run};
use cluster_eval::extensions::{extension_experiments, run_extension};
use cluster_eval::faults::{campaign, campaigns, run_campaign};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  cluster-eval list\n  cluster-eval run <id> [--csv]\n  \
         cluster-eval run --all [--jobs N] [--filter GLOB]\n  \
         cluster-eval bench-all [--csv|--json]\n  \
         cluster-eval bench-delta [--max-var PCT]\n  \
         cluster-eval report [dir]\n  cluster-eval cache-model [--machine cte-arm|mn4]\n  \
         cluster-eval table4\n  cluster-eval validate\n  \
         cluster-eval faults --campaign <name> [--jobs N] [--csv]\n  \
         cluster-eval faults --list\n  \
         cluster-eval serve [--jobs N] [--store DIR]\n  \
         cluster-eval serve --smoke FILE [--jobs N]\n  \
         cluster-eval sched-replay [--machine fugaku|cte-arm] [--days N] \
[--jobs-per-day N]\n                            \
[--policy best-fit|first-fit|random] [--seed N] [--strict-fcfs] [--csv]\n  \
         cluster-eval sched-replay --smoke"
    );
    ExitCode::from(2)
}

/// Parse `--jobs N` (default: 1) and `--filter GLOB` (default: none).
fn parse_engine_flags(args: &[String]) -> Result<(usize, Option<String>), String> {
    let mut jobs = 1usize;
    let mut filter = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                jobs = v.parse().map_err(|_| format!("bad --jobs value '{v}'"))?;
                if jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
            }
            "--filter" => {
                filter = Some(it.next().ok_or("--filter needs a glob")?.clone());
            }
            "--all" | "--csv" => {}
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok((jobs, filter))
}

fn print_run_summary(reports: &[RunReport]) {
    let total_mem: u64 = reports.iter().map(|r| r.mem_hits).sum();
    let total_disk: u64 = reports.iter().map(|r| r.disk_hits).sum();
    let total_misses: u64 = reports.iter().map(|r| r.misses).sum();
    println!(
        "{:<10} {:>10} {:>8} {:>8} {:>8}  title",
        "id", "wall [ms]", "mem", "disk", "misses"
    );
    for r in reports {
        println!(
            "{:<10} {:>10.1} {:>8} {:>8} {:>8}  {}",
            r.id,
            r.wall.as_secs_f64() * 1e3,
            r.mem_hits,
            r.disk_hits,
            r.misses,
            r.title
        );
    }
    println!(
        "{} experiments, {total_mem} mem hits / {total_disk} disk hits / {total_misses} misses",
        reports.len()
    );
}

fn reports_csv(reports: &[RunReport]) -> String {
    let mut out = String::from("id,section,wall_ms,mem_hits,disk_hits,misses\n");
    for r in reports {
        out.push_str(&format!(
            "{},{},{:.3},{},{},{}\n",
            r.id,
            r.section,
            r.wall.as_secs_f64() * 1e3,
            r.mem_hits,
            r.disk_hits,
            r.misses
        ));
    }
    out
}

fn run_all(args: &[String]) -> ExitCode {
    let (jobs, filter) = match parse_engine_flags(args) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return usage();
        }
    };
    let selected = filter_experiments(all_experiments(), filter.as_deref());
    if selected.is_empty() {
        eprintln!(
            "--filter '{}' matches no experiment",
            filter.unwrap_or_default()
        );
        return ExitCode::FAILURE;
    }
    let ctx = Ctx::new();
    let reports = run_experiments(selected, jobs, &ctx);
    print_run_summary(&reports);
    ExitCode::SUCCESS
}

fn run_one(id: &str, csv: bool) -> ExitCode {
    match run(id).or_else(|| run_extension(id)) {
        Some(a) => {
            print!("{}", if csv { a.to_csv() } else { a.to_text() });
            ExitCode::SUCCESS
        }
        None => {
            let registry: Vec<&str> = all_experiments()
                .iter()
                .map(|e| e.id)
                .chain(extension_experiments().iter().map(|e| e.id))
                .collect();
            let near = suggestions(id, registry);
            if near.is_empty() {
                eprintln!("unknown experiment '{id}' — try `cluster-eval list`");
            } else {
                eprintln!(
                    "unknown experiment '{id}' — did you mean {}?",
                    near.join(" or ")
                );
            }
            ExitCode::FAILURE
        }
    }
}

fn bench_all(csv: bool, json: bool) -> ExitCode {
    if json {
        // Host-kernel mode: measure what the parallel runtime delivers on
        // *this* machine (1 thread vs full pool) and emit the
        // BENCH_host.json snapshot format, with the deterministic
        // cache-model predictions spliced in as a "cache" section and the
        // serve cold/warm/dedupe replay as a "serve" section.
        let hb = cluster_eval::hostbench::run_host_bench();
        let cache = cluster_eval::cachemodel::cache_json_block(&arch::machines::cte_arm())
            .expect("the CTE-Arm model always has a hierarchy config");
        let serve = cluster_eval::hostbench::run_serve_bench(2);
        let sched = cluster_eval::hostbench::run_sched_bench();
        let extra = format!(
            "{cache},\n{},\n{}",
            serve.to_json_section(),
            sched.to_json_section()
        );
        print!("{}", hb.to_json_with(&extra));
        return ExitCode::SUCCESS;
    }
    let ctx = Ctx::new();
    let mut experiments = all_experiments();
    experiments.extend(extension_experiments());
    let reports = run_experiments(experiments, 1, &ctx);
    if csv {
        print!("{}", reports_csv(&reports));
    } else {
        print_run_summary(&reports);
    }
    ExitCode::SUCCESS
}

/// The bench regression gate: run the calibrated kernel benches twice and
/// fail if any kernel's two throughput readings disagree by more than
/// `--max-var` percent (default 30). A pass means the calibrated timing is
/// stable enough on this host for `BENCH_host.json` deltas to be
/// attributed to code changes rather than measurement noise.
fn bench_delta(args: &[String]) -> ExitCode {
    let mut max_var = 30.0f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--max-var" => {
                let Some(v) = it.next() else {
                    eprintln!("--max-var needs a percentage");
                    return usage();
                };
                match v.parse::<f64>() {
                    Ok(p) if p > 0.0 => max_var = p,
                    _ => {
                        eprintln!("bad --max-var value '{v}'");
                        return usage();
                    }
                }
            }
            other => {
                eprintln!("unknown flag '{other}'");
                return usage();
            }
        }
    }
    let pool_threads = rayon::current_num_threads();
    let first = cluster_eval::hostbench::run_kernel_benches(pool_threads);
    let second = cluster_eval::hostbench::run_kernel_benches(pool_threads);
    let mut worst = 0.0f64;
    let mut failures = 0usize;
    println!(
        "{:<16} {:>12} {:>12} {:>9}  ({} thread pool, limit {:.0}%)",
        "kernel", "run1", "run2", "delta", pool_threads, max_var
    );
    for (a, b) in first.iter().zip(&second) {
        // Compare every reported column; on a 1-wide pool value_nt
        // duplicates value_1t, so the extra check is free.
        for (label, va, vb) in [
            ("1t", a.value_1t, b.value_1t),
            ("nt", a.value_nt, b.value_nt),
        ] {
            if pool_threads == 1 && label == "nt" {
                continue;
            }
            let mid = 0.5 * (va + vb);
            let rel = if mid > 0.0 {
                100.0 * (va - vb).abs() / mid
            } else {
                100.0
            };
            worst = worst.max(rel);
            let over = rel > max_var;
            if over {
                failures += 1;
            }
            println!(
                "{:<16} {:>9.3} {} {:>9.3} {} {:>8.1}%{}",
                format!("{}/{}", a.name, label),
                va,
                a.metric,
                vb,
                b.metric,
                rel,
                if over { "  EXCEEDS LIMIT" } else { "" }
            );
        }
    }
    if failures == 0 {
        println!("bench-delta PASS: worst variance {worst:.1}% <= {max_var:.0}%");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "bench-delta FAIL: {failures} reading(s) above {max_var:.0}% \
             run-to-run variance (worst {worst:.1}%)"
        );
        ExitCode::FAILURE
    }
}

/// The full-Fugaku scale campaign: closed-form sweep + folded-table probe
/// battery at 158 976 nodes. Separate from the registry because it skips
/// the O(n²) Fig.-4 machinery entirely.
fn run_fugaku_smoke(csv: bool) -> ExitCode {
    let report = cluster_eval::faults::run_fugaku_smoke();
    // The summary carries wall times; keep it off stdout in CSV mode so
    // the CSV stream stays byte-identical run to run (campaign
    // determinism contract).
    let summary = format!(
        "fugaku-smoke: {} nodes, pair table {:.2} MB in {:.1} ms, \
         closed-form sweep {:.1} ms (max/mean link load {:.1}/{:.1}, mean hops {:.2})",
        report.nodes,
        report.table_bytes as f64 / (1024.0 * 1024.0),
        report.table_build_ms,
        report.sweep_ms,
        report.link_load.0,
        report.link_load.1,
        report.mean_hops,
    );
    if csv {
        eprintln!("{summary}");
    } else {
        println!("{summary}");
    }
    let artifact = cluster_eval::experiments::Artifact::Table(report.table.clone());
    print!(
        "{}",
        if csv {
            artifact.to_csv()
        } else {
            artifact.to_text()
        }
    );
    let misses = report.trials.iter().filter(|t| !t.fingerprint_hit).count();
    if misses == 0 {
        ExitCode::SUCCESS
    } else {
        eprintln!("{misses} trial(s) failed to fingerprint their injected nodes");
        ExitCode::FAILURE
    }
}

fn run_faults(args: &[String]) -> ExitCode {
    if args.iter().any(|a| a == "--list") {
        println!("fault campaigns:");
        for c in campaigns() {
            println!("  {:12} {}", c.name, c.title);
        }
        println!(
            "  {:12} Machine-scale smoke: folded-table probe battery at 158 976 nodes",
            "fugaku-smoke"
        );
        return ExitCode::SUCCESS;
    }
    let mut jobs = 1usize;
    let mut name: Option<String> = None;
    let mut csv = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--campaign" => {
                let Some(v) = it.next() else {
                    eprintln!("--campaign needs a name");
                    return usage();
                };
                name = Some(v.clone());
            }
            "--jobs" => {
                let Some(v) = it.next() else {
                    eprintln!("--jobs needs a value");
                    return usage();
                };
                match v.parse::<usize>() {
                    Ok(j) if j >= 1 => jobs = j,
                    _ => {
                        eprintln!("bad --jobs value '{v}'");
                        return usage();
                    }
                }
            }
            "--csv" => csv = true,
            other => {
                eprintln!("unknown flag '{other}'");
                return usage();
            }
        }
    }
    let Some(name) = name else {
        eprintln!("faults needs --campaign <name> (or --list)");
        return usage();
    };
    if name == "fugaku-smoke" {
        return run_fugaku_smoke(csv);
    }
    let Some(c) = campaign(&name) else {
        let known: Vec<&str> = campaigns()
            .iter()
            .map(|c| c.name)
            .chain(std::iter::once("fugaku-smoke"))
            .collect();
        eprintln!("unknown campaign '{name}' — known: {}", known.join(", "));
        return ExitCode::FAILURE;
    };
    let ctx = Ctx::new();
    let report = run_campaign(&ctx, &c, jobs);
    let artifact = report.artifact();
    print!(
        "{}",
        if csv {
            artifact.to_csv()
        } else {
            artifact.to_text()
        }
    );
    let misses = report.trials.iter().filter(|t| !t.fingerprint_hit).count();
    if misses == 0 {
        ExitCode::SUCCESS
    } else {
        eprintln!("{misses} trial(s) failed to fingerprint their injected nodes");
        ExitCode::FAILURE
    }
}

fn run_serve(args: &[String]) -> ExitCode {
    let mut jobs = 1usize;
    let mut store_dir: Option<String> = None;
    let mut smoke_file: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--jobs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1 => jobs = v,
                _ => {
                    eprintln!("--jobs needs an integer >= 1");
                    return usage();
                }
            },
            "--store" => match it.next() {
                Some(d) => store_dir = Some(d.clone()),
                None => {
                    eprintln!("--store needs a directory");
                    return usage();
                }
            },
            "--smoke" => match it.next() {
                Some(f) => smoke_file = Some(f.clone()),
                None => {
                    eprintln!("--smoke needs a batch file");
                    return usage();
                }
            },
            other => {
                eprintln!("unknown flag '{other}'");
                return usage();
            }
        }
    }

    if let Some(file) = smoke_file {
        return match cluster_eval::serve::smoke(std::path::Path::new(&file), jobs, 10.0) {
            Ok(r) => {
                println!(
                    "serve smoke PASS: cold {:.1} ms ({} misses) -> warm {:.1} ms \
                     ({} disk / {} mem hits, 0 misses), {:.0}x",
                    r.cold_ms,
                    r.cold.misses,
                    r.warm_ms,
                    r.warm.disk_hits,
                    r.warm.mem_hits,
                    r.cold_ms / r.warm_ms.max(1e-9)
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("serve smoke FAIL: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let ctx = match &store_dir {
        Some(dir) => match cluster_eval::serve::open_store(std::path::Path::new(dir)) {
            Ok(store) => {
                eprintln!(
                    "serve: store {} ({} records, model {:016x})",
                    dir,
                    store.records(),
                    store.model_hash()
                );
                Ctx::with_store(store)
            }
            Err(e) => {
                eprintln!("cannot open store '{dir}': {e}");
                return ExitCode::FAILURE;
            }
        },
        None => Ctx::new(),
    };
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    match cluster_eval::serve::serve(&ctx, stdin.lock(), stdout.lock(), std::io::stderr(), jobs) {
        Ok(s) => {
            eprintln!(
                "serve: {} requests, {} queries ({} mem / {} disk / {} miss)",
                s.requests, s.queries, s.counters.mem_hits, s.counters.disk_hits, s.counters.misses
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("serve failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_sched_replay(args: &[String]) -> ExitCode {
    use cluster_eval::schedreplay;
    let mut config = schedreplay::ReplayConfig::fugaku_month();
    let mut csv = false;
    let mut smoke = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--machine" => match it.next() {
                Some(m) if schedreplay::machine_topo(m).is_some() => config.machine = m.clone(),
                other => {
                    eprintln!(
                        "unknown --machine '{}' — known: fugaku, cte-arm",
                        other.map(String::as_str).unwrap_or("")
                    );
                    return usage();
                }
            },
            "--days" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1 => config.days = v,
                _ => {
                    eprintln!("--days needs an integer >= 1");
                    return usage();
                }
            },
            "--jobs-per-day" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1 => config.jobs_per_day = v,
                _ => {
                    eprintln!("--jobs-per-day needs an integer >= 1");
                    return usage();
                }
            },
            "--policy" => match it.next().and_then(|p| schedreplay::parse_policy(p)) {
                Some(p) => config.policy = p,
                None => {
                    eprintln!("unknown --policy — known: best-fit, first-fit, random");
                    return usage();
                }
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => config.seed = v,
                None => {
                    eprintln!("--seed needs an integer");
                    return usage();
                }
            },
            "--strict-fcfs" => config.backfill = false,
            "--csv" => csv = true,
            "--smoke" => smoke = true,
            other => {
                eprintln!("unknown flag '{other}'");
                return usage();
            }
        }
    }
    if smoke {
        return match schedreplay::smoke() {
            Ok(msg) => {
                println!("sched smoke PASS: {msg}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("sched smoke FAIL: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let out = schedreplay::run_replay(&config);
    if csv {
        print!("{}", out.to_csv());
    } else {
        print!("{}", out.to_text());
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            println!("paper artifacts:");
            for e in all_experiments() {
                println!("  {:8} [Sec. {:5}] {}", e.id, e.section, e.title);
            }
            println!("extensions:");
            for e in extension_experiments() {
                println!("  {:16} [{}] {}", e.id, e.section, e.title);
            }
            ExitCode::SUCCESS
        }
        Some("run") => {
            if args.iter().any(|a| a == "--all") {
                return run_all(&args[1..]);
            }
            let Some(id) = args.get(1) else {
                return usage();
            };
            if id.starts_with("--") {
                return usage();
            }
            run_one(id, args.iter().any(|a| a == "--csv"))
        }
        Some("bench-all") => bench_all(
            args.iter().any(|a| a == "--csv"),
            args.iter().any(|a| a == "--json"),
        ),
        Some("bench-delta") => bench_delta(&args[1..]),
        Some("report") => {
            let dir = args.get(1).cloned().unwrap_or_else(|| "report".into());
            match cluster_eval::report::generate_report(std::path::Path::new(&dir)) {
                Ok(artifacts) => {
                    println!("wrote {} artifacts to {dir}", artifacts.len());
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("report generation failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("validate") => {
            let t = cluster_eval::validation::validation_report();
            print!("{}", t.to_text());
            let failing = cluster_eval::validation::checks()
                .iter()
                .filter(|c| !c.passes())
                .count();
            if failing == 0 {
                println!("\nall checks PASS");
                ExitCode::SUCCESS
            } else {
                println!("\n{failing} checks FAIL");
                ExitCode::FAILURE
            }
        }
        Some("cache-model") => {
            let machine = match args.iter().position(|a| a == "--machine") {
                Some(i) => match args.get(i + 1).map(String::as_str) {
                    Some("cte-arm") => arch::machines::cte_arm(),
                    Some("mn4") => arch::machines::marenostrum4(),
                    other => {
                        eprintln!(
                            "unknown --machine '{}' — known: cte-arm, mn4",
                            other.unwrap_or("")
                        );
                        return usage();
                    }
                },
                None => arch::machines::cte_arm(),
            };
            match cluster_eval::cachemodel::render_report(&machine) {
                Some(r) => {
                    print!("{r}");
                    ExitCode::SUCCESS
                }
                None => {
                    eprintln!("no hierarchy config for machine '{}'", machine.name);
                    ExitCode::FAILURE
                }
            }
        }
        Some("faults") => run_faults(&args[1..]),
        Some("serve") => run_serve(&args[1..]),
        Some("sched-replay") => run_sched_replay(&args[1..]),
        Some("table4") => {
            let a = run("table4").expect("table4 is registered");
            print!("{}", a.to_text());
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
