//! `cluster-eval serve` — evaluation-as-a-service over stdin/stdout.
//!
//! A long-running front end for batched what-if queries: each input line
//! is a JSON request naming a batch of `(app, machine, nodes, …)` points,
//! each output line is the matching JSON response. Responses are emitted
//! in request order; *within* a batch the queries are computed out of
//! order across a worker pool ([`crate::engine::run_indexed`] puts every
//! result back in its slot, so the response bytes never depend on the
//! worker count).
//!
//! Two identical queries in flight at once cost one engine miss: every
//! simulation funnels through the shared [`Ctx`] cache, whose per-key slot
//! lock is a single-flight map — the second query blocks on the first's
//! slot and reads the computed value as a memory hit. With a persistent
//! [`Store`] attached (`--store DIR`), results survive across server
//! restarts, so a warm store answers whole batches without touching the
//! engine at all.
//!
//! Responses carry **no timing or counter fields** — a response is a pure
//! function of the query and the model code, so cold and warm serves are
//! byte-identical. Per-batch statistics go to stderr instead.
//!
//! ## Wire protocol (one JSON document per line)
//!
//! ```text
//! → {"id": 1, "queries": [{"app": "alya", "machine": "cte-arm", "nodes": 16}]}
//! ← {"id":1,"results":[{"app":"alya","machine":"CTE-Arm","nodes":16,"elapsed_s":…,…}]}
//! ```
//!
//! Query fields: `app` (alya | nemo | wrf | openifs | gromacs | hpl |
//! hpcg), `machine` (cte-arm | mn4), `nodes`, plus `io` (wrf: write
//! history output) and `version` (hpcg: vanilla | optimized). A malformed
//! or failing query yields `{"error":"…"}` in its result slot; a
//! malformed request line yields `{"id":null,"error":"…"}`.

use crate::engine::{run_indexed, Ctx};
use crate::json::{self, Value};
use apps::common::Cluster;
use simkit::cache::TierCounters;
use simkit::store::Store;
use std::fmt::Write as _;
use std::io::{self, BufRead, Write};
use std::sync::Arc;
use std::time::Instant;

/// The 64-bit FNV-1a digest of every model source file, computed by
/// `build.rs`. Stores opened with this hash can only ever serve results
/// produced by byte-identical model code.
pub fn model_code_hash() -> u64 {
    u64::from_str_radix(env!("CLUSTER_EVAL_MODEL_HASH"), 16)
        .expect("build script emits a 16-digit hex hash")
}

/// Open the persistent store for the current model revision under `dir`.
pub fn open_store(dir: &std::path::Path) -> io::Result<Arc<Store>> {
    Ok(Arc::new(Store::open(dir, model_code_hash())?))
}

/// One validated what-if query.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// A production-application point (Alya/NEMO/WRF/OpenIFS/GROMACS).
    App {
        /// Application name (lowercase, as on the wire).
        app: String,
        /// Target cluster.
        cluster: Cluster,
        /// Node count.
        nodes: usize,
        /// WRF only: write the hourly history output.
        io: bool,
    },
    /// An HPL (LINPACK) point.
    Hpl {
        /// Target cluster.
        cluster: Cluster,
        /// Node count.
        nodes: usize,
    },
    /// An HPCG point.
    Hpcg {
        /// Target cluster.
        cluster: Cluster,
        /// Node count.
        nodes: usize,
        /// Build variant.
        version: hpcg::HpcgVersion,
    },
}

fn parse_cluster(v: &Value) -> Result<Cluster, String> {
    match v.get("machine").and_then(Value::as_str) {
        Some("cte-arm") => Ok(Cluster::CteArm),
        Some("mn4") => Ok(Cluster::MareNostrum4),
        Some(other) => Err(format!("unknown machine '{other}' (cte-arm | mn4)")),
        None => Err("query needs a string 'machine' field".into()),
    }
}

impl Query {
    /// Validate one JSON query object.
    pub fn parse(v: &Value) -> Result<Self, String> {
        let cluster = parse_cluster(v)?;
        let nodes = v
            .get("nodes")
            .and_then(Value::as_u64)
            .ok_or("query needs an integer 'nodes' field")? as usize;
        let max = cluster.machine().nodes;
        if nodes == 0 || nodes > max {
            return Err(format!(
                "nodes={nodes} out of range for {} (1..={max})",
                cluster.label()
            ));
        }
        match v.get("app").and_then(Value::as_str) {
            Some("hpl") => Ok(Query::Hpl { cluster, nodes }),
            Some("hpcg") => {
                let version = match v.get("version").and_then(Value::as_str) {
                    None | Some("optimized") => hpcg::HpcgVersion::Optimized,
                    Some("vanilla") => hpcg::HpcgVersion::Vanilla,
                    Some(other) => {
                        return Err(format!(
                            "unknown hpcg version '{other}' (vanilla | optimized)"
                        ))
                    }
                };
                Ok(Query::Hpcg {
                    cluster,
                    nodes,
                    version,
                })
            }
            Some(app @ ("alya" | "nemo" | "wrf" | "openifs" | "gromacs")) => {
                let min = match app {
                    "alya" => apps::alya::Alya::test_case_b().min_nodes(cluster),
                    "nemo" => apps::nemo::Nemo::bench_orca1().min_nodes(cluster),
                    "openifs" => apps::openifs::OpenIfs::tc0511l91().min_nodes(cluster),
                    _ => 1,
                };
                if nodes < min {
                    return Err(format!(
                        "{app} does not fit on {nodes} nodes of {} (needs >= {min})",
                        cluster.label()
                    ));
                }
                Ok(Query::App {
                    app: app.to_string(),
                    cluster,
                    nodes,
                    io: v.get("io").and_then(Value::as_bool).unwrap_or(false),
                })
            }
            Some(other) => Err(format!(
                "unknown app '{other}' (alya | nemo | wrf | openifs | gromacs | hpl | hpcg)"
            )),
            None => Err("query needs a string 'app' field".into()),
        }
    }

    /// Evaluate against `ctx` and render the result JSON object. Every
    /// float is formatted with `Display` (shortest round-trip form), so
    /// the bytes are a pure function of the value.
    pub fn answer(&self, ctx: &Ctx) -> String {
        match self {
            Query::App {
                app,
                cluster,
                nodes,
                io,
            } => {
                let cache = &ctx.cache;
                let run =
                    match app.as_str() {
                        "alya" => {
                            apps::alya::Alya::test_case_b().simulate_cached(cache, *cluster, *nodes)
                        }
                        "nemo" => {
                            apps::nemo::Nemo::bench_orca1().simulate_cached(cache, *cluster, *nodes)
                        }
                        "wrf" => apps::wrf::Wrf::iberia_4km()
                            .simulate_cached(cache, *cluster, *nodes, *io),
                        "openifs" => apps::openifs::OpenIfs::tc0511l91()
                            .simulate_cached(cache, *cluster, *nodes),
                        "gromacs" => apps::gromacs::Gromacs::lignocellulose_rf()
                            .simulate_cached(cache, *cluster, *nodes),
                        other => unreachable!("Query::parse admitted app '{other}'"),
                    };
                let mut out = format!(
                    "{{\"app\":\"{app}\",\"machine\":\"{}\",\"nodes\":{nodes},\"elapsed_s\":{}",
                    cluster.label(),
                    run.elapsed.value()
                );
                if !run.phases.is_empty() {
                    out.push_str(",\"phases\":{");
                    for (i, (name, t)) in run.phases.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "\"{}\":{}", json::escape(name), t.value());
                    }
                    out.push('}');
                }
                out.push('}');
                out
            }
            Query::Hpl { cluster, nodes } => {
                let machine = cluster.machine();
                let link = match cluster {
                    Cluster::CteArm => interconnect::link::LinkModel::tofud(),
                    Cluster::MareNostrum4 => interconnect::link::LinkModel::omnipath(),
                };
                let cfg = hpl::paper_config(&machine, *nodes);
                let r = hpl::simulate_cached(&ctx.cache, &machine, &link, *nodes, &cfg);
                format!(
                    "{{\"app\":\"hpl\",\"machine\":\"{}\",\"nodes\":{nodes},\
                     \"gflops\":{},\"efficiency\":{},\"time_s\":{}}}",
                    cluster.label(),
                    r.gflops,
                    r.efficiency,
                    r.time.value()
                )
            }
            Query::Hpcg {
                cluster,
                nodes,
                version,
            } => {
                let machine = cluster.machine();
                let cfg = hpcg::HpcgConfig::paper(*version);
                let r = hpcg::simulate_cached(&ctx.cache, &machine, *nodes, &cfg);
                format!(
                    "{{\"app\":\"hpcg\",\"machine\":\"{}\",\"nodes\":{nodes},\
                     \"version\":\"{}\",\"gflops\":{},\"fraction_of_peak\":{},\"time_s\":{}}}",
                    cluster.label(),
                    match version {
                        hpcg::HpcgVersion::Vanilla => "vanilla",
                        hpcg::HpcgVersion::Optimized => "optimized",
                    },
                    r.gflops,
                    r.fraction_of_peak,
                    r.time.value()
                )
            }
        }
    }
}

/// Render the response line for one raw request line. Pure except for
/// cache effects in `ctx` — this is the unit both the server loop and the
/// test batteries drive.
pub fn respond(ctx: &Ctx, line: &str, jobs: usize) -> String {
    let parsed = match json::parse(line) {
        Ok(v) => v,
        Err(e) => return format!("{{\"id\":null,\"error\":\"{}\"}}", json::escape(&e)),
    };
    let id = match parsed.get("id").and_then(Value::as_u64) {
        Some(id) => id,
        None => {
            return "{\"id\":null,\"error\":\"request needs an integer 'id' field\"}".to_string()
        }
    };
    let Some(queries) = parsed.get("queries").and_then(Value::as_array) else {
        return format!("{{\"id\":{id},\"error\":\"request needs a 'queries' array\"}}");
    };
    // Validate serially (cheap), evaluate in parallel (expensive). The
    // per-slot design of `run_indexed` makes the output order — and with
    // the cache's single-flight slots, the result bytes — independent of
    // `jobs`.
    let parsed_queries: Vec<Result<Query, String>> = queries.iter().map(Query::parse).collect();
    let results = run_indexed(parsed_queries.len(), jobs, |i| match &parsed_queries[i] {
        Ok(q) => {
            // Backstop for model-level panics (e.g. config asserts the
            // validation above does not know about): a failing query must
            // poison its slot, not the server.
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| q.answer(ctx))).unwrap_or_else(
                |_| {
                    format!(
                        "{{\"error\":\"query {i} panicked in the engine — \
                         see server log\"}}"
                    )
                },
            )
        }
        Err(e) => format!("{{\"error\":\"{}\"}}", json::escape(e)),
    });
    let mut out = format!("{{\"id\":{id},\"results\":[");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(r);
    }
    out.push_str("]}");
    out
}

/// What one [`serve`] session did, for the stderr summary.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeSummary {
    /// Request lines processed (including malformed ones).
    pub requests: u64,
    /// Individual queries answered.
    pub queries: u64,
    /// Cache traffic of this session (memory hits / disk hits / misses).
    pub counters: TierCounters,
}

/// Serve line-delimited JSON requests from `input` to `output` until EOF.
/// Each response line is flushed before the next request is read, so a
/// driving process can pipeline. Batch statistics go to `log`.
pub fn serve(
    ctx: &Ctx,
    input: impl BufRead,
    mut output: impl Write,
    mut log: impl Write,
    jobs: usize,
) -> io::Result<ServeSummary> {
    let mut summary = ServeSummary::default();
    let before = ctx.cache.counters();
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let started = Instant::now();
        let counters_at = ctx.cache.counters();
        let response = respond(ctx, &line, jobs);
        output.write_all(response.as_bytes())?;
        output.write_all(b"\n")?;
        output.flush()?;
        summary.requests += 1;
        let delta = ctx.cache.counters().since(&counters_at);
        summary.queries += delta.total();
        writeln!(
            log,
            "serve: request {} in {:.3} ms ({} mem / {} disk / {} miss)",
            summary.requests,
            started.elapsed().as_secs_f64() * 1e3,
            delta.mem_hits,
            delta.disk_hits,
            delta.misses
        )?;
    }
    summary.counters = ctx.cache.counters().since(&before);
    // Make the session durable before reporting success.
    if let Some(store) = ctx.cache.store() {
        store.flush_index()?;
    }
    Ok(summary)
}

/// Run `lines` as one in-memory session and return the response lines.
/// The harness behind the determinism tests and the smoke self-test.
pub fn run_batch(ctx: &Ctx, lines: &[String], jobs: usize) -> Vec<String> {
    lines.iter().map(|l| respond(ctx, l, jobs)).collect()
}

/// Outcome of [`smoke`], one field per acceptance criterion.
#[derive(Debug, Clone)]
pub struct SmokeReport {
    /// Wall time of the cold replay (fresh store, every query a miss).
    pub cold_ms: f64,
    /// Wall time of the warm replay (reopened store, no engine work).
    pub warm_ms: f64,
    /// Cache traffic of the cold replay.
    pub cold: TierCounters,
    /// Cache traffic of the warm replay.
    pub warm: TierCounters,
}

/// Cold/warm self-test over a canned batch file: replay it against a
/// fresh store, then reopen the store in a new context and replay again.
/// Fails unless the warm replay (a) produced byte-identical responses,
/// (b) never missed into the engine, and (c) beat the cold replay by the
/// `speedup` factor the store exists to deliver.
pub fn smoke(
    batch_path: &std::path::Path,
    jobs: usize,
    speedup: f64,
) -> Result<SmokeReport, String> {
    let text = std::fs::read_to_string(batch_path)
        .map_err(|e| format!("cannot read {}: {e}", batch_path.display()))?;
    let lines: Vec<String> = text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(String::from)
        .collect();
    if lines.is_empty() {
        return Err(format!("{} holds no requests", batch_path.display()));
    }
    let dir = std::env::temp_dir().join(format!("cluster-eval-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let result = smoke_in(&dir, &lines, jobs, speedup);
    let _ = std::fs::remove_dir_all(&dir);
    result
}

fn smoke_in(
    dir: &std::path::Path,
    lines: &[String],
    jobs: usize,
    speedup: f64,
) -> Result<SmokeReport, String> {
    let open = || open_store(dir).map_err(|e| format!("store open failed: {e}"));

    let cold_ctx = Ctx::with_store(open()?);
    let t0 = Instant::now();
    let cold_out = run_batch(&cold_ctx, lines, jobs);
    let cold_ms = t0.elapsed().as_secs_f64() * 1e3;
    let cold = cold_ctx.cache.counters();
    drop(cold_ctx); // flush the index, as a server shutdown would

    let warm_ctx = Ctx::with_store(open()?);
    let t1 = Instant::now();
    let warm_out = run_batch(&warm_ctx, lines, jobs);
    let warm_ms = t1.elapsed().as_secs_f64() * 1e3;
    let warm = warm_ctx.cache.counters();

    if cold.misses == 0 {
        return Err("cold replay missed nothing — the batch exercised no simulations".into());
    }
    if warm_out != cold_out {
        let at = cold_out
            .iter()
            .zip(&warm_out)
            .position(|(a, b)| a != b)
            .unwrap_or(0);
        return Err(format!(
            "warm replay diverged from cold at response {at}:\n  cold: {}\n  warm: {}",
            cold_out[at], warm_out[at]
        ));
    }
    if warm.misses != 0 {
        return Err(format!(
            "warm replay reached the engine {} times — the store failed to serve it",
            warm.misses
        ));
    }
    if warm.disk_hits == 0 {
        return Err("warm replay never touched the disk tier".into());
    }
    if cold_ms < speedup * warm_ms {
        return Err(format!(
            "warm replay too slow: cold {cold_ms:.1} ms vs warm {warm_ms:.1} ms \
             (need >{speedup}x)"
        ));
    }
    Ok(SmokeReport {
        cold_ms,
        warm_ms,
        cold,
        warm,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(q: &str) -> String {
        format!("{{\"id\": 1, \"queries\": [{q}]}}")
    }

    #[test]
    fn malformed_lines_answer_with_errors() {
        let ctx = Ctx::new();
        assert!(respond(&ctx, "not json", 1).starts_with("{\"id\":null,\"error\":"));
        assert!(respond(&ctx, "{\"queries\": []}", 1).contains("'id'"));
        assert!(respond(&ctx, "{\"id\": 2}", 1).contains("'queries'"));
    }

    #[test]
    fn unknown_fields_fail_per_query_not_per_request() {
        let ctx = Ctx::new();
        let r = respond(
            &ctx,
            "{\"id\":4,\"queries\":[{\"app\":\"hpl\",\"machine\":\"cte-arm\",\"nodes\":1},\
             {\"app\":\"nope\",\"machine\":\"cte-arm\",\"nodes\":1}]}",
            1,
        );
        assert!(r.starts_with("{\"id\":4,\"results\":["), "{r}");
        assert!(r.contains("\"gflops\":"), "first query succeeds: {r}");
        assert!(r.contains("unknown app 'nope'"), "second fails: {r}");
    }

    #[test]
    fn node_range_and_fit_are_validated() {
        let ctx = Ctx::new();
        let r = respond(
            &ctx,
            &line("{\"app\":\"hpl\",\"machine\":\"cte-arm\",\"nodes\":100000}"),
            1,
        );
        assert!(r.contains("out of range"), "{r}");
        let r = respond(
            &ctx,
            &line("{\"app\":\"alya\",\"machine\":\"cte-arm\",\"nodes\":1}"),
            1,
        );
        assert!(r.contains("does not fit"), "{r}");
    }

    #[test]
    fn responses_carry_no_timing() {
        // The byte-identical cold/warm contract rests on this.
        let ctx = Ctx::new();
        let r = respond(
            &ctx,
            &line("{\"app\":\"hpcg\",\"machine\":\"mn4\",\"nodes\":4,\"version\":\"vanilla\"}"),
            1,
        );
        for forbidden in ["ms", "wall", "hit", "miss"] {
            assert!(!r.contains(forbidden), "'{forbidden}' leaked into {r}");
        }
    }

    #[test]
    fn model_hash_is_wired_through() {
        // Parses and is stable within a build.
        assert_eq!(model_code_hash(), model_code_hash());
    }
}
