//! Host micro-benchmarks for the kernel runtime (`bench-all --json`).
//!
//! Unlike the experiment registry — which reproduces the *paper's* A64FX
//! numbers from analytic machine models — this module measures what the
//! rewritten parallel runtime actually delivers on the machine running the
//! binary: per-kernel GB/s or GFLOP/s with 1 worker thread and with the
//! full configured pool, plus the resulting speedup. The output is the
//! committed `BENCH_host.json` snapshot (regenerate it with
//! `cluster-eval bench-all --json > BENCH_host.json` — the recorded
//! `host.cores` field says what hardware a snapshot came from, so numbers
//! from a 1-core CI container and a 48-core A64FX node are never confused).
//!
//! Kernel measurements use calibrated best-of-k timing: one warm-up call
//! estimates the kernel's wall time, reps are auto-scaled so every timed
//! batch runs at least [`TARGET_BATCH_SECS`], and the reported number is
//! the best per-rep time over [`BATCHES`] batches. That keeps a
//! microsecond kernel from being timed as a single clock-granularity
//! sample, so run-to-run deltas in `BENCH_host.json` reflect the code, not
//! the timer. The kernels themselves are the real `crates/kernels`
//! implementations, so these numbers move when the runtime or the kernels
//! do. (The interconnect rows keep the simpler fixed-rep `time_best` —
//! their loop bodies already aggregate thousands of route resolutions.)

use crate::engine::Ctx;
use crate::serve::{open_store, respond, run_batch};
use arch::cost::{
    spmv_csr_bytes, spmv_csr_moved_bytes, spmv_stencil_bytes, spmv_stencil_moved_bytes,
};
use interconnect::folded::FoldedTable;
use interconnect::link::LinkModel;
use interconnect::network::Network;
use interconnect::routing::{all_pairs_loads, RouteSteps};
use interconnect::table::RoutingTable;
use interconnect::tofu::{TofuD, DIMS};
use interconnect::topology::{NodeId, Topology};
use kernels::cg::{build_hpcg_matrix, symgs};
use kernels::gemm::{gemm_blocked, gemm_flops};
use kernels::matrix::DenseMatrix;
use kernels::md::LjSystem;
use kernels::mg::MgHierarchy;
use kernels::stencil::OceanGrid;
use kernels::stencil_matrix::StencilMatrix;
use kernels::stream::{StreamArrays, StreamKernel};
use std::time::Instant;

/// Best-of trials per measurement (legacy fixed-rep network rows).
const TRIALS: usize = 3;

/// Minimum wall time a calibrated timed batch should cover. Long enough
/// to amortize timer granularity and scheduling jitter, short enough that
/// the full kernel suite stays interactive.
const TARGET_BATCH_SECS: f64 = 0.025;

/// Timed batches per calibrated measurement (the best one is reported).
const BATCHES: usize = 5;

/// Upper bound on auto-scaled reps, so a nanosecond-cheap closure cannot
/// spin a batch for minutes.
const MAX_REPS: usize = 100_000;

/// Calibrated best-of-k timing: one warm-up call primes caches and
/// estimates the closure's wall time, reps are scaled so a batch covers
/// [`TARGET_BATCH_SECS`], and the best per-rep seconds over [`BATCHES`]
/// batches is returned.
fn calibrated_best<F: FnMut()>(mut f: F) -> f64 {
    let t0 = Instant::now();
    f();
    let warm = t0.elapsed().as_secs_f64();
    let reps = if warm > 0.0 {
        ((TARGET_BATCH_SECS / warm).ceil() as usize).clamp(1, MAX_REPS)
    } else {
        MAX_REPS
    };
    let mut best = f64::INFINITY;
    for _ in 0..BATCHES {
        let t0 = Instant::now();
        for _ in 0..reps {
            f();
        }
        best = best.min(t0.elapsed().as_secs_f64() / reps as f64);
    }
    best
}

/// A kernel measurement entry point: thread count in, throughput out.
type BenchFn = fn(usize) -> f64;

/// One kernel's measurement at both thread settings.
#[derive(Debug, Clone)]
pub struct KernelBench {
    /// Kernel name (`stream_triad`, `gemm_blocked`, …).
    pub name: &'static str,
    /// Unit of `value_1t` / `value_nt` (`GB/s` or `GFLOP/s`).
    pub metric: &'static str,
    /// Problem-size note for the record (e.g. `n=2000000`).
    pub size: String,
    /// Throughput with a single worker thread.
    pub value_1t: f64,
    /// Throughput with the full configured pool.
    pub value_nt: f64,
}

impl KernelBench {
    /// `value_nt / value_1t`.
    pub fn speedup(&self) -> f64 {
        if self.value_1t > 0.0 {
            self.value_nt / self.value_1t
        } else {
            0.0
        }
    }
}

/// Interconnect fast-path measurements: per-message route-cost resolution
/// (before/after the memoized table), route-step enumeration rate, routing
/// table construction cost, and the parallel all-pairs link-load sweep at
/// one worker vs. the full pool.
#[derive(Debug, Clone)]
pub struct NetworkBench {
    /// Topology the route-rate numbers come from.
    pub route_topology: String,
    /// Routes resolved per second through `Network::path_cost` with the
    /// memoized [`RoutingTable`] built — the per-message fast path every
    /// `message_time` call rides.
    pub routes_per_sec: f64,
    /// The same query stream answered the pre-change way: `path_cost`
    /// before `routing_table()` is built falls back to direct
    /// coordinate-decode `hops()`/`sharing()` — byte-for-byte the code
    /// `message_time` ran before the table existed. Measured fresh on the
    /// same host every run, so the before/after never mixes machines.
    pub baseline_routes_per_sec: f64,
    /// Full-route step enumeration rate: the non-allocating `RouteSteps`
    /// iterator walked to completion over every ordered pair.
    pub route_enum_per_sec: f64,
    /// Wall time to build the memoized [`RoutingTable`], microseconds.
    pub table_build_us: f64,
    /// Topology the link-load sweep runs on.
    pub sweep_topology: String,
    /// All-pairs link-load sweep wall time with a 1-worker pool, ms.
    pub sweep_ms_1t: f64,
    /// Same sweep with the full configured pool, ms.
    pub sweep_ms_nt: f64,
    /// Topology of the symmetry-folded rows (full Fugaku).
    pub folded_topology: String,
    /// Path-cost resolutions per second through the folded table's
    /// all-pairs decode loop (hops + sharing class per pair).
    pub folded_routes_per_sec: f64,
    /// Wall time to build the full-Fugaku folded table, milliseconds.
    pub folded_build_ms: f64,
    /// Resident bytes of the full-Fugaku folded table.
    pub folded_table_bytes: usize,
    /// Topology of the 10k-node closed-form sweep row.
    pub sweep_10k_topology: String,
    /// Closed-form all-pairs uniform-traffic sweep (link loads + mean
    /// hops) at 10k+ nodes, milliseconds.
    pub sweep_10k_closed_ms: f64,
    /// The same closed-form sweep at full-Fugaku scale, milliseconds.
    pub fugaku_sweep_closed_ms: f64,
}

impl NetworkBench {
    /// `routes_per_sec / baseline_routes_per_sec` — how much faster the
    /// memoized table resolves a route than the pre-change direct path.
    pub fn resolve_speedup(&self) -> f64 {
        if self.baseline_routes_per_sec > 0.0 {
            self.routes_per_sec / self.baseline_routes_per_sec
        } else {
            0.0
        }
    }

    /// `sweep_ms_1t / sweep_ms_nt`.
    pub fn sweep_speedup(&self) -> f64 {
        if self.sweep_ms_nt > 0.0 {
            self.sweep_ms_1t / self.sweep_ms_nt
        } else {
            0.0
        }
    }
}

/// Structure-aware HPCG engine measurements: the CSR baseline against the
/// stencil-packed format for SpMV (throughput *and* effective traffic),
/// the sequential SymGS oracle against the parallel multicolor smoother,
/// and the full V-cycle at one worker vs. the configured pool.
#[derive(Debug, Clone)]
pub struct HpcgBench {
    /// Grid the SpMV/SymGS rows ran on (e.g. `32x32x32`).
    pub grid: String,
    /// CSR SpMV flop rate under the full pool, GFLOP/s.
    pub spmv_csr_gflops: f64,
    /// CSR SpMV *compulsory-DRAM-floor* traffic under the full pool, GB/s:
    /// the minimal main-memory bytes a perfect cache would move
    /// ([`spmv_csr_bytes`]) over measured wall time. A lower bound on the
    /// achieved bandwidth, NOT a throughput ranking across formats.
    pub spmv_csr_gbs_dram_floor: f64,
    /// CSR SpMV *moved* traffic, GB/s ([`spmv_csr_moved_bytes`]: what the
    /// loop actually touches). Comparable across matrix formats, unlike
    /// the floor number.
    pub spmv_csr_gbs_moved: f64,
    /// Stencil-packed SpMV flop rate under the full pool, GFLOP/s.
    pub spmv_stencil_gflops: f64,
    /// Stencil-packed SpMV *compulsory-DRAM-floor* traffic, GB/s
    /// ([`spmv_stencil_bytes`]: just the `x`/`y` streams — the packed
    /// format's whole metadata is ~500 B, so its floor is tiny *by
    /// construction*). Dividing by these few bytes makes a *faster* kernel
    /// print a *smaller* GB/s than CSR — never compare this column across
    /// formats; use the `_gbs_moved` columns for that.
    pub spmv_stencil_gbs_dram_floor: f64,
    /// Stencil-packed SpMV *moved* traffic, GB/s
    /// ([`spmv_stencil_moved_bytes`]): the format-comparable number.
    pub spmv_stencil_gbs_moved: f64,
    /// Sequential (oracle) SymGS sweeps per second.
    pub symgs_seq_sweeps_per_sec: f64,
    /// Parallel multicolor SymGS sweeps per second under the full pool.
    pub symgs_colored_sweeps_per_sec: f64,
    /// One V-cycle on the stencil hierarchy with a 1-worker pool, ms.
    pub vcycle_ms_1t: f64,
    /// Same V-cycle with the full configured pool, ms.
    pub vcycle_ms_nt: f64,
}

impl HpcgBench {
    /// `spmv_stencil_gflops / spmv_csr_gflops` — the format win at equal
    /// arithmetic.
    pub fn spmv_format_speedup(&self) -> f64 {
        if self.spmv_csr_gflops > 0.0 {
            self.spmv_stencil_gflops / self.spmv_csr_gflops
        } else {
            0.0
        }
    }

    /// `symgs_colored_sweeps_per_sec / symgs_seq_sweeps_per_sec`.
    pub fn symgs_speedup(&self) -> f64 {
        if self.symgs_seq_sweeps_per_sec > 0.0 {
            self.symgs_colored_sweeps_per_sec / self.symgs_seq_sweeps_per_sec
        } else {
            0.0
        }
    }

    /// `vcycle_ms_1t / vcycle_ms_nt`.
    pub fn vcycle_speedup(&self) -> f64 {
        if self.vcycle_ms_nt > 0.0 {
            self.vcycle_ms_1t / self.vcycle_ms_nt
        } else {
            0.0
        }
    }
}

/// The full host snapshot.
#[derive(Debug, Clone)]
pub struct HostBench {
    /// Cores the OS reports (`available_parallelism`). Distinct from
    /// `pool_threads`: a snapshot may legitimately record a pool wider or
    /// narrower than the hardware.
    pub detected_cores: usize,
    /// Worker threads the "N-thread" column used.
    pub pool_threads: usize,
    /// The `RAYON_NUM_THREADS` override in effect, if any.
    pub rayon_threads_env: Option<String>,
    /// Per-kernel measurements.
    pub kernels: Vec<KernelBench>,
    /// Interconnect fast-path measurements.
    pub network: NetworkBench,
    /// Structure-aware HPCG engine measurements.
    pub hpcg: HpcgBench,
}

/// Serve-path measurements over the committed canned batch
/// (`tests/data/serve_batch_50.jsonl`, compiled into the binary): the cold
/// replay that pays every engine miss against a fresh store, the warm
/// replay served from the reopened disk store, and the engine cost of two
/// identical in-flight queries under the single-flight slot lock.
#[derive(Debug, Clone)]
pub struct ServeBench {
    /// Request lines in the canned batch.
    pub requests: usize,
    /// Individual queries across those requests.
    pub queries: u64,
    /// `--jobs` level both replays ran at.
    pub jobs: usize,
    /// Cold replay wall time (fresh store, every unique query a miss), ms.
    pub cold_batch_ms: f64,
    /// Warm replay wall time (reopened store, engine never runs), ms.
    pub warm_batch_ms: f64,
    /// Engine misses the cold replay paid (the unique-query count).
    pub cold_misses: u64,
    /// Disk hits that served the warm replay.
    pub warm_disk_hits: u64,
    /// Memory hits (in-session duplicates) during the warm replay.
    pub warm_mem_hits: u64,
    /// Engine misses of the warm replay — zero when the store works.
    pub warm_misses: u64,
    /// Engine misses charged for two identical queries evaluated
    /// concurrently in one request: the per-key slot lock is a
    /// single-flight map, so this is 1, not 2.
    pub inflight_dedupe_misses: u64,
}

impl ServeBench {
    /// `cold_batch_ms / warm_batch_ms` — what the persistent tier buys.
    pub fn warm_speedup(&self) -> f64 {
        if self.warm_batch_ms > 0.0 {
            self.cold_batch_ms / self.warm_batch_ms
        } else {
            0.0
        }
    }

    /// Pre-rendered top-level `"serve"` section for
    /// [`HostBench::to_json_with`].
    pub fn to_json_section(&self) -> String {
        let mut out = String::from("  \"serve\": {\n");
        out.push_str("    \"batch\": \"tests/data/serve_batch_50.jsonl\",\n");
        out.push_str(&format!("    \"requests\": {},\n", self.requests));
        out.push_str(&format!("    \"queries\": {},\n", self.queries));
        out.push_str(&format!("    \"jobs\": {},\n", self.jobs));
        out.push_str(&format!(
            "    \"cold_batch_ms\": {:.2},\n",
            self.cold_batch_ms
        ));
        out.push_str(&format!(
            "    \"warm_batch_ms\": {:.2},\n",
            self.warm_batch_ms
        ));
        out.push_str(&format!(
            "    \"warm_speedup\": {:.1},\n",
            self.warm_speedup()
        ));
        out.push_str(&format!("    \"cold_misses\": {},\n", self.cold_misses));
        out.push_str(&format!(
            "    \"warm_disk_hits\": {},\n",
            self.warm_disk_hits
        ));
        out.push_str(&format!("    \"warm_mem_hits\": {},\n", self.warm_mem_hits));
        out.push_str(&format!("    \"warm_misses\": {},\n", self.warm_misses));
        out.push_str(&format!(
            "    \"inflight_dedupe_misses\": {}\n",
            self.inflight_dedupe_misses
        ));
        out.push_str("  }");
        out
    }
}

/// The canned what-if batch the serve tests, CI smoke and this bench all
/// replay: 10 requests x 5 queries, 45 unique + 5 repeats, all-success.
const SERVE_BATCH: &str = include_str!("../../../tests/data/serve_batch_50.jsonl");

/// Measure the serve front end over the canned batch: cold against a
/// fresh store in a scratch directory, warm against the reopened store,
/// plus the in-flight dedupe cost. The scratch store is removed on exit.
pub fn run_serve_bench(jobs: usize) -> ServeBench {
    let lines: Vec<String> = SERVE_BATCH
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(String::from)
        .collect();
    let dir = std::env::temp_dir().join(format!("cluster-eval-servebench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let cold_ctx = Ctx::with_store(open_store(&dir).expect("scratch store open"));
    let t0 = Instant::now();
    let cold_out = run_batch(&cold_ctx, &lines, jobs);
    let cold_batch_ms = t0.elapsed().as_secs_f64() * 1e3;
    let cold = cold_ctx.cache.counters();
    drop(cold_ctx); // server restart: flushes the index

    let warm_ctx = Ctx::with_store(open_store(&dir).expect("scratch store reopen"));
    let t1 = Instant::now();
    let warm_out = run_batch(&warm_ctx, &lines, jobs);
    let warm_batch_ms = t1.elapsed().as_secs_f64() * 1e3;
    let warm = warm_ctx.cache.counters();
    drop(warm_ctx);
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(warm_out, cold_out, "warm serve replay diverged from cold");

    // Dedupe cost: two identical queries in one request, two workers. The
    // slot lock makes one compute and the other wait for the fresh value.
    let dup = r#"{"id": 1, "queries": [
        {"app": "hpl", "machine": "cte-arm", "nodes": 16},
        {"app": "hpl", "machine": "cte-arm", "nodes": 16}]}"#
        .replace('\n', " ");
    let dedupe_ctx = Ctx::new();
    let _ = respond(&dedupe_ctx, &dup, 2);

    ServeBench {
        requests: lines.len(),
        queries: cold.total(),
        jobs,
        cold_batch_ms,
        warm_batch_ms,
        cold_misses: cold.misses,
        warm_disk_hits: warm.disk_hits,
        warm_mem_hits: warm.mem_hits,
        warm_misses: warm.misses,
        inflight_dedupe_misses: dedupe_ctx.cache.counters().misses,
    }
}

/// Scheduler-replay throughput at full-Fugaku scale: days of synthetic
/// production dispatched through the run-indexed allocator, single thread
/// (the replay is inherently sequential; its speed comes from the data
/// structures, not the pool).
#[derive(Debug, Clone)]
pub struct SchedBench {
    /// Machine replayed.
    pub machine: String,
    /// Cluster size.
    pub nodes: usize,
    /// Days of submissions.
    pub days: usize,
    /// Jobs per day.
    pub jobs_per_day: usize,
    /// Jobs replayed.
    pub jobs: usize,
    /// Generate + simulate wall time, seconds.
    pub wall_s: f64,
    /// Jobs simulated per wall-clock second.
    pub jobs_per_sec: f64,
    /// Simulated makespan, seconds.
    pub makespan_s: f64,
    /// Node-time utilization in `[0, 1]`.
    pub utilization: f64,
    /// Mean queue wait, simulated seconds.
    pub mean_wait_s: f64,
    /// Mean allocation compactness, pairwise hops.
    pub mean_compactness: f64,
}

impl SchedBench {
    /// Pre-rendered top-level `"sched"` section for
    /// [`HostBench::to_json_with`].
    pub fn to_json_section(&self) -> String {
        let mut out = String::from("  \"sched\": {\n");
        out.push_str(&format!("    \"machine\": \"{}\",\n", self.machine));
        out.push_str(&format!("    \"nodes\": {},\n", self.nodes));
        out.push_str(&format!("    \"days\": {},\n", self.days));
        out.push_str(&format!("    \"jobs_per_day\": {},\n", self.jobs_per_day));
        out.push_str(&format!("    \"jobs\": {},\n", self.jobs));
        out.push_str(&format!("    \"wall_s\": {:.3},\n", self.wall_s));
        out.push_str(&format!(
            "    \"jobs_per_sec\": {:.0},\n",
            self.jobs_per_sec
        ));
        out.push_str(&format!("    \"makespan_s\": {:.0},\n", self.makespan_s));
        out.push_str(&format!("    \"utilization\": {:.4},\n", self.utilization));
        out.push_str(&format!("    \"mean_wait_s\": {:.1},\n", self.mean_wait_s));
        out.push_str(&format!(
            "    \"mean_compactness\": {:.3}\n",
            self.mean_compactness
        ));
        out.push_str("  }");
        out
    }
}

/// Replay three days of full-Fugaku production (158,976 nodes, 40,000
/// jobs/day) under the best-fit policy and report throughput plus the
/// headline scheduler stats. Deterministic apart from the wall-time
/// fields.
pub fn run_sched_bench() -> SchedBench {
    let config = crate::schedreplay::ReplayConfig {
        days: 3,
        ..crate::schedreplay::ReplayConfig::fugaku_month()
    };
    let out = crate::schedreplay::run_replay(&config);
    SchedBench {
        machine: config.machine,
        nodes: out.nodes,
        days: config.days,
        jobs_per_day: config.jobs_per_day,
        jobs: out.jobs,
        wall_s: out.wall_s,
        jobs_per_sec: out.jobs_per_sec,
        makespan_s: out.stats.makespan.value(),
        utilization: out.stats.utilization,
        mean_wait_s: out.stats.mean_wait.value(),
        mean_compactness: out.stats.mean_compactness,
    }
}

fn time_best<F: FnMut()>(mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..TRIALS {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Run `measure` under a pool fixed to `threads` workers.
fn with_pool<R>(threads: usize, measure: impl FnOnce() -> R) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool construction is infallible")
        .install(measure)
}

fn bench_stream(threads: usize) -> f64 {
    let mut arrays = StreamArrays::new(2_000_000);
    let bytes = (arrays.len() * StreamKernel::Triad.bytes_per_element()) as f64;
    let parallel = threads > 1;
    let secs = with_pool(threads, || {
        calibrated_best(|| {
            if parallel {
                arrays.run_parallel(StreamKernel::Triad);
            } else {
                arrays.run_sequential(StreamKernel::Triad);
            }
        })
    });
    bytes / secs / 1e9
}

fn bench_gemm(threads: usize) -> f64 {
    let n = 192;
    let a = DenseMatrix::from_fn(n, n, |i, j| ((i * 31 + j * 17) % 97) as f64 / 97.0);
    let b = DenseMatrix::from_fn(n, n, |i, j| ((i * 13 + j * 41) % 89) as f64 / 89.0);
    let mut c = DenseMatrix::zeros(n, n);
    let secs = with_pool(threads, || calibrated_best(|| gemm_blocked(&a, &b, &mut c)));
    gemm_flops(n, n, n) as f64 / secs / 1e9
}

fn bench_spmv(threads: usize) -> f64 {
    let a = build_hpcg_matrix(24, 24, 24);
    let x: Vec<f64> = (0..a.n).map(|i| (i as f64).sin()).collect();
    let mut y = vec![0.0; a.n];
    let secs = with_pool(threads, || calibrated_best(|| a.spmv(&x, &mut y)));
    (2 * a.nnz()) as f64 / secs / 1e9
}

fn bench_spmv_stencil(threads: usize) -> f64 {
    let a = StencilMatrix::hpcg(24, 24, 24);
    let x: Vec<f64> = (0..a.n).map(|i| (i as f64).sin()).collect();
    let mut y = vec![0.0; a.n];
    let secs = with_pool(threads, || calibrated_best(|| a.spmv(&x, &mut y)));
    (2 * a.nnz()) as f64 / secs / 1e9
}

fn bench_stencil(threads: usize) -> f64 {
    let mut grid = OceanGrid::with_bump(512, 256);
    // Bytes per step is a pure function of the grid size.
    let (_, bytes) = grid.step(1.0, 1000.0);
    let secs = with_pool(threads, || {
        calibrated_best(|| {
            grid.step(1.0, 1000.0);
        })
    });
    bytes as f64 / secs / 1e9
}

fn bench_md(threads: usize) -> f64 {
    let mut sys = LjSystem::cubic_lattice(12, 0.8, 42);
    // Positions never move here, so the flop count is call-invariant.
    let (_, flops) = sys.compute_forces();
    let secs = with_pool(threads, || {
        calibrated_best(|| {
            sys.compute_forces();
        })
    });
    flops as f64 / secs / 1e9
}

fn topo_label(t: &TofuD) -> String {
    format!("TofuD {:?} ({} nodes)", t.dims, t.nodes())
}

/// Route-cost resolutions per second through [`Network::path_cost`] over
/// every ordered pair — the operation `message_time` performs per message.
/// With the routing table built this is the O(1) fast path; on a fresh
/// network it falls back to the pre-change direct computation, which is
/// what makes it the in-situ baseline.
fn bench_resolve_rate(net: &Network<TofuD>) -> f64 {
    let n = net.topology().nodes();
    let reps = 20;
    let secs = time_best(|| {
        let mut hop_sink = 0u64;
        let mut share_sink = 0.0f64;
        for _ in 0..reps {
            for a in 0..n {
                for b in 0..n {
                    if a != b {
                        let c = net.path_cost(NodeId(a), NodeId(b));
                        hop_sink = hop_sink.wrapping_add(c.hops as u64);
                        share_sink += c.sharing;
                    }
                }
            }
        }
        std::hint::black_box((hop_sink, share_sink));
    });
    (reps * n * (n - 1)) as f64 / secs
}

/// Step-enumeration rate: walk the non-allocating step iterator over every
/// ordered pair of the CTE-Arm torus, repeated enough to dominate timer
/// noise. Uses the same decode-free constructor the all-pairs sweeps use.
fn bench_route_enum_rate(topo: &TofuD) -> f64 {
    let n = topo.nodes();
    let reps = 20;
    let secs = time_best(|| {
        let mut sink = 0u64;
        for _ in 0..reps {
            for s in 0..n {
                let src = NodeId(s);
                let sc = topo.coords(src);
                let mut dc = [0usize; DIMS];
                for r in 0..n {
                    if r != s {
                        sink = RouteSteps::from_coords(topo, src, sc, dc)
                            .fold(sink, |acc, step| acc.wrapping_add(step.to.index() as u64));
                    }
                    topo.advance_coords(&mut dc);
                }
            }
        }
        std::hint::black_box(sink);
    });
    (reps * n * (n - 1)) as f64 / secs
}

/// Microseconds to build the memoized distance/sharing table.
fn bench_table_build(topo: &TofuD) -> f64 {
    time_best(|| {
        std::hint::black_box(RoutingTable::build(topo));
    }) * 1e6
}

/// Folded-table resolutions per second: stream the all-pairs decode loop
/// (two array reads + unpack per ordered pair, self-pairs included) over a
/// table that fits in cache, repeated to dominate timer noise.
fn bench_folded_resolve_rate(topo: &TofuD) -> f64 {
    let t = FoldedTable::build(topo);
    let n = t.nodes();
    let reps = 200;
    let secs = time_best(|| {
        let mut sink = 0u64;
        for _ in 0..reps {
            sink = sink.wrapping_add(t.checksum_all_pairs());
        }
        std::hint::black_box(sink);
    });
    (reps * n * n) as f64 / secs
}

/// Closed-form uniform-traffic sweep wall time (ms): per-link loads with
/// max/mean plus the machine-wide mean hop distance.
fn bench_closed_sweep(topo: &TofuD) -> f64 {
    time_best(|| {
        let load = interconnect::sweep::uniform_link_load(topo);
        let hops = interconnect::sweep::uniform_mean_hops(topo);
        std::hint::black_box((load, hops));
    }) * 1e3
}

/// All-pairs link-load sweep wall time (ms) under a pool of `threads`.
fn bench_sweep(topo: &TofuD, threads: usize) -> f64 {
    with_pool(threads, || {
        let mut best = f64::INFINITY;
        for _ in 0..2 {
            let t0 = Instant::now();
            let load = all_pairs_loads(topo);
            std::hint::black_box(load.max_mean());
            best = best.min(t0.elapsed().as_secs_f64());
        }
        best * 1e3
    })
}

/// Measure the interconnect fast path on the 192-node CTE-Arm torus:
/// per-message cost resolution before (direct fallback) and after (memoized
/// table) the fast path, step enumeration, table construction, and the
/// all-pairs link-load sweep on a 1536-node TofuD at 1 worker vs. the full
/// pool.
pub fn run_network_bench(pool_threads: usize) -> NetworkBench {
    let small = TofuD::cte_arm();
    let big = TofuD::with_dims([8, 4, 4, 2, 3, 2], [true, true, true, false, true, false]);
    // 10 368 nodes: the smallest row past the ISSUE's 10k sweep target.
    let tenk = TofuD::with_dims([12, 12, 6, 2, 3, 2], [true, true, true, false, true, false]);
    let fugaku = crate::faults::fugaku_topo();
    // Two networks over the same topology: one left table-less so
    // `path_cost` runs the pre-change direct computation, one with the
    // memoized table the production path uses.
    let direct = Network::new(TofuD::cte_arm(), LinkModel::tofud());
    let cached = Network::new(TofuD::cte_arm(), LinkModel::tofud());
    cached.routing_table();
    let folded_build_ms = time_best(|| {
        std::hint::black_box(FoldedTable::build(&fugaku));
    }) * 1e3;
    NetworkBench {
        route_topology: topo_label(&small),
        routes_per_sec: bench_resolve_rate(&cached),
        baseline_routes_per_sec: bench_resolve_rate(&direct),
        route_enum_per_sec: bench_route_enum_rate(&small),
        table_build_us: bench_table_build(&small),
        sweep_topology: topo_label(&big),
        sweep_ms_1t: bench_sweep(&big, 1),
        sweep_ms_nt: bench_sweep(&big, pool_threads),
        folded_topology: topo_label(&fugaku),
        folded_routes_per_sec: bench_folded_resolve_rate(&small),
        folded_build_ms,
        folded_table_bytes: FoldedTable::build(&fugaku).memory_bytes(),
        sweep_10k_topology: topo_label(&tenk),
        sweep_10k_closed_ms: bench_closed_sweep(&tenk),
        fugaku_sweep_closed_ms: bench_closed_sweep(&fugaku),
    }
}

/// Measure the structure-aware HPCG engine on a 32³ grid: both SpMV
/// formats (same operator, same flops — only the stored format differs),
/// both SymGS smoothers, and the 4-level V-cycle at 1 worker vs. the pool.
pub fn run_hpcg_bench(pool_threads: usize) -> HpcgBench {
    let (nx, ny, nz) = (32, 32, 32);
    let csr = build_hpcg_matrix(nx, ny, nz);
    let st = StencilMatrix::hpcg(nx, ny, nz);
    let n = st.n;
    let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
    let b = vec![1.0; n];
    let mut y = vec![0.0; n];

    let spmv_csr_secs = with_pool(pool_threads, || calibrated_best(|| csr.spmv(&x, &mut y)));
    let spmv_st_secs = with_pool(pool_threads, || calibrated_best(|| st.spmv(&x, &mut y)));
    let flops = (2 * csr.nnz()) as f64;

    // Sweeps/s: the sequential lexicographic oracle vs. the parallel
    // multicolor smoother (same operator; the guess vector lives outside
    // the timed region and per-sweep cost is value-independent).
    let mut xs = vec![0.0; n];
    let symgs_seq_secs = calibrated_best(|| symgs(&csr, &b, &mut xs));
    xs.fill(0.0);
    let symgs_col_secs = with_pool(pool_threads, || {
        calibrated_best(|| st.symgs_colored(&b, &mut xs))
    });

    let h = MgHierarchy::build(nx, ny, nz, 4);
    let mut xv = vec![0.0; n];
    let mut vcycle_ms = |threads: usize| {
        with_pool(threads, || {
            calibrated_best(|| {
                xv.fill(0.0);
                h.v_cycle(&b, &mut xv);
            }) * 1e3
        })
    };
    let vcycle_ms_1t = vcycle_ms(1);
    let vcycle_ms_nt = vcycle_ms(pool_threads);

    HpcgBench {
        grid: format!("{nx}x{ny}x{nz}"),
        spmv_csr_gflops: flops / spmv_csr_secs / 1e9,
        spmv_csr_gbs_dram_floor: spmv_csr_bytes(n, csr.nnz()) / spmv_csr_secs / 1e9,
        spmv_csr_gbs_moved: spmv_csr_moved_bytes(n, csr.nnz()) / spmv_csr_secs / 1e9,
        spmv_stencil_gflops: flops / spmv_st_secs / 1e9,
        spmv_stencil_gbs_dram_floor: spmv_stencil_bytes(n) / spmv_st_secs / 1e9,
        spmv_stencil_gbs_moved: spmv_stencil_moved_bytes(n) / spmv_st_secs / 1e9,
        symgs_seq_sweeps_per_sec: 1.0 / symgs_seq_secs,
        symgs_colored_sweeps_per_sec: 1.0 / symgs_col_secs,
        vcycle_ms_1t,
        vcycle_ms_nt,
    }
}

/// Measure the six host kernels at 1 thread and at `pool_threads`.
///
/// Factored out of [`run_host_bench`] so the `bench-delta` regression
/// gate can run just the kernel rows (twice, cheaply) without paying for
/// the network and HPCG sections.
pub fn run_kernel_benches(pool_threads: usize) -> Vec<KernelBench> {
    let runs: Vec<(&'static str, &'static str, String, BenchFn)> = vec![
        (
            "stream_triad",
            "GB/s",
            "n=2000000 f64 elements".into(),
            bench_stream,
        ),
        (
            "gemm_blocked",
            "GFLOP/s",
            "192x192x192 packed tiles".into(),
            bench_gemm,
        ),
        (
            "spmv_csr",
            "GFLOP/s",
            "HPCG 24x24x24 27-point, 20 reps".into(),
            bench_spmv,
        ),
        (
            "spmv_stencil",
            "GFLOP/s",
            "HPCG 24x24x24 stencil-packed, 20 reps".into(),
            bench_spmv_stencil,
        ),
        (
            "stencil_ocean",
            "GB/s",
            "512x256 shallow-water, 10 steps".into(),
            bench_stencil,
        ),
        (
            "md_forces",
            "GFLOP/s",
            "1728 LJ particles, cell list".into(),
            bench_md,
        ),
    ];
    runs.into_iter()
        .map(|(name, metric, size, f)| {
            let value_1t = f(1);
            // On a 1-wide pool the "N-thread" leg is the same measurement;
            // skip the duplicate run (the JSON suppresses the column too).
            let value_nt = if pool_threads > 1 {
                f(pool_threads)
            } else {
                value_1t
            };
            KernelBench {
                name,
                metric,
                size,
                value_1t,
                value_nt,
            }
        })
        .collect()
}

/// Measure every kernel at 1 thread and at the configured pool width.
pub fn run_host_bench() -> HostBench {
    let pool_threads = rayon::current_num_threads();
    let detected_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let rayon_threads_env = std::env::var("RAYON_NUM_THREADS").ok();
    if pool_threads > detected_cores {
        eprintln!(
            "warning: pool of {pool_threads} threads oversubscribes the \
             {detected_cores} detected core(s); N-thread numbers will be noisy"
        );
    }
    HostBench {
        detected_cores,
        pool_threads,
        rayon_threads_env,
        kernels: run_kernel_benches(pool_threads),
        network: run_network_bench(pool_threads),
        hpcg: run_hpcg_bench(pool_threads),
    }
}

impl HostBench {
    /// Render as pretty-printed JSON (the `BENCH_host.json` format).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"host\": {\n");
        out.push_str(&format!(
            "    \"detected_cores\": {},\n",
            self.detected_cores
        ));
        out.push_str(&format!("    \"pool_threads\": {},\n", self.pool_threads));
        out.push_str(&format!(
            "    \"rayon_num_threads_env\": {}\n",
            match &self.rayon_threads_env {
                Some(v) => format!("\"{v}\""),
                None => "null".into(),
            }
        ));
        out.push_str("  },\n");
        out.push_str("  \"kernels\": [\n");
        for (i, k) in self.kernels.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"name\": \"{}\",\n", k.name));
            out.push_str(&format!("      \"metric\": \"{}\",\n", k.metric));
            out.push_str(&format!("      \"size\": \"{}\",\n", k.size));
            out.push_str(&format!("      \"value_1_thread\": {:.3},\n", k.value_1t));
            // A 1-wide pool has no distinct N-thread leg: emitting
            // `value_1_threads` next to `value_1_thread` and a "speedup"
            // of noise/noise made the committed snapshot lie. Suppress the
            // column and null the ratio instead.
            if self.pool_threads > 1 {
                out.push_str(&format!(
                    "      \"value_{}_threads\": {:.3},\n",
                    self.pool_threads, k.value_nt
                ));
                out.push_str(&format!("      \"speedup\": {:.3}\n", k.speedup()));
            } else {
                out.push_str("      \"speedup\": null\n");
            }
            out.push_str(if i + 1 < self.kernels.len() {
                "    },\n"
            } else {
                "    }\n"
            });
        }
        out.push_str("  ],\n");
        let hp = &self.hpcg;
        out.push_str("  \"hpcg\": {\n");
        out.push_str(&format!("    \"grid\": \"{}\",\n", hp.grid));
        out.push_str(&format!(
            "    \"spmv_csr_gflops\": {:.3},\n",
            hp.spmv_csr_gflops
        ));
        out.push_str(&format!(
            "    \"spmv_csr_gbs_dram_floor\": {:.3},\n",
            hp.spmv_csr_gbs_dram_floor
        ));
        out.push_str(&format!(
            "    \"spmv_csr_gbs_moved\": {:.3},\n",
            hp.spmv_csr_gbs_moved
        ));
        out.push_str(&format!(
            "    \"spmv_stencil_gflops\": {:.3},\n",
            hp.spmv_stencil_gflops
        ));
        out.push_str(&format!(
            "    \"spmv_stencil_gbs_dram_floor\": {:.3},\n",
            hp.spmv_stencil_gbs_dram_floor
        ));
        out.push_str(&format!(
            "    \"spmv_stencil_gbs_moved\": {:.3},\n",
            hp.spmv_stencil_gbs_moved
        ));
        out.push_str(&format!(
            "    \"spmv_format_speedup\": {:.3},\n",
            hp.spmv_format_speedup()
        ));
        out.push_str(&format!(
            "    \"symgs_seq_sweeps_per_sec\": {:.1},\n",
            hp.symgs_seq_sweeps_per_sec
        ));
        out.push_str(&format!(
            "    \"symgs_colored_sweeps_per_sec\": {:.1},\n",
            hp.symgs_colored_sweeps_per_sec
        ));
        out.push_str(&format!(
            "    \"symgs_speedup\": {:.3},\n",
            hp.symgs_speedup()
        ));
        out.push_str(&format!(
            "    \"vcycle_wall_ms_1_thread\": {:.2},\n",
            hp.vcycle_ms_1t
        ));
        if self.pool_threads > 1 {
            out.push_str(&format!(
                "    \"vcycle_wall_ms_{}_threads\": {:.2},\n",
                self.pool_threads, hp.vcycle_ms_nt
            ));
            out.push_str(&format!(
                "    \"vcycle_speedup\": {:.3}\n",
                hp.vcycle_speedup()
            ));
        } else {
            out.push_str("    \"vcycle_speedup\": null\n");
        }
        out.push_str("  },\n");
        let nw = &self.network;
        out.push_str("  \"network\": {\n");
        out.push_str(&format!(
            "    \"route_topology\": \"{}\",\n",
            nw.route_topology
        ));
        out.push_str(&format!(
            "    \"routes_per_sec\": {:.0},\n",
            nw.routes_per_sec
        ));
        out.push_str(&format!(
            "    \"baseline_routes_per_sec\": {:.0},\n",
            nw.baseline_routes_per_sec
        ));
        out.push_str(&format!(
            "    \"resolve_speedup\": {:.3},\n",
            nw.resolve_speedup()
        ));
        out.push_str(&format!(
            "    \"route_enum_per_sec\": {:.0},\n",
            nw.route_enum_per_sec
        ));
        out.push_str(&format!(
            "    \"table_build_us\": {:.1},\n",
            nw.table_build_us
        ));
        out.push_str(&format!(
            "    \"sweep_topology\": \"{}\",\n",
            nw.sweep_topology
        ));
        out.push_str(&format!(
            "    \"sweep_wall_ms_1_thread\": {:.1},\n",
            nw.sweep_ms_1t
        ));
        if self.pool_threads > 1 {
            out.push_str(&format!(
                "    \"sweep_wall_ms_{}_threads\": {:.1},\n",
                self.pool_threads, nw.sweep_ms_nt
            ));
            out.push_str(&format!(
                "    \"sweep_speedup\": {:.3},\n",
                nw.sweep_speedup()
            ));
        } else {
            out.push_str("    \"sweep_speedup\": null,\n");
        }
        out.push_str(&format!(
            "    \"folded_topology\": \"{}\",\n",
            nw.folded_topology
        ));
        out.push_str(&format!(
            "    \"folded_routes_per_sec\": {:.0},\n",
            nw.folded_routes_per_sec
        ));
        out.push_str(&format!(
            "    \"folded_build_ms\": {:.1},\n",
            nw.folded_build_ms
        ));
        out.push_str(&format!(
            "    \"folded_table_bytes\": {},\n",
            nw.folded_table_bytes
        ));
        out.push_str(&format!(
            "    \"sweep_10k_topology\": \"{}\",\n",
            nw.sweep_10k_topology
        ));
        out.push_str(&format!(
            "    \"sweep_10k_closed_ms\": {:.2},\n",
            nw.sweep_10k_closed_ms
        ));
        out.push_str(&format!(
            "    \"fugaku_sweep_closed_ms\": {:.2}\n",
            nw.fugaku_sweep_closed_ms
        ));
        out.push_str("  }\n}\n");
        out
    }

    /// [`Self::to_json`] with an extra pre-rendered top-level section
    /// spliced in before the closing brace (e.g. the deterministic
    /// `"cache"` block from the cache-model predictor, which is not a
    /// host measurement and so does not live in the struct).
    pub fn to_json_with(&self, extra_section: &str) -> String {
        let base = self.to_json();
        let trimmed = base
            .trim_end()
            .strip_suffix('}')
            .expect("to_json always closes the object")
            .trim_end();
        format!("{trimmed},\n{extra_section}\n}}\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_network() -> NetworkBench {
        NetworkBench {
            route_topology: "TofuD [4, 2, 2, 2, 3, 2] (192 nodes)".into(),
            routes_per_sec: 5.0e7,
            baseline_routes_per_sec: 1.0e7,
            route_enum_per_sec: 2.0e7,
            table_build_us: 120.0,
            sweep_topology: "TofuD [8, 4, 4, 2, 3, 2] (1536 nodes)".into(),
            sweep_ms_1t: 200.0,
            sweep_ms_nt: 50.0,
            folded_topology: "TofuD [24, 23, 24, 2, 3, 2] (158976 nodes)".into(),
            folded_routes_per_sec: 1.5e9,
            folded_build_ms: 40.0,
            folded_table_bytes: 9_582_978,
            sweep_10k_topology: "TofuD [12, 12, 6, 2, 3, 2] (10368 nodes)".into(),
            sweep_10k_closed_ms: 1.25,
            fugaku_sweep_closed_ms: 18.5,
        }
    }

    fn sample_hpcg() -> HpcgBench {
        HpcgBench {
            grid: "32x32x32".into(),
            spmv_csr_gflops: 2.0,
            spmv_csr_gbs_dram_floor: 18.0,
            spmv_csr_gbs_moved: 26.0,
            spmv_stencil_gflops: 6.0,
            spmv_stencil_gbs_dram_floor: 3.0,
            spmv_stencil_gbs_moved: 42.0,
            symgs_seq_sweeps_per_sec: 100.0,
            symgs_colored_sweeps_per_sec: 250.0,
            vcycle_ms_1t: 40.0,
            vcycle_ms_nt: 10.0,
        }
    }

    #[test]
    fn json_shape_is_well_formed() {
        let hb = HostBench {
            detected_cores: 4,
            pool_threads: 4,
            rayon_threads_env: None,
            kernels: vec![KernelBench {
                name: "stream_triad",
                metric: "GB/s",
                size: "n=10".into(),
                value_1t: 10.0,
                value_nt: 30.0,
            }],
            network: sample_network(),
            hpcg: sample_hpcg(),
        };
        let j = hb.to_json();
        assert!(j.contains("\"detected_cores\": 4"));
        assert!(j.contains("\"rayon_num_threads_env\": null"));
        assert!(j.contains("\"value_4_threads\": 30.000"));
        assert!(j.contains("\"speedup\": 3.000"));
        assert!(j.contains("\"routes_per_sec\": 50000000"));
        assert!(j.contains("\"baseline_routes_per_sec\": 10000000"));
        assert!(j.contains("\"resolve_speedup\": 5.000"));
        assert!(j.contains("\"route_enum_per_sec\": 20000000"));
        assert!(j.contains("\"sweep_wall_ms_4_threads\": 50.0"));
        assert!(j.contains("\"sweep_speedup\": 4.000"));
        assert!(j.contains("\"folded_routes_per_sec\": 1500000000"));
        assert!(j.contains("\"folded_build_ms\": 40.0"));
        assert!(j.contains("\"folded_table_bytes\": 9582978"));
        assert!(j.contains("\"sweep_10k_closed_ms\": 1.25"));
        assert!(j.contains("\"fugaku_sweep_closed_ms\": 18.50"));
        assert!(j.contains("\"hpcg\": {"));
        assert!(j.contains("\"grid\": \"32x32x32\""));
        assert!(j.contains("\"spmv_csr_gbs_dram_floor\": 18.000"));
        assert!(j.contains("\"spmv_csr_gbs_moved\": 26.000"));
        assert!(j.contains("\"spmv_stencil_gbs_dram_floor\": 3.000"));
        assert!(j.contains("\"spmv_stencil_gbs_moved\": 42.000"));
        assert!(j.contains("\"spmv_format_speedup\": 3.000"));
        assert!(j.contains("\"symgs_speedup\": 2.500"));
        assert!(j.contains("\"vcycle_wall_ms_4_threads\": 10.00"));
        assert!(j.contains("\"vcycle_speedup\": 4.000"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn single_thread_pool_suppresses_speedup_columns() {
        // Regression for the committed 1-core snapshot: the JSON printed
        // `value_1_thread` AND `value_1_threads` per kernel plus a
        // "speedup" that was pure measurement noise. A 1-wide pool must
        // emit one value column and null ratios.
        let hb = HostBench {
            detected_cores: 1,
            pool_threads: 1,
            rayon_threads_env: None,
            kernels: vec![KernelBench {
                name: "stream_triad",
                metric: "GB/s",
                size: "n=10".into(),
                value_1t: 10.0,
                value_nt: 10.0,
            }],
            network: sample_network(),
            hpcg: sample_hpcg(),
        };
        let j = hb.to_json();
        assert!(j.contains("\"value_1_thread\": 10.000"));
        assert!(!j.contains("\"value_1_threads\""));
        assert!(j.contains("\"speedup\": null"));
        assert!(!j.contains("\"vcycle_wall_ms_1_threads\""));
        assert!(j.contains("\"vcycle_speedup\": null"));
        assert!(!j.contains("\"sweep_wall_ms_1_threads\""));
        assert!(j.contains("\"sweep_speedup\": null"));
        // The scale rows are thread-count-independent and stay.
        assert!(j.contains("\"folded_table_bytes\": 9582978"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn rayon_env_override_is_quoted() {
        let hb = HostBench {
            detected_cores: 8,
            pool_threads: 2,
            rayon_threads_env: Some("2".into()),
            kernels: vec![],
            network: sample_network(),
            hpcg: sample_hpcg(),
        };
        assert!(hb.to_json().contains("\"rayon_num_threads_env\": \"2\""));
    }

    #[test]
    fn hpcg_ratios_handle_zero_denominators() {
        let mut hp = sample_hpcg();
        assert_eq!(hp.spmv_format_speedup(), 3.0);
        assert_eq!(hp.symgs_speedup(), 2.5);
        assert_eq!(hp.vcycle_speedup(), 4.0);
        hp.spmv_csr_gflops = 0.0;
        hp.symgs_seq_sweeps_per_sec = 0.0;
        hp.vcycle_ms_nt = 0.0;
        assert_eq!(hp.spmv_format_speedup(), 0.0);
        assert_eq!(hp.symgs_speedup(), 0.0);
        assert_eq!(hp.vcycle_speedup(), 0.0);
    }

    #[test]
    fn sweep_speedup_handles_zero_denominator() {
        let mut nw = sample_network();
        assert_eq!(nw.sweep_speedup(), 4.0);
        nw.sweep_ms_nt = 0.0;
        assert_eq!(nw.sweep_speedup(), 0.0);
    }

    #[test]
    fn resolve_speedup_handles_zero_baseline() {
        let mut nw = sample_network();
        assert_eq!(nw.resolve_speedup(), 5.0);
        nw.baseline_routes_per_sec = 0.0;
        assert_eq!(nw.resolve_speedup(), 0.0);
    }

    #[test]
    fn spmv_moved_gbs_is_format_comparable() {
        // Regression for the old report: dividing the stencil kernel's
        // time by its tiny model-byte count printed ~1 GB/s against CSR's
        // ~17 GB/s for a *faster* kernel. The moved-byte columns must put
        // both formats in the same band.
        let hp = run_hpcg_bench(2);
        assert!(
            hp.spmv_stencil_gflops > 0.0 && hp.spmv_csr_gflops > 0.0,
            "bench must produce nonzero rates"
        );
        let ratio = hp.spmv_stencil_gbs_moved / hp.spmv_csr_gbs_moved;
        assert!(
            ratio > 0.2 && ratio < 5.0,
            "moved-GB/s ratio stencil/CSR out of band: {ratio}"
        );
        // The faster format must never report less moved traffic per
        // second than it reports arithmetic — sanity tie between columns.
        assert!(hp.spmv_stencil_gbs_moved > hp.spmv_stencil_gbs_dram_floor);
    }

    fn sample_serve() -> ServeBench {
        ServeBench {
            requests: 10,
            queries: 50,
            jobs: 2,
            cold_batch_ms: 800.0,
            warm_batch_ms: 2.0,
            cold_misses: 45,
            warm_disk_hits: 45,
            warm_mem_hits: 5,
            warm_misses: 0,
            inflight_dedupe_misses: 1,
        }
    }

    #[test]
    fn serve_section_carries_every_key() {
        let s = sample_serve().to_json_section();
        for key in [
            "\"serve\": {",
            "\"batch\": \"tests/data/serve_batch_50.jsonl\"",
            "\"requests\": 10",
            "\"queries\": 50",
            "\"jobs\": 2",
            "\"cold_batch_ms\": 800.00",
            "\"warm_batch_ms\": 2.00",
            "\"warm_speedup\": 400.0",
            "\"cold_misses\": 45",
            "\"warm_disk_hits\": 45",
            "\"warm_mem_hits\": 5",
            "\"warm_misses\": 0",
            "\"inflight_dedupe_misses\": 1",
        ] {
            assert!(s.contains(key), "serve section missing {key}:\n{s}");
        }
        assert_eq!(s.matches('{').count(), s.matches('}').count());
    }

    #[test]
    fn serve_section_splices_into_the_snapshot() {
        let hb = HostBench {
            detected_cores: 4,
            pool_threads: 4,
            rayon_threads_env: None,
            kernels: vec![],
            network: sample_network(),
            hpcg: sample_hpcg(),
        };
        let j = hb.to_json_with(&sample_serve().to_json_section());
        assert!(j.contains("\"serve\": {"));
        assert!(j.trim_end().ends_with('}'));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn warm_speedup_handles_zero_denominator() {
        let mut s = sample_serve();
        assert_eq!(s.warm_speedup(), 400.0);
        s.warm_batch_ms = 0.0;
        assert_eq!(s.warm_speedup(), 0.0);
    }

    #[test]
    fn serve_bench_measures_the_canned_batch() {
        // The real thing, at jobs=2: the warm replay must be engine-free
        // and the duplicate pair must cost one miss.
        let sb = run_serve_bench(2);
        assert_eq!((sb.requests, sb.queries), (10, 50));
        assert_eq!(sb.cold_misses, 45, "unique-query count drifted");
        assert_eq!(sb.warm_misses, 0, "warm replay reached the engine");
        assert!(sb.warm_disk_hits > 0, "warm replay never touched the store");
        assert_eq!(sb.inflight_dedupe_misses, 1, "single-flight dedupe broke");
        assert!(sb.cold_batch_ms > 0.0 && sb.warm_batch_ms > 0.0);
    }

    fn sample_sched() -> SchedBench {
        SchedBench {
            machine: "fugaku".into(),
            nodes: 158_976,
            days: 3,
            jobs_per_day: 40_000,
            jobs: 120_000,
            wall_s: 2.5,
            jobs_per_sec: 48_000.0,
            makespan_s: 262_000.0,
            utilization: 0.71,
            mean_wait_s: 310.0,
            mean_compactness: 5.125,
        }
    }

    #[test]
    fn sched_section_carries_every_key() {
        let s = sample_sched().to_json_section();
        for key in [
            "\"sched\": {",
            "\"machine\": \"fugaku\"",
            "\"nodes\": 158976",
            "\"days\": 3",
            "\"jobs_per_day\": 40000",
            "\"jobs\": 120000",
            "\"wall_s\": 2.500",
            "\"jobs_per_sec\": 48000",
            "\"makespan_s\": 262000",
            "\"utilization\": 0.7100",
            "\"mean_wait_s\": 310.0",
            "\"mean_compactness\": 5.125",
        ] {
            assert!(s.contains(key), "sched section missing {key}:\n{s}");
        }
        assert_eq!(s.matches('{').count(), s.matches('}').count());
    }

    #[test]
    fn sched_section_splices_next_to_serve() {
        // bench-all splices cache, serve and sched as siblings; the
        // combined extra must keep the JSON balanced.
        let hb = HostBench {
            detected_cores: 4,
            pool_threads: 4,
            rayon_threads_env: None,
            kernels: vec![],
            network: sample_network(),
            hpcg: sample_hpcg(),
        };
        let extra = format!(
            "{},\n{}",
            sample_serve().to_json_section(),
            sample_sched().to_json_section()
        );
        let j = hb.to_json_with(&extra);
        assert!(j.contains("\"serve\": {"));
        assert!(j.contains("\"sched\": {"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn speedup_handles_zero_baseline() {
        let k = KernelBench {
            name: "x",
            metric: "GB/s",
            size: String::new(),
            value_1t: 0.0,
            value_nt: 5.0,
        };
        assert_eq!(k.speedup(), 0.0);
    }
}
