//! Host micro-benchmarks for the kernel runtime (`bench-all --json`).
//!
//! Unlike the experiment registry — which reproduces the *paper's* A64FX
//! numbers from analytic machine models — this module measures what the
//! rewritten parallel runtime actually delivers on the machine running the
//! binary: per-kernel GB/s or GFLOP/s with 1 worker thread and with the
//! full configured pool, plus the resulting speedup. The output is the
//! committed `BENCH_host.json` snapshot (regenerate it with
//! `cluster-eval bench-all --json > BENCH_host.json` — the recorded
//! `host.cores` field says what hardware a snapshot came from, so numbers
//! from a 1-core CI container and a 48-core A64FX node are never confused).
//!
//! Every measurement is best-of-`TRIALS` wall time over a fixed problem
//! size; the kernels themselves are the real `crates/kernels`
//! implementations, so these numbers move when the runtime or the kernels
//! do.

use kernels::cg::build_hpcg_matrix;
use kernels::gemm::{gemm_blocked, gemm_flops};
use kernels::matrix::DenseMatrix;
use kernels::md::LjSystem;
use kernels::stencil::OceanGrid;
use kernels::stream::{measure_bandwidth, StreamArrays, StreamKernel};
use std::time::Instant;

/// Best-of trials per measurement.
const TRIALS: usize = 3;

/// A kernel measurement entry point: thread count in, throughput out.
type BenchFn = fn(usize) -> f64;

/// One kernel's measurement at both thread settings.
#[derive(Debug, Clone)]
pub struct KernelBench {
    /// Kernel name (`stream_triad`, `gemm_blocked`, …).
    pub name: &'static str,
    /// Unit of `value_1t` / `value_nt` (`GB/s` or `GFLOP/s`).
    pub metric: &'static str,
    /// Problem-size note for the record (e.g. `n=2000000`).
    pub size: String,
    /// Throughput with a single worker thread.
    pub value_1t: f64,
    /// Throughput with the full configured pool.
    pub value_nt: f64,
}

impl KernelBench {
    /// `value_nt / value_1t`.
    pub fn speedup(&self) -> f64 {
        if self.value_1t > 0.0 {
            self.value_nt / self.value_1t
        } else {
            0.0
        }
    }
}

/// The full host snapshot.
#[derive(Debug, Clone)]
pub struct HostBench {
    /// Cores the OS reports (`available_parallelism`).
    pub host_cores: usize,
    /// Worker threads the "N-thread" column used.
    pub pool_threads: usize,
    /// Per-kernel measurements.
    pub kernels: Vec<KernelBench>,
}

fn time_best<F: FnMut()>(mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..TRIALS {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Run `measure` under a pool fixed to `threads` workers.
fn with_pool<R>(threads: usize, measure: impl FnOnce() -> R) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool construction is infallible")
        .install(measure)
}

fn bench_stream(threads: usize) -> f64 {
    let mut arrays = StreamArrays::new(2_000_000);
    with_pool(threads, || {
        measure_bandwidth(&mut arrays, StreamKernel::Triad, TRIALS, true)
    })
}

fn bench_gemm(threads: usize) -> f64 {
    let n = 192;
    let a = DenseMatrix::from_fn(n, n, |i, j| ((i * 31 + j * 17) % 97) as f64 / 97.0);
    let b = DenseMatrix::from_fn(n, n, |i, j| ((i * 13 + j * 41) % 89) as f64 / 89.0);
    let mut c = DenseMatrix::zeros(n, n);
    let secs = with_pool(threads, || time_best(|| gemm_blocked(&a, &b, &mut c)));
    gemm_flops(n, n, n) as f64 / secs / 1e9
}

fn bench_spmv(threads: usize) -> f64 {
    let a = build_hpcg_matrix(24, 24, 24);
    let x: Vec<f64> = (0..a.n).map(|i| (i as f64).sin()).collect();
    let mut y = vec![0.0; a.n];
    let reps = 20;
    let secs = with_pool(threads, || {
        time_best(|| {
            for _ in 0..reps {
                a.spmv(&x, &mut y);
            }
        })
    });
    (2 * a.nnz() * reps) as f64 / secs / 1e9
}

fn bench_stencil(threads: usize) -> f64 {
    let mut grid = OceanGrid::with_bump(512, 256);
    let reps = 10;
    let mut bytes = 0u64;
    let secs = with_pool(threads, || {
        time_best(|| {
            bytes = 0;
            for _ in 0..reps {
                let (_, b) = grid.step(1.0, 1000.0);
                bytes += b;
            }
        })
    });
    bytes as f64 / secs / 1e9
}

fn bench_md(threads: usize) -> f64 {
    let mut sys = LjSystem::cubic_lattice(12, 0.8, 42);
    let mut flops = 0u64;
    let secs = with_pool(threads, || {
        time_best(|| {
            let (_, fl) = sys.compute_forces();
            flops = fl;
        })
    });
    flops as f64 / secs / 1e9
}

/// Measure every kernel at 1 thread and at the configured pool width.
pub fn run_host_bench() -> HostBench {
    let pool_threads = rayon::current_num_threads();
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let runs: Vec<(&'static str, &'static str, String, BenchFn)> = vec![
        (
            "stream_triad",
            "GB/s",
            "n=2000000 f64 elements".into(),
            bench_stream,
        ),
        (
            "gemm_blocked",
            "GFLOP/s",
            "192x192x192 packed tiles".into(),
            bench_gemm,
        ),
        (
            "spmv_csr",
            "GFLOP/s",
            "HPCG 24x24x24 27-point, 20 reps".into(),
            bench_spmv,
        ),
        (
            "stencil_ocean",
            "GB/s",
            "512x256 shallow-water, 10 steps".into(),
            bench_stencil,
        ),
        (
            "md_forces",
            "GFLOP/s",
            "1728 LJ particles, cell list".into(),
            bench_md,
        ),
    ];
    let kernels = runs
        .into_iter()
        .map(|(name, metric, size, f)| KernelBench {
            name,
            metric,
            size,
            value_1t: f(1),
            value_nt: f(pool_threads),
        })
        .collect();
    HostBench {
        host_cores,
        pool_threads,
        kernels,
    }
}

impl HostBench {
    /// Render as pretty-printed JSON (the `BENCH_host.json` format).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"host\": {\n");
        out.push_str(&format!("    \"cores\": {},\n", self.host_cores));
        out.push_str(&format!("    \"pool_threads\": {}\n", self.pool_threads));
        out.push_str("  },\n");
        out.push_str("  \"kernels\": [\n");
        for (i, k) in self.kernels.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"name\": \"{}\",\n", k.name));
            out.push_str(&format!("      \"metric\": \"{}\",\n", k.metric));
            out.push_str(&format!("      \"size\": \"{}\",\n", k.size));
            out.push_str(&format!("      \"value_1_thread\": {:.3},\n", k.value_1t));
            out.push_str(&format!(
                "      \"value_{}_threads\": {:.3},\n",
                self.pool_threads, k.value_nt
            ));
            out.push_str(&format!("      \"speedup\": {:.3}\n", k.speedup()));
            out.push_str(if i + 1 < self.kernels.len() {
                "    },\n"
            } else {
                "    }\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_well_formed() {
        let hb = HostBench {
            host_cores: 4,
            pool_threads: 4,
            kernels: vec![KernelBench {
                name: "stream_triad",
                metric: "GB/s",
                size: "n=10".into(),
                value_1t: 10.0,
                value_nt: 30.0,
            }],
        };
        let j = hb.to_json();
        assert!(j.contains("\"cores\": 4"));
        assert!(j.contains("\"value_4_threads\": 30.000"));
        assert!(j.contains("\"speedup\": 3.000"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn speedup_handles_zero_baseline() {
        let k = KernelBench {
            name: "x",
            metric: "GB/s",
            size: String::new(),
            value_1t: 0.0,
            value_nt: 5.0,
        };
        assert_eq!(k.speedup(), 0.0);
    }
}
