//! A minimal JSON reader/writer for the `serve` wire protocol.
//!
//! The workspace is dependency-free by policy (the vendored `serde` is a
//! binary codec, not a JSON one), and the serve protocol only needs flat
//! request objects, so a ~150-line recursive-descent parser is the whole
//! story. Numbers are kept as `f64` — the protocol's only numeric fields
//! are ids and node counts, both well inside the exact-integer range.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Sorted keys — the protocol never uses duplicate keys and
    /// responses are emitted by hand, so ordering here is irrelevant.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object field lookup (`None` on non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse one JSON document, requiring it to consume the whole input.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    Value::Str(s) => s,
                    other => return Err(format!("object key must be a string, got {other:?}")),
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                map.insert(key, parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut arr = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(arr));
            }
            loop {
                arr.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(arr));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(b, pos).map(Value::Str),
        Some(b't') => parse_lit(b, pos, "true").map(|_| Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false").map(|_| Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null").map(|_| Value::Null),
        Some(_) => parse_number(b, pos).map(Value::Num),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        *pos += 4;
                        // Surrogate pairs are not needed by the protocol;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("unknown escape '\\{}'", *other as char)),
                }
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences included).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|_| "invalid UTF-8")?;
                let ch = rest.chars().next().unwrap();
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

/// Escape `s` for embedding inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_protocol_shapes() {
        let v = parse(r#"{"id": 3, "queries": [{"app":"alya","nodes":16,"io":true}]}"#).unwrap();
        assert_eq!(v.get("id").unwrap().as_u64(), Some(3));
        let q = &v.get("queries").unwrap().as_array().unwrap()[0];
        assert_eq!(q.get("app").unwrap().as_str(), Some("alya"));
        assert_eq!(q.get("nodes").unwrap().as_u64(), Some(16));
        assert_eq!(q.get("io").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = parse(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA"));
        assert_eq!(escape("a\"b\\c\nd"), r#"a\"b\\c\nd"#);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} trailing").is_err());
        assert!(parse("{1: 2}").is_err());
    }

    #[test]
    fn numbers_and_literals() {
        assert_eq!(parse("-2.5e3").unwrap().as_f64(), Some(-2500.0));
        assert_eq!(parse("true").unwrap().as_bool(), Some(true));
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
    }
}
