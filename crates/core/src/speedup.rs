//! Table IV — the speedup summary of CTE-Arm relative to MareNostrum 4.
//!
//! Speedup > 1 means CTE-Arm is faster. `NP` marks configurations the
//! input set cannot run (memory); `N/A` marks node counts outside a
//! study's measured range, mirroring the paper's table.

use apps::alya::Alya;
use apps::common::Cluster;
use apps::gromacs::Gromacs;
use apps::nemo::Nemo;
use apps::openifs::OpenIfs;
use apps::wrf::Wrf;
use hpcg::{HpcgConfig, HpcgVersion};
use interconnect::link::LinkModel;
use simkit::cache::Cache;
use simkit::series::Table;

/// The node counts of Table IV's columns.
pub const NODE_COUNTS: [usize; 6] = [1, 16, 32, 64, 128, 192];

/// One Table-IV cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Cell {
    /// Speedup of CTE-Arm over MareNostrum 4 (MN4 time / CTE time).
    Speedup(f64),
    /// Not possible: the input does not fit in CTE-Arm's memory.
    NotPossible,
    /// Outside the study's measured range in the paper.
    NotAvailable,
}

impl Cell {
    /// Render like the paper.
    pub fn render(self) -> String {
        match self {
            Cell::Speedup(s) => format!("{s:.2}"),
            Cell::NotPossible => "NP".into(),
            Cell::NotAvailable => "N/A".into(),
        }
    }

    /// The numeric value, if any.
    pub fn value(self) -> Option<f64> {
        match self {
            Cell::Speedup(s) => Some(s),
            _ => None,
        }
    }
}

/// Compute one application row. `measured` restricts to the node counts
/// the paper actually ran (others become `N/A`).
fn row(name: &str, measured: &[usize], f: impl Fn(usize) -> Cell) -> (String, Vec<Cell>) {
    let cells = NODE_COUNTS
        .iter()
        .map(|&n| {
            if measured.contains(&n) {
                f(n)
            } else {
                Cell::NotAvailable
            }
        })
        .collect();
    (name.to_string(), cells)
}

/// Compute the full Table-IV matrix with a fresh cache.
pub fn speedup_cells() -> Vec<(String, Vec<Cell>)> {
    speedup_cells_cached(&Cache::new())
}

/// Compute the full Table-IV matrix, reusing sub-results from `cache` —
/// every cell revisits a run some figure's sweep already performed.
pub fn speedup_cells_cached(cache: &Cache) -> Vec<(String, Vec<Cell>)> {
    let mut rows = Vec::new();

    // LINPACK — measured at every column.
    rows.push(row("LINPACK", &NODE_COUNTS, |n| {
        let cte = arch::machines::cte_arm();
        let mn4 = arch::machines::marenostrum4();
        let gc = hpl::simulate_cached(
            cache,
            &cte,
            &LinkModel::tofud(),
            n,
            &hpl::paper_config(&cte, n),
        )
        .gflops;
        let gm = hpl::simulate_cached(
            cache,
            &mn4,
            &LinkModel::omnipath(),
            n,
            &hpl::paper_config(&mn4, n),
        )
        .gflops;
        Cell::Speedup(gc / gm)
    }));

    // HPCG — the paper ran 1 and 192 nodes.
    rows.push(row("HPCG", &[1, 192], |n| {
        let cfg = HpcgConfig::paper(HpcgVersion::Optimized);
        let gc = hpcg::simulate_cached(cache, &arch::machines::cte_arm(), n, &cfg).gflops;
        let gm = hpcg::simulate_cached(cache, &arch::machines::marenostrum4(), n, &cfg).gflops;
        Cell::Speedup(gc / gm)
    }));

    // Alya — measured 16–64; NP where TestCaseB does not fit on CTE-Arm.
    let alya = Alya::test_case_b();
    rows.push(row("Alya", &[1, 16, 32, 64], |n| {
        if n < alya.min_nodes(Cluster::CteArm) {
            return Cell::NotPossible;
        }
        let tc = alya.simulate_cached(cache, Cluster::CteArm, n).elapsed;
        let tm = alya
            .simulate_cached(cache, Cluster::MareNostrum4, n)
            .elapsed;
        Cell::Speedup(tm / tc)
    }));

    // OpenIFS — 1 node uses TL255L91; 16 nodes is NP for TC0511L91;
    // 32–128 use TC0511L91.
    rows.push(row("OpenIFS", &[1, 16, 32, 64, 128], |n| {
        if n == 1 {
            let input = OpenIfs::tl255l91();
            let tc = input.simulate_cached(cache, Cluster::CteArm, 1).elapsed;
            let tm = input
                .simulate_cached(cache, Cluster::MareNostrum4, 1)
                .elapsed;
            return Cell::Speedup(tm / tc);
        }
        let input = OpenIfs::tc0511l91();
        if n < input.min_nodes(Cluster::CteArm) {
            return Cell::NotPossible;
        }
        let tc = input.simulate_cached(cache, Cluster::CteArm, n).elapsed;
        let tm = input
            .simulate_cached(cache, Cluster::MareNostrum4, n)
            .elapsed;
        Cell::Speedup(tm / tc)
    }));

    // Gromacs — measured at every column.
    let gromacs = Gromacs::lignocellulose_rf();
    rows.push(row("Gromacs", &NODE_COUNTS, |n| {
        let tc = gromacs.simulate_cached(cache, Cluster::CteArm, n).elapsed;
        let tm = gromacs
            .simulate_cached(cache, Cluster::MareNostrum4, n)
            .elapsed;
        Cell::Speedup(tm / tc)
    }));

    // WRF — measured 1–64.
    let wrf = Wrf::iberia_4km();
    rows.push(row("WRF", &[1, 16, 32, 64], |n| {
        let tc = wrf.simulate_cached(cache, Cluster::CteArm, n, true).elapsed;
        let tm = wrf
            .simulate_cached(cache, Cluster::MareNostrum4, n, true)
            .elapsed;
        Cell::Speedup(tm / tc)
    }));

    // NEMO — the paper's table reports 16 nodes; NP below 8 on CTE-Arm.
    let nemo = Nemo::bench_orca1();
    rows.push(row("NEMO", &[1, 16], |n| {
        if n < nemo.min_nodes(Cluster::CteArm) {
            return Cell::NotPossible;
        }
        let tc = nemo.simulate_cached(cache, Cluster::CteArm, n).elapsed;
        let tm = nemo
            .simulate_cached(cache, Cluster::MareNostrum4, n)
            .elapsed;
        Cell::Speedup(tm / tc)
    }));

    rows
}

/// Render Table IV with a fresh cache.
pub fn speedup_table() -> Table {
    speedup_table_cached(&Cache::new())
}

/// Render Table IV, reusing sub-results from `cache`.
pub fn speedup_table_cached(cache: &Cache) -> Table {
    let mut columns = vec!["Application".to_string()];
    columns.extend(NODE_COUNTS.iter().map(|n| n.to_string()));
    let mut table = Table::new(
        "table4",
        "Speedup of CTE-Arm relative to MareNostrum 4",
        columns,
    );
    for (name, cells) in speedup_cells_cached(cache) {
        let mut r = vec![name];
        r.extend(cells.iter().map(|c| c.render()));
        table.push_row(r);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(rows: &[(String, Vec<Cell>)], app: &str, nodes: usize) -> Cell {
        let col = NODE_COUNTS.iter().position(|&n| n == nodes).unwrap();
        rows.iter().find(|(n, _)| n == app).unwrap().1[col]
    }

    #[test]
    fn matches_paper_within_tolerance() {
        // Paper Table IV cells with our tolerance bands. Gromacs' 128/192
        // cells and WRF's measured drift are known deviations (our MD comm
        // model keeps the gap flat; see EXPERIMENTS.md), so the tightest
        // checks sit on the cells the models target directly.
        let rows = speedup_cells();
        let close = |c: Cell, want: f64, tol: f64, what: &str| {
            let got = c
                .value()
                .unwrap_or_else(|| panic!("{what}: expected value"));
            assert!((got - want).abs() < tol, "{what}: got {got}, paper {want}");
        };
        close(cell(&rows, "LINPACK", 1), 1.25, 0.12, "LINPACK@1");
        close(cell(&rows, "LINPACK", 192), 1.40, 0.15, "LINPACK@192");
        close(cell(&rows, "HPCG", 1), 2.50, 0.25, "HPCG@1");
        close(cell(&rows, "HPCG", 192), 3.24, 0.35, "HPCG@192");
        close(cell(&rows, "Alya", 16), 0.30, 0.05, "Alya@16");
        close(cell(&rows, "Alya", 32), 0.31, 0.06, "Alya@32");
        close(cell(&rows, "OpenIFS", 1), 0.31, 0.05, "OpenIFS@1");
        close(cell(&rows, "OpenIFS", 32), 0.28, 0.05, "OpenIFS@32");
        close(cell(&rows, "Gromacs", 1), 0.32, 0.05, "Gromacs@1");
        close(cell(&rows, "WRF", 1), 0.49, 0.08, "WRF@1");
        close(cell(&rows, "NEMO", 16), 0.56, 0.08, "NEMO@16");
    }

    #[test]
    fn np_cells_match_paper() {
        let rows = speedup_cells();
        assert_eq!(cell(&rows, "Alya", 1), Cell::NotPossible);
        assert_eq!(cell(&rows, "NEMO", 1), Cell::NotPossible);
        assert_eq!(cell(&rows, "OpenIFS", 16), Cell::NotPossible);
    }

    #[test]
    fn benchmarks_favor_cte_apps_favor_mn4() {
        // The paper's headline: synthetic benchmarks speed up (> 1),
        // applications slow down (< 1).
        let rows = speedup_cells();
        for (name, cells) in &rows {
            for c in cells {
                if let Cell::Speedup(s) = c {
                    if name == "LINPACK" || name == "HPCG" {
                        assert!(*s > 1.0, "{name}: {s}");
                    } else {
                        assert!(*s < 1.0, "{name}: {s}");
                    }
                }
            }
        }
    }

    #[test]
    fn table_renders() {
        let t = speedup_table();
        assert_eq!(t.columns.len(), 7);
        assert_eq!(t.rows.len(), 7);
        let text = t.to_text();
        assert!(text.contains("LINPACK"));
        assert!(text.contains("NP"));
        assert!(text.contains("N/A"));
    }
}
