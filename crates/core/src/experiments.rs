//! The experiment registry: every table and figure of the paper.

use crate::engine::Ctx;
use apps::common::Cluster;
use arch::machines::{cte_arm, marenostrum4};
use simkit::series::{Figure, Series, Table};
use simkit::stats::quantile;

/// A regenerated paper artifact.
#[derive(Debug, Clone)]
pub enum Artifact {
    /// A figure (line/bar data).
    Figure(Figure),
    /// A table.
    Table(Table),
}

impl Artifact {
    /// Artifact identifier (`fig2`, `table4`, …).
    pub fn id(&self) -> &str {
        match self {
            Artifact::Figure(f) => &f.id,
            Artifact::Table(t) => &t.id,
        }
    }

    /// Human-readable rendering.
    pub fn to_text(&self) -> String {
        match self {
            Artifact::Figure(f) => f.to_text(),
            Artifact::Table(t) => t.to_text(),
        }
    }

    /// CSV rendering.
    pub fn to_csv(&self) -> String {
        match self {
            Artifact::Figure(f) => f.to_csv(),
            Artifact::Table(t) => t.to_csv(),
        }
    }
}

/// A registered experiment.
pub struct Experiment {
    /// Identifier matching the paper (`fig1`…`fig16`, `table1`…`table4`).
    pub id: &'static str,
    /// What the paper calls it.
    pub title: &'static str,
    /// Which paper section it reproduces.
    pub section: &'static str,
    /// Experiments whose cache entries this one reuses. The engine runs
    /// deps first so that hit/miss attribution is deterministic at any
    /// `--jobs` level; outside the engine they are advisory.
    pub deps: &'static [&'static str],
    /// Regenerate the artifact, memoizing sub-results in `ctx`.
    pub run: fn(&Ctx) -> Artifact,
}

/// All experiments, in paper order.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "table1",
            title: "Hardware configuration of CTE-Arm and MareNostrum 4",
            section: "II",
            deps: &[],
            run: table1,
        },
        Experiment {
            id: "table2",
            title: "Build configurations for STREAM",
            section: "III-B",
            deps: &[],
            run: table2,
        },
        Experiment {
            id: "fig1",
            title: "FPU µKernel sustained performance",
            section: "III-A",
            deps: &[],
            run: fig1,
        },
        Experiment {
            id: "fig2",
            title: "STREAM Triad bandwidth with OpenMP",
            section: "III-B",
            deps: &[],
            run: fig2,
        },
        Experiment {
            id: "fig3",
            title: "STREAM Triad bandwidth with MPI+OpenMP",
            section: "III-B",
            deps: &[],
            run: fig3,
        },
        Experiment {
            id: "fig4",
            title: "Bandwidth of all node-pairs (msg 256 B)",
            section: "III-C",
            deps: &[],
            run: fig4,
        },
        Experiment {
            id: "fig5",
            title: "Bandwidth distribution across node pairs and sizes",
            section: "III-C",
            deps: &[],
            run: fig5,
        },
        Experiment {
            id: "fig6",
            title: "Linpack scalability",
            section: "IV-A",
            deps: &[],
            run: fig6,
        },
        Experiment {
            id: "fig7",
            title: "HPCG performance (vanilla and optimized)",
            section: "IV-B",
            deps: &[],
            run: fig7,
        },
        Experiment {
            id: "table3",
            title: "Build configurations for all HPC applications",
            section: "V",
            deps: &[],
            run: table3,
        },
        Experiment {
            id: "fig8",
            title: "Alya scalability",
            section: "V-A",
            deps: &[],
            run: fig8,
        },
        Experiment {
            id: "fig9",
            title: "Alya assembly phase",
            section: "V-A",
            deps: &["fig8"],
            run: fig9,
        },
        Experiment {
            id: "fig10",
            title: "Alya solver phase",
            section: "V-A",
            deps: &["fig8"],
            run: fig10,
        },
        Experiment {
            id: "fig11",
            title: "NEMO scalability",
            section: "V-B",
            deps: &[],
            run: fig11,
        },
        Experiment {
            id: "fig12",
            title: "Gromacs single-node scalability",
            section: "V-C",
            deps: &[],
            run: fig12,
        },
        Experiment {
            id: "fig13",
            title: "Gromacs multi-node scalability",
            section: "V-C",
            deps: &["fig12"],
            run: fig13,
        },
        Experiment {
            id: "fig14",
            title: "OpenIFS single-node scalability",
            section: "V-D",
            deps: &[],
            run: fig14,
        },
        Experiment {
            id: "fig15",
            title: "OpenIFS multi-node scalability",
            section: "V-D",
            deps: &[],
            run: fig15,
        },
        Experiment {
            id: "fig16",
            title: "WRF scalability (IO on/off)",
            section: "V-E",
            deps: &[],
            run: fig16,
        },
        Experiment {
            id: "table4",
            title: "Speedup of CTE-Arm relative to MareNostrum 4",
            section: "VI",
            deps: &[
                "fig6", "fig7", "fig8", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
            ],
            run: table4,
        },
    ]
}

/// Run one experiment by id with a fresh (single-use) context.
pub fn run(id: &str) -> Option<Artifact> {
    run_in(&Ctx::new(), id)
}

/// Run one experiment by id, memoizing sub-results in `ctx`.
pub fn run_in(ctx: &Ctx, id: &str) -> Option<Artifact> {
    all_experiments()
        .into_iter()
        .find(|e| e.id == id)
        .map(|e| (e.run)(ctx))
}

fn table1(_ctx: &Ctx) -> Artifact {
    let cte = cte_arm();
    let mn4 = marenostrum4();
    let mut t = Table::new(
        "table1",
        "Hardware configuration of CTE-Arm and MareNostrum 4",
        vec!["Property", "CTE-Arm", "MareNostrum 4"],
    );
    let rows: Vec<(&str, String, String)> = vec![
        (
            "System integrator",
            cte.integrator.clone(),
            mn4.integrator.clone(),
        ),
        ("CPU name", cte.core.name.clone(), mn4.core.name.clone()),
        ("SIMD extensions", "NEON, SVE".into(), "AVX512".into()),
        (
            "Frequency [GHz]",
            format!("{:.2}", cte.core.freq_ghz),
            format!("{:.2}", mn4.core.freq_ghz),
        ),
        (
            "Sockets / node",
            cte.sockets.to_string(),
            mn4.sockets.to_string(),
        ),
        (
            "Cores / node",
            cte.cores_per_node().to_string(),
            mn4.cores_per_node().to_string(),
        ),
        (
            "DP Peak / core [GFlop/s]",
            format!("{:.2}", cte.core.peak_dp().as_gflops()),
            format!("{:.2}", mn4.core.peak_dp().as_gflops()),
        ),
        (
            "DP Peak / node [GFlop/s]",
            format!("{:.2}", cte.peak_dp_node().as_gflops()),
            format!("{:.2}", mn4.peak_dp_node().as_gflops()),
        ),
        (
            "Memory / node [GB]",
            format!("{:.0}", cte.memory.capacity().value() / 1e9),
            format!("{:.0}", mn4.memory.capacity().value() / 1e9),
        ),
        (
            "Peak memory bandwidth [GB/s]",
            format!("{:.0}", cte.memory.peak_bandwidth().as_gb_per_sec()),
            format!("{:.0}", mn4.memory.peak_bandwidth().as_gb_per_sec()),
        ),
        (
            "Num. of nodes",
            cte.nodes.to_string(),
            mn4.nodes.to_string(),
        ),
        (
            "Interconnection",
            cte.interconnect.clone(),
            mn4.interconnect.clone(),
        ),
        (
            "Peak network bandwidth [GB/s]",
            format!("{:.2}", cte.network_peak.as_gb_per_sec()),
            format!("{:.2}", mn4.network_peak.as_gb_per_sec()),
        ),
    ];
    for (k, a, b) in rows {
        t.push_row(vec![k.to_string(), a, b]);
    }
    Artifact::Table(t)
}

fn table2(_ctx: &Ctx) -> Artifact {
    let mut t = Table::new(
        "table2",
        "Build configurations for STREAM",
        vec!["Build", "Compiler", "Key flags"],
    );
    t.push_row(vec![
        "CTE-Arm OpenMP",
        "Fujitsu/1.2.26b",
        "-Kfast,parallel -KA64FX -KSVE -Kopenmp -Kzfill=100 -Kprefetch_sequential=soft -mcmodel=large",
    ]);
    t.push_row(vec![
        "CTE-Arm MPI+OpenMP",
        "Fujitsu/1.2.26b",
        "-Kfast,parallel -KA64FX -KSVE -Kopenmp -Kzfill=100 -Kprefetch_sequential=soft",
    ]);
    t.push_row(vec![
        "MareNostrum 4 OpenMP",
        "Intel/19.1.1.217",
        "-O3 -xHost -qopenmp-link=static -qopenmp",
    ]);
    t.push_row(vec![
        "MareNostrum 4 MPI+OpenMP",
        "Intel/19.1.1.217",
        "-O3 -xHost -qopenmp-link=static -qopenmp",
    ]);
    Artifact::Table(t)
}

fn table3(_ctx: &Ctx) -> Artifact {
    let mut t = Table::new(
        "table3",
        "Build configurations for all HPC applications",
        vec!["Application", "CTE-Arm", "MareNostrum 4"],
    );
    t.push_row(vec![
        "Alya",
        "GNU/8.3.1-sve + Fujitsu MPI 1.1.18",
        "GNU/8.4.2 + OpenMPI 4.0.2",
    ]);
    t.push_row(vec![
        "NEMO",
        "GNU/8.3.1-sve + Fujitsu MPI 1.2.26b",
        "Intel/2017.4 + Intel MPI 2018.4",
    ]);
    t.push_row(vec![
        "Gromacs",
        "GNU/11.0.0 + Fujitsu MPI 1.2.26b + fftw3-sve + SSL2",
        "Intel/2018.4 + Intel MPI + fftw 3.3.8 + MKL",
    ]);
    t.push_row(vec![
        "OpenIFS",
        "GNU/8.3.1-sve + Fujitsu MPI 1.2.26b + internal BLAS/LAPACK",
        "Intel/2018.4 + Intel MPI + MKL",
    ]);
    t.push_row(vec![
        "WRF",
        "GNU/8.3.1-sve + Fujitsu MPI 1.2.26b + NetCDF 4.2",
        "Intel/2017.4 + Intel MPI + NetCDF 4.4.1.1",
    ]);
    Artifact::Table(t)
}

fn fig1(_ctx: &Ctx) -> Artifact {
    Artifact::Figure(microbench::fpu::figure1(&cte_arm(), &marenostrum4()))
}

fn fig2(_ctx: &Ctx) -> Artifact {
    Artifact::Figure(microbench::stream::figure2(&cte_arm(), &marenostrum4()))
}

fn fig3(_ctx: &Ctx) -> Artifact {
    Artifact::Figure(microbench::stream::figure3(&cte_arm(), &marenostrum4()))
}

fn fig4(ctx: &Ctx) -> Artifact {
    let map = microbench::network::figure4_cached(&ctx.cache, 4242);
    let summary = microbench::network::summarize_map(&map);
    let mut t = Table::new(
        "fig4",
        "Node-pair bandwidth map summary (msg 256 B; per-node means in GB/s)",
        vec!["node", "rx_mean", "tx_mean"],
    );
    for (i, (rx, tx)) in summary.rx_means.iter().zip(&summary.tx_means).enumerate() {
        t.push_row(vec![i.to_string(), format!("{rx:.4}"), format!("{tx:.4}")]);
    }
    Artifact::Table(t)
}

fn fig5(ctx: &Ctx) -> Artifact {
    let dists = microbench::network::figure5_cached(&ctx.cache, 4242, 2000);
    let mut t = Table::new(
        "fig5",
        "Bandwidth distribution across node pairs by message size",
        vec!["size_bytes", "p10", "p50", "p90", "cv", "modes"],
    );
    for d in dists {
        // Reconstruct coarse percentiles from the histogram bins.
        let mut samples = Vec::new();
        for (i, &count) in d.histogram.bins().iter().enumerate() {
            for _ in 0..count {
                samples.push(d.histogram.bin_center(i));
            }
        }
        t.push_row(vec![
            d.size.to_string(),
            format!("{:.4}", quantile(&samples, 0.10)),
            format!("{:.4}", quantile(&samples, 0.50)),
            format!("{:.4}", quantile(&samples, 0.90)),
            format!("{:.3}", d.cv),
            d.histogram.smoothed(3).modes(30).len().to_string(),
        ]);
    }
    Artifact::Table(t)
}

fn fig6(ctx: &Ctx) -> Artifact {
    let mut fig = Figure::new("fig6", "Linpack scalability", "nodes", "GFlop/s");
    let counts = [1usize, 2, 4, 8, 16, 32, 64, 128, 192];
    for (machine, link) in [
        (cte_arm(), interconnect::link::LinkModel::tofud()),
        (marenostrum4(), interconnect::link::LinkModel::omnipath()),
    ] {
        let mut s = Series::new(machine.name.clone());
        for &n in &counts {
            let r = hpl::simulate_cached(
                &ctx.cache,
                &machine,
                &link,
                n,
                &hpl::paper_config(&machine, n),
            );
            s.push(n as f64, r.gflops);
        }
        fig.series.push(s);
    }
    Artifact::Figure(fig)
}

fn fig7(ctx: &Ctx) -> Artifact {
    let mut fig = Figure::new(
        "fig7",
        "HPCG performance, vanilla and optimized",
        "nodes",
        "GFlop/s",
    );
    for machine in [cte_arm(), marenostrum4()] {
        for (version, vname) in [
            (hpcg::HpcgVersion::Vanilla, "vanilla"),
            (hpcg::HpcgVersion::Optimized, "optimized"),
        ] {
            let mut s = Series::new(format!("{} ({vname})", machine.name));
            for n in [1usize, 192] {
                let r = hpcg::simulate_cached(
                    &ctx.cache,
                    &machine,
                    n,
                    &hpcg::HpcgConfig::paper(version),
                );
                s.push(n as f64, r.gflops);
            }
            fig.series.push(s);
        }
    }
    Artifact::Figure(fig)
}

fn fig8(ctx: &Ctx) -> Artifact {
    Artifact::Figure(apps::alya::Alya::test_case_b().figure8_cached(&ctx.cache))
}

fn fig9(ctx: &Ctx) -> Artifact {
    Artifact::Figure(apps::alya::Alya::test_case_b().figure9_cached(&ctx.cache))
}

fn fig10(ctx: &Ctx) -> Artifact {
    Artifact::Figure(apps::alya::Alya::test_case_b().figure10_cached(&ctx.cache))
}

fn fig11(ctx: &Ctx) -> Artifact {
    Artifact::Figure(apps::nemo::Nemo::bench_orca1().figure11_cached(&ctx.cache))
}

fn fig12(ctx: &Ctx) -> Artifact {
    Artifact::Figure(apps::gromacs::Gromacs::lignocellulose_rf().figure12_cached(&ctx.cache))
}

fn fig13(ctx: &Ctx) -> Artifact {
    Artifact::Figure(apps::gromacs::Gromacs::lignocellulose_rf().figure13_cached(&ctx.cache))
}

fn fig14(ctx: &Ctx) -> Artifact {
    Artifact::Figure(apps::openifs::OpenIfs::figure14_cached(&ctx.cache))
}

fn fig15(ctx: &Ctx) -> Artifact {
    Artifact::Figure(apps::openifs::OpenIfs::figure15_cached(&ctx.cache))
}

fn fig16(ctx: &Ctx) -> Artifact {
    Artifact::Figure(apps::wrf::Wrf::iberia_4km().figure16_cached(&ctx.cache))
}

fn table4(ctx: &Ctx) -> Artifact {
    Artifact::Table(crate::speedup::speedup_table_cached(&ctx.cache))
}

/// Convenience: the cluster a series label belongs to (used by reports).
pub fn cluster_of_label(label: &str) -> Option<Cluster> {
    if label.starts_with("CTE-Arm") {
        Some(Cluster::CteArm)
    } else if label.starts_with("MareNostrum 4") {
        Some(Cluster::MareNostrum4)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_paper_artifact() {
        let ids: Vec<&str> = all_experiments().iter().map(|e| e.id).collect();
        for want in [
            "table1", "table2", "table3", "table4", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
            "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
        ] {
            assert!(ids.contains(&want), "missing {want}");
        }
        assert_eq!(ids.len(), 20);
    }

    #[test]
    fn run_by_id_works() {
        let a = run("table1").expect("registered");
        assert_eq!(a.id(), "table1");
        assert!(run("fig99").is_none());
    }

    #[test]
    fn table1_matches_paper_numbers() {
        let Artifact::Table(t) = run("table1").unwrap() else {
            panic!("table1 is a table");
        };
        let find = |prop: &str| {
            t.rows
                .iter()
                .find(|r| r[0] == prop)
                .unwrap_or_else(|| panic!("{prop} present"))
                .clone()
        };
        assert_eq!(find("DP Peak / node [GFlop/s]")[1], "3379.20");
        assert_eq!(find("DP Peak / node [GFlop/s]")[2], "3225.60");
        assert_eq!(find("Peak memory bandwidth [GB/s]")[1], "1024");
        assert_eq!(find("Num. of nodes")[1], "192");
        assert_eq!(find("Num. of nodes")[2], "3456");
    }

    #[test]
    fn fig6_artifact_shape() {
        let Artifact::Figure(f) = run("fig6").unwrap() else {
            panic!("fig6 is a figure");
        };
        assert_eq!(f.series.len(), 2);
        // CTE-Arm beats MN4 at every point (Table IV row 1 all > 1).
        let cte = f.series_named("CTE-Arm").unwrap();
        let mn4 = f.series_named("MareNostrum 4").unwrap();
        for (&(x, yc), &(_, ym)) in cte.points.iter().zip(&mn4.points) {
            assert!(yc > ym, "CTE wins HPL at {x} nodes");
        }
    }

    #[test]
    fn fig7_vanilla_below_optimized() {
        let Artifact::Figure(f) = run("fig7").unwrap() else {
            panic!("fig7 is a figure");
        };
        assert_eq!(f.series.len(), 4);
        for machine in ["CTE-Arm", "MareNostrum 4"] {
            let v = f
                .series_named(&format!("{machine} (vanilla)"))
                .unwrap()
                .y_at(1.0)
                .unwrap();
            let o = f
                .series_named(&format!("{machine} (optimized)"))
                .unwrap()
                .y_at(1.0)
                .unwrap();
            assert!(v < o, "{machine}: vanilla {v} < optimized {o}");
        }
    }

    #[test]
    fn fig5_table_reports_bimodality_and_noise() {
        let Artifact::Table(t) = run("fig5").unwrap() else {
            panic!("fig5 renders as a table");
        };
        // Mid-size row (64 KiB) has ≥ 2 modes.
        let mid = t
            .rows
            .iter()
            .find(|r| r[0] == (64 * 1024).to_string())
            .expect("64 KiB row");
        assert!(mid[5].parse::<usize>().unwrap() >= 2);
        // Large-message rows have a bigger CV than small ones.
        let cv_of = |size: usize| {
            t.rows.iter().find(|r| r[0] == size.to_string()).unwrap()[4]
                .parse::<f64>()
                .unwrap()
        };
        assert!(cv_of(4 * 1024 * 1024) > cv_of(4096));
    }

    #[test]
    fn cluster_label_parsing() {
        assert_eq!(cluster_of_label("CTE-Arm (C)"), Some(Cluster::CteArm));
        assert_eq!(
            cluster_of_label("MareNostrum 4 vector"),
            Some(Cluster::MareNostrum4)
        );
        assert_eq!(cluster_of_label("other"), None);
    }
}
