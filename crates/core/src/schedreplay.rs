//! Full-scale scheduler replays behind `cluster-eval sched-replay`.
//!
//! The paper evaluates CTE-Arm as a *production shared system*; this
//! module replays months of synthetic production (Section II's
//! topology-aware FCFS + backfill scheduler) at full-Fugaku node counts.
//! The run-indexed allocator and the closed-form compactness fold make a
//! month of 40,000 jobs/day at 158,976 nodes a seconds-scale single-thread
//! computation — the workload the ROADMAP's "month-long production
//! scheduler replays" follow-on asked for.
//!
//! `smoke()` is the CI self-test: a small deterministic replay (with an
//! injected failure burst) runs through the run-indexed allocator *and*
//! the retained scan-based oracle on every policy, demands byte-identical
//! stats, and pins them against `tests/golden/sched/smoke.csv`
//! (`UPDATE_GOLDEN=1` regenerates).

use interconnect::tofu::TofuD;
use interconnect::topology::{NodeId, Topology};
use sched::{
    AllocationPolicy, Allocator, NodeFailure, NodePool, OracleAllocator, ReplaySpec, Scheduler,
    SchedulerStats,
};
use simkit::units::Time;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

/// Configuration of one replay run.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// Machine name (`fugaku` or `cte-arm`).
    pub machine: String,
    /// Days of submissions.
    pub days: usize,
    /// Jobs per day.
    pub jobs_per_day: usize,
    /// Allocation policy.
    pub policy: AllocationPolicy,
    /// Workload and allocator seed.
    pub seed: u64,
    /// EASY backfill (default) vs strict FCFS.
    pub backfill: bool,
}

impl ReplayConfig {
    /// The ISSUE's headline run: a month of full-Fugaku production.
    pub fn fugaku_month() -> Self {
        Self {
            machine: "fugaku".into(),
            days: 30,
            jobs_per_day: 40_000,
            policy: AllocationPolicy::BestFitContiguous,
            seed: 1,
            backfill: true,
        }
    }
}

/// Result of a replay: the scheduler stats plus replay throughput.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// The configuration replayed.
    pub config: ReplayConfig,
    /// Cluster size of the machine.
    pub nodes: usize,
    /// Jobs replayed.
    pub jobs: usize,
    /// Wall time of generate + simulate, seconds.
    pub wall_s: f64,
    /// Jobs simulated per wall-clock second.
    pub jobs_per_sec: f64,
    /// Aggregate scheduler statistics.
    pub stats: SchedulerStats,
}

/// Resolve a machine name to its TofuD shape.
pub fn machine_topo(name: &str) -> Option<TofuD> {
    match name {
        "fugaku" => Some(crate::faults::fugaku_topo()),
        "cte-arm" => Some(TofuD::cte_arm()),
        _ => None,
    }
}

/// Parse a CLI policy name.
pub fn parse_policy(name: &str) -> Option<AllocationPolicy> {
    match name {
        "best-fit" => Some(AllocationPolicy::BestFitContiguous),
        "first-fit" => Some(AllocationPolicy::FirstFit),
        "random" => Some(AllocationPolicy::Random),
        _ => None,
    }
}

/// Render a policy the way the CLI spells it.
pub fn policy_name(policy: AllocationPolicy) -> &'static str {
    match policy {
        AllocationPolicy::BestFitContiguous => "best-fit",
        AllocationPolicy::FirstFit => "first-fit",
        AllocationPolicy::Random => "random",
    }
}

/// Run one replay. Allocations are not retained per job — at a million
/// jobs the node lists would dominate memory without informing the stats.
///
/// # Panics
/// Panics on an unknown machine name.
pub fn run_replay(config: &ReplayConfig) -> ReplayOutcome {
    let topo = machine_topo(&config.machine)
        .unwrap_or_else(|| panic!("unknown machine '{}'", config.machine));
    let nodes = topo.nodes();
    let spec = ReplaySpec::new(nodes, config.days, config.jobs_per_day);
    let t0 = Instant::now();
    let workload = spec.generate(config.seed);
    let jobs = workload.len();
    let allocator = Allocator::new(topo, config.policy, config.seed);
    let (_, stats) = Scheduler::new(allocator, config.backfill)
        .retain_allocations(false)
        .run(workload);
    let wall_s = t0.elapsed().as_secs_f64();
    ReplayOutcome {
        config: config.clone(),
        nodes,
        jobs,
        wall_s,
        jobs_per_sec: if wall_s > 0.0 {
            jobs as f64 / wall_s
        } else {
            0.0
        },
        stats,
    }
}

impl ReplayOutcome {
    /// Human-readable report.
    pub fn to_text(&self) -> String {
        let c = &self.config;
        let s = &self.stats;
        format!(
            "sched-replay: {} ({} nodes), {} days x {} jobs/day = {} jobs\n\
               policy {}, backfill {}, seed {}\n\
               replayed in {:.2} s ({:.0} jobs/s)\n\
               makespan {:.2} days  utilization {:.1} %  mean wait {:.1} min  \
             mean compactness {:.3} hops\n\
               failed nodes {}  requeued {}  abandoned {}\n",
            c.machine,
            self.nodes,
            c.days,
            c.jobs_per_day,
            self.jobs,
            policy_name(c.policy),
            if c.backfill { "on" } else { "off" },
            c.seed,
            self.wall_s,
            self.jobs_per_sec,
            s.makespan.value() / 86_400.0,
            s.utilization * 100.0,
            s.mean_wait.value() / 60.0,
            s.mean_compactness,
            s.failed_nodes,
            s.requeued,
            s.abandoned,
        )
    }

    /// One CSV row (with header) of the deterministic fields plus timing.
    pub fn to_csv(&self) -> String {
        let c = &self.config;
        let s = &self.stats;
        format!(
            "machine,nodes,days,jobs_per_day,jobs,policy,backfill,seed,wall_s,jobs_per_sec,\
             makespan_s,mean_wait_s,mean_compactness,utilization,requeued,abandoned\n\
             {},{},{},{},{},{},{},{},{:.3},{:.0},{},{},{},{},{},{}\n",
            c.machine,
            self.nodes,
            c.days,
            c.jobs_per_day,
            self.jobs,
            policy_name(c.policy),
            c.backfill,
            c.seed,
            self.wall_s,
            self.jobs_per_sec,
            s.makespan.value(),
            s.mean_wait.value(),
            s.mean_compactness,
            s.utilization,
            s.requeued,
            s.abandoned,
        )
    }
}

// ---------------------------------------------------------------------------
// Smoke test: oracle equivalence + golden stats.
// ---------------------------------------------------------------------------

/// Smoke-replay scale: 2 days × 150 jobs/day on CTE-Arm.
const SMOKE_DAYS: usize = 2;
const SMOKE_JOBS_PER_DAY: usize = 150;
const SMOKE_SEED: u64 = 7;

fn smoke_failures() -> Vec<NodeFailure> {
    // A three-node burst mid-way through day 1: exercises the kill /
    // requeue / drain path in both allocators.
    [40usize, 41, 97]
        .iter()
        .map(|&n| NodeFailure {
            node: NodeId(n),
            at: Time::seconds(45_000.0),
        })
        .collect()
}

fn smoke_stats_row<A: NodePool>(allocator: A, policy: AllocationPolicy, backfill: bool) -> String {
    let spec = ReplaySpec::new(192, SMOKE_DAYS, SMOKE_JOBS_PER_DAY);
    let workload = spec.generate(SMOKE_SEED);
    let (_, s) = Scheduler::new(allocator, backfill).run_with_failures(workload, smoke_failures());
    // `{}` on f64 prints the shortest round-trip representation, so the
    // golden pins exact bits while staying readable.
    format!(
        "{},{},{},{},{},{},{},{}\n",
        policy_name(policy),
        backfill,
        s.makespan.value(),
        s.mean_wait.value(),
        s.mean_compactness,
        s.utilization,
        s.requeued,
        s.abandoned,
    )
}

/// The golden file the smoke compares against.
fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/sched/smoke.csv")
}

/// Render the smoke table: every policy with backfill, plus strict FCFS
/// under the production policy — each row produced by the run-indexed
/// allocator *after* being checked byte-identical against the oracle.
///
/// # Errors
/// Returns the first optimized-vs-oracle divergence.
pub fn smoke_table() -> Result<String, String> {
    let mut out = String::from(
        "policy,backfill,makespan_s,mean_wait_s,mean_compactness,utilization,requeued,abandoned\n",
    );
    let cases = [
        (AllocationPolicy::BestFitContiguous, true),
        (AllocationPolicy::FirstFit, true),
        (AllocationPolicy::Random, true),
        (AllocationPolicy::BestFitContiguous, false),
    ];
    for (policy, backfill) in cases {
        let fast = smoke_stats_row(
            Allocator::new(TofuD::cte_arm(), policy, SMOKE_SEED),
            policy,
            backfill,
        );
        let oracle = smoke_stats_row(
            OracleAllocator::new(TofuD::cte_arm(), policy, SMOKE_SEED),
            policy,
            backfill,
        );
        if fast != oracle {
            return Err(format!(
                "run-indexed allocator diverged from the oracle:\n  fast:   {fast}  oracle: {oracle}"
            ));
        }
        out.push_str(&fast);
    }
    Ok(out)
}

/// Run the smoke: oracle equivalence on every policy, then golden compare.
/// With `UPDATE_GOLDEN=1` in the environment the golden is rewritten
/// instead.
///
/// # Errors
/// Returns a description of any divergence or I/O failure.
pub fn smoke() -> Result<String, String> {
    let table = smoke_table()?;
    let path = golden_path();
    let updating = std::env::var("UPDATE_GOLDEN").is_ok_and(|v| !v.is_empty() && v != "0");
    if updating {
        std::fs::create_dir_all(path.parent().expect("golden dir has a parent"))
            .map_err(|e| format!("creating {}: {e}", path.display()))?;
        std::fs::write(&path, &table).map_err(|e| format!("writing {}: {e}", path.display()))?;
        return Ok(format!("updated {}", path.display()));
    }
    let want = std::fs::read_to_string(&path).map_err(|e| {
        format!(
            "reading {} (run with UPDATE_GOLDEN=1 to create): {e}",
            path.display()
        )
    })?;
    if want != table {
        let mut msg = String::from(
            "sched smoke stats diverged from the golden \
             (UPDATE_GOLDEN=1 cluster-eval sched-replay --smoke to regenerate):\n",
        );
        for (g, n) in want.lines().zip(table.lines()) {
            if g != n {
                let _ = writeln!(msg, "  golden: {g}\n  now:    {n}");
            }
        }
        return Err(msg);
    }
    Ok(format!(
        "{} policies x {} jobs byte-identical to the oracle and the golden",
        4,
        SMOKE_DAYS * SMOKE_JOBS_PER_DAY
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_names_resolve() {
        assert_eq!(machine_topo("fugaku").unwrap().nodes(), 158_976);
        assert_eq!(machine_topo("cte-arm").unwrap().nodes(), 192);
        assert!(machine_topo("summit").is_none());
    }

    #[test]
    fn policy_names_roundtrip() {
        for p in [
            AllocationPolicy::BestFitContiguous,
            AllocationPolicy::FirstFit,
            AllocationPolicy::Random,
        ] {
            assert_eq!(parse_policy(policy_name(p)), Some(p));
        }
        assert!(parse_policy("worst-fit").is_none());
    }

    #[test]
    fn small_replay_reports_sane_numbers() {
        let cfg = ReplayConfig {
            machine: "cte-arm".into(),
            days: 1,
            jobs_per_day: 120,
            policy: AllocationPolicy::BestFitContiguous,
            seed: 3,
            backfill: true,
        };
        let out = run_replay(&cfg);
        assert_eq!(out.jobs, 120);
        assert_eq!(out.nodes, 192);
        assert!(out.stats.utilization > 0.0 && out.stats.utilization <= 1.0);
        assert!(out.stats.makespan.value() > 0.0);
        assert!(out.jobs_per_sec > 0.0);
        assert!(out.to_text().contains("cte-arm (192 nodes)"));
        assert!(out.to_csv().starts_with("machine,nodes,"));
    }

    #[test]
    fn smoke_table_is_oracle_clean_and_deterministic() {
        let a = smoke_table().expect("oracle agrees");
        let b = smoke_table().expect("oracle agrees");
        assert_eq!(a, b, "smoke stats are run-to-run deterministic");
        assert_eq!(a.lines().count(), 5, "header + 4 cases");
        assert!(a.contains("best-fit,true"));
        assert!(a.contains("best-fit,false"));
    }

    #[test]
    fn smoke_matches_the_committed_golden() {
        // The same check CI runs via `cluster-eval sched-replay --smoke`.
        let msg = smoke().expect("golden in sync");
        assert!(msg.contains("byte-identical"));
    }
}
