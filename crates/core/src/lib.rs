//! # cluster-eval — the evaluation harness
//!
//! The paper's primary contribution is its evaluation methodology: a
//! bottom-up sweep from micro-architectural kernels through synthetic HPC
//! benchmarks to five untuned production applications, run identically on
//! an A64FX cluster and an Intel reference system. This crate is that
//! methodology as a library: every table and figure of the paper is an
//! [`experiments::Experiment`] that regenerates its data from the models
//! in the substrate crates.
//!
//! ```
//! use cluster_eval::experiments;
//!
//! // Regenerate Fig. 1 (FPU µKernel) and print it.
//! let artifact = experiments::run("fig1").expect("fig1 is registered");
//! println!("{}", artifact.to_text());
//! ```
//!
//! [`report`] renders every experiment into a text + CSV report directory,
//! and [`engine`] runs any registry subset across a worker pool with a
//! shared sub-result cache.

#![warn(missing_docs)]

pub mod cachemodel;
pub mod engine;
pub mod experiments;
pub mod extensions;
pub mod faults;
pub mod hostbench;
pub mod json;
pub mod report;
pub mod schedreplay;
pub mod serve;
pub mod speedup;
pub mod validation;

pub use engine::{run_experiments, Ctx, RunReport};
pub use experiments::{all_experiments, run, Artifact, Experiment};
pub use extensions::{extension_experiments, run_extension};
pub use faults::{campaign, campaigns, run_campaign, Campaign, CampaignReport};
pub use serve::{model_code_hash, Query, ServeSummary};
pub use speedup::speedup_table;
pub use validation::validation_report;
