//! Report generation: render every experiment to text and CSV files.

use crate::engine::Ctx;
use crate::experiments::{all_experiments, Artifact};
use crate::extensions::extension_experiments;
use std::fs;
use std::io;
use std::path::Path;

/// Run every registered experiment — the paper's 20 artifacts plus the
/// extension studies — writing `<id>.txt` and `<id>.csv` into `out_dir`
/// (created if missing) plus an `index.txt` summary. Returns the artifacts.
pub fn generate_report(out_dir: &Path) -> io::Result<Vec<Artifact>> {
    fs::create_dir_all(out_dir)?;
    let ctx = Ctx::new();
    let mut artifacts = Vec::new();
    let mut index = String::new();
    for exp in all_experiments().into_iter().chain(extension_experiments()) {
        let artifact = (exp.run)(&ctx);
        fs::write(out_dir.join(format!("{}.txt", exp.id)), artifact.to_text())?;
        fs::write(out_dir.join(format!("{}.csv", exp.id)), artifact.to_csv())?;
        index.push_str(&format!(
            "{:8}  [Sec. {:5}]  {}\n",
            exp.id, exp.section, exp.title
        ));
        artifacts.push(artifact);
    }
    fs::write(out_dir.join("index.txt"), index)?;
    Ok(artifacts)
}

/// Render every experiment to one concatenated text report (no I/O).
pub fn render_full_report() -> String {
    let mut out = String::new();
    out.push_str("A64FX cluster evaluation — regenerated paper artifacts\n");
    out.push_str("======================================================\n\n");
    let ctx = Ctx::new();
    for exp in all_experiments().into_iter().chain(extension_experiments()) {
        let artifact = (exp.run)(&ctx);
        out.push_str(&artifact.to_text());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_writes_all_files() {
        let dir = std::env::temp_dir().join("cluster-eval-report-test");
        let _ = fs::remove_dir_all(&dir);
        let artifacts = generate_report(&dir).expect("report generated");
        assert_eq!(artifacts.len(), 27, "20 paper artifacts + 7 extensions");
        for exp in all_experiments().into_iter().chain(extension_experiments()) {
            assert!(dir.join(format!("{}.txt", exp.id)).exists());
            assert!(dir.join(format!("{}.csv", exp.id)).exists());
        }
        let index = fs::read_to_string(dir.join("index.txt")).unwrap();
        assert!(index.contains("fig16"));
        let _ = fs::remove_dir_all(&dir);
    }
}
