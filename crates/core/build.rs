//! Computes the model-code hash that versions the persistent result
//! store: an FNV-1a digest over every Rust source of the workspace's
//! model crates. Any source change yields a new hash, so `seg-<hash>.bin`
//! files written by an older model revision are simply never opened.

use std::fs;
use std::path::{Path, PathBuf};

fn fnv1a64(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn main() {
    // crates/core/build.rs → the workspace's crates/ directory.
    let crates_dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("crates dir")
        .to_path_buf();
    let mut files = Vec::new();
    collect_rs(&crates_dir, &mut files);
    // Sort for a path-order-independent digest.
    files.sort();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for path in &files {
        // Hash the path relative to crates/ so absolute build locations
        // don't perturb the digest, then the file contents.
        let rel = path.strip_prefix(&crates_dir).unwrap_or(path);
        fnv1a64(&mut h, rel.to_string_lossy().as_bytes());
        if let Ok(bytes) = fs::read(path) {
            fnv1a64(&mut h, &bytes);
        }
        println!("cargo:rerun-if-changed={}", path.display());
    }
    println!("cargo:rerun-if-changed={}", crates_dir.display());
    println!("cargo:rustc-env=CLUSTER_EVAL_MODEL_HASH={h:016x}");
}
