//! The [`Job`] execution context: runs SPMD programs on virtual clocks.

use crate::collectives::{self, CollectiveAlgo};
use crate::faults::JobFaults;
use crate::layout::JobLayout;
use crate::trace::{Activity, Trace};
use arch::compiler::Compiler;
use arch::cost::{CostModel, KernelProfile};
use arch::machines::Machine;
use interconnect::network::{Network, PathCost};
use interconnect::topology::{NodeId, Topology};
use simkit::rng::Pcg32;
use simkit::time::VirtualClock;
use simkit::units::{Bandwidth, Bytes, Time};

/// A posted, not-yet-completed neighbour exchange (see
/// [`Job::post_neighbor_exchange`]).
#[must_use = "a posted exchange must be completed with wait_halo"]
pub struct PendingHalo {
    completion: Vec<Time>,
}

/// A running MPI job on a simulated cluster.
///
/// Each rank owns a [`VirtualClock`]. Compute steps advance individual
/// clocks (with optional load-imbalance noise); synchronizing communication
/// aligns clocks the way blocking MPI semantics do. The job's elapsed time
/// is the latest clock — the "slowest process" time the paper plots.
pub struct Job<'a, T: Topology> {
    machine: &'a Machine,
    compiler: &'a Compiler,
    network: &'a Network<T>,
    layout: JobLayout,
    clocks: Vec<VirtualClock>,
    rng: Pcg32,
    algo: CollectiveAlgo,
    imbalance_sigma: f64,
    /// Per-rank compute clock stretch from fault-plan slowdowns (CMG
    /// throttling); 1.0 everywhere on a healthy machine, in which case the
    /// multiply is bit-neutral.
    compute_stretch: Vec<f64>,
    /// Cached farthest pair of allocated nodes: the conservative
    /// representative route for collective stages.
    far_pair: (NodeId, NodeId),
    /// Resolved route cost of `far_pair`, cached at launch so every
    /// collective stage prices its messages without re-routing.
    far_cost: PathCost,
    trace: Option<Trace>,
}

impl<'a, T: Topology> Job<'a, T> {
    /// Launch a job.
    pub fn new(
        machine: &'a Machine,
        compiler: &'a Compiler,
        network: &'a Network<T>,
        layout: JobLayout,
        seed: u64,
    ) -> Self {
        let n = layout.n_ranks();
        let far_pair = Self::farthest_pair(network, &layout);
        let far_cost = network.path_cost(far_pair.0, far_pair.1);
        Self {
            machine,
            compiler,
            network,
            layout,
            clocks: vec![VirtualClock::new(); n],
            rng: Pcg32::seeded(seed),
            algo: CollectiveAlgo::Auto,
            imbalance_sigma: 0.03,
            compute_stretch: vec![1.0; n],
            far_pair,
            far_cost,
            trace: None,
        }
    }

    fn farthest_pair(network: &Network<T>, layout: &JobLayout) -> (NodeId, NodeId) {
        let nodes = &layout.nodes;
        if nodes.len() < 2 {
            return (nodes[0], nodes[0]);
        }
        // When the network has already materialised its pair table (folded
        // on TofuD — two array reads per hop query), ride it; otherwise
        // fall back to direct coordinate routing. Both return identical hop
        // counts, so the selected pair is the same either way.
        let hops: &dyn Fn(NodeId, NodeId) -> usize = match network.table_if_built() {
            Some(t) => &|a, b| t.hops(a, b),
            None => &|a, b| network.topology().hops(a, b),
        };
        let first = nodes[0];
        // Double sweep from the first node: near-diameter pair in O(n).
        let a = *nodes
            .iter()
            .max_by_key(|&&n| hops(first, n))
            .expect("non-empty");
        let b = *nodes
            .iter()
            .max_by_key(|&&n| hops(a, n))
            .expect("non-empty");
        (a, b)
    }

    /// Select the inter-node collective algorithm (default: size-based).
    pub fn with_collective_algo(mut self, algo: CollectiveAlgo) -> Self {
        self.algo = algo;
        self
    }

    /// Apply the job-visible slice of a fault plan: ranks on throttled
    /// nodes run compute chunks `1/factor` slower. Network-side faults are
    /// not handled here — they live in the `Network` this job already
    /// prices against.
    ///
    /// # Panics
    /// Panics if any node in the layout is hard-failed (by the plan or the
    /// network): a rank there would never finish. The scheduler layer is
    /// responsible for draining failed nodes before placement.
    pub fn with_faults(mut self, faults: &JobFaults) -> Self {
        for &node in &self.layout.nodes {
            assert!(
                !faults.is_failed(node) && !self.network.is_failed(node),
                "cannot place ranks on failed node {node}"
            );
        }
        for rank in 0..self.layout.n_ranks() {
            self.compute_stretch[rank] = faults.compute_stretch(self.layout.node_of(rank));
        }
        self
    }

    /// Enable per-rank execution tracing (see [`crate::trace`]).
    pub fn with_tracing(mut self) -> Self {
        self.trace = Some(Trace::new());
        self
    }

    /// The recorded trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Set the per-compute-step load-imbalance sigma (default 0.03;
    /// 0 = perfectly balanced).
    pub fn with_imbalance(mut self, sigma: f64) -> Self {
        assert!(sigma >= 0.0, "imbalance sigma must be non-negative");
        self.imbalance_sigma = sigma;
        self
    }

    /// Number of ranks.
    pub fn n_ranks(&self) -> usize {
        self.layout.n_ranks()
    }

    /// The layout.
    pub fn layout(&self) -> &JobLayout {
        &self.layout
    }

    /// The farthest pair of allocated nodes — the representative route
    /// whose cached cost prices every collective stage.
    pub fn far_pair(&self) -> (NodeId, NodeId) {
        self.far_pair
    }

    /// The job's elapsed time so far: the latest rank clock.
    pub fn elapsed(&self) -> Time {
        self.clocks
            .iter()
            .map(|c| c.now())
            .fold(Time::ZERO, Time::max)
    }

    /// Per-rank clock snapshot.
    pub fn rank_times(&self) -> Vec<Time> {
        self.clocks.iter().map(|c| c.now()).collect()
    }

    /// Every rank executes the same per-rank work chunk; each rank's time is
    /// perturbed by the imbalance noise.
    pub fn compute(&mut self, per_rank: &KernelProfile) {
        let n = self.n_ranks();
        self.compute_chunks(|_| per_rank.clone());
        debug_assert_eq!(n, self.n_ranks());
    }

    /// Per-rank work chunks from a closure (heterogeneous decomposition).
    pub fn compute_chunks(&mut self, per_rank: impl Fn(usize) -> KernelProfile) {
        let machine = self.machine;
        let compiler = self.compiler;
        let cm = CostModel::new(&machine.core, &machine.memory, compiler);
        let active = self.layout.active_cores_per_node();
        let threads = self.layout.threads_per_rank;
        for rank in 0..self.n_ranks() {
            let profile = per_rank(rank);
            // A rank's chunk is split across its OpenMP threads.
            let per_thread = KernelProfile {
                flops: profile.flops / threads as f64,
                bytes: profile.bytes / threads as f64,
                ..profile
            };
            let mut t = cm.chunk_time(&per_thread, active);
            // Fault-plan slowdown: ×1.0 on healthy nodes is bit-neutral.
            t = Time::seconds(t.value() * self.compute_stretch[rank]);
            if self.imbalance_sigma > 0.0 {
                t = Time::seconds(t.value() * self.rng.lognormal_noise(self.imbalance_sigma));
            }
            let start = self.clocks[rank].now();
            self.clocks[rank].advance(t);
            if let Some(trace) = self.trace.as_mut() {
                trace.record(rank, Activity::Compute, start, start + t, &per_thread.name);
            }
        }
    }

    /// Representative point-to-point time across the allocation (worst
    /// pair). Collective stages call this once per stage with varying
    /// sizes, so the route cost comes from the cached [`PathCost`] rather
    /// than re-resolving `far_pair` each time.
    fn inter_node_ptp(&self, bytes: Bytes) -> Time {
        self.network.message_time_with(&self.far_cost, bytes)
    }

    /// Intra-node (shared-memory) point-to-point time.
    fn intra_node_ptp(&self, bytes: Bytes) -> Time {
        // Shared-memory copy: half the injection overhead + copy at 20 GB/s,
        // mirroring Network's self-message model.
        self.network.link().sw_overhead * 0.5 + bytes / Bandwidth::gb_per_sec(20.0)
    }

    /// Align all clocks to the latest (the synchronization part of every
    /// blocking collective), returning that time.
    fn sync_clocks(&mut self) -> Time {
        let latest = self.elapsed();
        for c in &mut self.clocks {
            c.advance_to(latest);
        }
        latest
    }

    /// Advance every clock by `dt`.
    fn advance_all(&mut self, dt: Time) {
        for c in &mut self.clocks {
            c.advance(dt);
        }
    }

    /// Record a blocking collective on every rank: the interval spans from
    /// each rank's pre-sync clock to the common completion time.
    fn record_collective(&mut self, starts: &[Time], label: &str) {
        if self.trace.is_none() {
            return;
        }
        let ends: Vec<Time> = self.clocks.iter().map(|c| c.now()).collect();
        let trace = self.trace.as_mut().expect("checked above");
        for (rank, (&s, &e)) in starts.iter().zip(&ends).enumerate() {
            trace.record(rank, Activity::Collective, s, e, label);
        }
    }

    /// Snapshot the per-rank clocks (collective start times).
    fn clock_snapshot(&self) -> Vec<Time> {
        self.clocks.iter().map(|c| c.now()).collect()
    }

    /// Hierarchical collective cost: intra-node stage over the ranks of one
    /// node, inter-node stage over node leaders.
    fn hierarchical_cost(
        &self,
        bytes: Bytes,
        intra_f: impl Fn(usize, Bytes, &dyn Fn(Bytes) -> Time) -> Time,
        inter_f: impl Fn(usize, Bytes, &dyn Fn(Bytes) -> Time) -> Time,
    ) -> Time {
        let rpn = self.layout.ranks_per_node;
        let nodes = self.layout.n_nodes();
        let intra_ptp = |b: Bytes| self.intra_node_ptp(b);
        let inter_ptp = |b: Bytes| self.inter_node_ptp(b);
        intra_f(rpn, bytes, &intra_ptp) + inter_f(nodes, bytes, &inter_ptp)
    }

    /// MPI_Barrier over all ranks.
    pub fn barrier(&mut self) {
        let starts = self.clock_snapshot();
        self.sync_clocks();
        let rpn = self.layout.ranks_per_node;
        let nodes = self.layout.n_nodes();
        let cost = collectives::barrier(rpn, self.intra_node_ptp(Bytes::ZERO))
            + collectives::barrier(nodes, self.inter_node_ptp(Bytes::ZERO));
        self.advance_all(cost);
        self.record_collective(&starts, "barrier");
    }

    /// MPI_Allreduce of `bytes` per rank.
    pub fn allreduce(&mut self, bytes: Bytes) {
        let starts = self.clock_snapshot();
        self.sync_clocks();
        let algo = self.algo;
        let cost = self.hierarchical_cost(
            bytes,
            |p, b, ptp| collectives::allreduce(p, b, algo, ptp),
            |p, b, ptp| collectives::allreduce(p, b, algo, ptp),
        );
        self.advance_all(cost);
        self.record_collective(&starts, "allreduce");
    }

    /// MPI_Bcast of `bytes` from rank 0.
    pub fn bcast(&mut self, bytes: Bytes) {
        let starts = self.clock_snapshot();
        self.sync_clocks();
        let algo = self.algo;
        let cost = self.hierarchical_cost(
            bytes,
            |p, b, ptp| collectives::bcast(p, b, algo, ptp),
            |p, b, ptp| collectives::bcast(p, b, algo, ptp),
        );
        self.advance_all(cost);
        self.record_collective(&starts, "bcast");
    }

    /// MPI_Reduce of `bytes` to rank 0.
    pub fn reduce(&mut self, bytes: Bytes) {
        let starts = self.clock_snapshot();
        self.sync_clocks();
        let algo = self.algo;
        let cost = self.hierarchical_cost(
            bytes,
            |p, b, ptp| collectives::reduce(p, b, algo, ptp),
            |p, b, ptp| collectives::reduce(p, b, algo, ptp),
        );
        self.advance_all(cost);
        self.record_collective(&starts, "reduce");
    }

    /// MPI_Allgather where each rank contributes `bytes`.
    pub fn allgather(&mut self, bytes: Bytes) {
        let starts = self.clock_snapshot();
        self.sync_clocks();
        let algo = self.algo;
        let rpn = self.layout.ranks_per_node;
        let cost = self.hierarchical_cost(
            bytes,
            |p, b, ptp| collectives::allgather(p, b, algo, ptp),
            // Node leaders carry their node's aggregated contribution.
            |p, b, ptp| collectives::allgather(p, b * rpn as f64, algo, ptp),
        );
        self.advance_all(cost);
        self.record_collective(&starts, "allgather");
    }

    /// MPI_Alltoall where each rank sends `bytes` to every other rank.
    pub fn alltoall(&mut self, bytes: Bytes) {
        let starts = self.clock_snapshot();
        self.sync_clocks();
        let rpn = self.layout.ranks_per_node;
        let cost = self.hierarchical_cost(
            bytes,
            |p, b, ptp| collectives::alltoall(p, b, ptp),
            // Inter-node traffic: each node exchanges rpn² rank-pair
            // payloads with every other node.
            |p, b, ptp| collectives::alltoall(p, b * (rpn * rpn) as f64, ptp),
        );
        self.advance_all(cost);
        self.record_collective(&starts, "alltoall");
    }

    /// Allreduce over a sub-communicator (e.g. HPL's grid rows/columns):
    /// only the listed ranks synchronize and pay the cost; everyone else
    /// keeps running.
    ///
    /// # Panics
    /// Panics on duplicate or out-of-range ranks.
    pub fn allreduce_among(&mut self, ranks: &[usize], bytes: Bytes) {
        if ranks.len() <= 1 {
            return;
        }
        let mut seen = vec![false; self.n_ranks()];
        for &r in ranks {
            assert!(r < self.n_ranks(), "rank out of range");
            assert!(!seen[r], "duplicate rank in sub-communicator");
            seen[r] = true;
        }
        let starts = self.clock_snapshot();
        // Synchronize the subset.
        let latest = ranks
            .iter()
            .map(|&r| self.clocks[r].now())
            .fold(Time::ZERO, Time::max);
        for &r in ranks {
            self.clocks[r].advance_to(latest);
        }
        // Cost: how many distinct nodes does the subset span?
        let mut nodes: Vec<_> = ranks.iter().map(|&r| self.layout.node_of(r)).collect();
        nodes.sort_unstable();
        nodes.dedup();
        let per_node = ranks.len().div_ceil(nodes.len());
        let algo = self.algo;
        let cost = collectives::allreduce(per_node, bytes, algo, |b| self.intra_node_ptp(b))
            + collectives::allreduce(nodes.len(), bytes, algo, |b| self.inter_node_ptp(b));
        for &r in ranks {
            self.clocks[r].advance(cost);
        }
        let ends: Vec<Time> = ranks.iter().map(|&r| self.clocks[r].now()).collect();
        if let Some(trace) = self.trace.as_mut() {
            for (&r, &e) in ranks.iter().zip(&ends) {
                trace.record(r, Activity::Collective, starts[r], e, "allreduce(sub)");
            }
        }
    }

    /// MPI_Gather of `bytes` per rank to rank 0.
    pub fn gather(&mut self, bytes: Bytes) {
        let starts = self.clock_snapshot();
        self.sync_clocks();
        let rpn = self.layout.ranks_per_node;
        let cost = self.hierarchical_cost(
            bytes,
            |p, b, ptp| collectives::gather(p, b, ptp),
            // Node leaders forward their node's aggregate.
            |p, b, ptp| collectives::gather(p, b * rpn as f64, ptp),
        );
        self.advance_all(cost);
        self.record_collective(&starts, "gather");
    }

    /// MPI_Reduce_scatter of `bytes` per rank.
    pub fn reduce_scatter(&mut self, bytes: Bytes) {
        let starts = self.clock_snapshot();
        self.sync_clocks();
        let cost = self.hierarchical_cost(
            bytes,
            |p, b, ptp| collectives::reduce_scatter(p, b, ptp),
            |p, b, ptp| collectives::reduce_scatter(p, b, ptp),
        );
        self.advance_all(cost);
        self.record_collective(&starts, "reduce_scatter");
    }

    /// MPI_Scan (inclusive prefix) of `bytes` per rank.
    pub fn scan(&mut self, bytes: Bytes) {
        let starts = self.clock_snapshot();
        self.sync_clocks();
        let cost = self.hierarchical_cost(
            bytes,
            |p, b, ptp| collectives::scan(p, b, ptp),
            |p, b, ptp| collectives::scan(p, b, ptp),
        );
        self.advance_all(cost);
        self.record_collective(&starts, "scan");
    }

    /// Paired MPI_Sendrecv between two ranks: both clocks meet, then pay the
    /// transfer.
    pub fn sendrecv(&mut self, a: usize, b: usize, bytes: Bytes) {
        assert!(
            a < self.n_ranks() && b < self.n_ranks(),
            "rank out of range"
        );
        let start = self.clocks[a].now().max(self.clocks[b].now());
        let t = if self.layout.same_node(a, b) {
            self.intra_node_ptp(bytes)
        } else {
            self.network
                .message_time(self.layout.node_of(a), self.layout.node_of(b), bytes)
        };
        let end = start + t;
        let (sa, sb) = (self.clocks[a].now(), self.clocks[b].now());
        self.clocks[a].advance_to(end);
        self.clocks[b].advance_to(end);
        if let Some(trace) = self.trace.as_mut() {
            trace.record(a, Activity::PointToPoint, sa, end, "sendrecv");
            trace.record(b, Activity::PointToPoint, sb, end, "sendrecv");
        }
    }

    /// Post a non-blocking neighbour exchange (`MPI_Isend`/`MPI_Irecv`):
    /// each rank pays only the injection overheads now; the wire time
    /// proceeds in the background and [`Job::wait_halo`] synchronizes with
    /// it. Compute issued between post and wait overlaps with the
    /// transfers — the classic halo-hiding pattern.
    pub fn post_neighbor_exchange(
        &mut self,
        neighbors: impl Fn(usize) -> Vec<(usize, Bytes)>,
    ) -> PendingHalo {
        let sw = self.network.link().sw_overhead;
        let mut completion = Vec::with_capacity(self.n_ranks());
        for rank in 0..self.n_ranks() {
            let msgs = neighbors(rank);
            if msgs.is_empty() {
                completion.push(self.clocks[rank].now());
                continue;
            }
            // Injection overheads occupy the CPU.
            let inject = sw * msgs.len() as f64;
            let start = self.clocks[rank].now();
            self.clocks[rank].advance(inject);
            // Wire time proceeds asynchronously from the post time.
            let mut slowest = Time::ZERO;
            for &(peer, bytes) in &msgs {
                assert!(peer < self.n_ranks(), "peer rank out of range");
                let t = if self.layout.same_node(rank, peer) {
                    self.intra_node_ptp(bytes)
                } else {
                    self.network.message_time(
                        self.layout.node_of(rank),
                        self.layout.node_of(peer),
                        bytes,
                    )
                };
                slowest = slowest.max(t);
            }
            completion.push(start + inject + slowest);
        }
        PendingHalo { completion }
    }

    /// Complete a posted exchange: each rank's clock jumps to the later of
    /// its current time (compute finished after the wire) and the
    /// transfer completion (the wire was the bottleneck).
    pub fn wait_halo(&mut self, pending: PendingHalo) {
        assert_eq!(
            pending.completion.len(),
            self.n_ranks(),
            "pending halo from a different job"
        );
        for (rank, &done) in pending.completion.iter().enumerate() {
            let start = self.clocks[rank].now();
            self.clocks[rank].advance_to(done);
            if let Some(trace) = self.trace.as_mut() {
                let end = start.max(done);
                if end > start {
                    trace.record(rank, Activity::PointToPoint, start, end, "halo-wait");
                }
            }
        }
    }

    /// Blocking neighbour (halo) exchange: post and immediately wait.
    /// Defined as the composition of [`Job::post_neighbor_exchange`] and
    /// [`Job::wait_halo`], so blocking and overlapped paths share one cost
    /// model by construction.
    pub fn neighbor_exchange(&mut self, neighbors: impl Fn(usize) -> Vec<(usize, Bytes)>) {
        let pending = self.post_neighbor_exchange(neighbors);
        self.wait_halo(pending);
    }

    /// Collective file output of `total_bytes` through a shared parallel
    /// filesystem of the given sustained bandwidth (used for WRF's hourly
    /// frames). All ranks block until the write drains.
    pub fn parallel_write(&mut self, total_bytes: Bytes, fs_bandwidth: Bandwidth) {
        let starts = self.clock_snapshot();
        self.sync_clocks();
        self.advance_all(total_bytes / fs_bandwidth);
        let ends: Vec<Time> = self.clocks.iter().map(|c| c.now()).collect();
        if let Some(trace) = self.trace.as_mut() {
            for (rank, (&s, &e)) in starts.iter().zip(&ends).enumerate() {
                trace.record(rank, Activity::Io, s, e, "parallel_write");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arch::machines::{cte_arm, marenostrum4};
    use interconnect::fattree::FatTree;
    use interconnect::link::LinkModel;
    use interconnect::tofu::TofuD;

    fn cte_job(n_nodes: usize, rpn: usize, tpr: usize) -> (Machine, Compiler, Network<TofuD>) {
        let m = cte_arm();
        let c = Compiler::gnu_sve();
        let net = Network::new(TofuD::cte_arm(), LinkModel::tofud());
        let _ = (n_nodes, rpn, tpr);
        (m, c, net)
    }

    fn layout(machine: &Machine, n_nodes: usize, rpn: usize, tpr: usize) -> JobLayout {
        JobLayout::new(
            (0..n_nodes).map(NodeId).collect(),
            rpn,
            tpr,
            machine.memory.n_domains,
            machine.cores_per_node(),
        )
    }

    #[test]
    fn fresh_job_has_zero_elapsed() {
        let (m, c, net) = cte_job(4, 48, 1);
        let job = Job::new(&m, &c, &net, layout(&m, 4, 48, 1), 1);
        assert_eq!(job.elapsed(), Time::ZERO);
        assert_eq!(job.n_ranks(), 192);
    }

    #[test]
    fn compute_advances_clocks() {
        let (m, c, net) = cte_job(2, 48, 1);
        let mut job = Job::new(&m, &c, &net, layout(&m, 2, 48, 1), 1);
        job.compute(&KernelProfile::dp("work", 1e9, 1e8));
        assert!(job.elapsed().value() > 0.0);
        // All ranks advanced.
        assert!(job.rank_times().iter().all(|t| t.value() > 0.0));
    }

    #[test]
    fn imbalance_spreads_rank_times() {
        let (m, c, net) = cte_job(2, 48, 1);
        let mut job = Job::new(&m, &c, &net, layout(&m, 2, 48, 1), 1).with_imbalance(0.1);
        job.compute(&KernelProfile::dp("work", 1e9, 1e8));
        let times = job.rank_times();
        let min = times
            .iter()
            .map(|t| t.value())
            .fold(f64::INFINITY, f64::min);
        let max = times.iter().map(|t| t.value()).fold(0.0, f64::max);
        assert!(max > min * 1.02, "imbalance should spread clocks");
        // Zero imbalance: identical clocks.
        let mut balanced = Job::new(&m, &c, &net, layout(&m, 2, 48, 1), 1).with_imbalance(0.0);
        balanced.compute(&KernelProfile::dp("work", 1e9, 1e8));
        let bt = balanced.rank_times();
        assert!(bt.iter().all(|t| (t.value() - bt[0].value()).abs() < 1e-15));
    }

    #[test]
    fn barrier_aligns_clocks() {
        let (m, c, net) = cte_job(2, 48, 1);
        let mut job = Job::new(&m, &c, &net, layout(&m, 2, 48, 1), 1).with_imbalance(0.2);
        job.compute(&KernelProfile::dp("work", 1e9, 1e8));
        job.barrier();
        let times = job.rank_times();
        assert!(
            times
                .iter()
                .all(|t| (t.value() - times[0].value()).abs() < 1e-15),
            "clocks aligned after barrier"
        );
    }

    #[test]
    fn allreduce_costs_more_on_more_nodes() {
        let (m, c, net) = cte_job(2, 48, 1);
        let mut small = Job::new(&m, &c, &net, layout(&m, 2, 48, 1), 1).with_imbalance(0.0);
        let mut large = Job::new(&m, &c, &net, layout(&m, 64, 48, 1), 1).with_imbalance(0.0);
        small.allreduce(Bytes::kib(8.0));
        large.allreduce(Bytes::kib(8.0));
        assert!(large.elapsed() > small.elapsed());
    }

    #[test]
    fn sendrecv_couples_two_ranks_only() {
        let (m, c, net) = cte_job(2, 4, 12);
        let mut job = Job::new(&m, &c, &net, layout(&m, 2, 4, 12), 1).with_imbalance(0.0);
        job.sendrecv(0, 7, Bytes::kib(64.0));
        let times = job.rank_times();
        assert!(times[0].value() > 0.0);
        assert_eq!(times[0], times[7]);
        assert_eq!(times[3], Time::ZERO);
    }

    #[test]
    fn intra_node_messages_are_cheaper() {
        let (m, c, net) = cte_job(2, 4, 12);
        let mut job = Job::new(&m, &c, &net, layout(&m, 2, 4, 12), 1).with_imbalance(0.0);
        job.sendrecv(0, 1, Bytes::kib(64.0)); // same node
        let intra = job.rank_times()[0];
        let mut job2 = Job::new(&m, &c, &net, layout(&m, 2, 4, 12), 1).with_imbalance(0.0);
        job2.sendrecv(0, 4, Bytes::kib(64.0)); // across nodes
        let inter = job2.rank_times()[0];
        assert!(intra < inter);
    }

    #[test]
    fn neighbor_exchange_overlaps_messages() {
        let (m, c, net) = cte_job(4, 1, 48);
        let mut job = Job::new(&m, &c, &net, layout(&m, 4, 1, 48), 1).with_imbalance(0.0);
        // Ring halo: each rank talks to both neighbours.
        let n = job.n_ranks();
        job.neighbor_exchange(|r| {
            vec![
                ((r + 1) % n, Bytes::kib(32.0)),
                ((r + n - 1) % n, Bytes::kib(32.0)),
            ]
        });
        let t_two = job.elapsed();
        // A single message of the same size costs barely less (overlap).
        let mut one = Job::new(&m, &c, &net, layout(&m, 4, 1, 48), 1).with_imbalance(0.0);
        one.neighbor_exchange(|r| vec![((r + 1) % n, Bytes::kib(32.0))]);
        let t_one = one.elapsed();
        assert!(t_two.value() < t_one.value() * 2.0, "messages overlap");
        assert!(
            t_two > t_one,
            "extra message still costs injection overhead"
        );
    }

    #[test]
    fn parallel_write_scales_with_volume() {
        let (m, c, net) = cte_job(2, 48, 1);
        let mut job = Job::new(&m, &c, &net, layout(&m, 2, 48, 1), 1);
        job.parallel_write(Bytes::gb(10.0), Bandwidth::gb_per_sec(5.0));
        assert!((job.elapsed().value() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn works_on_fattree_cluster_too() {
        let m = marenostrum4();
        let c = Compiler::intel();
        let net = Network::new(FatTree::marenostrum4(), LinkModel::omnipath());
        let l = JobLayout::new(
            (0..16).map(NodeId).collect(),
            48,
            1,
            m.memory.n_domains,
            m.cores_per_node(),
        );
        let mut job = Job::new(&m, &c, &net, l, 1);
        job.compute(&KernelProfile::dp("work", 1e10, 1e9));
        job.allreduce(Bytes::kib(64.0));
        assert!(job.elapsed().value() > 0.0);
    }

    #[test]
    fn cached_route_cost_is_bit_identical_to_rerouting() {
        // A job on a network with the routing table prebuilt must price
        // every collective exactly like one that routes through the
        // topology directly.
        let (m, c, net) = cte_job(8, 48, 1);
        let net_cached = Network::new(TofuD::cte_arm(), LinkModel::tofud());
        net_cached.routing_table();
        let script = |net: &Network<TofuD>| {
            let mut job = Job::new(&m, &c, net, layout(&m, 8, 48, 1), 7).with_imbalance(0.0);
            job.allreduce(Bytes::kib(64.0));
            job.alltoall(Bytes::kib(4.0));
            job.bcast(Bytes::mib(1.0));
            job.elapsed().value()
        };
        assert_eq!(script(&net).to_bits(), script(&net_cached).to_bits());
    }

    #[test]
    fn far_pair_spans_the_allocation() {
        let (m, c, net) = cte_job(4, 48, 1);
        let job = Job::new(&m, &c, &net, layout(&m, 4, 48, 1), 1);
        let (a, b) = job.far_pair();
        let topo = net.topology();
        // The double sweep lands on a pair at least as far apart as any
        // pair involving node 0.
        let from_zero = (0..4)
            .map(|i| topo.hops(NodeId(0), NodeId(i)))
            .max()
            .unwrap();
        assert!(topo.hops(a, b) >= from_zero);
    }

    #[test]
    fn deterministic_across_runs() {
        let (m, c, net) = cte_job(4, 48, 1);
        let run = || {
            let mut job = Job::new(&m, &c, &net, layout(&m, 4, 48, 1), 42);
            job.compute(&KernelProfile::dp("w", 1e9, 1e8));
            job.allreduce(Bytes::kib(8.0));
            job.elapsed().value()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn overlap_hides_halo_behind_compute() {
        let (m, c, net) = cte_job(4, 1, 48);
        let layout4 = layout(&m, 4, 1, 48);
        let work = KernelProfile::dp("w", 5e10, 1e8);
        let halo = Bytes::mib(2.0);
        let n = 4;
        let peers = move |r: usize| vec![((r + 1) % n, halo), ((r + n - 1) % n, halo)];

        // Sequential: compute, then blocking halo.
        let mut seq = Job::new(&m, &c, &net, layout4.clone(), 1).with_imbalance(0.0);
        seq.compute(&work);
        seq.neighbor_exchange(peers);
        let t_seq = seq.elapsed();

        // Overlapped: post, compute, wait.
        let mut ovl = Job::new(&m, &c, &net, layout(&m, 4, 1, 48), 1).with_imbalance(0.0);
        let pending = ovl.post_neighbor_exchange(peers);
        ovl.compute(&work);
        ovl.wait_halo(pending);
        let t_ovl = ovl.elapsed();

        assert!(t_ovl < t_seq, "overlap must win: {t_ovl} vs {t_seq}");
        // And it can never beat the compute time alone.
        let mut comp = Job::new(&m, &c, &net, layout(&m, 4, 1, 48), 1).with_imbalance(0.0);
        comp.compute(&work);
        assert!(t_ovl >= comp.elapsed());
    }

    #[test]
    fn wait_without_compute_costs_the_full_transfer() {
        let (m, c, net) = cte_job(2, 1, 48);
        let halo = Bytes::mib(4.0);
        let mut a = Job::new(&m, &c, &net, layout(&m, 2, 1, 48), 1).with_imbalance(0.0);
        let pending = a.post_neighbor_exchange(|r| vec![(1 - r, halo)]);
        a.wait_halo(pending);
        let mut b = Job::new(&m, &c, &net, layout(&m, 2, 1, 48), 1).with_imbalance(0.0);
        b.neighbor_exchange(|r| vec![(1 - r, halo)]);
        // Identical when nothing overlaps (same injection + wire costs).
        assert!((a.elapsed().value() - b.elapsed().value()).abs() < 1e-12);
    }

    #[test]
    fn trace_records_compute_and_collectives() {
        use crate::trace::Activity;
        let (m, c, net) = cte_job(2, 4, 12);
        let mut job = Job::new(&m, &c, &net, layout(&m, 2, 4, 12), 1)
            .with_tracing()
            .with_imbalance(0.05);
        job.compute(&KernelProfile::dp("kernel-x", 1e9, 1e7));
        job.allreduce(Bytes::kib(8.0));
        job.parallel_write(Bytes::mib(10.0), Bandwidth::gb_per_sec(10.0));
        let trace = job.trace().expect("tracing enabled");
        // 8 ranks × (1 compute + 1 collective + 1 io).
        assert_eq!(trace.events.len(), 24);
        assert!(trace.fraction(Activity::Compute) > 0.0);
        assert!(trace.fraction(Activity::Collective) > 0.0);
        assert!(trace.fraction(Activity::Io) > 0.0);
        let gantt = trace.gantt(4, 40);
        assert!(gantt.contains("r0"));
        // With imbalance, the fastest rank's collective interval includes
        // its wait for the slowest — collective time varies per rank.
        let coll: Vec<f64> = trace
            .events
            .iter()
            .filter(|e| e.activity == Activity::Collective)
            .map(|e| e.duration().value())
            .collect();
        let min = coll.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = coll.iter().cloned().fold(0.0, f64::max);
        assert!(max > min, "waits differ across ranks");
    }

    #[test]
    fn untraced_job_has_no_trace() {
        let (m, c, net) = cte_job(1, 4, 1);
        let mut job = Job::new(&m, &c, &net, layout(&m, 1, 4, 1), 1);
        job.compute(&KernelProfile::dp("w", 1e6, 0.0));
        assert!(job.trace().is_none());
    }

    #[test]
    fn extra_collectives_advance_clocks() {
        let (m, c, net) = cte_job(4, 48, 1);
        for op in ["gather", "reduce_scatter", "scan"] {
            let mut job = Job::new(&m, &c, &net, layout(&m, 4, 48, 1), 1).with_imbalance(0.0);
            match op {
                "gather" => job.gather(Bytes::kib(4.0)),
                "reduce_scatter" => job.reduce_scatter(Bytes::kib(4.0)),
                _ => job.scan(Bytes::kib(4.0)),
            }
            assert!(job.elapsed().value() > 0.0, "{op} must cost time");
        }
    }

    #[test]
    fn subset_allreduce_leaves_others_untouched() {
        let (m, c, net) = cte_job(4, 4, 12);
        let mut job = Job::new(&m, &c, &net, layout(&m, 4, 4, 12), 1).with_imbalance(0.0);
        // Ranks 0, 4, 8, 12: one per node — a "grid column".
        job.allreduce_among(&[0, 4, 8, 12], Bytes::kib(8.0));
        let times = job.rank_times();
        assert!(times[0].value() > 0.0);
        assert_eq!(times[0], times[4]);
        assert_eq!(times[1], Time::ZERO, "non-members untouched");
        // The subset collective is cheaper than the full one.
        let mut full = Job::new(&m, &c, &net, layout(&m, 4, 4, 12), 1).with_imbalance(0.0);
        full.allreduce(Bytes::kib(8.0));
        assert!(times[0] < full.elapsed());
    }

    #[test]
    #[should_panic(expected = "duplicate rank")]
    fn subset_allreduce_rejects_duplicates() {
        let (m, c, net) = cte_job(2, 4, 12);
        let mut job = Job::new(&m, &c, &net, layout(&m, 2, 4, 12), 1);
        job.allreduce_among(&[0, 0], Bytes::kib(1.0));
    }

    #[test]
    fn slowdown_fault_stretches_compute_on_its_node_only() {
        use interconnect::faults::{Fault, FaultPlan};
        let (m, c, net) = cte_job(2, 4, 12);
        let plan = FaultPlan::new("slow").with(Fault::Slowdown {
            node: NodeId(1),
            factor: 0.5,
        });
        let jf = crate::faults::JobFaults::from_plan(&plan);
        let mut job = Job::new(&m, &c, &net, layout(&m, 2, 4, 12), 1)
            .with_imbalance(0.0)
            .with_faults(&jf);
        job.compute(&KernelProfile::dp("w", 1e9, 1e8));
        let times = job.rank_times();
        // Ranks 0–3 live on node 0 (healthy), ranks 4–7 on node 1 (×2).
        assert!(
            (times[4].value() - 2.0 * times[0].value()).abs() < 1e-12 * times[0].value(),
            "throttled node runs exactly 2x slower"
        );
    }

    #[test]
    fn empty_faults_are_bit_neutral() {
        let (m, c, net) = cte_job(4, 48, 1);
        let script = |job: &mut Job<TofuD>| {
            job.compute(&KernelProfile::dp("w", 1e9, 1e8));
            job.allreduce(Bytes::kib(8.0));
            job.elapsed().value()
        };
        let mut plain = Job::new(&m, &c, &net, layout(&m, 4, 48, 1), 42);
        let mut faulted = Job::new(&m, &c, &net, layout(&m, 4, 48, 1), 42)
            .with_faults(&crate::faults::JobFaults::none());
        assert_eq!(
            script(&mut plain).to_bits(),
            script(&mut faulted).to_bits(),
            "JobFaults::none must not perturb a single bit"
        );
    }

    #[test]
    fn any_fault_never_speeds_a_job_up() {
        use interconnect::faults::{Fault, FaultPlan};
        use interconnect::network::Degradation;
        let (m, c, net) = cte_job(4, 48, 1);
        let plan = FaultPlan::new("mix")
            .with(Fault::Degrade {
                node: NodeId(2),
                degradation: Degradation::receive_fault(0.1),
            })
            .with(Fault::Retransmit {
                node: NodeId(1),
                drop_prob: 0.2,
                timeout: Time::micros(30.0),
            })
            .with(Fault::Slowdown {
                node: NodeId(3),
                factor: 0.6,
            });
        let faulty_net = plan.apply(Network::new(TofuD::cte_arm(), LinkModel::tofud()));
        let jf = crate::faults::JobFaults::from_plan(&plan);
        let script = |net: &Network<TofuD>, jf: &crate::faults::JobFaults| {
            let mut job = Job::new(&m, &c, net, layout(&m, 4, 48, 1), 7)
                .with_imbalance(0.0)
                .with_faults(jf);
            job.compute(&KernelProfile::dp("w", 1e9, 1e8));
            job.allreduce(Bytes::kib(64.0));
            job.sendrecv(0, 100, Bytes::kib(32.0));
            job.alltoall(Bytes::kib(4.0));
            job.elapsed()
        };
        let clean = script(&net, &crate::faults::JobFaults::none());
        let faulty = script(&faulty_net, &jf);
        assert!(faulty >= clean, "faults cannot reduce makespan");
        assert!(faulty > clean, "these faults sit on allocated nodes");
    }

    #[test]
    #[should_panic(expected = "cannot place ranks on failed node")]
    fn placement_on_failed_node_is_refused() {
        use interconnect::faults::{Fault, FaultPlan};
        let (m, c, _) = cte_job(2, 4, 12);
        let plan = FaultPlan::new("dead").with(Fault::Failure { node: NodeId(1) });
        let net = plan.apply(Network::new(TofuD::cte_arm(), LinkModel::tofud()));
        let jf = crate::faults::JobFaults::from_plan(&plan);
        let _ = Job::new(&m, &c, &net, layout(&m, 2, 4, 12), 1).with_faults(&jf);
    }

    #[test]
    #[should_panic(expected = "rank out of range")]
    fn sendrecv_bounds_checked() {
        let (m, c, net) = cte_job(1, 4, 1);
        let mut job = Job::new(&m, &c, &net, layout(&m, 1, 4, 1), 1);
        job.sendrecv(0, 4, Bytes::ZERO);
    }
}
