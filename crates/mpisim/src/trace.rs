//! Execution traces: per-rank timelines of what a job did.
//!
//! BSC's own workflow (the POP centre of excellence the paper
//! acknowledges) analyses applications through Paraver timelines; this
//! module records the same kind of data from simulated runs — one interval
//! per rank per operation — and renders compact summaries: the time
//! breakdown per activity and a text Gantt strip per rank.

use serde::{Deserialize, Serialize};
use simkit::units::Time;

/// What a rank was doing during an interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activity {
    /// Local computation.
    Compute,
    /// Blocking collective (includes the wait for peers).
    Collective,
    /// Point-to-point / halo communication.
    PointToPoint,
    /// Parallel file I/O.
    Io,
}

impl Activity {
    /// One-letter code used in the Gantt strip.
    pub fn code(self) -> char {
        match self {
            Activity::Compute => 'C',
            Activity::Collective => 'A',
            Activity::PointToPoint => 'p',
            Activity::Io => 'W',
        }
    }
}

/// One traced interval on one rank.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceEvent {
    /// The rank.
    pub rank: usize,
    /// Activity kind.
    pub activity: Activity,
    /// Interval start.
    pub start: Time,
    /// Interval end.
    pub end: Time,
    /// Operation label (kernel or collective name).
    pub label: String,
}

impl TraceEvent {
    /// Interval length.
    pub fn duration(&self) -> Time {
        self.end - self.start
    }
}

/// A recorded job trace.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    /// All events, in recording order.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one interval.
    pub fn record(&mut self, rank: usize, activity: Activity, start: Time, end: Time, label: &str) {
        debug_assert!(end >= start, "negative interval");
        self.events.push(TraceEvent {
            rank,
            activity,
            start,
            end,
            label: label.to_string(),
        });
    }

    /// Total traced time per activity, summed over ranks.
    pub fn breakdown(&self) -> Vec<(Activity, Time)> {
        let mut acc: Vec<(Activity, Time)> = Vec::new();
        for e in &self.events {
            match acc.iter_mut().find(|(a, _)| *a == e.activity) {
                Some((_, t)) => *t += e.duration(),
                None => acc.push((e.activity, e.duration())),
            }
        }
        acc
    }

    /// Fraction of traced time spent in an activity.
    pub fn fraction(&self, activity: Activity) -> f64 {
        let total: f64 = self.events.iter().map(|e| e.duration().value()).sum();
        if total == 0.0 {
            return 0.0;
        }
        let part: f64 = self
            .events
            .iter()
            .filter(|e| e.activity == activity)
            .map(|e| e.duration().value())
            .sum();
        part / total
    }

    /// Latest event end.
    pub fn span(&self) -> Time {
        self.events
            .iter()
            .map(|e| e.end)
            .fold(Time::ZERO, Time::max)
    }

    /// Render a text Gantt: one strip of `width` cells per rank (first
    /// `max_ranks` ranks), each cell showing the dominant activity code.
    pub fn gantt(&self, max_ranks: usize, width: usize) -> String {
        use std::fmt::Write as _;
        assert!(width >= 1, "zero-width gantt");
        let span = self.span().value();
        let mut out = String::new();
        if span == 0.0 {
            return out;
        }
        let ranks: Vec<usize> = {
            let mut r: Vec<usize> = self.events.iter().map(|e| e.rank).collect();
            r.sort_unstable();
            r.dedup();
            r.into_iter().take(max_ranks).collect()
        };
        let _ = writeln!(
            out,
            "time →  0 .. {span:.3} s   (C compute, A collective, p p2p, W io)"
        );
        for rank in ranks {
            let mut cells = vec![('.', 0.0f64); width];
            for e in self.events.iter().filter(|e| e.rank == rank) {
                let c0 = ((e.start.value() / span) * width as f64) as usize;
                let c1 = (((e.end.value() / span) * width as f64).ceil() as usize).min(width);
                let weight = e.duration().value() / (c1.max(c0 + 1) - c0) as f64;
                for cell in cells.iter_mut().take(c1).skip(c0) {
                    if weight >= cell.1 {
                        *cell = (e.activity.code(), weight);
                    }
                }
            }
            let strip: String = cells.into_iter().map(|(c, _)| c).collect();
            let _ = writeln!(out, "r{rank:<5} |{strip}|");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> Time {
        Time::seconds(s)
    }

    #[test]
    fn breakdown_sums_durations() {
        let mut tr = Trace::new();
        tr.record(0, Activity::Compute, t(0.0), t(2.0), "k");
        tr.record(0, Activity::Collective, t(2.0), t(3.0), "allreduce");
        tr.record(1, Activity::Compute, t(0.0), t(1.0), "k");
        let b = tr.breakdown();
        let compute = b.iter().find(|(a, _)| *a == Activity::Compute).unwrap().1;
        assert_eq!(compute, t(3.0));
        assert!((tr.fraction(Activity::Compute) - 0.75).abs() < 1e-12);
        assert_eq!(tr.span(), t(3.0));
    }

    #[test]
    fn empty_trace_is_benign() {
        let tr = Trace::new();
        assert_eq!(tr.fraction(Activity::Io), 0.0);
        assert_eq!(tr.span(), Time::ZERO);
        assert_eq!(tr.gantt(4, 10), "");
    }

    #[test]
    fn gantt_shows_dominant_activity() {
        let mut tr = Trace::new();
        tr.record(0, Activity::Compute, t(0.0), t(8.0), "k");
        tr.record(0, Activity::Collective, t(8.0), t(10.0), "a");
        let g = tr.gantt(1, 10);
        assert!(g.contains("r0"));
        let strip: &str = g.lines().nth(1).unwrap();
        let c_count = strip.matches('C').count();
        let a_count = strip.matches('A').count();
        assert!(c_count >= 7, "compute dominates: {strip}");
        assert!(a_count >= 1, "collective visible: {strip}");
    }

    #[test]
    fn gantt_caps_rank_count() {
        let mut tr = Trace::new();
        for r in 0..100 {
            tr.record(r, Activity::Compute, t(0.0), t(1.0), "k");
        }
        let g = tr.gantt(5, 20);
        assert_eq!(g.lines().count(), 6, "header + 5 ranks");
    }

    #[test]
    fn activity_codes_are_distinct() {
        let codes = [
            Activity::Compute.code(),
            Activity::Collective.code(),
            Activity::PointToPoint.code(),
            Activity::Io.code(),
        ];
        let mut dedup = codes.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 4);
    }
}
