//! Rank-to-hardware mapping.

use interconnect::topology::NodeId;
use serde::{Deserialize, Serialize};

/// How a job's MPI ranks are laid out on the allocated nodes.
///
/// Ranks are block-assigned: ranks `[i·rpn, (i+1)·rpn)` live on the `i`-th
/// allocated node, filling NUMA domains in order — the default behaviour of
/// both Fujitsu MPI and Intel MPI with block mapping.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobLayout {
    /// The allocated nodes, in assignment order.
    pub nodes: Vec<NodeId>,
    /// Ranks per node.
    pub ranks_per_node: usize,
    /// OpenMP threads per rank.
    pub threads_per_rank: usize,
    /// NUMA domains per node (4 CMGs on CTE-Arm, 2 sockets on MN4).
    pub domains_per_node: usize,
    /// Cores per node.
    pub cores_per_node: usize,
}

impl JobLayout {
    /// Build a layout, validating against oversubscription.
    ///
    /// # Panics
    /// Panics if the per-node core demand exceeds the node or any count is
    /// zero.
    pub fn new(
        nodes: Vec<NodeId>,
        ranks_per_node: usize,
        threads_per_rank: usize,
        domains_per_node: usize,
        cores_per_node: usize,
    ) -> Self {
        assert!(!nodes.is_empty(), "a job needs at least one node");
        assert!(
            ranks_per_node >= 1 && threads_per_rank >= 1,
            "zero ranks or threads"
        );
        assert!(
            ranks_per_node * threads_per_rank <= cores_per_node,
            "oversubscribed node: {ranks_per_node} ranks × {threads_per_rank} threads > {cores_per_node} cores"
        );
        Self {
            nodes,
            ranks_per_node,
            threads_per_rank,
            domains_per_node,
            cores_per_node,
        }
    }

    /// Total MPI ranks in the job.
    pub fn n_ranks(&self) -> usize {
        self.nodes.len() * self.ranks_per_node
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Cores actually busy on each node.
    pub fn active_cores_per_node(&self) -> usize {
        self.ranks_per_node * self.threads_per_rank
    }

    /// The node hosting a rank.
    pub fn node_of(&self, rank: usize) -> NodeId {
        assert!(rank < self.n_ranks(), "rank {rank} out of range");
        self.nodes[rank / self.ranks_per_node]
    }

    /// The NUMA domain (within its node) hosting a rank, assuming block
    /// assignment of ranks to domains.
    pub fn domain_of(&self, rank: usize) -> usize {
        assert!(rank < self.n_ranks(), "rank {rank} out of range");
        let local = rank % self.ranks_per_node;
        // Spread local ranks over the domains evenly.
        local * self.domains_per_node / self.ranks_per_node
    }

    /// Whether two ranks share a node (messages go through shared memory).
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// All ranks resident on the `i`-th allocated node.
    pub fn ranks_on_node(&self, i: usize) -> std::ops::Range<usize> {
        assert!(i < self.nodes.len(), "node index out of range");
        i * self.ranks_per_node..(i + 1) * self.ranks_per_node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(n: usize) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn rank_counting() {
        let l = JobLayout::new(nodes(4), 48, 1, 4, 48);
        assert_eq!(l.n_ranks(), 192);
        assert_eq!(l.n_nodes(), 4);
        assert_eq!(l.active_cores_per_node(), 48);
    }

    #[test]
    fn node_assignment_is_block() {
        let l = JobLayout::new(nodes(3), 4, 12, 4, 48);
        assert_eq!(l.node_of(0), NodeId(0));
        assert_eq!(l.node_of(3), NodeId(0));
        assert_eq!(l.node_of(4), NodeId(1));
        assert_eq!(l.node_of(11), NodeId(2));
        assert!(l.same_node(0, 3));
        assert!(!l.same_node(3, 4));
    }

    #[test]
    fn domain_assignment_spreads() {
        // 4 ranks on a 4-domain node: one rank per domain.
        let l = JobLayout::new(nodes(1), 4, 12, 4, 48);
        let domains: Vec<usize> = (0..4).map(|r| l.domain_of(r)).collect();
        assert_eq!(domains, vec![0, 1, 2, 3]);
        // 48 ranks on a 4-domain node: 12 ranks per domain.
        let l = JobLayout::new(nodes(1), 48, 1, 4, 48);
        assert_eq!(l.domain_of(0), 0);
        assert_eq!(l.domain_of(11), 0);
        assert_eq!(l.domain_of(12), 1);
        assert_eq!(l.domain_of(47), 3);
    }

    #[test]
    fn ranks_on_node_ranges() {
        let l = JobLayout::new(nodes(2), 3, 1, 4, 48);
        assert_eq!(l.ranks_on_node(0), 0..3);
        assert_eq!(l.ranks_on_node(1), 3..6);
    }

    #[test]
    #[should_panic(expected = "oversubscribed")]
    fn oversubscription_rejected() {
        JobLayout::new(nodes(1), 5, 12, 4, 48);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rank_bounds_checked() {
        let l = JobLayout::new(nodes(1), 2, 1, 4, 48);
        l.node_of(2);
    }
}
