//! Collective-operation cost formulas.
//!
//! Costs follow the classic Hockney-style decomposition. A collective over
//! `p` participants with payload `n` bytes and representative point-to-point
//! time `ptp(n)` costs:
//!
//! | collective | binomial tree | ring |
//! |---|---|---|
//! | barrier    | `⌈log₂ p⌉ · ptp(0)` | — |
//! | bcast      | `⌈log₂ p⌉ · ptp(n)` | `(p−1) · ptp(n/p)` |
//! | reduce     | `⌈log₂ p⌉ · ptp(n)` | `(p−1) · ptp(n/p)` |
//! | allreduce  | reduce + bcast | `2(p−1) · ptp(n/p)` |
//! | allgather  | `⌈log₂ p⌉ · ptp(n·p/2)` (recursive doubling) | `(p−1) · ptp(n)` |
//! | alltoall   | `(p−1) · ptp(n)` (pairwise exchange) | same |
//!
//! Real MPI libraries switch algorithm by message size; [`CollectiveAlgo::Auto`]
//! mimics that (tree below 16 KiB per-rank payload, ring above).

use simkit::units::{Bytes, Time};

/// Inter-node collective algorithm selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectiveAlgo {
    /// Latency-optimal binomial tree / recursive doubling.
    BinomialTree,
    /// Bandwidth-optimal ring.
    Ring,
    /// Size-based switch like production MPI libraries.
    Auto,
}

impl CollectiveAlgo {
    fn resolve(self, bytes: Bytes) -> CollectiveAlgo {
        match self {
            CollectiveAlgo::Auto => {
                if bytes.value() < 16.0 * 1024.0 {
                    CollectiveAlgo::BinomialTree
                } else {
                    CollectiveAlgo::Ring
                }
            }
            other => other,
        }
    }
}

fn ceil_log2(p: usize) -> f64 {
    if p <= 1 {
        0.0
    } else {
        (usize::BITS - (p - 1).leading_zeros()) as f64
    }
}

/// Barrier over `p` participants.
pub fn barrier(p: usize, ptp0: Time) -> Time {
    ptp0 * ceil_log2(p)
}

/// Broadcast of `bytes` from one root to `p` participants.
pub fn bcast(p: usize, bytes: Bytes, algo: CollectiveAlgo, ptp: impl Fn(Bytes) -> Time) -> Time {
    if p <= 1 {
        return Time::ZERO;
    }
    match algo.resolve(bytes) {
        CollectiveAlgo::BinomialTree => ptp(bytes) * ceil_log2(p),
        CollectiveAlgo::Ring => ptp(bytes / p as f64) * (p - 1) as f64,
        CollectiveAlgo::Auto => unreachable!("resolved above"),
    }
}

/// Reduction of `bytes` from `p` participants to one root.
pub fn reduce(p: usize, bytes: Bytes, algo: CollectiveAlgo, ptp: impl Fn(Bytes) -> Time) -> Time {
    // Same communication structure as bcast, reversed.
    bcast(p, bytes, algo, ptp)
}

/// Allreduce of `bytes` across `p` participants.
pub fn allreduce(
    p: usize,
    bytes: Bytes,
    algo: CollectiveAlgo,
    ptp: impl Fn(Bytes) -> Time,
) -> Time {
    if p <= 1 {
        return Time::ZERO;
    }
    match algo.resolve(bytes) {
        CollectiveAlgo::BinomialTree => ptp(bytes) * (2.0 * ceil_log2(p)),
        // Rabenseifner ring: reduce-scatter + allgather.
        CollectiveAlgo::Ring => ptp(bytes / p as f64) * (2 * (p - 1)) as f64,
        CollectiveAlgo::Auto => unreachable!("resolved above"),
    }
}

/// Allgather where each participant contributes `bytes`.
pub fn allgather(
    p: usize,
    bytes: Bytes,
    algo: CollectiveAlgo,
    ptp: impl Fn(Bytes) -> Time,
) -> Time {
    if p <= 1 {
        return Time::ZERO;
    }
    match algo.resolve(bytes) {
        CollectiveAlgo::BinomialTree => {
            // Recursive doubling: log p rounds, doubling payload; total
            // payload moved ≈ n·(p−1), dominated by the last round n·p/2.
            let rounds = ceil_log2(p) as usize;
            let mut t = Time::ZERO;
            for r in 0..rounds {
                let chunk = bytes * (1 << r) as f64;
                t += ptp(chunk);
            }
            t
        }
        CollectiveAlgo::Ring => ptp(bytes) * (p - 1) as f64,
        CollectiveAlgo::Auto => unreachable!("resolved above"),
    }
}

/// All-to-all personalized exchange where each participant sends `bytes` to
/// every other (pairwise-exchange algorithm, `p−1` rounds).
pub fn alltoall(p: usize, bytes: Bytes, ptp: impl Fn(Bytes) -> Time) -> Time {
    if p <= 1 {
        return Time::ZERO;
    }
    ptp(bytes) * (p - 1) as f64
}

/// Gather of `bytes` per participant to one root. Binomial tree with
/// doubling payloads: the root's last reception carries `n·p/2`.
pub fn gather(p: usize, bytes: Bytes, ptp: impl Fn(Bytes) -> Time) -> Time {
    if p <= 1 {
        return Time::ZERO;
    }
    let rounds = ceil_log2(p) as usize;
    let mut t = Time::ZERO;
    for r in 0..rounds {
        t += ptp(bytes * (1 << r) as f64);
    }
    t
}

/// Reduce-scatter of a `bytes`-per-participant contribution: the ring
/// pass of Rabenseifner's allreduce, `p−1` rounds of `n/p` chunks.
pub fn reduce_scatter(p: usize, bytes: Bytes, ptp: impl Fn(Bytes) -> Time) -> Time {
    if p <= 1 {
        return Time::ZERO;
    }
    ptp(bytes / p as f64) * (p - 1) as f64
}

/// Inclusive prefix scan: `⌈log₂ p⌉` rounds of full payloads
/// (Hillis–Steele).
pub fn scan(p: usize, bytes: Bytes, ptp: impl Fn(Bytes) -> Time) -> Time {
    if p <= 1 {
        return Time::ZERO;
    }
    ptp(bytes) * ceil_log2(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_ptp(alpha_us: f64, beta_gbps: f64) -> impl Fn(Bytes) -> Time {
        move |b: Bytes| Time::micros(alpha_us) + Time::seconds(b.value() / (beta_gbps * 1e9))
    }

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0.0);
        assert_eq!(ceil_log2(2), 1.0);
        assert_eq!(ceil_log2(3), 2.0);
        assert_eq!(ceil_log2(4), 2.0);
        assert_eq!(ceil_log2(192), 8.0);
    }

    #[test]
    fn barrier_scales_logarithmically() {
        let t0 = Time::micros(1.0);
        assert_eq!(barrier(1, t0), Time::ZERO);
        let t192 = barrier(192, t0);
        assert!((t192.as_micros() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn singleton_collectives_are_free() {
        let ptp = linear_ptp(1.0, 6.8);
        assert_eq!(
            bcast(1, Bytes::kib(4.0), CollectiveAlgo::Auto, &ptp),
            Time::ZERO
        );
        assert_eq!(
            allreduce(1, Bytes::kib(4.0), CollectiveAlgo::Auto, &ptp),
            Time::ZERO
        );
        assert_eq!(
            allgather(1, Bytes::kib(4.0), CollectiveAlgo::Auto, &ptp),
            Time::ZERO
        );
        assert_eq!(alltoall(1, Bytes::kib(4.0), &ptp), Time::ZERO);
    }

    #[test]
    fn tree_wins_small_ring_wins_large() {
        let ptp = linear_ptp(1.0, 6.8);
        let p = 64;
        let small = Bytes::new(8.0);
        let large = Bytes::mib(64.0);
        let tree_small = allreduce(p, small, CollectiveAlgo::BinomialTree, &ptp);
        let ring_small = allreduce(p, small, CollectiveAlgo::Ring, &ptp);
        assert!(tree_small < ring_small);
        let tree_large = allreduce(p, large, CollectiveAlgo::BinomialTree, &ptp);
        let ring_large = allreduce(p, large, CollectiveAlgo::Ring, &ptp);
        assert!(ring_large < tree_large);
    }

    #[test]
    fn auto_matches_best_choice_at_extremes() {
        let ptp = linear_ptp(1.0, 6.8);
        let p = 32;
        let small = Bytes::new(64.0);
        assert_eq!(
            allreduce(p, small, CollectiveAlgo::Auto, &ptp),
            allreduce(p, small, CollectiveAlgo::BinomialTree, &ptp)
        );
        let large = Bytes::mib(8.0);
        assert_eq!(
            allreduce(p, large, CollectiveAlgo::Auto, &ptp),
            allreduce(p, large, CollectiveAlgo::Ring, &ptp)
        );
    }

    #[test]
    fn allgather_recursive_doubling_moves_full_payload() {
        // With a pure-bandwidth ptp, recursive doubling should cost
        // (p−1)·n/β — the same total bytes as the ring.
        let ptp = linear_ptp(0.0, 1.0);
        let p = 8;
        let n = Bytes::mib(1.0);
        let rd = allgather(p, n, CollectiveAlgo::BinomialTree, &ptp);
        let ring = allgather(p, n, CollectiveAlgo::Ring, &ptp);
        assert!((rd.value() - ring.value()).abs() / ring.value() < 1e-9);
    }

    #[test]
    fn gather_cost_matches_recursive_doubling_volume() {
        // Pure-bandwidth ptp: gather moves (p−1)·n total.
        let ptp = linear_ptp(0.0, 1.0);
        let p = 16;
        let n = Bytes::mib(1.0);
        let t = gather(p, n, &ptp);
        let expected = (p - 1) as f64 * n.value() / 1e9;
        assert!((t.value() - expected).abs() < 1e-9);
    }

    #[test]
    fn reduce_scatter_plus_allgather_equals_ring_allreduce() {
        let ptp = linear_ptp(1.0, 6.8);
        let p = 12;
        let n = Bytes::kib(512.0);
        let composed = reduce_scatter(p, n, &ptp)
            + allgather(
                p,
                Bytes::new(n.value() / p as f64),
                CollectiveAlgo::Ring,
                &ptp,
            );
        let direct = allreduce(p, n, CollectiveAlgo::Ring, &ptp);
        assert!((composed.value() - direct.value()).abs() < 1e-12);
    }

    #[test]
    fn scan_scales_logarithmically() {
        let ptp = linear_ptp(1.0, 6.8);
        let t16 = scan(16, Bytes::new(8.0), &ptp);
        let t256 = scan(256, Bytes::new(8.0), &ptp);
        assert!((t256.value() / t16.value() - 2.0).abs() < 1e-9);
        assert_eq!(scan(1, Bytes::new(8.0), &ptp), Time::ZERO);
    }

    #[test]
    fn alltoall_linear_in_participants() {
        let ptp = linear_ptp(1.0, 6.8);
        let t8 = alltoall(8, Bytes::kib(64.0), &ptp);
        let t16 = alltoall(16, Bytes::kib(64.0), &ptp);
        let ratio = t16.value() / t8.value();
        assert!((ratio - 15.0 / 7.0).abs() < 1e-9);
    }
}
