//! # mpisim — a message-passing runtime simulator
//!
//! Executes SPMD *rank programs* against the [`arch`] node models and the
//! [`interconnect`] network models, tracking one virtual clock per rank.
//! The programming model is bulk-synchronous: a program is a sequence of
//! compute steps (costed by [`arch::cost::CostModel`]) and communication
//! steps (point-to-point or collectives, costed against the network), and
//! the job's elapsed time is the latest rank clock — exactly the "slowest
//! process" metric the paper reports for Alya's phases.
//!
//! * [`layout`] — how ranks map onto nodes, NUMA domains and cores.
//! * [`collectives`] — cost formulas for Barrier/Bcast/Reduce/Allreduce/
//!   Allgather/Alltoall with hierarchical (intra-node + inter-node) stages
//!   and selectable inter-node algorithm (binomial tree vs ring).
//! * [`job`] — the [`job::Job`] execution context tying it all together.

//! ```
//! use arch::{compiler::Compiler, cost::KernelProfile, machines::cte_arm};
//! use interconnect::{link::LinkModel, network::Network, tofu::TofuD, topology::NodeId};
//! use mpisim::{job::Job, layout::JobLayout};
//! use simkit::units::Bytes;
//!
//! let machine = cte_arm();
//! let compiler = Compiler::gnu_sve();
//! let net = Network::new(TofuD::cte_arm(), LinkModel::tofud());
//! let layout = JobLayout::new((0..4).map(NodeId).collect(), 48, 1, 4, 48);
//! let mut job = Job::new(&machine, &compiler, &net, layout, 7);
//! job.compute(&KernelProfile::dp("step", 1e9, 1e8));
//! job.allreduce(Bytes::new(8.0));
//! assert!(job.elapsed().value() > 0.0);
//! ```

#![warn(missing_docs)]

pub mod collectives;
pub mod faults;
pub mod job;
pub mod layout;
pub mod trace;

pub use collectives::CollectiveAlgo;
pub use faults::JobFaults;
pub use job::Job;
pub use layout::JobLayout;
pub use trace::{Activity, Trace};
