//! Job-level view of a fault plan: compute slowdowns and failed nodes.
//!
//! The interconnect's [`FaultPlan`] carries faults for every layer; this
//! module extracts the parts `mpisim` consumes. [`JobFaults`] resolves
//! per-node compute slowdowns (CMG throttling) into per-rank clock
//! stretches, and guards job placement against hard-failed nodes — a rank
//! on a dead node would simply never finish, so [`crate::Job::with_faults`]
//! refuses the layout up front, mirroring what a real scheduler does by
//! draining the node.

use interconnect::faults::FaultPlan;
use interconnect::network::Network;
use interconnect::topology::{NodeId, Topology};
use simkit::units::{Bytes, Time};

/// The job-visible slice of a fault plan.
#[derive(Debug, Clone, Default)]
pub struct JobFaults {
    /// `(node, remaining-speed)` compute slowdowns; factors in `(0, 1]`.
    slowdowns: Vec<(NodeId, f64)>,
    /// Hard-failed nodes a job must not be placed on.
    failed: Vec<NodeId>,
}

impl JobFaults {
    /// No faults: every stretch is exactly 1.0 and placement is unrestricted.
    pub fn none() -> Self {
        Self::default()
    }

    /// Extract the job-visible faults from a full plan.
    pub fn from_plan(plan: &FaultPlan) -> Self {
        Self {
            slowdowns: plan.slowdowns(),
            failed: plan.failed_nodes(),
        }
    }

    /// Clock stretch for compute on `node`: the product of `1/factor` over
    /// every slowdown attached to it (1.0 when healthy). A node at 0.5
    /// remaining speed runs compute chunks 2× longer.
    pub fn compute_stretch(&self, node: NodeId) -> f64 {
        self.slowdowns
            .iter()
            .filter(|(n, _)| *n == node)
            .fold(1.0, |acc, (_, factor)| acc / factor)
    }

    /// Whether the plan hard-failed `node`.
    pub fn is_failed(&self, node: NodeId) -> bool {
        self.failed.contains(&node)
    }

    /// True when the plan carries no job-visible fault at all.
    pub fn is_empty(&self) -> bool {
        self.slowdowns.is_empty() && self.failed.is_empty()
    }
}

/// Per-node all-to-all drain times at one message size: for each node, the
/// time to serialize its sends to — and its receives from — every live
/// peer, whichever direction is slower. This is the paper's all-to-all
/// detection signature: a receive-degraded node drains its *receive* side
/// far slower than its sends, and every healthy node sees one slow peer.
///
/// Hard-failed nodes never drain (`+∞`); transfers from live nodes simply
/// skip dead peers, as MPI would after the fault is acked.
pub fn alltoall_drains<T: Topology>(net: &Network<T>, bytes: Bytes) -> Vec<f64> {
    let n = net.topology().nodes();
    (0..n)
        .map(|s| {
            let s = NodeId(s);
            if net.is_failed(s) {
                return f64::INFINITY;
            }
            let mut send = Time::ZERO;
            let mut recv = Time::ZERO;
            for r in 0..n {
                let r = NodeId(r);
                if r == s || net.is_failed(r) {
                    continue;
                }
                send += net.message_time(s, r, bytes);
                recv += net.message_time(r, s, bytes);
            }
            send.max(recv).value()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use interconnect::faults::Fault;
    use interconnect::link::LinkModel;
    use interconnect::network::Degradation;
    use interconnect::tofu::TofuD;

    fn plan() -> FaultPlan {
        FaultPlan::new("t")
            .with(Fault::Slowdown {
                node: NodeId(5),
                factor: 0.5,
            })
            .with(Fault::Slowdown {
                node: NodeId(5),
                factor: 0.5,
            })
            .with(Fault::Failure { node: NodeId(9) })
    }

    #[test]
    fn stretch_compounds_and_defaults_to_one() {
        let jf = JobFaults::from_plan(&plan());
        assert_eq!(jf.compute_stretch(NodeId(5)), 4.0, "two 0.5 slowdowns");
        assert_eq!(jf.compute_stretch(NodeId(6)), 1.0);
        assert!(jf.is_failed(NodeId(9)));
        assert!(!jf.is_failed(NodeId(5)));
        assert!(!jf.is_empty());
        assert!(JobFaults::none().is_empty());
    }

    #[test]
    fn drains_flag_the_degraded_receiver() {
        let bad = NodeId(18);
        let net = Network::new(TofuD::cte_arm(), LinkModel::tofud())
            .with_degraded_node(bad, Degradation::receive_fault(0.08));
        let drains = alltoall_drains(&net, Bytes::kib(64.0));
        assert_eq!(drains.len(), 192);
        let worst = drains
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(worst, bad.index(), "receive-degraded node drains slowest");
    }

    #[test]
    fn failed_nodes_never_drain_and_peers_skip_them() {
        let dead = NodeId(40);
        let net = Network::new(TofuD::cte_arm(), LinkModel::tofud()).with_failed_node(dead);
        let drains = alltoall_drains(&net, Bytes::kib(4.0));
        assert!(drains[dead.index()].is_infinite());
        // Every live node still drains in finite time (dead peer skipped).
        for (i, d) in drains.iter().enumerate() {
            if i != dead.index() {
                assert!(d.is_finite(), "node {i} must skip the dead peer");
            }
        }
    }
}
