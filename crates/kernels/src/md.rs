//! Lennard-Jones molecular dynamics with cell lists — the Gromacs proxy.
//!
//! Gromacs' hot loop is the short-range non-bonded force kernel over
//! neighbour pairs inside a cutoff, integrated with a leapfrog scheme and
//! domain-decomposed over MPI. This module implements exactly that core in
//! reduced units: periodic cubic box, cell-list neighbour search, truncated
//! LJ 12-6 potential, velocity-Verlet integration.

use rayon::prelude::*;
use simkit::rng::Pcg32;

/// A particle system in a periodic cubic box (reduced LJ units).
#[derive(Debug, Clone)]
pub struct LjSystem {
    /// Box edge length.
    pub box_len: f64,
    /// Interaction cutoff radius.
    pub cutoff: f64,
    /// Positions, flattened `[x, y, z]` per particle.
    pub pos: Vec<[f64; 3]>,
    /// Velocities.
    pub vel: Vec<[f64; 3]>,
    /// Forces from the last evaluation.
    pub force: Vec<[f64; 3]>,
}

impl LjSystem {
    /// Place `n³` particles on a simple cubic lattice with small random
    /// velocity jitter (zeroed net momentum).
    pub fn cubic_lattice(n: usize, density: f64, seed: u64) -> Self {
        assert!(n >= 2, "need at least 2³ particles");
        assert!(density > 0.0, "density must be positive");
        let count = n * n * n;
        let box_len = (count as f64 / density).cbrt();
        let spacing = box_len / n as f64;
        let mut rng = Pcg32::seeded(seed);
        let mut pos = Vec::with_capacity(count);
        let mut vel = Vec::with_capacity(count);
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    pos.push([
                        (i as f64 + 0.5) * spacing,
                        (j as f64 + 0.5) * spacing,
                        (k as f64 + 0.5) * spacing,
                    ]);
                    vel.push([
                        rng.uniform(-0.1, 0.1),
                        rng.uniform(-0.1, 0.1),
                        rng.uniform(-0.1, 0.1),
                    ]);
                }
            }
        }
        // Remove net momentum.
        let mut com = [0.0f64; 3];
        for v in &vel {
            for d in 0..3 {
                com[d] += v[d];
            }
        }
        for v in &mut vel {
            for d in 0..3 {
                v[d] -= com[d] / count as f64;
            }
        }
        let cutoff = 2.5f64.min(box_len / 2.0 - 1e-9);
        Self {
            box_len,
            cutoff,
            pos,
            vel,
            force: vec![[0.0; 3]; count],
        }
    }

    /// Particle count.
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    /// Never empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Minimum-image displacement from `a` to `b` under the periodic box.
    pub fn min_image(&self, a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
        let mut d = [0.0; 3];
        for k in 0..3 {
            let mut x = b[k] - a[k];
            x -= self.box_len * (x / self.box_len).round();
            d[k] = x;
        }
        d
    }

    /// Build the cell list: grid of cells at least `cutoff` wide.
    fn cell_list(&self) -> (usize, Vec<Vec<usize>>) {
        let ncell = ((self.box_len / self.cutoff).floor() as usize).max(1);
        let mut cells = vec![Vec::new(); ncell * ncell * ncell];
        let w = self.box_len / ncell as f64;
        for (i, p) in self.pos.iter().enumerate() {
            let cx = ((p[0] / w) as usize).min(ncell - 1);
            let cy = ((p[1] / w) as usize).min(ncell - 1);
            let cz = ((p[2] / w) as usize).min(ncell - 1);
            cells[(cz * ncell + cy) * ncell + cx].push(i);
        }
        (ncell, cells)
    }

    /// Evaluate truncated-LJ forces and return `(potential_energy, flops)`.
    /// Cell-list neighbour search keeps the pair loop O(N).
    pub fn compute_forces(&mut self) -> (f64, u64) {
        let (ncell, cells) = self.cell_list();
        let rc2 = self.cutoff * self.cutoff;
        let pos = &self.pos;
        let box_len = self.box_len;
        let min_image = |a: [f64; 3], b: [f64; 3]| {
            let mut d = [0.0; 3];
            for k in 0..3 {
                let mut x = b[k] - a[k];
                x -= box_len * (x / box_len).round();
                d[k] = x;
            }
            d
        };

        // Parallel over particles: each computes its own force from the 27
        // surrounding cells (forces are recomputed pairwise twice — simple
        // and race-free, like Gromacs' "no Newton's third law over MPI"
        // mode). One particle costs ~27 cells × cell occupancy of pair
        // math — far heavier than the scalar elements the pool's default
        // reduction grid is sized for — so benchmark-scale systems
        // (1728+ particles) opt into a finer order-preserving grid, while
        // systems below `PAR_MIN_PARTICLES` skip the pool entirely. Both
        // paths produce each particle's tuple independently and in order,
        // so forces and energies are bit-identical regardless of path or
        // thread count.
        const PAR_MIN_PARTICLES: usize = 256;
        const PAR_GRAIN: usize = 64;
        let per_particle = |i: usize| {
            let w = box_len / ncell as f64;
            let p = pos[i];
            let cx = ((p[0] / w) as usize).min(ncell - 1) as i64;
            let cy = ((p[1] / w) as usize).min(ncell - 1) as i64;
            let cz = ((p[2] / w) as usize).min(ncell - 1) as i64;
            let mut f = [0.0f64; 3];
            let mut pe = 0.0;
            let mut flops = 0u64;
            let nc = ncell as i64;
            for dz in -1..=1 {
                for dy in -1..=1 {
                    for dx in -1..=1 {
                        let cc = ((cz + dz).rem_euclid(nc) * nc + (cy + dy).rem_euclid(nc)) * nc
                            + (cx + dx).rem_euclid(nc);
                        for &j in &cells[cc as usize] {
                            if j == i {
                                continue;
                            }
                            let d = min_image(p, pos[j]);
                            let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
                            flops += 9;
                            if r2 >= rc2 || r2 == 0.0 {
                                continue;
                            }
                            let inv2 = 1.0 / r2;
                            let inv6 = inv2 * inv2 * inv2;
                            let inv12 = inv6 * inv6;
                            // F/r = 24(2r⁻¹² − r⁻⁶)/r².
                            let fr = 24.0 * (2.0 * inv12 - inv6) * inv2;
                            for k in 0..3 {
                                f[k] -= fr * d[k];
                            }
                            // Half the pair energy (pair visited twice).
                            pe += 0.5 * 4.0 * (inv12 - inv6);
                            flops += 20;
                        }
                    }
                }
            }
            (f, pe, flops)
        };
        let results: Vec<([f64; 3], f64, u64)> = if self.len() < PAR_MIN_PARTICLES {
            (0..self.len()).map(per_particle).collect()
        } else {
            (0..self.len())
                .into_par_iter()
                .map(per_particle)
                .collect_with_grain(PAR_GRAIN)
        };

        let mut pe_total = 0.0;
        let mut flops_total = 0;
        for (i, (f, pe, fl)) in results.into_iter().enumerate() {
            self.force[i] = f;
            pe_total += pe;
            flops_total += fl;
        }
        (pe_total, flops_total)
    }

    /// One velocity-Verlet step of size `dt`. Returns `(pe, ke, flops)`.
    pub fn step(&mut self, dt: f64) -> (f64, f64, u64) {
        let n = self.len();
        // Half kick + drift.
        for i in 0..n {
            for k in 0..3 {
                self.vel[i][k] += 0.5 * dt * self.force[i][k];
                self.pos[i][k] = (self.pos[i][k] + dt * self.vel[i][k]).rem_euclid(self.box_len);
            }
        }
        let (pe, flops) = self.compute_forces();
        // Second half kick.
        for i in 0..n {
            for k in 0..3 {
                self.vel[i][k] += 0.5 * dt * self.force[i][k];
            }
        }
        let ke = self.kinetic_energy();
        (pe, ke, flops + (n as u64) * 18)
    }

    /// Kinetic energy `½Σv²` (unit mass).
    pub fn kinetic_energy(&self) -> f64 {
        self.vel
            .iter()
            .map(|v| 0.5 * (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]))
            .sum()
    }

    /// Net momentum (conserved quantity).
    pub fn momentum(&self) -> [f64; 3] {
        let mut p = [0.0; 3];
        for v in &self.vel {
            for k in 0..3 {
                p[k] += v[k];
            }
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_setup() {
        let s = LjSystem::cubic_lattice(4, 0.8, 1);
        assert_eq!(s.len(), 64);
        assert!(s.box_len > 0.0);
        assert!(s.cutoff <= s.box_len / 2.0);
        let p = s.momentum();
        assert!(p.iter().all(|&x| x.abs() < 1e-12), "momentum zeroed: {p:?}");
    }

    #[test]
    fn forces_sum_to_zero() {
        let mut s = LjSystem::cubic_lattice(4, 0.8, 2);
        s.compute_forces();
        let mut net = [0.0f64; 3];
        for f in &s.force {
            for k in 0..3 {
                net[k] += f[k];
            }
        }
        for k in 0..3 {
            assert!(net[k].abs() < 1e-9, "net force {net:?}");
        }
    }

    #[test]
    fn two_close_particles_repel() {
        let mut s = LjSystem::cubic_lattice(2, 0.1, 3);
        // Force the first two particles close together along x.
        s.pos[0] = [1.0, 1.0, 1.0];
        s.pos[1] = [1.9, 1.0, 1.0];
        s.compute_forces();
        // Separation 0.9 < 2^(1/6): repulsive — particle 0 pushed −x,
        // particle 1 pushed +x.
        assert!(s.force[0][0] < 0.0, "f0 {:?}", s.force[0]);
        assert!(s.force[1][0] > 0.0, "f1 {:?}", s.force[1]);
    }

    #[test]
    fn energy_is_approximately_conserved() {
        let mut s = LjSystem::cubic_lattice(4, 0.6, 4);
        s.compute_forces();
        let (pe0, ke0, _) = s.step(0.002);
        let e0 = pe0 + ke0;
        let mut e_last = e0;
        for _ in 0..200 {
            let (pe, ke, _) = s.step(0.002);
            e_last = pe + ke;
        }
        let drift = ((e_last - e0) / e0.abs()).abs();
        assert!(drift < 0.02, "energy drift {drift}");
    }

    #[test]
    fn momentum_is_conserved() {
        let mut s = LjSystem::cubic_lattice(3, 0.7, 5);
        s.compute_forces();
        for _ in 0..100 {
            s.step(0.002);
        }
        let p = s.momentum();
        assert!(p.iter().all(|&x| x.abs() < 1e-8), "momentum {p:?}");
    }

    #[test]
    fn positions_stay_in_box() {
        let mut s = LjSystem::cubic_lattice(3, 0.7, 6);
        s.compute_forces();
        for _ in 0..100 {
            s.step(0.003);
        }
        for p in &s.pos {
            for k in 0..3 {
                assert!((0.0..=s.box_len).contains(&p[k]), "escaped: {p:?}");
            }
        }
    }

    #[test]
    fn flops_scale_with_density() {
        let mut sparse = LjSystem::cubic_lattice(4, 0.3, 7);
        let mut dense = LjSystem::cubic_lattice(4, 1.0, 7);
        let (_, f_sparse) = sparse.compute_forces();
        let (_, f_dense) = dense.compute_forces();
        assert!(
            f_dense > f_sparse,
            "denser system visits more pairs: {f_sparse} vs {f_dense}"
        );
    }

    #[test]
    fn min_image_wraps() {
        let s = LjSystem::cubic_lattice(2, 0.1, 8);
        let l = s.box_len;
        let d = s.min_image([0.1, 0.0, 0.0], [l - 0.1, 0.0, 0.0]);
        assert!((d[0] + 0.2).abs() < 1e-12, "wrapped distance {d:?}");
    }
}
