//! Lennard-Jones molecular dynamics with cell lists — the Gromacs proxy.
//!
//! Gromacs' hot loop is the short-range non-bonded force kernel over
//! neighbour pairs inside a cutoff, integrated with a leapfrog scheme and
//! domain-decomposed over MPI. This module implements exactly that core in
//! reduced units: periodic cubic box, cell-list neighbour search, truncated
//! LJ 12-6 potential, velocity-Verlet integration.
//!
//! The force path is a flat CSR-style cell list (one `cell_ptr`/`entries`
//! pair rebuilt in place by counting sort — zero steady-state allocation)
//! driven by a deterministic **half-neighbor** traversal: every unordered
//! pair is evaluated once per periodic image, through 13 lexicographically
//! forward cell offsets plus the intra-cell triangle, with the image shift
//! precomputed per (cell, offset) so the inner loop carries no divisions
//! or rounding. The pre-optimization full-neighbor path is retained as
//! [`LjSystem::compute_forces_reference`], the differential oracle under
//! test.

use crate::tune;
use rayon::prelude::*;
use simkit::rng::Pcg32;

/// The 13 lexicographically forward cell offsets `(dz, dy, dx)`: together
/// with the intra-cell triangle they visit every unordered neighbour-cell
/// pair exactly once.
const FORWARD: [(i64, i64, i64); 13] = [
    (0, 0, 1),
    (0, 1, -1),
    (0, 1, 0),
    (0, 1, 1),
    (1, -1, -1),
    (1, -1, 0),
    (1, -1, 1),
    (1, 0, -1),
    (1, 0, 0),
    (1, 0, 1),
    (1, 1, -1),
    (1, 1, 0),
    (1, 1, 1),
];

/// Wrap one cell coordinate into `[0, ncell)` and report the periodic
/// image shift sign the wrap implies (−1, 0 or +1 box lengths).
#[inline]
fn wrap_cell(c: i64, ncell: usize) -> (usize, f64) {
    if c < 0 {
        ((c + ncell as i64) as usize, -1.0)
    } else if c >= ncell as i64 {
        ((c - ncell as i64) as usize, 1.0)
    } else {
        (c as usize, 0.0)
    }
}

/// Flat CSR-style cell list plus the per-chunk force accumulators, all
/// reused across calls so steady-state stepping performs no allocation.
#[derive(Debug, Clone, Default)]
struct CellScratch {
    /// Cells per box edge.
    ncell: usize,
    /// Prefix offsets into `entries`, length `ncell³ + 1`.
    cell_ptr: Vec<usize>,
    /// Particle ids grouped by cell, ascending within each cell (the same
    /// order the nested `Vec<Vec<usize>>` build pushed them).
    entries: Vec<usize>,
    /// Counting-sort cursors (counts, then running insert positions).
    cursor: Vec<usize>,
    /// Per-particle cell id.
    cell_of: Vec<usize>,
    /// One private force buffer per traversal chunk.
    chunk_force: Vec<Vec<[f64; 3]>>,
    /// Per-chunk `(potential, flops)` partials.
    chunk_stats: Vec<(f64, u64)>,
}

/// A particle system in a periodic cubic box (reduced LJ units).
#[derive(Debug, Clone)]
pub struct LjSystem {
    /// Box edge length.
    pub box_len: f64,
    /// Interaction cutoff radius.
    pub cutoff: f64,
    /// Positions, flattened `[x, y, z]` per particle.
    pub pos: Vec<[f64; 3]>,
    /// Velocities.
    pub vel: Vec<[f64; 3]>,
    /// Forces from the last evaluation.
    pub force: Vec<[f64; 3]>,
    /// Reused cell-list and accumulator storage.
    scratch: CellScratch,
}

impl LjSystem {
    /// Place `n³` particles on a simple cubic lattice with small random
    /// velocity jitter (zeroed net momentum).
    pub fn cubic_lattice(n: usize, density: f64, seed: u64) -> Self {
        assert!(n >= 2, "need at least 2³ particles");
        assert!(density > 0.0, "density must be positive");
        let count = n * n * n;
        let box_len = (count as f64 / density).cbrt();
        let spacing = box_len / n as f64;
        let mut rng = Pcg32::seeded(seed);
        let mut pos = Vec::with_capacity(count);
        let mut vel = Vec::with_capacity(count);
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    pos.push([
                        (i as f64 + 0.5) * spacing,
                        (j as f64 + 0.5) * spacing,
                        (k as f64 + 0.5) * spacing,
                    ]);
                    vel.push([
                        rng.uniform(-0.1, 0.1),
                        rng.uniform(-0.1, 0.1),
                        rng.uniform(-0.1, 0.1),
                    ]);
                }
            }
        }
        // Remove net momentum.
        let mut com = [0.0f64; 3];
        for v in &vel {
            for d in 0..3 {
                com[d] += v[d];
            }
        }
        for v in &mut vel {
            for d in 0..3 {
                v[d] -= com[d] / count as f64;
            }
        }
        let cutoff = 2.5f64.min(box_len / 2.0 - 1e-9);
        Self {
            box_len,
            cutoff,
            pos,
            vel,
            force: vec![[0.0; 3]; count],
            scratch: CellScratch::default(),
        }
    }

    /// Particle count.
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    /// Never empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Minimum-image displacement from `a` to `b` under the periodic box.
    pub fn min_image(&self, a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
        let mut d = [0.0; 3];
        for k in 0..3 {
            let mut x = b[k] - a[k];
            x -= self.box_len * (x / self.box_len).round();
            d[k] = x;
        }
        d
    }

    /// Rebuild the flat cell list in place by counting sort: one pass to
    /// bin particles, a prefix scan, one pass to scatter ids. Buffers are
    /// reused, so after the first call this allocates nothing.
    /// (`doc(hidden)` pub so the criterion microbench can time the rebuild
    /// against the nested oracle build.)
    #[doc(hidden)]
    pub fn rebuild_cells(&mut self) {
        let ncell = ((self.box_len / self.cutoff).floor() as usize).max(1);
        let nc3 = ncell * ncell * ncell;
        let w = self.box_len / ncell as f64;
        let n = self.pos.len();
        let pos = &self.pos;
        let s = &mut self.scratch;
        s.ncell = ncell;
        s.cell_of.clear();
        s.cursor.clear();
        s.cursor.resize(nc3, 0);
        for p in pos {
            let cx = ((p[0] / w) as usize).min(ncell - 1);
            let cy = ((p[1] / w) as usize).min(ncell - 1);
            let cz = ((p[2] / w) as usize).min(ncell - 1);
            let c = (cz * ncell + cy) * ncell + cx;
            s.cell_of.push(c);
            s.cursor[c] += 1;
        }
        s.cell_ptr.clear();
        s.cell_ptr.reserve(nc3 + 1);
        let mut acc = 0usize;
        s.cell_ptr.push(0);
        for c in 0..nc3 {
            acc += s.cursor[c];
            s.cell_ptr.push(acc);
        }
        for c in 0..nc3 {
            s.cursor[c] = s.cell_ptr[c];
        }
        s.entries.clear();
        s.entries.resize(n, 0);
        for (i, &c) in s.cell_of.iter().enumerate() {
            s.entries[s.cursor[c]] = i;
            s.cursor[c] += 1;
        }
    }

    /// The original nested cell-list build, kept as the oracle for the
    /// flat counting-sort rebuild (same grouping, same within-cell order).
    #[doc(hidden)]
    pub fn cell_list_nested(&self) -> (usize, Vec<Vec<usize>>) {
        let ncell = ((self.box_len / self.cutoff).floor() as usize).max(1);
        let mut cells = vec![Vec::new(); ncell * ncell * ncell];
        let w = self.box_len / ncell as f64;
        for (i, p) in self.pos.iter().enumerate() {
            let cx = ((p[0] / w) as usize).min(ncell - 1);
            let cy = ((p[1] / w) as usize).min(ncell - 1);
            let cz = ((p[2] / w) as usize).min(ncell - 1);
            cells[(cz * ncell + cy) * ncell + cx].push(i);
        }
        (ncell, cells)
    }

    /// Evaluate truncated-LJ forces and return `(potential_energy, flops)`.
    ///
    /// Half-neighbor traversal: cells are walked in chunks (a pure
    /// function of the system size, [`tune::md_force_chunks`]); each chunk
    /// evaluates its (cell, forward-offset) pair blocks once, applying
    /// Newton's third law into a chunk-private force buffer, and the
    /// buffers are reduced in fixed chunk order — so forces and energies
    /// are bit-identical at any thread count, while each pair's math runs
    /// once instead of twice and the inner loop replaces `min_image`'s
    /// three divisions and roundings with a precomputed image shift.
    ///
    /// Flop accounting keeps the historical symmetric-visit convention
    /// (18 per checked pair-image, 40 per accepted pair — the same totals
    /// the two-sided reference books), so GFLOP/s stay comparable across
    /// kernel versions in the bench history.
    pub fn compute_forces(&mut self) -> (f64, u64) {
        self.rebuild_cells();
        let n = self.len();
        let rc2 = self.cutoff * self.cutoff;
        let box_len = self.box_len;
        let pos = &self.pos;
        let ncell = self.scratch.ncell;
        let nc2 = ncell * ncell;
        let nc3 = nc2 * ncell;
        let k_chunks = tune::md_force_chunks(n, nc3);
        let cells_per = nc3.div_ceil(k_chunks);

        let CellScratch {
            ref cell_ptr,
            ref entries,
            ref mut chunk_force,
            ref mut chunk_stats,
            ..
        } = self.scratch;
        chunk_force.resize(k_chunks, Vec::new());
        chunk_force.truncate(k_chunks);
        chunk_stats.clear();
        chunk_stats.resize(k_chunks, (0.0, 0));

        let run_chunk = |k: usize, buf: &mut Vec<[f64; 3]>| -> (f64, u64) {
            buf.clear();
            buf.resize(n, [0.0; 3]);
            let mut pe = 0.0f64;
            let mut flops = 0u64;
            let c0 = k * cells_per;
            let c1 = ((k + 1) * cells_per).min(nc3);
            let mut pair = |i: usize, j: usize, shift: [f64; 3]| {
                let pi = pos[i];
                let pj = pos[j];
                let d = [
                    pj[0] + shift[0] - pi[0],
                    pj[1] + shift[1] - pi[1],
                    pj[2] + shift[2] - pi[2],
                ];
                let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
                flops += 18;
                if r2 >= rc2 || r2 == 0.0 {
                    return;
                }
                let inv2 = 1.0 / r2;
                let inv6 = inv2 * inv2 * inv2;
                let inv12 = inv6 * inv6;
                // F/r = 24(2r⁻¹² − r⁻⁶)/r².
                let fr = 24.0 * (2.0 * inv12 - inv6) * inv2;
                for dim in 0..3 {
                    buf[i][dim] -= fr * d[dim];
                    buf[j][dim] += fr * d[dim];
                }
                pe += 4.0 * (inv12 - inv6);
                flops += 40;
            };
            for c in c0..c1 {
                let cz = (c / nc2) as i64;
                let cy = ((c % nc2) / ncell) as i64;
                let cx = (c % ncell) as i64;
                let own = &entries[cell_ptr[c]..cell_ptr[c + 1]];
                // Intra-cell triangle (no image shift).
                for (a, &i) in own.iter().enumerate() {
                    for &j in &own[a + 1..] {
                        pair(i, j, [0.0; 3]);
                    }
                }
                // 13 forward neighbour cells, image shift per offset.
                for &(dz, dy, dx) in FORWARD.iter() {
                    let (zz, sz) = wrap_cell(cz + dz, ncell);
                    let (yy, sy) = wrap_cell(cy + dy, ncell);
                    let (xx, sx) = wrap_cell(cx + dx, ncell);
                    let nb = (zz * ncell + yy) * ncell + xx;
                    let shift = [sx * box_len, sy * box_len, sz * box_len];
                    let other = &entries[cell_ptr[nb]..cell_ptr[nb + 1]];
                    if nb == c {
                        // ncell == 1: the offset wraps onto the cell
                        // itself. Ordered pairs i ≠ j visit the +shift
                        // and −shift images of each unordered pair once
                        // each — still one evaluation per (pair, image).
                        for &i in own {
                            for &j in other {
                                if i != j {
                                    pair(i, j, shift);
                                }
                            }
                        }
                    } else {
                        for &i in own {
                            for &j in other {
                                pair(i, j, shift);
                            }
                        }
                    }
                }
            }
            (pe, flops)
        };

        if n < tune::md_par_min_particles() {
            for (k, (buf, stat)) in chunk_force
                .iter_mut()
                .zip(chunk_stats.iter_mut())
                .enumerate()
            {
                *stat = run_chunk(k, buf);
            }
        } else {
            chunk_force
                .par_iter_mut()
                .zip(chunk_stats.par_iter_mut())
                .enumerate()
                .for_each(|(k, (buf, stat))| {
                    *stat = run_chunk(k, buf);
                });
        }

        // Fixed-order reduction: chunk count and order are pure functions
        // of the system, so the sums are bit-identical on any pool.
        for f in self.force.iter_mut() {
            *f = [0.0; 3];
        }
        for buf in chunk_force.iter() {
            for (f, b) in self.force.iter_mut().zip(buf) {
                for dim in 0..3 {
                    f[dim] += b[dim];
                }
            }
        }
        let mut pe_total = 0.0;
        let mut flops_total = 0;
        for &(pe, fl) in chunk_stats.iter() {
            pe_total += pe;
            flops_total += fl;
        }
        (pe_total, flops_total)
    }

    /// The pre-optimization full-neighbor force evaluation (nested cell
    /// list, per-pair `min_image`, each pair computed from both sides),
    /// kept verbatim as the differential oracle for
    /// [`Self::compute_forces`].
    #[doc(hidden)]
    pub fn compute_forces_reference(&mut self) -> (f64, u64) {
        let (ncell, cells) = self.cell_list_nested();
        let rc2 = self.cutoff * self.cutoff;
        let pos = &self.pos;
        let box_len = self.box_len;
        let min_image = |a: [f64; 3], b: [f64; 3]| {
            let mut d = [0.0; 3];
            for k in 0..3 {
                let mut x = b[k] - a[k];
                x -= box_len * (x / box_len).round();
                d[k] = x;
            }
            d
        };
        const PAR_MIN_PARTICLES: usize = 256;
        const PAR_GRAIN: usize = 64;
        let per_particle = |i: usize| {
            let w = box_len / ncell as f64;
            let p = pos[i];
            let cx = ((p[0] / w) as usize).min(ncell - 1) as i64;
            let cy = ((p[1] / w) as usize).min(ncell - 1) as i64;
            let cz = ((p[2] / w) as usize).min(ncell - 1) as i64;
            let mut f = [0.0f64; 3];
            let mut pe = 0.0;
            let mut flops = 0u64;
            let nc = ncell as i64;
            for dz in -1..=1 {
                for dy in -1..=1 {
                    for dx in -1..=1 {
                        let cc = ((cz + dz).rem_euclid(nc) * nc + (cy + dy).rem_euclid(nc)) * nc
                            + (cx + dx).rem_euclid(nc);
                        for &j in &cells[cc as usize] {
                            if j == i {
                                continue;
                            }
                            let d = min_image(p, pos[j]);
                            let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
                            flops += 9;
                            if r2 >= rc2 || r2 == 0.0 {
                                continue;
                            }
                            let inv2 = 1.0 / r2;
                            let inv6 = inv2 * inv2 * inv2;
                            let inv12 = inv6 * inv6;
                            let fr = 24.0 * (2.0 * inv12 - inv6) * inv2;
                            for k in 0..3 {
                                f[k] -= fr * d[k];
                            }
                            pe += 0.5 * 4.0 * (inv12 - inv6);
                            flops += 20;
                        }
                    }
                }
            }
            (f, pe, flops)
        };
        let results: Vec<([f64; 3], f64, u64)> = if self.len() < PAR_MIN_PARTICLES {
            (0..self.len()).map(per_particle).collect()
        } else {
            (0..self.len())
                .into_par_iter()
                .map(per_particle)
                .collect_with_grain(PAR_GRAIN)
        };

        let mut pe_total = 0.0;
        let mut flops_total = 0;
        for (i, (f, pe, fl)) in results.into_iter().enumerate() {
            self.force[i] = f;
            pe_total += pe;
            flops_total += fl;
        }
        (pe_total, flops_total)
    }

    /// One velocity-Verlet step of size `dt`. Returns `(pe, ke, flops)`.
    pub fn step(&mut self, dt: f64) -> (f64, f64, u64) {
        let n = self.len();
        // Half kick + drift.
        for i in 0..n {
            for k in 0..3 {
                self.vel[i][k] += 0.5 * dt * self.force[i][k];
                self.pos[i][k] = (self.pos[i][k] + dt * self.vel[i][k]).rem_euclid(self.box_len);
            }
        }
        let (pe, flops) = self.compute_forces();
        // Second half kick.
        for i in 0..n {
            for k in 0..3 {
                self.vel[i][k] += 0.5 * dt * self.force[i][k];
            }
        }
        let ke = self.kinetic_energy();
        (pe, ke, flops + (n as u64) * 18)
    }

    /// Kinetic energy `½Σv²` (unit mass).
    pub fn kinetic_energy(&self) -> f64 {
        self.vel
            .iter()
            .map(|v| 0.5 * (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]))
            .sum()
    }

    /// Net momentum (conserved quantity).
    pub fn momentum(&self) -> [f64; 3] {
        let mut p = [0.0; 3];
        for v in &self.vel {
            for k in 0..3 {
                p[k] += v[k];
            }
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_setup() {
        let s = LjSystem::cubic_lattice(4, 0.8, 1);
        assert_eq!(s.len(), 64);
        assert!(s.box_len > 0.0);
        assert!(s.cutoff <= s.box_len / 2.0);
        let p = s.momentum();
        assert!(p.iter().all(|&x| x.abs() < 1e-12), "momentum zeroed: {p:?}");
    }

    #[test]
    fn flat_cell_list_matches_nested() {
        for (n, density, seed) in [(2, 0.1, 3), (4, 0.8, 1), (5, 0.4, 7), (8, 0.8, 2)] {
            let mut s = LjSystem::cubic_lattice(n, density, seed);
            // Perturb off the lattice so cells have ragged occupancy.
            for _ in 0..5 {
                s.compute_forces();
                s.step(0.002);
            }
            let (ncell, nested) = s.cell_list_nested();
            s.rebuild_cells();
            assert_eq!(s.scratch.ncell, ncell);
            let nc3 = ncell * ncell * ncell;
            assert_eq!(s.scratch.cell_ptr.len(), nc3 + 1);
            for (c, cell) in nested.iter().enumerate() {
                let span = s.scratch.cell_ptr[c]..s.scratch.cell_ptr[c + 1];
                assert_eq!(
                    &s.scratch.entries[span],
                    cell.as_slice(),
                    "cell {c} of {n}³ @ {density}"
                );
            }
        }
    }

    #[test]
    fn half_neighbor_forces_match_reference() {
        // ncell ≥ 3 here, where the reference's 27-cell scan visits each
        // pair exactly twice: the half-neighbor path must agree to
        // rounding (association differs) and book identical flops.
        let mut s = LjSystem::cubic_lattice(8, 0.8, 11);
        let mut r = s.clone();
        let (pe_new, fl_new) = s.compute_forces();
        let (pe_ref, fl_ref) = r.compute_forces_reference();
        assert_eq!(fl_new, fl_ref, "symmetric-convention flop totals");
        assert!(
            ((pe_new - pe_ref) / pe_ref.abs().max(1.0)).abs() < 1e-12,
            "pe {pe_new} vs {pe_ref}"
        );
        for (i, (a, b)) in s.force.iter().zip(&r.force).enumerate() {
            for d in 0..3 {
                let scale = b[d].abs().max(1.0);
                assert!(
                    ((a[d] - b[d]) / scale).abs() < 1e-9,
                    "force[{i}][{d}]: {} vs {}",
                    a[d],
                    b[d]
                );
            }
        }
    }

    #[test]
    fn forces_sum_to_zero() {
        let mut s = LjSystem::cubic_lattice(4, 0.8, 2);
        s.compute_forces();
        let mut net = [0.0f64; 3];
        for f in &s.force {
            for k in 0..3 {
                net[k] += f[k];
            }
        }
        for k in 0..3 {
            assert!(net[k].abs() < 1e-9, "net force {net:?}");
        }
    }

    #[test]
    fn two_close_particles_repel() {
        let mut s = LjSystem::cubic_lattice(2, 0.1, 3);
        // Force the first two particles close together along x.
        s.pos[0] = [1.0, 1.0, 1.0];
        s.pos[1] = [1.9, 1.0, 1.0];
        s.compute_forces();
        // Separation 0.9 < 2^(1/6): repulsive — particle 0 pushed −x,
        // particle 1 pushed +x.
        assert!(s.force[0][0] < 0.0, "f0 {:?}", s.force[0]);
        assert!(s.force[1][0] > 0.0, "f1 {:?}", s.force[1]);
    }

    #[test]
    fn energy_is_approximately_conserved() {
        let mut s = LjSystem::cubic_lattice(4, 0.6, 4);
        s.compute_forces();
        let (pe0, ke0, _) = s.step(0.002);
        let e0 = pe0 + ke0;
        let mut e_last = e0;
        for _ in 0..200 {
            let (pe, ke, _) = s.step(0.002);
            e_last = pe + ke;
        }
        let drift = ((e_last - e0) / e0.abs()).abs();
        assert!(drift < 0.02, "energy drift {drift}");
    }

    #[test]
    fn momentum_is_conserved() {
        let mut s = LjSystem::cubic_lattice(3, 0.7, 5);
        s.compute_forces();
        for _ in 0..100 {
            s.step(0.002);
        }
        let p = s.momentum();
        assert!(p.iter().all(|&x| x.abs() < 1e-8), "momentum {p:?}");
    }

    #[test]
    fn positions_stay_in_box() {
        let mut s = LjSystem::cubic_lattice(3, 0.7, 6);
        s.compute_forces();
        for _ in 0..100 {
            s.step(0.003);
        }
        for p in &s.pos {
            for k in 0..3 {
                assert!((0.0..=s.box_len).contains(&p[k]), "escaped: {p:?}");
            }
        }
    }

    #[test]
    fn flops_scale_with_density() {
        let mut sparse = LjSystem::cubic_lattice(4, 0.3, 7);
        let mut dense = LjSystem::cubic_lattice(4, 1.0, 7);
        let (_, f_sparse) = sparse.compute_forces();
        let (_, f_dense) = dense.compute_forces();
        assert!(
            f_dense > f_sparse,
            "denser system visits more pairs: {f_sparse} vs {f_dense}"
        );
    }

    #[test]
    fn min_image_wraps() {
        let s = LjSystem::cubic_lattice(2, 0.1, 8);
        let l = s.box_len;
        let d = s.min_image([0.1, 0.0, 0.0], [l - 0.1, 0.0, 0.0]);
        assert!((d[0] + 0.2).abs() < 1e-12, "wrapped distance {d:?}");
    }
}
