//! Spectral-transform kernels — the OpenIFS proxy.
//!
//! IFS/OpenIFS advances the atmosphere in spectral space: each time step
//! performs Fourier transforms along latitude circles, Legendre transforms
//! in the meridional direction (dense matrix products), and a transposition
//! (MPI alltoall) between the two. This module implements the computational
//! pieces for real: an iterative radix-2 complex FFT and a dense
//! Legendre-like projection, with exact operation counts.

use std::f64::consts::PI;

/// A complex number as `(re, im)` — enough for the FFT without pulling in a
/// dependency.
pub type Complex = (f64, f64);

#[inline]
fn c_add(a: Complex, b: Complex) -> Complex {
    (a.0 + b.0, a.1 + b.1)
}

#[inline]
fn c_sub(a: Complex, b: Complex) -> Complex {
    (a.0 - b.0, a.1 - b.1)
}

#[inline]
fn c_mul(a: Complex, b: Complex) -> Complex {
    (a.0 * b.0 - a.1 * b.1, a.0 * b.1 + a.1 * b.0)
}

/// In-place iterative radix-2 Cooley–Tukey FFT. `inverse` selects the
/// inverse transform (normalized by `1/n`).
///
/// # Panics
/// Panics unless the length is a power of two.
pub fn fft(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if i < j {
            data.swap(i, j);
        }
    }
    // Butterfly stages.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * PI / len as f64;
        let wlen = (ang.cos(), ang.sin());
        for chunk in data.chunks_mut(len) {
            let mut w = (1.0, 0.0);
            let half = len / 2;
            for i in 0..half {
                let u = chunk[i];
                let v = c_mul(chunk[i + half], w);
                chunk[i] = c_add(u, v);
                chunk[i + half] = c_sub(u, v);
                w = c_mul(w, wlen);
            }
        }
        len <<= 1;
    }
    if inverse {
        let inv_n = 1.0 / n as f64;
        for d in data.iter_mut() {
            d.0 *= inv_n;
            d.1 *= inv_n;
        }
    }
}

/// Flop count of a radix-2 FFT of length `n`: `5·n·log₂n` (the standard
/// convention counting one butterfly as 10 flops per pair).
pub fn fft_flops(n: usize) -> f64 {
    if n <= 1 {
        0.0
    } else {
        5.0 * n as f64 * (n as f64).log2()
    }
}

/// Naive DFT used as the test oracle.
pub fn dft_reference(data: &[Complex], inverse: bool) -> Vec<Complex> {
    let n = data.len();
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut out = vec![(0.0, 0.0); n];
    for (k, o) in out.iter_mut().enumerate() {
        for (t, &x) in data.iter().enumerate() {
            let ang = sign * 2.0 * PI * (k * t) as f64 / n as f64;
            *o = c_add(*o, c_mul(x, (ang.cos(), ang.sin())));
        }
    }
    if inverse {
        for o in out.iter_mut() {
            o.0 /= n as f64;
            o.1 /= n as f64;
        }
    }
    out
}

/// A dense "Legendre" projection: spectral coefficients ↔ grid values along
/// a meridian, implemented as a matrix product against a precomputed basis
/// of orthogonal polynomials on Gauss-like latitudes.
#[derive(Debug, Clone)]
pub struct LegendreTransform {
    /// Truncation (number of retained modes).
    pub modes: usize,
    /// Latitude points.
    pub lats: usize,
    /// Basis matrix `P[lat][mode]` = Pₘ(sin φ_lat).
    basis: Vec<f64>,
}

impl LegendreTransform {
    /// Build a transform with `modes` polynomials on `lats` latitudes
    /// (uniform in sin φ, which keeps the recurrence well conditioned).
    pub fn new(modes: usize, lats: usize) -> Self {
        assert!(modes >= 1 && lats >= modes, "need lats ≥ modes ≥ 1");
        let mut basis = vec![0.0; lats * modes];
        for l in 0..lats {
            let x = -1.0 + 2.0 * (l as f64 + 0.5) / lats as f64;
            // Legendre recurrence: (n+1)P_{n+1} = (2n+1)xP_n − nP_{n−1}.
            let mut p0 = 1.0;
            let mut p1 = x;
            for m in 0..modes {
                let val = if m == 0 { p0 } else { p1 };
                basis[l * modes + m] = val;
                if m >= 1 {
                    let n = m as f64;
                    let p2 = ((2.0 * n + 1.0) * x * p1 - n * p0) / (n + 1.0);
                    p0 = p1;
                    p1 = p2;
                }
            }
        }
        Self { modes, lats, basis }
    }

    /// Synthesis: grid values from spectral coefficients.
    pub fn synthesize(&self, coeffs: &[f64]) -> Vec<f64> {
        assert_eq!(coeffs.len(), self.modes, "coefficient count mismatch");
        (0..self.lats)
            .map(|l| {
                (0..self.modes)
                    .map(|m| self.basis[l * self.modes + m] * coeffs[m])
                    .sum()
            })
            .collect()
    }

    /// Analysis: least-squares projection of grid values onto the modes
    /// (normal equations with the quadrature weight `2/lats`).
    pub fn analyze(&self, grid: &[f64]) -> Vec<f64> {
        assert_eq!(grid.len(), self.lats, "grid length mismatch");
        // Orthogonality: ∫P_m P_n ≈ δ_mn · 2/(2m+1); midpoint quadrature.
        let w = 2.0 / self.lats as f64;
        (0..self.modes)
            .map(|m| {
                let norm = 2.0 / (2.0 * m as f64 + 1.0);
                let proj: f64 = (0..self.lats)
                    .map(|l| self.basis[l * self.modes + m] * grid[l])
                    .sum::<f64>()
                    * w;
                proj / norm
            })
            .collect()
    }

    /// Flops for one synthesis or analysis: `2 · modes · lats`.
    pub fn flops(&self) -> f64 {
        2.0 * self.modes as f64 * self.lats as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::rng::Pcg32;

    fn random_signal(n: usize, seed: u64) -> Vec<Complex> {
        let mut rng = Pcg32::seeded(seed);
        (0..n)
            .map(|_| (rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)))
            .collect()
    }

    #[test]
    fn fft_matches_dft() {
        for n in [2usize, 4, 8, 64] {
            let sig = random_signal(n, 1);
            let mut got = sig.clone();
            fft(&mut got, false);
            let want = dft_reference(&sig, false);
            for (g, w) in got.iter().zip(&want) {
                assert!((g.0 - w.0).abs() < 1e-9 && (g.1 - w.1).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn fft_roundtrip_is_identity() {
        let sig = random_signal(256, 2);
        let mut data = sig.clone();
        fft(&mut data, false);
        fft(&mut data, true);
        for (d, s) in data.iter().zip(&sig) {
            assert!((d.0 - s.0).abs() < 1e-10 && (d.1 - s.1).abs() < 1e-10);
        }
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut data = vec![(0.0, 0.0); 16];
        data[0] = (1.0, 0.0);
        fft(&mut data, false);
        for d in &data {
            assert!((d.0 - 1.0).abs() < 1e-12 && d.1.abs() < 1e-12);
        }
    }

    #[test]
    fn parseval_holds() {
        let sig = random_signal(128, 3);
        let time_energy: f64 = sig.iter().map(|c| c.0 * c.0 + c.1 * c.1).sum();
        let mut freq = sig.clone();
        fft(&mut freq, false);
        let freq_energy: f64 = freq.iter().map(|c| c.0 * c.0 + c.1 * c.1).sum::<f64>() / 128.0;
        assert!((time_energy - freq_energy).abs() < 1e-9 * time_energy);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let mut data = vec![(0.0, 0.0); 12];
        fft(&mut data, false);
    }

    #[test]
    fn legendre_roundtrip_recovers_smooth_fields() {
        let t = LegendreTransform::new(8, 512);
        // A field that lives entirely in the retained modes.
        let coeffs = vec![1.0, 0.5, -0.3, 0.2, 0.0, 0.1, -0.05, 0.02];
        let grid = t.synthesize(&coeffs);
        let got = t.analyze(&grid);
        for (g, c) in got.iter().zip(&coeffs) {
            assert!((g - c).abs() < 1e-2, "mode error {g} vs {c}");
        }
    }

    #[test]
    fn legendre_basis_orthogonality() {
        let t = LegendreTransform::new(6, 2048);
        let w = 2.0 / t.lats as f64;
        for m in 0..6 {
            for n in 0..6 {
                let dot: f64 = (0..t.lats)
                    .map(|l| t.basis[l * 6 + m] * t.basis[l * 6 + n])
                    .sum::<f64>()
                    * w;
                let expect = if m == n {
                    2.0 / (2.0 * m as f64 + 1.0)
                } else {
                    0.0
                };
                assert!(
                    (dot - expect).abs() < 1e-3,
                    "⟨P{m},P{n}⟩ = {dot}, want {expect}"
                );
            }
        }
    }

    #[test]
    fn flop_formulas() {
        assert_eq!(fft_flops(1024), 5.0 * 1024.0 * 10.0);
        let t = LegendreTransform::new(10, 100);
        assert_eq!(t.flops(), 2000.0);
    }

    #[test]
    #[should_panic(expected = "lats ≥ modes")]
    fn undersampled_transform_rejected() {
        LegendreTransform::new(10, 5);
    }
}
