//! Dense and sparse (CSR) matrix utilities shared by the solver kernels.

use rayon::prelude::*;

/// A dense column-major matrix (LAPACK convention, as HPL uses).
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    /// Rows.
    pub rows: usize,
    /// Columns.
    pub cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "degenerate matrix");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from an element closure `f(i, j)` where `i` is the **row**
    /// and `j` the **column** index. Storage is column-major, so the
    /// closure is invoked column by column — do not rely on call order
    /// for side effects like RNG draws reproducing a row-major layout.
    ///
    /// ```
    /// use kernels::matrix::DenseMatrix;
    /// let m = DenseMatrix::from_fn(2, 3, |i, j| (10 * i + j) as f64);
    /// assert_eq!(m[(0, 1)], 1.0); // f(i, j) is (row, column) …
    /// assert_eq!(m[(1, 0)], 10.0); // … even though storage is col-major
    /// ```
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for j in 0..cols {
            for i in 0..rows {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Matrix-vector product `y = A·x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for (j, &xj) in x.iter().enumerate() {
            let col = &self.data[j * self.rows..(j + 1) * self.rows];
            for (yi, &aij) in y.iter_mut().zip(col) {
                *yi += aij * xj;
            }
        }
        y
    }

    /// Column slice.
    pub fn col(&self, j: usize) -> &[f64] {
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Mutable column slice.
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        &mut self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Raw data (column-major).
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw data (column-major).
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Max-norm of the matrix.
    pub fn max_norm(&self) -> f64 {
        self.data.iter().fold(0.0, |m, &x| m.max(x.abs()))
    }
}

impl std::ops::Index<(usize, usize)> for DenseMatrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[j * self.rows + i]
    }
}

impl std::ops::IndexMut<(usize, usize)> for DenseMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[j * self.rows + i]
    }
}

/// The operations the solver kernels (CG, multigrid) need from a sparse
/// operator, implemented by both the general [`CsrMatrix`] and the
/// structure-aware [`crate::stencil_matrix::StencilMatrix`]. The `smooth`
/// method is the operator's symmetric Gauss–Seidel sweep: sequential
/// lexicographic for CSR (the reference oracle), parallel multicolor for
/// the stencil engine.
pub trait SparseOp {
    /// Number of rows (= columns for the solvers here).
    fn n(&self) -> usize;
    /// Stored non-zeros.
    fn nnz(&self) -> usize;
    /// `y = A·x`.
    fn spmv(&self, x: &[f64], y: &mut [f64]);
    /// One symmetric Gauss–Seidel sweep updating `x` towards `A·x = r`.
    fn smooth(&self, r: &[f64], x: &mut [f64]);
}

/// Compressed-sparse-row matrix.
#[derive(Debug, Clone)]
pub struct CsrMatrix {
    /// Number of rows (= columns for the solvers here).
    pub n: usize,
    /// Row pointers, length `n + 1`.
    pub row_ptr: Vec<usize>,
    /// Column indices per non-zero.
    pub col_idx: Vec<usize>,
    /// Values per non-zero.
    pub values: Vec<f64>,
    /// Diagonal entries, cached at assembly (0 where a row has none) so
    /// per-sweep callers never re-scan the non-zeros.
    diag: Vec<f64>,
}

impl CsrMatrix {
    /// Assemble from triplets `(row, col, value)`; duplicate entries are
    /// summed (the FEM assembly convention).
    pub fn from_triplets(n: usize, triplets: &[(usize, usize, f64)]) -> Self {
        assert!(n > 0, "empty matrix");
        let mut per_row: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        for &(r, c, v) in triplets {
            assert!(r < n && c < n, "triplet ({r},{c}) out of range");
            per_row[r].push((c, v));
        }
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for row in &mut per_row {
            row.sort_by_key(|&(c, _)| c);
            let mut iter = row.iter().peekable();
            while let Some(&(c, v)) = iter.next() {
                let mut sum = v;
                while let Some(&&(c2, v2)) = iter.peek() {
                    if c2 == c {
                        sum += v2;
                        iter.next();
                    } else {
                        break;
                    }
                }
                col_idx.push(c);
                values.push(sum);
            }
            row_ptr.push(col_idx.len());
        }
        let diag = (0..n)
            .map(|i| {
                col_idx[row_ptr[i]..row_ptr[i + 1]]
                    .iter()
                    .position(|&c| c == i)
                    .map_or(0.0, |k| values[row_ptr[i] + k])
            })
            .collect();
        Self {
            n,
            row_ptr,
            col_idx,
            values,
            diag,
        }
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The non-zeros of one row as `(col, value)` pairs.
    pub fn row(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let span = self.row_ptr[i]..self.row_ptr[i + 1];
        self.col_idx[span.clone()]
            .iter()
            .copied()
            .zip(self.values[span].iter().copied())
    }

    /// Sparse matrix-vector product `y = A·x`, rayon-parallel over
    /// contiguous row chunks: each task owns a span of rows (and the
    /// matching `row_ptr`/`values` range), which keeps CSR traversal
    /// streaming and amortises task overhead over hundreds of rows.
    /// Every `y[i]` is an independent ascending-`k` sum, so results are
    /// identical at any thread count or chunking.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n, "x dimension mismatch");
        assert_eq!(y.len(), self.n, "y dimension mismatch");
        let chunk = crate::tune::par_chunk_rows(self.n);
        y.par_chunks_mut(chunk).enumerate().for_each(|(ci, yc)| {
            let base = ci * chunk;
            for (r, yi) in yc.iter_mut().enumerate() {
                let i = base + r;
                let mut sum = 0.0;
                for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                    sum += self.values[k] * x[self.col_idx[k]];
                }
                *yi = sum;
            }
        });
    }

    /// Diagonal entries (0 where a row has no diagonal), precomputed at
    /// assembly — O(1) per call instead of an O(nnz) re-scan.
    pub fn diagonal(&self) -> &[f64] {
        &self.diag
    }

    /// Check structural symmetry with matching values (tolerance `tol`).
    pub fn is_symmetric(&self, tol: f64) -> bool {
        for i in 0..self.n {
            for (j, v) in self.row(i) {
                let vt = self
                    .row(j)
                    .find(|&(c, _)| c == i)
                    .map_or(f64::NAN, |(_, v)| v);
                let symmetric = (vt - v).abs() <= tol;
                if !symmetric {
                    return false;
                }
            }
        }
        true
    }
}

impl SparseOp for CsrMatrix {
    fn n(&self) -> usize {
        self.n
    }
    fn nnz(&self) -> usize {
        CsrMatrix::nnz(self)
    }
    fn spmv(&self, x: &[f64], y: &mut [f64]) {
        CsrMatrix::spmv(self, x, y);
    }
    fn smooth(&self, r: &[f64], x: &mut [f64]) {
        crate::cg::symgs(self, r, x);
    }
}

/// Dot product (rayon-parallel).
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot dimension mismatch");
    a.par_iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y ← y + alpha·x` (axpy).
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy dimension mismatch");
    y.par_iter_mut().zip(x).for_each(|(y, x)| *y += alpha * x);
}

/// Euclidean norm.
pub fn norm2(v: &[f64]) -> f64 {
    dot(v, v).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_identity_matvec() {
        let i = DenseMatrix::identity(4);
        let x = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(i.matvec(&x), x);
    }

    #[test]
    fn dense_indexing_is_column_major() {
        let mut m = DenseMatrix::zeros(2, 3);
        m[(1, 2)] = 7.0;
        assert_eq!(m.data()[2 * 2 + 1], 7.0);
        assert_eq!(m.col(2)[1], 7.0);
    }

    #[test]
    fn dense_from_fn() {
        let m = DenseMatrix::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        assert_eq!(m[(1, 2)], 5.0);
        assert_eq!(m.max_norm(), 8.0);
    }

    #[test]
    fn csr_from_triplets_sums_duplicates() {
        let m = CsrMatrix::from_triplets(3, &[(0, 0, 1.0), (0, 0, 2.0), (1, 2, 4.0), (2, 1, 5.0)]);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.row(0).collect::<Vec<_>>(), vec![(0, 3.0)]);
        assert_eq!(m.row(1).collect::<Vec<_>>(), vec![(2, 4.0)]);
    }

    #[test]
    fn csr_spmv_matches_dense() {
        // Tridiagonal: 2 on diagonal, -1 off.
        let n = 10;
        let mut trips = Vec::new();
        for i in 0..n {
            trips.push((i, i, 2.0));
            if i > 0 {
                trips.push((i, i - 1, -1.0));
            }
            if i + 1 < n {
                trips.push((i, i + 1, -1.0));
            }
        }
        let a = CsrMatrix::from_triplets(n, &trips);
        let dense = DenseMatrix::from_fn(n, n, |i, j| {
            if i == j {
                2.0
            } else if i.abs_diff(j) == 1 {
                -1.0
            } else {
                0.0
            }
        });
        let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let mut y = vec![0.0; n];
        a.spmv(&x, &mut y);
        let yd = dense.matvec(&x);
        for (a, b) in y.iter().zip(&yd) {
            assert!((a - b).abs() < 1e-14);
        }
        assert!(a.is_symmetric(0.0));
        assert!(a.diagonal().iter().all(|&d| d == 2.0));
    }

    #[test]
    fn asymmetric_detected() {
        let m = CsrMatrix::from_triplets(2, &[(0, 1, 1.0), (1, 0, 2.0), (0, 0, 1.0), (1, 1, 1.0)]);
        assert!(!m.is_symmetric(1e-12));
    }

    #[test]
    fn blas1_helpers() {
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![4.0, 5.0, 6.0];
        assert_eq!(dot(&a, &b), 32.0);
        let mut y = b.clone();
        axpy(2.0, &a, &mut y);
        assert_eq!(y, vec![6.0, 9.0, 12.0]);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_triplet_rejected() {
        CsrMatrix::from_triplets(2, &[(2, 0, 1.0)]);
    }
}
